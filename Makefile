# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: build test check bench chaos fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The gate: full build plus the race-detector-clean test suite.
check: build
	$(GO) test -race -count=1 ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Fault-injection smoke battery (see docs/protocol.md).
chaos:
	$(GO) run ./cmd/naiad-bench -exp=chaos

# Short fuzz passes over the codec and frame parsers.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzDecoder -fuzztime=10s ./internal/codec/
	$(GO) test -run=^$$ -fuzz=FuzzParseFrameHeader -fuzztime=10s ./internal/transport/
	$(GO) test -run=^$$ -fuzz=FuzzDecodeProgress -fuzztime=10s ./internal/runtime/
