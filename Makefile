# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: build test check vet vet-fixtures bench bench-smoke bench-ingress bench-pipeline chaos soak soak-recovery soak-ingress fuzz cover

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The gate: full build, static analysis, and the race-detector-clean test
# suite, shuffled so order-dependent tests cannot hide.
check: build vet
	$(GO) test -race -count=1 -shuffle=on ./...

# Coverage artifact: per-package profiles merged into cover.out plus an
# HTML report; prints the total at the end.
cover:
	$(GO) test -count=1 -coverprofile=cover.out -covermode=atomic ./...
	$(GO) tool cover -html=cover.out -o cover.html
	@$(GO) tool cover -func=cover.out | tail -1

# Static analysis: go vet plus the repository's own naiad-vet suite, the
# static twins of the runtime's dynamic vertex-contract checks (see
# docs/static-analysis.md). govulncheck is best-effort: it is not part of
# the toolchain and needs network access for the vuln database.
vet:
	$(GO) vet ./...
	@$(GO) build -o /dev/null ./cmd/naiad-vet || { \
		echo "vet: naiad-vet failed to build; if imports cannot be resolved, run 'go mod tidy' and retry" >&2; \
		exit 1; }
	$(GO) run ./cmd/naiad-vet ./...
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "vet: govulncheck reported issues or could not reach the vuln database (non-fatal)"; \
	else \
		echo "vet: govulncheck not installed; skipping (install: go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# The analyzer test suites: framework facts/call-graph/recovery tests plus
# every analyzer's `// want`-annotated testdata fixtures, including the
# quiesce-deadlock shape lockorder must keep catching.
vet-fixtures:
	$(GO) test -count=1 ./internal/analysis/...

# Progress + runtime microbenchmarks, then the harness comparison of the
# indexed tracker against the scan-based reference oracle and the
# capability (timestamp-token) layer, written to the committed
# BENCH_progress.json baseline (reference column = before, indexed column
# = after; the raw seed numbers predating the indexed tracker are in
# bench/BENCH_progress_before.txt). The run fails if capability overhead
# on update/frontier exceeds 1.25x the indexed tracker.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./internal/progress/ ./internal/runtime/
	$(GO) run ./cmd/naiad-bench -exp=progress -json=BENCH_progress.json
	@echo "wrote BENCH_progress.json"

# CI's quick variant: one iteration per Go benchmark proves they still run
# and the harness experiment still builds its graphs and trackers; no
# baseline file is written, timings at this length are not meaningful.
# The harness run is full-length, so the 1.25x capability-overhead guard
# is enforced here too.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./internal/progress/ ./internal/runtime/
	$(GO) run ./cmd/naiad-bench -exp=progress

# Record data plane: the typed-batch vs boxed per-record comparison plus
# the Go microbenchmarks and the zero-alloc steady-state gate, written to
# the committed BENCH_pipeline.json baseline (boxed column = before, typed
# column = after; the raw pre-batching seed numbers are in
# bench/BENCH_pipeline_before.txt).
bench-pipeline:
	$(GO) test -run='TestPipelineSteadyStateAllocs|TestEncodeFrameAllocs' -count=1 ./internal/runtime/
	$(GO) test -run='^$$' -bench='BenchmarkPipelineRecords' -benchmem ./internal/runtime/
	$(GO) run ./cmd/naiad-bench -exp=pipeline -json=BENCH_pipeline.json
	@echo "wrote BENCH_pipeline.json"

# Serving-front-door load harness: N server processes × M simulated
# clients (streamers, slow readers, mid-epoch disconnectors, floods),
# written to the committed BENCH_ingress.json baseline. The overload row
# must show shedding engaging with every offered record accounted and a
# bounded heap (see docs/serving.md).
bench-ingress:
	$(GO) run ./cmd/naiad-bench -exp=ingress -json=BENCH_ingress.json
	@echo "wrote BENCH_ingress.json"

# Fault-injection smoke battery (see docs/protocol.md).
chaos:
	$(GO) run ./cmd/naiad-bench -exp=chaos

# Recovery soak: the crash/partition recovery suites under the race
# detector, SOAK_ITERS times with distinct seeds (see
# docs/fault-tolerance.md). Failures print the NAIAD_TEST_SEED to replay.
SOAK_ITERS ?= 5
soak:
	@set -e; for i in $$(seq 1 $(SOAK_ITERS)); do \
		seed=$$((20130101 + i)); \
		echo "== soak iteration $$i/$(SOAK_ITERS) (NAIAD_TEST_SEED=$$seed) =="; \
		NAIAD_TEST_SEED=$$seed $(GO) test -race -count=1 \
			-run 'TestSupervisor|TestSupervisedChaosCrashRecovery|TestChaosCrashThenCheckpointRecovery|TestChaosPartitionWatchdogAbortThenReplayRecovery|TestHeartbeat' \
			./internal/supervise/ ./internal/kexposure/ ./internal/runtime/ ./internal/transport/; \
	done

# Barrier-snapshot soak: the seeded asynchronous-barrier suites — marker
# chaos, the randomized recovery simulation, selective rollback, and the
# quiesce differential oracle — under the race detector, SOAK_ITERS times
# with distinct seeds. Each iteration's schedule is drawn from its seed,
# so a failure replays exactly with the printed NAIAD_TEST_SEED; the suite
# itself uses no wall-clock scheduling beyond the bounded cut-settle and
# revival timeouts.
soak-recovery:
	@set -e; for i in $$(seq 1 $(SOAK_ITERS)); do \
		seed=$$((20130101 + 1000 * i)); \
		echo "== soak-recovery iteration $$i/$(SOAK_ITERS) (NAIAD_TEST_SEED=$$seed) =="; \
		NAIAD_TEST_SEED=$$seed $(GO) test -race -count=1 \
			-run 'TestSeededRecoverySimulation|TestSimulationMidBarrierWorkerCrash|TestBarrierChaos|TestBarrierCrash|TestSelectiveRollback|TestCutSettleTimeout|TestDifferentialQuiesceVsBarrierCut' \
			./internal/supervise/; \
	done

# Serving-front-door soak: the full overload cycle (steady state, a
# never-backing-off flood against a slowed dataflow, drain, recovery)
# under the race detector, SOAK_ITERS times with distinct seeds and a
# longer flood than the ordinary test run (see docs/serving.md). Asserts
# sheds engage, the heap stays bounded by the credit pools, and every
# offered record is accounted accepted or shed.
soak-ingress:
	@set -e; for i in $$(seq 1 $(SOAK_ITERS)); do \
		seed=$$((20130101 + 10 * i)); \
		echo "== soak-ingress iteration $$i/$(SOAK_ITERS) (NAIAD_TEST_SEED=$$seed) =="; \
		NAIAD_TEST_SEED=$$seed NAIAD_SOAK_INGRESS_MS=1500 $(GO) test -race -count=1 \
			-run 'TestSoakIngress' ./internal/serve/; \
	done

# Short fuzz passes over the codec, frame, barrier, and trace-log parsers,
# plus the capability/tracker differential (three frontier views must agree
# on every schedule of mint/clone/downgrade/drop).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzCapabilityDifferential -fuzztime=10s ./internal/progress/
	$(GO) test -run=^$$ -fuzz=FuzzDecoder -fuzztime=10s ./internal/codec/
	$(GO) test -run=^$$ -fuzz=FuzzParseFrameHeader -fuzztime=10s ./internal/transport/
	$(GO) test -run=^$$ -fuzz=FuzzDecodeProgress -fuzztime=10s ./internal/runtime/
	$(GO) test -run=^$$ -fuzz=FuzzBatchDecode -fuzztime=10s ./internal/runtime/
	$(GO) test -run=^$$ -fuzz=FuzzUnmarshalSnapshot -fuzztime=10s ./internal/runtime/
	$(GO) test -run=^$$ -fuzz=FuzzBarrierDecode -fuzztime=10s ./internal/runtime/
	$(GO) test -run=^$$ -fuzz=FuzzUnmarshalCut -fuzztime=10s ./internal/runtime/
	$(GO) test -run=^$$ -fuzz=FuzzTraceDecode -fuzztime=10s ./internal/trace/
