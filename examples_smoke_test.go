package naiad_test

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamples builds every program under examples/ and runs it to
// completion in quick mode. The examples are the documentation's load-
// bearing code: each one exercises the full public surface (scope, inputs,
// operators, Subscribe, Join) end to end, so a program that no longer
// builds or deadlocks is a tier-1 failure, not a docs rot item.
func TestExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("examples build child binaries; skipped in -short")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	dirs, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		found++
		name := d.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(t.TempDir(), name)
			build := exec.Command(goTool, "build", "-o", bin, "./examples/"+name)
			build.Dir = root
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			// The timeout is the deadlock detector: every example must drain
			// and Join on its own in quick mode.
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			run := exec.CommandContext(ctx, bin)
			run.Env = append(os.Environ(), "NAIAD_EXAMPLE_QUICK=1")
			out, err := run.CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("timed out (likely deadlock)\n%s", out)
			}
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out)
			}
			if len(out) == 0 {
				t.Fatal("example produced no output")
			}
		})
	}
	if found == 0 {
		t.Fatal("no example programs found")
	}
}
