package naiad_test

import (
	"fmt"
	"sort"
	"strings"

	"naiad"
)

// Example runs the paper's §4.1 prototypical program: an incrementally
// updated MapReduce fed epoch by epoch.
func Example() {
	scope, err := naiad.NewScope(naiad.DefaultConfig(2))
	if err != nil {
		panic(err)
	}
	docs, stream := naiad.NewInput[string](scope, "docs", naiad.StringCodec())
	words := naiad.SelectMany(stream, strings.Fields, naiad.StringCodec())
	counts := naiad.Count(words, nil)
	naiad.Subscribe(counts, func(epoch int64, recs []naiad.Pair[string, int64]) {
		sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
		fmt.Println("epoch", epoch, recs)
	})
	if err := scope.C.Start(); err != nil {
		panic(err)
	}
	docs.OnNext("to be or not to be")
	docs.OnNext("be")
	docs.Close()
	if err := scope.C.Join(); err != nil {
		panic(err)
	}
	// Output:
	// epoch 0 [{be 2} {not 1} {or 1} {to 2}]
	// epoch 1 [{be 1}]
}

// ExampleIterate computes single-source reachability with a Datalog-style
// asynchronous loop that terminates by quiescence.
func ExampleIterate() {
	scope, err := naiad.NewScope(naiad.DefaultConfig(2))
	if err != nil {
		panic(err)
	}
	edgesIn, edges := naiad.NewInput[naiad.Pair[int64, int64]](scope, "edges", nil)
	seedsIn, seeds := naiad.NewInput[int64](scope, "seeds", naiad.Int64Codec())
	inLoop := naiad.EnterLoop(edges, 1)
	reached := naiad.Iterate(seeds, 1000, func(inner *naiad.Stream[int64]) *naiad.Stream[int64] {
		keyed := naiad.Select(inner, func(n int64) naiad.Pair[int64, int64] {
			return naiad.KV(n, n)
		}, nil)
		stepped := naiad.Join(keyed, inLoop, func(_, _, dst int64) int64 {
			return dst
		}, naiad.Int64Codec())
		return naiad.DistinctCumulative(stepped)
	})
	col := naiad.Collect(naiad.Distinct(reached))
	if err := scope.C.Start(); err != nil {
		panic(err)
	}
	edgesIn.Send(naiad.KV(int64(1), int64(2)), naiad.KV(int64(2), int64(3)), naiad.KV(int64(3), int64(1)))
	seedsIn.Send(1)
	edgesIn.Close()
	seedsIn.Close()
	if err := scope.C.Join(); err != nil {
		panic(err)
	}
	out := col.Epoch(0)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	fmt.Println(out)
	// Output:
	// [1 2 3]
}

// ExampleDiffCount maintains counts under insertions and retractions,
// emitting only corrections.
func ExampleDiffCount() {
	scope, err := naiad.NewScope(naiad.DefaultConfig(2))
	if err != nil {
		panic(err)
	}
	in, stream := naiad.NewInput[naiad.Diff[string]](scope, "words", nil)
	counts := naiad.DiffCount(stream, nil)
	table := map[string]int64{}
	naiad.Subscribe(counts, func(epoch int64, ds []naiad.Diff[naiad.Pair[string, int64]]) {
		for _, d := range ds {
			if d.Delta > 0 {
				table[d.Rec.Key] = d.Rec.Val
			} else if table[d.Rec.Key] == d.Rec.Val {
				delete(table, d.Rec.Key)
			}
		}
	})
	if err := scope.C.Start(); err != nil {
		panic(err)
	}
	in.OnNext(naiad.AddRec("a"), naiad.AddRec("a"), naiad.AddRec("b"))
	in.OnNext(naiad.DelRec("a"))
	in.Close()
	if err := scope.C.Join(); err != nil {
		panic(err)
	}
	fmt.Println(table["a"], table["b"])
	// Output:
	// 1 1
}

// ExampleProbe synchronizes external code with epoch completion.
func ExampleProbe() {
	scope, err := naiad.NewScope(naiad.DefaultConfig(2))
	if err != nil {
		panic(err)
	}
	in, stream := naiad.NewInput[int64](scope, "nums", naiad.Int64Codec())
	col := naiad.Collect(naiad.Select(stream, func(v int64) int64 { return v * v }, naiad.Int64Codec()))
	if err := scope.C.Start(); err != nil {
		panic(err)
	}
	in.Send(3)
	in.Advance()
	col.WaitFor(0) // returns once epoch 0 has drained into the collector
	fmt.Println(col.Epoch(0))
	in.Close()
	if err := scope.C.Join(); err != nil {
		panic(err)
	}
	// Output:
	// [9]
}
