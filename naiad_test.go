package naiad

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// TestFacadeWordCount exercises the whole public surface end to end: the
// §4.1 prototypical program written against package naiad only.
func TestFacadeWordCount(t *testing.T) {
	scope, err := NewScope(DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	docs, stream := NewInput[string](scope, "docs", StringCodec())
	words := SelectMany(stream, strings.Fields, StringCodec())
	counts := Count(words, nil)
	results := Collect(counts)
	if err := scope.C.Start(); err != nil {
		t.Fatal(err)
	}
	docs.OnNext("to be or not to be")
	docs.OnNext("be")
	docs.Close()
	if err := scope.C.Join(); err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, p := range results.Epoch(0) {
		got[p.Key] = p.Val
	}
	if got["to"] != 2 || got["be"] != 2 || got["or"] != 1 || got["not"] != 1 {
		t.Fatalf("epoch 0 = %v", got)
	}
	got1 := map[string]int64{}
	for _, p := range results.Epoch(1) {
		got1[p.Key] = p.Val
	}
	if got1["be"] != 1 || len(got1) != 1 {
		t.Fatalf("epoch 1 = %v", got1)
	}
}

// TestFacadeIterate exercises loops, joins, and monotonic aggregation
// through the facade: single-source reachability.
func TestFacadeIterate(t *testing.T) {
	scope, err := NewScope(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	edgesIn, edges := NewInput[Pair[int64, int64]](scope, "edges", nil)
	seedsIn, seeds := NewInput[int64](scope, "seeds", Int64Codec())
	inLoop := EnterLoop(edges, 1)
	reached := Iterate(seeds, 100, func(inner *Stream[int64]) *Stream[int64] {
		keyed := Select(inner, func(n int64) Pair[int64, int64] { return KV(n, n) }, nil)
		stepped := Join(keyed, inLoop, func(_, _, dst int64) int64 { return dst }, Int64Codec())
		return DistinctCumulative(stepped)
	})
	col := Collect(Distinct(reached))
	if err := scope.C.Start(); err != nil {
		t.Fatal(err)
	}
	edgesIn.Send(KV(int64(1), int64(2)), KV(int64(2), int64(3)))
	seedsIn.Send(1)
	edgesIn.Close()
	seedsIn.Close()
	if err := scope.C.Join(); err != nil {
		t.Fatal(err)
	}
	vals := col.Epoch(0)
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	if fmt.Sprint(vals) != "[2 3]" {
		t.Fatalf("reached = %v", vals)
	}
}

func TestFacadeHashAndCodecs(t *testing.T) {
	if Hash(int64(1)) == Hash(int64(2)) {
		t.Fatal("hash collision")
	}
	if Int64Codec() == nil || StringCodec() == nil || Float64Codec() == nil || GobCodec[int]() == nil {
		t.Fatal("codec constructors")
	}
}
