package naiad

import (
	"testing"
	"time"

	"naiad/internal/harness"
)

// One benchmark per table/figure of the paper's evaluation. Each runs its
// harness driver at a reduced scale suitable for `go test -bench=.`; the
// cmd/naiad-bench tool runs the full-scale versions and prints the rows.

func BenchmarkFig6aThroughput(b *testing.B) {
	opt := harness.Fig6aOptions{Processes: []int{2}, WorkersPerProcess: 2,
		RecordsPerWorker: 5000, Iterations: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig6a(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6bLatency(b *testing.B) {
	opt := harness.Fig6bOptions{Processes: []int{2}, WorkersPerProcess: 2, Iterations: 200}
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig6b(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6cProtocol(b *testing.B) {
	opt := harness.Fig6cOptions{Processes: 2, WorkersPerProcess: 2, Nodes: 300, Edges: 900}
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig6c(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6dStrongScaling(b *testing.B) {
	opt := harness.Fig6dOptions{Workers: []int{1, 4}, Documents: 400, WordsPerDoc: 30,
		Nodes: 400, Edges: 1200}
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig6d(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6eWeakScaling(b *testing.B) {
	opt := harness.Fig6eOptions{Workers: []int{1, 4}, DocsPerWorker: 100, WordsPerDoc: 30,
		EdgesPerWorker: 400, NodesPerWorker: 150}
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig6e(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1GraphAlgos(b *testing.B) {
	opt := harness.Table1Options{Processes: 1, WorkersPerProcess: 4,
		PRNodes: 300, PREdges: 1000, PageRankIters: 5,
		WCCChains: 2, WCCLen: 15, SCCCycles: 2, SCCLen: 8,
		ASPChains: 2, ASPLen: 15, ASPSources: 2}
	for i := 0; i < b.N; i++ {
		if _, err := harness.Table1(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7aPageRank(b *testing.B) {
	opt := harness.Fig7aOptions{Workers: []int{2}, Nodes: 400, Edges: 1600, Iters: 4}
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig7a(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7bAllReduce(b *testing.B) {
	opt := harness.Fig7bOptions{Workers: []int{1, 4}, Records: 20000, Dim: 512, Iterations: 2}
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig7b(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7cKExposure(b *testing.B) {
	opt := harness.Fig7cOptions{Processes: 1, WorkersPerProcess: 2, Epochs: 6,
		TweetsPerEpoch: 500, K: 8, CheckpointEvery: 3}
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig7c(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Queries(b *testing.B) {
	opt := harness.Fig8Options{Processes: 1, WorkersPerProcess: 2, Epochs: 6,
		TweetsPerEpoch: 300, QueriesPerEpoch: 2, EpochInterval: time.Millisecond}
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig8(opt); err != nil {
			b.Fatal(err)
		}
	}
}
