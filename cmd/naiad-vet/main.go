// naiad-vet is the repository's static-analysis gate: a multichecker over
// the timely-dataflow vertex-contract analyzers in internal/analysis, plus
// the whole-program concurrency analyzers (lock-order cycles, atomics
// discipline, goroutine lifecycles) built on the framework's facts and
// call-graph layer.
//
// Usage:
//
//	naiad-vet [-list] [-json] [-analyzers=a,b,...] [packages]
//
// With no packages, ./... is checked. The exit status is 1 when any
// diagnostic survives suppression, 2 on operational failure. With -json,
// diagnostics are emitted as one JSON object per line on stdout
// (file/line/column/analyzer/message), for machine consumption in CI.
// Intentional violations (e.g. negative tests that provoke the runtime's
// own dynamic check) are suppressed with a comment on the flagged line or
// the line above it:
//
//	//lint:naiad-vet:timemono <reason>
//
// When the full suite runs (no -analyzers subset), suppression comments
// that did not suppress anything are themselves reported as "suppression"
// diagnostics, so stale waivers cannot linger after the code they excused
// is gone.
//
// See docs/static-analysis.md for each analyzer's contract and the paper
// invariant behind it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"naiad/internal/analysis/atomicmix"
	"naiad/internal/analysis/framework"
	"naiad/internal/analysis/golife"
	"naiad/internal/analysis/lockhold"
	"naiad/internal/analysis/lockorder"
	"naiad/internal/analysis/seedrand"
	"naiad/internal/analysis/timemono"
	"naiad/internal/analysis/tsimmut"
	"naiad/internal/analysis/vertexctx"
)

// all registers every analyzer in the suite.
var all = []*framework.Analyzer{
	timemono.Analyzer,
	tsimmut.Analyzer,
	vertexctx.Analyzer,
	lockhold.Analyzer,
	seedrand.Analyzer,
	lockorder.Analyzer,
	atomicmix.Analyzer,
	golife.Analyzer,
}

// jsonFinding is the machine-readable diagnostic shape emitted by -json.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit diagnostics as JSON Lines on stdout")
	names := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-10s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	analyzers := all
	fullSuite := true
	if *names != "" {
		fullSuite = false
		byName := make(map[string]*framework.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, n := range strings.Split(*names, ",") {
			a, ok := byName[strings.TrimSpace(n)]
			if !ok {
				fatalf("naiad-vet: unknown analyzer %q (use -list)", n)
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := framework.FindModuleRoot(".")
	if err != nil {
		fatalf("naiad-vet: %v", err)
	}
	pkgs, err := framework.NewLoader(root).Load(flag.Args()...)
	if err != nil {
		fatalf("naiad-vet: %v", err)
	}
	findings, err := framework.Run(pkgs, analyzers)
	if err != nil {
		fatalf("naiad-vet: %v", err)
	}
	findings, suppressed, used, err := framework.ApplySuppressions(findings)
	if err != nil {
		fatalf("naiad-vet: %v", err)
	}
	// Stale-suppression sweep: only meaningful when every analyzer ran,
	// since a subset run leaves other analyzers' waivers legitimately
	// unexercised.
	if fullSuite {
		findings = append(findings, framework.StaleSuppressions(pkgs, used)...)
		framework.SortFindings(findings)
	}
	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		if *asJSON {
			if err := enc.Encode(jsonFinding{
				File:     f.Position.Filename,
				Line:     f.Position.Line,
				Column:   f.Position.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			}); err != nil {
				fatalf("naiad-vet: %v", err)
			}
			continue
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "naiad-vet: %d finding(s)", len(findings))
		if suppressed > 0 {
			fmt.Fprintf(os.Stderr, " (%d suppressed)", suppressed)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(1)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
