// Command naiad-bench regenerates the paper's tables and figures: one
// experiment per table/figure of the SOSP 2013 evaluation, printed as
// aligned text tables. See EXPERIMENTS.md for recorded runs and the
// paper-vs-measured comparison.
//
// Usage:
//
//	naiad-bench -exp=all          # run everything at default scale
//	naiad-bench -exp=6a,6c,t1     # run a subset
//	naiad-bench -exp=6d -scale=2  # double the workload sizes
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"naiad/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments: 6a,6b,6c,6d,6e,t1,7a,7b,7c,8,chaos,recovery,progress,pipeline,trace,ingress or 'all'")
	scale := flag.Int("scale", 1, "workload scale multiplier")
	jsonPath := flag.String("json", "", "also write the reports of the run experiments to this file as JSON")
	traceOut := flag.String("trace-out", "", "with -exp=trace: dump the traced run's event log as JSON to this file")
	// Child mode: -exp=ingress re-execs this binary as the server processes.
	ingressServer := flag.Bool("ingress-server", false, "run as an ingress server child process (internal; used by -exp=ingress)")
	ingressCredits := flag.Int("ingress-credits", 0, "ingress server child: global credit pool (0 = steady default)")
	ingressSlowMS := flag.Int("ingress-slow-ms", 0, "ingress server child: per-epoch dataflow slowdown in ms")
	ingressSeed := flag.Int64("ingress-seed", 1, "ingress server child: PRNG seed")
	flag.Parse()

	if *ingressServer {
		err := harness.IngressServerMain(harness.IngressServerOptions{
			Credits:     *ingressCredits,
			SlowEpochMS: *ingressSlowMS,
			Seed:        *ingressSeed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "naiad-bench: ingress server: %v\n", err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	if *exp == "all" {
		for _, e := range []string{"6a", "6b", "6c", "6d", "6e", "t1", "7a", "7b", "7c", "8", "chaos", "recovery", "progress", "pipeline", "trace", "ingress"} {
			want[e] = true
		}
	} else {
		for _, e := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(e)] = true
		}
	}

	type experiment struct {
		id  string
		run func(scale int) (*harness.Report, error)
	}
	experiments := []experiment{
		{"6a", func(k int) (*harness.Report, error) {
			o := harness.DefaultFig6a()
			o.RecordsPerWorker *= k
			return harness.Fig6a(o)
		}},
		{"6b", func(k int) (*harness.Report, error) {
			o := harness.DefaultFig6b()
			o.Iterations *= int64(k)
			return harness.Fig6b(o)
		}},
		{"6c", func(k int) (*harness.Report, error) {
			o := harness.DefaultFig6c()
			o.Nodes *= k
			o.Edges *= k
			return harness.Fig6c(o)
		}},
		{"6d", func(k int) (*harness.Report, error) {
			o := harness.DefaultFig6d()
			o.Documents *= k
			o.Edges *= k
			o.Nodes *= k
			return harness.Fig6d(o)
		}},
		{"6e", func(k int) (*harness.Report, error) {
			o := harness.DefaultFig6e()
			o.DocsPerWorker *= k
			o.EdgesPerWorker *= k
			o.NodesPerWorker *= k
			return harness.Fig6e(o)
		}},
		{"t1", func(k int) (*harness.Report, error) {
			o := harness.DefaultTable1()
			o.PRNodes *= k
			o.PREdges *= k
			o.WCCLen *= k
			o.ASPLen *= k
			return harness.Table1(o)
		}},
		{"7a", func(k int) (*harness.Report, error) {
			o := harness.DefaultFig7a()
			o.Nodes *= k
			o.Edges *= k
			return harness.Fig7a(o)
		}},
		{"7b", func(k int) (*harness.Report, error) {
			o := harness.DefaultFig7b()
			o.Records *= k
			return harness.Fig7b(o)
		}},
		{"7c", func(k int) (*harness.Report, error) {
			o := harness.DefaultFig7c()
			o.TweetsPerEpoch *= k
			return harness.Fig7c(o)
		}},
		{"8", func(k int) (*harness.Report, error) {
			o := harness.DefaultFig8()
			o.TweetsPerEpoch *= k
			return harness.Fig8(o)
		}},
		{"chaos", func(k int) (*harness.Report, error) {
			o := harness.DefaultChaos()
			o.Nodes *= k
			o.Edges *= k
			return harness.Chaos(o)
		}},
		{"recovery", func(k int) (*harness.Report, error) {
			o := harness.DefaultRecovery()
			o.Epochs *= k
			o.RecordsPerEpoch *= k
			return harness.Recovery(o)
		}},
		{"progress", func(k int) (*harness.Report, error) {
			o := harness.DefaultProgress()
			o.Ops *= k
			return harness.Progress(o)
		}},
		{"pipeline", func(k int) (*harness.Report, error) {
			o := harness.DefaultPipeline()
			o.Records *= k
			return harness.Pipeline(o)
		}},
		{"trace", func(k int) (*harness.Report, error) {
			o := harness.DefaultTrace()
			o.RecordsPerEpoch *= k
			o.EventsOut = *traceOut
			return harness.Trace(o)
		}},
		{"ingress", func(k int) (*harness.Report, error) {
			o := harness.DefaultIngress()
			o.Duration *= time.Duration(k)
			o.OverloadDuration *= time.Duration(k)
			bin, err := os.Executable()
			if err != nil {
				return nil, fmt.Errorf("resolving server binary: %w", err)
			}
			o.ServerBin = bin
			return harness.Ingress(o)
		}},
	}

	ran := 0
	var reports []*harness.Report
	for _, e := range experiments {
		if !want[e.id] {
			continue
		}
		rep, err := e.run(*scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "naiad-bench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println(rep)
		reports = append(reports, rep)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "naiad-bench: no experiment matched %q\n", *exp)
		os.Exit(2)
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "naiad-bench: encoding %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "naiad-bench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
}
