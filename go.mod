module naiad

go 1.24
