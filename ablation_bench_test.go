package naiad

import (
	"fmt"
	"testing"

	"naiad/internal/codec"
	"naiad/internal/lib"
	"naiad/internal/runtime"
	"naiad/internal/workload"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: each
// runs the same iterative workload under one toggled mechanism, so
// `go test -bench=Ablation` prints the cost of every design decision.

// ablationWorkload runs a loop-heavy computation (iterative doubling with
// an exchange each iteration) under the given config.
func ablationWorkload(b *testing.B, cfg runtime.Config) {
	b.Helper()
	s, err := lib.NewScope(cfg)
	if err != nil {
		b.Fatal(err)
	}
	in, src := lib.NewInput[int64](s, "in", codec.Int64())
	out := lib.Iterate(src, 50, func(inner *lib.Stream[int64]) *lib.Stream[int64] {
		moved := lib.Exchange(inner, func(v int64) uint64 { return lib.Hash(v) })
		return lib.Select(moved, func(v int64) int64 { return v + 1 }, codec.Int64())
	})
	lib.SubscribeParallel(out, func(int, int64, []int64) {})
	if err := s.C.Start(); err != nil {
		b.Fatal(err)
	}
	recs := workload.Records(7, 2000)
	per := make([][]int64, cfg.Workers())
	for i, r := range recs {
		per[i%len(per)] = append(per[i%len(per)], r)
	}
	for w, batch := range per {
		in.SendToWorker(w, batch)
	}
	in.Close()
	if err := s.C.Join(); err != nil {
		b.Fatal(err)
	}
}

func baseCfg() runtime.Config {
	return runtime.Config{Processes: 2, WorkersPerProcess: 2, Accumulation: runtime.AccLocalGlobal}
}

func BenchmarkAblationBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ablationWorkload(b, baseCfg())
	}
}

// BenchmarkAblationNoFastPath disables §3.2's synchronous same-worker
// delivery; every local message is queued and re-dispatched.
func BenchmarkAblationNoFastPath(b *testing.B) {
	cfg := baseCfg()
	cfg.DisableLocalFastPath = true
	for i := 0; i < b.N; i++ {
		ablationWorkload(b, cfg)
	}
}

// BenchmarkAblationNotificationsFirst inverts the messages-before-
// notifications worker policy.
func BenchmarkAblationNotificationsFirst(b *testing.B) {
	cfg := baseCfg()
	cfg.NotificationsFirst = true
	for i := 0; i < b.N; i++ {
		ablationWorkload(b, cfg)
	}
}

// BenchmarkAblationAccumulation sweeps the §3.3 accumulation modes on the
// same workload (the performance companion to Figure 6c's traffic view).
func BenchmarkAblationAccumulation(b *testing.B) {
	for _, acc := range []runtime.Accumulation{
		runtime.AccNone, runtime.AccLocal, runtime.AccGlobal, runtime.AccLocalGlobal,
	} {
		b.Run(acc.String(), func(b *testing.B) {
			cfg := baseCfg()
			cfg.Accumulation = acc
			for i := 0; i < b.N; i++ {
				ablationWorkload(b, cfg)
			}
		})
	}
}

// BenchmarkAblationBatchSize sweeps the exchange batching granularity.
func BenchmarkAblationBatchSize(b *testing.B) {
	for _, size := range []int{16, 256, 4096} {
		b.Run(fmt.Sprint(size), func(b *testing.B) {
			cfg := baseCfg()
			cfg.BatchSize = size
			for i := 0; i < b.N; i++ {
				ablationWorkload(b, cfg)
			}
		})
	}
}

// BenchmarkAblationReentrancy sweeps the synchronous re-entrancy depth for
// a single-worker cycle, where the bound controls queue/recursion balance.
func BenchmarkAblationReentrancy(b *testing.B) {
	for _, depth := range []int{1, 8, 64} {
		b.Run(fmt.Sprint(depth), func(b *testing.B) {
			cfg := runtime.Config{Processes: 1, WorkersPerProcess: 1,
				Accumulation: runtime.AccLocalGlobal, MaxReentrancy: depth}
			for i := 0; i < b.N; i++ {
				ablationWorkload(b, cfg)
			}
		})
	}
}

// BenchmarkAblationTCP runs the workload over real loopback TCP sockets
// instead of the in-memory transport.
func BenchmarkAblationTCP(b *testing.B) {
	cfg := baseCfg()
	cfg.UseTCP = true
	for i := 0; i < b.N; i++ {
		ablationWorkload(b, cfg)
	}
}
