package naiad

import (
	"fmt"
	"sort"
	"sync"
	"testing"
)

// TestFacadeOperatorSurface drives every facade wrapper in one program so
// downstream users of package naiad have an executable reference for the
// whole API.
func TestFacadeOperatorSurface(t *testing.T) {
	scope, err := NewScope(Config{Processes: 2, WorkersPerProcess: 2, Accumulation: AccLocalGlobal})
	if err != nil {
		t.Fatal(err)
	}

	nums, numStream := NewInput[int64](scope, "nums", Int64Codec())
	pairsIn, pairStream := NewInput[Pair[string, int64]](scope, "pairs", nil)

	// Stateless chain: Where → Select → Exchange → Concat.
	odds := Where(numStream, func(v int64) bool { return v%2 == 1 })
	squares := Select(odds, func(v int64) int64 { return v * v }, Int64Codec())
	moved := Exchange(squares, func(v int64) uint64 { return Hash(v) })
	doubledToo := Select(numStream, func(v int64) int64 { return 2 * v }, Int64Codec())
	merged := Concat(moved, doubledToo)
	mergedCol := Collect(merged)

	// Keyed operators.
	mins := MinByKey(pairStream, func(a, b int64) bool { return a < b }, nil)
	maxs := MaxByKey(pairStream, func(a, b int64) bool { return a < b }, nil)
	sums := SumByKey(pairStream, nil)
	folded := FoldByKey(pairStream, func(string) int64 { return 0 },
		func(acc, v int64) int64 { return acc + 1 }, nil)
	grouped := GroupBy(pairStream, func(p Pair[string, int64]) string { return p.Key },
		func(k string, ps []Pair[string, int64]) []string { return []string{k} }, StringCodec())
	joined := JoinByTime(mins, maxs, func(k string, lo, hi int64) string {
		return fmt.Sprintf("%s:%d-%d", k, lo, hi)
	}, StringCodec())
	best := AggregateMonotonic(pairStream, func(c, i int64) bool { return c < i })
	top := TopK(pairStream, 1, func(a, b Pair[string, int64]) bool { return a.Val < b.Val }, nil)
	everywhere := Broadcast(grouped, StringCodec())

	minCol := Collect(mins)
	sumCol := Collect(sums)
	foldCol := Collect(folded)
	joinCol := Collect(joined)
	bestCol := Collect(best)
	topCol := Collect(top)
	var bcastMu sync.Mutex
	bcastSeen := map[int]int{}
	SubscribeParallel(everywhere, func(w int, _ int64, recs []string) {
		bcastMu.Lock()
		bcastSeen[w] += len(recs)
		bcastMu.Unlock()
	})

	// Windows over the numeric stream.
	winSums := TumblingWindow(numStream, 2, func(w int64, recs []int64, emit func(int64)) {
		var s int64
		for _, v := range recs {
			s += v
		}
		emit(s)
	}, Int64Codec())
	winCol := Collect(winSums)
	sliding := SlidingWindowDiffs(numStream, 2)
	slideCounts := DiffCount(Consolidate(DiffSelect(sliding, func(v int64) int64 { return v % 3 }, nil)), nil)
	slideCol := Collect(slideCounts)

	probe := NewProbe(merged)

	if err := scope.C.Start(); err != nil {
		t.Fatal(err)
	}
	nums.Send(1, 2, 3)
	pairsIn.Send(KV("x", int64(4)), KV("x", int64(9)), KV("y", int64(7)))
	nums.Advance()
	pairsIn.Advance()
	probe.WaitFor(0)
	nums.OnNext(5)
	pairsIn.OnNext()
	nums.Close()
	pairsIn.Close()
	if err := scope.C.Join(); err != nil {
		t.Fatal(err)
	}

	// Spot checks across the surface.
	got := mergedCol.Epoch(0)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if fmt.Sprint(got) != "[1 2 4 6 9]" { // squares of odds {1,9} ∪ doubles {2,4,6}
		t.Fatalf("merged epoch 0 = %v", got)
	}
	if m := asMap(minCol.Epoch(0)); m["x"] != 4 || m["y"] != 7 {
		t.Fatalf("mins = %v", m)
	}
	if m := asMap(sumCol.Epoch(0)); m["x"] != 13 || m["y"] != 7 {
		t.Fatalf("sums = %v", m)
	}
	if m := asMap(foldCol.Epoch(0)); m["x"] != 2 || m["y"] != 1 {
		t.Fatalf("fold counts = %v", m)
	}
	joins := joinCol.Epoch(0)
	sort.Strings(joins)
	if fmt.Sprint(joins) != "[x:4-9 y:7-7]" {
		t.Fatalf("joins = %v", joins)
	}
	if last := bestCol.Epoch(0); len(last) == 0 {
		t.Fatal("no monotonic emissions")
	}
	if tops := topCol.Epoch(0); len(tops) != 1 || tops[0].Val != 9 {
		t.Fatalf("top = %v", tops)
	}
	bcastMu.Lock()
	if len(bcastSeen) != 4 {
		t.Fatalf("broadcast reached %d workers", len(bcastSeen))
	}
	bcastMu.Unlock()
	// Window 0 = epochs 0+1 → sum of 1,2,3,5 = 11 (split across worker
	// vertices; total is what matters).
	var winTotal int64
	for _, v := range winCol.Epoch(1) {
		winTotal += v
	}
	if winTotal != 11 {
		t.Fatalf("window sum = %d", winTotal)
	}
	if len(slideCol.Epochs()) == 0 {
		t.Fatal("sliding window emitted nothing")
	}
}

func asMap(ps []Pair[string, int64]) map[string]int64 {
	m := map[string]int64{}
	for _, p := range ps {
		m[p.Key] = p.Val
	}
	return m
}
