// Package naiad is a Go implementation of Naiad (SOSP 2013): a timely
// dataflow system supporting high-throughput batch processing, low-latency
// streaming, and iterative and incremental computation in one framework.
//
// The package re-exports the supported public surface of the internal
// packages:
//
//   - the low-level timely dataflow API of §2.2 (Vertex, Context, SendBy,
//     NotifyAt) over a distributed runtime of workers, exchange
//     connectors, and the progress-tracking protocol of §3;
//   - the operator library of §4 (Select, Where, SelectMany, GroupBy,
//     Concat, Distinct, Join, Count, monotonic Aggregate, Iterate loops,
//     Subscribe) as typed generics over streams;
//   - inputs, epochs, probes, and checkpoint/restore.
//
// # Quickstart
//
//	scope, _ := naiad.NewScope(naiad.DefaultConfig(4))
//	docs, stream := naiad.NewInput[string](scope, "docs", nil)
//	words := naiad.SelectMany(stream, strings.Fields, nil)
//	counts := naiad.Count(words, nil)
//	results := naiad.Collect(counts)
//	scope.C.Start()
//	docs.OnNext("a b a")
//	docs.Close()
//	scope.C.Join()
//
// See the examples/ directory for complete programs, DESIGN.md for the
// architecture, and EXPERIMENTS.md for the reproduction of the paper's
// evaluation.
package naiad

import (
	"naiad/internal/codec"
	"naiad/internal/lib"
	"naiad/internal/runtime"
	ts "naiad/internal/timestamp"
)

// Core runtime types (§2.2, §3).
type (
	// Config sizes a computation: processes, workers, progress-protocol
	// accumulation, transport.
	Config = runtime.Config
	// Computation owns a dataflow graph and the cluster executing it.
	Computation = runtime.Computation
	// Context is a vertex's handle for SendBy and NotifyAt (§2.2).
	Context = runtime.Context
	// Vertex is the low-level timely dataflow vertex interface (§2.2).
	Vertex = runtime.Vertex
	// VertexFactory instantiates one vertex of a stage on its worker.
	VertexFactory = runtime.VertexFactory
	// Message is an untyped dataflow record.
	Message = runtime.Message
	// Timestamp is a logical time: epoch plus loop counters (§2.1).
	Timestamp = ts.Timestamp
	// Snapshot is a consistent checkpoint of all stateful vertices (§3.4).
	Snapshot = runtime.Snapshot
	// Checkpointer is implemented by vertices with durable state (§3.4).
	Checkpointer = runtime.Checkpointer
	// Accumulation selects progress-update batching (§3.3).
	Accumulation = runtime.Accumulation
	// Probe observes epoch completion at a stage.
	Probe = runtime.Probe
	// StageID identifies a dataflow stage.
	StageID = runtime.StageID
	// Partitioner routes records between parallel vertices (§3.1).
	Partitioner = runtime.Partitioner
	// Codec serializes record batches crossing process boundaries.
	Codec = codec.Codec
	// Scope wraps a Computation for typed operator construction.
	Scope = lib.Scope
)

// Accumulation modes (Figure 6c).
const (
	AccNone        = runtime.AccNone
	AccLocal       = runtime.AccLocal
	AccGlobal      = runtime.AccGlobal
	AccLocalGlobal = runtime.AccLocalGlobal
)

// Generic operator-library types (§4).
type (
	// Stream is a typed handle to a stage output.
	Stream[T any] = lib.Stream[T]
	// Input feeds epochs of records into the dataflow (§4.1).
	Input[T any] = lib.Input[T]
	// Pair is a key-value record.
	Pair[K comparable, V any] = lib.Pair[K, V]
	// Collector accumulates per-epoch results for external inspection.
	Collector[T any] = lib.Collector[T]
	// Loop is a loop context under construction (§4.3).
	Loop[T any] = lib.Loop[T]
)

// DefaultConfig returns a single-process configuration with the given
// worker count and Naiad's default progress accumulation.
func DefaultConfig(workers int) Config { return runtime.DefaultConfig(workers) }

// NewComputation builds an empty computation.
func NewComputation(cfg Config) (*Computation, error) { return runtime.NewComputation(cfg) }

// NewScope builds a computation and wraps it for operator construction.
func NewScope(cfg Config) (*Scope, error) { return lib.NewScope(cfg) }

// NewInput adds a typed input stage (§4.1). cod may be nil to use gob.
func NewInput[T any](s *Scope, name string, cod Codec) (*Input[T], *Stream[T]) {
	return lib.NewInput[T](s, name, cod)
}

// Select transforms each record without coordination (§4.2).
func Select[A, B any](s *Stream[A], f func(A) B, cod Codec) *Stream[B] {
	return lib.Select(s, f, cod)
}

// Where filters records without coordination (§4.2).
func Where[A any](s *Stream[A], pred func(A) bool) *Stream[A] { return lib.Where(s, pred) }

// SelectMany expands each record into zero or more outputs (§4.1).
func SelectMany[A, B any](s *Stream[A], f func(A) []B, cod Codec) *Stream[B] {
	return lib.SelectMany(s, f, cod)
}

// Exchange repartitions a stream by hash (§3.1).
func Exchange[A any](s *Stream[A], h func(A) uint64) *Stream[A] { return lib.Exchange(s, h) }

// Concat merges two streams without coordination (§4.2).
func Concat[A any](a, b *Stream[A]) *Stream[A] { return lib.Concat(a, b) }

// Distinct emits first occurrences per timestamp, immediately (§4.2).
func Distinct[A comparable](s *Stream[A]) *Stream[A] { return lib.Distinct(s) }

// DistinctCumulative emits first-ever occurrences across all timestamps,
// the asynchronous set semantics used inside Bloom-style loops (§4.2).
func DistinctCumulative[A comparable](s *Stream[A]) *Stream[A] { return lib.DistinctCumulative(s) }

// GroupBy collates by key and reduces when each time completes (§4.1).
func GroupBy[A any, K comparable, R any](s *Stream[A], key func(A) K, reduce func(K, []A) []R, cod Codec) *Stream[R] {
	return lib.GroupBy(s, key, reduce, cod)
}

// FoldByKey folds each key's values per time.
func FoldByKey[K comparable, V any, S any](s *Stream[Pair[K, V]], init func(K) S, fold func(S, V) S, cod Codec) *Stream[Pair[K, S]] {
	return lib.FoldByKey(s, init, fold, cod)
}

// Count counts occurrences of each record per time (Figure 4).
func Count[A comparable](s *Stream[A], cod Codec) *Stream[Pair[A, int64]] {
	return lib.Count(s, cod)
}

// MinByKey keeps each key's per-time minimum.
func MinByKey[K comparable, V any](s *Stream[Pair[K, V]], less func(a, b V) bool, cod Codec) *Stream[Pair[K, V]] {
	return lib.MinByKey(s, less, cod)
}

// MaxByKey keeps each key's per-time maximum.
func MaxByKey[K comparable, V any](s *Stream[Pair[K, V]], less func(a, b V) bool, cod Codec) *Stream[Pair[K, V]] {
	return lib.MaxByKey(s, less, cod)
}

// Join is the asynchronous cumulative hash join (§4.2).
func Join[K comparable, A, B, R any](a *Stream[Pair[K, A]], b *Stream[Pair[K, B]], f func(K, A, B) R, cod Codec) *Stream[R] {
	return lib.Join(a, b, f, cod)
}

// JoinByTime is the synchronous per-time relational join.
func JoinByTime[K comparable, A, B, R any](a *Stream[Pair[K, A]], b *Stream[Pair[K, B]], f func(K, A, B) R, cod Codec) *Stream[R] {
	return lib.JoinByTime(a, b, f, cod)
}

// AggregateMonotonic emits per-key improvements under `better` (§4.2).
func AggregateMonotonic[K comparable, V any](s *Stream[Pair[K, V]], better func(candidate, incumbent V) bool) *Stream[Pair[K, V]] {
	return lib.AggregateMonotonic(s, better)
}

// Iterate builds a fixed-point loop over the stream (§4.3).
func Iterate[T any](s *Stream[T], maxIters int64, body func(inner *Stream[T]) *Stream[T]) *Stream[T] {
	return lib.Iterate(s, maxIters, body)
}

// IterateBatched builds a bulk-synchronous fixed-point loop: f sees each
// iteration's full per-partition batch and splits it into continuing and
// finished records.
func IterateBatched[T any](s *Stream[T], maxIters int64, part func(T) uint64,
	f func(iter int64, recs []T) (continue_, done []T)) *Stream[T] {
	return lib.IterateBatched(s, maxIters, part, f)
}

// EnterLoop passes a stream into a loop context through an ingress stage.
func EnterLoop[T any](s *Stream[T], innerDepth uint8) *Stream[T] {
	return lib.EnterLoop(s, innerDepth)
}

// LeaveLoop passes a stream out of its loop through an egress stage.
func LeaveLoop[T any](s *Stream[T]) *Stream[T] { return lib.LeaveLoop(s) }

// NewLoop opens a loop context for manual wiring (§4.3).
func NewLoop[T any](scope *Scope, depth uint8, example *Stream[T], maxIters int64) *Loop[T] {
	return lib.NewLoop(scope, depth, example, maxIters)
}

// Subscribe invokes f once per completed epoch with its records (§4.1).
func Subscribe[T any](s *Stream[T], f func(epoch int64, records []T)) StageID {
	return lib.Subscribe(s, f)
}

// SubscribeParallel invokes f once per completed epoch at every worker,
// with that worker's share of the records.
func SubscribeParallel[T any](s *Stream[T], f func(worker int, epoch int64, records []T)) {
	lib.SubscribeParallel(s, f)
}

// Collect attaches a Collector to a stream.
func Collect[T any](s *Stream[T]) *Collector[T] { return lib.Collect(s) }

// NewProbe registers an epoch-completion probe downstream of a stream.
func NewProbe[T any](s *Stream[T]) *Probe { return lib.Probe(s) }

// KV constructs a Pair.
func KV[K comparable, V any](k K, v V) Pair[K, V] { return lib.KV(k, v) }

// Diff is a weighted record: the unit of incremental collections (§4.1's
// library for incremental computation). Delta +1 inserts, -1 deletes.
type Diff[T any] = lib.Diff[T]

// AddRec is an insertion diff.
func AddRec[T any](rec T) Diff[T] { return lib.Add(rec) }

// DelRec is a deletion diff.
func DelRec[T any](rec T) Diff[T] { return lib.Del(rec) }

// DiffSelect transforms an incremental collection, preserving weights.
func DiffSelect[A, B any](s *Stream[Diff[A]], f func(A) B, cod Codec) *Stream[Diff[B]] {
	return lib.DiffSelect(s, f, cod)
}

// DiffWhere filters an incremental collection.
func DiffWhere[A any](s *Stream[Diff[A]], pred func(A) bool) *Stream[Diff[A]] {
	return lib.DiffWhere(s, pred)
}

// DiffSelectMany expands records of an incremental collection.
func DiffSelectMany[A, B any](s *Stream[Diff[A]], f func(A) []B, cod Codec) *Stream[Diff[B]] {
	return lib.DiffSelectMany(s, f, cod)
}

// DiffDistinct maintains the set of records with positive multiplicity,
// emitting membership changes.
func DiffDistinct[A comparable](s *Stream[Diff[A]]) *Stream[Diff[A]] {
	return lib.DiffDistinct(s)
}

// DiffCount maintains per-key counts, emitting count corrections.
func DiffCount[K comparable](s *Stream[Diff[K]], cod Codec) *Stream[Diff[Pair[K, int64]]] {
	return lib.DiffCount(s, cod)
}

// DiffJoin incrementally joins two keyed collections with retraction.
func DiffJoin[K comparable, A, B, R any](a *Stream[Diff[Pair[K, A]]], b *Stream[Diff[Pair[K, B]]],
	f func(K, A, B) R, cod Codec) *Stream[Diff[R]] {
	return lib.DiffJoin(a, b, f, cod)
}

// Consolidate combines same-record diffs within each epoch.
func Consolidate[A comparable](s *Stream[Diff[A]]) *Stream[Diff[A]] {
	return lib.Consolidate(s)
}

// BoundedStaleness constrains how far iterations run ahead (§2.4).
func BoundedStaleness[T any](s *Stream[T], k int64) *Stream[T] {
	return lib.BoundedStaleness(s, k)
}

// TumblingWindow groups `size` consecutive epochs and reduces each window.
func TumblingWindow[A, B any](s *Stream[A], size int64,
	f func(window int64, recs []A, emit func(B)), cod Codec) *Stream[B] {
	return lib.TumblingWindow(s, size, f, cod)
}

// SlidingWindowDiffs turns a stream into an incremental collection over
// the last `size` epochs (insert now, retract size epochs later).
func SlidingWindowDiffs[A any](s *Stream[A], size int64) *Stream[Diff[A]] {
	return lib.SlidingWindowDiffs(s, size)
}

// TopK emits each time's k greatest records under less.
func TopK[A any](s *Stream[A], k int, less func(a, b A) bool, cod Codec) *Stream[A] {
	return lib.TopK(s, k, less, cod)
}

// SumByKey folds int64 values per key per time.
func SumByKey[K comparable](s *Stream[Pair[K, int64]], cod Codec) *Stream[Pair[K, int64]] {
	return lib.SumByKey(s, cod)
}

// Broadcast delivers every record to one vertex on every worker.
func Broadcast[A any](s *Stream[A], cod Codec) *Stream[A] {
	return lib.Broadcast(s, cod)
}

// Hash maps a comparable key to a mixed 64-bit value for exchanges.
func Hash[K comparable](k K) uint64 { return lib.Hash(k) }

// Int64Codec is the fast codec for int64 records.
func Int64Codec() Codec { return codec.Int64() }

// StringCodec is the fast codec for string records.
func StringCodec() Codec { return codec.String() }

// Float64Codec is the fast codec for float64 records.
func Float64Codec() Codec { return codec.Float64() }

// GobCodec is the reflection-based fallback codec for arbitrary records.
func GobCodec[T any]() Codec { return codec.Gob[T]() }
