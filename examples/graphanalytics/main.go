// Graph analytics: iterative computation on a synthetic power-law graph —
// the §6.1 workloads at laptop scale. Runs weakly connected components
// (incrementally, across two epochs of edges) and PageRank, printing
// summaries of both.
package main

import (
	"fmt"
	"os"
	"sort"

	"naiad"
	"naiad/internal/graphalgo"
	"naiad/internal/lib"
	"naiad/internal/workload"
)

func main() {
	cfg := naiad.Config{Processes: 2, WorkersPerProcess: 2, Accumulation: naiad.AccLocalGlobal}

	// NAIAD_EXAMPLE_QUICK shrinks the workload for smoke tests.
	wccNodes, wccEdges, prNodes, prEdges, prIters := 3000, 4000, int64(3000), 12000, int64(10)
	if os.Getenv("NAIAD_EXAMPLE_QUICK") != "" {
		wccNodes, wccEdges, prNodes, prEdges, prIters = 300, 400, 300, 1200, 3
	}

	// --- Incremental weakly connected components -----------------------
	scope, err := lib.NewScope(cfg)
	if err != nil {
		panic(err)
	}
	edgesIn, edges := lib.NewInput[workload.Edge](scope, "edges", graphalgo.EdgeCodec())
	labels := graphalgo.BuildWCC(scope, edges, 1_000_000)
	col := lib.Collect(labels)
	if err := scope.C.Start(); err != nil {
		panic(err)
	}

	// Epoch 0: a random graph with many components.
	epoch0 := workload.RandomGraph(1, wccNodes, wccEdges)
	edgesIn.Send(epoch0...)
	edgesIn.Advance()
	col.WaitFor(0)
	fmt.Printf("WCC epoch 0: %d components over %d edges\n",
		countComponents(col, 0), len(epoch0))

	// Epoch 1: more edges arrive; components merge incrementally — only
	// label improvements flow through the dataflow.
	epoch1 := workload.RandomGraph(2, wccNodes, wccEdges)
	edgesIn.Send(epoch1...)
	edgesIn.Advance()
	col.WaitFor(1)
	fmt.Printf("WCC epoch 1: %d components after %d more edges (%d label improvements)\n",
		countComponents(col, 1), len(epoch1), len(col.Epoch(1)))
	edgesIn.Close()
	if err := scope.C.Join(); err != nil {
		panic(err)
	}

	// --- PageRank -------------------------------------------------------
	prScope, err := lib.NewScope(cfg)
	if err != nil {
		panic(err)
	}
	prGraph := workload.PowerLawGraph(7, int(prNodes), prEdges, 1.3)
	ranks, err := graphalgo.PageRank(prScope, prGraph, graphalgo.PageRankConfig{
		Nodes: prNodes, Iters: prIters, Damping: 0.85,
	})
	if err != nil {
		panic(err)
	}
	type nr struct {
		node int64
		rank float64
	}
	top := make([]nr, 0, len(ranks))
	for n, r := range ranks {
		top = append(top, nr{n, r})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].rank > top[j].rank })
	fmt.Printf("PageRank top 5 after %d iterations:\n", prIters)
	for _, t := range top[:5] {
		fmt.Printf("  node %5d  rank %.6f\n", t.node, t.rank)
	}
}

// countComponents folds all label improvements up to an epoch into final
// assignments and counts distinct components.
func countComponents(col *lib.Collector[lib.Pair[int64, int64]], upTo int64) int {
	final := map[int64]int64{}
	for e := int64(0); e <= upTo; e++ {
		for _, p := range col.Epoch(e) {
			if cur, ok := final[p.Key]; !ok || p.Val < cur {
				final[p.Key] = p.Val
			}
		}
	}
	comps := map[int64]struct{}{}
	for _, c := range final {
		comps[c] = struct{}{}
	}
	return len(comps)
}
