// Socialstream: the Figure 1 application — real-time queries against a
// continually updated, iteratively computed view. Tweets stream in; an
// incremental connected-components analysis of the mention graph and a
// per-component top-hashtag table are maintained; interactive queries ask
// for the hottest hashtag in a user's community, under both the Fresh and
// the 1s-delay serving policies of §6.4.
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"naiad"
	"naiad/internal/socialgraph"
	"naiad/internal/workload"
)

func main() {
	for _, policy := range []socialgraph.Policy{socialgraph.Fresh, socialgraph.Stale} {
		run(policy)
	}
}

func run(policy socialgraph.Policy) {
	var mu sync.Mutex
	sent := map[int64]time.Time{}
	type timedAnswer struct {
		ans socialgraph.Answer
		lat time.Duration
	}
	var answers []timedAnswer

	cfg := naiad.Config{Processes: 2, WorkersPerProcess: 2, Accumulation: naiad.AccLocalGlobal}
	app, err := socialgraph.Build(cfg, policy, func(a socialgraph.Answer) {
		mu.Lock()
		answers = append(answers, timedAnswer{ans: a, lat: time.Since(sent[a.ID])})
		mu.Unlock()
	})
	if err != nil {
		panic(err)
	}
	if err := app.Scope.C.Start(); err != nil {
		panic(err)
	}

	// NAIAD_EXAMPLE_QUICK shrinks the workload for smoke tests.
	epochs, batch := 10, 2000
	if os.Getenv("NAIAD_EXAMPLE_QUICK") != "" {
		epochs, batch = 3, 200
	}
	gen := workload.NewTweetGen(42, 20_000, 200)
	id := int64(0)
	for epoch := 0; epoch < epochs; epoch++ {
		app.Tweets.Send(gen.Batch(batch)...)
		// Two interactive queries per epoch, for users from the stream.
		for q := 0; q < 2; q++ {
			user := gen.Batch(1)[0].User
			mu.Lock()
			sent[id] = time.Now()
			mu.Unlock()
			app.Queries.Send(socialgraph.Query{ID: id, User: user})
			id++
		}
		app.Advance()
	}
	app.Close()
	if err := app.Scope.C.Join(); err != nil {
		panic(err)
	}

	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("policy %q: %d answers\n", policy, len(answers))
	for _, ta := range answers[:min(4, len(answers))] {
		fmt.Printf("  user %6d → component %6d, top tag %-8s (epoch %d, %s)\n",
			ta.ans.User, ta.ans.CID, orNone(ta.ans.TopTag), ta.ans.Epoch, ta.lat.Round(time.Microsecond))
	}
}

func orNone(tag string) string {
	if tag == "" {
		return "(none)"
	}
	return tag
}
