// Trending: sliding-window stream analytics — the hottest hashtags over
// the last W epochs of a tweet stream, recomputed incrementally as the
// window slides. Composes SlidingWindowDiffs (insert now, retract W epochs
// later) with the incremental DiffCount and a per-epoch TopK — the
// retraction-based windowing §7 of the paper points at.
package main

import (
	"fmt"
	"os"
	"sort"
	"sync"

	"naiad"
	"naiad/internal/workload"
)

const window = 3 // epochs

func main() {
	scope, err := naiad.NewScope(naiad.DefaultConfig(4))
	if err != nil {
		panic(err)
	}

	tweets, stream := naiad.NewInput[string](scope, "hashtags", naiad.StringCodec())
	windowed := naiad.SlidingWindowDiffs(stream, window)
	counts := naiad.DiffCount(windowed, nil)

	// Maintain the live windowed count table and print the top 3 as each
	// epoch completes.
	var mu sync.Mutex
	table := map[string]int64{}
	naiad.Subscribe(counts, func(epoch int64, corrections []naiad.Diff[naiad.Pair[string, int64]]) {
		mu.Lock()
		defer mu.Unlock()
		for _, d := range corrections {
			if d.Delta > 0 {
				table[d.Rec.Key] = d.Rec.Val
			} else if table[d.Rec.Key] == d.Rec.Val {
				delete(table, d.Rec.Key)
			}
		}
		type tc struct {
			tag string
			n   int64
		}
		top := make([]tc, 0, len(table))
		for tag, n := range table {
			top = append(top, tc{tag, n})
		}
		sort.Slice(top, func(i, j int) bool {
			if top[i].n != top[j].n {
				return top[i].n > top[j].n
			}
			return top[i].tag < top[j].tag
		})
		if len(top) > 3 {
			top = top[:3]
		}
		fmt.Printf("epoch %2d trending(last %d epochs):", epoch, window)
		for _, t := range top {
			fmt.Printf(" %s×%d", t.tag, t.n)
		}
		fmt.Println()
	})

	if err := scope.C.Start(); err != nil {
		panic(err)
	}

	// NAIAD_EXAMPLE_QUICK shrinks the workload for smoke tests.
	epochs, batch, burst := 8, 400, 300
	if os.Getenv("NAIAD_EXAMPLE_QUICK") != "" {
		epochs, batch, burst = 5, 50, 40
	}
	gen := workload.NewTweetGen(11, 10_000, 30)
	for epoch := 0; epoch < epochs; epoch++ {
		var tags []string
		for _, tw := range gen.Batch(batch) {
			tags = append(tags, tw.Hashtags...)
		}
		// A burst topic trends in epochs 3-4 and then falls out of the
		// window as it slides.
		if epoch == 3 || epoch == 4 {
			for i := 0; i < burst; i++ {
				tags = append(tags, "#breaking")
			}
		}
		tweets.OnNext(tags...)
	}
	tweets.Close()
	if err := scope.C.Join(); err != nil {
		panic(err)
	}
}
