// Incremental: a live, correctable word count built on the incremental
// collection operators (§4.1's "library for incremental computation" —
// differential-dataflow-style weighted records). Documents can be added
// *and retracted*; each epoch the dataflow emits only the corrections to
// the count table, and the accumulated table always equals a from-scratch
// recomputation.
package main

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"naiad"
)

func main() {
	scope, err := naiad.NewScope(naiad.DefaultConfig(4))
	if err != nil {
		panic(err)
	}

	docs, stream := naiad.NewInput[naiad.Diff[string]](scope, "docs", nil)
	words := naiad.DiffSelectMany(stream, strings.Fields, nil)
	counts := naiad.DiffCount(words, nil)

	var mu sync.Mutex
	table := map[string]int64{}
	naiad.Subscribe(counts, func(epoch int64, corrections []naiad.Diff[naiad.Pair[string, int64]]) {
		mu.Lock()
		for _, d := range corrections {
			if d.Delta > 0 {
				table[d.Rec.Key] = d.Rec.Val
			} else if table[d.Rec.Key] == d.Rec.Val {
				delete(table, d.Rec.Key)
			}
		}
		fmt.Printf("epoch %d: %d corrections → table %s\n", epoch, len(corrections), render(table))
		mu.Unlock()
	})

	if err := scope.C.Start(); err != nil {
		panic(err)
	}

	// Epoch 0: two documents arrive.
	docs.OnNext(
		naiad.AddRec("the cat sat on the mat"),
		naiad.AddRec("the dog sat"),
	)
	// Epoch 1: the first document is retracted — a correction, not a
	// recomputation: only the affected words change.
	docs.OnNext(naiad.DelRec("the cat sat on the mat"))
	// Epoch 2: a replacement document arrives.
	docs.OnNext(naiad.AddRec("the cat slept"))
	docs.Close()
	if err := scope.C.Join(); err != nil {
		panic(err)
	}
}

func render(table map[string]int64) string {
	keys := make([]string, 0, len(table))
	for k := range table {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, table[k])
	}
	return "{" + strings.Join(parts, " ") + "}"
}
