// Serving: the multi-tenant front door over a live dataflow. A word-count
// computation runs behind an HTTP server; two tenants stream k=v records
// into the shared flow through sessioned connections, records are batched
// into epochs at the edge, and reads come back frontier-stamped — a read
// that names the epoch of its own write always observes it (read your
// writes). See docs/serving.md for the protocol and admission semantics.
package main

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"naiad/internal/lib"
	"naiad/internal/runtime"
	"naiad/internal/serve"
)

func main() {
	// The dataflow: k=v records update a frontier-stamped table.
	table := serve.NewTable()
	scope, err := lib.NewScope(runtime.Config{Processes: 1, WorkersPerProcess: 2})
	if err != nil {
		panic(err)
	}
	in, stream := lib.NewInput[string](scope, "events", nil)
	sub := lib.Subscribe(stream, func(epoch int64, recs []string) {
		entries := make(map[string][]byte)
		for _, r := range recs {
			if k, v, ok := strings.Cut(r, "="); ok {
				entries[k] = []byte(v)
			}
		}
		table.Update(epoch, entries)
	})
	probe := scope.C.NewProbe(sub)
	if err := scope.C.Start(); err != nil {
		panic(err)
	}

	// The front door: epoch batching at the edge, credit-based admission,
	// and the degradation ladder, all tuned down for a demo-sized run.
	cfg := serve.DefaultConfig()
	cfg.EpochInterval = 2 * time.Millisecond
	srv := serve.NewServer(cfg)
	err = srv.Register(serve.Flow{Name: "wc", Input: in.Raw(), Probe: probe, View: table})
	if err != nil {
		panic(err)
	}
	if err := srv.Start(); err != nil {
		panic(err)
	}

	// NAIAD_EXAMPLE_QUICK shrinks the workload for smoke tests.
	epochs, batch := 50, 200
	if os.Getenv("NAIAD_EXAMPLE_QUICK") != "" {
		epochs, batch = 5, 20
	}

	// Two tenants stream concurrently; each write epoch is acknowledged, so
	// the tenants can read their own writes at that epoch.
	tenants := []string{"acme", "globex"}
	done := make(chan error, len(tenants))
	for _, tenant := range tenants {
		go func(tenant string) {
			c, err := serve.Dial(srv.Addr(), tenant, "wc", serve.ClientOptions{})
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			var lastKey string
			var lastEpoch int64
			for e := 0; e < epochs; e++ {
				recs := make([]string, batch)
				for i := range recs {
					recs[i] = fmt.Sprintf("%s_%d_%d=%d", tenant, e, i, e*batch+i)
				}
				ack, err := c.SendStrings(recs...)
				if err != nil {
					done <- err
					return
				}
				lastKey, lastEpoch = fmt.Sprintf("%s_%d_0", tenant, e), ack.Epoch
			}
			// Read-your-writes: ask for the last write at its acked epoch.
			val, epoch, err := c.Read(lastKey, lastEpoch)
			if err != nil {
				done <- err
				return
			}
			fmt.Printf("%s: read %s=%s complete through epoch %d\n", tenant, lastKey, val, epoch)
			done <- nil
		}(tenant)
	}
	for range tenants {
		if err := <-done; err != nil {
			panic(err)
		}
	}

	snap := srv.Metrics().Snapshot()
	fmt.Printf("served %d records from %d tenants across %d epochs (mode %s, ack p99 %.2fms)\n",
		snap.RecordsAccepted, snap.TenantsSeen, snap.EpochsCompleted, snap.Mode,
		float64(snap.AckLatency.P99)/1e6)

	// Shutdown closes the flow's input (the server is its single producer),
	// so the computation drains and Joins cleanly.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		panic(err)
	}
	if err := scope.C.Join(); err != nil {
		panic(err)
	}
}
