// Quickstart: the prototypical Naiad program of §4.1 — an incrementally
// updated MapReduce (word count) fed epoch by epoch, with per-epoch
// results delivered through Subscribe.
package main

import (
	"fmt"
	"sort"
	"strings"

	"naiad"
)

func main() {
	// One process, four workers, default progress accumulation.
	scope, err := naiad.NewScope(naiad.DefaultConfig(4))
	if err != nil {
		panic(err)
	}

	// 1a. Define the input stage.
	docs, stream := naiad.NewInput[string](scope, "docs", naiad.StringCodec())

	// 1b. Define the dataflow: SelectMany then Count (GroupBy+reduce).
	words := naiad.SelectMany(stream, strings.Fields, naiad.StringCodec())
	counts := naiad.Count(words, nil)

	// 1c. Define the per-epoch output callback.
	naiad.Subscribe(counts, func(epoch int64, records []naiad.Pair[string, int64]) {
		sort.Slice(records, func(i, j int) bool {
			if records[i].Val != records[j].Val {
				return records[i].Val > records[j].Val
			}
			return records[i].Key < records[j].Key
		})
		fmt.Printf("epoch %d:", epoch)
		for i, p := range records {
			if i == 5 {
				fmt.Printf(" …(%d more)", len(records)-5)
				break
			}
			fmt.Printf(" %s=%d", p.Key, p.Val)
		}
		fmt.Println()
	})

	if err := scope.C.Start(); err != nil {
		panic(err)
	}

	// 2. Supply epochs of input.
	docs.OnNext(
		"the quick brown fox jumps over the lazy dog",
		"the dog barks",
	)
	docs.OnNext("a new epoch arrives with new words")
	docs.OnNext("the end")
	docs.Close()

	if err := scope.C.Join(); err != nil {
		panic(err)
	}
}
