package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// collector gathers delivered frames per process, thread-safely.
type collector struct {
	mu     sync.Mutex
	frames []frame
	signal chan struct{}
}

func newCollector() *collector {
	return &collector{signal: make(chan struct{}, 1024)}
}

func (c *collector) handler(from int, kind Kind, payload []byte) {
	c.mu.Lock()
	c.frames = append(c.frames, frame{from: from, kind: kind, payload: payload})
	c.mu.Unlock()
	c.signal <- struct{}{}
}

func (c *collector) waitFor(t *testing.T, n int) []frame {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		c.mu.Lock()
		if len(c.frames) >= n {
			out := append([]frame(nil), c.frames...)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		select {
		case <-c.signal:
		case <-deadline:
			t.Fatalf("timed out waiting for %d frames", n)
		}
	}
}

func testTransportBasics(t *testing.T, mk func(n int) Transport) {
	tr := mk(3)
	defer tr.Close()
	if tr.Processes() != 3 {
		t.Fatalf("Processes = %d", tr.Processes())
	}
	cols := make([]*collector, 3)
	for i := range cols {
		cols[i] = newCollector()
		tr.SetHandler(i, cols[i].handler)
	}
	tr.Send(0, 1, KindData, []byte("hello"))
	tr.Send(2, 1, KindProgress, []byte("prog"))
	tr.Send(1, 1, KindControl, []byte("self"))
	frames := cols[1].waitFor(t, 3)
	byKind := map[Kind]frame{}
	for _, f := range frames {
		byKind[f.kind] = f
	}
	if f := byKind[KindData]; f.from != 0 || string(f.payload) != "hello" {
		t.Errorf("data frame = %+v", f)
	}
	if f := byKind[KindProgress]; f.from != 2 || string(f.payload) != "prog" {
		t.Errorf("progress frame = %+v", f)
	}
	if f := byKind[KindControl]; f.from != 1 || string(f.payload) != "self" {
		t.Errorf("control frame = %+v", f)
	}
}

func testTransportFIFO(t *testing.T, mk func(n int) Transport) {
	tr := mk(2)
	defer tr.Close()
	col := newCollector()
	tr.SetHandler(0, func(int, Kind, []byte) {})
	tr.SetHandler(1, col.handler)
	const n = 500
	for i := 0; i < n; i++ {
		tr.Send(0, 1, KindData, []byte(fmt.Sprintf("%06d", i)))
	}
	frames := col.waitFor(t, n)
	for i, f := range frames[:n] {
		if string(f.payload) != fmt.Sprintf("%06d", i) {
			t.Fatalf("frame %d out of order: %q", i, f.payload)
		}
	}
}

func testTransportStats(t *testing.T, mk func(n int) Transport) {
	tr := mk(2)
	defer tr.Close()
	col := newCollector()
	tr.SetHandler(0, func(int, Kind, []byte) {})
	tr.SetHandler(1, col.handler)
	tr.Send(0, 1, KindData, make([]byte, 100))
	tr.Send(0, 0, KindData, make([]byte, 100)) // local: not counted
	col.waitFor(t, 1)
	st := tr.Stats()
	if st.Frames(KindData) != 1 {
		t.Fatalf("frames = %d", st.Frames(KindData))
	}
	if st.Bytes(KindData) != 100+FrameOverhead {
		t.Fatalf("bytes = %d", st.Bytes(KindData))
	}
	if st.TotalBytes() != st.Bytes(KindData) {
		t.Fatal("total mismatch")
	}
	st.Reset()
	if st.TotalBytes() != 0 {
		t.Fatal("reset")
	}
}

func testTransportConcurrentSenders(t *testing.T, mk func(n int) Transport) {
	tr := mk(4)
	defer tr.Close()
	cols := make([]*collector, 4)
	for i := range cols {
		cols[i] = newCollector()
		tr.SetHandler(i, cols[i].handler)
	}
	const per = 200
	var wg sync.WaitGroup
	for from := 0; from < 4; from++ {
		wg.Add(1)
		go func(from int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for to := 0; to < 4; to++ {
					tr.Send(from, to, KindData, []byte{byte(from), byte(i)})
				}
			}
		}(from)
	}
	wg.Wait()
	for toIdx, col := range cols {
		frames := col.waitFor(t, 4*per)
		// Per-source FIFO: frames from each source arrive in send order.
		next := map[int]int{}
		for _, f := range frames {
			if int(f.payload[1]) != next[f.from] {
				t.Fatalf("to %d: frame from %d out of order: got %d want %d",
					toIdx, f.from, f.payload[1], next[f.from])
			}
			next[f.from]++
		}
	}
}

func TestMemBasics(t *testing.T) { testTransportBasics(t, func(n int) Transport { return NewMem(n) }) }
func TestMemFIFO(t *testing.T)   { testTransportFIFO(t, func(n int) Transport { return NewMem(n) }) }
func TestMemStats(t *testing.T)  { testTransportStats(t, func(n int) Transport { return NewMem(n) }) }
func TestMemConcurrent(t *testing.T) {
	testTransportConcurrentSenders(t, func(n int) Transport { return NewMem(n) })
}

func mkTCP(t *testing.T) func(n int) Transport {
	return func(n int) Transport {
		tr, err := NewTCPLoopback(n)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
}

func TestTCPBasics(t *testing.T) { testTransportBasics(t, mkTCP(t)) }
func TestTCPFIFO(t *testing.T)   { testTransportFIFO(t, mkTCP(t)) }
func TestTCPStats(t *testing.T)  { testTransportStats(t, mkTCP(t)) }
func TestTCPConcurrent(t *testing.T) {
	testTransportConcurrentSenders(t, mkTCP(t))
}

func TestMemSendAfterCloseDropped(t *testing.T) {
	tr := NewMem(2)
	tr.SetHandler(0, func(int, Kind, []byte) {})
	tr.SetHandler(1, func(int, Kind, []byte) {})
	tr.Close()
	tr.Send(0, 1, KindData, []byte("late")) // must not panic
	tr.Close()                              // idempotent
}

func TestMemPayloadCopied(t *testing.T) {
	tr := NewMem(2)
	defer tr.Close()
	col := newCollector()
	tr.SetHandler(0, func(int, Kind, []byte) {})
	tr.SetHandler(1, col.handler)
	buf := []byte("mutate-me")
	tr.Send(0, 1, KindData, buf)
	buf[0] = 'X'
	frames := col.waitFor(t, 1)
	if string(frames[0].payload) != "mutate-me" {
		t.Fatalf("payload aliased sender buffer: %q", frames[0].payload)
	}
}

func TestKindString(t *testing.T) {
	if KindData.String() != "data" || KindProgress.String() != "progress" ||
		KindControl.String() != "control" || Kind(9).String() != "kind(9)" {
		t.Fatal("Kind.String")
	}
}

func TestDoubleHandlerPanics(t *testing.T) {
	tr := NewMem(1)
	defer tr.Close()
	tr.SetHandler(0, func(int, Kind, []byte) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.SetHandler(0, func(int, Kind, []byte) {})
}
