package transport

import (
	"sync"
	"sync/atomic"
	"time"
)

// HeartbeatConfig parameterizes a Heartbeats wrapper.
type HeartbeatConfig struct {
	// Interval is the beat period on every directed inter-process link.
	Interval time.Duration
	// Timeout is the silence after which an observer suspects a peer. Zero
	// defaults to 4×Interval. Keep it a few intervals wide: a single delayed
	// beat (GC pause, congested link) must not look like a death.
	Timeout time.Duration
}

func (c HeartbeatConfig) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 4 * c.Interval
}

// Heartbeats wraps a Transport with a deadline-based failure detector
// (§3.4's "when a failure is detected" made concrete): every process beats
// every other process over the wrapped transport at a fixed interval, each
// receiver timestamps the last beat seen per peer, and a peer silent past
// the timeout is suspected. Beats travel through the inner transport, so
// whatever kills or delays real traffic — a crashed chaos process, a
// partition, a dead TCP socket — starves the beats too and turns into a
// suspicion instead of a silent hang.
//
// KindHeartbeat frames are consumed by the wrapper; the inner handler never
// sees them. Suspicions fire at most once per suspected peer.
//
// Attribution is by evidence degree: a sweep collects every directed link
// that is overdue and charges both endpoints, then accuses the process(es)
// with the most dead links. A crashed process touches 2(n-1) dead links
// while its healthy peers each touch only their two links to it, and the
// minority side of a partition accumulates more dead links than the
// majority side, so the accusation lands on the culprit. (After a first
// failure is latched its dead links keep inflating the degree baseline, so
// attribution of a *second*, later failure can be imprecise — consumers
// that tear down and rebuild on the first suspicion, as the supervisor
// does, are unaffected.)
type Heartbeats struct {
	inner Transport
	cfg   HeartbeatConfig
	n     int

	// lastSeen[observer*n+peer] is the unix-nano receipt time of the last
	// frame (beat or real traffic) observer got from peer.
	lastSeen []atomic.Int64
	// suspected[peer] latches so each peer is reported once.
	suspected []atomic.Bool

	// Callbacks are atomic: the setters race with the detector goroutine
	// started in NewHeartbeats.
	onSuspect atomic.Pointer[func(suspect int, silence time.Duration)]
	onMiss    atomic.Pointer[func()]

	misses atomic.Int64
	closed atomic.Bool
	stop   chan struct{}
	wg     sync.WaitGroup
}

// NewHeartbeats wraps inner with the failure detector. The wrapper owns the
// inner transport: Close closes it. Callbacks must be installed before the
// first beat can plausibly be missed, i.e. right after construction.
func NewHeartbeats(inner Transport, cfg HeartbeatConfig) *Heartbeats {
	if cfg.Interval <= 0 {
		panic("transport: heartbeat interval must be positive")
	}
	n := inner.Processes()
	h := &Heartbeats{
		inner:     inner,
		cfg:       cfg,
		n:         n,
		lastSeen:  make([]atomic.Int64, n*n),
		suspected: make([]atomic.Bool, n),
		stop:      make(chan struct{}),
	}
	// Seed the deadlines at construction so no peer is suspected before it
	// had a chance to beat.
	now := time.Now().UnixNano()
	for i := range h.lastSeen {
		h.lastSeen[i].Store(now)
	}
	h.wg.Add(1)
	go h.run()
	return h
}

// SetOnSuspect installs the suspicion callback: suspect has been silent on
// its overdue links for at least silence. It fires from the detector
// goroutine, at most once per suspect.
func (h *Heartbeats) SetOnSuspect(f func(suspect int, silence time.Duration)) {
	h.onSuspect.Store(&f)
}

// SetOnMiss installs a callback fired on every missed deadline check (once
// per overdue link per sweep), for observability counters.
func (h *Heartbeats) SetOnMiss(f func()) { h.onMiss.Store(&f) }

// Misses returns the cumulative count of overdue-link observations.
func (h *Heartbeats) Misses() int64 { return h.misses.Load() }

// Processes returns the process count.
func (h *Heartbeats) Processes() int { return h.n }

// SetHandler installs a filtering handler on the inner transport: beats are
// consumed here, everything else passes through. Every inbound frame — beat
// or real traffic — refreshes the sender's deadline, so heavy traffic never
// drowns out the detector. The stamp is on the receive path only: a frame
// is proof of liveness when it *arrives*, not when it was sent, so traffic
// the inner transport drops (partition, dead socket, exhausted reconnect
// budget) cannot mask a dead link.
func (h *Heartbeats) SetHandler(proc int, handler Handler) {
	h.inner.SetHandler(proc, func(from int, kind Kind, payload []byte) {
		h.lastSeen[proc*h.n+from].Store(time.Now().UnixNano())
		if kind == KindHeartbeat {
			return
		}
		handler(from, kind, payload)
	})
}

// Send passes through to the inner transport. Liveness is credited on
// delivery (see SetHandler), never at send time: whatever kills real
// traffic must starve the detector too.
func (h *Heartbeats) Send(from, to int, kind Kind, payload []byte) {
	h.inner.Send(from, to, kind, payload)
}

// Stats returns the inner transport's counters (beats are counted under
// KindHeartbeat).
func (h *Heartbeats) Stats() *Stats { return h.inner.Stats() }

// run is the beat-and-sweep loop: one goroutine beats on behalf of every
// process (they share this OS process; see DESIGN.md's substitution
// argument) and sweeps the deadlines.
func (h *Heartbeats) run() {
	defer h.wg.Done()
	t := time.NewTicker(h.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-t.C:
		}
		for from := 0; from < h.n; from++ {
			for to := 0; to < h.n; to++ {
				if from != to {
					h.inner.Send(from, to, KindHeartbeat, nil)
				}
			}
		}
		h.sweep()
	}
}

// sweep checks every directed link's deadline, counts misses, and accuses
// the process(es) carrying the most overdue links (degree attribution; see
// the type comment). A lone overdue link (degree 1 on both ends) is noted
// as a miss but accuses no one — real failures (crash, partition, socket
// death) always kill links in both directions.
func (h *Heartbeats) sweep() {
	now := time.Now()
	timeout := h.cfg.timeout()
	degree := make([]int, h.n)
	maxSilence := make([]time.Duration, h.n)
	for obs := 0; obs < h.n; obs++ {
		for peer := 0; peer < h.n; peer++ {
			if obs == peer {
				continue
			}
			silence := now.Sub(time.Unix(0, h.lastSeen[obs*h.n+peer].Load()))
			if silence < timeout {
				continue
			}
			h.misses.Add(1)
			if f := h.onMiss.Load(); f != nil {
				(*f)()
			}
			degree[obs]++
			degree[peer]++
			if silence > maxSilence[obs] {
				maxSilence[obs] = silence
			}
			if silence > maxSilence[peer] {
				maxSilence[peer] = silence
			}
		}
	}
	worst := 0
	for _, d := range degree {
		if d > worst {
			worst = d
		}
	}
	if worst < 2 {
		return
	}
	for p, d := range degree {
		if d == worst && !h.suspected[p].Swap(true) {
			if f := h.onSuspect.Load(); f != nil {
				(*f)(p, maxSilence[p])
			}
		}
	}
}

// Close stops the detector and closes the inner transport.
func (h *Heartbeats) Close() {
	if h.closed.Swap(true) {
		return
	}
	close(h.stop)
	h.wg.Wait()
	h.inner.Close()
}
