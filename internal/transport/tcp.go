package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"naiad/internal/batchbuf"
)

// TCPOptions hardens the TCP transport against transient network trouble.
// The zero value preserves the historical behaviour (bounded dial, no send
// deadline, no reconnect): a write error silently drops the link and the
// watchdog or heartbeat detector turns the silence into a loud failure.
// With reconnect enabled, transient partitions degrade to bounded retries
// instead.
type TCPOptions struct {
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// SendTimeout, when positive, sets a write deadline per frame: a peer
	// that stops draining its socket fails the send after this long instead
	// of blocking the sender behind a full kernel buffer forever.
	SendTimeout time.Duration
	// ReconnectAttempts is how many times a broken link's background
	// redialer retries before dropping the frames queued on that link.
	// Zero disables reconnection.
	ReconnectAttempts int
	// ReconnectBackoff is the initial delay between redial attempts
	// (default 10ms); it doubles per attempt up to ReconnectMaxBackoff
	// (default 1s), with ±50% jitter so peers reconnecting simultaneously
	// do not stampede in lockstep.
	ReconnectBackoff    time.Duration
	ReconnectMaxBackoff time.Duration
	// Seed drives the jitter PRNG (default 1), keeping schedules
	// reproducible.
	Seed int64
	// OnDrop, when non-nil, is invoked for every frame the transport
	// accepts but cannot deliver (dead link with reconnection disabled,
	// reconnect queue overflow, or retry-budget exhaustion). It is called
	// without any link lock held and may block briefly (tracing, metrics);
	// n is the number of frames of that kind lost at once.
	OnDrop func(kind Kind, n int)
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.ReconnectBackoff <= 0 {
		o.ReconnectBackoff = 10 * time.Millisecond
	}
	if o.ReconnectMaxBackoff <= 0 {
		o.ReconnectMaxBackoff = time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// TCP is a transport over real stdlib TCP sockets. Every ordered pair of
// processes communicates over the connection dialed by the lower-indexed
// endpoint; frames are length-prefixed and writes are serialized per
// directed link, so per-link FIFO order holds. Naiad disables Nagle's
// algorithm to avoid small-message delays (§3.5); Go's net.TCPConn does so
// by default (TCP_NODELAY on), which we keep.
//
// Each listener runs a persistent accept loop, so a peer that redials after
// a socket death is re-admitted transparently; see TCPOptions for the
// sender-side reconnect policy.
type TCP struct {
	n        int
	opts     TCPOptions
	handlers []Handler
	conns    [][]*tcpLink // [owner][peer], nil on diagonal; cells are fixed, sockets swap
	listener []net.Listener

	rngMu sync.Mutex
	rng   *rand.Rand

	reconnects atomic.Int64
	stats      Stats
	closed     atomic.Bool
	wg         sync.WaitGroup
}

// tcpLink is one directed link's write endpoint. Its mutex serializes
// writes and socket replacement, so per-link FIFO survives reconnection.
// The mutex is never held across a dial or a backoff sleep: while the link
// is down a single background redialer owns recovery, Send merely queues
// (bounded) and returns, and queued frames flush ahead of new ones when
// the socket comes back — FIFO through the outage.
type tcpLink struct {
	mu        sync.Mutex
	w         *bufio.Writer
	c         net.Conn
	broken    bool
	redialing bool    // a background redialer is active (single-flight)
	pending   []frame // frames queued while redialing, flushed in order

	// drops counts frames this link accepted but lost, across socket
	// generations. Kept per link (in addition to the transport-wide Stats)
	// so an operator can tell which peer pair is lossy.
	drops atomic.Int64
}

// maxPendingFrames bounds the per-link reconnect queue: a link that stays
// down under sustained traffic (heartbeats every few ms, redial backoff in
// seconds) must not grow memory without bound. Frames beyond the cap are
// dropped — the same fate they would meet with reconnection disabled.
const maxPendingFrames = 1024

// MaxFrameSize caps the payload length the TCP framing accepts. A frame
// header claiming more is treated as corruption: without the cap a single
// flipped length byte would make the reader allocate gigabytes and then
// misparse the rest of the stream.
const MaxFrameSize = 64 << 20

// ParseFrameHeader validates and decodes a FrameOverhead-byte frame header
// into (kind, source process, payload size). It rejects short headers,
// unknown kinds, and sizes beyond MaxFrameSize, so callers never allocate
// from an unvalidated length field.
func ParseFrameHeader(hdr []byte) (Kind, int, int, error) {
	if len(hdr) < FrameOverhead {
		return 0, 0, 0, fmt.Errorf("transport: short frame header: %d bytes", len(hdr))
	}
	kind := Kind(hdr[0])
	if kind >= numKinds {
		return 0, 0, 0, fmt.Errorf("transport: unknown frame kind %d", hdr[0])
	}
	src := int(binary.LittleEndian.Uint32(hdr[1:5]))
	size := int(binary.LittleEndian.Uint32(hdr[5:9]))
	if size > MaxFrameSize {
		return 0, 0, 0, fmt.Errorf("transport: frame size %d exceeds limit %d", size, MaxFrameSize)
	}
	return kind, src, size, nil
}

// NewTCPLoopback constructs a transport for n processes all inside this OS
// process, connected through real loopback TCP sockets, with the default
// (historical, non-reconnecting) options. It exists to exercise genuine
// socket behaviour (kernel buffering, framing, partial reads) in tests and
// benchmarks; a production deployment would run one process per machine
// with the same framing.
func NewTCPLoopback(n int) (*TCP, error) {
	return NewTCPLoopbackOpts(n, TCPOptions{})
}

// NewTCPLoopbackOpts is NewTCPLoopback with explicit hardening options.
func NewTCPLoopbackOpts(n int, opts TCPOptions) (*TCP, error) {
	opts = opts.withDefaults()
	t := &TCP{
		n:        n,
		opts:     opts,
		handlers: make([]Handler, n),
		rng:      rand.New(rand.NewSource(opts.Seed)),
	}
	t.conns = make([][]*tcpLink, n)
	for i := range t.conns {
		t.conns[i] = make([]*tcpLink, n)
		for j := 0; j < n; j++ {
			if i != j {
				t.conns[i][j] = &tcpLink{broken: true}
			}
		}
	}
	t.listener = make([]net.Listener, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: listen: %w", err)
		}
		t.listener[i] = l
		t.wg.Add(1)
		go t.acceptLoop(i)
	}
	// Dial: process i dials every j > i; both directions share the socket
	// (i writes on its end, j's accept loop registers the other end).
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c, err := t.dialPeer(i, j)
			if err != nil {
				t.Close()
				return nil, fmt.Errorf("transport: dial: %w", err)
			}
			l := t.conns[i][j]
			l.mu.Lock()
			t.installLocked(i, j, l, c)
			l.mu.Unlock()
		}
	}
	// Wait for the accept side of every pair to register; everything is
	// loopback-local, so this settles in microseconds.
	deadline := time.Now().Add(opts.DialTimeout)
	for !t.allConnected() {
		if time.Now().After(deadline) {
			t.Close()
			return nil, fmt.Errorf("transport: timed out waiting for %d-process mesh", n)
		}
		time.Sleep(time.Millisecond)
	}
	return t, nil
}

func (t *TCP) allConnected() bool {
	for i := range t.conns {
		for j, l := range t.conns[i] {
			if i == j {
				continue
			}
			l.mu.Lock()
			ok := l.c != nil && !l.broken
			l.mu.Unlock()
			if !ok {
				return false
			}
		}
	}
	return true
}

// dialPeer connects to peer `to`'s listener and handshakes `from`'s id.
func (t *TCP) dialPeer(from, to int) (net.Conn, error) {
	c, err := net.DialTimeout("tcp", t.listener[to].Addr().String(), t.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(from))
	c.SetWriteDeadline(time.Now().Add(t.opts.DialTimeout))
	if _, err := c.Write(hdr[:]); err != nil {
		c.Close()
		return nil, err
	}
	c.SetWriteDeadline(time.Time{})
	return c, nil
}

// installLocked swaps a fresh socket into the link (closing any old one)
// and starts the owner-side reader. Callers hold l.mu.
func (t *TCP) installLocked(owner, peer int, l *tcpLink, c net.Conn) {
	if l.c != nil {
		l.c.Close()
	}
	l.c = c
	l.w = bufio.NewWriter(c)
	l.broken = false
	t.wg.Add(1)
	go t.readLoop(owner, c)
}

// acceptLoop re-admits peers for the lifetime of the transport: every
// accepted socket (initial mesh construction or a redial after a failure)
// replaces the link's previous socket.
func (t *TCP) acceptLoop(proc int) {
	defer t.wg.Done()
	for {
		c, err := t.listener[proc].Accept()
		if err != nil {
			return // listener closed
		}
		var hdr [4]byte
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			c.Close()
			continue
		}
		peer := int(binary.LittleEndian.Uint32(hdr[:]))
		if peer < 0 || peer >= t.n || peer == proc {
			c.Close()
			continue
		}
		if t.closed.Load() {
			c.Close()
			return
		}
		l := t.conns[proc][peer]
		l.mu.Lock()
		t.installLocked(proc, peer, l, c)
		l.mu.Unlock()
	}
}

// Processes returns the process count.
func (t *TCP) Processes() int { return t.n }

// Reconnects returns how many sender-side redials have succeeded.
func (t *TCP) Reconnects() int64 { return t.reconnects.Load() }

// SetHandler installs the consumer for proc. Reader goroutines dispatch
// through t.handlers at delivery time, so installation order does not
// matter; frames arriving before installation are dropped.
func (t *TCP) SetHandler(proc int, h Handler) {
	if t.handlers[proc] != nil {
		panic("transport: handler already set")
	}
	t.handlers[proc] = h
}

func (t *TCP) readLoop(proc int, c net.Conn) {
	defer t.wg.Done()
	r := bufio.NewReader(c)
	for {
		var hdr [FrameOverhead]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		kind, src, size, err := ParseFrameHeader(hdr[:])
		if err != nil || src < 0 || src >= t.n {
			return // corrupt stream; drop the link rather than misparse it
		}
		// Frames come from the pooled receive arena; the final consumer
		// recycles them (or leaks them to GC, which is also safe).
		payload := batchbuf.GetBytes(size)
		if _, err := io.ReadFull(r, payload); err != nil {
			return
		}
		if h := t.handlers[proc]; h != nil {
			h(src, kind, payload)
		}
	}
}

// Send frames and writes the payload on the directed link. When the socket
// has died and reconnection is enabled, the frame is queued (bounded) and a
// background redialer repairs the link with jittered exponential backoff,
// flushing the queue in order once the peer answers — Send itself never
// sleeps or dials, so a broken link cannot stall a shared send loop (the
// heartbeat beater walks every link sequentially) into false suspicions. A
// frame that cannot be delivered within the retry budget is dropped and the
// loss is the failure detector's to notice. Same-process sends dispatch
// directly to the handler.
func (t *TCP) Send(from, to int, kind Kind, payload []byte) {
	if t.closed.Load() {
		return
	}
	if from == to {
		cp := batchbuf.GetBytes(len(payload))
		copy(cp, payload)
		if h := t.handlers[to]; h != nil {
			h(from, kind, cp)
		}
		return
	}
	l := t.conns[from][to]
	l.mu.Lock()
	if l.redialing {
		queued := t.enqueueLocked(l, from, kind, payload)
		l.mu.Unlock()
		if !queued {
			t.noteDrop(l, kind, 1)
		}
		return
	}
	if l.c != nil && !l.broken && t.writeFrameLocked(l, frameHeader(from, kind, payload), payload) == nil {
		t.stats.Count(kind, len(payload))
		l.mu.Unlock()
		return
	}
	if t.opts.ReconnectAttempts <= 0 {
		l.mu.Unlock()
		// Historical contract: a dead link drops the frame — but the loss
		// is counted, never silent.
		t.noteDrop(l, kind, 1)
		return
	}
	queued := t.enqueueLocked(l, from, kind, payload)
	l.redialing = true
	t.wg.Add(1)
	go t.redial(from, to, l)
	l.mu.Unlock()
	if !queued {
		t.noteDrop(l, kind, 1)
	}
}

// frameHeader builds the wire header for one frame.
func frameHeader(from int, kind Kind, payload []byte) []byte {
	var hdr [FrameOverhead]byte
	hdr[0] = byte(kind)
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(from))
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(payload)))
	return hdr[:]
}

// enqueueLocked queues a frame for delivery after reconnection, copying the
// payload (the caller may reuse its buffer once Send returns). Beyond the
// bound the frame is refused and the caller must account the drop (the
// OnDrop hook may block, so it cannot run under l.mu). Callers hold l.mu.
func (t *TCP) enqueueLocked(l *tcpLink, from int, kind Kind, payload []byte) bool {
	if len(l.pending) >= maxPendingFrames {
		return false
	}
	l.pending = append(l.pending, frame{from: from, kind: kind, payload: append([]byte(nil), payload...)})
	return true
}

// noteDrop accounts frames a link accepted but lost: the per-link counter,
// the transport-wide per-kind stats, and the OnDrop hook (which feeds the
// runtime's tracing and metrics when wired). Callers must not hold l.mu.
func (t *TCP) noteDrop(l *tcpLink, kind Kind, n int) {
	l.drops.Add(int64(n))
	t.stats.CountDrops(kind, n)
	if t.opts.OnDrop != nil {
		t.opts.OnDrop(kind, n)
	}
}

// LinkDrops returns the frames lost on the directed link from→to.
func (t *TCP) LinkDrops(from, to int) int64 {
	if from == to || from < 0 || to < 0 || from >= t.n || to >= t.n {
		return 0
	}
	return t.conns[from][to].drops.Load()
}

// redial is the background reconnector for one broken link: jittered
// exponential backoff between attempts, and on success the pending queue
// flushes before Send resumes writing directly. It owns l.redialing; no
// lock is held while sleeping or dialing.
func (t *TCP) redial(from, to int, l *tcpLink) {
	defer t.wg.Done()
	for attempt := 1; attempt <= t.opts.ReconnectAttempts; attempt++ {
		t.backoff(attempt)
		if t.closed.Load() {
			break
		}
		c, err := t.dialPeer(from, to)
		if err != nil {
			continue
		}
		if t.closed.Load() {
			c.Close()
			break
		}
		l.mu.Lock()
		t.installLocked(from, to, l, c)
		t.reconnects.Add(1)
		if t.flushPendingLocked(l) {
			l.redialing = false
			l.mu.Unlock()
			return
		}
		l.mu.Unlock() // fresh socket died mid-flush; keep the remainder and retry
	}
	// Retry budget exhausted: the queued frames are lost with the link. A
	// later Send will start a fresh redial round.
	l.mu.Lock()
	lost := l.pending
	l.pending = nil
	l.redialing = false
	l.mu.Unlock()
	var perKind [numKinds]int
	for _, f := range lost {
		perKind[f.kind]++
	}
	for k, n := range perKind {
		if n > 0 {
			t.noteDrop(l, Kind(k), n)
		}
	}
}

// flushPendingLocked writes the queued frames in order, retaining the
// unwritten remainder on failure. Callers hold l.mu.
func (t *TCP) flushPendingLocked(l *tcpLink) bool {
	for len(l.pending) > 0 {
		f := l.pending[0]
		if t.writeFrameLocked(l, frameHeader(f.from, f.kind, f.payload), f.payload) != nil {
			return false
		}
		t.stats.Count(f.kind, len(f.payload))
		l.pending = l.pending[1:]
	}
	l.pending = nil
	return true
}

// writeFrameLocked writes one frame under the link's per-send deadline,
// marking the link broken (and closing its socket) on failure. Callers
// hold l.mu.
func (t *TCP) writeFrameLocked(l *tcpLink, hdr, payload []byte) error {
	if t.opts.SendTimeout > 0 {
		l.c.SetWriteDeadline(time.Now().Add(t.opts.SendTimeout))
	}
	_, err := l.w.Write(hdr)
	if err == nil {
		_, err = l.w.Write(payload)
	}
	if err == nil {
		err = l.w.Flush()
	}
	if t.opts.SendTimeout > 0 && err == nil {
		l.c.SetWriteDeadline(time.Time{})
	}
	if err != nil {
		l.broken = true
		l.c.Close()
	}
	return err
}

// backoff sleeps the jittered exponential delay for a redial attempt.
func (t *TCP) backoff(attempt int) {
	d := t.opts.ReconnectBackoff << (attempt - 1)
	if d > t.opts.ReconnectMaxBackoff || d <= 0 {
		d = t.opts.ReconnectMaxBackoff
	}
	t.rngMu.Lock()
	jittered := d/2 + time.Duration(t.rng.Int63n(int64(d)))
	t.rngMu.Unlock()
	time.Sleep(jittered)
}

// Stats returns the traffic counters.
func (t *TCP) Stats() *Stats { return &t.stats }

// Close shuts down all sockets and waits for reader and accept goroutines.
func (t *TCP) Close() {
	if t.closed.Swap(true) {
		return
	}
	for _, l := range t.listener {
		if l != nil {
			l.Close()
		}
	}
	for i := range t.conns {
		for _, l := range t.conns[i] {
			if l == nil {
				continue
			}
			l.mu.Lock()
			if l.c != nil {
				l.c.Close()
			}
			l.broken = true
			l.mu.Unlock()
		}
	}
	t.wg.Wait()
}
