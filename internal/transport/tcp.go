package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// TCP is a transport over real stdlib TCP sockets. Every ordered pair of
// processes communicates over the connection dialed by the lower-indexed
// endpoint; frames are length-prefixed and writes are serialized per
// connection, so per-link FIFO order holds. Naiad disables Nagle's
// algorithm to avoid small-message delays (§3.5); Go's net.TCPConn does so
// by default (TCP_NODELAY on), which we keep.
type TCP struct {
	n        int
	id       int // unused in all-in-one mode; kept for clarity
	handlers []Handler
	conns    [][]*tcpConn // [from][to], nil on diagonal
	listener []net.Listener
	stats    Stats
	closed   atomic.Bool
	wg       sync.WaitGroup
}

type tcpConn struct {
	mu sync.Mutex
	w  *bufio.Writer
	c  net.Conn
}

// MaxFrameSize caps the payload length the TCP framing accepts. A frame
// header claiming more is treated as corruption: without the cap a single
// flipped length byte would make the reader allocate gigabytes and then
// misparse the rest of the stream.
const MaxFrameSize = 64 << 20

// ParseFrameHeader validates and decodes a FrameOverhead-byte frame header
// into (kind, source process, payload size). It rejects short headers,
// unknown kinds, and sizes beyond MaxFrameSize, so callers never allocate
// from an unvalidated length field.
func ParseFrameHeader(hdr []byte) (Kind, int, int, error) {
	if len(hdr) < FrameOverhead {
		return 0, 0, 0, fmt.Errorf("transport: short frame header: %d bytes", len(hdr))
	}
	kind := Kind(hdr[0])
	if kind > KindControl {
		return 0, 0, 0, fmt.Errorf("transport: unknown frame kind %d", hdr[0])
	}
	src := int(binary.LittleEndian.Uint32(hdr[1:5]))
	size := int(binary.LittleEndian.Uint32(hdr[5:9]))
	if size > MaxFrameSize {
		return 0, 0, 0, fmt.Errorf("transport: frame size %d exceeds limit %d", size, MaxFrameSize)
	}
	return kind, src, size, nil
}

// NewTCPLoopback constructs a transport for n processes all inside this OS
// process, connected through real loopback TCP sockets. It exists to
// exercise genuine socket behaviour (kernel buffering, framing, partial
// reads) in tests and benchmarks; a production deployment would run one
// process per machine with the same framing.
func NewTCPLoopback(n int) (*TCP, error) {
	t := &TCP{n: n, handlers: make([]Handler, n)}
	t.conns = make([][]*tcpConn, n)
	for i := range t.conns {
		t.conns[i] = make([]*tcpConn, n)
	}
	t.listener = make([]net.Listener, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: listen: %w", err)
		}
		t.listener[i] = l
	}
	// Dial: process i dials every j > i; both directions share the socket.
	type accepted struct {
		proc int
		conn net.Conn
		peer int
	}
	acceptCh := make(chan accepted, n*n)
	errCh := make(chan error, n)
	var acceptWG sync.WaitGroup
	for j := 0; j < n; j++ {
		acceptWG.Add(1)
		go func(j int) {
			defer acceptWG.Done()
			for i := 0; i < j; i++ {
				c, err := t.listener[j].Accept()
				if err != nil {
					errCh <- err
					return
				}
				var hdr [4]byte
				if _, err := io.ReadFull(c, hdr[:]); err != nil {
					errCh <- err
					return
				}
				peer := int(binary.LittleEndian.Uint32(hdr[:]))
				acceptCh <- accepted{proc: j, conn: c, peer: peer}
			}
		}(j)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c, err := net.Dial("tcp", t.listener[j].Addr().String())
			if err != nil {
				t.Close()
				return nil, fmt.Errorf("transport: dial: %w", err)
			}
			var hdr [4]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(i))
			if _, err := c.Write(hdr[:]); err != nil {
				t.Close()
				return nil, err
			}
			t.conns[i][j] = &tcpConn{w: bufio.NewWriter(c), c: c}
		}
	}
	acceptWG.Wait()
	close(acceptCh)
	select {
	case err := <-errCh:
		t.Close()
		return nil, err
	default:
	}
	for a := range acceptCh {
		// The accepted side reuses the same socket for its own sends.
		t.conns[a.proc][a.peer] = &tcpConn{w: bufio.NewWriter(a.conn), c: a.conn}
	}
	return t, nil
}

// Processes returns the process count.
func (t *TCP) Processes() int { return t.n }

// SetHandler installs the consumer for proc and starts reader goroutines
// for its inbound links.
func (t *TCP) SetHandler(proc int, h Handler) {
	if t.handlers[proc] != nil {
		panic("transport: handler already set")
	}
	t.handlers[proc] = h
	for from := 0; from < t.n; from++ {
		if from == proc {
			continue
		}
		// Each pair shares one socket; conns[proc][from] is proc's end of
		// the socket to peer `from`, whichever side dialed. proc reads
		// inbound frames from its own end.
		conn := t.conns[proc][from]
		t.wg.Add(1)
		go t.readLoop(proc, from, conn.c)
	}
}

func (t *TCP) readLoop(proc, from int, c net.Conn) {
	defer t.wg.Done()
	r := bufio.NewReader(c)
	for {
		var hdr [FrameOverhead]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		kind, src, size, err := ParseFrameHeader(hdr[:])
		if err != nil || src < 0 || src >= t.n {
			return // corrupt stream; drop the link rather than misparse it
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(r, payload); err != nil {
			return
		}
		if h := t.handlers[proc]; h != nil {
			h(src, kind, payload)
		}
	}
}

// Send frames and writes the payload on the pairwise socket. Same-process
// sends dispatch directly to the handler.
func (t *TCP) Send(from, to int, kind Kind, payload []byte) {
	if t.closed.Load() {
		return
	}
	if from == to {
		cp := append([]byte(nil), payload...)
		if h := t.handlers[to]; h != nil {
			h(from, kind, cp)
		}
		return
	}
	conn := t.conns[from][to]
	var hdr [FrameOverhead]byte
	hdr[0] = byte(kind)
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(from))
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(payload)))
	conn.mu.Lock()
	_, err1 := conn.w.Write(hdr[:])
	_, err2 := conn.w.Write(payload)
	err3 := conn.w.Flush()
	conn.mu.Unlock()
	if err1 == nil && err2 == nil && err3 == nil {
		t.stats.Count(kind, len(payload))
	}
}

// Stats returns the traffic counters.
func (t *TCP) Stats() *Stats { return &t.stats }

// Close shuts down all sockets and waits for reader goroutines.
func (t *TCP) Close() {
	if t.closed.Swap(true) {
		return
	}
	for _, l := range t.listener {
		if l != nil {
			l.Close()
		}
	}
	for i := range t.conns {
		for j := range t.conns[i] {
			if c := t.conns[i][j]; c != nil {
				c.c.Close()
			}
		}
	}
	t.wg.Wait()
}
