// Package transport moves framed byte messages between Naiad processes.
//
// Two implementations share one interface: Mem simulates a cluster of
// processes inside a single OS process (every frame is fully serialized and
// copied, and per-link FIFO order is preserved, so the code paths match a
// networked deployment), and TCP runs over real stdlib net sockets for
// multi-process operation. Both count traffic per frame kind, which feeds
// the throughput (Fig 6a) and progress-traffic (Fig 6c) experiments.
package transport

import (
	"fmt"
	"sync"
	"sync/atomic"

	"naiad/internal/batchbuf"
)

// Kind tags the payload class of a frame, for dispatch and accounting.
type Kind uint8

const (
	// KindData frames carry record batches between workers.
	KindData Kind = iota
	// KindProgress frames carry progress-protocol update batches.
	KindProgress
	// KindControl frames carry runtime control traffic.
	KindControl
	// KindHeartbeat frames carry failure-detector liveness beats. They are
	// consumed by the Heartbeats wrapper and never reach the runtime's
	// frame dispatcher.
	KindHeartbeat
	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindProgress:
		return "progress"
	case KindControl:
		return "control"
	case KindHeartbeat:
		return "heartbeat"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// FrameOverhead approximates per-frame header cost on the wire: kind (1),
// source process (4), length (4), and a small envelope margin, mirroring
// the TCP framing below.
const FrameOverhead = 9

// Handler consumes a frame delivered to a process. The payload slice is
// owned by the receiver. Handlers must be safe for concurrent invocation
// from different links; frames on one (from, to) link arrive in send
// order, across kinds — every built-in transport funnels a directed link's
// traffic through a single queue (Mem), delay line (Chaos), or socket
// (TCP). The asynchronous-barrier protocol depends on this: a KindControl
// barrier marker must never overtake the KindData frames sent before it on
// the same link (TestCrossKindLinkFIFO pins the guarantee).
type Handler func(from int, kind Kind, payload []byte)

// Transport delivers frames between processes 0..N-1.
type Transport interface {
	// Processes returns the number of processes.
	Processes() int
	// SetHandler installs the frame consumer for a process. It must be
	// called for every process before Send.
	SetHandler(proc int, h Handler)
	// Send delivers payload from process `from` to process `to`. Frames
	// between a pair of processes with the same kind arrive in FIFO order.
	// Send never blocks indefinitely on receiver progress.
	Send(from, to int, kind Kind, payload []byte)
	// Stats returns cumulative traffic counters.
	Stats() *Stats
	// Close releases resources; subsequent Sends are dropped.
	Close()
}

// Stats tallies frames and bytes per kind across process boundaries.
// Local (same-process) deliveries are not counted, matching the shared-
// memory fast path of the real system. Drops count frames accepted by Send
// but never delivered — a transport that sheds under failure must say so,
// or a lost-frame bug is indistinguishable from a quiet network.
type Stats struct {
	frames [numKinds]atomic.Int64
	bytes  [numKinds]atomic.Int64
	drops  [numKinds]atomic.Int64
}

// Count records a remote frame of the given kind and payload size.
func (s *Stats) Count(kind Kind, payloadLen int) {
	s.frames[kind].Add(1)
	s.bytes[kind].Add(int64(payloadLen + FrameOverhead))
}

// CountDrops records n frames of a kind that were accepted but dropped.
func (s *Stats) CountDrops(kind Kind, n int) {
	s.drops[kind].Add(int64(n))
}

// Frames returns the number of remote frames of a kind.
func (s *Stats) Frames(kind Kind) int64 { return s.frames[kind].Load() }

// Bytes returns the number of remote bytes (payload + framing) of a kind.
func (s *Stats) Bytes(kind Kind) int64 { return s.bytes[kind].Load() }

// Drops returns the number of dropped frames of a kind.
func (s *Stats) Drops(kind Kind) int64 { return s.drops[kind].Load() }

// TotalBytes sums bytes across kinds.
func (s *Stats) TotalBytes() int64 {
	var t int64
	for k := Kind(0); k < numKinds; k++ {
		t += s.bytes[k].Load()
	}
	return t
}

// TotalDrops sums dropped frames across kinds.
func (s *Stats) TotalDrops() int64 {
	var t int64
	for k := Kind(0); k < numKinds; k++ {
		t += s.drops[k].Load()
	}
	return t
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	for k := Kind(0); k < numKinds; k++ {
		s.frames[k].Store(0)
		s.bytes[k].Store(0)
		s.drops[k].Store(0)
	}
}

// Mem is the in-memory transport: a simulated cluster within one OS
// process. Frames are copied on send, so no memory is shared between the
// sending and receiving sides — exactly the discipline a real network
// imposes. Delivery happens on per-destination goroutines to decouple
// sender and receiver, preserving per-link FIFO order.
type Mem struct {
	n        int
	handlers []Handler
	queues   []*frameQueue // one per destination process
	stats    Stats
	closed   atomic.Bool
	wg       sync.WaitGroup
}

type frame struct {
	from    int
	kind    Kind
	payload []byte
}

// frameQueue is an unbounded MPSC queue with blocking pop.
type frameQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []frame
	closed bool
}

func newFrameQueue() *frameQueue {
	q := &frameQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *frameQueue) push(f frame) {
	q.mu.Lock()
	if !q.closed {
		q.items = append(q.items, f)
	}
	q.mu.Unlock()
	q.cond.Signal()
}

// popAll blocks until items are available or the queue closes, then drains.
func (q *frameQueue) popAll(buf []frame) ([]frame, bool) {
	q.mu.Lock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	items := q.items
	q.items = buf[:0]
	closed := q.closed && len(items) == 0
	q.mu.Unlock()
	return items, !closed
}

func (q *frameQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// NewMem builds an in-memory transport between n processes.
func NewMem(n int) *Mem {
	m := &Mem{n: n, handlers: make([]Handler, n), queues: make([]*frameQueue, n)}
	for i := range m.queues {
		m.queues[i] = newFrameQueue()
	}
	return m
}

// Processes returns the process count.
func (m *Mem) Processes() int { return m.n }

// SetHandler installs the consumer for proc and starts its delivery
// goroutine on first installation.
func (m *Mem) SetHandler(proc int, h Handler) {
	if m.handlers[proc] != nil {
		panic("transport: handler already set")
	}
	m.handlers[proc] = h
	m.wg.Add(1)
	go m.deliverLoop(proc)
}

func (m *Mem) deliverLoop(proc int) {
	defer m.wg.Done()
	q := m.queues[proc]
	h := m.handlers[proc]
	var spare []frame
	for {
		frames, ok := q.popAll(spare)
		if !ok {
			return
		}
		for _, f := range frames {
			h(f.from, f.kind, f.payload)
		}
		spare = frames
	}
}

// Send copies payload and enqueues it for delivery. Same-process sends are
// delivered through the same queue (preserving FIFO with remote traffic)
// but are not counted in Stats.
func (m *Mem) Send(from, to int, kind Kind, payload []byte) {
	if m.closed.Load() {
		return
	}
	// The copy comes from the pooled frame arena: the sender may reuse its
	// buffer the moment Send returns, and the final consumer of the
	// delivered frame recycles this one.
	cp := batchbuf.GetBytes(len(payload))
	copy(cp, payload)
	if from != to {
		m.stats.Count(kind, len(cp))
	}
	m.queues[to].push(frame{from: from, kind: kind, payload: cp})
}

// Stats returns the traffic counters.
func (m *Mem) Stats() *Stats { return &m.stats }

// Close stops delivery goroutines after draining queued frames.
func (m *Mem) Close() {
	if m.closed.Swap(true) {
		return
	}
	for _, q := range m.queues {
		q.close()
	}
	m.wg.Wait()
}
