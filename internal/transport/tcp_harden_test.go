package transport

import (
	"testing"
	"time"

	"naiad/internal/testutil"
)

// killLink closes the socket behind one directed link, simulating a
// transient network failure from the sender's point of view.
func killLink(tr *TCP, from, to int) {
	l := tr.conns[from][to]
	l.mu.Lock()
	c := l.c
	l.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// TestTCPReconnectAfterSocketDeath kills the socket under a link and sends
// through it: with reconnection enabled the frame is queued, the background
// redialer re-handshakes through the persistent accept loop, and the queued
// frame is delivered.
func TestTCPReconnectAfterSocketDeath(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	tr, err := NewTCPLoopbackOpts(2, TCPOptions{
		DialTimeout:       2 * time.Second,
		SendTimeout:       time.Second,
		ReconnectAttempts: 5,
		ReconnectBackoff:  time.Millisecond,
		Seed:              testutil.Seed(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	col := newCollector()
	tr.SetHandler(0, func(int, Kind, []byte) {})
	tr.SetHandler(1, col.handler)
	tr.Send(0, 1, KindData, []byte("before"))
	col.waitFor(t, 1)

	killLink(tr, 0, 1)
	tr.Send(0, 1, KindData, []byte("after"))
	frames := col.waitFor(t, 2)
	if string(frames[1].payload) != "after" {
		t.Fatalf("frame after reconnect mangled: %q", frames[1].payload)
	}
	if tr.Reconnects() == 0 {
		t.Fatal("delivery succeeded without a recorded reconnect")
	}
}

// TestTCPReconnectRestoresBothDirections kills the shared socket and then
// exercises both directions: the sender that notices repairs its own
// direction, and the opposite direction rides the redial of whichever side
// writes first (the accept loop replaces the dead socket on both ends).
func TestTCPReconnectRestoresBothDirections(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	tr, err := NewTCPLoopbackOpts(2, TCPOptions{
		ReconnectAttempts: 5,
		ReconnectBackoff:  time.Millisecond,
		Seed:              testutil.Seed(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cols := []*collector{newCollector(), newCollector()}
	tr.SetHandler(0, cols[0].handler)
	tr.SetHandler(1, cols[1].handler)

	killLink(tr, 0, 1) // kills the only socket of the pair
	tr.Send(0, 1, KindData, []byte("ping"))
	cols[1].waitFor(t, 1)
	// 1's write endpoint died with the shared socket; its own Send must
	// recover too (either over 0's fresh socket or its own redial).
	tr.Send(1, 0, KindData, []byte("pong"))
	frames := cols[0].waitFor(t, 1)
	if string(frames[0].payload) != "pong" {
		t.Fatalf("reverse direction mangled: %q", frames[0].payload)
	}
}

// TestTCPSendNeverBlocksOnBrokenLink pins the non-blocking contract that
// keeps the heartbeat beater honest: while a link is down, Send must queue
// and return immediately — never sleep a backoff or dial inline — and once
// the redialer repairs the link the queued frames must arrive in order. A
// blocking Send here would stall the shared beat loop past healthy peers'
// deadlines and turn one broken link into a storm of false suspicions.
func TestTCPSendNeverBlocksOnBrokenLink(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	tr, err := NewTCPLoopbackOpts(2, TCPOptions{
		DialTimeout:       2 * time.Second,
		SendTimeout:       time.Second,
		ReconnectAttempts: 5,
		ReconnectBackoff:  200 * time.Millisecond, // any inline backoff is visible
		Seed:              testutil.Seed(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	col := newCollector()
	tr.SetHandler(0, func(int, Kind, []byte) {})
	tr.SetHandler(1, col.handler)

	killLink(tr, 0, 1)
	start := time.Now()
	for _, p := range []string{"a", "b", "c"} {
		tr.Send(0, 1, KindData, []byte(p))
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("Send blocked %v on a broken link; reconnection must be asynchronous", elapsed)
	}
	frames := col.waitFor(t, 3)
	for i, want := range []string{"a", "b", "c"} {
		if string(frames[i].payload) != want {
			t.Fatalf("frame %d = %q, want %q: queue flush broke per-link FIFO", i, frames[i].payload, want)
		}
	}
}

// TestTCPNoReconnectByDefault pins the historical contract: with zero
// options a dead link silently drops frames — the failure detector's
// problem, not the transport's.
func TestTCPNoReconnectByDefault(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	tr, err := NewTCPLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	col := newCollector()
	tr.SetHandler(0, func(int, Kind, []byte) {})
	tr.SetHandler(1, col.handler)
	tr.Send(0, 1, KindData, []byte("before"))
	col.waitFor(t, 1)

	killLink(tr, 0, 1)
	tr.Send(0, 1, KindData, []byte("lost")) // must not panic or block
	tr.Send(0, 1, KindData, []byte("lost"))
	if tr.Reconnects() != 0 {
		t.Fatal("default options attempted a reconnect")
	}
}
