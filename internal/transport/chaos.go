package transport

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Chaos wraps another Transport and injects configurable, seeded-
// deterministic faults on every inter-process link: latency and jitter,
// slow-link stragglers (§3.5), bandwidth throttling, network partitions
// that heal, and process crashes at a chosen frame count. All fault
// decisions are drawn from per-link PRNGs derived from ChaosConfig.Seed,
// so a fault schedule is reproducible from its seed.
//
// Per-link FIFO order — the delivery discipline the progress protocol's
// safety proof depends on (§3.3) — is preserved through every fault except
// the deliberate ReorderProb violation, which exists so tests can attack
// the protocol's assumptions and verify the safety monitor catches the
// breach. Same-process sends bypass fault injection entirely, matching the
// runtime's shared-memory fast path.
type Chaos struct {
	inner  Transport
	cfg    ChaosConfig
	n      int
	links  [][]*chaosLink // [from][to], nil on diagonal
	group  []int          // partition group per process, -1 when ungrouped
	dead   []atomic.Bool
	frames []atomic.Int64 // frames sent or received per process
	crash  []int64        // crash threshold per process, 0 = never

	onCrash func(proc int)

	start  time.Time
	closed atomic.Bool
	stop   chan struct{}
	wg     sync.WaitGroup
}

// Link names one directed process pair.
type Link struct {
	From, To int
}

// Fault configures the faults injected on one link.
type Fault struct {
	// Latency delays every frame by this base amount.
	Latency time.Duration
	// Jitter adds a uniformly random extra delay in [0, Jitter).
	Jitter time.Duration
	// BytesPerSecond throttles the link's bandwidth; 0 means unlimited.
	// Frame transmission occupies the link for payload/BytesPerSecond.
	BytesPerSecond int64
	// ReorderProb deliberately violates per-link FIFO: with this
	// probability a frame is enqueued ahead of the previously queued
	// frame. Only for negative tests of the progress protocol's safety
	// assumptions; real networks with TCP framing never do this.
	ReorderProb float64
	// DropControlProb silently drops KindControl frames (barrier markers)
	// with this probability. Only for negative tests of the asynchronous-
	// barrier protocol: a dropped marker must stall the cut, never tear it.
	DropControlProb float64
	// DupControlProb enqueues KindControl frames twice with this
	// probability — a duplicate barrier marker must poison the cut, never
	// produce a torn snapshot.
	DupControlProb float64
	// ReorderControlProb lets a KindControl frame jump ahead of the
	// previously queued frame with this probability, without disturbing
	// the relative order of data frames. A marker overtaking the records
	// it counted (or lagging behind later ones) must be detected by the
	// receiver's channel counters and poison the cut, never tear it.
	ReorderControlProb float64
}

// Partition disconnects process groups for a window of wall-clock time:
// frames crossing a group boundary sent (or still queued) during
// [Start, Start+Duration) after the transport's creation are held and
// released, in order, when the partition heals. Nothing is dropped — a
// partition stalls the protocol, it does not lose frames.
type Partition struct {
	// Groups lists the mutually disconnected sides. Processes not listed
	// in any group communicate freely with everyone.
	Groups [][]int
	// Start is when the partition begins, measured from NewChaos.
	Start time.Duration
	// Duration is how long the partition lasts before healing.
	Duration time.Duration
}

// ChaosConfig parameterizes a Chaos transport.
type ChaosConfig struct {
	// Seed drives every per-link PRNG. Schedules are deterministic given
	// the seed and the per-link frame order.
	Seed int64
	// Default is the fault applied to links with no per-link override.
	Default Fault
	// Links overrides faults per directed link — how stragglers are
	// modeled: give one link (or all links of one process) a much larger
	// Latency or smaller BytesPerSecond than the rest (§3.5).
	Links map[Link]Fault
	// CrashAfterFrames kills a process after it has sent plus received
	// the given number of chaos-routed frames: all of its subsequent and
	// queued traffic is dropped and OnCrash fires once. Zero means never.
	CrashAfterFrames map[int]int64
	// Partition, when non-nil, schedules one partition/heal cycle.
	Partition *Partition
}

type chaosFrame struct {
	from, to int
	kind     Kind
	payload  []byte
	at       time.Time // earliest delivery instant
}

// chaosLink is one directed link's delay queue: a single delivery
// goroutine pops frames in queue order and forwards them to the inner
// transport, so queue order is delivery order.
type chaosLink struct {
	mu        sync.Mutex
	cond      *sync.Cond
	queue     []chaosFrame
	rng       *rand.Rand
	fault     Fault
	lastAt    time.Time // monotone delivery horizon (FIFO)
	busyUntil time.Time // bandwidth-throttle virtual clock
	closed    bool
}

// NewChaos wraps inner with fault injection. The inner transport is owned
// by the wrapper: Close closes it.
func NewChaos(inner Transport, cfg ChaosConfig) *Chaos {
	n := inner.Processes()
	c := &Chaos{
		inner:  inner,
		cfg:    cfg,
		n:      n,
		group:  make([]int, n),
		dead:   make([]atomic.Bool, n),
		frames: make([]atomic.Int64, n),
		crash:  make([]int64, n),
		start:  time.Now(),
		stop:   make(chan struct{}),
	}
	for p := range c.group {
		c.group[p] = -1
	}
	if cfg.Partition != nil {
		for g, procs := range cfg.Partition.Groups {
			for _, p := range procs {
				c.group[p] = g
			}
		}
	}
	for p, limit := range cfg.CrashAfterFrames {
		c.crash[p] = limit
	}
	c.links = make([][]*chaosLink, n)
	for from := range c.links {
		c.links[from] = make([]*chaosLink, n)
		for to := 0; to < n; to++ {
			if from == to {
				continue
			}
			f := cfg.Default
			if o, ok := cfg.Links[Link{From: from, To: to}]; ok {
				f = o
			}
			l := &chaosLink{
				fault: f,
				rng:   rand.New(rand.NewSource(cfg.Seed ^ int64(from*2654435761+to+1))),
			}
			l.cond = sync.NewCond(&l.mu)
			c.links[from][to] = l
			c.wg.Add(1)
			go c.deliverLoop(l)
		}
	}
	return c
}

// SetOnCrash installs the callback fired (once per process, from its own
// goroutine) when a process reaches its crash frame count. The runtime
// uses it to abort the computation instead of hanging on lost frames.
func (c *Chaos) SetOnCrash(f func(proc int)) { c.onCrash = f }

// Processes returns the process count.
func (c *Chaos) Processes() int { return c.n }

// SetHandler installs the frame consumer on the inner transport.
func (c *Chaos) SetHandler(proc int, h Handler) { c.inner.SetHandler(proc, h) }

// Stats returns the inner transport's counters. Frames dropped by a crash
// are never counted; delayed frames are counted at actual delivery.
func (c *Chaos) Stats() *Stats { return c.inner.Stats() }

// Alive reports whether the process has not crashed.
func (c *Chaos) Alive(proc int) bool { return !c.dead[proc].Load() }

// Crash kills a process immediately (in addition to any CrashAfterFrames
// schedule): its queued and future traffic is dropped and OnCrash fires.
func (c *Chaos) Crash(proc int) { c.kill(proc) }

func (c *Chaos) kill(proc int) {
	if c.dead[proc].Swap(true) {
		return
	}
	if f := c.onCrash; f != nil {
		go f(proc)
	}
}

// countFrame charges one frame against a process's crash budget and
// reports whether the process is (now) dead.
func (c *Chaos) countFrame(proc int) bool {
	n := c.frames[proc].Add(1)
	if limit := c.crash[proc]; limit > 0 && n >= limit {
		c.kill(proc)
	}
	return c.dead[proc].Load()
}

// partitioned reports whether a frame on the link is blocked at instant
// now, and when the partition heals.
func (c *Chaos) partitioned(from, to int, now time.Time) (bool, time.Time) {
	p := c.cfg.Partition
	if p == nil {
		return false, time.Time{}
	}
	gf, gt := c.group[from], c.group[to]
	if gf < 0 || gt < 0 || gf == gt {
		return false, time.Time{}
	}
	begin := c.start.Add(p.Start)
	heal := begin.Add(p.Duration)
	if now.Before(begin) || !now.Before(heal) {
		return false, time.Time{}
	}
	return true, heal
}

// Send injects faults and enqueues the frame for delayed delivery.
// Same-process sends pass straight through; sends touching a crashed
// process are dropped. Send never blocks on receiver progress.
func (c *Chaos) Send(from, to int, kind Kind, payload []byte) {
	if c.closed.Load() {
		return
	}
	if from == to {
		c.inner.Send(from, to, kind, payload)
		return
	}
	deadFrom := c.countFrame(from)
	deadTo := c.countFrame(to)
	if deadFrom || deadTo {
		return
	}
	// Copy the payload: delivery is delayed, so the wrapper must own its
	// bytes — the same no-sharing discipline Mem imposes at send time.
	payload = append([]byte(nil), payload...)
	l := c.links[from][to]
	now := time.Now()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	dup := false
	if kind == KindControl {
		if p := l.fault.DropControlProb; p > 0 && l.rng.Float64() < p {
			l.mu.Unlock()
			return // marker lost in flight; the cut stalls, it never tears
		}
		if p := l.fault.DupControlProb; p > 0 && l.rng.Float64() < p {
			dup = true
		}
	}
	delay := l.fault.Latency
	if l.fault.Jitter > 0 {
		delay += time.Duration(l.rng.Int63n(int64(l.fault.Jitter)))
	}
	at := now.Add(delay)
	if bps := l.fault.BytesPerSecond; bps > 0 {
		if l.busyUntil.Before(now) {
			l.busyUntil = now
		}
		l.busyUntil = l.busyUntil.Add(time.Duration(int64(len(payload)+FrameOverhead) * int64(time.Second) / bps))
		if l.busyUntil.After(at) {
			at = l.busyUntil
		}
	}
	if blocked, heal := c.partitioned(from, to, now); blocked && heal.After(at) {
		at = heal
	}
	if at.After(l.lastAt) {
		l.lastAt = at
	} else {
		at = l.lastAt // FIFO: never deliver before an earlier frame
	}
	f := chaosFrame{from: from, to: to, kind: kind, payload: payload, at: at}
	reorder := l.fault.ReorderProb
	if kind == KindControl && l.fault.ReorderControlProb > 0 {
		reorder = l.fault.ReorderControlProb
	}
	if reorder > 0 && len(l.queue) > 0 && l.rng.Float64() < reorder {
		// Deliberate FIFO violation: jump ahead of the queue tail.
		l.queue = append(l.queue, chaosFrame{})
		copy(l.queue[len(l.queue)-1:], l.queue[len(l.queue)-2:])
		l.queue[len(l.queue)-2] = f
	} else {
		l.queue = append(l.queue, f)
	}
	if dup {
		d := f
		d.payload = append([]byte(nil), f.payload...)
		l.queue = append(l.queue, d)
	}
	l.mu.Unlock()
	l.cond.Signal()
}

// deliverLoop forwards one link's frames in queue order, sleeping until
// each frame's delivery instant.
func (c *Chaos) deliverLoop(l *chaosLink) {
	defer c.wg.Done()
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.closed {
			l.cond.Wait()
		}
		if l.closed {
			l.mu.Unlock()
			return
		}
		f := l.queue[0]
		l.queue = l.queue[1:]
		l.mu.Unlock()
		if d := time.Until(f.at); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-c.stop:
				t.Stop()
				return
			}
		}
		// A partition that began after the frame was scheduled still holds
		// it: recheck at delivery time, so the window is airtight. Later
		// frames on this link queue behind it, preserving FIFO.
		if blocked, heal := c.partitioned(f.from, f.to, time.Now()); blocked {
			t := time.NewTimer(time.Until(heal))
			select {
			case <-t.C:
			case <-c.stop:
				t.Stop()
				return
			}
		}
		if c.dead[f.from].Load() || c.dead[f.to].Load() {
			continue // lost with the crashed process
		}
		c.inner.Send(f.from, f.to, f.kind, f.payload)
	}
}

// Close stops all delivery goroutines (dropping undelivered frames) and
// closes the inner transport. In a drained computation the queues are
// empty; after a crash or abort, dropping is the point.
func (c *Chaos) Close() {
	if c.closed.Swap(true) {
		return
	}
	close(c.stop)
	for _, row := range c.links {
		for _, l := range row {
			if l == nil {
				continue
			}
			l.mu.Lock()
			l.closed = true
			l.mu.Unlock()
			l.cond.Broadcast()
		}
	}
	c.wg.Wait()
	c.inner.Close()
}
