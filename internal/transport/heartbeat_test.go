package transport

import (
	"testing"
	"time"

	"naiad/internal/testutil"
)

type suspicion struct {
	suspect int
	silence time.Duration
}

// TestHeartbeatsHealthyNoSuspicion runs the detector over a healthy Mem
// transport for many intervals: no peer may be suspected, beats must never
// reach the inner handler, and real traffic must pass through untouched.
func TestHeartbeatsHealthyNoSuspicion(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	h := NewHeartbeats(NewMem(3), HeartbeatConfig{Interval: 2 * time.Millisecond, Timeout: 20 * time.Millisecond})
	suspects := make(chan suspicion, 16)
	h.SetOnSuspect(func(sus int, silence time.Duration) {
		suspects <- suspicion{sus, silence}
	})
	cols := make([]*collector, 3)
	for i := range cols {
		cols[i] = newCollector()
		h.SetHandler(i, cols[i].handler)
	}
	h.Send(0, 1, KindData, []byte("payload"))
	frames := cols[1].waitFor(t, 1)
	if frames[0].kind != KindData || string(frames[0].payload) != "payload" {
		t.Fatalf("real frame mangled: %+v", frames[0])
	}
	time.Sleep(100 * time.Millisecond) // dozens of intervals, several timeouts
	select {
	case s := <-suspects:
		t.Fatalf("healthy peer %d suspected after %v", s.suspect, s.silence)
	default:
	}
	for i, col := range cols {
		col.mu.Lock()
		for _, f := range col.frames {
			if f.kind == KindHeartbeat {
				col.mu.Unlock()
				t.Fatalf("beat leaked to inner handler of %d", i)
			}
		}
		col.mu.Unlock()
	}
	h.Close()
	if got := h.Stats().Frames(KindHeartbeat); got == 0 {
		t.Fatal("no heartbeat frames counted")
	}
}

// TestHeartbeatsSuspectCrashedPeer crashes one chaos process and expects
// the detector to accuse exactly that peer: the crash starves its beats in
// both directions, its dead-link degree dominates, suspicion fires once.
func TestHeartbeatsSuspectCrashedPeer(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	chaos := NewChaos(NewMem(3), ChaosConfig{Seed: testutil.Seed(t)})
	h := NewHeartbeats(chaos, HeartbeatConfig{Interval: 2 * time.Millisecond, Timeout: 16 * time.Millisecond})
	defer h.Close()
	suspects := make(chan suspicion, 16)
	h.SetOnSuspect(func(sus int, silence time.Duration) {
		suspects <- suspicion{sus, silence}
	})
	for i := 0; i < 3; i++ {
		h.SetHandler(i, func(int, Kind, []byte) {})
	}
	chaos.Crash(2)
	select {
	case s := <-suspects:
		if s.suspect != 2 {
			t.Fatalf("accused healthy peer %d", s.suspect)
		}
		if s.silence < 16*time.Millisecond {
			t.Fatalf("suspicion fired before the timeout: %v", s.silence)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("crashed peer never suspected")
	}
	if h.Misses() == 0 {
		t.Fatal("missed deadlines not counted")
	}
	// The latch holds: give the sweeper time to re-fire if it were broken.
	time.Sleep(50 * time.Millisecond)
	for len(suspects) > 0 {
		if s := <-suspects; s.suspect != 2 {
			t.Fatalf("accused healthy peer %d", s.suspect)
		}
	}
}

// TestHeartbeatsSuspectPartitionedPeer partitions {0} from {1,2}: beats
// crossing the cut are held, the minority side accumulates the most dead
// links, and the detector must accuse process 0 before the partition heals.
func TestHeartbeatsSuspectPartitionedPeer(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	chaos := NewChaos(NewMem(3), ChaosConfig{
		Seed: testutil.Seed(t),
		Partition: &Partition{
			Groups:   [][]int{{0}, {1, 2}},
			Start:    0,
			Duration: time.Hour, // never heals within the test
		},
	})
	h := NewHeartbeats(chaos, HeartbeatConfig{Interval: 2 * time.Millisecond, Timeout: 16 * time.Millisecond})
	defer h.Close()
	suspects := make(chan suspicion, 16)
	h.SetOnSuspect(func(sus int, silence time.Duration) {
		suspects <- suspicion{sus, silence}
	})
	for i := 0; i < 3; i++ {
		h.SetHandler(i, func(int, Kind, []byte) {})
	}
	select {
	case s := <-suspects:
		if s.suspect != 0 {
			t.Fatalf("accused %d; the minority side of the cut is 0", s.suspect)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("partitioned peer never suspected")
	}
}

// TestHeartbeatsRealTrafficRefreshesLiveness checks that a delivered real
// frame counts as a liveness proof: a peer whose beats are somehow lost but
// whose data still arrives must not be suspected.
func TestHeartbeatsRealTrafficRefreshesLiveness(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	// Interval far larger than the test: the beat loop never fires, so
	// only delivered data frames can refresh the deadline.
	h := NewHeartbeats(NewMem(2), HeartbeatConfig{Interval: time.Hour, Timeout: time.Hour})
	defer h.Close()
	for i := 0; i < 2; i++ {
		h.SetHandler(i, func(int, Kind, []byte) {})
	}
	before := h.lastSeen[1*h.n+0].Load()
	time.Sleep(2 * time.Millisecond)
	h.Send(0, 1, KindData, []byte("x"))
	// Delivery (and therefore the stamp) is asynchronous on Mem.
	deadline := time.Now().Add(5 * time.Second)
	for h.lastSeen[1*h.n+0].Load() <= before {
		if time.Now().After(deadline) {
			t.Fatal("delivered frame never refreshed the receiver's view of the sender")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHeartbeatsUndeliveredTrafficIsNotLiveness is the converse: frames the
// inner transport drops prove nothing. A peer sending sustained data into
// an unhealed partition must still be suspected — liveness is credited on
// receipt, not at send time, so whatever kills real traffic starves the
// detector too.
func TestHeartbeatsUndeliveredTrafficIsNotLiveness(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	chaos := NewChaos(NewMem(2), ChaosConfig{
		Seed: testutil.Seed(t),
		Partition: &Partition{
			Groups:   [][]int{{0}, {1}},
			Start:    0,
			Duration: time.Hour, // never heals within the test
		},
	})
	h := NewHeartbeats(chaos, HeartbeatConfig{Interval: 2 * time.Millisecond, Timeout: 16 * time.Millisecond})
	defer h.Close()
	suspects := make(chan suspicion, 16)
	h.SetOnSuspect(func(sus int, silence time.Duration) {
		suspects <- suspicion{sus, silence}
	})
	for i := 0; i < 2; i++ {
		h.SetHandler(i, func(int, Kind, []byte) {})
	}
	// Sustained data traffic across the cut: every frame is dropped by the
	// partition and must not refresh anyone's deadline.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				h.Send(0, 1, KindData, []byte("x"))
				h.Send(1, 0, KindData, []byte("y"))
				time.Sleep(time.Millisecond)
			}
		}
	}()
	select {
	case <-suspects:
		// Both sides of a two-process cut carry the same dead-link degree;
		// accusing either is correct. The point is that suspicion fired at
		// all despite the send-side traffic.
	case <-time.After(5 * time.Second):
		t.Fatal("partitioned peer never suspected: undelivered sends masked the dead link")
	}
	close(stop)
	<-done
}
