package transport

import (
	"sync"
	"testing"
	"time"

	"naiad/internal/testutil"
)

// dropRecorder collects OnDrop invocations.
type dropRecorder struct {
	mu    sync.Mutex
	total int64
	byK   map[Kind]int64
}

func newDropRecorder() *dropRecorder {
	return &dropRecorder{byK: make(map[Kind]int64)}
}

func (r *dropRecorder) hook(kind Kind, n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total += int64(n)
	r.byK[kind] += int64(n)
}

func (r *dropRecorder) snapshot() (int64, map[Kind]int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[Kind]int64, len(r.byK))
	for k, v := range r.byK {
		out[k] = v
	}
	return r.total, out
}

// TestTCPDeadLinkDropCounted pins the fix for silent frame loss: with
// reconnection disabled, a send on a dead link still drops the frame
// (historical contract) but the loss is now counted in the per-kind stats,
// the per-link counter, and the OnDrop hook.
func TestTCPDeadLinkDropCounted(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	rec := newDropRecorder()
	tr, err := NewTCPLoopbackOpts(2, TCPOptions{
		DialTimeout: 2 * time.Second,
		SendTimeout: time.Second,
		Seed:        testutil.Seed(t),
		OnDrop:      rec.hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.SetHandler(0, func(int, Kind, []byte) {})
	tr.SetHandler(1, func(int, Kind, []byte) {})

	killLink(tr, 0, 1)
	tr.Send(0, 1, KindData, []byte("lost-1"))     // write fails, marks broken
	tr.Send(0, 1, KindProgress, []byte("lost-2")) // broken link, dropped directly

	if got := tr.Stats().TotalDrops(); got != 2 {
		t.Fatalf("TotalDrops = %d, want 2", got)
	}
	if d, p := tr.Stats().Drops(KindData), tr.Stats().Drops(KindProgress); d != 1 || p != 1 {
		t.Fatalf("per-kind drops data=%d progress=%d, want 1/1", d, p)
	}
	if got := tr.LinkDrops(0, 1); got != 2 {
		t.Fatalf("LinkDrops(0,1) = %d, want 2", got)
	}
	if got := tr.LinkDrops(1, 0); got != 0 {
		t.Fatalf("LinkDrops(1,0) = %d, want 0 (healthy direction)", got)
	}
	total, byK := rec.snapshot()
	if total != 2 || byK[KindData] != 1 || byK[KindProgress] != 1 {
		t.Fatalf("OnDrop saw total=%d byKind=%v, want 2 with 1 data + 1 progress", total, byK)
	}
}

// TestTCPReconnectQueueOverflowDrops overflows the bounded reconnect queue:
// frames beyond maxPendingFrames are dropped and counted, while the queued
// prefix is delivered once the redialer repairs the link.
func TestTCPReconnectQueueOverflowDrops(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	const extra = 16
	rec := newDropRecorder()
	tr, err := NewTCPLoopbackOpts(2, TCPOptions{
		DialTimeout: 2 * time.Second,
		SendTimeout: time.Second,
		// A long first backoff keeps the redialer asleep while the test
		// floods the queue, making the overflow deterministic.
		ReconnectAttempts: 10,
		ReconnectBackoff:  200 * time.Millisecond,
		Seed:              testutil.Seed(t),
		OnDrop:            rec.hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	col := newCollector()
	tr.SetHandler(0, func(int, Kind, []byte) {})
	tr.SetHandler(1, col.handler)

	killLink(tr, 0, 1)
	for i := 0; i < maxPendingFrames+extra; i++ {
		tr.Send(0, 1, KindData, []byte("x"))
	}
	// The first send hits the write error, queues itself, and starts the
	// redial; the next maxPendingFrames-1 fill the queue; the rest overflow.
	if got := tr.Stats().Drops(KindData); got != extra {
		t.Fatalf("overflow drops = %d, want %d", got, extra)
	}
	if got := tr.LinkDrops(0, 1); got != extra {
		t.Fatalf("LinkDrops = %d, want %d", got, extra)
	}

	// The queued prefix survives the outage: exactly maxPendingFrames
	// frames arrive after reconnection, none double-counted.
	col.waitFor(t, maxPendingFrames)
	if tr.Reconnects() == 0 {
		t.Fatal("queue flushed without a recorded reconnect")
	}
	if got := tr.Stats().TotalDrops(); got != extra {
		t.Fatalf("TotalDrops after flush = %d, want %d (flush must not count drops)", got, extra)
	}
}

// TestTCPRedialExhaustionDropsQueued kills the peer's listener so every
// redial attempt fails: when the retry budget runs out, the queued frames
// are dropped and every one of them is accounted, per kind.
func TestTCPRedialExhaustionDropsQueued(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	rec := newDropRecorder()
	tr, err := NewTCPLoopbackOpts(2, TCPOptions{
		DialTimeout:       100 * time.Millisecond,
		SendTimeout:       time.Second,
		ReconnectAttempts: 2,
		ReconnectBackoff:  time.Millisecond,
		Seed:              testutil.Seed(t),
		OnDrop:            rec.hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.SetHandler(0, func(int, Kind, []byte) {})
	tr.SetHandler(1, func(int, Kind, []byte) {})

	tr.listener[1].Close() // all redials to process 1 now fail
	killLink(tr, 0, 1)
	tr.Send(0, 1, KindData, []byte("q1")) // write fails; link queues...
	tr.Send(0, 1, KindData, []byte("q2"))
	tr.Send(0, 1, KindProgress, []byte("q3"))

	deadline := time.Now().Add(5 * time.Second)
	for tr.Stats().TotalDrops() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d, p := tr.Stats().Drops(KindData), tr.Stats().Drops(KindProgress); d != 2 || p != 1 {
		t.Fatalf("drops after exhaustion data=%d progress=%d, want 2/1", d, p)
	}
	total, byK := rec.snapshot()
	if total != 3 || byK[KindData] != 2 || byK[KindProgress] != 1 {
		t.Fatalf("OnDrop saw total=%d byKind=%v, want 3 with 2 data + 1 progress", total, byK)
	}
}

func TestStatsDropCounters(t *testing.T) {
	var s Stats
	s.CountDrops(KindData, 3)
	s.CountDrops(KindHeartbeat, 2)
	if s.Drops(KindData) != 3 || s.Drops(KindHeartbeat) != 2 || s.TotalDrops() != 5 {
		t.Fatalf("drops data=%d hb=%d total=%d", s.Drops(KindData), s.Drops(KindHeartbeat), s.TotalDrops())
	}
	s.Reset()
	if s.TotalDrops() != 0 {
		t.Fatalf("TotalDrops after Reset = %d", s.TotalDrops())
	}
}
