package transport

// ObserveFunc sees one frame cross the transport: its endpoints, kind, and
// payload size. Observers must be cheap and non-blocking — they run on the
// sending goroutine (sends) or the delivery goroutine (receives).
type ObserveFunc func(from, to int, kind Kind, payloadLen int)

// Observed wraps a Transport with per-frame observation callbacks: onSend
// fires before every Send, onRecv before every handler invocation. The
// runtime uses it to emit transport events into the tracer without the
// transport implementations knowing about tracing. Frames a wrapper
// consumes internally (heartbeat beats under an inner Heartbeats) never
// reach the observed handler, so onRecv reports only frames the runtime
// actually dispatches.
type Observed struct {
	inner  Transport
	onSend ObserveFunc
	onRecv ObserveFunc
}

// NewObserved wraps inner; either callback may be nil.
func NewObserved(inner Transport, onSend, onRecv ObserveFunc) *Observed {
	return &Observed{inner: inner, onSend: onSend, onRecv: onRecv}
}

// Processes returns the process count.
func (o *Observed) Processes() int { return o.inner.Processes() }

// SetHandler installs h, interposing the receive observer.
func (o *Observed) SetHandler(proc int, h Handler) {
	if o.onRecv == nil {
		o.inner.SetHandler(proc, h)
		return
	}
	o.inner.SetHandler(proc, func(from int, kind Kind, payload []byte) {
		o.onRecv(from, proc, kind, len(payload))
		h(from, kind, payload)
	})
}

// Send observes and forwards one frame.
func (o *Observed) Send(from, to int, kind Kind, payload []byte) {
	if o.onSend != nil {
		o.onSend(from, to, kind, len(payload))
	}
	o.inner.Send(from, to, kind, payload)
}

// Stats returns the inner transport's counters.
func (o *Observed) Stats() *Stats { return o.inner.Stats() }

// Close closes the inner transport.
func (o *Observed) Close() { o.inner.Close() }
