package transport

import (
	"bytes"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"naiad/internal/testutil"
)

// TestTCPCloseDuringConcurrentSend closes the transport while senders on
// every link are mid-Send. Nothing may panic, Close must return (it waits
// for the reader goroutines), late Sends must be no-ops, and no goroutine
// may leak.
func TestTCPCloseDuringConcurrentSend(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	tr, err := NewTCPLoopback(3)
	if err != nil {
		t.Fatal(err)
	}
	var delivered atomic.Int64
	for i := 0; i < 3; i++ {
		tr.SetHandler(i, func(int, Kind, []byte) { delivered.Add(1) })
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for from := 0; from < 3; from++ {
		for to := 0; to < 3; to++ {
			if from == to {
				continue
			}
			wg.Add(1)
			go func(from, to int) {
				defer wg.Done()
				payload := make([]byte, 512)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					tr.Send(from, to, KindData, payload)
				}
			}(from, to)
		}
	}
	// Let traffic flow, then yank the transport out from under the senders.
	deadline := time.After(2 * time.Second)
	for delivered.Load() < 100 {
		select {
		case <-deadline:
			t.Fatal("no traffic before close")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	tr.Close()
	close(stop)
	wg.Wait()
	tr.Send(0, 1, KindData, []byte("late")) // after Close: dropped, no panic
	tr.Close()                              // idempotent
}

// TestTCPLargeFramePartialRead pushes frames well past the kernel socket
// buffer, so the reader's io.ReadFull necessarily observes partial reads
// and must reassemble the payload across them.
func TestTCPLargeFramePartialRead(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	tr, err := NewTCPLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	col := newCollector()
	tr.SetHandler(0, func(int, Kind, []byte) {})
	tr.SetHandler(1, col.handler)
	big := make([]byte, 4<<20) // 4 MiB: far beyond any default socket buffer
	for i := range big {
		big[i] = byte(i * 31)
	}
	tr.Send(0, 1, KindData, big)
	tr.Send(0, 1, KindProgress, []byte("after")) // framing must stay aligned
	frames := col.waitFor(t, 2)
	if !bytes.Equal(frames[0].payload, big) {
		t.Fatal("large payload corrupted across partial reads")
	}
	if frames[1].kind != KindProgress || string(frames[1].payload) != "after" {
		t.Fatalf("frame after the large one misparsed: %+v", frames[1])
	}
}

// TestTCPManySmallFramesBoundary floods one link with odd-sized frames so
// header/payload boundaries land at arbitrary offsets within kernel
// buffers; every frame must come out intact and in order.
func TestTCPManySmallFramesBoundary(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	tr, err := NewTCPLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	col := newCollector()
	tr.SetHandler(0, func(int, Kind, []byte) {})
	tr.SetHandler(1, col.handler)
	const n = 2000
	for i := 0; i < n; i++ {
		payload := make([]byte, 4+i%257) // 257 is co-prime with buffer sizes
		binary.LittleEndian.PutUint32(payload, uint32(i))
		tr.Send(0, 1, KindData, payload)
	}
	frames := col.waitFor(t, n)
	for i, f := range frames[:n] {
		if got := binary.LittleEndian.Uint32(f.payload); got != uint32(i) {
			t.Fatalf("frame %d out of order or corrupt: index %d", i, got)
		}
		if want := 4 + i%257; len(f.payload) != want {
			t.Fatalf("frame %d length %d, want %d", i, len(f.payload), want)
		}
	}
}

func TestParseFrameHeader(t *testing.T) {
	var hdr [FrameOverhead]byte
	hdr[0] = byte(KindProgress)
	binary.LittleEndian.PutUint32(hdr[1:5], 7)
	binary.LittleEndian.PutUint32(hdr[5:9], 1234)
	kind, src, size, err := ParseFrameHeader(hdr[:])
	if err != nil || kind != KindProgress || src != 7 || size != 1234 {
		t.Fatalf("got %v %d %d %v", kind, src, size, err)
	}
	if _, _, _, err := ParseFrameHeader(hdr[:5]); err == nil {
		t.Fatal("short header accepted")
	}
	hdr[0] = 9
	if _, _, _, err := ParseFrameHeader(hdr[:]); err == nil {
		t.Fatal("unknown kind accepted")
	}
	hdr[0] = byte(KindData)
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(MaxFrameSize+1))
	if _, _, _, err := ParseFrameHeader(hdr[:]); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// FuzzParseFrameHeader feeds arbitrary bytes to the header parser: it must
// either error or return a bounded, in-range result — never panic.
func FuzzParseFrameHeader(f *testing.F) {
	f.Add([]byte{0, 1, 0, 0, 0, 16, 0, 0, 0})
	f.Add([]byte{2, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 255})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, _, size, err := ParseFrameHeader(data)
		if err != nil {
			return
		}
		if kind >= numKinds {
			t.Fatalf("accepted unknown kind %d", kind)
		}
		if size < 0 || size > MaxFrameSize {
			t.Fatalf("accepted out-of-range size %d", size)
		}
	})
}
