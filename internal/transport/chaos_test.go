package transport

import (
	"testing"
	"time"

	"naiad/internal/testutil"
)

func mkChaos(cfg ChaosConfig) func(n int) Transport {
	return func(n int) Transport { return NewChaos(NewMem(n), cfg) }
}

// A fault-free Chaos must be indistinguishable from its inner transport.
func TestChaosBasics(t *testing.T) { testTransportBasics(t, mkChaos(ChaosConfig{})) }
func TestChaosStats(t *testing.T)  { testTransportStats(t, mkChaos(ChaosConfig{})) }
func TestChaosConcurrent(t *testing.T) {
	testTransportConcurrentSenders(t, mkChaos(ChaosConfig{}))
}

// FIFO must survive latency and jitter: delaying frames is allowed,
// reordering them is not.
func TestChaosFIFOUnderJitter(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	testTransportFIFO(t, mkChaos(ChaosConfig{
		Seed:    testutil.Seed(t),
		Default: Fault{Latency: time.Millisecond, Jitter: 5 * time.Millisecond},
	}))
}

func TestChaosLatency(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	tr := NewChaos(NewMem(2), ChaosConfig{Default: Fault{Latency: 80 * time.Millisecond}})
	defer tr.Close()
	col := newCollector()
	tr.SetHandler(0, func(int, Kind, []byte) {})
	tr.SetHandler(1, col.handler)
	start := time.Now()
	tr.Send(0, 1, KindData, []byte("slow"))
	col.waitFor(t, 1)
	if got := time.Since(start); got < 75*time.Millisecond {
		t.Fatalf("frame arrived after %v, want >= 80ms of injected latency", got)
	}
}

func TestChaosThrottle(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	// 1000 bytes per frame (991 payload + 9 overhead) at 10 kB/s: each
	// frame occupies the link for 100ms, so 4 frames need >= 400ms.
	tr := NewChaos(NewMem(2), ChaosConfig{Default: Fault{BytesPerSecond: 10_000}})
	defer tr.Close()
	col := newCollector()
	tr.SetHandler(0, func(int, Kind, []byte) {})
	tr.SetHandler(1, col.handler)
	start := time.Now()
	for i := 0; i < 4; i++ {
		tr.Send(0, 1, KindData, make([]byte, 991))
	}
	col.waitFor(t, 4)
	if got := time.Since(start); got < 350*time.Millisecond {
		t.Fatalf("4 throttled frames arrived after %v, want >= ~400ms", got)
	}
}

func TestChaosPartitionHoldsAndHeals(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	tr := NewChaos(NewMem(3), ChaosConfig{
		Partition: &Partition{
			Groups:   [][]int{{0}, {1}},
			Duration: 200 * time.Millisecond,
		},
	})
	defer tr.Close()
	cols := make([]*collector, 3)
	for i := range cols {
		cols[i] = newCollector()
		tr.SetHandler(i, cols[i].handler)
	}
	start := time.Now()
	tr.Send(0, 1, KindData, []byte("held")) // crosses the cut: held until heal
	tr.Send(2, 1, KindData, []byte("free")) // proc 2 is in no group: unaffected
	frames := cols[1].waitFor(t, 1)
	if string(frames[0].payload) != "free" {
		t.Fatalf("first frame through was %q, want the ungrouped sender's", frames[0].payload)
	}
	frames = cols[1].waitFor(t, 2)
	if got := time.Since(start); got < 180*time.Millisecond {
		t.Fatalf("partitioned frame arrived after %v, want >= 200ms (the heal time)", got)
	}
	if string(frames[1].payload) != "held" {
		t.Fatalf("healed frame = %q; nothing may be dropped by a partition", frames[1].payload)
	}
}

func TestChaosCrashAfterFrames(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	tr := NewChaos(NewMem(2), ChaosConfig{CrashAfterFrames: map[int]int64{1: 3}})
	defer tr.Close()
	crashed := make(chan int, 4)
	tr.SetOnCrash(func(proc int) { crashed <- proc })
	col := newCollector()
	tr.SetHandler(0, func(int, Kind, []byte) {})
	tr.SetHandler(1, col.handler)
	for i := 0; i < 6; i++ {
		tr.Send(0, 1, KindData, []byte{byte(i)})
	}
	select {
	case p := <-crashed:
		if p != 1 {
			t.Fatalf("crashed proc = %d, want 1", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("OnCrash never fired")
	}
	if tr.Alive(1) || !tr.Alive(0) {
		t.Fatalf("Alive = %v,%v, want true,false", tr.Alive(0), tr.Alive(1))
	}
	// Frames queued at crash time are dropped along with future ones, so
	// the dead process sees at most the two pre-crash frames — possibly
	// fewer if the crash outran their delivery.
	time.Sleep(50 * time.Millisecond)
	col.mu.Lock()
	n := len(col.frames)
	col.mu.Unlock()
	if n >= 3 {
		t.Fatalf("crashed process received %d frames, want < 3 (crash on its 3rd)", n)
	}
	select {
	case <-crashed:
		t.Fatal("OnCrash fired more than once")
	default:
	}
}

func TestChaosManualCrash(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	tr := NewChaos(NewMem(2), ChaosConfig{})
	defer tr.Close()
	crashed := make(chan int, 1)
	tr.SetOnCrash(func(proc int) { crashed <- proc })
	tr.SetHandler(0, func(int, Kind, []byte) {})
	received := make(chan struct{}, 16)
	tr.SetHandler(1, func(int, Kind, []byte) { received <- struct{}{} })
	tr.Crash(0)
	<-crashed
	tr.Send(0, 1, KindData, []byte("dead"))
	select {
	case <-received:
		t.Fatal("frame delivered from a crashed process")
	case <-time.After(50 * time.Millisecond):
	}
}

// TestChaosReorderViolatesFIFO checks the deliberate-violation knob: with
// ReorderProb set, delivery order must differ from send order. This is the
// fault the progress protocol can NOT tolerate; the safety monitor's
// negative test in internal/runtime depends on this knob working.
func TestChaosReorderViolatesFIFO(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	tr := NewChaos(NewMem(2), ChaosConfig{
		Seed:    testutil.Seed(t),
		Default: Fault{Latency: 100 * time.Millisecond, ReorderProb: 1},
	})
	defer tr.Close()
	col := newCollector()
	tr.SetHandler(0, func(int, Kind, []byte) {})
	tr.SetHandler(1, col.handler)
	const n = 20
	for i := 0; i < n; i++ {
		tr.Send(0, 1, KindData, []byte{byte(i)})
	}
	frames := col.waitFor(t, n)
	inOrder := true
	for i, f := range frames {
		if int(f.payload[0]) != i {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatal("ReorderProb=1 delivered all frames in FIFO order")
	}
}

// queueOrder sends a burst through a reordering link and returns the
// resulting queue permutation (frames still undelivered thanks to the long
// latency), which is a pure function of the seed.
func queueOrder(t *testing.T, seed int64) []byte {
	t.Helper()
	tr := NewChaos(NewMem(2), ChaosConfig{
		Seed:    seed,
		Default: Fault{Latency: 5 * time.Second, ReorderProb: 0.5},
	})
	defer tr.Close()
	tr.SetHandler(0, func(int, Kind, []byte) {})
	tr.SetHandler(1, func(int, Kind, []byte) {})
	tr.Send(0, 1, KindData, []byte{0})
	// Let the delivery goroutine pop frame 0 and park on its timer, so the
	// queue the remaining burst sees is identical across runs.
	time.Sleep(50 * time.Millisecond)
	for i := 1; i < 100; i++ {
		tr.Send(0, 1, KindData, []byte{byte(i)})
	}
	l := tr.links[0][1]
	l.mu.Lock()
	order := make([]byte, len(l.queue))
	for i, f := range l.queue {
		order[i] = f.payload[0]
	}
	l.mu.Unlock()
	return order
}

// TestChaosSeedDeterminism: identical seeds give identical fault schedules,
// different seeds give different ones.
func TestChaosSeedDeterminism(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	a := queueOrder(t, 42)
	b := queueOrder(t, 42)
	c := queueOrder(t, 43)
	if string(a) != string(b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	if string(a) == string(c) {
		t.Fatal("different seeds produced the identical 99-frame permutation")
	}
}

func TestChaosSendAfterCloseDropped(t *testing.T) {
	tr := NewChaos(NewMem(2), ChaosConfig{})
	tr.SetHandler(0, func(int, Kind, []byte) {})
	tr.SetHandler(1, func(int, Kind, []byte) {})
	tr.Close()
	tr.Send(0, 1, KindData, []byte("late")) // must not panic
	tr.Close()                              // idempotent
}

func TestChaosPayloadCopied(t *testing.T) {
	defer testutil.CheckNoLeaks(t)()
	tr := NewChaos(NewMem(2), ChaosConfig{Default: Fault{Latency: 30 * time.Millisecond}})
	defer tr.Close()
	col := newCollector()
	tr.SetHandler(0, func(int, Kind, []byte) {})
	tr.SetHandler(1, col.handler)
	buf := []byte("mutate-me")
	tr.Send(0, 1, KindData, buf)
	buf[0] = 'X' // mutate while the frame is still delayed in the queue
	frames := col.waitFor(t, 1)
	if string(frames[0].payload) != "mutate-me" {
		t.Fatalf("payload aliased sender buffer: %q", frames[0].payload)
	}
}
