package serve

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"naiad/internal/testutil"
)

func TestCreditPoolAcquireRelease(t *testing.T) {
	p := newCreditPool(4)
	if !p.tryAcquire(4) {
		t.Fatal("tryAcquire(4) on full pool failed")
	}
	if p.tryAcquire(1) {
		t.Fatal("tryAcquire(1) on empty pool succeeded")
	}
	if p.acquire(1, time.Now().Add(10*time.Millisecond)) {
		t.Fatal("acquire on empty pool beat the deadline")
	}
	p.release(2)
	if !p.acquire(2, time.Now().Add(time.Second)) {
		t.Fatal("acquire after release failed")
	}
	// Release beyond capacity clamps: accounting bugs must not mint credits.
	p.release(100)
	if got := p.available(); got != 4 {
		t.Fatalf("available %d after over-release, want 4", got)
	}
	if u := p.utilization(); u != 0 {
		t.Fatalf("utilization %v, want 0", u)
	}
}

func TestCreditPoolWakesWaiter(t *testing.T) {
	p := newCreditPool(1)
	p.tryAcquire(1)
	done := make(chan bool)
	go func() { done <- p.acquire(1, time.Now().Add(5*time.Second)) }()
	time.Sleep(5 * time.Millisecond)
	p.release(1)
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("waiter reported timeout despite release")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke")
	}
}

// TestCreditPoolStorm hammers one pool from many goroutines under -race:
// every acquire is eventually matched by a release, and the pool must end
// exactly full.
func TestCreditPoolStorm(t *testing.T) {
	seed := testutil.Seed(t)
	const capacity = 64
	p := newCreditPool(capacity)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(g)))
			for i := 0; i < 200; i++ {
				n := 1 + rng.Intn(8)
				if p.acquire(n, time.Now().Add(time.Second)) {
					p.release(n)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := p.available(); got != capacity {
		t.Fatalf("pool ended at %d, want %d", got, capacity)
	}
}

func TestDegraderLadderHysteresis(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DelayLag = 10 * time.Millisecond
	cfg.ShedNewLag = 20 * time.Millisecond
	cfg.ShedAllLag = 40 * time.Millisecond
	cfg.DegradeHold = 3
	cfg.Seed = testutil.Seed(t)
	s := NewServer(cfg)
	d := s.degrade

	// Escalation is immediate, and can jump rungs.
	d.step(45 * time.Millisecond)
	if d.mode() != ModeShedAll {
		t.Fatalf("mode %v after huge signal, want shed-all", d.mode())
	}
	// A calm sample does not de-escalate until DegradeHold samples pass.
	for i := 0; i < cfg.DegradeHold-1; i++ {
		d.step(time.Millisecond)
		if d.mode() != ModeShedAll {
			t.Fatalf("de-escalated after %d calm samples, hold is %d", i+1, cfg.DegradeHold)
		}
	}
	d.step(time.Millisecond)
	if d.mode() != ModeShedNew {
		t.Fatalf("mode %v after hold, want shed-new (one rung down)", d.mode())
	}
	// A loud sample inside the hold window resets the calm count.
	d.step(time.Millisecond)
	d.step(15 * time.Millisecond) // above ShedNewLag/2: not calm
	d.step(time.Millisecond)
	d.step(time.Millisecond)
	if d.mode() != ModeShedNew {
		t.Fatal("de-escalated despite interrupted calm streak")
	}
	d.step(time.Millisecond)
	if d.mode() != ModeDelay {
		t.Fatalf("mode %v, want delay", d.mode())
	}
	if got := s.Metrics().Escalations.Load(); got != 1 {
		t.Fatalf("escalations %d, want 1", got)
	}
}

func TestRetryAfterScalesWithMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetryAfterBase = 40 * time.Millisecond
	cfg.Seed = testutil.Seed(t)
	s := NewServer(cfg)
	d := s.degrade
	for mode := ModeHealthy; mode <= ModeShedAll; mode++ {
		d.cur.Store(int32(mode))
		base := cfg.RetryAfterBase << uint(mode)
		for i := 0; i < 100; i++ {
			got := d.retryAfter()
			if got < base*3/4 || got > base*5/4 {
				t.Fatalf("mode %v retryAfter %v outside ±25%% of %v", mode, got, base)
			}
		}
	}
}

func TestModeStrings(t *testing.T) {
	want := map[Mode]string{
		ModeHealthy: "healthy", ModeDelay: "delay",
		ModeShedNew: "shed-new", ModeShedAll: "shed-all", Mode(9): "unknown",
	}
	for m, s := range want {
		if m.String() != s {
			t.Fatalf("Mode(%d).String() = %q, want %q", m, m.String(), s)
		}
	}
}

func TestTable(t *testing.T) {
	tb := NewTable()
	if _, epoch, ok := tb.Lookup("a"); ok || epoch != -1 {
		t.Fatalf("fresh table lookup ok=%v epoch=%d", ok, epoch)
	}
	tb.Update(0, map[string][]byte{"a": []byte("1"), "b": []byte("2")})
	tb.Update(1, map[string][]byte{"a": []byte("3"), "b": nil})
	if v, epoch, ok := tb.Lookup("a"); !ok || string(v) != "3" || epoch != 1 {
		t.Fatalf("lookup a = %q@%d ok=%v", v, epoch, ok)
	}
	if _, _, ok := tb.Lookup("b"); ok {
		t.Fatal("deleted key still present")
	}
	if tb.Len() != 1 || tb.Epoch() != 1 {
		t.Fatalf("len=%d epoch=%d, want 1/1", tb.Len(), tb.Epoch())
	}
	// Out-of-order stamps never regress the epoch.
	tb.Update(0, map[string][]byte{"c": []byte("4")})
	if tb.Epoch() != 1 {
		t.Fatalf("epoch regressed to %d", tb.Epoch())
	}
}
