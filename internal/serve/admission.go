package serve

import (
	"sync"
	"time"
)

// creditPool is a bounded pool of admission credits: one credit per record
// admitted into a dataflow but not yet completed by its flow's probe.
// Acquire waits (bounded) for capacity — the accept-and-delay half of the
// ladder — and reports failure when the deadline passes, which the caller
// turns into a typed shed. Release is called by the ack releasers when
// epochs complete, and by the admission path itself when a two-pool
// acquisition fails halfway.
type creditPool struct {
	mu    sync.Mutex
	cond  *sync.Cond
	avail int
	cap   int
}

func newCreditPool(capacity int) *creditPool {
	p := &creditPool{avail: capacity, cap: capacity}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// tryAcquire takes n credits immediately, reporting success.
func (p *creditPool) tryAcquire(n int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.avail < n {
		return false
	}
	p.avail -= n
	return true
}

// acquire takes n credits, waiting until the deadline for capacity. A
// timer broadcast bounds the wait: sync.Cond has no timed wait, so the
// timer wakes every waiter at the deadline and each re-checks.
func (p *creditPool) acquire(n int, deadline time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.avail >= n {
		p.avail -= n
		return true
	}
	timer := time.AfterFunc(time.Until(deadline), func() { p.cond.Broadcast() })
	defer timer.Stop()
	for p.avail < n {
		if !time.Now().Before(deadline) {
			return false
		}
		p.cond.Wait()
	}
	p.avail -= n
	return true
}

// release returns n credits and wakes waiters.
func (p *creditPool) release(n int) {
	p.mu.Lock()
	p.avail += n
	if p.avail > p.cap {
		// Release beyond capacity means an accounting bug; clamp rather
		// than let the pool grow past its bound.
		p.avail = p.cap
	}
	p.mu.Unlock()
	p.cond.Broadcast()
}

// available returns the current free credits.
func (p *creditPool) available() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.avail
}

// utilization returns the fraction of credits outstanding (0..1).
func (p *creditPool) utilization() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cap == 0 {
		return 0
	}
	return float64(p.cap-p.avail) / float64(p.cap)
}

// admit charges n records against the tenant's and the global pool,
// waiting up to the server's accept-and-delay budget. The tenant pool is
// charged first: a flooding tenant exhausts its own quota and sheds there
// without ever contending for the shared pool. On a global-pool timeout
// the tenant credits are returned. The returned shed code is "" on
// success.
func (s *Server) admit(t *tenantState, n int, deadline time.Time) (code string, waited time.Duration) {
	start := time.Now()
	if !t.pool.tryAcquire(n) {
		s.metrics.DelayedRequests.Add(1)
		if !t.pool.acquire(n, deadline) {
			return codeQuota, time.Since(start)
		}
	}
	if !s.global.tryAcquire(n) {
		s.metrics.DelayedRequests.Add(1)
		if !s.global.acquire(n, deadline) {
			t.pool.release(n)
			return codeOverload, time.Since(start)
		}
	}
	return "", time.Since(start)
}

// refund returns credits for records that were admitted but never sealed
// into an epoch (ingest failed after admission).
func (s *Server) refund(t *tenantState, n int) {
	t.pool.release(n)
	s.global.release(n)
}
