package serve

import (
	"sync"
	"time"

	"naiad/internal/runtime"
)

// ingestBatch is one admitted request's records, in flight from an HTTP
// handler to a flow's edge batcher. The reply channel (buffered, never
// blocking the batcher) carries back the epoch the records entered: the
// ack a client can later observe complete via the frontier endpoint.
type ingestBatch struct {
	tenant string
	msgs   []runtime.Message
	n      int
	seal   bool       // force-seal request (no records): bounded-latency knob
	reply  chan int64 // receives the epoch fed (or sealed)
}

// pendingEpoch is one sealed-at-the-edge epoch awaiting probe completion;
// its credits are released when the probe passes it.
type pendingEpoch struct {
	epoch    int64
	count    int
	byTenant map[string]int
	sealedAt time.Time
}

// flowState is a registered flow's serving machinery: the single-producer
// edge batcher feeding the runtime input, and the ack releaser returning
// credits as the probe advances. The batcher goroutine is the only caller
// of the input's methods, honoring runtime.Input's single-producer
// contract.
type flowState struct {
	s *Server
	f Flow

	queue  chan ingestBatch
	sealCh chan pendingEpoch
	stopCh chan struct{}

	mu      sync.Mutex
	pending []pendingEpoch // sealed, not yet completed; FIFO
	failed  error          // set when the probe reports a dataflow failure
}

func newFlowState(s *Server, f Flow) *flowState {
	// Every queued batch and every sealed-incomplete epoch carries at
	// least one admission credit, so GlobalCredits bounds both; the slack
	// covers credit-free seal requests.
	capacity := s.cfg.GlobalCredits + s.cfg.MaxSessions
	return &flowState{
		s:      s,
		f:      f,
		queue:  make(chan ingestBatch, capacity),
		sealCh: make(chan pendingEpoch, capacity),
		stopCh: make(chan struct{}),
	}
}

func (fs *flowState) start() {
	fs.s.wg.Add(2)
	go fs.batchLoop()
	go fs.releaseLoop()
}

// stop asks the batcher to drain, seal, and close the input. Callers
// guarantee no concurrent ingest pushes (the HTTP server has shut down).
func (fs *flowState) stop() { close(fs.stopCh) }

// push hands an admitted batch to the batcher and waits for the epoch it
// lands in — the delayed-ack edge of the backpressure path. Returns -1
// when the server is stopping.
func (fs *flowState) push(b ingestBatch) int64 {
	b.reply = make(chan int64, 1)
	select {
	case fs.queue <- b:
	case <-fs.stopCh:
		return -1
	}
	select {
	case e := <-b.reply:
		return e
	case <-fs.stopCh:
		return -1
	}
}

// batchLoop is the edge batcher: it owns the input, feeds admitted
// records into the open epoch, and seals epochs on the cadence, the size
// bound, or an explicit seal request. On stop it drains the queue, seals
// the remainder, and closes the input so the owning computation can Join.
func (fs *flowState) batchLoop() {
	defer fs.s.wg.Done()
	tick := time.NewTicker(fs.s.cfg.EpochInterval)
	defer tick.Stop()
	var open *pendingEpoch
	feed := func(b ingestBatch) {
		if b.seal {
			sealed := fs.seal(&open)
			b.reply <- sealed
			return
		}
		if len(b.msgs) > 0 {
			fs.f.Input.Send(b.msgs...)
		}
		if open == nil {
			open = &pendingEpoch{epoch: fs.f.Input.Epoch(), byTenant: make(map[string]int)}
		}
		open.count += b.n
		open.byTenant[b.tenant] += b.n
		b.reply <- open.epoch
		if open.count >= fs.s.cfg.EpochMaxRecords {
			fs.seal(&open)
		}
	}
	for {
		select {
		case b := <-fs.queue:
			feed(b)
		case <-tick.C:
			if open != nil {
				fs.seal(&open)
			}
		case <-fs.stopCh:
			for {
				select {
				case b := <-fs.queue:
					feed(b)
				default:
					fs.seal(&open)
					fs.f.Input.Close()
					close(fs.sealCh)
					return
				}
			}
		}
	}
}

// seal completes the open epoch at the edge: the input advances, the
// epoch joins the pending list (the backlog signal), and the releaser is
// told to await its completion. Returns the sealed epoch, or the last
// sealed epoch when nothing was open.
func (fs *flowState) seal(open **pendingEpoch) int64 {
	if *open == nil {
		return fs.f.Input.Epoch() - 1
	}
	p := **open
	*open = nil
	p.sealedAt = time.Now()
	fs.f.Input.Advance()
	fs.mu.Lock()
	fs.pending = append(fs.pending, p)
	fs.mu.Unlock()
	fs.s.metrics.EpochsSealed.Add(1)
	fs.sealCh <- p
	return p.epoch
}

// releaseLoop is the ack releaser: for each sealed epoch, wait for the
// flow's probe to pass it, then return the epoch's credits to the tenant
// and global pools — the moment backpressure actually relaxes. A probe
// released by a dataflow failure instead marks the flow failed (ingest
// starts rejecting) and still returns the credits: the records are gone,
// holding their credits would wedge the door shut forever.
func (fs *flowState) releaseLoop() {
	defer fs.s.wg.Done()
	for p := range fs.sealCh {
		err := fs.f.Probe.WaitForErr(p.epoch)
		fs.mu.Lock()
		if len(fs.pending) > 0 && fs.pending[0].epoch == p.epoch {
			fs.pending = fs.pending[1:]
		}
		if err != nil && fs.failed == nil {
			fs.failed = err
		}
		fs.mu.Unlock()
		for tenant, n := range p.byTenant {
			if t := fs.s.tenant(tenant, false); t != nil {
				t.pool.release(n)
			}
		}
		fs.s.global.release(p.count)
		if err != nil {
			fs.s.metrics.FlowFailures.Add(1)
			continue
		}
		fs.s.metrics.EpochsCompleted.Add(1)
		fs.s.metrics.RecordAck(int64(time.Since(p.sealedAt)))
	}
}

// backlogAge is the degradation signal contribution: how long the oldest
// sealed-but-incomplete epoch has been waiting on the dataflow.
func (fs *flowState) backlogAge() time.Duration {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if len(fs.pending) == 0 {
		return 0
	}
	return time.Since(fs.pending[0].sealedAt)
}

// err returns the dataflow failure observed by the releaser, if any.
func (fs *flowState) err() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.failed
}

// completed returns the probe's highest completed epoch.
func (fs *flowState) completed() int64 { return fs.f.Probe.Completed() }
