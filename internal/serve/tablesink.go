package serve

import (
	"fmt"
	"sync"

	"naiad/internal/codec"
	"naiad/internal/lib"
	ts "naiad/internal/timestamp"
)

// TableSink bridges the exactly-once sink to the serving read path: it is a
// lib.SinkStore whose committed batches maintain a Table, so a flow's View is
// fed through the same durable, deduplicated channel as its external output
// and every read rides the sink's frontier stamps.
//
// The soundness argument leans on two sink guarantees. Batches are
// byte-identical across replays, so the per-epoch dedup here is enough for
// exactly-once application. And commits reach the store in epoch order with
// at most one in flight, so the moment epoch e's batch is applied, every
// earlier non-empty epoch already is — the table really is complete through
// e, and the batch's guarantee-derived Frontier (ts.Root(e+1)) can be
// published as the view's stamp without consulting the live tracker.
type TableSink struct {
	tbl *Table
	// decode turns one canonical record encoding into a table entry; a nil
	// value deletes the key (last-writer-wins within the epoch's batch).
	decode func(rec []byte) (key string, val []byte, err error)

	mu       sync.Mutex
	applied  map[int64]bool
	frontier ts.Timestamp
}

// NewTableSink returns a TableSink over a fresh empty Table. decode maps one
// record's codec bytes to a key→value entry; returning a nil value deletes
// the key.
func NewTableSink(decode func(rec []byte) (key string, val []byte, err error)) *TableSink {
	return &TableSink{
		tbl:      NewTable(),
		decode:   decode,
		applied:  make(map[int64]bool),
		frontier: ts.Root(0),
	}
}

// Commit implements lib.SinkStore: it decodes the batch's canonical records
// into entries, applies them to the table under the batch's epoch, and
// advances the view frontier to the batch's stamp. Replayed epochs are
// acknowledged without reapplying — the sink guarantees their bytes are
// identical to the first commit.
func (s *TableSink) Commit(b lib.SinkBatch) (err error) {
	defer func() {
		// The committer goroutine must not die on a malformed batch; an
		// error stalls the sink's frontier visibly instead.
		if r := recover(); r != nil {
			err = fmt.Errorf("tablesink: malformed batch for epoch %d: %v", b.Epoch, r)
		}
	}()
	entries := make(map[string][]byte)
	dec := codec.NewDecoder(b.Data)
	for dec.Remaining() > 0 {
		rec := dec.Bytes()
		k, v, derr := s.decode(rec)
		if derr != nil {
			return fmt.Errorf("tablesink: decode epoch %d: %w", b.Epoch, derr)
		}
		entries[k] = v
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.applied[b.Epoch] {
		return nil
	}
	s.applied[b.Epoch] = true
	s.tbl.Update(b.Epoch, entries)
	if s.frontier.Less(b.Frontier) {
		s.frontier = b.Frontier
	}
	return nil
}

// Lookup implements View, delegating to the underlying table: the returned
// epoch is the highest epoch durably committed by the sink, and because
// commits are ordered it is also the epoch the table is complete through.
func (s *TableSink) Lookup(key string) (value []byte, epoch int64, ok bool) {
	return s.tbl.Lookup(key)
}

// Frontier returns the sink's guarantee-derived stamp: no record with a
// timestamp below it will ever reach the view. It starts at ts.Root(0)
// (nothing guaranteed) and only advances.
func (s *TableSink) Frontier() ts.Timestamp {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frontier
}

// Table exposes the underlying table, e.g. for direct inspection in tests.
func (s *TableSink) Table() *Table {
	return s.tbl
}

// FrontierView is the optional View extension for frontier-stamped reads:
// views maintained through the exactly-once sink (TableSink) report the
// sink's durable frontier stamp, which handleRead attaches to responses so
// clients can reason about read freshness in timestamp terms rather than
// bare epochs.
type FrontierView interface {
	View
	Frontier() ts.Timestamp
}
