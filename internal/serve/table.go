package serve

import "sync"

// Table is the built-in View: a key→value map maintained from a dataflow
// subscription and stamped with the epoch it is complete through. The
// dataflow side calls Update as each epoch's results arrive (lib.Subscribe
// delivers epochs in order); the serving side reads concurrently.
//
// It is deliberately last-writer-wins per key: flows that need
// retraction semantics fold their diffs before calling Update (see
// examples/serving).
type Table struct {
	mu    sync.RWMutex
	vals  map[string][]byte
	epoch int64
}

// NewTable returns an empty table stamped at epoch -1 (nothing complete).
func NewTable() *Table {
	return &Table{vals: make(map[string][]byte), epoch: -1}
}

// Update applies one completed epoch's entries: nil values delete. The
// epoch stamp becomes visible with the entries, under one lock.
func (t *Table) Update(epoch int64, entries map[string][]byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, v := range entries {
		if v == nil {
			delete(t.vals, k)
			continue
		}
		t.vals[k] = append([]byte(nil), v...)
	}
	if epoch > t.epoch {
		t.epoch = epoch
	}
}

// Lookup returns a key's value and the epoch the table is complete
// through.
func (t *Table) Lookup(key string) ([]byte, int64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok := t.vals[key]
	return v, t.epoch, ok
}

// Epoch returns the completion stamp.
func (t *Table) Epoch() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch
}

// Len returns the number of keys.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.vals)
}
