// Package serve is the multi-tenant serving front door: a stdlib-net/http
// ingress/egress layer through which many concurrent tenants stream records
// into shared dataflows and read probe/output state at a consistent
// frontier (the "high-throughput updates + low-latency interactive
// results" goal of Naiad §1, §6, made network-facing).
//
// The robustness core is end-to-end flow control. Every admitted record
// holds one credit from a bounded global pool and one from its tenant's
// pool; credits return only when the record's epoch completes at the
// flow's probe. A dataflow that falls behind therefore starves the door of
// credits, ingest requests delay (bounded) and then shed with typed
// retry-after rejections, and well-behaved clients back off — the worker
// is never the place where unbounded producer memory accumulates.
//
// Overload is explicit, not silent: a degradation controller samples the
// oldest unacknowledged epoch's age (and the runtime's frontier-lag gauges
// when a tracer is attached) and walks a ladder of modes — accept-and-
// delay, shed-new-tenants, shed-all — that the admission path consults on
// every request. See docs/serving.md for the protocol and the tuning
// knobs.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"naiad/internal/runtime"
	"naiad/internal/trace"
)

// Config sizes and parameterizes a Server. The zero value is unusable; use
// DefaultConfig and override.
type Config struct {
	// Addr is the listen address ("127.0.0.1:0" by default: loopback,
	// kernel-assigned port).
	Addr string

	// GlobalCredits bounds records admitted but not yet completed by their
	// flow's probe, across all tenants — the server's total admission
	// queue, and therefore its ingest memory bound.
	GlobalCredits int
	// TenantCredits bounds one tenant's share of GlobalCredits: a flooding
	// tenant exhausts its own pool and sheds while others keep flowing.
	TenantCredits int
	// MaxSessions caps concurrently open sessions; MaxSessionsPerTenant
	// caps one tenant's share.
	MaxSessions          int
	MaxSessionsPerTenant int
	// MaxBatchRecords caps records per ingest request; MaxBodyBytes caps
	// the request body read.
	MaxBatchRecords int
	MaxBodyBytes    int64

	// EpochInterval is the edge batching cadence: an open epoch with
	// records seals at this interval. EpochMaxRecords seals it early.
	EpochInterval   time.Duration
	EpochMaxRecords int

	// AdmitWait bounds how long an ingest request may hold in admission
	// waiting for credits before it is shed (the accept-and-delay budget).
	AdmitWait time.Duration
	// RequestTimeout bounds a read request's frontier wait.
	RequestTimeout time.Duration
	// SessionIdleTimeout reaps sessions with no traffic for this long.
	SessionIdleTimeout time.Duration

	// DelayLag, ShedNewLag, and ShedAllLag are the degradation ladder's
	// escalation thresholds on the backlog signal (age of the oldest
	// sealed-but-incomplete epoch, or the tracer's worst frontier lag,
	// whichever is older). De-escalation requires the signal to fall below
	// half the threshold for DegradeHold consecutive samples.
	DelayLag   time.Duration
	ShedNewLag time.Duration
	ShedAllLag time.Duration
	// DegradeInterval is the controller's sampling period; DegradeHold the
	// consecutive calm samples required to step down.
	DegradeInterval time.Duration
	DegradeHold     int

	// RetryAfterBase seeds the retry-after hint on rejections; the hint
	// scales with ladder depth and carries ±25% jitter.
	RetryAfterBase time.Duration

	// Tracer, when non-nil, contributes the runtime's frontier-lag gauges
	// to the degradation signal.
	Tracer *trace.Tracer
	// Seed drives the retry-after jitter PRNG (default 1).
	Seed int64
}

// DefaultConfig returns a serving configuration with conservative bounds:
// a few thousand records in flight, 5ms edge epochs, and a ladder that
// starts delaying at 100ms of backlog.
func DefaultConfig() Config {
	return Config{
		Addr:                 "127.0.0.1:0",
		GlobalCredits:        1 << 14,
		TenantCredits:        1 << 12,
		MaxSessions:          1024,
		MaxSessionsPerTenant: 64,
		MaxBatchRecords:      4096,
		MaxBodyBytes:         4 << 20,
		EpochInterval:        5 * time.Millisecond,
		EpochMaxRecords:      1 << 13,
		AdmitWait:            250 * time.Millisecond,
		RequestTimeout:       30 * time.Second,
		SessionIdleTimeout:   2 * time.Minute,
		DelayLag:             100 * time.Millisecond,
		ShedNewLag:           500 * time.Millisecond,
		ShedAllLag:           2 * time.Second,
		DegradeInterval:      20 * time.Millisecond,
		DegradeHold:          5,
		RetryAfterBase:       50 * time.Millisecond,
		Seed:                 1,
	}
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	d := DefaultConfig()
	if c.GlobalCredits <= 0 {
		c.GlobalCredits = d.GlobalCredits
	}
	if c.TenantCredits <= 0 || c.TenantCredits > c.GlobalCredits {
		c.TenantCredits = min(d.TenantCredits, c.GlobalCredits)
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = d.MaxSessions
	}
	if c.MaxSessionsPerTenant <= 0 {
		c.MaxSessionsPerTenant = d.MaxSessionsPerTenant
	}
	if c.MaxBatchRecords <= 0 {
		c.MaxBatchRecords = d.MaxBatchRecords
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = d.MaxBodyBytes
	}
	if c.EpochInterval <= 0 {
		c.EpochInterval = d.EpochInterval
	}
	if c.EpochMaxRecords <= 0 {
		c.EpochMaxRecords = d.EpochMaxRecords
	}
	if c.AdmitWait <= 0 {
		c.AdmitWait = d.AdmitWait
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = d.RequestTimeout
	}
	if c.SessionIdleTimeout <= 0 {
		c.SessionIdleTimeout = d.SessionIdleTimeout
	}
	if c.DelayLag <= 0 {
		c.DelayLag = d.DelayLag
	}
	if c.ShedNewLag <= c.DelayLag {
		c.ShedNewLag = max(d.ShedNewLag, 2*c.DelayLag)
	}
	if c.ShedAllLag <= c.ShedNewLag {
		c.ShedAllLag = max(d.ShedAllLag, 2*c.ShedNewLag)
	}
	if c.DegradeInterval <= 0 {
		c.DegradeInterval = d.DegradeInterval
	}
	if c.DegradeHold <= 0 {
		c.DegradeHold = d.DegradeHold
	}
	if c.RetryAfterBase <= 0 {
		c.RetryAfterBase = d.RetryAfterBase
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// View is a flow's queryable output state: a key's current value and the
// epoch through which that value is complete. Implementations must be safe
// for concurrent use; Table is the built-in one.
type View interface {
	Lookup(key string) (value []byte, epoch int64, ok bool)
}

// Flow registers one dataflow input behind the front door. The server
// becomes the input's single producer: epochs are batched at the edge
// across all tenants, and the server closes the input at Shutdown.
type Flow struct {
	// Name routes requests ("/v1/flows/{name}/...").
	Name string
	// Input is the shared dataflow input the edge batcher feeds.
	Input *runtime.Input
	// Probe observes epoch completion downstream; its advancement is what
	// releases admission credits (the end-to-end backpressure edge).
	Probe *runtime.Probe
	// Decode turns one wire record (one NDJSON line) into a dataflow
	// message. Nil passes the raw bytes through as a string record.
	Decode func([]byte) (runtime.Message, error)
	// View, when non-nil, serves frontier-stamped reads.
	View View
}

// Server is the front door: an HTTP listener multiplexing tenant sessions
// onto registered flows.
type Server struct {
	cfg     Config
	metrics Metrics

	mu       sync.Mutex
	flows    map[string]*flowState
	sessions *sessionTable
	global   *creditPool
	tenants  map[string]*tenantState
	degrade  *degrader
	http     *http.Server
	ln       net.Listener
	started  bool
	stopped  bool
	done     chan struct{}
	wg       sync.WaitGroup
}

// tenantState is one tenant's admission bookkeeping.
type tenantState struct {
	name     string
	pool     *creditPool
	sessions int
}

// NewServer builds an unstarted server.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		flows:   make(map[string]*flowState),
		tenants: make(map[string]*tenantState),
		global:  newCreditPool(cfg.GlobalCredits),
		done:    make(chan struct{}),
	}
	s.sessions = newSessionTable(&s.metrics)
	s.degrade = newDegrader(s, cfg)
	return s
}

// Register adds a flow. All flows must be registered before Start, and
// their computation must already be started (runtime.Input panics on use
// before Start).
func (s *Server) Register(f Flow) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("serve: Register after Start")
	}
	if f.Name == "" || f.Input == nil || f.Probe == nil {
		return errors.New("serve: flow needs a name, an input, and a probe")
	}
	if _, dup := s.flows[f.Name]; dup {
		return fmt.Errorf("serve: duplicate flow %q", f.Name)
	}
	s.flows[f.Name] = newFlowState(s, f)
	return nil
}

// Start binds the listener and launches the edge batchers, ack releasers,
// degradation controller, session reaper, and HTTP serving goroutine.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("serve: already started")
	}
	if len(s.flows) == 0 {
		return errors.New("serve: no flows registered")
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen: %w", err)
	}
	s.ln = ln
	s.started = true
	s.http = &http.Server{
		Handler:           s.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	for _, f := range s.flows {
		f.start()
	}
	s.wg.Add(3)
	go s.degrade.run(s.done, &s.wg)
	go s.sessions.reap(s.done, &s.wg, s.cfg.SessionIdleTimeout)
	go func() {
		defer s.wg.Done()
		// Serve returns ErrServerClosed on Shutdown; any other error means
		// the listener died under us, which Shutdown will surface.
		_ = s.http.Serve(ln)
	}()
	return nil
}

// Addr returns the bound listen address (valid after Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Metrics returns the server's counters.
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Mode returns the current degradation mode.
func (s *Server) Mode() Mode { return s.degrade.mode() }

// Shutdown stops accepting traffic, stops the background goroutines, seals
// and closes every flow's input (the server is the single producer), and
// waits for the ack releasers to drain. The owning computation can then
// Join.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.started || s.stopped {
		s.mu.Unlock()
		return nil
	}
	s.stopped = true
	srv := s.http
	s.mu.Unlock()
	err := srv.Shutdown(ctx)
	close(s.done)
	for _, f := range s.snapshotFlows() {
		f.stop()
	}
	s.wg.Wait()
	return err
}

// snapshotFlows copies the flow list under the lock.
func (s *Server) snapshotFlows() []*flowState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*flowState, 0, len(s.flows))
	for _, f := range s.flows {
		out = append(out, f)
	}
	return out
}

// flow resolves a flow by name.
func (s *Server) flow(name string) *flowState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flows[name]
}

// tenant returns (creating on demand) a tenant's admission state.
// Creation is what the shed-new-tenants mode refuses: see admitSession.
func (s *Server) tenant(name string, create bool) *tenantState {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenants[name]
	if t == nil && create {
		t = &tenantState{name: name, pool: newCreditPool(s.cfg.TenantCredits)}
		s.tenants[name] = t
		s.metrics.TenantsSeen.Add(1)
	}
	return t
}
