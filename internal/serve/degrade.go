package serve

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Mode is a rung of the degradation ladder. Higher modes shed more; every
// admission decision consults the current mode, and every rejection tells
// the client which rung produced it.
type Mode int32

const (
	// ModeHealthy admits everything within quota.
	ModeHealthy Mode = iota
	// ModeDelay admits everything but warns clients: admission waits are
	// expected and retry-after hints grow. Entered when the backlog signal
	// crosses DelayLag.
	ModeDelay
	// ModeShedNew keeps serving established tenants but refuses sessions
	// from tenants the server has not seen — load stops growing while the
	// dataflow catches up. Entered at ShedNewLag.
	ModeShedNew
	// ModeShedAll refuses all ingest (reads still serve) — the last rung
	// before the alternative, which is a worker OOM. Entered at ShedAllLag.
	ModeShedAll
)

// String names the mode as the wire protocol spells it.
func (m Mode) String() string {
	switch m {
	case ModeHealthy:
		return "healthy"
	case ModeDelay:
		return "delay"
	case ModeShedNew:
		return "shed-new"
	case ModeShedAll:
		return "shed-all"
	}
	return "unknown"
}

// degrader is the degradation controller: it samples the backlog signal on
// a fixed cadence and walks the mode ladder with hysteresis (escalation is
// immediate, de-escalation needs DegradeHold consecutive calm samples so a
// flapping signal cannot oscillate admissions).
type degrader struct {
	s    *Server
	cfg  Config
	cur  atomic.Int32
	calm int // consecutive samples below the step-down threshold

	rngMu sync.Mutex
	rng   *rand.Rand
}

func newDegrader(s *Server, cfg Config) *degrader {
	return &degrader{s: s, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

func (d *degrader) mode() Mode { return Mode(d.cur.Load()) }

// signal computes the overload signal: the age of the oldest epoch that
// has been sealed at the edge but not completed by its flow's probe — the
// end-to-end measure of how far the dataflow trails the door. When a
// tracer is attached its worst frontier lag is folded in, but only while a
// backlog exists: an idle computation's frontier legitimately sits still,
// and idleness must read as healthy.
func (d *degrader) signal() time.Duration {
	var oldest time.Duration
	for _, f := range d.s.snapshotFlows() {
		if age := f.backlogAge(); age > oldest {
			oldest = age
		}
	}
	if oldest > 0 && d.cfg.Tracer != nil {
		if lags := d.cfg.Tracer.FrontierLags(); len(lags) > 0 && lags[0].Age > oldest {
			oldest = lags[0].Age
		}
	}
	return oldest
}

// target maps a signal to the ladder rung it calls for.
func (d *degrader) target(sig time.Duration) Mode {
	switch {
	case sig >= d.cfg.ShedAllLag:
		return ModeShedAll
	case sig >= d.cfg.ShedNewLag:
		return ModeShedNew
	case sig >= d.cfg.DelayLag:
		return ModeDelay
	}
	return ModeHealthy
}

// step advances the ladder one sample: escalate immediately to the
// target, de-escalate one rung after DegradeHold calm samples (calm =
// signal below half the current rung's entry threshold).
func (d *degrader) step(sig time.Duration) {
	cur := d.mode()
	want := d.target(sig)
	switch {
	case want > cur:
		d.setMode(want)
		d.calm = 0
	case want < cur:
		if sig < d.entryThreshold(cur)/2 {
			d.calm++
			if d.calm >= d.cfg.DegradeHold {
				d.setMode(cur - 1)
				d.calm = 0
			}
		} else {
			d.calm = 0
		}
	default:
		d.calm = 0
	}
}

// entryThreshold returns the signal level that enters a mode.
func (d *degrader) entryThreshold(m Mode) time.Duration {
	switch m {
	case ModeShedAll:
		return d.cfg.ShedAllLag
	case ModeShedNew:
		return d.cfg.ShedNewLag
	default:
		return d.cfg.DelayLag
	}
}

func (d *degrader) setMode(m Mode) {
	old := Mode(d.cur.Swap(int32(m)))
	if old != m {
		d.s.metrics.ModeChanges.Add(1)
		d.s.metrics.CurrentMode.Store(int32(m))
		if m > old {
			d.s.metrics.Escalations.Add(1)
		}
	}
}

// run is the controller loop.
func (d *degrader) run(done <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	tick := time.NewTicker(d.cfg.DegradeInterval)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
			d.step(d.signal())
		}
	}
}

// retryAfter computes the backoff hint attached to a rejection: the base
// scaled by ladder depth, with ±25% jitter so a shed client fleet does not
// return in lockstep.
func (d *degrader) retryAfter() time.Duration {
	base := d.cfg.RetryAfterBase << uint(d.mode())
	d.rngMu.Lock()
	j := time.Duration(d.rng.Int63n(int64(base)/2+1)) - base/4
	d.rngMu.Unlock()
	return base + j
}
