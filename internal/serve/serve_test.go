package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"naiad/internal/lib"
	"naiad/internal/runtime"
	"naiad/internal/testutil"
)

// env is a running front door over a tiny word-count dataflow: "k=v"
// records update a Table keyed by k. When gated, the Subscribe callback
// blocks until release() — the controllable "slow dataflow" every
// backpressure and degradation test needs, since a blocked subscriber
// stops the probe and therefore stops credits from returning.
type env struct {
	t     *testing.T
	scope *lib.Scope
	srv   *Server
	table *Table
	gate  chan struct{}
	once  sync.Once
	stop  sync.Once
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.EpochInterval = time.Millisecond
	cfg.AdmitWait = 50 * time.Millisecond
	cfg.DegradeInterval = 2 * time.Millisecond
	// Small retry-after hints: they floor the client's backoff, and tests
	// assume retried operations complete in a few milliseconds.
	cfg.RetryAfterBase = time.Millisecond
	return cfg
}

func startEnv(t *testing.T, cfg Config, gated bool) *env {
	t.Helper()
	// Registered before e.close below, so (LIFO) the leak check runs after
	// the server and computation have shut down.
	t.Cleanup(testutil.CheckNoLeaks(t))
	cfg.Seed = testutil.Seed(t)
	e := &env{t: t, table: NewTable()}
	if gated {
		e.gate = make(chan struct{})
	}
	scope, err := lib.NewScope(runtime.Config{Processes: 1, WorkersPerProcess: 2})
	if err != nil {
		t.Fatalf("NewScope: %v", err)
	}
	e.scope = scope
	in, stream := lib.NewInput[string](scope, "events", nil)
	sub := lib.Subscribe(stream, func(epoch int64, recs []string) {
		if e.gate != nil {
			<-e.gate
		}
		entries := make(map[string][]byte)
		for _, r := range recs {
			if k, v, ok := strings.Cut(r, "="); ok {
				entries[k] = []byte(v)
			}
		}
		e.table.Update(epoch, entries)
	})
	probe := scope.C.NewProbe(sub)
	if err := scope.C.Start(); err != nil {
		t.Fatalf("Start computation: %v", err)
	}
	e.srv = NewServer(cfg)
	err = e.srv.Register(Flow{
		Name:  "wc",
		Input: in.Raw(),
		Probe: probe,
		Decode: func(b []byte) (runtime.Message, error) {
			s := string(b)
			if !strings.Contains(s, "=") {
				return nil, fmt.Errorf("record %q is not k=v", s)
			}
			return s, nil
		},
		View: e.table,
	})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := e.srv.Start(); err != nil {
		t.Fatalf("Start server: %v", err)
	}
	t.Cleanup(e.close)
	return e
}

// release unblocks the gated subscriber (idempotent).
func (e *env) release() {
	if e.gate != nil {
		e.once.Do(func() { close(e.gate) })
	}
}

func (e *env) close() {
	e.stop.Do(func() {
		e.release()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := e.srv.Shutdown(ctx); err != nil {
			e.t.Errorf("Shutdown: %v", err)
		}
		if err := e.scope.C.Join(); err != nil {
			e.t.Errorf("Join: %v", err)
		}
	})
}

// dial opens a session with few retries so sheds surface as errors fast.
func (e *env) dial(tenant string, retries int) (*Client, error) {
	return Dial(e.srv.Addr(), tenant, "wc", ClientOptions{
		MaxRetries: retries,
		Backoff:    time.Millisecond,
		MaxBackoff: 20 * time.Millisecond,
		Seed:       testutil.Seed(e.t),
	})
}

func (e *env) mustDial(tenant string) *Client {
	e.t.Helper()
	c, err := e.dial(tenant, 8)
	if err != nil {
		e.t.Fatalf("Dial(%s): %v", tenant, err)
	}
	return c
}

// wantRejected asserts err wraps a RejectedError with the given status and
// code.
func wantRejected(t *testing.T, err error, status int, code string) {
	t.Helper()
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("want RejectedError, got %v", err)
	}
	if rej.Status != status || rej.Code != code {
		t.Fatalf("want %d/%s, got %d/%s (%s)", status, code, rej.Status, rej.Code, rej.Msg)
	}
}

func TestServeEndToEnd(t *testing.T) {
	e := startEnv(t, testConfig(), false)
	c := e.mustDial("acme")

	ack, err := c.SendStrings("a=1", "b=2")
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if ack.Accepted != 2 {
		t.Fatalf("accepted %d, want 2", ack.Accepted)
	}

	// Read-your-writes: min_epoch = the ack's epoch must observe the write.
	v, epoch, err := c.Read("a", ack.Epoch)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if v != "1" || epoch < ack.Epoch {
		t.Fatalf("Read a = %q@%d, want 1@>=%d", v, epoch, ack.Epoch)
	}

	// Updates win: a later epoch overwrites.
	ack2, err := c.SendStrings("a=3")
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if ack2.Epoch < ack.Epoch {
		t.Fatalf("epoch went backwards: %d then %d", ack.Epoch, ack2.Epoch)
	}
	if v, _, err = c.Read("a", ack2.Epoch); err != nil || v != "3" {
		t.Fatalf("Read a after update = %q, %v; want 3", v, err)
	}

	completed, open, mode, err := c.Frontier()
	if err != nil {
		t.Fatalf("Frontier: %v", err)
	}
	if completed < ack2.Epoch || open <= completed {
		t.Fatalf("frontier completed=%d open=%d, want completed>=%d < open", completed, open, ack2.Epoch)
	}
	if mode != "healthy" {
		t.Fatalf("mode %q, want healthy", mode)
	}

	// Missing key is a clean 404, stamped with the frontier.
	_, _, err = c.Read("zzz", -1)
	wantRejected(t, err, http.StatusNotFound, codeNotFound)

	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	m := e.srv.Metrics().Snapshot()
	if m.RecordsAccepted != 3 || m.RecordsShed != 0 {
		t.Fatalf("accepted=%d shed=%d, want 3/0", m.RecordsAccepted, m.RecordsShed)
	}
	if m.SessionsOpened != 1 || m.SessionsClosed != 1 || m.OpenSessions != 0 {
		t.Fatalf("sessions opened=%d closed=%d open=%d", m.SessionsOpened, m.SessionsClosed, m.OpenSessions)
	}
	if m.EpochsSealed == 0 || m.EpochsCompleted != m.EpochsSealed {
		t.Fatalf("epochs sealed=%d completed=%d", m.EpochsSealed, m.EpochsCompleted)
	}
}

func TestTenantQuotaShedsAndRecovers(t *testing.T) {
	cfg := testConfig()
	cfg.GlobalCredits = 64
	cfg.TenantCredits = 8
	cfg.AdmitWait = 20 * time.Millisecond
	// Keep the ladder far away: this test is about quotas, not modes.
	cfg.DelayLag = time.Hour
	e := startEnv(t, cfg, true)
	c := e.mustDial("flooder")

	recs := make([]string, 8)
	for i := range recs {
		recs[i] = fmt.Sprintf("k%d=%d", i, i)
	}
	if _, err := c.SendStrings(recs...); err != nil {
		t.Fatalf("first batch should admit: %v", err)
	}

	// The dataflow is gated, so those 8 credits never come back; the next
	// batch must shed on the tenant quota with a typed 429.
	fast, err := e.dial("flooder", 1)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	_, err = fast.SendStrings(recs...)
	wantRejected(t, err, http.StatusTooManyRequests, codeQuota)
	if retries, _, shed := fast.Stats(); retries == 0 || shed != 1 {
		t.Fatalf("client stats retries=%d shed=%d, want >0 and 1", retries, shed)
	}

	m := e.srv.Metrics()
	if m.ShedQuota.Load() == 0 || m.RecordsShed.Load() == 0 {
		t.Fatalf("quota shed not accounted: quota=%d shed=%d", m.ShedQuota.Load(), m.RecordsShed.Load())
	}

	// Backpressure relaxes end to end: release the dataflow, credits
	// return, and the same tenant is admitted again.
	e.release()
	if _, err := c.SendStrings("after=1"); err != nil {
		t.Fatalf("send after release: %v", err)
	}
}

func TestGlobalOverloadSheds(t *testing.T) {
	cfg := testConfig()
	cfg.GlobalCredits = 8
	cfg.TenantCredits = 8
	cfg.AdmitWait = 20 * time.Millisecond
	cfg.DelayLag = time.Hour
	e := startEnv(t, cfg, true)

	a := e.mustDial("tenant-a")
	recs := make([]string, 8)
	for i := range recs {
		recs[i] = fmt.Sprintf("k%d=%d", i, i)
	}
	if _, err := a.SendStrings(recs...); err != nil {
		t.Fatalf("tenant-a batch: %v", err)
	}

	// Tenant B has its own full quota, but the shared pool is empty: the
	// rejection must be typed overload, not quota.
	b, err := e.dial("tenant-b", 1)
	if err != nil {
		t.Fatalf("Dial b: %v", err)
	}
	_, err = b.SendStrings("x=1", "y=2")
	wantRejected(t, err, http.StatusServiceUnavailable, codeOverload)
	if e.srv.Metrics().ShedOverload.Load() == 0 {
		t.Fatal("overload shed not accounted")
	}
	// Tenant B's own credits were refunded when the global acquire failed.
	if got := e.srv.tenant("tenant-b", false).pool.available(); got != cfg.TenantCredits {
		t.Fatalf("tenant-b credits %d, want %d refunded", got, cfg.TenantCredits)
	}
}

func TestDegradationShedNewTenants(t *testing.T) {
	cfg := testConfig()
	cfg.DelayLag = 5 * time.Millisecond
	cfg.ShedNewLag = 15 * time.Millisecond
	cfg.ShedAllLag = time.Hour // ladder tops out at shed-new here
	cfg.DegradeHold = 2
	e := startEnv(t, cfg, true)

	old := e.mustDial("established")
	if _, err := old.SendStrings("a=1"); err != nil {
		t.Fatalf("send: %v", err)
	}

	waitMode(t, e.srv, ModeShedNew, 5*time.Second)

	// A tenant the server has never seen is refused…
	if _, err := e.dial("newcomer", 1); err == nil {
		t.Fatal("new tenant admitted during shed-new")
	} else {
		wantRejected(t, err, http.StatusServiceUnavailable, codeShed)
	}
	// …while the established tenant still opens sessions.
	if _, err := e.dial("established", 1); err != nil {
		t.Fatalf("established tenant refused during shed-new: %v", err)
	}
	m := e.srv.Metrics()
	if m.TenantsShed.Load() == 0 || m.Escalations.Load() == 0 {
		t.Fatalf("shed-new not accounted: tenants_shed=%d escalations=%d",
			m.TenantsShed.Load(), m.Escalations.Load())
	}

	// Drain: release the dataflow and the ladder must walk back down.
	e.release()
	waitMode(t, e.srv, ModeHealthy, 5*time.Second)
	if _, err := e.dial("newcomer", 8); err != nil {
		t.Fatalf("new tenant refused after recovery: %v", err)
	}
}

func TestDegradationShedAll(t *testing.T) {
	cfg := testConfig()
	cfg.DelayLag = 5 * time.Millisecond
	cfg.ShedNewLag = 10 * time.Millisecond
	cfg.ShedAllLag = 20 * time.Millisecond
	e := startEnv(t, cfg, true)

	c := e.mustDial("acme")
	if _, err := c.SendStrings("a=1"); err != nil {
		t.Fatalf("send: %v", err)
	}
	waitMode(t, e.srv, ModeShedAll, 5*time.Second)

	// All ingest sheds, session creation sheds, health reports unready…
	fast, err := e.dial("acme", 1)
	if err == nil {
		_, err = fast.SendStrings("b=2")
		wantRejected(t, err, http.StatusServiceUnavailable, codeShed)
	} else {
		wantRejected(t, err, http.StatusServiceUnavailable, codeShed)
	}
	resp, err := http.Get("http://" + e.srv.Addr() + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz status %d during shed-all, want 503", resp.StatusCode)
	}

	// …but reads still serve (degradation favors queries over ingest).
	if _, _, err := c.Read("a", -1); err != nil {
		var rej *RejectedError
		if !errors.As(err, &rej) || rej.Status != http.StatusNotFound {
			t.Fatalf("read during shed-all: %v", err)
		}
	}

	e.release()
	waitMode(t, e.srv, ModeHealthy, 5*time.Second)
}

func waitMode(t *testing.T, s *Server, want Mode, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if s.Mode() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("mode %v not reached (now %v)", want, s.Mode())
}

func TestSessionLimitsAndReaping(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSessions = 3
	cfg.MaxSessionsPerTenant = 2
	cfg.SessionIdleTimeout = 40 * time.Millisecond
	e := startEnv(t, cfg, false)

	e.mustDial("a")
	e.mustDial("a")
	_, err := e.dial("a", 1)
	wantRejected(t, err, http.StatusTooManyRequests, codeSessions)
	e.mustDial("b")
	_, err = e.dial("c", 1)
	wantRejected(t, err, http.StatusTooManyRequests, codeSessions)

	// The reaper collects idle sessions, freeing the slots.
	deadline := time.Now().Add(5 * time.Second)
	for e.srv.Metrics().SessionsReaped.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := e.srv.Metrics().SessionsReaped.Load(); got < 3 {
		t.Fatalf("reaped %d sessions, want 3", got)
	}
	c := e.mustDial("c") // slot is free again
	if _, err := c.SendStrings("x=1"); err != nil {
		t.Fatalf("send on fresh session: %v", err)
	}
}

func TestProtocolErrors(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBatchRecords = 4
	e := startEnv(t, cfg, false)
	c := e.mustDial("acme")

	// Malformed records fail decode with a 400 and are not fed.
	_, err := c.SendStrings("this has no equals sign")
	wantRejected(t, err, http.StatusBadRequest, codeBadRequest)

	// Oversized batches are typed 413.
	_, err = c.SendStrings("a=1", "b=2", "c=3", "d=4", "e=5")
	wantRejected(t, err, http.StatusRequestEntityTooLarge, codeTooLarge)

	// Unknown session and unknown flow are 404s.
	bad := &Client{base: "http://" + e.srv.Addr(), session: "s-999", flow: "wc",
		opts: ClientOptions{}.withDefaults(), hc: http.DefaultClient}
	err = bad.do("POST", bad.base+"/v1/sessions/s-999/records", []byte("a=1\n"), http.StatusOK, nil)
	wantRejected(t, err, http.StatusNotFound, codeNotFound)
	if _, err := Dial(e.srv.Addr(), "t", "nosuchflow", ClientOptions{MaxRetries: 1}); err == nil {
		t.Fatal("dial to unknown flow succeeded")
	}

	// All-or-nothing accounting: nothing from the failed batches was fed.
	if got := e.srv.Metrics().RecordsAccepted.Load(); got != 0 {
		t.Fatalf("accepted %d records from failed batches, want 0", got)
	}
	if got := e.srv.Metrics().BadRequests.Load(); got < 2 {
		t.Fatalf("bad requests %d, want >= 2", got)
	}
}

func TestReadMinEpochTimesOut(t *testing.T) {
	cfg := testConfig()
	cfg.RequestTimeout = 50 * time.Millisecond
	cfg.DelayLag = time.Hour
	e := startEnv(t, cfg, true)
	c := e.mustDial("acme")

	ack, err := c.SendStrings("a=1")
	if err != nil {
		t.Fatalf("send: %v", err)
	}
	// The gated dataflow never completes the epoch: the consistent read
	// must time out with a 504 rather than return stale state.
	_, _, err = c.Read("a", ack.Epoch)
	wantRejected(t, err, http.StatusGatewayTimeout, codeOverload)
	if e.srv.Metrics().ReadTimeouts.Load() == 0 {
		t.Fatal("read timeout not accounted")
	}

	e.release()
	if v, _, err := c.Read("a", ack.Epoch); err != nil || v != "1" {
		t.Fatalf("read after release = %q, %v; want 1", v, err)
	}
}

func TestAdvanceSealsEpoch(t *testing.T) {
	cfg := testConfig()
	cfg.EpochInterval = time.Hour // only explicit advance seals
	e := startEnv(t, cfg, false)
	c := e.mustDial("acme")

	ack, err := c.SendStrings("a=1")
	if err != nil {
		t.Fatalf("send: %v", err)
	}
	sealed, err := c.Advance()
	if err != nil {
		t.Fatalf("advance: %v", err)
	}
	if sealed != ack.Epoch {
		t.Fatalf("sealed epoch %d, want %d", sealed, ack.Epoch)
	}
	if v, _, err := c.Read("a", ack.Epoch); err != nil || v != "1" {
		t.Fatalf("read after explicit advance = %q, %v; want 1", v, err)
	}
}

func TestShutdownClosesInputAndDrains(t *testing.T) {
	e := startEnv(t, testConfig(), false)
	c := e.mustDial("acme")
	for i := 0; i < 5; i++ {
		if _, err := c.SendStrings(fmt.Sprintf("k%d=%d", i, i)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	// close() (via Cleanup) shuts the server down, which must close the
	// flow input so Join returns; CheckNoLeaks asserts every goroutine —
	// batchers, releasers, controller, reaper, HTTP — exits.
	e.close()
	m := e.srv.Metrics().Snapshot()
	if m.EpochsCompleted != m.EpochsSealed {
		t.Fatalf("drain incomplete: sealed=%d completed=%d", m.EpochsSealed, m.EpochsCompleted)
	}
	// All credits returned: nothing leaked on the way down.
	if free := e.srv.global.available(); free != e.srv.cfg.GlobalCredits {
		t.Fatalf("global credits %d after shutdown, want %d", free, e.srv.cfg.GlobalCredits)
	}
}
