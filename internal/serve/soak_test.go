package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	goruntime "runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"naiad/internal/lib"
	"naiad/internal/runtime"
	"naiad/internal/testutil"
)

// soakFloodMS returns the flood duration: 300ms by default (fast enough for
// the ordinary test run), overridable via NAIAD_SOAK_INGRESS_MS for the
// longer `make soak-ingress` iterations.
func soakFloodMS(t *testing.T) time.Duration {
	if v := os.Getenv("NAIAD_SOAK_INGRESS_MS"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms <= 0 {
			t.Fatalf("bad NAIAD_SOAK_INGRESS_MS=%q", v)
		}
		return time.Duration(ms) * time.Millisecond
	}
	return 300 * time.Millisecond
}

// soakEnv is a front door over a deliberately slowable dataflow: the
// subscriber sleeps delayNS per epoch, so a flood outruns completion and
// admission credits run dry — the overload the soak drives — and resetting
// the delay lets the backlog drain for the recovery phase.
type soakEnv struct {
	t       *testing.T
	scope   *lib.Scope
	srv     *Server
	table   *Table
	delayNS atomic.Int64
	stop    sync.Once
}

func startSoakEnv(t *testing.T) *soakEnv {
	t.Helper()
	t.Cleanup(testutil.CheckNoLeaks(t))
	e := &soakEnv{t: t, table: NewTable()}

	cfg := DefaultConfig()
	cfg.Seed = testutil.Seed(t)
	cfg.GlobalCredits = 256
	cfg.TenantCredits = 256
	cfg.EpochInterval = time.Millisecond
	cfg.AdmitWait = 10 * time.Millisecond
	cfg.RequestTimeout = 2 * time.Second
	cfg.DegradeInterval = 2 * time.Millisecond
	cfg.RetryAfterBase = time.Millisecond
	cfg.DelayLag = 10 * time.Millisecond
	cfg.ShedNewLag = 50 * time.Millisecond
	// Keep the ladder off its top rung: shed-all rejects before decoding the
	// body (record count unknown), which would weaken the record-exact
	// accounting this soak asserts.
	cfg.ShedAllLag = time.Hour

	scope, err := lib.NewScope(runtime.Config{Processes: 1, WorkersPerProcess: 2})
	if err != nil {
		t.Fatalf("NewScope: %v", err)
	}
	e.scope = scope
	in, stream := lib.NewInput[string](scope, "events", nil)
	sub := lib.Subscribe(stream, func(epoch int64, recs []string) {
		if d := e.delayNS.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		entries := make(map[string][]byte)
		for _, r := range recs {
			if k, v, ok := strings.Cut(r, "="); ok {
				entries[k] = []byte(v)
			}
		}
		e.table.Update(epoch, entries)
	})
	probe := scope.C.NewProbe(sub)
	if err := scope.C.Start(); err != nil {
		t.Fatalf("Start computation: %v", err)
	}
	e.srv = NewServer(cfg)
	err = e.srv.Register(Flow{Name: "wc", Input: in.Raw(), Probe: probe, View: e.table})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := e.srv.Start(); err != nil {
		t.Fatalf("Start server: %v", err)
	}
	t.Cleanup(e.close)
	return e
}

func (e *soakEnv) close() {
	e.stop.Do(func() {
		e.delayNS.Store(0)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := e.srv.Shutdown(ctx); err != nil {
			e.t.Errorf("Shutdown: %v", err)
		}
		if err := e.scope.C.Join(); err != nil {
			e.t.Errorf("Join: %v", err)
		}
	})
}

// steadySend pushes count single-record requests through a well-behaved
// client and returns the observed p99 request latency.
func (e *soakEnv) steadySend(c *Client, prefix string, count int) (time.Duration, int64) {
	e.t.Helper()
	lat := make([]time.Duration, 0, count)
	var lastEpoch int64
	for i := 0; i < count; i++ {
		start := time.Now()
		ack, err := c.SendStrings(fmt.Sprintf("%s%d=%d", prefix, i, i))
		if err != nil {
			e.t.Fatalf("steady send %s%d: %v", prefix, i, err)
		}
		lastEpoch = ack.Epoch
		lat = append(lat, time.Since(start))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[len(lat)*99/100], lastEpoch
}

// floodStats is one flooding goroutine's tally of server decisions.
type floodStats struct {
	accepted int64 // records in 200 responses
	shed     int64 // records in 429/503 responses
	other    int64 // responses with an unexpected status
	errs     int64 // transport-level failures (no server decision observed)
}

// TestSoakIngressBoundedOverload drives the front door through a full
// overload cycle: steady state, a never-backing-off multi-goroutine flood
// against a slowed dataflow, drain, and recovery. It proves the robustness
// claims the package makes: sheds rise instead of queues, the heap stays
// bounded by the credit pools, every offered record is accounted accepted
// or shed, and after the flood drains the door returns to healthy-mode
// latencies. `make soak-ingress` runs it under -race across seeds with a
// longer flood.
func TestSoakIngressBoundedOverload(t *testing.T) {
	e := startSoakEnv(t)
	c := e.mustDialSoak("steady")

	// Phase A: steady state on a healthy door.
	p99Pre, _ := e.steadySend(c, "pre", 100)
	if mode := e.srv.Mode(); mode != ModeHealthy {
		t.Fatalf("mode after steady phase = %v, want healthy", mode)
	}

	// Phase B: slow the dataflow and flood it with producers that never
	// back off — every response is ignored and the next batch follows
	// immediately.
	const floodWorkers = 4
	const batch = 8
	e.delayNS.Store(int64(3 * time.Millisecond))
	base := e.srv.Metrics().Snapshot()
	var baseMem goruntime.MemStats
	goruntime.GC()
	goruntime.ReadMemStats(&baseMem)

	var heapMax atomic.Uint64
	samplerDone := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-samplerDone:
				return
			case <-tick.C:
				var m goruntime.MemStats
				goruntime.ReadMemStats(&m)
				if m.HeapAlloc > heapMax.Load() {
					heapMax.Store(m.HeapAlloc)
				}
			}
		}
	}()

	ingestURL := "http://" + e.srv.Addr() + "/v1/sessions/" + c.Session() + "/records"
	httpc := &http.Client{}
	stats := make([]floodStats, floodWorkers)
	deadline := time.Now().Add(soakFloodMS(t))
	var wg sync.WaitGroup
	for w := 0; w < floodWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &stats[w]
			var body bytes.Buffer
			for i := 0; time.Now().Before(deadline); i++ {
				body.Reset()
				for r := 0; r < batch; r++ {
					fmt.Fprintf(&body, "flood_%d_%d=%d\n", w, i, r)
				}
				resp, err := httpc.Post(ingestURL, "application/x-ndjson", bytes.NewReader(body.Bytes()))
				if err != nil {
					st.errs++
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					st.accepted += batch
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					st.shed += batch
				default:
					st.other++
				}
			}
		}(w)
	}
	wg.Wait()
	close(samplerDone)
	samplerWG.Wait()

	var offered, shedSeen, errs, other int64
	for _, st := range stats {
		offered += st.accepted + st.shed
		shedSeen += st.shed
		errs += st.errs
		other += st.other
	}
	if other != 0 {
		t.Fatalf("flood saw %d responses with unexpected status", other)
	}
	if offered == 0 {
		t.Fatal("flood made no requests")
	}

	post := e.srv.Metrics().Snapshot()
	t.Logf("flood: offered=%d accepted=%d shed=%d (server: accepted=%d shed=%d quota=%d overload=%d mode=%d) transport errs=%d",
		offered, offered-shedSeen, shedSeen,
		post.RecordsAccepted-base.RecordsAccepted, post.RecordsShed-base.RecordsShed,
		post.ShedQuota-base.ShedQuota, post.ShedOverload-base.ShedOverload,
		post.ShedMode-base.ShedMode, errs)

	// Sheds rose: the slowed dataflow starved the credit pools and the door
	// rejected instead of queueing.
	if got := post.RecordsShed - base.RecordsShed; got == 0 {
		t.Fatal("flood completed without a single shed record; backpressure never engaged")
	}
	// Exact accounting: every record the flood offered was either accepted
	// or shed, nothing lost. Transport-level errors leave the server-side
	// outcome unobserved, so they loosen the check to an interval.
	delta := (post.RecordsAccepted - base.RecordsAccepted) + (post.RecordsShed - base.RecordsShed)
	if errs == 0 {
		if delta != offered {
			t.Fatalf("accounting: server accepted+shed delta = %d, flood offered %d", delta, offered)
		}
	} else if delta < offered || delta > offered+errs*batch {
		t.Fatalf("accounting: server accepted+shed delta = %d, flood offered %d (+%d unobserved)", delta, offered, errs*batch)
	}

	// Bounded memory: in-flight records are capped by the credit pools, so
	// the flood must not balloon the heap (the bound is generous to absorb
	// race-detector and GC noise; an unbounded queue grows linearly with
	// flood duration and blows far past it).
	if maxH, baseH := heapMax.Load(), baseMem.HeapAlloc; maxH > baseH+128<<20 {
		t.Fatalf("heap grew from %d to %d during flood; admission is not bounding memory", baseH, maxH)
	}

	// Phase C: drain. Restore full speed and wait for every sealed epoch to
	// complete and all credits to return.
	e.delayNS.Store(0)
	drainDeadline := time.Now().Add(30 * time.Second)
	for {
		snap := e.srv.Metrics().Snapshot()
		if snap.EpochsCompleted == snap.EpochsSealed && e.srv.global.available() == e.srv.cfg.GlobalCredits {
			break
		}
		if time.Now().After(drainDeadline) {
			t.Fatalf("backlog never drained: sealed=%d completed=%d credits=%d/%d",
				snap.EpochsSealed, snap.EpochsCompleted, e.srv.global.available(), e.srv.cfg.GlobalCredits)
		}
		time.Sleep(time.Millisecond)
	}
	waitMode(t, e.srv, ModeHealthy, 5*time.Second)

	// Phase D: recovery. A fresh steady run sheds nothing and lands back at
	// interactive latencies.
	p99Post, lastEpoch := e.steadySend(c, "post", 100)
	if _, _, shed := c.Stats(); shed != 0 {
		t.Fatalf("steady client had %d sends shed", shed)
	}
	if bound := max(10*p99Pre, 250*time.Millisecond); p99Post > bound {
		t.Fatalf("post-drain p99 %v exceeds %v (pre-flood p99 %v); door did not recover", p99Post, bound, p99Pre)
	}
	// Read-your-writes at the last ack's epoch: the frontier-stamped read
	// blocks until that epoch completes, so the write must be visible.
	if v, _, err := c.Read("post99", lastEpoch); err != nil || v != "99" {
		t.Fatalf("post-drain write not visible: %q %v", v, err)
	}
	t.Logf("p99 pre=%v post=%v; heap base=%dKiB max=%dKiB", p99Pre, p99Post, baseMem.HeapAlloc>>10, heapMax.Load()>>10)
}

func (e *soakEnv) mustDialSoak(tenant string) *Client {
	e.t.Helper()
	c, err := Dial(e.srv.Addr(), tenant, "wc", ClientOptions{
		MaxRetries: 8,
		Backoff:    time.Millisecond,
		MaxBackoff: 20 * time.Millisecond,
		Seed:       testutil.Seed(e.t),
	})
	if err != nil {
		e.t.Fatalf("Dial(%s): %v", tenant, err)
	}
	return c
}
