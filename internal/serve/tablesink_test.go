package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"naiad/internal/codec"
	"naiad/internal/lib"
	"naiad/internal/runtime"
	"naiad/internal/testutil"
	ts "naiad/internal/timestamp"
)

// kvDecode maps one canonical sink record ("k=v" encoded with
// codec.String()) to a table entry; a bare "k" (no '=') deletes the key.
func kvDecode(rec []byte) (string, []byte, error) {
	s := codec.NewDecoder(rec).String()
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return s, nil, nil
	}
	return k, []byte(v), nil
}

// kvBatch hand-builds a canonical sink batch: each record string-encoded,
// then length-prefixed into the batch's Data.
func kvBatch(epoch int64, recs ...string) lib.SinkBatch {
	var data codec.Encoder
	for _, r := range recs {
		var enc codec.Encoder
		enc.PutString(r)
		data.PutBytes(enc.Bytes())
	}
	return lib.SinkBatch{
		Epoch:    epoch,
		Frontier: ts.Root(epoch + 1),
		Data:     append([]byte(nil), data.Bytes()...),
	}
}

func TestTableSinkAppliesDedupsAndStamps(t *testing.T) {
	v := NewTableSink(kvDecode)
	if got := v.Frontier(); got != ts.Root(0) {
		t.Fatalf("initial frontier %v, want %v", got, ts.Root(0))
	}

	if err := v.Commit(kvBatch(0, "a=1", "b=2")); err != nil {
		t.Fatalf("Commit epoch 0: %v", err)
	}
	if val, epoch, ok := v.Lookup("a"); !ok || string(val) != "1" || epoch != 0 {
		t.Fatalf("Lookup a = %q@%d,%v; want 1@0", val, epoch, ok)
	}
	if got := v.Frontier(); got != ts.Root(1) {
		t.Fatalf("frontier after epoch 0 = %v, want %v", got, ts.Root(1))
	}

	// Epoch 1 deletes a and writes c; the stamp rides the batch frontier.
	if err := v.Commit(kvBatch(1, "a", "c=3")); err != nil {
		t.Fatalf("Commit epoch 1: %v", err)
	}
	if _, _, ok := v.Lookup("a"); ok {
		t.Fatal("a still present after delete")
	}
	if val, epoch, ok := v.Lookup("c"); !ok || string(val) != "3" || epoch != 1 {
		t.Fatalf("Lookup c = %q@%d,%v; want 3@1", val, epoch, ok)
	}
	if got := v.Frontier(); got != ts.Root(2) {
		t.Fatalf("frontier after epoch 1 = %v, want %v", got, ts.Root(2))
	}

	// A replayed commit (crash re-drive) is acknowledged without
	// reapplying: the deleted key must not resurrect, the stamp must not
	// regress.
	if err := v.Commit(kvBatch(0, "a=1", "b=2")); err != nil {
		t.Fatalf("replayed Commit: %v", err)
	}
	if _, _, ok := v.Lookup("a"); ok {
		t.Fatal("replayed epoch resurrected a deleted key")
	}
	if got := v.Frontier(); got != ts.Root(2) {
		t.Fatalf("frontier after replay = %v, want %v", got, ts.Root(2))
	}
	if v.Table().Len() != 2 { // b, c
		t.Fatalf("table len %d, want 2", v.Table().Len())
	}
}

func TestTableSinkRejectsMalformedBatch(t *testing.T) {
	v := NewTableSink(kvDecode)
	bad := lib.SinkBatch{Epoch: 0, Frontier: ts.Root(1), Data: []byte{0xff, 0xff}}
	if err := v.Commit(bad); err == nil {
		t.Fatal("malformed batch committed without error")
	}
	if got := v.Frontier(); got != ts.Root(0) {
		t.Fatalf("frontier advanced past a failed commit: %v", got)
	}
}

// TestServeReadsRideSinkFrontier runs the full path: records ingested at the
// front door flow through an exactly-once Sink into a TableSink view, and
// frontier-stamped reads report the sink's guarantee-derived timestamp. The
// read-your-writes wait needs no extra machinery: the sink's held capability
// keeps the probe from completing an epoch until the view's commit is
// acknowledged.
func TestServeReadsRideSinkFrontier(t *testing.T) {
	t.Cleanup(testutil.CheckNoLeaks(t))
	cfg := testConfig()
	cfg.Seed = testutil.Seed(t)

	scope, err := lib.NewScope(runtime.Config{Processes: 1, WorkersPerProcess: 2})
	if err != nil {
		t.Fatalf("NewScope: %v", err)
	}
	in, stream := lib.NewInput[string](scope, "events", codec.String())
	view := NewTableSink(kvDecode)
	st := lib.Sink(stream, view)
	probe := scope.C.NewProbe(st)
	if err := scope.C.Start(); err != nil {
		t.Fatalf("Start computation: %v", err)
	}

	srv := NewServer(cfg)
	err = srv.Register(Flow{
		Name:  "wc",
		Input: in.Raw(),
		Probe: probe,
		Decode: func(b []byte) (runtime.Message, error) {
			s := string(b)
			if !strings.Contains(s, "=") {
				return nil, fmt.Errorf("record %q is not k=v", s)
			}
			return s, nil
		},
		View: view,
	})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("Start server: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := scope.C.Join(); err != nil {
			t.Errorf("Join: %v", err)
		}
	})

	c, err := Dial(srv.Addr(), "acme", "wc", ClientOptions{
		MaxRetries: 8,
		Backoff:    time.Millisecond,
		MaxBackoff: 20 * time.Millisecond,
		Seed:       testutil.Seed(t),
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	ack, err := c.SendStrings("a=1", "b=2")
	if err != nil {
		t.Fatalf("Send: %v", err)
	}

	// Raw GET so the frontier stamp is observable in both header and body.
	url := fmt.Sprintf("http://%s/v1/flows/wc/read?key=a&min_epoch=%d", srv.Addr(), ack.Epoch)
	httpResp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, httpResp.StatusCode)
	}
	var resp readResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	if resp.Value != "1" || resp.Epoch < ack.Epoch {
		t.Fatalf("read a = %q@%d, want 1@>=%d", resp.Value, resp.Epoch, ack.Epoch)
	}
	// Both records entered one epoch and nothing later has sealed records,
	// so the view frontier is exactly the batch's stamp: Root(epoch+1).
	want := ts.Root(ack.Epoch + 1).String()
	if resp.Frontier != want {
		t.Fatalf("body frontier %q, want %q", resp.Frontier, want)
	}
	if h := httpResp.Header.Get("X-Naiad-View-Frontier"); h != want {
		t.Fatalf("header frontier %q, want %q", h, want)
	}

	// An update in a later epoch advances both the value and the stamp.
	ack2, err := c.SendStrings("a=3")
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if v, epoch, err := c.Read("a", ack2.Epoch); err != nil || v != "3" || epoch < ack2.Epoch {
		t.Fatalf("read after update = %q@%d, %v; want 3@>=%d", v, epoch, err, ack2.Epoch)
	}
	if got, want := view.Frontier(), ts.Root(ack2.Epoch+1); got != want {
		t.Fatalf("view frontier %v, want %v", got, want)
	}
}
