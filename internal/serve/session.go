package serve

import (
	"fmt"
	"sync"
	"time"
)

// session is one tenant connection's sequencing context: ingest requests
// name a session, and the session serializes that client's admission
// bookkeeping. Sessions are cheap — they hold no credits at rest (credits
// travel with records) — so an idle session's only cost is this struct
// until the reaper collects it.
type session struct {
	id     string
	tenant string
	flow   string

	mu         sync.Mutex
	lastActive time.Time
	records    int64 // admitted through this session, for accounting
	closed     bool
}

// touch refreshes the idle clock, failing if the session is gone.
func (ss *session) touch(now time.Time) bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return false
	}
	ss.lastActive = now
	return true
}

// sessionTable owns the live sessions and their idle reaping.
type sessionTable struct {
	metrics *Metrics

	mu   sync.Mutex
	next int64
	byID map[string]*session
}

func newSessionTable(m *Metrics) *sessionTable {
	return &sessionTable{metrics: m, byID: make(map[string]*session)}
}

// create registers a new session. Caller has already passed admission.
func (st *sessionTable) create(tenant, flow string) *session {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.next++
	ss := &session{
		id:         fmt.Sprintf("s-%d", st.next),
		tenant:     tenant,
		flow:       flow,
		lastActive: time.Now(),
	}
	st.byID[ss.id] = ss
	st.metrics.SessionsOpened.Add(1)
	st.metrics.OpenSessions.Add(1)
	return ss
}

// get resolves a live session.
func (st *sessionTable) get(id string) *session {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.byID[id]
}

// count returns open sessions, total and for one tenant.
func (st *sessionTable) count(tenant string) (total, forTenant int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, ss := range st.byID {
		if ss.tenant == tenant {
			forTenant++
		}
	}
	return len(st.byID), forTenant
}

// remove closes and deletes a session, reporting whether it was live.
func (st *sessionTable) remove(id string) bool {
	st.mu.Lock()
	ss := st.byID[id]
	delete(st.byID, id)
	st.mu.Unlock()
	if ss == nil {
		return false
	}
	ss.mu.Lock()
	ss.closed = true
	ss.mu.Unlock()
	st.metrics.SessionsClosed.Add(1)
	st.metrics.OpenSessions.Add(-1)
	return true
}

// reap collects sessions idle past the timeout: a client that vanished
// mid-epoch (network death, crashed process) must not hold a session slot
// forever. Runs until the server's done channel closes.
func (st *sessionTable) reap(done <-chan struct{}, wg *sync.WaitGroup, idle time.Duration) {
	defer wg.Done()
	tick := time.NewTicker(idle / 4)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case now := <-tick.C:
			for _, id := range st.idleIDs(now, idle) {
				if st.remove(id) {
					st.metrics.SessionsReaped.Add(1)
				}
			}
		}
	}
}

// idleIDs snapshots the ids idle past the timeout.
func (st *sessionTable) idleIDs(now time.Time, idle time.Duration) []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []string
	for id, ss := range st.byID {
		ss.mu.Lock()
		stale := now.Sub(ss.lastActive) > idle
		ss.mu.Unlock()
		if stale {
			out = append(out, id)
		}
	}
	return out
}
