package serve

import (
	"sync"
	"sync/atomic"

	"naiad/internal/trace"
)

// Metrics is the front door's accounting: every record admitted, delayed,
// or shed is counted exactly once, so an overload run can be audited —
// accepted + shed (by reason) equals offered load. Counters are atomics
// (readable while serving); the latency histograms are mutex-guarded and
// off the per-record hot path (one Record per request / per epoch).
type Metrics struct {
	// Sessions.
	SessionsOpened atomic.Int64
	SessionsClosed atomic.Int64
	SessionsReaped atomic.Int64
	SessionsShed   atomic.Int64 // session creations refused (cap or mode)
	OpenSessions   atomic.Int64
	TenantsSeen    atomic.Int64
	TenantsShed    atomic.Int64 // unknown tenants refused in shed-new

	// Ingest.
	RecordsAccepted atomic.Int64 // admitted and handed to the edge batcher
	RecordsShed     atomic.Int64 // rejected records, all reasons
	ShedQuota       atomic.Int64 // requests shed on tenant quota
	ShedOverload    atomic.Int64 // requests shed on the global pool
	ShedMode        atomic.Int64 // requests shed by ladder mode
	DelayedRequests atomic.Int64 // requests that waited in admission
	BadRequests     atomic.Int64
	EpochsSealed    atomic.Int64
	EpochsCompleted atomic.Int64
	FlowFailures    atomic.Int64 // probe waits that ended in a dataflow error

	// Reads.
	ReadsServed  atomic.Int64
	ReadTimeouts atomic.Int64

	// Degradation.
	ModeChanges atomic.Int64
	Escalations atomic.Int64
	CurrentMode atomic.Int32

	histMu  sync.Mutex
	ackH    trace.Histogram // epoch seal → probe completion (end-to-end lag)
	admitH  trace.Histogram // time an ingest request spent waiting in admission
	ingestH trace.Histogram // full ingest request handling time
}

// RecordAck records one epoch's seal-to-completion latency.
func (m *Metrics) RecordAck(nanos int64) {
	m.histMu.Lock()
	m.ackH.Record(nanos)
	m.histMu.Unlock()
}

// RecordAdmitWait records one request's admission wait.
func (m *Metrics) RecordAdmitWait(nanos int64) {
	m.histMu.Lock()
	m.admitH.Record(nanos)
	m.histMu.Unlock()
}

// RecordIngest records one ingest request's handling time.
func (m *Metrics) RecordIngest(nanos int64) {
	m.histMu.Lock()
	m.ingestH.Record(nanos)
	m.histMu.Unlock()
}

// HistSnapshot summarizes one latency histogram in nanoseconds.
type HistSnapshot struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean_ns"`
	P50   int64   `json:"p50_ns"`
	P99   int64   `json:"p99_ns"`
	Max   int64   `json:"max_ns"`
}

func histSnap(h *trace.Histogram) HistSnapshot {
	return HistSnapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// Snapshot is a point-in-time copy of the metrics, shaped for JSON.
type Snapshot struct {
	SessionsOpened  int64  `json:"sessions_opened"`
	SessionsClosed  int64  `json:"sessions_closed"`
	SessionsReaped  int64  `json:"sessions_reaped"`
	SessionsShed    int64  `json:"sessions_shed"`
	OpenSessions    int64  `json:"open_sessions"`
	TenantsSeen     int64  `json:"tenants_seen"`
	TenantsShed     int64  `json:"tenants_shed"`
	RecordsAccepted int64  `json:"records_accepted"`
	RecordsShed     int64  `json:"records_shed"`
	ShedQuota       int64  `json:"shed_quota"`
	ShedOverload    int64  `json:"shed_overload"`
	ShedMode        int64  `json:"shed_mode"`
	DelayedRequests int64  `json:"delayed_requests"`
	BadRequests     int64  `json:"bad_requests"`
	EpochsSealed    int64  `json:"epochs_sealed"`
	EpochsCompleted int64  `json:"epochs_completed"`
	FlowFailures    int64  `json:"flow_failures"`
	ReadsServed     int64  `json:"reads_served"`
	ReadTimeouts    int64  `json:"read_timeouts"`
	ModeChanges     int64  `json:"mode_changes"`
	Escalations     int64  `json:"escalations"`
	Mode            string `json:"mode"`

	AckLatency    HistSnapshot `json:"ack_latency"`
	AdmitWait     HistSnapshot `json:"admit_wait"`
	IngestLatency HistSnapshot `json:"ingest_latency"`
}

// Snapshot copies the counters and summarizes the histograms.
func (m *Metrics) Snapshot() Snapshot {
	m.histMu.Lock()
	ack, admit, ingest := histSnap(&m.ackH), histSnap(&m.admitH), histSnap(&m.ingestH)
	m.histMu.Unlock()
	return Snapshot{
		SessionsOpened:  m.SessionsOpened.Load(),
		SessionsClosed:  m.SessionsClosed.Load(),
		SessionsReaped:  m.SessionsReaped.Load(),
		SessionsShed:    m.SessionsShed.Load(),
		OpenSessions:    m.OpenSessions.Load(),
		TenantsSeen:     m.TenantsSeen.Load(),
		TenantsShed:     m.TenantsShed.Load(),
		RecordsAccepted: m.RecordsAccepted.Load(),
		RecordsShed:     m.RecordsShed.Load(),
		ShedQuota:       m.ShedQuota.Load(),
		ShedOverload:    m.ShedOverload.Load(),
		ShedMode:        m.ShedMode.Load(),
		DelayedRequests: m.DelayedRequests.Load(),
		BadRequests:     m.BadRequests.Load(),
		EpochsSealed:    m.EpochsSealed.Load(),
		EpochsCompleted: m.EpochsCompleted.Load(),
		FlowFailures:    m.FlowFailures.Load(),
		ReadsServed:     m.ReadsServed.Load(),
		ReadTimeouts:    m.ReadTimeouts.Load(),
		ModeChanges:     m.ModeChanges.Load(),
		Escalations:     m.Escalations.Load(),
		Mode:            Mode(m.CurrentMode.Load()).String(),
		AckLatency:      ack,
		AdmitWait:       admit,
		IngestLatency:   ingest,
	}
}
