package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	gort "runtime"
	"time"

	"naiad/internal/runtime"
)

// Wire error codes. Every rejection is typed: a client (or an operator
// reading logs) can tell a per-tenant quota shed from global overload from
// a ladder-mode shed, and each carries a retry-after hint.
const (
	codeQuota      = "quota_exceeded" // tenant pool exhausted past the delay budget
	codeOverload   = "overloaded"     // global pool exhausted past the delay budget
	codeShed       = "shedding"       // refused by the degradation ladder
	codeSessions   = "session_limit"  // session cap (global or per-tenant)
	codeFlowFailed = "flow_failed"    // the dataflow behind the flow has failed
	codeNotFound   = "not_found"
	codeBadRequest = "bad_request"
	codeTooLarge   = "too_large"
	codeClosing    = "closing" // server shutting down
)

// errorBody is the JSON rejection envelope.
type errorBody struct {
	Error        string `json:"error"`
	Code         string `json:"code"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
	Mode         string `json:"mode,omitempty"`
}

// sessionResponse answers session creation.
type sessionResponse struct {
	Session string `json:"session"`
	Tenant  string `json:"tenant"`
	Flow    string `json:"flow"`
	// Credits is the tenant's remaining admission allowance, a pacing hint.
	Credits int `json:"credits"`
}

// ingestResponse acks an admitted batch.
type ingestResponse struct {
	Accepted int    `json:"accepted"`
	Epoch    int64  `json:"epoch"` // epoch the records entered at the edge
	Mode     string `json:"mode"`
	Credits  int    `json:"credits"` // tenant credits remaining
}

// frontierResponse is the frontier-stamped state of one flow.
type frontierResponse struct {
	Completed int64  `json:"completed"` // highest epoch complete at the probe
	Open      int64  `json:"open"`      // epoch currently accepting records
	BacklogMS int64  `json:"backlog_ms"`
	Mode      string `json:"mode"`
}

// readResponse is one frontier-stamped key lookup.
type readResponse struct {
	Key   string `json:"key"`
	Value string `json:"value"`
	// Epoch stamps the frontier the value is complete through.
	Epoch int64 `json:"epoch"`
	// Frontier, when the flow's view rides the exactly-once sink
	// (FrontierView), is the sink's guarantee-derived timestamp stamp: no
	// record below it will ever reach the view. Empty otherwise.
	Frontier string `json:"frontier,omitempty"`
}

// advanceResponse acks a forced edge seal.
type advanceResponse struct {
	SealedEpoch int64 `json:"sealed_epoch"`
}

// healthResponse reports the degradation mode.
type healthResponse struct {
	Mode   string `json:"mode"`
	Signal int64  `json:"signal_ms"` // current backlog signal
}

// metricsResponse is the full introspection payload.
type metricsResponse struct {
	Snapshot
	GlobalCreditsFree int    `json:"global_credits_free"`
	HeapAllocBytes    uint64 `json:"heap_alloc_bytes"`
	NumGoroutine      int    `json:"num_goroutine"`
}

// handler builds the HTTP mux. Go 1.22+ method/wildcard patterns keep the
// routing in stdlib.
func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	mux.HandleFunc("POST /v1/sessions/{id}/records", s.handleIngest)
	mux.HandleFunc("POST /v1/sessions/{id}/advance", s.handleAdvance)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionClose)
	mux.HandleFunc("GET /v1/flows/{flow}/frontier", s.handleFrontier)
	mux.HandleFunc("GET /v1/flows/{flow}/read", s.handleRead)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/metricz", s.handleMetricz)
	return mux
}

// reject writes a typed rejection with a retry-after hint.
func (s *Server) reject(w http.ResponseWriter, status int, code, msg string) {
	ra := s.degrade.retryAfter()
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int64(ra/time.Second)+1))
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{
		Error: msg, Code: code, RetryAfterMS: int64(ra / time.Millisecond),
		Mode: s.Mode().String(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// handleSessionCreate admits a new session: the shed-new-tenants rung
// refuses tenants the server has never seen (established tenants may
// still open sessions), and shed-all refuses everyone.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Tenant string `json:"tenant"`
		Flow   string `json:"flow"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil || req.Tenant == "" || req.Flow == "" {
		s.metrics.BadRequests.Add(1)
		s.reject(w, http.StatusBadRequest, codeBadRequest, "body must be JSON with tenant and flow")
		return
	}
	if s.flow(req.Flow) == nil {
		s.metrics.BadRequests.Add(1)
		s.reject(w, http.StatusNotFound, codeNotFound, "unknown flow "+req.Flow)
		return
	}
	switch s.Mode() {
	case ModeShedAll:
		s.metrics.SessionsShed.Add(1)
		s.reject(w, http.StatusServiceUnavailable, codeShed, "shedding all ingress")
		return
	case ModeShedNew:
		if s.tenant(req.Tenant, false) == nil {
			s.metrics.SessionsShed.Add(1)
			s.metrics.TenantsShed.Add(1)
			s.reject(w, http.StatusServiceUnavailable, codeShed, "shedding new tenants")
			return
		}
	}
	total, forTenant := s.sessions.count(req.Tenant)
	if total >= s.cfg.MaxSessions || forTenant >= s.cfg.MaxSessionsPerTenant {
		s.metrics.SessionsShed.Add(1)
		s.reject(w, http.StatusTooManyRequests, codeSessions, "session limit reached")
		return
	}
	t := s.tenant(req.Tenant, true)
	ss := s.sessions.create(req.Tenant, req.Flow)
	writeJSON(w, http.StatusCreated, sessionResponse{
		Session: ss.id, Tenant: ss.tenant, Flow: ss.flow, Credits: t.pool.available(),
	})
}

// handleIngest is the admission path: decode, charge credits (waiting up
// to the accept-and-delay budget), hand to the edge batcher, ack with the
// epoch. A request is all-or-nothing — a mid-body disconnect feeds no
// records.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ss := s.sessions.get(r.PathValue("id"))
	if ss == nil || !ss.touch(start) {
		s.reject(w, http.StatusNotFound, codeNotFound, "unknown session")
		return
	}
	fs := s.flow(ss.flow)
	if fs == nil {
		s.reject(w, http.StatusNotFound, codeNotFound, "unknown flow")
		return
	}
	if err := fs.err(); err != nil {
		s.reject(w, http.StatusServiceUnavailable, codeFlowFailed, "dataflow failed: "+err.Error())
		return
	}
	if s.Mode() == ModeShedAll {
		s.shedRecords(w, 0, codeShed, "shedding all ingress")
		return
	}
	msgs, n, errCode, errMsg := s.decodeBody(w, r, fs)
	if errCode != "" {
		s.metrics.BadRequests.Add(1)
		status := http.StatusBadRequest
		if errCode == codeTooLarge {
			status = http.StatusRequestEntityTooLarge
		}
		s.reject(w, status, errCode, errMsg)
		return
	}
	if n == 0 {
		writeJSON(w, http.StatusOK, ingestResponse{Accepted: 0, Epoch: fs.f.Input.Epoch(), Mode: s.Mode().String()})
		return
	}
	t := s.tenant(ss.tenant, true)
	code, waited := s.admit(t, n, start.Add(s.cfg.AdmitWait))
	s.metrics.RecordAdmitWait(int64(waited))
	if code != "" {
		s.shedRecords(w, n, code, "admission timed out: "+code)
		return
	}
	epoch := fs.push(ingestBatch{tenant: ss.tenant, msgs: msgs, n: n})
	if epoch < 0 {
		s.refund(t, n)
		s.shedRecords(w, n, codeClosing, "server shutting down")
		return
	}
	ss.mu.Lock()
	ss.records += int64(n)
	ss.mu.Unlock()
	s.metrics.RecordsAccepted.Add(int64(n))
	s.metrics.RecordIngest(int64(time.Since(start)))
	writeJSON(w, http.StatusOK, ingestResponse{
		Accepted: n, Epoch: epoch, Mode: s.Mode().String(), Credits: t.pool.available(),
	})
}

// shedRecords accounts one shed ingest request and writes its rejection.
func (s *Server) shedRecords(w http.ResponseWriter, n int, code, msg string) {
	s.metrics.RecordsShed.Add(int64(n))
	status := http.StatusServiceUnavailable
	switch code {
	case codeQuota:
		s.metrics.ShedQuota.Add(1)
		status = http.StatusTooManyRequests
	case codeOverload:
		s.metrics.ShedOverload.Add(1)
	default:
		s.metrics.ShedMode.Add(1)
	}
	s.reject(w, status, code, msg)
}

// decodeBody reads the NDJSON body (one record per line) through the
// flow's decoder. Returns a non-empty code on failure.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, fs *flowState) (msgs []runtime.Message, n int, code, msg string) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if len(msgs) >= s.cfg.MaxBatchRecords {
			return nil, 0, codeTooLarge, fmt.Sprintf("batch exceeds %d records", s.cfg.MaxBatchRecords)
		}
		var m runtime.Message
		var err error
		if fs.f.Decode != nil {
			m, err = fs.f.Decode(line)
		} else {
			m = string(line)
		}
		if err != nil {
			return nil, 0, codeBadRequest, "record decode: " + err.Error()
		}
		msgs = append(msgs, m)
	}
	if err := sc.Err(); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, 0, codeTooLarge, "body exceeds limit"
		}
		// Mid-body disconnect or read error: all-or-nothing, feed nothing.
		return nil, 0, codeBadRequest, "body read: " + err.Error()
	}
	return msgs, len(msgs), "", ""
}

// handleAdvance force-seals the flow's open edge epoch: a tenant's
// bounded-latency knob. The sealed epoch is shared — edge batching
// multiplexes all tenants onto one epoch stream.
func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	ss := s.sessions.get(r.PathValue("id"))
	if ss == nil || !ss.touch(time.Now()) {
		s.reject(w, http.StatusNotFound, codeNotFound, "unknown session")
		return
	}
	fs := s.flow(ss.flow)
	if fs == nil {
		s.reject(w, http.StatusNotFound, codeNotFound, "unknown flow")
		return
	}
	epoch := fs.push(ingestBatch{seal: true})
	if epoch < 0 {
		s.reject(w, http.StatusServiceUnavailable, codeClosing, "server shutting down")
		return
	}
	writeJSON(w, http.StatusOK, advanceResponse{SealedEpoch: epoch})
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.remove(r.PathValue("id")) {
		s.reject(w, http.StatusNotFound, codeNotFound, "unknown session")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleFrontier serves the flow's progress state: what is complete, what
// is open, and how far the dataflow trails the edge.
func (s *Server) handleFrontier(w http.ResponseWriter, r *http.Request) {
	fs := s.flow(r.PathValue("flow"))
	if fs == nil {
		s.reject(w, http.StatusNotFound, codeNotFound, "unknown flow")
		return
	}
	writeJSON(w, http.StatusOK, frontierResponse{
		Completed: fs.completed(),
		Open:      fs.f.Input.Epoch(),
		BacklogMS: int64(fs.backlogAge() / time.Millisecond),
		Mode:      s.Mode().String(),
	})
}

// handleRead is a frontier-stamped key lookup. min_epoch waits (bounded
// by timeout_ms, capped at the server's request timeout) until the probe
// completes that epoch, so a client can read its own writes: ingest acks
// epoch E, read with min_epoch=E sees state complete through E.
func (s *Server) handleRead(w http.ResponseWriter, r *http.Request) {
	fs := s.flow(r.PathValue("flow"))
	if fs == nil {
		s.reject(w, http.StatusNotFound, codeNotFound, "unknown flow")
		return
	}
	if fs.f.View == nil {
		s.reject(w, http.StatusNotFound, codeNotFound, "flow has no view")
		return
	}
	q := r.URL.Query()
	key := q.Get("key")
	if key == "" {
		s.metrics.BadRequests.Add(1)
		s.reject(w, http.StatusBadRequest, codeBadRequest, "key required")
		return
	}
	if minStr := q.Get("min_epoch"); minStr != "" {
		var minEpoch int64
		if _, err := fmt.Sscanf(minStr, "%d", &minEpoch); err != nil {
			s.metrics.BadRequests.Add(1)
			s.reject(w, http.StatusBadRequest, codeBadRequest, "min_epoch must be an integer")
			return
		}
		timeout := s.cfg.RequestTimeout
		if tStr := q.Get("timeout_ms"); tStr != "" {
			var ms int64
			if _, err := fmt.Sscanf(tStr, "%d", &ms); err == nil && ms > 0 && time.Duration(ms)*time.Millisecond < timeout {
				timeout = time.Duration(ms) * time.Millisecond
			}
		}
		if !fs.waitCompleted(minEpoch, time.Now().Add(timeout)) {
			s.metrics.ReadTimeouts.Add(1)
			s.reject(w, http.StatusGatewayTimeout, codeOverload,
				fmt.Sprintf("epoch %d not complete within timeout (completed=%d)", minEpoch, fs.completed()))
			return
		}
	}
	val, epoch, ok := fs.f.View.Lookup(key)
	w.Header().Set("X-Naiad-Frontier", fmt.Sprintf("%d", fs.completed()))
	// A view maintained through the exactly-once sink carries a durable
	// frontier stamp of its own. The probe wait above already covers it:
	// the sink's held capability keeps the probe from completing an epoch
	// until the view's commit is acknowledged, so by the time waitCompleted
	// returns the view is at least as fresh as the probe frontier.
	var stamp string
	if fv, isFV := fs.f.View.(FrontierView); isFV {
		stamp = fv.Frontier().String()
		w.Header().Set("X-Naiad-View-Frontier", stamp)
	}
	if !ok {
		s.reject(w, http.StatusNotFound, codeNotFound, "no value for key "+key)
		return
	}
	s.metrics.ReadsServed.Add(1)
	writeJSON(w, http.StatusOK, readResponse{Key: key, Value: string(val), Epoch: epoch, Frontier: stamp})
}

// waitCompleted polls the probe until it passes epoch or the deadline
// expires. Polling keeps the read path independent of probe internals; the
// granularity only matters to already-slow waits.
func (fs *flowState) waitCompleted(epoch int64, deadline time.Time) bool {
	for {
		if fs.completed() >= epoch {
			return true
		}
		if fs.err() != nil || !time.Now().Before(deadline) {
			return fs.completed() >= epoch
		}
		time.Sleep(time.Millisecond)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	mode := s.Mode()
	status := http.StatusOK
	if mode == ModeShedAll {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, healthResponse{
		Mode:   mode.String(),
		Signal: int64(s.degrade.signal() / time.Millisecond),
	})
}

// handleMetricz serves the full metrics snapshot plus process heap
// figures — what the load harness polls to assert the memory bound.
func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	var ms gort.MemStats
	gort.ReadMemStats(&ms)
	writeJSON(w, http.StatusOK, metricsResponse{
		Snapshot:          s.metrics.Snapshot(),
		GlobalCreditsFree: s.global.available(),
		HeapAllocBytes:    ms.HeapAlloc,
		NumGoroutine:      gort.NumGoroutine(),
	})
}
