package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"time"
)

// ClientOptions tunes a Client's session protocol behavior.
type ClientOptions struct {
	// MaxRetries bounds attempts per operation (default 8). Retries fire
	// on typed rejections (429/503) and transport errors; 4xx protocol
	// errors fail immediately.
	MaxRetries int
	// Backoff is the initial retry delay (default 10ms); it doubles per
	// attempt up to MaxBackoff (default 2s) with ±50% jitter, and the
	// server's retry_after_ms hint acts as a floor — the client never
	// returns before the server asked it to.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Timeout bounds each HTTP request (default 30s).
	Timeout time.Duration
	// Seed drives the jitter PRNG (default 1).
	Seed int64
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.MaxRetries <= 0 {
		o.MaxRetries = 8
	}
	if o.Backoff <= 0 {
		o.Backoff = 10 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Client speaks the session protocol: it opens a session, streams record
// batches with jittered exponential backoff honoring the server's
// retry-after hints, and reads frontier-stamped state.
type Client struct {
	base    string
	tenant  string
	flow    string
	session string
	opts    ClientOptions
	hc      *http.Client

	rngMu sync.Mutex
	rng   *rand.Rand

	// Stats: how the backpressure path treated this client.
	mu        sync.Mutex
	retries   int64
	backoffNS int64
	shed      int64 // operations abandoned after MaxRetries
}

// RejectedError is a typed rejection that exhausted the retry budget.
type RejectedError struct {
	Status     int
	Code       string
	Msg        string
	RetryAfter time.Duration
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("serve: rejected (%d %s): %s", e.Status, e.Code, e.Msg)
}

// Dial opens a session for tenant on flow at the server's base address
// (host:port). Session creation itself retries with backoff, so a client
// arriving during shed-new keeps knocking.
func Dial(addr, tenant, flow string, opts ClientOptions) (*Client, error) {
	opts = opts.withDefaults()
	c := &Client{
		base:   "http://" + addr,
		tenant: tenant,
		flow:   flow,
		opts:   opts,
		hc:     &http.Client{Timeout: opts.Timeout},
		rng:    rand.New(rand.NewSource(opts.Seed)),
	}
	body, _ := json.Marshal(map[string]string{"tenant": tenant, "flow": flow})
	var resp sessionResponse
	if err := c.doRetry("POST", c.base+"/v1/sessions", body, http.StatusCreated, &resp); err != nil {
		return nil, err
	}
	c.session = resp.Session
	return c, nil
}

// Session returns the session id.
func (c *Client) Session() string { return c.session }

// Ack is the server's answer to an admitted batch.
type Ack struct {
	Accepted int
	Epoch    int64
	Mode     string
}

// Send streams one batch of records (NDJSON lines) and returns the ack.
func (c *Client) Send(records [][]byte) (Ack, error) {
	var buf bytes.Buffer
	for _, r := range records {
		buf.Write(r)
		buf.WriteByte('\n')
	}
	var resp ingestResponse
	err := c.doRetry("POST", c.base+"/v1/sessions/"+c.session+"/records", buf.Bytes(), http.StatusOK, &resp)
	if err != nil {
		return Ack{}, err
	}
	return Ack{Accepted: resp.Accepted, Epoch: resp.Epoch, Mode: resp.Mode}, nil
}

// SendStrings is Send for string records.
func (c *Client) SendStrings(records ...string) (Ack, error) {
	bs := make([][]byte, len(records))
	for i, r := range records {
		bs[i] = []byte(r)
	}
	return c.Send(bs)
}

// Advance force-seals the flow's open edge epoch.
func (c *Client) Advance() (int64, error) {
	var resp advanceResponse
	err := c.doRetry("POST", c.base+"/v1/sessions/"+c.session+"/advance", nil, http.StatusOK, &resp)
	return resp.SealedEpoch, err
}

// Frontier reads the flow's progress state.
func (c *Client) Frontier() (completed, open int64, mode string, err error) {
	var resp frontierResponse
	err = c.doRetry("GET", c.base+"/v1/flows/"+c.flow+"/frontier", nil, http.StatusOK, &resp)
	return resp.Completed, resp.Open, resp.Mode, err
}

// Read looks a key up at a consistent frontier. minEpoch ≥ 0 waits until
// the probe completes it (read-your-writes: pass the epoch an ack
// returned). Returns the value and the epoch the state was complete
// through.
func (c *Client) Read(key string, minEpoch int64) (string, int64, error) {
	u := c.base + "/v1/flows/" + c.flow + "/read?key=" + url.QueryEscape(key)
	if minEpoch >= 0 {
		u += fmt.Sprintf("&min_epoch=%d", minEpoch)
	}
	var resp readResponse
	if err := c.doRetry("GET", u, nil, http.StatusOK, &resp); err != nil {
		return "", 0, err
	}
	return resp.Value, resp.Epoch, nil
}

// Metrics fetches the server's metrics snapshot.
func (c *Client) Metrics() (map[string]any, error) {
	var resp map[string]any
	err := c.do("GET", c.base+"/v1/metricz", nil, http.StatusOK, &resp)
	return resp, err
}

// Close deletes the session. Best-effort: a 404 (already reaped) is fine.
func (c *Client) Close() error {
	req, err := http.NewRequest("DELETE", c.base+"/v1/sessions/"+c.session, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Stats reports the client's backpressure experience: retries performed,
// total nanoseconds spent backing off, and operations shed after the
// retry budget.
func (c *Client) Stats() (retries, backoffNS, shed int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retries, c.backoffNS, c.shed
}

// doRetry performs one protocol operation with the retry/backoff loop.
func (c *Client) doRetry(method, url string, body []byte, wantStatus int, out any) error {
	var lastErr error
	for attempt := 0; attempt <= c.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			d := c.backoffFor(attempt, lastErr)
			c.mu.Lock()
			c.retries++
			c.backoffNS += int64(d)
			c.mu.Unlock()
			time.Sleep(d)
		}
		err := c.do(method, url, body, wantStatus, out)
		if err == nil {
			return nil
		}
		lastErr = err
		var rej *RejectedError
		if errors.As(err, &rej) {
			if rej.Status != http.StatusTooManyRequests && rej.Status != http.StatusServiceUnavailable {
				return err // protocol error: retrying cannot help
			}
			continue
		}
		// Transport error: retry too (the server may be mid-restart).
	}
	c.mu.Lock()
	c.shed++
	c.mu.Unlock()
	return fmt.Errorf("serve: giving up after %d retries: %w", c.opts.MaxRetries, lastErr)
}

// backoffFor computes the jittered exponential delay for a retry, floored
// at the server's retry-after hint when the last rejection carried one.
func (c *Client) backoffFor(attempt int, lastErr error) time.Duration {
	d := c.opts.Backoff << uint(attempt-1)
	if d > c.opts.MaxBackoff || d <= 0 {
		d = c.opts.MaxBackoff
	}
	c.rngMu.Lock()
	jittered := d/2 + time.Duration(c.rng.Int63n(int64(d)+1))/2
	c.rngMu.Unlock()
	var rej *RejectedError
	if errors.As(lastErr, &rej) && rej.RetryAfter > jittered {
		jittered = rej.RetryAfter
	}
	return jittered
}

// do performs one HTTP exchange, mapping typed rejections to
// RejectedError.
func (c *Client) do(method, url string, body []byte, wantStatus int, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/x-ndjson")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var eb errorBody
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb)
		return &RejectedError{
			Status: resp.StatusCode, Code: eb.Code, Msg: eb.Error,
			RetryAfter: time.Duration(eb.RetryAfterMS) * time.Millisecond,
		}
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}
