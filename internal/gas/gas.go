// Package gas implements the PowerGraph gather-apply-scatter vertex-
// program abstraction as a Naiad library. The paper's "Naiad Edge"
// PageRank reuses most of its 547 lines for other GAS-model programs
// (§6.1); this package is that reusable layer: per-superstep, each active
// vertex gathers an accumulated value over its in-edges, applies an update
// to its state, and scatters along out-edges, activating neighbors whose
// gathered value changed.
//
// Like the paper's port it is a library over public Naiad primitives: a
// custom vertex inside a loop, with gather messages riding the feedback
// edge. Edge partitioning is by source (scatter-side locality) with
// per-worker combining of gather contributions before the exchange — the
// communication pattern PowerGraph's vertex cuts optimize for.
package gas

import (
	"sort"

	"naiad/internal/codec"
	"naiad/internal/graph"
	"naiad/internal/lib"
	"naiad/internal/runtime"
	ts "naiad/internal/timestamp"
	"naiad/internal/workload"
)

// Program defines a GAS vertex program with state S and gather type G.
type Program[S, G any] struct {
	// Init builds a vertex's initial state.
	Init func(node int64) S
	// InitialActive reports whether a vertex starts active at superstep 0.
	InitialActive func(node int64) bool
	// GatherZero is the identity of Sum.
	GatherZero G
	// Sum combines two gather contributions (commutative, associative).
	Sum func(a, b G) G
	// Apply folds the gathered value into the state, returning the new
	// state and whether the vertex should scatter this superstep.
	Apply func(node int64, state S, gathered G, superstep int64) (S, bool)
	// Scatter produces the contribution sent along one out-edge; the
	// destination becomes active next superstep.
	Scatter func(node int64, state S, deg int, dst int64) G
	// MaxSupersteps bounds the computation.
	MaxSupersteps int64
	// GatherCodec serializes G (nil: gob).
	GatherCodec codec.Codec
	// StateCodec serializes emitted states (nil: gob).
	StateCodec codec.Codec
}

// gatherMsg is one scatter contribution addressed to a vertex.
type gatherMsg[G any] struct {
	Dst int64
	Val G
}

// snapshotG carries a vertex state out of the loop.
type snapshotG[S any] struct {
	Node      int64
	Superstep int64
	State     S
}

// gasVertex hosts a partition of the GAS graph.
type gasVertex[S, G any] struct {
	ctx *runtime.Context
	p   *Program[S, G]

	adj    map[int64][]int64
	state  map[int64]S
	seen   map[ts.Timestamp]bool
	gather map[ts.Timestamp]map[int64]G
}

func (v *gasVertex[S, G]) OnRecv(input int, msg runtime.Message, t ts.Timestamp) {
	if !v.seen[t] {
		v.seen[t] = true
		v.ctx.NotifyAt(t)
	}
	switch input {
	case 0:
		e := msg.(workload.Edge)
		v.adj[e.Src] = append(v.adj[e.Src], e.Dst)
		if _, ok := v.state[e.Src]; !ok {
			v.state[e.Src] = v.p.Init(e.Src)
		}
	case 1:
		m := msg.(gatherMsg[G])
		g := v.gather[t]
		if g == nil {
			g = make(map[int64]G)
			v.gather[t] = g
		}
		if cur, ok := g[m.Dst]; ok {
			g[m.Dst] = v.p.Sum(cur, m.Val)
		} else {
			g[m.Dst] = m.Val
		}
	}
}

func (v *gasVertex[S, G]) OnNotify(t ts.Timestamp) {
	delete(v.seen, t)
	gathered := v.gather[t]
	delete(v.gather, t)
	super := t.Inner()

	// Active set: initially-active vertices at superstep 0, plus every
	// vertex with gathered contributions.
	var active []int64
	if super == 0 {
		for node := range v.state {
			if v.p.InitialActive == nil || v.p.InitialActive(node) {
				active = append(active, node)
			}
		}
	}
	for node := range gathered {
		if _, ok := v.state[node]; !ok {
			v.state[node] = v.p.Init(node)
		}
		if super > 0 {
			active = append(active, node)
		}
	}
	sort.Slice(active, func(i, j int) bool { return active[i] < active[j] })
	dedup := active[:0]
	var last int64 = -1
	for i, n := range active {
		if i == 0 || n != last {
			dedup = append(dedup, n)
		}
		last = n
	}

	for _, node := range dedup {
		g, ok := gathered[node]
		if !ok {
			g = v.p.GatherZero
		}
		next, scatter := v.p.Apply(node, v.state[node], g, super)
		v.state[node] = next
		v.ctx.SendBy(1, snapshotG[S]{Node: node, Superstep: super, State: next}, t)
		if !scatter {
			continue
		}
		outs := v.adj[node]
		for _, dst := range outs {
			v.ctx.SendBy(0, gatherMsg[G]{Dst: dst, Val: v.p.Scatter(node, next, len(outs), dst)}, t)
		}
	}
}

// combineGather sums contributions per destination within each worker
// before the exchange — the traffic reduction edge partitioning buys.
func combineGather[G any](s *lib.Scope, in *lib.Stream[gatherMsg[G]], sum func(a, b G) G, cod codec.Codec) *lib.Stream[gatherMsg[G]] {
	return lib.UnaryBuffer[gatherMsg[G], gatherMsg[G]](in, "gas-combiner", nil,
		func(_ ts.Timestamp, recs []gatherMsg[G], emit func(gatherMsg[G])) {
			sums := make(map[int64]G, len(recs))
			var order []int64
			for _, m := range recs {
				if cur, ok := sums[m.Dst]; ok {
					sums[m.Dst] = sum(cur, m.Val)
				} else {
					sums[m.Dst] = m.Val
					order = append(order, m.Dst)
				}
			}
			for _, dst := range order {
				emit(gatherMsg[G]{Dst: dst, Val: sums[dst]})
			}
		}, cod)
}

// Run wires a GAS computation over an edge stream and returns each node's
// final state per epoch.
func Run[S, G any](s *lib.Scope, edges *lib.Stream[workload.Edge], p Program[S, G]) *lib.Stream[lib.Pair[int64, S]] {
	c := s.C
	edgesIn := lib.EnterLoop(edges, 1)
	gatherCodec := p.GatherCodec
	if gatherCodec == nil {
		gatherCodec = codec.Gob[gatherMsg[G]]()
	}
	st := c.AddStage("gas", graph.RoleNormal, 1, func(ctx *runtime.Context) runtime.Vertex {
		return &gasVertex[S, G]{
			ctx: ctx, p: &p,
			adj:    make(map[int64][]int64),
			state:  make(map[int64]S),
			seen:   make(map[ts.Timestamp]bool),
			gather: make(map[ts.Timestamp]map[int64]G),
		}
	}, runtime.Ports(2))
	fb := c.AddStage("gas-feedback", graph.RoleFeedback, 1, nil, runtime.MaxIterations(p.MaxSupersteps))
	c.Connect(edgesIn.Stage(), 0, st, func(m runtime.Message) uint64 {
		return lib.Hash(m.(workload.Edge).Src)
	}, codec.Gob[workload.Edge]())
	// Scatter messages: combine per worker, then exchange by destination
	// through the feedback edge.
	scatters := lib.StreamOf[gatherMsg[G]](s, st, 0, gatherCodec, 1)
	combined := combineGather(s, scatters, p.Sum, gatherCodec)
	c.Connect(combined.Stage(), 0, fb, nil, gatherCodec)
	c.Connect(fb, 0, st, func(m runtime.Message) uint64 {
		return lib.Hash(m.(gatherMsg[G]).Dst)
	}, gatherCodec)

	snaps := lib.LeaveLoop(lib.StreamOf[snapshotG[S]](s, st, 1, nil, 1))
	latest := lib.FoldByKey(
		lib.Select(snaps, func(sn snapshotG[S]) lib.Pair[int64, snapshotG[S]] {
			return lib.KV(sn.Node, sn)
		}, nil),
		func(int64) snapshotG[S] { return snapshotG[S]{Superstep: -1} },
		func(acc snapshotG[S], sn snapshotG[S]) snapshotG[S] {
			if sn.Superstep >= acc.Superstep {
				return sn
			}
			return acc
		}, nil)
	return lib.Select(latest, func(pr lib.Pair[int64, snapshotG[S]]) lib.Pair[int64, S] {
		return lib.KV(pr.Key, pr.Val.State)
	}, p.StateCodec)
}

// PageRank runs the GAS-model PageRank — the PowerGraph comparison point
// of Figure 7a — for a fixed number of supersteps.
func PageRank(s *lib.Scope, edgeList []workload.Edge, nodes int64, iters int64, damping float64) (map[int64]float64, error) {
	in, edges := lib.NewInput[workload.Edge](s, "edges", nil)
	finals := Run(s, edges, Program[float64, float64]{
		Init:          func(int64) float64 { return 1 / float64(nodes) },
		InitialActive: func(int64) bool { return true },
		GatherZero:    0,
		Sum:           func(a, b float64) float64 { return a + b },
		Apply: func(_ int64, rank float64, gathered float64, super int64) (float64, bool) {
			if super > 0 {
				rank = (1-damping)/float64(nodes) + damping*gathered
			}
			return rank, super < iters
		},
		Scatter: func(_ int64, rank float64, deg int, _ int64) float64 {
			return rank / float64(deg)
		},
		MaxSupersteps: iters + 1,
	})
	col := lib.Collect(finals)
	if err := s.C.Start(); err != nil {
		return nil, err
	}
	in.Send(edgeList...)
	in.Close()
	if err := s.C.Join(); err != nil {
		return nil, err
	}
	out := make(map[int64]float64)
	for _, p := range col.All() {
		out[p.Key] = p.Val
	}
	return out, nil
}
