package gas

import (
	"math"
	"testing"

	"naiad/internal/lib"
	"naiad/internal/runtime"
	"naiad/internal/workload"
)

func scope(t *testing.T) *lib.Scope {
	t.Helper()
	s, err := lib.NewScope(runtime.Config{Processes: 2, WorkersPerProcess: 2, Accumulation: runtime.AccLocalGlobal})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fullInDegreeGraph builds a cycle (so every node has an in-edge, and GAS
// activation reaches everyone each superstep) plus random chords.
func fullInDegreeGraph(nodes int) []workload.Edge {
	edges := workload.CycleGraph(1, nodes)
	edges = append(edges, workload.RandomGraph(5, nodes, nodes*3)...)
	return edges
}

func TestGASPageRankMatchesSequential(t *testing.T) {
	const nodes = 40
	const iters = 8
	edges := fullInDegreeGraph(nodes)
	got, err := PageRank(scope(t), edges, nodes, iters, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	want := workload.ExpectedPageRank(edges, nodes, iters, 0.85)
	if len(got) != nodes {
		t.Fatalf("ranked %d nodes", len(got))
	}
	for n, r := range got {
		if math.Abs(r-want[n]) > 1e-9 {
			t.Fatalf("node %d: gas %.12f, dense %.12f", n, r, want[n])
		}
	}
}

// TestGASMinLabelWCC runs the GAS-style connected components: gather is
// min over scattered labels, apply adopts improvements, and scatter fires
// only on change — the sparse activation pattern the model is built for.
func TestGASMinLabelWCC(t *testing.T) {
	base := workload.ChainGraph(3, 15)
	// Undirect so labels flow both ways.
	var edges []workload.Edge
	for _, e := range base {
		edges = append(edges, e, workload.Edge{Src: e.Dst, Dst: e.Src})
	}
	s := scope(t)
	in2, stream2 := lib.NewInput[workload.Edge](s, "edges", nil)
	finals := Run(s, stream2, Program[int64, int64]{
		Init:          func(n int64) int64 { return n },
		InitialActive: func(int64) bool { return true },
		GatherZero:    math.MaxInt64,
		Sum: func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		},
		Apply: func(_ int64, label int64, gathered int64, super int64) (int64, bool) {
			if super == 0 {
				return label, true // announce the initial label
			}
			if gathered < label {
				return gathered, true // improved: scatter again
			}
			return label, false // no change: stay quiet
		},
		Scatter: func(_ int64, label int64, _ int, _ int64) int64 {
			return label
		},
		MaxSupersteps: 1000,
	})
	col := lib.Collect(finals)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in2.Send(edges...)
	in2.Close()
	if err := s.C.Join(); err != nil {
		t.Fatal(err)
	}
	want := workload.ExpectedWCC(edges)
	got := map[int64]int64{}
	for _, p := range col.All() {
		got[p.Key] = p.Val
	}
	for n, wc := range want {
		if got[n] != wc {
			t.Fatalf("node %d: gas %d, union-find %d", n, got[n], wc)
		}
	}
}
