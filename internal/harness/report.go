// Package harness drives the experiments of the paper's evaluation
// (§5–§6): one driver per table and figure, each generating the workload,
// running the system (and baselines), and reporting the same rows or
// series the paper plots. Absolute numbers differ from the paper's 64-node
// cluster — the shapes (who wins, by what factor, where scaling bends) are
// the reproduction target; see EXPERIMENTS.md.
package harness

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// Report is a printable experiment result: a title, column headers, and
// rows of cells.
type Report struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(r.Headers, "\t"))
	for _, row := range r.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// quantiles returns the q-th quantiles of a duration sample.
func quantiles(ds []time.Duration, qs ...float64) []time.Duration {
	if len(ds) == 0 {
		out := make([]time.Duration, len(qs))
		return out
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]time.Duration, len(qs))
	for i, q := range qs {
		idx := int(q * float64(len(sorted)-1))
		out[i] = sorted[idx]
	}
	return out
}

// mbps renders bytes over a duration as megabits per second.
func mbps(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / 1e6 / d.Seconds()
}

// ms renders a duration in milliseconds with sub-ms precision.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
}
