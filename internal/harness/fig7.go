package harness

import (
	"fmt"
	"time"

	"naiad/internal/allreduce"
	"naiad/internal/gas"
	"naiad/internal/graphalgo"
	"naiad/internal/kexposure"
	"naiad/internal/lib"
	"naiad/internal/pregel"
	"naiad/internal/runtime"
	"naiad/internal/workload"
)

// Fig7aOptions sizes the PageRank layering comparison (§6.1).
type Fig7aOptions struct {
	Workers      []int
	Nodes, Edges int
	Iters        int64
}

// DefaultFig7a returns a laptop-scale configuration. The edge/node ratio
// is high (mean in-degree 40, Zipf-skewed) so that per-destination
// combining has real duplicates to collapse, as on the Twitter follower
// graph.
func DefaultFig7a() Fig7aOptions {
	return Fig7aOptions{Workers: []int{1, 2, 4}, Nodes: 1000, Edges: 40000, Iters: 5}
}

// Fig7a compares PageRank per-iteration time across the three layerings of
// Figure 7a: the custom vertex partitioned by node ("Naiad Vertex"), the
// combiner-augmented variant standing in for edge partitioning ("Naiad
// Edge"), and the Pregel port.
func Fig7a(opt Fig7aOptions) (*Report, error) {
	rep := &Report{
		ID:      "fig7a",
		Title:   "PageRank per-iteration time by layering (§6.1)",
		Headers: []string{"variant", "workers", "per-iter", "total"},
	}
	edges := workload.PowerLawGraph(37, opt.Nodes, opt.Edges, 1.3)
	for _, w := range opt.Workers {
		// One worker per process so the exchange crosses serialization
		// boundaries, which is where the Edge variant's combiners save.
		cfg := runtime.Config{Processes: w, WorkersPerProcess: 1, Accumulation: runtime.AccLocalGlobal}
		for _, variant := range []string{"Naiad Vertex", "Naiad Edge", "Naiad GAS", "Naiad Pregel"} {
			start := time.Now()
			var err error
			switch variant {
			case "Naiad Vertex", "Naiad Edge":
				var s *lib.Scope
				s, err = lib.NewScope(cfg)
				if err == nil {
					_, err = graphalgo.PageRank(s, edges, graphalgo.PageRankConfig{
						Nodes: int64(opt.Nodes), Iters: opt.Iters, Damping: 0.85,
						Combiner: variant == "Naiad Edge",
					})
				}
			case "Naiad GAS":
				var s *lib.Scope
				s, err = lib.NewScope(cfg)
				if err == nil {
					_, err = gas.PageRank(s, edges, int64(opt.Nodes), opt.Iters, 0.85)
				}
			case "Naiad Pregel":
				err = pregelPageRank(cfg, edges, int64(opt.Nodes), opt.Iters)
			}
			if err != nil {
				return nil, fmt.Errorf("%s/%dw: %w", variant, w, err)
			}
			total := time.Since(start)
			rep.AddRow(variant, fmt.Sprint(w),
				(total / time.Duration(opt.Iters)).Round(time.Microsecond).String(),
				total.Round(time.Millisecond).String())
		}
	}
	rep.Notes = append(rep.Notes,
		"paper: specialized low-level vertices (Edge) beat Vertex and the GAS/PowerGraph layering, which beat the Pregel abstraction's overhead")
	return rep, nil
}

func pregelPageRank(cfg runtime.Config, edges []workload.Edge, nodes, iters int64) error {
	s, err := lib.NewScope(cfg)
	if err != nil {
		return err
	}
	in, stream := lib.NewInput[workload.Edge](s, "edges", graphalgo.EdgeCodec())
	d := 0.85
	finals := pregel.Run(s, stream, pregel.Config[float64, float64]{
		Init: func(int64) float64 { return 1 / float64(nodes) },
		Compute: func(ctx *pregel.Context[float64], rank *float64, msgs []float64) {
			if ctx.Superstep() > 0 {
				sum := 0.0
				for _, m := range msgs {
					sum += m
				}
				*rank = (1-d)/float64(nodes) + d*sum
			}
			if deg := len(ctx.OutEdges()); deg > 0 {
				ctx.SendToAll(*rank / float64(deg))
			}
		},
		MaxSupersteps: iters + 1,
	})
	lib.SubscribeParallel(finals, func(int, int64, []lib.Pair[int64, float64]) {})
	if err := s.C.Start(); err != nil {
		return err
	}
	in.Send(edges...)
	in.Close()
	return s.C.Join()
}

// Fig7bOptions sizes the logistic-regression AllReduce experiment (§6.2).
type Fig7bOptions struct {
	Workers    []int // power-of-two worker counts
	Records    int   // total training records (split across workers)
	Dim        int   // model dimension
	Iterations int
}

// DefaultFig7b returns a laptop-scale configuration.
func DefaultFig7b() Fig7bOptions {
	return Fig7bOptions{Workers: []int{1, 2, 4, 8}, Records: 200_000, Dim: 4096, Iterations: 3}
}

// lrIteration mimics one logistic-regression iteration's compute phases
// (§6.2): a constant-cost local state update, then training over the
// worker's shard of the records. It returns a synthetic gradient.
func lrGradient(worker, workers, records, dim int, iter int) []float64 {
	grad := make([]float64, dim)
	// Phase 1: constant-cost local update over the model.
	for i := range grad {
		grad[i] = float64((worker+1)*(iter+1)) / float64(dim)
	}
	// Phase 2: training over records/workers examples.
	shard := records / workers
	acc := 0.0
	for r := 0; r < shard; r++ {
		x := float64(r%97) * 0.013
		acc += x / (1 + x*x) // a few flops per example
		grad[r%dim] += acc * 1e-9
	}
	return grad
}

// Fig7b compares time per logistic-regression iteration using the
// data-parallel AllReduce (Naiad's) against the binary-tree AllReduce
// (Vowpal Wabbit's), reporting speedup over one worker (Figure 7b).
func Fig7b(opt Fig7bOptions) (*Report, error) {
	rep := &Report{
		ID:      "fig7b",
		Title:   "logistic regression iteration: data-parallel vs tree AllReduce (§6.2)",
		Headers: []string{"variant", "workers", "per-iter", "speedup-vs-1w", "barriers"},
	}
	base := map[string]time.Duration{}
	for _, variant := range []string{"Naiad (data-parallel)", "VW-style (tree)"} {
		for _, w := range opt.Workers {
			cfg := runtime.Config{Processes: 1, WorkersPerProcess: w, Accumulation: runtime.AccLocalGlobal}
			if w > 1 {
				cfg = runtime.Config{Processes: 2, WorkersPerProcess: w / 2, Accumulation: runtime.AccLocalGlobal}
			}
			perIter, err := runLR(cfg, variant == "Naiad (data-parallel)", opt)
			if err != nil {
				return nil, err
			}
			if w == opt.Workers[0] {
				base[variant] = perIter
			}
			// The coordination critical path: the data-parallel form has a
			// constant two notification barriers per AllReduce, the tree
			// 2·log₂(w) — the structural reason it loses on flat networks.
			barriers := 2
			if variant == "VW-style (tree)" {
				barriers = 0
				for n := w; n > 1; n /= 2 {
					barriers += 2
				}
			}
			rep.AddRow(variant, fmt.Sprint(w), perIter.Round(time.Microsecond).String(),
				fmt.Sprintf("%.2fx", float64(base[variant])/float64(perIter)),
				fmt.Sprint(barriers))
		}
	}
	rep.Notes = append(rep.Notes,
		"paper: Naiad's data-parallel AllReduce gives a ~35% asymptotic improvement over VW's tree; constant phases cap scaling",
		"on a single-core host wall-clock favours whoever does least total work; the barrier column shows the critical-path advantage that dominates on a real network")
	return rep, nil
}

func runLR(cfg runtime.Config, dataParallel bool, opt Fig7bOptions) (time.Duration, error) {
	s, err := lib.NewScope(cfg)
	if err != nil {
		return 0, err
	}
	workers := cfg.Workers()
	in, src := lib.NewInput[allreduce.Msg](s, "grads", allreduce.MsgCodec())
	var out *lib.Stream[allreduce.Msg]
	if dataParallel {
		out = allreduce.BuildDataParallel(src, workers, opt.Dim)
	} else {
		out = allreduce.BuildTree(src, workers)
	}
	col := lib.Collect(out)
	if err := s.C.Start(); err != nil {
		return 0, err
	}
	start := time.Now()
	for it := 0; it < opt.Iterations; it++ {
		for w := 0; w < workers; w++ {
			grad := lrGradient(w, workers, opt.Records, opt.Dim, it)
			in.SendToWorker(w, []allreduce.Msg{{Target: int64(w), Vals: grad}})
		}
		in.Advance()
		col.WaitFor(int64(it))
	}
	elapsed := time.Since(start)
	in.Close()
	if err := s.C.Join(); err != nil {
		return 0, err
	}
	return elapsed / time.Duration(opt.Iterations), nil
}

// Fig7cOptions sizes the k-exposure fault-tolerance experiment (§6.3).
type Fig7cOptions struct {
	Processes         int
	WorkersPerProcess int
	Epochs            int
	TweetsPerEpoch    int
	K                 int64
	CheckpointEvery   int
}

// DefaultFig7c returns a laptop-scale configuration.
func DefaultFig7c() Fig7cOptions {
	return Fig7cOptions{Processes: 2, WorkersPerProcess: 2, Epochs: 60,
		TweetsPerEpoch: 2000, K: 16, CheckpointEvery: 5}
}

// Fig7c measures k-exposure throughput and response-latency quantiles
// under the three fault-tolerance modes (Figure 7c).
func Fig7c(opt Fig7cOptions) (*Report, error) {
	rep := &Report{
		ID:      "fig7c",
		Title:   "k-exposure under fault-tolerance modes (§6.3)",
		Headers: []string{"mode", "tweets/s", "median-ms", "p95-ms", "max-ms", "topics"},
	}
	cfg := runtime.Config{Processes: opt.Processes, WorkersPerProcess: opt.WorkersPerProcess,
		Accumulation: runtime.AccLocalGlobal}
	for _, mode := range []kexposure.FTMode{kexposure.FTNone, kexposure.FTCheckpoint, kexposure.FTLogging} {
		res, err := kexposure.Run(cfg, opt.Epochs, opt.TweetsPerEpoch, opt.K, mode, opt.CheckpointEvery)
		if err != nil {
			return nil, err
		}
		q := quantiles(res.EpochLatencies, 0.5, 0.95, 1.0)
		rep.AddRow(mode.String(),
			fmt.Sprintf("%.0f", res.TweetsPerSecond),
			ms(q[0]), ms(q[1]), ms(q[2]),
			fmt.Sprint(res.Controversial))
	}
	rep.Notes = append(rep.Notes,
		"paper: 483K/322K/274K t/s for None/Checkpoint/Logging; logging taxes every batch, checkpoints only the tail")
	return rep, nil
}
