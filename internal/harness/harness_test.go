package harness

import (
	"strings"
	"testing"
	"time"
)

// The harness tests run each experiment at miniature scale to verify the
// drivers end to end; EXPERIMENTS.md records full-scale runs.

func TestFig6aSmoke(t *testing.T) {
	rep, err := Fig6a(Fig6aOptions{Processes: []int{1, 2}, WorkersPerProcess: 2,
		RecordsPerWorker: 500, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	if !strings.Contains(rep.String(), "fig6a") {
		t.Fatal("render")
	}
}

func TestFig6bSmoke(t *testing.T) {
	rep, err := Fig6b(Fig6bOptions{Processes: []int{1, 2}, WorkersPerProcess: 2, Iterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestFig6cSmoke(t *testing.T) {
	rep, err := Fig6c(Fig6cOptions{Processes: 2, WorkersPerProcess: 2, Nodes: 100, Edges: 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestFig6dSmoke(t *testing.T) {
	rep, err := Fig6d(Fig6dOptions{Workers: []int{1, 2}, Documents: 100, WordsPerDoc: 20,
		Nodes: 200, Edges: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestFig6eSmoke(t *testing.T) {
	rep, err := Fig6e(Fig6eOptions{Workers: []int{1, 2}, DocsPerWorker: 50, WordsPerDoc: 20,
		EdgesPerWorker: 200, NodesPerWorker: 80})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestTable1Smoke(t *testing.T) {
	rep, err := Table1(Table1Options{Processes: 1, WorkersPerProcess: 2,
		PRNodes: 150, PREdges: 500, PageRankIters: 3,
		WCCChains: 2, WCCLen: 10, SCCCycles: 2, SCCLen: 5,
		ASPChains: 2, ASPLen: 10, ASPSources: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestFig7aSmoke(t *testing.T) {
	rep, err := Fig7a(Fig7aOptions{Workers: []int{2}, Nodes: 150, Edges: 600, Iters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestFig7bSmoke(t *testing.T) {
	rep, err := Fig7b(Fig7bOptions{Workers: []int{1, 2}, Records: 5000, Dim: 128, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestFig7cSmoke(t *testing.T) {
	rep, err := Fig7c(Fig7cOptions{Processes: 1, WorkersPerProcess: 2, Epochs: 4,
		TweetsPerEpoch: 100, K: 4, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestFig8Smoke(t *testing.T) {
	rep, err := Fig8(Fig8Options{Processes: 1, WorkersPerProcess: 2, Epochs: 4,
		TweetsPerEpoch: 100, QueriesPerEpoch: 2, EpochInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestRecoverySmoke(t *testing.T) {
	rep, err := Recovery(RecoveryOptions{Processes: 2, WorkersPerProcess: 2,
		Epochs: 6, RecordsPerEpoch: 16, Trials: 1, CrashAtCheckpoint: 2,
		LatencyEpochs: 20, Seed: 20130101})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d:\n%s", len(rep.Rows), rep)
	}
	if !strings.Contains(rep.String(), "selective rollback") {
		t.Fatalf("render:\n%s", rep)
	}
}

func TestTraceSmoke(t *testing.T) {
	rep, err := Trace(TraceOptions{Processes: 2, WorkersPerProcess: 2,
		Epochs: 4, RecordsPerEpoch: 200, Repeats: 1, RingBits: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	if !strings.Contains(rep.String(), "self-introspection") {
		t.Fatalf("render:\n%s", rep)
	}
}

func TestQuantiles(t *testing.T) {
	ds := []time.Duration{4, 1, 3, 2}
	q := quantiles(ds, 0, 0.5, 1.0)
	if q[0] != 1 || q[1] != 2 || q[2] != 4 {
		t.Fatalf("q = %v", q)
	}
	if z := quantiles(nil, 0.5); z[0] != 0 {
		t.Fatal("empty sample")
	}
}

func TestSplitWords(t *testing.T) {
	got := splitWords("  a bb  ccc ")
	if len(got) != 3 || got[0] != "a" || got[1] != "bb" || got[2] != "ccc" {
		t.Fatalf("got %v", got)
	}
	if len(splitWords("")) != 0 {
		t.Fatal("empty doc")
	}
}

// TestIngressSmoke runs the serving experiment at miniature scale with
// in-process servers (no re-exec from a test binary); naiad-bench runs the
// same driver with real child processes.
func TestIngressSmoke(t *testing.T) {
	rep, err := Ingress(IngressOptions{
		Servers:          2,
		Streamers:        2,
		SlowReaders:      1,
		Disconnectors:    1,
		Batch:            8,
		Duration:         300 * time.Millisecond,
		OverloadDuration: 300 * time.Millisecond,
		Seed:             20130101,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	out := rep.String()
	if !strings.Contains(out, "steady") || !strings.Contains(out, "overload") {
		t.Fatalf("render:\n%s", out)
	}
	if len(rep.Notes) < 2 || !strings.Contains(rep.Notes[1], "all accounted") {
		t.Fatalf("notes = %v", rep.Notes)
	}
}
