package harness

import (
	"fmt"
	"time"

	"naiad/internal/batch"
	"naiad/internal/graphalgo"
	"naiad/internal/lib"
	"naiad/internal/runtime"
	"naiad/internal/workload"
)

// buildWCCStream adapts graphalgo.BuildWCC for the harness helpers.
func buildWCCStream(s *lib.Scope, edges *lib.Stream[workload.Edge]) *lib.Stream[lib.Pair[int64, int64]] {
	return graphalgo.BuildWCC(s, edges, 1_000_000)
}

// Table1Options sizes the Table 1 comparison: the four graph algorithms on
// Naiad against the materializing batch engine. Each algorithm gets the
// graph shape that stresses it the way the paper's datasets did: PageRank
// a power-law web-shaped graph, WCC and ASP high-diameter graphs (many
// sparse iterations), SCC a graph of cycles and cross edges (several
// trimming rounds).
type Table1Options struct {
	Processes         int
	WorkersPerProcess int
	PRNodes, PREdges  int
	PageRankIters     int
	WCCChains, WCCLen int
	SCCCycles, SCCLen int
	ASPChains, ASPLen int
	ASPSources        int
}

// DefaultTable1 returns a laptop-scale configuration.
func DefaultTable1() Table1Options {
	return Table1Options{Processes: 2, WorkersPerProcess: 2,
		PRNodes: 20000, PREdges: 80000, PageRankIters: 10,
		WCCChains: 20, WCCLen: 150,
		SCCCycles: 8, SCCLen: 30,
		ASPChains: 10, ASPLen: 150, ASPSources: 4}
}

// Table1 reproduces the shape of Table 1: running times of PageRank, SCC,
// WCC, and ASP on Naiad versus a batch engine that materializes all state
// between iterations.
func Table1(opt Table1Options) (*Report, error) {
	rep := &Report{
		ID:      "table1",
		Title:   "graph algorithms: Naiad vs materializing batch engine (§6.1)",
		Headers: []string{"algorithm", "naiad", "batch", "speedup", "batch-iters", "batch-MB-materialized"},
	}
	cfg := runtime.Config{Processes: opt.Processes, WorkersPerProcess: opt.WorkersPerProcess,
		Accumulation: runtime.AccLocalGlobal}

	timeIt := func(f func() error) (time.Duration, error) {
		start := time.Now()
		err := f()
		return time.Since(start), err
	}

	// PageRank: power-law graph, fixed iterations.
	prEdges := workload.PowerLawGraph(31, opt.PRNodes, opt.PREdges, 1.3)
	prCfg := graphalgo.PageRankConfig{Nodes: int64(opt.PRNodes), Iters: int64(opt.PageRankIters), Damping: 0.85}
	naiadPR, err := timeIt(func() error {
		s, err := lib.NewScope(cfg)
		if err != nil {
			return err
		}
		_, err = graphalgo.PageRank(s, prEdges, prCfg)
		return err
	})
	if err != nil {
		return nil, err
	}
	be := batch.NewEngine(cfg.Workers())
	batchPR, _ := timeIt(func() error {
		be.PageRank(prEdges, int64(opt.PRNodes), opt.PageRankIters, 0.85)
		return nil
	})
	addAlgo(rep, "PageRank", naiadPR, batchPR, be)
	be.Close()

	// SCC: cycles with cross edges, several trimming rounds.
	sccEdges := workload.CycleGraph(opt.SCCCycles, opt.SCCLen)
	for c := 0; c+1 < opt.SCCCycles; c++ {
		sccEdges = append(sccEdges, workload.Edge{
			Src: int64(c * opt.SCCLen), Dst: int64((c + 1) * opt.SCCLen),
		})
	}
	naiadSCC, err := timeIt(func() error {
		_, err := graphalgo.SCC(cfg, sccEdges, 1_000_000)
		return err
	})
	if err != nil {
		return nil, err
	}
	be = batch.NewEngine(cfg.Workers())
	batchSCC, _ := timeIt(func() error {
		be.SCC(sccEdges)
		return nil
	})
	addAlgo(rep, "SCC", naiadSCC, batchSCC, be)
	be.Close()

	// WCC: long chains — many sparse iterations, the regime where the
	// incremental algorithm shines (§6.1).
	wccEdges := workload.ChainGraph(opt.WCCChains, opt.WCCLen)
	naiadWCC, err := timeIt(func() error {
		s, err := lib.NewScope(cfg)
		if err != nil {
			return err
		}
		_, err = graphalgo.WCC(s, wccEdges, 1_000_000)
		return err
	})
	if err != nil {
		return nil, err
	}
	be = batch.NewEngine(cfg.Workers())
	batchWCC, _ := timeIt(func() error {
		be.WCC(wccEdges)
		return nil
	})
	addAlgo(rep, "WCC", naiadWCC, batchWCC, be)
	be.Close()

	// ASP: long chains again; distances take diameter iterations.
	aspEdges := workload.ChainGraph(opt.ASPChains, opt.ASPLen)
	naiadASP, err := timeIt(func() error {
		s, err := lib.NewScope(cfg)
		if err != nil {
			return err
		}
		_, err = graphalgo.ASP(s, aspEdges, opt.ASPSources, 77, 1_000_000)
		return err
	})
	if err != nil {
		return nil, err
	}
	sources := make([]int64, 0, opt.ASPSources)
	for i := 0; len(sources) < opt.ASPSources; i++ {
		sources = append(sources, int64(i*opt.ASPLen))
	}
	be = batch.NewEngine(cfg.Workers())
	batchASP, _ := timeIt(func() error {
		be.ASP(aspEdges, sources)
		return nil
	})
	addAlgo(rep, "ASP", naiadASP, batchASP, be)
	be.Close()

	rep.Notes = append(rep.Notes,
		"paper (Table 1, vs DryadLINQ): PageRank 14.8x, SCC 8.6x, WCC 598x, ASP 662x; the win comes from keeping state in memory across iterations",
		"batch engine charges real disk materialization plus a conservative 50ms/iteration job-dispatch cost (DryadLINQ-style); see DESIGN.md substitutions")
	return rep, nil
}

func addAlgo(rep *Report, name string, naiad, batchTime time.Duration, be *batch.Engine) {
	rep.AddRow(name,
		naiad.Round(time.Millisecond).String(),
		batchTime.Round(time.Millisecond).String(),
		fmt.Sprintf("%.1fx", float64(batchTime)/float64(naiad)),
		fmt.Sprint(be.Iterations()),
		fmt.Sprintf("%.1f", float64(be.BytesMaterialized())/1e6),
	)
}
