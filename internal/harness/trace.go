package harness

import (
	"fmt"
	"os"
	"time"

	"naiad/internal/introspect"
	"naiad/internal/lib"
	"naiad/internal/runtime"
	"naiad/internal/trace"
)

// TraceOptions sizes the observability experiment: the same multi-stage
// pipeline run with tracing off and on, reporting the enabled-mode
// overhead, the per-stage latency quantiles the tracer collected, and the
// self-introspection cross-check.
type TraceOptions struct {
	Processes         int
	WorkersPerProcess int
	Epochs            int
	RecordsPerEpoch   int
	Repeats           int    // timed repetitions per mode; the fastest is reported
	RingBits          int    // event-ring capacity (log2) for the traced run
	EventsOut         string // when set, dump the traced run's event log as JSON here
}

// DefaultTrace returns a laptop-scale configuration. The ring is sized so
// the traced run never drops (drops would undercount the cross-check).
func DefaultTrace() TraceOptions {
	return TraceOptions{
		Processes: 2, WorkersPerProcess: 2,
		Epochs: 40, RecordsPerEpoch: 5000,
		Repeats: 3, RingBits: 20,
	}
}

// runTracedPipeline runs the subject computation — input → filter → count
// with a hash exchange between them — and returns the wall time from first
// feed to Join. tr may be nil (the disabled-mode baseline).
func runTracedPipeline(opt TraceOptions, tr *trace.Tracer) (time.Duration, *runtime.MetricsSnapshot, error) {
	cfg := runtime.Config{
		Processes: opt.Processes, WorkersPerProcess: opt.WorkersPerProcess,
		Accumulation: runtime.AccLocalGlobal, Tracer: tr,
	}
	scope, err := lib.NewScope(cfg)
	if err != nil {
		return 0, nil, err
	}
	input, nums := lib.NewInput[int64](scope, "nums", nil)
	evens := lib.Where(nums, func(v int64) bool { return v%2 == 0 })
	counted := lib.Count(evens, nil)
	col := lib.Collect(counted)
	if err := scope.C.Start(); err != nil {
		return 0, nil, err
	}
	batch := make([]int64, opt.RecordsPerEpoch)
	start := time.Now()
	for e := 0; e < opt.Epochs; e++ {
		for i := range batch {
			batch[i] = int64(e*len(batch) + i)
		}
		input.OnNext(batch...)
	}
	input.Close()
	if err := scope.C.Join(); err != nil {
		return 0, nil, err
	}
	elapsed := time.Since(start)
	if got := len(col.Epochs()); got != opt.Epochs {
		return 0, nil, fmt.Errorf("pipeline produced %d epochs, want %d", got, opt.Epochs)
	}
	return elapsed, scope.C.Metrics(), nil
}

// Trace measures the cost of the observability subsystem on a live
// pipeline and exercises its full read-out path: wall time with tracing
// off vs on, the per-stage callback-latency quantiles from the collected
// histograms, the event-log composition, and the self-introspection
// dataflow's cross-check against the runtime's own counters. A cross-check
// mismatch is an error, not a report row — the introspection result
// matching MetricsSnapshot is an acceptance criterion, not a data point.
func Trace(opt TraceOptions) (*Report, error) {
	rep := &Report{
		ID:      "trace",
		Title:   "observability: enabled-mode overhead, stage latencies, self-introspection",
		Headers: []string{"mode", "epochs", "records", "wall", "per-epoch", "overhead"},
	}
	records := opt.Epochs * opt.RecordsPerEpoch
	if opt.Repeats < 1 {
		opt.Repeats = 1
	}

	// Fastest-of-N for both modes: the pipeline is allocation- and
	// scheduler-noisy at this scale, and the minimum is the standard
	// noise-resistant estimator for "how fast can this go".
	best := func(tr func() *trace.Tracer) (time.Duration, *trace.Tracer, *runtime.MetricsSnapshot, error) {
		var bestD time.Duration
		var bestT *trace.Tracer
		var bestM *runtime.MetricsSnapshot
		for i := 0; i < opt.Repeats; i++ {
			t := tr()
			d, m, err := runTracedPipeline(opt, t)
			if err != nil {
				return 0, nil, nil, err
			}
			if bestT == nil || d < bestD {
				bestD, bestT, bestM = d, t, m
			}
		}
		return bestD, bestT, bestM, nil
	}

	off, _, _, err := best(func() *trace.Tracer { return nil })
	if err != nil {
		return nil, fmt.Errorf("trace off: %w", err)
	}
	on, tr, metrics, err := best(func() *trace.Tracer {
		return trace.New(trace.Config{RingBits: opt.RingBits})
	})
	if err != nil {
		return nil, fmt.Errorf("trace on: %w", err)
	}
	perEpoch := func(d time.Duration) string {
		return (d / time.Duration(opt.Epochs)).Round(time.Microsecond).String()
	}
	overhead := (float64(on)/float64(off) - 1) * 100
	rep.AddRow("tracer off", fmt.Sprint(opt.Epochs), fmt.Sprint(records),
		off.Round(time.Microsecond).String(), perEpoch(off), "baseline")
	rep.AddRow("tracer on", fmt.Sprint(opt.Epochs), fmt.Sprint(records),
		on.Round(time.Microsecond).String(), perEpoch(on), fmt.Sprintf("%+.1f%%", overhead))

	// The traced run's read-out: event composition, per-stage latency
	// quantiles, and drops. Only the fastest traced run's tracer is kept,
	// so the histograms and log describe exactly the run in the table.
	log := tr.Harvest()
	byKind := make(map[trace.Kind]int)
	for _, ev := range log {
		byKind[ev.Kind]++
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"traced run: %d events (%d on-recv, %d on-notify, %d schedule, %d progress, %d frontier, %d frames), %d dropped",
		len(log), byKind[trace.EvOnRecv], byKind[trace.EvOnNotify], byKind[trace.EvSchedule],
		byKind[trace.EvProgressPost]+byKind[trace.EvProgressApply], byKind[trace.EvFrontier],
		byKind[trace.EvFrameSend]+byKind[trace.EvFrameRecv], tr.Dropped()))
	for _, sm := range metrics.Stages {
		h := tr.StageLatency(int32(sm.Stage), false)
		if h.Count() == 0 {
			continue
		}
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"stage %-10s OnRecv latency: n=%d p50=%s p99=%s max=%s",
			sm.Name, h.Count(),
			time.Duration(h.Quantile(0.50)).Round(time.Nanosecond),
			time.Duration(h.Quantile(0.99)).Round(time.Nanosecond),
			time.Duration(h.Max()).Round(time.Nanosecond)))
	}

	// Self-introspection cross-check: replay the log through a dataflow and
	// require it to reproduce the runtime's own per-stage counters.
	if tr.Dropped() > 0 {
		return nil, fmt.Errorf("trace: traced run dropped %d events; raise RingBits so the cross-check is exact", tr.Dropped())
	}
	irep, err := introspect.Analyze(log, opt.Processes*opt.WorkersPerProcess, tr.StageName)
	if err != nil {
		return nil, err
	}
	counts := irep.Counts()
	for _, sm := range metrics.Stages {
		got := counts[int32(sm.Stage)]
		if got.Records != sm.Records || got.Notifications != sm.Notifications {
			return nil, fmt.Errorf(
				"trace: introspection disagrees with metrics for stage %s: recv %d/%d notify %d/%d",
				sm.Name, got.Records, sm.Records, got.Notifications, sm.Notifications)
		}
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"self-introspection: replayed %d events through a %d-worker analysis dataflow; per-stage counts match MetricsSnapshot for all %d stages, %d epoch summaries",
		irep.Events, opt.Processes*opt.WorkersPerProcess, len(metrics.Stages), len(irep.Epochs)))

	if opt.EventsOut != "" {
		f, err := os.Create(opt.EventsOut)
		if err != nil {
			return nil, err
		}
		if err := trace.WriteJSON(f, log, tr.StageName); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		rep.Notes = append(rep.Notes, fmt.Sprintf("event log dumped to %s (%d events)", opt.EventsOut, len(log)))
	}
	return rep, nil
}
