package harness

import (
	"fmt"
	"sync"
	"time"

	"naiad/internal/runtime"
	"naiad/internal/socialgraph"
	"naiad/internal/workload"
)

// Fig8Options sizes the streaming iterative graph analytics experiment
// (§6.4): tweets at a fixed rate, queries at a fixed rate, epochs on a
// real-time cadence.
type Fig8Options struct {
	Processes         int
	WorkersPerProcess int
	Epochs            int
	TweetsPerEpoch    int
	QueriesPerEpoch   int
	EpochInterval     time.Duration // real-time pacing between epochs
}

// DefaultFig8 returns a laptop-scale configuration (epochs stand in for
// the paper's one-second batches); the rates are chosen so the system
// keeps up with the stream, as in the paper's real-time trace replay.
func DefaultFig8() Fig8Options {
	return Fig8Options{Processes: 2, WorkersPerProcess: 2, Epochs: 40,
		TweetsPerEpoch: 600, QueriesPerEpoch: 3, EpochInterval: 50 * time.Millisecond}
}

// Fig8 runs the Figure 1 application under both serving policies and
// reports query latency quantiles (Figure 8's two time series).
func Fig8(opt Fig8Options) (*Report, error) {
	rep := &Report{
		ID:      "fig8",
		Title:   "interactive queries on streaming iterative analytics (§6.4)",
		Headers: []string{"policy", "queries", "median-ms", "p95-ms", "max-ms", "answered"},
	}
	for _, policy := range []socialgraph.Policy{socialgraph.Fresh, socialgraph.Stale} {
		lat, answered, err := runFig8(policy, opt)
		if err != nil {
			return nil, err
		}
		q := quantiles(lat, 0.5, 0.95, 1.0)
		rep.AddRow(policy.String(), fmt.Sprint(len(lat)), ms(q[0]), ms(q[1]), ms(q[2]),
			fmt.Sprint(answered))
	}
	rep.Notes = append(rep.Notes,
		"paper: Fresh shows the 'shark fin' (queries queued behind updates, up to ~1s); 1s-delay answers mostly <10ms")
	return rep, nil
}

func runFig8(policy socialgraph.Policy, opt Fig8Options) ([]time.Duration, int, error) {
	var mu sync.Mutex
	sent := make(map[int64]time.Time)
	var latencies []time.Duration
	answered := 0
	onAnswer := func(a socialgraph.Answer) {
		mu.Lock()
		if t0, ok := sent[a.ID]; ok {
			latencies = append(latencies, time.Since(t0))
			answered++
		}
		mu.Unlock()
	}
	cfg := runtime.Config{Processes: opt.Processes, WorkersPerProcess: opt.WorkersPerProcess,
		Accumulation: runtime.AccLocalGlobal}
	app, err := socialgraph.Build(cfg, policy, onAnswer)
	if err != nil {
		return nil, 0, err
	}
	if err := app.Scope.C.Start(); err != nil {
		return nil, 0, err
	}
	gen := workload.NewTweetGen(5, 50_000, 500)
	nextID := int64(0)
	for e := 0; e < opt.Epochs; e++ {
		epochStart := time.Now()
		// Queries enter ahead of the epoch's tweet burst, as independent
		// clients would; under the Stale policy they are answered from
		// the previous epoch without waiting for this epoch's work.
		for q := 0; q < opt.QueriesPerEpoch; q++ {
			id := nextID
			nextID++
			user := int64(gen.Batch(1)[0].User)
			mu.Lock()
			sent[id] = time.Now()
			mu.Unlock()
			app.Queries.Send(socialgraph.Query{ID: id, User: user})
		}
		app.Tweets.Send(gen.Batch(opt.TweetsPerEpoch)...)
		app.Advance()
		// Pace epochs on real time, like the paper's trace-driven input.
		if remaining := opt.EpochInterval - time.Since(epochStart); remaining > 0 {
			time.Sleep(remaining)
		}
	}
	app.Close()
	if err := app.Scope.C.Join(); err != nil {
		return nil, 0, err
	}
	mu.Lock()
	defer mu.Unlock()
	return latencies, answered, nil
}
