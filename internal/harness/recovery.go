package harness

import (
	"fmt"
	"sync"
	"time"

	"naiad/internal/codec"
	"naiad/internal/graph"
	"naiad/internal/runtime"
	"naiad/internal/supervise"
	ts "naiad/internal/timestamp"
	"naiad/internal/transport"
)

// RecoveryOptions sizes the MTTR experiment: a supervised streaming sum is
// crashed mid-run and the supervisor must detect the failure, restore the
// latest checkpoint, replay the logged epochs, and finish with the exact
// fault-free result. Each trial reports how long the repair took.
type RecoveryOptions struct {
	Processes         int
	WorkersPerProcess int
	Epochs            int   // total epochs fed per trial
	RecordsPerEpoch   int   // records per epoch
	Trials            int   // independent crash trials
	CrashAtCheckpoint int64 // crash once this many checkpoints are stored
	Seed              int64
}

// DefaultRecovery returns a laptop-scale configuration.
func DefaultRecovery() RecoveryOptions {
	return RecoveryOptions{Processes: 2, WorkersPerProcess: 2, Epochs: 20,
		RecordsPerEpoch: 64, Trials: 3, CrashAtCheckpoint: 5, Seed: 20130101}
}

// recSum is the experiment's stateful vertex: a running sum over every
// record ever received, emitted per epoch, checkpointed as one int64.
type recSum struct {
	ctx   *runtime.Context
	total int64
	dirty map[int64]bool
}

func (v *recSum) OnRecv(_ int, msg runtime.Message, t ts.Timestamp) {
	if v.dirty == nil {
		v.dirty = make(map[int64]bool)
	}
	if !v.dirty[t.Epoch] {
		v.dirty[t.Epoch] = true
		v.ctx.NotifyAt(t)
	}
	v.total += msg.(int64)
}

func (v *recSum) OnNotify(t ts.Timestamp) {
	delete(v.dirty, t.Epoch)
	v.ctx.SendBy(0, v.total, t)
}

func (v *recSum) Checkpoint(enc *codec.Encoder) { enc.PutInt64(v.total) }
func (v *recSum) Restore(dec *codec.Decoder)    { v.total = dec.Int64() }

// recSink collects the per-epoch emitted totals; one instance is shared
// across incarnations, so replayed epochs land as duplicate set members.
type recSink struct {
	mu      sync.Mutex
	byEpoch map[int64]map[int64]bool
}

func (s *recSink) add(e, v int64) {
	s.mu.Lock()
	if s.byEpoch[e] == nil {
		s.byEpoch[e] = make(map[int64]bool)
	}
	s.byEpoch[e][v] = true
	s.mu.Unlock()
}

func (s *recSink) only(e int64) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.byEpoch[e]) != 1 {
		return 0, false
	}
	for v := range s.byEpoch[e] {
		return v, true
	}
	return 0, false
}

type recSinkVertex struct {
	ctx  *runtime.Context
	s    *recSink
	seen map[int64]bool
}

func (v *recSinkVertex) OnRecv(_ int, msg runtime.Message, t ts.Timestamp) {
	if v.seen == nil {
		v.seen = make(map[int64]bool)
	}
	if !v.seen[t.Epoch] {
		v.seen[t.Epoch] = true
		v.ctx.NotifyAt(t)
	}
	v.s.add(t.Epoch, msg.(int64))
}

func (v *recSinkVertex) OnNotify(ts.Timestamp) {}

// Recovery runs the crash-recovery MTTR experiment: Trials supervised runs,
// each crashed after CrashAtCheckpoint checkpoints, verified against the
// analytically known fault-free sum.
func Recovery(o RecoveryOptions) (*Report, error) {
	rep := &Report{
		ID:    "recovery",
		Title: "supervised crash recovery (checkpoint + replay) MTTR",
		Headers: []string{"trial", "crash@cp", "detect+repair", "restore+replay",
			"checkpoints", "outcome"},
	}
	for trial := 0; trial < o.Trials; trial++ {
		seed := o.Seed + int64(trial)*1000
		sink := &recSink{byEpoch: make(map[int64]map[int64]bool)}
		var chaos *transport.Chaos
		incarnation := 0
		factory := func() (*supervise.Build, error) {
			cfg := runtime.Config{
				Processes:         o.Processes,
				WorkersPerProcess: o.WorkersPerProcess,
				Accumulation:      runtime.AccLocalGlobal,
				Watchdog:          60 * time.Second,
			}
			ct := transport.NewChaos(transport.NewMem(o.Processes),
				transport.ChaosConfig{Seed: seed + int64(incarnation)})
			if incarnation == 0 {
				chaos = ct
			}
			incarnation++
			cfg.Transport = ct
			c, err := runtime.NewComputation(cfg)
			if err != nil {
				return nil, err
			}
			in := c.NewInput("in")
			sum := c.AddStage("sum", graph.RoleNormal, 0, func(ctx *runtime.Context) runtime.Vertex {
				return &recSum{ctx: ctx}
			}, runtime.Pinned(0))
			c.Connect(in.Stage(), 0, sum, func(runtime.Message) uint64 { return 0 }, codec.Int64())
			snk := c.AddStage("sink", graph.RoleNormal, 0, func(ctx *runtime.Context) runtime.Vertex {
				return &recSinkVertex{ctx: ctx, s: sink}
			}, runtime.Pinned(0))
			c.Connect(sum, 0, snk, func(runtime.Message) uint64 { return 0 }, codec.Int64())
			return &supervise.Build{
				Comp:   c,
				Inputs: map[string]*runtime.Input{"in": in},
				Probe:  c.NewProbe(snk),
			}, nil
		}
		sup, err := supervise.New(supervise.Config{Factory: factory, Seed: seed,
			Store: supervise.NewMemStore(3)})
		if err != nil {
			return nil, err
		}

		// Deterministic workload: epoch e carries records e*R .. e*R+R-1, so
		// the fault-free final total is known in closed form.
		var want int64
		feed := func(e int) error {
			records := make([]runtime.Message, o.RecordsPerEpoch)
			for i := range records {
				v := int64(e*o.RecordsPerEpoch + i)
				records[i] = v
				want += v
			}
			return sup.OnNext("in", records...)
		}

		half := o.Epochs / 2
		for e := 0; e < half; e++ {
			if err := feed(e); err != nil {
				return nil, fmt.Errorf("recovery trial %d: feed: %w", trial, err)
			}
		}
		if err := waitCheckpoints(sup, o.CrashAtCheckpoint); err != nil {
			return nil, fmt.Errorf("recovery trial %d: %w", trial, err)
		}
		crashed := time.Now()
		chaos.Crash(o.Processes - 1)
		for e := half; e < o.Epochs; e++ {
			if err := feed(e); err != nil {
				return nil, fmt.Errorf("recovery trial %d: feed: %w", trial, err)
			}
		}
		if err := sup.CloseInput("in"); err != nil {
			return nil, fmt.Errorf("recovery trial %d: close: %w", trial, err)
		}
		if err := sup.Wait(); err != nil {
			return nil, fmt.Errorf("recovery trial %d: did not recover: %w", trial, err)
		}
		repaired := time.Since(crashed)

		rec := sup.Recovery()
		if rec.Restarts != 1 {
			return nil, fmt.Errorf("recovery trial %d: %d restarts, want 1", trial, rec.Restarts)
		}
		got, ok := sink.only(int64(o.Epochs - 1))
		var outcome string
		if ok && got == want {
			outcome = fmt.Sprintf("final epoch exact (%d)", got)
		} else {
			return nil, fmt.Errorf("recovery trial %d: final epoch = %d (unique=%v), want %d",
				trial, got, ok, want)
		}
		rep.AddRow(fmt.Sprint(trial), fmt.Sprint(o.CrashAtCheckpoint),
			repaired.Round(time.Millisecond).String(),
			rec.LastRecovery.Round(time.Millisecond).String(),
			fmt.Sprint(rec.Checkpoints), outcome)
	}
	rep.Notes = append(rep.Notes,
		"detect+repair: wall time from the injected crash until the supervised run completed its remaining epochs",
		"restore+replay: supervisor-measured recovery (rebuild, restore latest snapshot, replay logged epochs)",
		"every trial's final-epoch sum must equal the closed-form fault-free total")
	return rep, nil
}

func waitCheckpoints(sup *supervise.Supervisor, n int64) error {
	deadline := time.Now().Add(60 * time.Second)
	for sup.Recovery().Checkpoints < n {
		if time.Now().After(deadline) {
			return fmt.Errorf("never reached %d checkpoints: %+v", n, sup.Recovery())
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}
