package harness

import (
	"fmt"
	"sync"
	"time"

	"naiad/internal/codec"
	"naiad/internal/graph"
	"naiad/internal/runtime"
	"naiad/internal/supervise"
	ts "naiad/internal/timestamp"
	"naiad/internal/transport"
)

// RecoveryOptions sizes the recovery experiment. It compares the two
// repair paths and the cost of checkpointing itself:
//
//   - MTTR, full restart (before): a process crash detected by heartbeat,
//     repaired by tearing the whole computation down, restoring the latest
//     snapshot, and replaying the logged epochs.
//   - MTTR, selective rollback (after): a single-worker crash repaired by
//     restoring only that worker from the latest complete barrier cut and
//     replaying its delivery log — healthy workers never stop.
//   - Steady-state epoch latency with checkpointing off (before) and an
//     asynchronous barrier cut per epoch (after): the "zero-pause" claim,
//     p99 inside the checkpoint window must stay within 2x of baseline.
//
// Every trial is verified against the analytically known fault-free sum.
type RecoveryOptions struct {
	Processes         int
	WorkersPerProcess int
	Epochs            int   // total epochs fed per crash trial
	RecordsPerEpoch   int   // records per epoch
	Trials            int   // independent crash trials per mode
	CrashAtCheckpoint int64 // crash once this many checkpoints are stored
	LatencyEpochs     int   // epochs per steady-state latency probe run
	Seed              int64
}

// DefaultRecovery returns a laptop-scale configuration.
func DefaultRecovery() RecoveryOptions {
	return RecoveryOptions{Processes: 2, WorkersPerProcess: 2, Epochs: 20,
		RecordsPerEpoch: 64, Trials: 3, CrashAtCheckpoint: 5,
		LatencyEpochs: 200, Seed: 20130101}
}

// recSum is the experiment's stateful vertex: a running sum over every
// record ever received, emitted per epoch, checkpointed as one int64.
type recSum struct {
	ctx   *runtime.Context
	total int64
	dirty map[int64]bool
}

func (v *recSum) OnRecv(_ int, msg runtime.Message, t ts.Timestamp) {
	if v.dirty == nil {
		v.dirty = make(map[int64]bool)
	}
	if !v.dirty[t.Epoch] {
		v.dirty[t.Epoch] = true
		v.ctx.NotifyAt(t)
	}
	v.total += msg.(int64)
}

func (v *recSum) OnNotify(t ts.Timestamp) {
	delete(v.dirty, t.Epoch)
	v.ctx.SendBy(0, v.total, t)
}

func (v *recSum) Checkpoint(enc *codec.Encoder) { enc.PutInt64(v.total) }
func (v *recSum) Restore(dec *codec.Decoder)    { v.total = dec.Int64() }

// recSink collects the per-epoch emitted totals; one instance is shared
// across incarnations, so replayed epochs land as duplicate set members.
type recSink struct {
	mu      sync.Mutex
	byEpoch map[int64]map[int64]bool
	notify  chan int64 // when non-nil, receives each epoch on arrival
}

func (s *recSink) add(e, v int64) {
	s.mu.Lock()
	if s.byEpoch[e] == nil {
		s.byEpoch[e] = make(map[int64]bool)
	}
	s.byEpoch[e][v] = true
	ch := s.notify
	s.mu.Unlock()
	if ch != nil {
		ch <- e
	}
}

func (s *recSink) only(e int64) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.byEpoch[e]) != 1 {
		return 0, false
	}
	for v := range s.byEpoch[e] {
		return v, true
	}
	return 0, false
}

type recSinkVertex struct {
	ctx  *runtime.Context
	s    *recSink
	seen map[int64]bool
}

func (v *recSinkVertex) OnRecv(_ int, msg runtime.Message, t ts.Timestamp) {
	if v.seen == nil {
		v.seen = make(map[int64]bool)
	}
	if !v.seen[t.Epoch] {
		v.seen[t.Epoch] = true
		v.ctx.NotifyAt(t)
	}
	v.s.add(t.Epoch, msg.(int64))
}

func (v *recSinkVertex) OnNotify(ts.Timestamp) {}

// recRun is one supervised in→sum→sink pipeline plus handles to the
// pieces the trial drivers poke: the sink, the latest incarnation's
// computation (for CrashWorker), and the first chaos transport (for
// process crashes).
type recRun struct {
	sup  *supervise.Supervisor
	sink *recSink
	want int64 // closed-form fault-free total of everything fed so far

	mu    sync.Mutex
	comp  *runtime.Computation
	chaos *transport.Chaos

	o RecoveryOptions
}

// newRecRun builds the supervised pipeline. withChaos wraps the transport
// in a fault-free chaos layer whose Crash is the process-kill switch; the
// latency probes skip it to keep the datapath minimal.
func newRecRun(o RecoveryOptions, seed int64, withChaos bool, scfg supervise.Config) (*recRun, error) {
	r := &recRun{sink: &recSink{byEpoch: make(map[int64]map[int64]bool)}, o: o}
	incarnation := 0
	factory := func() (*supervise.Build, error) {
		cfg := runtime.Config{
			Processes:         o.Processes,
			WorkersPerProcess: o.WorkersPerProcess,
			Accumulation:      runtime.AccLocalGlobal,
			Watchdog:          60 * time.Second,
			Heartbeat:         5 * time.Millisecond,
			HeartbeatTimeout:  250 * time.Millisecond,
		}
		cfg.Transport = transport.NewMem(o.Processes)
		if withChaos {
			ct := transport.NewChaos(cfg.Transport,
				transport.ChaosConfig{Seed: seed + int64(incarnation)})
			cfg.Transport = ct
			r.mu.Lock()
			if incarnation == 0 {
				r.chaos = ct
			}
			r.mu.Unlock()
		}
		incarnation++
		c, err := runtime.NewComputation(cfg)
		if err != nil {
			return nil, err
		}
		in := c.NewInput("in")
		sum := c.AddStage("sum", graph.RoleNormal, 0, func(ctx *runtime.Context) runtime.Vertex {
			return &recSum{ctx: ctx}
		}, runtime.Pinned(0))
		c.Connect(in.Stage(), 0, sum, func(runtime.Message) uint64 { return 0 }, codec.Int64())
		snk := c.AddStage("sink", graph.RoleNormal, 0, func(ctx *runtime.Context) runtime.Vertex {
			return &recSinkVertex{ctx: ctx, s: r.sink}
		}, runtime.Pinned(0))
		c.Connect(sum, 0, snk, func(runtime.Message) uint64 { return 0 }, codec.Int64())
		r.mu.Lock()
		r.comp = c
		r.mu.Unlock()
		return &supervise.Build{
			Comp:   c,
			Inputs: map[string]*runtime.Input{"in": in},
			Probe:  c.NewProbe(snk),
		}, nil
	}
	scfg.Factory = factory
	scfg.Seed = seed
	if scfg.Store == nil {
		scfg.Store = supervise.NewMemStore(3)
	}
	sup, err := supervise.New(scfg)
	if err != nil {
		return nil, err
	}
	r.sup = sup
	return r, nil
}

// feed sends epoch e's deterministic batch: records e*R .. e*R+R-1, so the
// fault-free final total is known in closed form.
func (r *recRun) feed(e int) error {
	records := make([]runtime.Message, r.o.RecordsPerEpoch)
	for i := range records {
		v := int64(e*r.o.RecordsPerEpoch + i)
		records[i] = v
		r.want += v
	}
	return r.sup.OnNext("in", records...)
}

// finish closes the input, waits the run out, and verifies the final
// epoch's sum against the closed form.
func (r *recRun) finish() error {
	if err := r.sup.CloseInput("in"); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	if err := r.sup.Wait(); err != nil {
		return fmt.Errorf("did not recover: %w", err)
	}
	got, ok := r.sink.only(int64(r.o.Epochs - 1))
	if !ok || got != r.want {
		return fmt.Errorf("final epoch = %d (unique=%v), want %d", got, ok, r.want)
	}
	return nil
}

// crashTrial runs one crash trial and reports (wall time from crash to
// completed run, supervisor-measured restore+replay). selective crashes a
// single worker and demands repair by selective rollback; otherwise a
// whole process is killed and repair must be one full restart.
func crashTrial(o RecoveryOptions, seed int64, selective bool) (repair, restore time.Duration, err error) {
	r, err := newRecRun(o, seed, !selective, supervise.Config{Selective: selective})
	if err != nil {
		return 0, 0, err
	}
	half := o.Epochs / 2
	for e := 0; e < half; e++ {
		if err := r.feed(e); err != nil {
			return 0, 0, fmt.Errorf("feed: %w", err)
		}
		// Pace the pre-crash feeds one cut per boundary: the barrier path
		// pipelines and legally skips boundaries under a fast feeder, so
		// reaching CrashAtCheckpoint stored snapshots needs each early
		// boundary's cut to settle before the next epoch goes in.
		if int64(e) < o.CrashAtCheckpoint {
			if err := waitCheckpoints(r.sup, int64(e)+1); err != nil {
				return 0, 0, err
			}
		}
	}
	if err := waitCheckpoints(r.sup, o.CrashAtCheckpoint); err != nil {
		return 0, 0, err
	}
	crashed := time.Now()
	if selective {
		r.mu.Lock()
		comp := r.comp
		r.mu.Unlock()
		// Worker 0 hosts the pinned stateful sum: the worst single worker
		// to lose.
		if err := comp.CrashWorker(0); err != nil {
			return 0, 0, fmt.Errorf("crash worker: %w", err)
		}
		// Let the revival land before resuming traffic: batches fed while
		// the worker is parked would race its log replay.
		deadline := time.Now().Add(10 * time.Second)
		for r.sup.Recovery().SelectiveRevivals < 1 {
			if time.Now().After(deadline) {
				return 0, 0, fmt.Errorf("no selective revival: %+v", r.sup.Recovery())
			}
			time.Sleep(100 * time.Microsecond)
		}
	} else {
		r.mu.Lock()
		chaos := r.chaos
		r.mu.Unlock()
		chaos.Crash(o.Processes - 1)
	}
	for e := half; e < o.Epochs; e++ {
		if err := r.feed(e); err != nil {
			return 0, 0, fmt.Errorf("feed: %w", err)
		}
	}
	if err := r.finish(); err != nil {
		return 0, 0, err
	}
	repair = time.Since(crashed)

	rec := r.sup.Recovery()
	if selective {
		if rec.SelectiveRevivals < 1 || rec.Restarts != 0 {
			return 0, 0, fmt.Errorf("single-worker crash repaired by %d revivals + %d restarts, want selective rollback only: %+v",
				rec.SelectiveRevivals, rec.Restarts, rec)
		}
	} else if rec.Restarts != 1 {
		return 0, 0, fmt.Errorf("%d restarts, want 1: %+v", rec.Restarts, rec)
	}
	return repair, rec.LastRecovery, nil
}

// latencyRun measures per-epoch completion latency in a fault-free run:
// feed one epoch, wait until its result reaches the sink, repeat. With
// checkpointing on, an asynchronous barrier cut is in flight behind every
// epoch, so the samples are taken inside the checkpoint window.
func latencyRun(o RecoveryOptions, seed int64, checkpointing bool) ([]time.Duration, error) {
	scfg := supervise.Config{CheckpointEvery: 1 << 30} // off: no boundary ever qualifies
	if checkpointing {
		scfg.CheckpointEvery = 1
	}
	r, err := newRecRun(o, seed, false, scfg)
	if err != nil {
		return nil, err
	}
	arrived := make(chan int64, o.LatencyEpochs+1)
	r.sink.notify = arrived
	samples := make([]time.Duration, 0, o.LatencyEpochs)
	for e := 0; e < o.LatencyEpochs; e++ {
		t0 := time.Now()
		records := make([]runtime.Message, o.RecordsPerEpoch)
		for i := range records {
			records[i] = int64(1)
		}
		if err := r.sup.OnNext("in", records...); err != nil {
			return nil, fmt.Errorf("latency feed: %w", err)
		}
		for {
			var got int64
			select {
			case got = <-arrived:
			case <-time.After(30 * time.Second):
				return nil, fmt.Errorf("epoch %d never reached the sink", e)
			}
			if got == int64(e) {
				break
			}
		}
		samples = append(samples, time.Since(t0))
	}
	if err := r.sup.CloseInput("in"); err != nil {
		return nil, fmt.Errorf("latency close: %w", err)
	}
	if err := r.sup.Wait(); err != nil {
		return nil, fmt.Errorf("latency run failed: %w", err)
	}
	if rec := r.sup.Recovery(); checkpointing && rec.Checkpoints < int64(o.LatencyEpochs)/2 {
		return nil, fmt.Errorf("checkpoint-window probe took only %d checkpoints over %d epochs",
			rec.Checkpoints, o.LatencyEpochs)
	}
	// Drop warmup: the first epochs pay one-time allocation and scheduler
	// ramp on both sides of the comparison.
	warm := len(samples) / 10
	if warm > 5 {
		warm = 5
	}
	return samples[warm:], nil
}

func mean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

func ratio(before, after time.Duration) string {
	if after <= 0 {
		return "—"
	}
	return fmt.Sprintf("%.2fx", float64(before)/float64(after))
}

// Recovery runs the recovery experiment: full-restart and selective-
// rollback MTTR trials plus the checkpoint-window latency probe, reported
// as before/after columns (before = full restart / checkpointing off,
// after = selective rollback / barrier cut per epoch).
func Recovery(o RecoveryOptions) (*Report, error) {
	rep := &Report{
		ID:    "recovery",
		Title: "crash recovery: selective rollback vs full restart; checkpoint-window latency",
		Headers: []string{"metric", "before", "after", "before/after"},
	}

	var fullRepair, fullRestore, selRepair, selRestore []time.Duration
	for trial := 0; trial < o.Trials; trial++ {
		seed := o.Seed + int64(trial)*1000
		rp, rs, err := crashTrial(o, seed, false)
		if err != nil {
			return nil, fmt.Errorf("recovery trial %d (full restart): %w", trial, err)
		}
		fullRepair, fullRestore = append(fullRepair, rp), append(fullRestore, rs)
		rp, rs, err = crashTrial(o, seed+500, true)
		if err != nil {
			return nil, fmt.Errorf("recovery trial %d (selective): %w", trial, err)
		}
		selRepair, selRestore = append(selRepair, rp), append(selRestore, rs)
	}
	rep.AddRow("mttr: crash→run complete (ms, mean)",
		ms(mean(fullRepair)), ms(mean(selRepair)), ratio(mean(fullRepair), mean(selRepair)))
	rep.AddRow("mttr: restore+replay (ms, mean)",
		ms(mean(fullRestore)), ms(mean(selRestore)), ratio(mean(fullRestore), mean(selRestore)))
	rep.AddRow("workers disturbed per crash",
		fmt.Sprint(o.Processes*o.WorkersPerProcess), "1", "—")

	if o.LatencyEpochs > 0 {
		base, err := latencyRun(o, o.Seed+77, false)
		if err != nil {
			return nil, fmt.Errorf("latency baseline: %w", err)
		}
		ckpt, err := latencyRun(o, o.Seed+78, true)
		if err != nil {
			return nil, fmt.Errorf("latency checkpoint window: %w", err)
		}
		bq, cq := quantiles(base, 0.5, 0.99), quantiles(ckpt, 0.5, 0.99)
		rep.AddRow("epoch latency p50 (ms)", ms(bq[0]), ms(cq[0]), ratio(bq[0], cq[0]))
		rep.AddRow("epoch latency p99 (ms)", ms(bq[1]), ms(cq[1]), ratio(bq[1], cq[1]))
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"zero-pause acceptance: p99 with a barrier cut behind every epoch must stay within 2x of the no-checkpoint baseline; measured %.2fx",
			float64(cq[1])/float64(bq[1])))
	}
	rep.Notes = append(rep.Notes,
		"mttr rows: before = whole-process crash repaired by full restart (restore snapshot + replay log), after = single-worker crash repaired by selective rollback from the latest barrier cut; healthy workers never stop",
		"latency rows: before = checkpointing off, after = an asynchronous barrier cut in flight behind every epoch (the checkpoint window)",
		fmt.Sprintf("every trial's final-epoch sum equals the closed-form fault-free total (%d trials per mode)", o.Trials))
	return rep, nil
}

func waitCheckpoints(sup *supervise.Supervisor, n int64) error {
	deadline := time.Now().Add(60 * time.Second)
	for sup.Recovery().Checkpoints < n {
		if time.Now().After(deadline) {
			return fmt.Errorf("never reached %d checkpoints: %+v", n, sup.Recovery())
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}
