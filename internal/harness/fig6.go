package harness

import (
	"fmt"
	goruntime "runtime"
	"sync"
	"time"

	"naiad/internal/codec"
	"naiad/internal/graph"
	"naiad/internal/lib"
	"naiad/internal/runtime"
	ts "naiad/internal/timestamp"
	"naiad/internal/transport"
	"naiad/internal/workload"
)

// Fig6aOptions sizes the all-to-all throughput microbenchmark (§5.1).
type Fig6aOptions struct {
	Processes         []int // sweep of process ("computer") counts
	WorkersPerProcess int
	RecordsPerWorker  int
	Iterations        int64 // loop iterations: each is one all-to-all
}

// DefaultFig6a returns a laptop-scale configuration.
func DefaultFig6a() Fig6aOptions {
	return Fig6aOptions{
		Processes:         []int{1, 2, 4},
		WorkersPerProcess: 2,
		RecordsPerWorker:  20000,
		Iterations:        8,
	}
}

// runExchange runs one cyclic all-to-all exchange and returns elapsed time
// and remote data bytes.
func runExchange(cfg runtime.Config, recordsPerWorker int, iters int64) (time.Duration, int64, error) {
	s, err := lib.NewScope(cfg)
	if err != nil {
		return 0, 0, err
	}
	in, src := lib.NewInput[int64](s, "records", codec.Int64())
	out := lib.Iterate(src, iters, func(inner *lib.Stream[int64]) *lib.Stream[int64] {
		// Remix each record every iteration so each all-to-all exchange
		// re-routes it to a fresh destination worker.
		remixed := lib.Select(inner, func(v int64) int64 {
			return int64(lib.Hash(v))
		}, codec.Int64())
		return lib.Exchange(remixed, func(v int64) uint64 { return uint64(v) })
	})
	// Discard the egressed records at whichever worker holds them.
	lib.SubscribeParallel(out, func(int, int64, []int64) {})
	if err := s.C.Start(); err != nil {
		return 0, 0, err
	}
	start := time.Now()
	for w := 0; w < cfg.Workers(); w++ {
		recs := workload.Records(int64(w+1), recordsPerWorker)
		msgs := make([]int64, len(recs))
		copy(msgs, recs)
		in.SendToWorker(w, msgs)
	}
	in.Close()
	if err := s.C.Join(); err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start)
	bytes := s.C.TransportStats().Bytes(transport.KindData)
	return elapsed, bytes, nil
}

// Fig6a measures aggregate all-to-all exchange throughput against the
// number of processes (Figure 6a).
func Fig6a(opt Fig6aOptions) (*Report, error) {
	rep := &Report{
		ID:      "fig6a",
		Title:   "all-to-all exchange throughput vs processes (§5.1)",
		Headers: []string{"processes", "workers", "records", "elapsed", "remote-MB", "agg-Mbps"},
	}
	for _, p := range opt.Processes {
		cfg := runtime.Config{Processes: p, WorkersPerProcess: opt.WorkersPerProcess,
			Accumulation: runtime.AccLocalGlobal}
		elapsed, bytes, err := runExchange(cfg, opt.RecordsPerWorker, opt.Iterations)
		if err != nil {
			return nil, err
		}
		rep.AddRow(
			fmt.Sprint(p), fmt.Sprint(cfg.Workers()),
			fmt.Sprint(opt.RecordsPerWorker*cfg.Workers()),
			elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", float64(bytes)/1e6),
			fmt.Sprintf("%.1f", mbps(bytes, elapsed)),
		)
	}
	rep.Notes = append(rep.Notes,
		"paper: throughput scales linearly with computers; here remote bytes grow with (p-1)/p and Mbps should rise with p")
	return rep, nil
}

// barrierVertex drives the Figure 6b latency microbenchmark: it exchanges
// no data and simply requests a completeness notification per iteration;
// no iteration can proceed until every worker's previous notification has
// retired, which is a global barrier through the progress protocol.
type barrierVertex struct {
	ctx   *runtime.Context
	iters int64
	rec   func(iter int64)
}

func (v *barrierVertex) OnRecv(_ int, _ runtime.Message, t ts.Timestamp) {
	v.ctx.NotifyAt(t.WithInner(0))
}

func (v *barrierVertex) OnNotify(t ts.Timestamp) {
	if v.rec != nil {
		v.rec(t.Inner())
	}
	if t.Inner()+1 < v.iters {
		v.ctx.NotifyAt(t.Tick())
	}
}

// Fig6bOptions sizes the global barrier latency microbenchmark (§5.2).
type Fig6bOptions struct {
	Processes         []int
	WorkersPerProcess int
	Iterations        int64
}

// DefaultFig6b returns a laptop-scale configuration.
func DefaultFig6b() Fig6bOptions {
	return Fig6bOptions{Processes: []int{1, 2, 4}, WorkersPerProcess: 2, Iterations: 2000}
}

// Fig6b measures the distribution of global barrier latencies (Figure 6b).
func Fig6b(opt Fig6bOptions) (*Report, error) {
	rep := &Report{
		ID:      "fig6b",
		Title:   "global barrier latency per iteration (§5.2)",
		Headers: []string{"processes", "workers", "iters", "median-ms", "p25-ms", "p75-ms", "p95-ms"},
	}
	for _, p := range opt.Processes {
		cfg := runtime.Config{Processes: p, WorkersPerProcess: opt.WorkersPerProcess,
			Accumulation: runtime.AccLocalGlobal}
		var mu sync.Mutex
		var stamps []time.Time
		rec := func(iter int64) {
			mu.Lock()
			stamps = append(stamps, time.Now())
			mu.Unlock()
		}
		s, err := lib.NewScope(cfg)
		if err != nil {
			return nil, err
		}
		in, src := lib.NewInput[int64](s, "seed", codec.Int64())
		ing := s.C.AddStage("I", graph.RoleIngress, 0, nil)
		bar := s.C.AddStage("barrier", graph.RoleNormal, 1, func(ctx *runtime.Context) runtime.Vertex {
			v := &barrierVertex{ctx: ctx, iters: opt.Iterations}
			if ctx.Worker() == 0 {
				v.rec = rec
			}
			return v
		})
		s.C.Connect(src.Stage(), 0, ing, nil, codec.Int64())
		s.C.Connect(ing, 0, bar, nil, codec.Int64())
		if err := s.C.Start(); err != nil {
			return nil, err
		}
		// Seed every worker so all of them join the barrier.
		for w := 0; w < cfg.Workers(); w++ {
			in.SendToWorker(w, []int64{1})
		}
		in.Close()
		if err := s.C.Join(); err != nil {
			return nil, err
		}
		var gaps []time.Duration
		for i := 1; i < len(stamps); i++ {
			gaps = append(gaps, stamps[i].Sub(stamps[i-1]))
		}
		q := quantiles(gaps, 0.5, 0.25, 0.75, 0.95)
		rep.AddRow(fmt.Sprint(p), fmt.Sprint(cfg.Workers()), fmt.Sprint(len(gaps)),
			ms(q[0]), ms(q[1]), ms(q[2]), ms(q[3]))
	}
	rep.Notes = append(rep.Notes,
		"paper: median 753µs at 64 computers with a heavy p95 tail; expect sub-ms medians that grow with processes")
	return rep, nil
}

// Fig6cOptions sizes the progress-protocol traffic experiment (§5.3).
type Fig6cOptions struct {
	Processes         int
	WorkersPerProcess int
	Nodes, Edges      int
}

// DefaultFig6c returns a laptop-scale configuration.
func DefaultFig6c() Fig6cOptions {
	return Fig6cOptions{Processes: 4, WorkersPerProcess: 2, Nodes: 800, Edges: 2400}
}

// Fig6c measures progress-protocol traffic for a WCC run under each
// accumulation mode (Figure 6c).
func Fig6c(opt Fig6cOptions) (*Report, error) {
	rep := &Report{
		ID:      "fig6c",
		Title:   "progress protocol traffic by accumulation mode, WCC (§5.3)",
		Headers: []string{"mode", "progress-MB", "progress-frames", "data-MB", "elapsed"},
	}
	edges := workload.RandomGraph(17, opt.Nodes, opt.Edges)
	for _, acc := range []runtime.Accumulation{
		runtime.AccNone, runtime.AccGlobal, runtime.AccLocal, runtime.AccLocalGlobal,
	} {
		cfg := runtime.Config{Processes: opt.Processes, WorkersPerProcess: opt.WorkersPerProcess,
			Accumulation: acc}
		s, err := lib.NewScope(cfg)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := wccRun(s, edges); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		st := s.C.TransportStats()
		rep.AddRow(acc.String(),
			fmt.Sprintf("%.3f", float64(st.Bytes(transport.KindProgress))/1e6),
			fmt.Sprint(st.Frames(transport.KindProgress)),
			fmt.Sprintf("%.3f", float64(st.Bytes(transport.KindData))/1e6),
			elapsed.Round(time.Millisecond).String(),
		)
	}
	rep.Notes = append(rep.Notes,
		"paper: accumulation cuts protocol traffic by 1-2 orders of magnitude (None >> GlobalAcc > LocalAcc > Local+Global)")
	return rep, nil
}

// Fig6dOptions sizes the strong-scaling experiment (§5.4).
type Fig6dOptions struct {
	Workers      []int // worker counts (1 process, n workers each)
	Documents    int
	WordsPerDoc  int
	Nodes, Edges int
}

// DefaultFig6d returns a laptop-scale configuration.
func DefaultFig6d() Fig6dOptions {
	return Fig6dOptions{Workers: []int{1, 2, 4, 8}, Documents: 2000, WordsPerDoc: 60,
		Nodes: 4000, Edges: 12000}
}

// wordCountRun executes WordCount over pre-generated documents.
func wordCountRun(cfg runtime.Config, docs []string) (time.Duration, error) {
	s, err := lib.NewScope(cfg)
	if err != nil {
		return 0, err
	}
	in, src := lib.NewInput[string](s, "docs", codec.String())
	words := lib.SelectMany(src, splitWords, codec.String())
	counts := lib.GroupBy(words, func(w string) string { return w },
		func(w string, ws []string) []lib.Pair[string, int64] {
			return []lib.Pair[string, int64]{lib.KV(w, int64(len(ws)))}
		}, nil)
	lib.SubscribeParallel(counts, func(int, int64, []lib.Pair[string, int64]) {})
	if err := s.C.Start(); err != nil {
		return 0, err
	}
	start := time.Now()
	per := make([][]string, cfg.Workers())
	for i, d := range docs {
		per[i%cfg.Workers()] = append(per[i%cfg.Workers()], d)
	}
	for w, b := range per {
		in.SendToWorker(w, b)
	}
	in.Close()
	if err := s.C.Join(); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

func splitWords(doc string) []string {
	var out []string
	start := -1
	for i := 0; i < len(doc); i++ {
		if doc[i] == ' ' {
			if start >= 0 {
				out = append(out, doc[start:i])
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, doc[start:])
	}
	return out
}

// wccRun executes WCC over the given edges inside an existing scope.
func wccRun(s *lib.Scope, edges []workload.Edge) (int, error) {
	in, stream := lib.NewInput[workload.Edge](s, "edges", nil)
	labels := buildWCCStream(s, stream)
	var nResults int
	var mu sync.Mutex
	lib.SubscribeParallel(labels, func(_ int, _ int64, recs []lib.Pair[int64, int64]) {
		mu.Lock()
		nResults += len(recs)
		mu.Unlock()
	})
	if err := s.C.Start(); err != nil {
		return 0, err
	}
	per := make([][]workload.Edge, s.C.Config().Workers())
	for i, e := range edges {
		per[i%len(per)] = append(per[i%len(per)], e)
	}
	for w, b := range per {
		msgs := make([]workload.Edge, len(b))
		copy(msgs, b)
		in.SendToWorker(w, msgs)
	}
	in.Close()
	if err := s.C.Join(); err != nil {
		return 0, err
	}
	return nResults, nil
}

// Fig6d measures strong scaling of WordCount and WCC (Figure 6d). On a
// host with fewer cores than workers the speedup column saturates at the
// core count; the overhead column (elapsed relative to 1 worker, which on
// a single core would ideally stay at 1.0x) isolates the coordination cost
// that extra workers add.
func Fig6d(opt Fig6dOptions) (*Report, error) {
	rep := &Report{
		ID:      "fig6d",
		Title:   "strong scaling: fixed input, growing workers (§5.4)",
		Headers: []string{"app", "workers", "elapsed", "speedup", "overhead-vs-1w"},
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("host has %d core(s): speedup is capped there; overhead-vs-1w is the single-core-ideal deviation", gomaxprocs()))
	docs := workload.Documents(3, opt.Documents, opt.WordsPerDoc, 5000)
	edges := workload.RandomGraph(23, opt.Nodes, opt.Edges)
	var wcBase, wccBase time.Duration
	for _, w := range opt.Workers {
		cfg := runtime.Config{Processes: 1, WorkersPerProcess: w, Accumulation: runtime.AccLocalGlobal}
		d, err := wordCountRun(cfg, docs)
		if err != nil {
			return nil, err
		}
		if wcBase == 0 {
			wcBase = d
		}
		rep.AddRow("WordCount", fmt.Sprint(w), d.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", float64(wcBase)/float64(d)),
			fmt.Sprintf("%.2fx", float64(d)/float64(wcBase)))
	}
	for _, w := range opt.Workers {
		cfg := runtime.Config{Processes: 1, WorkersPerProcess: w, Accumulation: runtime.AccLocalGlobal}
		s, err := lib.NewScope(cfg)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := wccRun(s, edges); err != nil {
			return nil, err
		}
		d := time.Since(start)
		if wccBase == 0 {
			wccBase = d
		}
		rep.AddRow("WCC", fmt.Sprint(w), d.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", float64(wccBase)/float64(d)),
			fmt.Sprintf("%.2fx", float64(d)/float64(wccBase)))
	}
	rep.Notes = append(rep.Notes,
		"paper: WordCount scales near-linearly (46x @ 64); WCC saturates earlier (38x @ 64)")
	return rep, nil
}

// gomaxprocs reports the scheduler's processor count.
func gomaxprocs() int { return goruntime.GOMAXPROCS(0) }

// Fig6eOptions sizes the weak-scaling experiment (§5.4).
type Fig6eOptions struct {
	Workers        []int
	DocsPerWorker  int
	WordsPerDoc    int
	EdgesPerWorker int
	NodesPerWorker int
}

// DefaultFig6e returns a laptop-scale configuration.
func DefaultFig6e() Fig6eOptions {
	return Fig6eOptions{Workers: []int{1, 2, 4, 8}, DocsPerWorker: 500, WordsPerDoc: 60,
		EdgesPerWorker: 3000, NodesPerWorker: 1000}
}

// Fig6e measures weak scaling: input grows with workers (Figure 6e). On a
// host with fewer cores than workers the ideal slowdown is workers/cores
// rather than 1.0; the normalized column divides that out, leaving the
// coordination overhead the paper's figure isolates.
func Fig6e(opt Fig6eOptions) (*Report, error) {
	rep := &Report{
		ID:      "fig6e",
		Title:   "weak scaling: per-worker-constant input (§5.4)",
		Headers: []string{"app", "workers", "input", "elapsed", "slowdown", "normalized"},
	}
	cores := gomaxprocs()
	ideal := func(w int) float64 {
		if w <= cores {
			return 1
		}
		return float64(w) / float64(cores)
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("host has %d core(s): ideal slowdown at w workers is max(1, w/cores); 'normalized' divides it out", cores))
	var wcBase, wccBase time.Duration
	for _, w := range opt.Workers {
		cfg := runtime.Config{Processes: 1, WorkersPerProcess: w, Accumulation: runtime.AccLocalGlobal}
		docs := workload.Documents(3, opt.DocsPerWorker*w, opt.WordsPerDoc, 5000)
		d, err := wordCountRun(cfg, docs)
		if err != nil {
			return nil, err
		}
		if wcBase == 0 {
			wcBase = d
		}
		slow := float64(d) / float64(wcBase)
		rep.AddRow("WordCount", fmt.Sprint(w), fmt.Sprintf("%d docs", len(docs)),
			d.Round(time.Millisecond).String(), fmt.Sprintf("%.2fx", slow),
			fmt.Sprintf("%.2fx", slow/ideal(w)))
	}
	for _, w := range opt.Workers {
		cfg := runtime.Config{Processes: 1, WorkersPerProcess: w, Accumulation: runtime.AccLocalGlobal}
		edges := workload.RandomGraph(29, opt.NodesPerWorker*w, opt.EdgesPerWorker*w)
		s, err := lib.NewScope(cfg)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := wccRun(s, edges); err != nil {
			return nil, err
		}
		d := time.Since(start)
		if wccBase == 0 {
			wccBase = d
		}
		slow := float64(d) / float64(wccBase)
		rep.AddRow("WCC", fmt.Sprint(w), fmt.Sprintf("%d edges", len(edges)),
			d.Round(time.Millisecond).String(), fmt.Sprintf("%.2fx", slow),
			fmt.Sprintf("%.2fx", slow/ideal(w)))
	}
	rep.Notes = append(rep.Notes,
		"paper: WCC degrades to ~1.44x, WordCount to ~1.23x at 64 computers; expect mild slowdowns that grow with workers")
	return rep, nil
}
