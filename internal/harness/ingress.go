package harness

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"naiad/internal/lib"
	"naiad/internal/runtime"
	"naiad/internal/serve"
)

// IngressOptions sizes the serving-front-door load experiment: N server
// processes × M simulated clients per server, mercury-style — the parent
// re-execs its own binary as the servers and drives them over HTTP, so
// every byte crosses a real socket and every process has its own runtime.
type IngressOptions struct {
	// Servers is the number of server processes (or in-process servers when
	// ServerBin is empty — the testable fallback).
	Servers int
	// Streamers, SlowReaders, and Disconnectors are per-server client mixes:
	// well-behaved batch producers, clients that pair every write with a
	// frontier-stamped read and consume slowly, and clients that vanish
	// mid-epoch without closing their session.
	Streamers     int
	SlowReaders   int
	Disconnectors int
	// Batch is records per ingest request.
	Batch int
	// Duration is the steady phase's wall time; OverloadDuration the flood
	// phase's.
	Duration         time.Duration
	OverloadDuration time.Duration
	// ServerBin, when non-empty, is exec'd with -ingress-server for each
	// server (normally os.Executable()); empty runs servers in-process.
	ServerBin string
	Seed      int64
}

// DefaultIngress returns the recorded-run shape: 2 server processes, a
// mixed client population, and a 3s steady phase.
func DefaultIngress() IngressOptions {
	return IngressOptions{
		Servers:          2,
		Streamers:        4,
		SlowReaders:      2,
		Disconnectors:    2,
		Batch:            16,
		Duration:         3 * time.Second,
		OverloadDuration: 1500 * time.Millisecond,
		Seed:             1,
	}
}

// IngressServerOptions parameterizes one server process (the
// -ingress-server child mode).
type IngressServerOptions struct {
	Addr        string
	Credits     int   // global credit pool; 0 means the roomy steady default
	SlowEpochMS int   // per-epoch subscriber sleep: the overload run's slow dataflow
	Seed        int64
}

// ingressServer is one running front door, in-process or a child process.
type ingressServer struct {
	addr string
	// in-process:
	inner *ingressInstance
	// child process:
	cmd   *exec.Cmd
	stdin io.WriteCloser
	out   *bufio.Reader
}

// ingressInstance is the server side shared by the in-process mode and the
// child's IngressServerMain: a word-count table flow behind a front door.
type ingressInstance struct {
	scope *lib.Scope
	srv   *serve.Server
}

func startIngressInstance(o IngressServerOptions) (*ingressInstance, error) {
	cfg := serve.DefaultConfig()
	if o.Addr != "" {
		cfg.Addr = o.Addr
	}
	cfg.Seed = o.Seed
	cfg.MaxSessions = 4096
	cfg.MaxSessionsPerTenant = 256
	cfg.SessionIdleTimeout = time.Second
	if o.Credits > 0 {
		// The overload shape: a tight admission bound, fast epochs, a ladder
		// that reacts in tens of milliseconds, and no shed-all rung (it
		// rejects before counting records, which would weaken the offered ==
		// accepted + shed audit the experiment performs).
		cfg.GlobalCredits = o.Credits
		cfg.TenantCredits = o.Credits
		cfg.EpochInterval = time.Millisecond
		cfg.AdmitWait = 10 * time.Millisecond
		cfg.DegradeInterval = 2 * time.Millisecond
		cfg.RetryAfterBase = time.Millisecond
		cfg.DelayLag = 10 * time.Millisecond
		cfg.ShedNewLag = 50 * time.Millisecond
		cfg.ShedAllLag = time.Hour
	}
	inst := &ingressInstance{}
	scope, err := lib.NewScope(runtime.Config{Processes: 1, WorkersPerProcess: 2})
	if err != nil {
		return nil, err
	}
	inst.scope = scope
	table := serve.NewTable()
	slow := time.Duration(o.SlowEpochMS) * time.Millisecond
	in, stream := lib.NewInput[string](scope, "events", nil)
	sub := lib.Subscribe(stream, func(epoch int64, recs []string) {
		if slow > 0 {
			time.Sleep(slow)
		}
		entries := make(map[string][]byte)
		for _, r := range recs {
			if k, v, ok := strings.Cut(r, "="); ok {
				entries[k] = []byte(v)
			}
		}
		table.Update(epoch, entries)
	})
	probe := scope.C.NewProbe(sub)
	if err := scope.C.Start(); err != nil {
		return nil, err
	}
	inst.srv = serve.NewServer(cfg)
	if err := inst.srv.Register(serve.Flow{Name: "wc", Input: in.Raw(), Probe: probe, View: table}); err != nil {
		return nil, err
	}
	if err := inst.srv.Start(); err != nil {
		return nil, err
	}
	return inst, nil
}

func (i *ingressInstance) stop() (serve.Snapshot, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := i.srv.Shutdown(ctx)
	snap := i.srv.Metrics().Snapshot()
	if jerr := i.scope.C.Join(); err == nil {
		err = jerr
	}
	return snap, err
}

// IngressServerMain is the -ingress-server child-process entry point: it
// starts one front door, prints the bound address, serves until stdin
// closes (the parent's shutdown signal), then prints the final metrics
// snapshot as JSON and returns.
func IngressServerMain(o IngressServerOptions) error {
	inst, err := startIngressInstance(o)
	if err != nil {
		return err
	}
	fmt.Printf("INGRESS_ADDR %s\n", inst.srv.Addr())
	_, _ = io.Copy(io.Discard, os.Stdin) // block until the parent closes the pipe
	snap, err := inst.stop()
	if err != nil {
		return err
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	fmt.Printf("INGRESS_FINAL %s\n", data)
	return nil
}

// startIngressServer launches one server, child-process or in-process.
func startIngressServer(o IngressOptions, so IngressServerOptions) (*ingressServer, error) {
	if o.ServerBin == "" {
		inst, err := startIngressInstance(so)
		if err != nil {
			return nil, err
		}
		return &ingressServer{addr: inst.srv.Addr(), inner: inst}, nil
	}
	cmd := exec.Command(o.ServerBin,
		"-ingress-server",
		fmt.Sprintf("-ingress-credits=%d", so.Credits),
		fmt.Sprintf("-ingress-slow-ms=%d", so.SlowEpochMS),
		fmt.Sprintf("-ingress-seed=%d", so.Seed),
	)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	out := bufio.NewReader(stdout)
	s := &ingressServer{cmd: cmd, stdin: stdin, out: out}
	line, err := s.readLine("INGRESS_ADDR ", 30*time.Second)
	if err != nil {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, fmt.Errorf("ingress server handshake: %w", err)
	}
	s.addr = line
	return s, nil
}

// readLine scans stdout for the next line with the given prefix.
func (s *ingressServer) readLine(prefix string, timeout time.Duration) (string, error) {
	type res struct {
		line string
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		for {
			line, err := s.out.ReadString('\n')
			if strings.HasPrefix(line, prefix) {
				ch <- res{line: strings.TrimSpace(strings.TrimPrefix(line, prefix))}
				return
			}
			if err != nil {
				ch <- res{err: fmt.Errorf("server exited without %q line: %w", prefix, err)}
				return
			}
		}
	}()
	select {
	case r := <-ch:
		return r.line, r.err
	case <-time.After(timeout):
		return "", fmt.Errorf("timed out waiting for %q", prefix)
	}
}

// stop shuts the server down and returns its final metrics snapshot.
func (s *ingressServer) stop() (serve.Snapshot, error) {
	if s.inner != nil {
		return s.inner.stop()
	}
	_ = s.stdin.Close()
	line, err := s.readLine("INGRESS_FINAL ", 60*time.Second)
	if err != nil {
		_ = s.cmd.Process.Kill()
		_ = s.cmd.Wait()
		return serve.Snapshot{}, err
	}
	var snap serve.Snapshot
	if jerr := json.Unmarshal([]byte(line), &snap); jerr != nil {
		err = fmt.Errorf("decoding final snapshot: %w", jerr)
	}
	if werr := s.cmd.Wait(); err == nil {
		err = werr
	}
	return snap, err
}

// ingressRun is one phase's aggregated client-side observations.
type ingressRun struct {
	latencies  []time.Duration // per-request round trips
	mu         sync.Mutex
	offered    int64 // records offered by no-retry producers (overload audit)
	shedSeen   int64 // records in 429/503 responses
	errs       int64 // transport-level failures
	disconnect int64 // sessions abandoned mid-epoch
	heapMax    uint64
}

func (r *ingressRun) record(d time.Duration) {
	r.mu.Lock()
	r.latencies = append(r.latencies, d)
	r.mu.Unlock()
}

// Ingress runs the serving experiment: a steady phase with a mixed client
// population against healthy servers, then an overload phase flooding a
// credit-starved server with producers that never back off. The report
// carries sustained events/sec and round-trip quantiles for both, plus the
// overload audit: sheds engaged, heap bounded, every record accounted.
func Ingress(o IngressOptions) (*Report, error) {
	if o.Servers <= 0 || o.Streamers <= 0 || o.Batch <= 0 {
		return nil, fmt.Errorf("ingress: need servers, streamers, and batch > 0")
	}
	rep := &Report{
		ID:    "ingress",
		Title: "multi-tenant serving front door under load (events/sec, round-trip quantiles)",
		Headers: []string{"phase", "servers", "clients", "secs", "events",
			"events/s", "p50 ms", "p99 ms", "shed", "mode", "heap max MiB"},
	}

	// Steady phase: N servers, M mixed clients each.
	servers := make([]*ingressServer, 0, o.Servers)
	defer func() {
		for _, s := range servers {
			if s != nil {
				_, _ = s.stop()
			}
		}
	}()
	for i := 0; i < o.Servers; i++ {
		s, err := startIngressServer(o, IngressServerOptions{Seed: o.Seed + int64(i)})
		if err != nil {
			return nil, fmt.Errorf("ingress: starting server %d: %w", i, err)
		}
		servers = append(servers, s)
	}

	run := &ingressRun{}
	stopHeap := pollHeap(servers, run)
	var wg sync.WaitGroup
	deadline := time.Now().Add(o.Duration)
	var accepted atomic.Int64
	for si, s := range servers {
		for c := 0; c < o.Streamers; c++ {
			wg.Add(1)
			go func(addr, tenant string, id int) {
				defer wg.Done()
				streamClient(addr, tenant, id, o, deadline, run, &accepted)
			}(s.addr, fmt.Sprintf("stream-%d-%d", si, c), si*o.Streamers+c)
		}
		for c := 0; c < o.SlowReaders; c++ {
			wg.Add(1)
			go func(addr, tenant string) {
				defer wg.Done()
				slowReadClient(addr, tenant, o, deadline, run)
			}(s.addr, fmt.Sprintf("reader-%d-%d", si, c))
		}
		for c := 0; c < o.Disconnectors; c++ {
			wg.Add(1)
			go func(addr, tenant string) {
				defer wg.Done()
				disconnectClient(addr, tenant, o, deadline, run)
			}(s.addr, fmt.Sprintf("chaos-%d-%d", si, c))
		}
	}
	wg.Wait()
	stopHeap()

	var steadyAccepted, steadyShed int64
	steadyMode := "healthy"
	for i, s := range servers {
		snap, err := s.stop()
		servers[i] = nil
		if err != nil {
			return nil, fmt.Errorf("ingress: stopping server %d: %w", i, err)
		}
		steadyAccepted += snap.RecordsAccepted
		steadyShed += snap.RecordsShed
		if snap.Mode != "healthy" {
			steadyMode = snap.Mode
		}
	}
	servers = servers[:0]
	clients := o.Servers * (o.Streamers + o.SlowReaders + o.Disconnectors)
	q := quantiles(run.latencies, 0.50, 0.99)
	rep.AddRow("steady", fmt.Sprint(o.Servers), fmt.Sprint(clients),
		fmt.Sprintf("%.1f", o.Duration.Seconds()), fmt.Sprint(steadyAccepted),
		fmt.Sprintf("%.0f", float64(steadyAccepted)/o.Duration.Seconds()),
		ms(q[0]), ms(q[1]), fmt.Sprint(steadyShed), steadyMode,
		fmt.Sprintf("%.1f", float64(run.heapMax)/(1<<20)))
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("steady: %d sessions abandoned mid-epoch (reaped server-side), %d transport errors", run.disconnect, run.errs))

	// Overload phase: one credit-starved server over a slowed dataflow,
	// flooded by producers that ignore every rejection.
	ov, err := startIngressServer(o, IngressServerOptions{Credits: 256, SlowEpochMS: 3, Seed: o.Seed + 100})
	if err != nil {
		return nil, fmt.Errorf("ingress: starting overload server: %w", err)
	}
	servers = append(servers, ov)
	ovRun := &ingressRun{}
	stopHeap = pollHeap(servers, ovRun)
	floodClients := o.Servers * o.Streamers
	deadline = time.Now().Add(o.OverloadDuration)
	for c := 0; c < floodClients; c++ {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			floodClient(ov.addr, tenant, o, deadline, ovRun)
		}(fmt.Sprintf("flood-%d", c))
	}
	wg.Wait()
	stopHeap()
	ovSnap, err := ov.stop()
	servers = servers[:0]
	if err != nil {
		return nil, fmt.Errorf("ingress: stopping overload server: %w", err)
	}

	q = quantiles(ovRun.latencies, 0.50, 0.99)
	rep.AddRow("overload", "1", fmt.Sprint(floodClients),
		fmt.Sprintf("%.1f", o.OverloadDuration.Seconds()), fmt.Sprint(ovSnap.RecordsAccepted),
		fmt.Sprintf("%.0f", float64(ovSnap.RecordsAccepted)/o.OverloadDuration.Seconds()),
		ms(q[0]), ms(q[1]), fmt.Sprint(ovSnap.RecordsShed), ovSnap.Mode,
		fmt.Sprintf("%.1f", float64(ovRun.heapMax)/(1<<20)))

	// The audit: overload must shed, must stay bounded, and must account
	// every offered record as accepted or shed.
	if ovSnap.RecordsShed == 0 {
		return nil, fmt.Errorf("ingress: overload run shed nothing; admission control never engaged")
	}
	delta := ovSnap.RecordsAccepted + ovSnap.RecordsShed
	if ovRun.errs == 0 && delta != ovRun.offered {
		return nil, fmt.Errorf("ingress: accounting mismatch: offered %d, server accepted+shed %d", ovRun.offered, delta)
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"overload audit: offered=%d accepted=%d shed=%d (quota=%d overload=%d mode=%d) — all accounted; heap max %.1f MiB; %d transport errors",
		ovRun.offered, ovSnap.RecordsAccepted, ovSnap.RecordsShed,
		ovSnap.ShedQuota, ovSnap.ShedOverload, ovSnap.ShedMode,
		float64(ovRun.heapMax)/(1<<20), ovRun.errs))
	return rep, nil
}

// pollHeap samples every server's /v1/metricz heap gauge until stopped.
func pollHeap(servers []*ingressServer, run *ingressRun) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		hc := &http.Client{Timeout: 2 * time.Second}
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				for _, s := range servers {
					resp, err := hc.Get("http://" + s.addr + "/v1/metricz")
					if err != nil {
						continue
					}
					var m struct {
						HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
					}
					_ = json.NewDecoder(resp.Body).Decode(&m)
					resp.Body.Close()
					run.mu.Lock()
					if m.HeapAllocBytes > run.heapMax {
						run.heapMax = m.HeapAllocBytes
					}
					run.mu.Unlock()
				}
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// streamClient is the well-behaved producer: batched sends through the
// backpressure-aware client, latencies recorded per request.
func streamClient(addr, tenant string, id int, o IngressOptions, deadline time.Time, run *ingressRun, accepted *atomic.Int64) {
	c, err := serve.Dial(addr, tenant, "wc", serve.ClientOptions{Seed: o.Seed + int64(id)})
	if err != nil {
		run.mu.Lock()
		run.errs++
		run.mu.Unlock()
		return
	}
	defer c.Close()
	recs := make([]string, o.Batch)
	for i := 0; time.Now().Before(deadline); i++ {
		for r := range recs {
			recs[r] = fmt.Sprintf("%s_%d_%d=%d", tenant, i, r, i)
		}
		start := time.Now()
		if _, err := c.SendStrings(recs...); err != nil {
			run.mu.Lock()
			run.errs++
			run.mu.Unlock()
			continue
		}
		run.record(time.Since(start))
		accepted.Add(int64(o.Batch))
	}
}

// slowReadClient pairs every write with a frontier-stamped read of it and
// then dawdles: the slow-reader population that must not hold anyone up.
func slowReadClient(addr, tenant string, o IngressOptions, deadline time.Time, run *ingressRun) {
	c, err := serve.Dial(addr, tenant, "wc", serve.ClientOptions{Seed: o.Seed})
	if err != nil {
		run.mu.Lock()
		run.errs++
		run.mu.Unlock()
		return
	}
	defer c.Close()
	for i := 0; time.Now().Before(deadline); i++ {
		key := fmt.Sprintf("%s_%d", tenant, i)
		start := time.Now()
		ack, err := c.SendStrings(key + "=1")
		if err == nil {
			_, _, err = c.Read(key, ack.Epoch)
		}
		if err != nil {
			run.mu.Lock()
			run.errs++
			run.mu.Unlock()
		} else {
			run.record(time.Since(start))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// disconnectClient opens a session, streams into the middle of an epoch,
// and vanishes without advancing or closing — the idle reaper's workload.
func disconnectClient(addr, tenant string, o IngressOptions, deadline time.Time, run *ingressRun) {
	for time.Now().Before(deadline) {
		c, err := serve.Dial(addr, tenant, "wc", serve.ClientOptions{Seed: o.Seed, MaxRetries: 2})
		if err != nil {
			run.mu.Lock()
			run.errs++
			run.mu.Unlock()
			time.Sleep(20 * time.Millisecond)
			continue
		}
		_, _ = c.SendStrings(tenant + "_a=1")
		_, _ = c.SendStrings(tenant + "_b=2")
		// Abandon: no Advance, no Close. The session stays mid-epoch until
		// the server's idle reaper collects it.
		run.mu.Lock()
		run.disconnect++
		run.mu.Unlock()
		time.Sleep(5 * time.Millisecond)
	}
}

// floodClient is the overload producer: raw NDJSON posts with no retries,
// no backoff, and no respect for rejections. Every response is tallied so
// the audit can match offered records against the server's accounting.
func floodClient(addr, tenant string, o IngressOptions, deadline time.Time, run *ingressRun) {
	c, err := serve.Dial(addr, tenant, "wc", serve.ClientOptions{Seed: o.Seed})
	if err != nil {
		run.mu.Lock()
		run.errs++
		run.mu.Unlock()
		return
	}
	defer c.Close()
	url := "http://" + addr + "/v1/sessions/" + c.Session() + "/records"
	hc := &http.Client{}
	var body bytes.Buffer
	for i := 0; time.Now().Before(deadline); i++ {
		body.Reset()
		for r := 0; r < o.Batch; r++ {
			fmt.Fprintf(&body, "%s_%d=%d\n", tenant, i, r)
		}
		start := time.Now()
		resp, err := hc.Post(url, "application/x-ndjson", bytes.NewReader(body.Bytes()))
		if err != nil {
			run.mu.Lock()
			run.errs++
			run.mu.Unlock()
			continue
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		run.record(time.Since(start))
		run.mu.Lock()
		run.offered += int64(o.Batch)
		if resp.StatusCode != http.StatusOK {
			run.shedSeen += int64(o.Batch)
		}
		run.mu.Unlock()
	}
}
