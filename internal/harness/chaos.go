package harness

import (
	"fmt"
	"time"

	"naiad/internal/graphalgo"
	"naiad/internal/lib"
	"naiad/internal/runtime"
	"naiad/internal/transport"
	"naiad/internal/workload"
)

// ChaosOptions sizes the fault-injection smoke experiment: the WCC
// pipeline runs under a battery of chaos-transport schedules with the
// progress safety monitor and watchdog armed, and every surviving run's
// output is checked against the sequential union-find reference.
type ChaosOptions struct {
	Processes         int
	WorkersPerProcess int
	Nodes             int
	Edges             int
	Seed              int64
}

// DefaultChaos returns a laptop-scale configuration.
func DefaultChaos() ChaosOptions {
	return ChaosOptions{Processes: 2, WorkersPerProcess: 2, Nodes: 200, Edges: 400, Seed: 20130101}
}

// Chaos runs the fault-injection smoke suite. Schedules that permit
// completion must produce exactly the reference components; the crash
// schedule must abort loudly with the injected fault surfaced from Join.
// Any other outcome is an experiment failure.
func Chaos(o ChaosOptions) (*Report, error) {
	edges := workload.RandomGraph(o.Seed, o.Nodes, o.Edges)
	want := workload.ExpectedWCC(edges)

	schedules := []struct {
		name      string
		ch        transport.ChaosConfig
		wantAbort bool
	}{
		{"fault-free", transport.ChaosConfig{Seed: o.Seed}, false},
		{"latency+jitter", transport.ChaosConfig{Seed: o.Seed,
			Default: transport.Fault{Latency: time.Millisecond, Jitter: 2 * time.Millisecond}}, false},
		{"straggler-link", transport.ChaosConfig{Seed: o.Seed,
			Links: map[transport.Link]transport.Fault{
				{From: 1, To: 0}: {Latency: 15 * time.Millisecond},
			}}, false},
		{"throttle", transport.ChaosConfig{Seed: o.Seed,
			Default: transport.Fault{BytesPerSecond: 200_000}}, false},
		{"partition-heal", transport.ChaosConfig{Seed: o.Seed,
			Partition: &transport.Partition{
				Groups: [][]int{{0}, {1}}, Start: 0, Duration: 150 * time.Millisecond,
			}}, false},
		{"crash-proc-1", transport.ChaosConfig{Seed: o.Seed,
			Default:          transport.Fault{Latency: time.Millisecond},
			CrashAfterFrames: map[int]int64{1: 50}}, true},
	}

	rep := &Report{
		ID:      "chaos",
		Title:   "WCC under fault injection (safety monitor + watchdog armed)",
		Headers: []string{"schedule", "elapsed", "outcome"},
	}
	for _, sc := range schedules {
		cfg := runtime.Config{
			Processes:         o.Processes,
			WorkersPerProcess: o.WorkersPerProcess,
			Accumulation:      runtime.AccLocalGlobal,
			Transport:         transport.NewChaos(transport.NewMem(o.Processes), sc.ch),
			SafetyChecks:      true,
			Watchdog:          60 * time.Second,
		}
		s, err := lib.NewScope(cfg)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		got, err := graphalgo.WCC(s, edges, 1_000_000)
		elapsed := time.Since(start)

		var outcome string
		switch {
		case sc.wantAbort && err != nil:
			outcome = fmt.Sprintf("aborted as expected: %v", err)
		case sc.wantAbort:
			return nil, fmt.Errorf("chaos: schedule %s: crash fault did not abort the run", sc.name)
		case err != nil:
			return nil, fmt.Errorf("chaos: schedule %s: %w", sc.name, err)
		default:
			bad := 0
			for n, wc := range want {
				if got[n] != wc {
					bad++
				}
			}
			if bad > 0 {
				return nil, fmt.Errorf("chaos: schedule %s: %d/%d nodes mislabelled", sc.name, bad, len(want))
			}
			outcome = fmt.Sprintf("output exact match (%d nodes)", len(want))
		}
		rep.AddRow(sc.name, elapsed.Round(time.Millisecond).String(), outcome)
	}
	rep.Notes = append(rep.Notes,
		"every schedule runs with SafetyChecks (progress-protocol invariant monitor) and a watchdog",
		"surviving schedules must match the sequential union-find reference exactly; the crash schedule must abort loudly")
	return rep, nil
}
