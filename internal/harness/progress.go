package harness

import (
	"fmt"
	"time"

	"naiad/internal/graph"
	"naiad/internal/progress"
	ts "naiad/internal/timestamp"
)

// ProgressOptions sizes the progress-tracker hot-path microbenchmark
// (§3.3): the indexed production tracker against the scan-based reference
// oracle it replaced, over growing active-pointstamp working sets.
type ProgressOptions struct {
	ActiveSizes []int // active-pointstamp working-set sizes
	Ops         int   // timed operations per measurement
}

// DefaultProgress returns a laptop-scale configuration. The sizes bracket
// the acceptance bar (≥2x with ≥100 active pointstamps).
func DefaultProgress() ProgressOptions {
	return ProgressOptions{ActiveSizes: []int{128, 512}, Ops: 10000}
}

// progressTracker is the surface shared by the production tracker and the
// reference oracle — the operations the runtime's hot path performs.
type progressTracker interface {
	Update(progress.Pointstamp, int64)
	Frontier() []progress.Pointstamp
	SomePrecursorOf(progress.Pointstamp) bool
}

// progressGraph builds the one-loop logical graph the package
// microbenchmarks use: in → ingress → A → B → {feedback → A, egress → out}.
func progressGraph() (*graph.Graph, []graph.Location, error) {
	g := graph.New()
	in := g.AddStage("in", graph.RoleInput, 0)
	ing := g.AddStage("I", graph.RoleIngress, 0)
	s1 := g.AddStage("A", graph.RoleNormal, 1)
	s2 := g.AddStage("B", graph.RoleNormal, 1)
	fb := g.AddStage("F", graph.RoleFeedback, 1)
	eg := g.AddStage("E", graph.RoleEgress, 1)
	out := g.AddStage("out", graph.RoleNormal, 0)
	g.AddConnector(in, ing)
	g.AddConnector(ing, s1)
	g.AddConnector(s1, s2)
	g.AddConnector(s2, fb)
	g.AddConnector(fb, s1)
	g.AddConnector(s2, eg)
	g.AddConnector(eg, out)
	if err := g.Freeze(); err != nil {
		return nil, nil, err
	}
	return g, []graph.Location{
		graph.StageLoc(s1), graph.StageLoc(s2), graph.ConnLoc(2), graph.ConnLoc(3),
	}, nil
}

// fillProgress installs n active pointstamps spread over locations, epochs,
// and loop iterations.
func fillProgress(tr progressTracker, locs []graph.Location, n int) {
	for i := 0; i < n; i++ {
		tm := ts.Make(int64(i/32), int64(i%32))
		tr.Update(progress.Pointstamp{Time: tm, Loc: locs[i%len(locs)]}, 1)
	}
}

// nsPerOp times ops invocations of f and returns nanoseconds per call.
func nsPerOp(ops int, f func()) float64 {
	// One untimed pass warms caches and the branch predictor.
	f()
	start := time.Now()
	for i := 0; i < ops; i++ {
		f()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(ops)
}

// capOverheadLimit is the bench guard for the capability layer: the
// mint/drop token path may cost at most this multiple of the raw indexed
// tracker on the update and frontier workloads. CI's bench smoke runs
// -exp=progress, so a regression past the limit fails the build.
const capOverheadLimit = 1.25

// progressWorkload is one hot-path measurement: run drives a bare tracker,
// cap (when non-nil) drives the same work through the capability layer —
// tokens minted and dropped per op, occurrence deltas posted to the indexed
// tracker through the CapSet sink.
type progressWorkload struct {
	name string
	run  func(tr progressTracker, locs []graph.Location) func()
	cap  func(cs *progress.CapSet, tr progressTracker, locs []graph.Location) func()
}

func progressWorkloads(n int) []progressWorkload {
	return []progressWorkload{
		{
			name: "update",
			run: func(tr progressTracker, locs []graph.Location) func() {
				p := progress.Pointstamp{Time: ts.Make(int64(n/64), 7), Loc: locs[2]}
				return func() { tr.Update(p, 1); tr.Update(p, -1) }
			},
			cap: func(cs *progress.CapSet, _ progressTracker, locs []graph.Location) func() {
				p := progress.Pointstamp{Time: ts.Make(int64(n/64), 7), Loc: locs[2]}
				return func() { cs.Mint(p).Drop() }
			},
		},
		{
			name: "precursor",
			run: func(tr progressTracker, locs []graph.Location) func() {
				p := progress.Pointstamp{Time: ts.Make(0, 0), Loc: locs[0]}
				return func() { _ = tr.SomePrecursorOf(p) }
			},
			// Queries bypass the token layer, so there is no capability
			// variant to measure.
			cap: nil,
		},
		{
			name: "frontier",
			run: func(tr progressTracker, locs []graph.Location) func() {
				p := progress.Pointstamp{Time: ts.Make(int64(n/64), 9), Loc: locs[3]}
				return func() {
					tr.Update(p, 1)
					if len(tr.Frontier()) == 0 {
						panic("frontier empty")
					}
					tr.Update(p, -1)
				}
			},
			cap: func(cs *progress.CapSet, tr progressTracker, locs []graph.Location) func() {
				p := progress.Pointstamp{Time: ts.Make(int64(n/64), 9), Loc: locs[3]}
				return func() {
					c := cs.Mint(p)
					if len(tr.Frontier()) == 0 {
						panic("frontier empty")
					}
					c.Drop()
				}
			},
		},
	}
}

// measureCap times a workload's capability variant over a fresh indexed
// tracker fed through a CapSet sink.
func measureCap(w progressWorkload, n, ops int) (float64, error) {
	g, locs, err := progressGraph()
	if err != nil {
		return 0, err
	}
	tr := progress.NewTracker(g)
	cs := progress.NewCapSet("bench", g, func(p progress.Pointstamp, d int64) { tr.Update(p, d) })
	fillProgress(tr, locs, n)
	return nsPerOp(ops, w.cap(cs, tr, locs)), nil
}

// Progress benchmarks the tracker hot paths — occurrence update,
// deliverability query, frontier maintenance — for the indexed tracker, the
// scan-based reference, and the capability (timestamp-token) layer over the
// indexed tracker. The reference column doubles as the "before" baseline:
// it is the pre-optimization full-scan tracker, retained as the
// differential-testing oracle (docs/protocol.md, §Progress tracking). The
// capability column is guarded: overhead past capOverheadLimit on
// update/frontier is an error, which CI's bench smoke turns into a failing
// build.
func Progress(opt ProgressOptions) (*Report, error) {
	rep := &Report{
		ID:      "progress",
		Title:   "progress-tracker hot path: indexed vs reference vs capability layer (§3.3)",
		Headers: []string{"workload", "active", "indexed-ns/op", "reference-ns/op", "capability-ns/op", "speedup", "cap-overhead"},
	}
	minSpeedup := 0.0
	worstOverhead := 0.0
	for _, n := range opt.ActiveSizes {
		for _, w := range progressWorkloads(n) {
			var ns [2]float64
			for i, mk := range []func(*graph.Graph) progressTracker{
				func(g *graph.Graph) progressTracker { return progress.NewTracker(g) },
				func(g *graph.Graph) progressTracker { return progress.NewReferenceTracker(g) },
			} {
				g, locs, err := progressGraph()
				if err != nil {
					return nil, err
				}
				tr := mk(g)
				fillProgress(tr, locs, n)
				ns[i] = nsPerOp(opt.Ops, w.run(tr, locs))
			}
			speedup := ns[1] / ns[0]
			if minSpeedup == 0 || speedup < minSpeedup {
				minSpeedup = speedup
			}
			capCol, overheadCol := "-", "-"
			if w.cap != nil {
				capNs, err := measureCap(w, n, opt.Ops)
				if err != nil {
					return nil, err
				}
				overhead := capNs / ns[0]
				// Re-measure a noisy miss before declaring a regression:
				// each retry re-times base and capability back to back (an
				// unpaired retry would compare against a stale baseline) and
				// the best of three attempts stands.
				for attempt := 0; overhead > capOverheadLimit && attempt < 2; attempt++ {
					g, locs, err := progressGraph()
					if err != nil {
						return nil, err
					}
					tr := progress.NewTracker(g)
					fillProgress(tr, locs, n)
					base := nsPerOp(opt.Ops, w.run(tr, locs))
					again, err := measureCap(w, n, opt.Ops)
					if err != nil {
						return nil, err
					}
					if o := again / base; o < overhead {
						capNs, overhead = again, o
					}
				}
				if overhead > worstOverhead {
					worstOverhead = overhead
				}
				capCol = fmt.Sprintf("%.0f", capNs)
				overheadCol = fmt.Sprintf("%.2fx", overhead)
			}
			rep.AddRow(w.name, fmt.Sprint(n),
				fmt.Sprintf("%.0f", ns[0]), fmt.Sprintf("%.0f", ns[1]),
				capCol, fmt.Sprintf("%.1fx", speedup), overheadCol)
		}
	}
	rep.Notes = append(rep.Notes,
		"reference = the pre-optimization full-scan tracker (kept as the differential oracle); its column is the 'before' baseline, indexed the 'after'",
		"capability = mint/drop timestamp tokens posting occurrence deltas through a CapSet into the indexed tracker — the runtime's post-refactor hot path",
		fmt.Sprintf("acceptance: ≥2x on update/frontier with ≥100 active pointstamps; measured minimum speedup %.1fx", minSpeedup),
		fmt.Sprintf("guard: capability overhead ≤%.2fx of the indexed tracker on update/frontier; measured worst %.2fx", capOverheadLimit, worstOverhead),
	)
	if worstOverhead > capOverheadLimit {
		return nil, fmt.Errorf("capability layer regresses the indexed tracker %.2fx (limit %.2fx)\n%s",
			worstOverhead, capOverheadLimit, rep)
	}
	return rep, nil
}
