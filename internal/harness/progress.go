package harness

import (
	"fmt"
	"time"

	"naiad/internal/graph"
	"naiad/internal/progress"
	ts "naiad/internal/timestamp"
)

// ProgressOptions sizes the progress-tracker hot-path microbenchmark
// (§3.3): the indexed production tracker against the scan-based reference
// oracle it replaced, over growing active-pointstamp working sets.
type ProgressOptions struct {
	ActiveSizes []int // active-pointstamp working-set sizes
	Ops         int   // timed operations per measurement
}

// DefaultProgress returns a laptop-scale configuration. The sizes bracket
// the acceptance bar (≥2x with ≥100 active pointstamps).
func DefaultProgress() ProgressOptions {
	return ProgressOptions{ActiveSizes: []int{128, 512}, Ops: 10000}
}

// progressTracker is the surface shared by the production tracker and the
// reference oracle — the operations the runtime's hot path performs.
type progressTracker interface {
	Update(progress.Pointstamp, int64)
	Frontier() []progress.Pointstamp
	SomePrecursorOf(progress.Pointstamp) bool
}

// progressGraph builds the one-loop logical graph the package
// microbenchmarks use: in → ingress → A → B → {feedback → A, egress → out}.
func progressGraph() (*graph.Graph, []graph.Location, error) {
	g := graph.New()
	in := g.AddStage("in", graph.RoleInput, 0)
	ing := g.AddStage("I", graph.RoleIngress, 0)
	s1 := g.AddStage("A", graph.RoleNormal, 1)
	s2 := g.AddStage("B", graph.RoleNormal, 1)
	fb := g.AddStage("F", graph.RoleFeedback, 1)
	eg := g.AddStage("E", graph.RoleEgress, 1)
	out := g.AddStage("out", graph.RoleNormal, 0)
	g.AddConnector(in, ing)
	g.AddConnector(ing, s1)
	g.AddConnector(s1, s2)
	g.AddConnector(s2, fb)
	g.AddConnector(fb, s1)
	g.AddConnector(s2, eg)
	g.AddConnector(eg, out)
	if err := g.Freeze(); err != nil {
		return nil, nil, err
	}
	return g, []graph.Location{
		graph.StageLoc(s1), graph.StageLoc(s2), graph.ConnLoc(2), graph.ConnLoc(3),
	}, nil
}

// fillProgress installs n active pointstamps spread over locations, epochs,
// and loop iterations.
func fillProgress(tr progressTracker, locs []graph.Location, n int) {
	for i := 0; i < n; i++ {
		tm := ts.Make(int64(i/32), int64(i%32))
		tr.Update(progress.Pointstamp{Time: tm, Loc: locs[i%len(locs)]}, 1)
	}
}

// nsPerOp times ops invocations of f and returns nanoseconds per call.
func nsPerOp(ops int, f func()) float64 {
	// One untimed pass warms caches and the branch predictor.
	f()
	start := time.Now()
	for i := 0; i < ops; i++ {
		f()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(ops)
}

// Progress benchmarks the tracker hot paths — occurrence update,
// deliverability query, frontier maintenance — for both implementations
// and reports the speedup. The reference column doubles as the "before"
// baseline: it is the pre-optimization full-scan tracker, retained as the
// differential-testing oracle (docs/protocol.md, §Progress-tracking
// optimizations).
func Progress(opt ProgressOptions) (*Report, error) {
	rep := &Report{
		ID:      "progress",
		Title:   "progress-tracker hot path: indexed vs scan-based reference (§3.3)",
		Headers: []string{"workload", "active", "indexed-ns/op", "reference-ns/op", "speedup"},
	}
	minSpeedup := 0.0
	for _, n := range opt.ActiveSizes {
		type workload struct {
			name string
			run  func(tr progressTracker, locs []graph.Location) func()
		}
		workloads := []workload{
			{"update", func(tr progressTracker, locs []graph.Location) func() {
				p := progress.Pointstamp{Time: ts.Make(int64(n/64), 7), Loc: locs[2]}
				return func() { tr.Update(p, 1); tr.Update(p, -1) }
			}},
			{"precursor", func(tr progressTracker, locs []graph.Location) func() {
				p := progress.Pointstamp{Time: ts.Make(0, 0), Loc: locs[0]}
				return func() { _ = tr.SomePrecursorOf(p) }
			}},
			{"frontier", func(tr progressTracker, locs []graph.Location) func() {
				p := progress.Pointstamp{Time: ts.Make(int64(n/64), 9), Loc: locs[3]}
				return func() {
					tr.Update(p, 1)
					if len(tr.Frontier()) == 0 {
						panic("frontier empty")
					}
					tr.Update(p, -1)
				}
			}},
		}
		for _, w := range workloads {
			var ns [2]float64
			for i, mk := range []func(*graph.Graph) progressTracker{
				func(g *graph.Graph) progressTracker { return progress.NewTracker(g) },
				func(g *graph.Graph) progressTracker { return progress.NewReferenceTracker(g) },
			} {
				g, locs, err := progressGraph()
				if err != nil {
					return nil, err
				}
				tr := mk(g)
				fillProgress(tr, locs, n)
				ns[i] = nsPerOp(opt.Ops, w.run(tr, locs))
			}
			speedup := ns[1] / ns[0]
			if minSpeedup == 0 || speedup < minSpeedup {
				minSpeedup = speedup
			}
			rep.AddRow(w.name, fmt.Sprint(n),
				fmt.Sprintf("%.0f", ns[0]), fmt.Sprintf("%.0f", ns[1]),
				fmt.Sprintf("%.1fx", speedup))
		}
	}
	rep.Notes = append(rep.Notes,
		"reference = the pre-optimization full-scan tracker (kept as the differential oracle); its column is the 'before' baseline, indexed the 'after'",
		fmt.Sprintf("acceptance: ≥2x on update/frontier with ≥100 active pointstamps; measured minimum speedup %.1fx", minSpeedup),
	)
	return rep, nil
}
