package harness

import (
	"fmt"
	"time"

	"naiad/internal/batchbuf"
	"naiad/internal/graph"
	"naiad/internal/runtime"
	ts "naiad/internal/timestamp"
)

// PipelineOptions sizes the data-plane microbenchmark: per-record cost of a
// map→sink pipeline on one worker, the pooled typed-batch path against the
// boxed per-record path it replaced.
type PipelineOptions struct {
	Records   int // records per measured pass
	EpochSize int // records per epoch
}

// DefaultPipeline returns a laptop-scale configuration: enough records that
// per-epoch control traffic is noise, small enough to finish in seconds.
func DefaultPipeline() PipelineOptions {
	return PipelineOptions{Records: 1 << 21, EpochSize: 4096}
}

// pipeBatchMap is the typed fast path: whole []int64 columns in, one pooled
// column out, no per-record boxing.
type pipeBatchMap struct {
	ctx  *runtime.Context
	pool *batchbuf.Pool[int64]
}

func (v *pipeBatchMap) OnRecv(_ int, msg runtime.Message, t ts.Timestamp) {
	v.ctx.SendBy(0, msg.(int64)+1, t)
}

func (v *pipeBatchMap) OnRecvBatch(_ int, b *runtime.Batch, t ts.Timestamp) {
	data, ok := b.Col().Slice().([]int64)
	if !ok {
		for i, n := 0, b.Len(); i < n; i++ {
			v.OnRecv(0, b.Record(i), t)
		}
		return
	}
	out, col := v.pool.Get(len(data))
	for _, rec := range data {
		col.Data = append(col.Data, rec+1)
	}
	v.ctx.SendBatchBy(0, out, t)
}

func (v *pipeBatchMap) OnNotify(ts.Timestamp) {}

// pipeBatchCount consumes whole batches.
type pipeBatchCount struct{ n int64 }

func (v *pipeBatchCount) OnRecv(_ int, _ runtime.Message, _ ts.Timestamp) { v.n++ }
func (v *pipeBatchCount) OnRecvBatch(_ int, b *runtime.Batch, _ ts.Timestamp) {
	v.n += int64(b.Len())
}
func (v *pipeBatchCount) OnNotify(ts.Timestamp) {}

// pipeBoxedMap deliberately implements only the record-at-a-time Vertex
// interface, so the runtime unrolls every batch through the boxed OnRecv
// path — the pre-batching data plane this experiment measures against.
type pipeBoxedMap struct{ ctx *runtime.Context }

func (v *pipeBoxedMap) OnRecv(_ int, msg runtime.Message, t ts.Timestamp) {
	v.ctx.SendBy(0, msg.(int64)+1, t)
}
func (v *pipeBoxedMap) OnNotify(ts.Timestamp) {}

type pipeBoxedCount struct{ n int64 }

func (v *pipeBoxedCount) OnRecv(_ int, _ runtime.Message, _ ts.Timestamp) { v.n++ }
func (v *pipeBoxedCount) OnNotify(ts.Timestamp) {}

// runPipeline builds the one-worker map→sink pipeline, pushes opt.Records
// through it on the chosen path, and returns nanoseconds per record for the
// whole run (feed through final drain).
func runPipeline(opt PipelineOptions, typed bool) (float64, error) {
	cfg := runtime.Config{Processes: 1, WorkersPerProcess: 1, Accumulation: runtime.AccLocalGlobal}
	c, err := runtime.NewComputation(cfg)
	if err != nil {
		return 0, err
	}
	in := c.NewInput("in")
	var count func() int64
	var m runtime.StageID
	if typed {
		m = c.AddStage("map", graph.RoleNormal, 0, func(ctx *runtime.Context) runtime.Vertex {
			return &pipeBatchMap{ctx: ctx, pool: batchbuf.PoolFor[int64]()}
		})
		cv := &pipeBatchCount{}
		count = func() int64 { return cv.n }
		snk := c.AddStage("sink", graph.RoleNormal, 0, func(ctx *runtime.Context) runtime.Vertex {
			return cv
		}, runtime.Pinned(0))
		c.Connect(in.Stage(), 0, m, nil, nil)
		c.Connect(m, 0, snk, nil, nil)
	} else {
		m = c.AddStage("map", graph.RoleNormal, 0, func(ctx *runtime.Context) runtime.Vertex {
			return &pipeBoxedMap{ctx: ctx}
		})
		cv := &pipeBoxedCount{}
		count = func() int64 { return cv.n }
		snk := c.AddStage("sink", graph.RoleNormal, 0, func(ctx *runtime.Context) runtime.Vertex {
			return cv
		}, runtime.Pinned(0))
		c.Connect(in.Stage(), 0, m, nil, nil)
		c.Connect(m, 0, snk, nil, nil)
	}
	if err := c.Start(); err != nil {
		return 0, err
	}
	pool := batchbuf.PoolFor[int64]()
	start := time.Now()
	for sent := 0; sent < opt.Records; {
		n := opt.EpochSize
		if opt.Records-sent < n {
			n = opt.Records - sent
		}
		if typed {
			b, col := pool.Get(n)
			for i := 0; i < n; i++ {
				col.Data = append(col.Data, int64(i))
			}
			in.SendBatch(b)
		} else {
			recs := make([]runtime.Message, n)
			for i := range recs {
				recs[i] = int64(i)
			}
			in.Send(recs...)
		}
		in.Advance()
		sent += n
	}
	in.Close()
	if err := c.Join(); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if got := count(); got != int64(opt.Records) {
		return 0, fmt.Errorf("pipeline: sink saw %d records, want %d", got, opt.Records)
	}
	return float64(elapsed.Nanoseconds()) / float64(opt.Records), nil
}

// Pipeline benchmarks the record data plane end to end: the pooled
// typed-batch path (typed columns, vectorized exchange, pooled frames)
// against the boxed per-record path the same wire format supports. The
// boxed column is the live "before" — it is the old per-record interface
// path still exercised by untyped vertices; the committed pre-PR seed
// numbers are in bench/BENCH_pipeline_before.txt.
func Pipeline(opt PipelineOptions) (*Report, error) {
	rep := &Report{
		ID:      "pipeline",
		Title:   "record data plane: pooled typed batches vs boxed per-record (§2.3)",
		Headers: []string{"path", "records", "epoch", "ns/record", "speedup"},
	}
	typedNS, err := runPipeline(opt, true)
	if err != nil {
		return nil, err
	}
	boxedNS, err := runPipeline(opt, false)
	if err != nil {
		return nil, err
	}
	speedup := boxedNS / typedNS
	rep.AddRow("typed-batch", fmt.Sprint(opt.Records), fmt.Sprint(opt.EpochSize),
		fmt.Sprintf("%.1f", typedNS), fmt.Sprintf("%.1fx", speedup))
	rep.AddRow("boxed", fmt.Sprint(opt.Records), fmt.Sprint(opt.EpochSize),
		fmt.Sprintf("%.1f", boxedNS), "1.0x")
	rep.Notes = append(rep.Notes,
		"boxed = the per-record interface path (the 'before' column); typed-batch = pooled []T columns end to end (the 'after' column)",
		"committed pre-PR baseline for BenchmarkPipelineRecords is bench/BENCH_pipeline_before.txt (471-509 ns/record, 3 allocs/record)",
		fmt.Sprintf("acceptance: typed path ≥5x the committed baseline; measured typed-vs-boxed speedup %.1fx", speedup),
	)
	return rep, nil
}
