package progress

import (
	"math/rand"
	"testing"

	"naiad/internal/graph"
	"naiad/internal/testutil"
	ts "naiad/internal/timestamp"
)

// shapeGraph builds one of the differential-test graph shapes and returns
// it frozen. The shapes cover the reachability structures the indexed
// tracker specializes: a loop-free pipeline, a single loop, and two nested
// loops (loop-context timestamps at depth 2).
func shapeGraph(t testing.TB, shape string) *graph.Graph {
	t.Helper()
	g := graph.New()
	switch shape {
	case "linear":
		in := g.AddStage("in", graph.RoleInput, 0)
		a := g.AddStage("A", graph.RoleNormal, 0)
		b := g.AddStage("B", graph.RoleNormal, 0)
		c := g.AddStage("C", graph.RoleNormal, 0)
		g.AddConnector(in, a)
		g.AddConnector(a, b)
		g.AddConnector(b, c)
	case "loop":
		in := g.AddStage("in", graph.RoleInput, 0)
		ing := g.AddStage("I", graph.RoleIngress, 0)
		b := g.AddStage("B", graph.RoleNormal, 1)
		c := g.AddStage("C", graph.RoleNormal, 1)
		fb := g.AddStage("F", graph.RoleFeedback, 1)
		eg := g.AddStage("E", graph.RoleEgress, 1)
		out := g.AddStage("out", graph.RoleNormal, 0)
		g.AddConnector(in, ing)
		g.AddConnector(ing, b)
		g.AddConnector(b, c)
		g.AddConnector(c, fb)
		g.AddConnector(fb, b)
		g.AddConnector(c, eg)
		g.AddConnector(eg, out)
	case "nested":
		in := g.AddStage("in", graph.RoleInput, 0)
		ing1 := g.AddStage("I1", graph.RoleIngress, 0)
		a := g.AddStage("A", graph.RoleNormal, 1)
		ing2 := g.AddStage("I2", graph.RoleIngress, 1)
		b := g.AddStage("B", graph.RoleNormal, 2)
		fb2 := g.AddStage("F2", graph.RoleFeedback, 2)
		eg2 := g.AddStage("E2", graph.RoleEgress, 2)
		c := g.AddStage("C", graph.RoleNormal, 1)
		fb1 := g.AddStage("F1", graph.RoleFeedback, 1)
		eg1 := g.AddStage("E1", graph.RoleEgress, 1)
		out := g.AddStage("out", graph.RoleNormal, 0)
		g.AddConnector(in, ing1)
		g.AddConnector(ing1, a)
		g.AddConnector(a, ing2)
		g.AddConnector(ing2, b)
		g.AddConnector(b, fb2)
		g.AddConnector(fb2, b)
		g.AddConnector(b, eg2)
		g.AddConnector(eg2, c)
		g.AddConnector(c, fb1)
		g.AddConnector(fb1, a)
		g.AddConnector(c, eg1)
		g.AddConnector(eg1, out)
	default:
		t.Fatalf("unknown shape %q", shape)
	}
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	return g
}

// pointstampUniverse enumerates candidate pointstamps: every location of
// the graph crossed with a grid of depth-matching timestamps (epochs 0–3,
// loop counters 0–2 per level).
func pointstampUniverse(g *graph.Graph) []Pointstamp {
	var out []Pointstamp
	for li := 0; li < g.LocCount(); li++ {
		loc := g.LocOfIndex(li)
		depth := g.LocationDepth(loc)
		for e := int64(0); e < 4; e++ {
			switch depth {
			case 0:
				out = append(out, Pointstamp{Time: ts.Root(e), Loc: loc})
			case 1:
				for c1 := int64(0); c1 < 3; c1++ {
					out = append(out, Pointstamp{Time: ts.Make(e, c1), Loc: loc})
				}
			case 2:
				for c1 := int64(0); c1 < 3; c1++ {
					for c2 := int64(0); c2 < 3; c2++ {
						out = append(out, Pointstamp{Time: ts.Make(e, c1, c2), Loc: loc})
					}
				}
			}
		}
	}
	return out
}

// trackerPair drives the indexed tracker and the scan-based reference
// oracle in lockstep and asserts observable equivalence.
type trackerPair struct {
	t   testing.TB
	idx *Tracker
	ref *ReferenceTracker
}

func newTrackerPair(t testing.TB, g *graph.Graph) *trackerPair {
	return &trackerPair{t: t, idx: NewTracker(g), ref: NewReferenceTracker(g)}
}

func (tp *trackerPair) update(p Pointstamp, d int64) {
	tp.idx.Update(p, d)
	tp.ref.Update(p, d)
}

func (tp *trackerPair) apply(us []Update) {
	tp.idx.Apply(us)
	tp.ref.Apply(us)
}

// check compares the full frontier plus per-pointstamp observations over
// the sampled universe.
func (tp *trackerPair) check(universe []Pointstamp, ctx string) {
	tp.t.Helper()
	got, want := tp.idx.Frontier(), tp.ref.Frontier()
	if len(got) != len(want) {
		tp.t.Fatalf("%s: frontier length %d (indexed) vs %d (reference)\nindexed:   %v\nreference: %v",
			ctx, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			tp.t.Fatalf("%s: frontier[%d] = %v (indexed) vs %v (reference)", ctx, i, got[i], want[i])
		}
	}
	if tp.idx.Active() != tp.ref.Active() || tp.idx.Empty() != tp.ref.Empty() {
		tp.t.Fatalf("%s: active %d/%v (indexed) vs %d/%v (reference)",
			ctx, tp.idx.Active(), tp.idx.Empty(), tp.ref.Active(), tp.ref.Empty())
	}
	for _, p := range universe {
		if gi, ri := tp.idx.InFrontier(p), tp.ref.InFrontier(p); gi != ri {
			tp.t.Fatalf("%s: InFrontier(%v) = %v (indexed) vs %v (reference)", ctx, p, gi, ri)
		}
		if gs, rs := tp.idx.SomePrecursorOf(p), tp.ref.SomePrecursorOf(p); gs != rs {
			tp.t.Fatalf("%s: SomePrecursorOf(%v) = %v (indexed) vs %v (reference)", ctx, p, gs, rs)
		}
		if go_, ro := tp.idx.Occurrence(p), tp.ref.Occurrence(p); go_ != ro {
			tp.t.Fatalf("%s: Occurrence(%v) = %d (indexed) vs %d (reference)", ctx, p, go_, ro)
		}
	}
}

// TestTrackerDifferential drives the indexed tracker and the reference
// oracle with identical randomized update streams — including transient
// negatives, batched Apply calls, and loop-context timestamps — across the
// three graph shapes, and asserts frontier equivalence throughout. The
// stream sizes satisfy the ≥10k-updates acceptance bar per run.
func TestTrackerDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(testutil.Seed(t)))
	for _, shape := range []string{"linear", "loop", "nested"} {
		t.Run(shape, func(t *testing.T) {
			g := shapeGraph(t, shape)
			universe := pointstampUniverse(g)
			for trial := 0; trial < 4; trial++ {
				tp := newTrackerPair(t, g)
				counts := map[Pointstamp]int64{}
				for step := 0; step < 1000; step++ {
					if r.Intn(8) == 0 {
						// A combined batch, positives-first via Apply.
						var us []Update
						for k := 0; k < 1+r.Intn(4); k++ {
							p := universe[r.Intn(len(universe))]
							d := int64(1)
							if counts[p] > 0 && r.Intn(2) == 0 {
								d = -1
							}
							counts[p] += d
							us = append(us, Update{P: p, D: d})
						}
						tp.apply(us)
					} else {
						p := universe[r.Intn(len(universe))]
						d := int64(1)
						switch {
						case counts[p] > 0 && r.Intn(2) == 0:
							d = -1
						case r.Intn(16) == 0:
							d = -1 // retirement overtaking its creation
						}
						counts[p] += d
						tp.update(p, d)
					}
					if step%50 == 0 {
						tp.check(universe, shape)
					}
				}
				tp.check(universe, shape)
				tp.idx.CheckInvariants()
				tp.ref.CheckInvariants()
				// Drain every remaining positive; both must end empty.
				for p, c := range counts {
					if c > 0 {
						tp.update(p, -c)
					}
				}
				if !tp.idx.Empty() || !tp.ref.Empty() {
					t.Fatalf("trackers not empty after drain: indexed %d, reference %d",
						tp.idx.Active(), tp.ref.Active())
				}
			}
		})
	}
}

// FuzzTrackerDifferential feeds byte-derived update streams to both
// trackers over the nested-loop graph and asserts frontier equivalence.
// Each input byte pair selects a pointstamp from the universe and a delta.
func FuzzTrackerDifferential(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{10, 0, 10, 1, 10, 0, 200, 3})
	f.Add([]byte{255, 254, 253, 252, 1, 1, 1, 1, 128, 64})
	g := shapeGraph(f, "nested")
	universe := pointstampUniverse(g)
	f.Fuzz(func(t *testing.T, data []byte) {
		tp := newTrackerPair(t, g)
		counts := map[Pointstamp]int64{}
		for i := 0; i+1 < len(data); i += 2 {
			p := universe[int(data[i])%len(universe)]
			d := int64(1)
			// Bias toward retiring existing occurrences so streams cancel,
			// but allow the transient-negative overtaking case too.
			if counts[p] > 0 && data[i+1]%2 == 1 {
				d = -1
			} else if data[i+1] == 0 {
				d = -1
			}
			counts[p] += d
			tp.update(p, d)
			if i%16 == 0 {
				tp.check(universe[:0], "fuzz") // frontier + active only
			}
		}
		tp.check(universe, "fuzz-final")
		tp.idx.CheckInvariants()
	})
}
