package progress

import (
	"fmt"
	"sort"

	"naiad/internal/graph"
)

// entry records the state of one tracked pointstamp.
type entry struct {
	occ  int64 // net occurrence count (may be negative transiently, §pkg doc)
	prec int64 // number of other active pointstamps that could-result-in this one
}

// Tracker maintains the set of active pointstamps with occurrence and
// precursor counts exactly as §2.3 prescribes, over the could-result-in
// relation derived from a frozen logical graph. A pointstamp is in the
// frontier when it is active (net occurrence > 0) and its precursor count
// is zero; notifications in the frontier may be delivered.
type Tracker struct {
	g       *graph.Graph
	entries map[Pointstamp]*entry
	active  int // number of entries with occ > 0
}

// NewTracker returns a tracker over the given frozen graph.
func NewTracker(g *graph.Graph) *Tracker {
	if !g.Frozen() {
		panic("progress: tracker requires a frozen graph")
	}
	return &Tracker{g: g, entries: make(map[Pointstamp]*entry)}
}

// couldResultIn reports the strict precedence used for precursor counts:
// p ≠ q and a path summary maps p's time at or below q's time.
func (t *Tracker) couldResultIn(p, q Pointstamp) bool {
	if p == q {
		return false
	}
	return t.g.CouldResultIn(p.Time, p.Loc, q.Time, q.Loc)
}

// Update adds delta to the occurrence count of p, maintaining precursor
// counts across activation and deactivation transitions.
func (t *Tracker) Update(p Pointstamp, delta int64) {
	if delta == 0 {
		return
	}
	e := t.entries[p]
	if e == nil {
		e = &entry{}
		t.entries[p] = e
	}
	wasActive := e.occ > 0
	e.occ += delta
	isActive := e.occ > 0
	switch {
	case !wasActive && isActive:
		t.activate(p, e)
	case wasActive && !isActive:
		t.deactivate(p, e)
	}
	if e.occ == 0 && e.prec == 0 {
		delete(t.entries, p)
	}
}

// Apply applies a batch of updates positives-first, so that transient
// states during the batch never show an artificially advanced frontier.
func (t *Tracker) Apply(us []Update) {
	for _, u := range us {
		if u.D > 0 {
			t.Update(u.P, u.D)
		}
	}
	for _, u := range us {
		if u.D < 0 {
			t.Update(u.P, u.D)
		}
	}
}

// activate initializes p's precursor count to the number of existing
// active pointstamps that could-result-in p, and increments the precursor
// count of any active pointstamp p could-result-in.
func (t *Tracker) activate(p Pointstamp, e *entry) {
	t.active++
	e.prec = 0
	for q, qe := range t.entries {
		if qe.occ <= 0 || q == p {
			continue
		}
		if t.couldResultIn(q, p) {
			e.prec++
		}
		if t.couldResultIn(p, q) {
			qe.prec++
		}
	}
}

// deactivate decrements the precursor count of every active pointstamp p
// could-result-in.
func (t *Tracker) deactivate(p Pointstamp, e *entry) {
	t.active--
	for q, qe := range t.entries {
		if qe.occ <= 0 || q == p {
			continue
		}
		if t.couldResultIn(p, q) {
			qe.prec--
			if qe.prec < 0 {
				panic(fmt.Sprintf("progress: precursor count of %v went negative", q))
			}
		}
	}
	// p's own precursor count is recomputed on reactivation.
	e.prec = 0
}

// InFrontier reports whether p is active with no active precursors, i.e.
// a notification at p may be delivered (§2.3).
func (t *Tracker) InFrontier(p Pointstamp) bool {
	e := t.entries[p]
	return e != nil && e.occ > 0 && e.prec == 0
}

// Frontier returns the active pointstamps with zero precursor count, in
// deterministic order.
func (t *Tracker) Frontier() []Pointstamp {
	var out []Pointstamp
	for p, e := range t.entries {
		if e.occ > 0 && e.prec == 0 {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Active returns the number of active pointstamps.
func (t *Tracker) Active() int { return t.active }

// Empty reports whether no pointstamp is active: every event in the
// computation (as seen by this view) has drained.
func (t *Tracker) Empty() bool { return t.active == 0 }

// Occurrence returns the net occurrence count of p.
func (t *Tracker) Occurrence(p Pointstamp) int64 {
	if e := t.entries[p]; e != nil {
		return e.occ
	}
	return 0
}

// SomePrecursorOf reports whether any active pointstamp (other than p
// itself) could-result-in p. Unlike InFrontier it does not require p to be
// active; the runtime uses it to decide whether a time is "complete" at a
// location even when no notification was requested there.
func (t *Tracker) SomePrecursorOf(p Pointstamp) bool {
	for q, qe := range t.entries {
		if qe.occ > 0 && q != p && t.couldResultIn(q, p) {
			return true
		}
	}
	return false
}

// CheckInvariants recomputes every precursor count from scratch and panics
// on divergence. Tests and the runtime's debug mode call this; it is O(n²)
// in the number of tracked pointstamps.
func (t *Tracker) CheckInvariants() {
	for p, e := range t.entries {
		if e.occ <= 0 {
			continue
		}
		var want int64
		for q, qe := range t.entries {
			if qe.occ > 0 && q != p && t.couldResultIn(q, p) {
				want++
			}
		}
		if e.prec != want {
			panic(fmt.Sprintf("progress: %v precursor count %d, recomputed %d", p, e.prec, want))
		}
	}
}
