package progress

import (
	"fmt"
	"sort"

	"naiad/internal/graph"
	ts "naiad/internal/timestamp"
)

// entry records the state of one tracked pointstamp.
type entry struct {
	occ  int64 // net occurrence count (may be negative transiently, §pkg doc)
	prec int64 // number of other active pointstamps that could-result-in this one
}

// locEntry is one active pointstamp in a location bucket: its timestamp and
// a direct pointer to its entry, so precursor increments on the maintenance
// passes never go through the entry map.
type locEntry struct {
	tm ts.Timestamp
	e  *entry
}

// reach is one precomputed hop of the location-reachability table: a
// related location's dense index, its Location, and the shared path-summary
// antichain between the two locations.
type reach struct {
	li  int
	loc graph.Location
	ss  *ts.SummarySet
}

// Tracker maintains the set of active pointstamps with occurrence and
// precursor counts exactly as §2.3 prescribes, over the could-result-in
// relation derived from a frozen logical graph. A pointstamp is in the
// frontier when it is active (net occurrence > 0) and its precursor count
// is zero; notifications in the frontier may be delivered.
//
// Unlike ReferenceTracker (the scan-based oracle this implementation is
// differentially tested against), the tracker is indexed per §3.3: active
// pointstamps are bucketed per logical-graph location in timestamp order,
// and activation/deactivation only visits the locations that the frozen
// graph's reachability table says can affect each other. Within a bucket,
// the epoch-major Compare order groups one epoch's timestamps contiguously,
// and because every timestamp at a location has that location's loop depth,
// each epoch segment is totally ordered by the lexicographic counter order.
// Path summaries preserve the epoch and are monotone in that counter order,
// so inside a segment the set of precursors of a target time is a prefix
// and the set of successors a suffix — both found by binary search instead
// of per-timestamp could-result-in evaluation. Precursor counts therefore
// cost O(reachable locations · epochs in flight · log bucket) plus the
// size of the affected successor set, not O(active).
type Tracker struct {
	g       *graph.Graph
	entries map[Pointstamp]*entry
	active  int // number of entries with occ > 0

	locTimes  [][]locEntry // per dense location index: active times in Compare order
	locDepth  []uint8      // per dense location index: loop depth of its timestamps
	reachFrom [][]reach    // per location: locations it can reach, with Ψ
	reachTo   [][]reach    // per location: locations that can reach it, with Ψ
	frontier  []Pointstamp // cached frontier, valid when !dirty
	dirty     bool         // frontier cache invalidated by an (de)activation
	gen       uint64       // bumped on every (de)activation; see Gen
}

// NewTracker returns a tracker over the given frozen graph.
func NewTracker(g *graph.Graph) *Tracker {
	if !g.Frozen() {
		panic("progress: tracker requires a frozen graph")
	}
	n := g.LocCount()
	t := &Tracker{
		g:         g,
		entries:   make(map[Pointstamp]*entry),
		locTimes:  make([][]locEntry, n),
		locDepth:  make([]uint8, n),
		reachFrom: make([][]reach, n),
		reachTo:   make([][]reach, n),
	}
	for li := 0; li < n; li++ {
		l := g.LocOfIndex(li)
		t.locDepth[li] = g.LocationDepth(l)
		for _, m := range g.ReachFrom(l) {
			t.reachFrom[li] = append(t.reachFrom[li], reach{li: g.LocIndex(m), loc: m, ss: g.PathSummary(l, m)})
		}
		for _, m := range g.ReachTo(l) {
			t.reachTo[li] = append(t.reachTo[li], reach{li: g.LocIndex(m), loc: m, ss: g.PathSummary(m, l)})
		}
	}
	return t
}

// couldResultIn reports the strict precedence used for precursor counts:
// p ≠ q and a path summary maps p's time at or below q's time. Only
// CheckInvariants uses it; the maintenance paths go through the index.
func (t *Tracker) couldResultIn(p, q Pointstamp) bool {
	if p == q {
		return false
	}
	return t.g.CouldResultIn(p.Time, p.Loc, q.Time, q.Loc)
}

// Update adds delta to the occurrence count of p, maintaining precursor
// counts across activation and deactivation transitions. The timestamp's
// depth must match the loop depth of p's location — true of every
// pointstamp the runtime produces, and required for the bucket index's
// segment ordering.
func (t *Tracker) Update(p Pointstamp, delta int64) {
	if delta == 0 {
		return
	}
	if pli := t.g.LocIndex(p.Loc); p.Time.Depth != t.locDepth[pli] {
		panic(fmt.Sprintf("progress: %v has depth %d, location expects %d", p, p.Time.Depth, t.locDepth[pli]))
	}
	e := t.entries[p]
	if e == nil {
		e = &entry{}
		t.entries[p] = e
	}
	wasActive := e.occ > 0
	e.occ += delta
	isActive := e.occ > 0
	switch {
	case !wasActive && isActive:
		t.activate(p, e)
	case wasActive && !isActive:
		t.deactivate(p, e)
	}
	if e.occ == 0 && e.prec == 0 {
		delete(t.entries, p)
	}
}

// Apply applies a batch of updates positives-first, so that transient
// states during the batch never show an artificially advanced frontier.
func (t *Tracker) Apply(us []Update) {
	for _, u := range us {
		if u.D > 0 {
			t.Update(u.P, u.D)
		}
	}
	for _, u := range us {
		if u.D < 0 {
			t.Update(u.P, u.D)
		}
	}
}

// lowerBoundEpoch returns the index of the first bucket entry with an epoch
// at or above e; in the epoch-major Compare order those form a suffix.
func lowerBoundEpoch(b []locEntry, e int64) int {
	return sort.Search(len(b), func(i int) bool { return b[i].tm.Epoch >= e })
}

// segEnd returns the end of the epoch segment starting at i: the index of
// the first entry whose epoch differs from b[i]'s.
func segEnd(b []locEntry, i int) int {
	e := b[i].tm.Epoch
	return i + sort.Search(len(b)-i, func(k int) bool { return b[i+k].tm.Epoch > e })
}

// insertTime adds (tm, e) to location bucket li, keeping Compare order.
func (t *Tracker) insertTime(li int, tm ts.Timestamp, e *entry) {
	b := t.locTimes[li]
	i := sort.Search(len(b), func(i int) bool { return tm.Compare(b[i].tm) < 0 })
	b = append(b, locEntry{})
	copy(b[i+1:], b[i:])
	b[i] = locEntry{tm: tm, e: e}
	t.locTimes[li] = b
}

// removeTime deletes tm from location bucket li.
func (t *Tracker) removeTime(li int, tm ts.Timestamp) {
	b := t.locTimes[li]
	i := sort.Search(len(b), func(i int) bool { return tm.Compare(b[i].tm) <= 0 })
	if i >= len(b) || b[i].tm != tm {
		panic(fmt.Sprintf("progress: active time %v missing from location index", tm))
	}
	t.locTimes[li] = append(b[:i], b[i+1:]...)
}

// prefixCut returns the end of the prefix of segment b[i:j) (one epoch, one
// depth, counter-lex order) whose members could-result-in u: for each path
// summary the satisfying set is a prefix (AppliedLessEq is monotone in the
// counter order), and the union of prefixes is the longest of them.
func prefixCut(b []locEntry, i, j int, ss *ts.SummarySet, u ts.Timestamp) int {
	cut := i
	for _, s := range ss.Elements() {
		c := i + sort.Search(j-i, func(k int) bool { return !s.AppliedLessEq(b[i+k].tm, u) })
		if c > cut {
			cut = c
		}
	}
	return cut
}

// countPrecursors returns the number of active pointstamps that
// could-result-in time u at the location with dense index pli. The caller
// must ensure u itself is not indexed (activate counts before inserting).
func (t *Tracker) countPrecursors(pli int, u ts.Timestamp) int64 {
	var n int64
	for _, r := range t.reachTo[pli] {
		b := t.locTimes[r.li]
		// Summaries preserve the epoch: no later-epoch precursors.
		for i := 0; i < len(b) && b[i].tm.Epoch <= u.Epoch; {
			j := segEnd(b, i)
			n += int64(prefixCut(b, i, j, r.ss, u) - i)
			i = j
		}
	}
	return n
}

// forEachSuccessor calls f for every indexed active pointstamp that time u
// at location index pli could-result-in. Within each reachable bucket the
// candidates form a suffix of each epoch segment at or after u's epoch: the
// image of u under each applicable summary is a fixed timestamp, and the
// times at or above it in the segment's counter-lex order are contiguous.
func (t *Tracker) forEachSuccessor(pli int, u ts.Timestamp, f func(tm ts.Timestamp, loc graph.Location, qe *entry)) {
	for _, r := range t.reachFrom[pli] {
		b := t.locTimes[r.li]
		if len(b) == 0 {
			continue
		}
		var applied []ts.Timestamp
		for _, s := range r.ss.Elements() {
			if s.Truncate <= u.Depth {
				applied = append(applied, s.Apply(u))
			}
		}
		if len(applied) == 0 {
			continue
		}
		for i := lowerBoundEpoch(b, u.Epoch); i < len(b); {
			j := segEnd(b, i)
			start := j
			for _, v := range applied {
				// Union of suffixes with a common end is a suffix: take the
				// earliest start over the applied images.
				c := i + sort.Search(j-i, func(k int) bool { return v.LessEq(b[i+k].tm) })
				if c < start {
					start = c
				}
			}
			for k := start; k < j; k++ {
				f(b[k].tm, r.loc, b[k].e)
			}
			i = j
		}
	}
}

// activate initializes p's precursor count to the number of existing
// active pointstamps that could-result-in p, and increments the precursor
// count of any active pointstamp p could-result-in.
func (t *Tracker) activate(p Pointstamp, e *entry) {
	t.active++
	t.dirty = true
	t.gen++
	pli := t.g.LocIndex(p.Loc)
	e.prec = t.countPrecursors(pli, p.Time)
	t.forEachSuccessor(pli, p.Time, func(_ ts.Timestamp, _ graph.Location, qe *entry) {
		qe.prec++
	})
	// Insert p last so neither pass sees it as its own precursor.
	t.insertTime(pli, p.Time, e)
}

// deactivate decrements the precursor count of every active pointstamp p
// could-result-in.
func (t *Tracker) deactivate(p Pointstamp, e *entry) {
	t.active--
	t.dirty = true
	t.gen++
	pli := t.g.LocIndex(p.Loc)
	// Remove p first so the pass does not see it as its own successor.
	t.removeTime(pli, p.Time)
	t.forEachSuccessor(pli, p.Time, func(tm ts.Timestamp, loc graph.Location, qe *entry) {
		qe.prec--
		if qe.prec < 0 {
			panic(fmt.Sprintf("progress: precursor count of %v went negative", Pointstamp{Time: tm, Loc: loc}))
		}
	})
	// p's own precursor count is recomputed on reactivation.
	e.prec = 0
}

// InFrontier reports whether p is active with no active precursors, i.e.
// a notification at p may be delivered (§2.3).
func (t *Tracker) InFrontier(p Pointstamp) bool {
	e := t.entries[p]
	return e != nil && e.occ > 0 && e.prec == 0
}

// Frontier returns the active pointstamps with zero precursor count, in
// deterministic order. The result is rebuilt only after an activation or
// deactivation; unchanged frontiers are served from the cache.
func (t *Tracker) Frontier() []Pointstamp {
	if t.dirty {
		t.frontier = t.frontier[:0]
		for li, b := range t.locTimes {
			loc := t.g.LocOfIndex(li)
			for _, le := range b {
				if le.e.prec == 0 {
					t.frontier = append(t.frontier, Pointstamp{Time: le.tm, Loc: loc})
				}
			}
		}
		sort.Slice(t.frontier, func(i, j int) bool { return t.frontier[i].Less(t.frontier[j]) })
		t.dirty = false
	}
	if len(t.frontier) == 0 {
		return nil
	}
	return append([]Pointstamp(nil), t.frontier...)
}

// Active returns the number of active pointstamps.
func (t *Tracker) Active() int { return t.active }

// Gen returns a counter that changes whenever the set of active pointstamps
// changes (any activation or deactivation). Observers that derive state from
// the frontier — the tracer's frontier-movement hook — compare generations
// to skip recomputation when nothing moved.
func (t *Tracker) Gen() uint64 { return t.gen }

// Empty reports whether no pointstamp is active: every event in the
// computation (as seen by this view) has drained.
func (t *Tracker) Empty() bool { return t.active == 0 }

// Occurrence returns the net occurrence count of p.
func (t *Tracker) Occurrence(p Pointstamp) int64 {
	if e := t.entries[p]; e != nil {
		return e.occ
	}
	return 0
}

// SomePrecursorOf reports whether any active pointstamp (other than p
// itself) could-result-in p. Unlike InFrontier it does not require p to be
// active; the runtime uses it to decide whether a time is "complete" at a
// location even when no notification was requested there. The walk visits
// only locations that can reach p's, binary-searches each epoch segment's
// precursor prefix, and corrects for p's own presence in its bucket, so
// probe checks against mostly-later work are near-constant time.
func (t *Tracker) SomePrecursorOf(p Pointstamp) bool {
	pli := t.g.LocIndex(p.Loc)
	for _, r := range t.reachTo[pli] {
		b := t.locTimes[r.li]
		for i := 0; i < len(b) && b[i].tm.Epoch <= p.Time.Epoch; {
			j := segEnd(b, i)
			cut := prefixCut(b, i, j, r.ss, p.Time)
			n := cut - i
			if n > 0 && r.li == pli {
				// p itself, when active, always sits inside its own
				// segment's prefix (the identity summary maps p to p).
				pos := i + sort.Search(j-i, func(k int) bool { return p.Time.Compare(b[i+k].tm) <= 0 })
				if pos < cut && b[pos].tm == p.Time {
					n--
				}
			}
			if n > 0 {
				return true
			}
			i = j
		}
	}
	return false
}

// CheckInvariants recomputes every precursor count from scratch and panics
// on divergence, and verifies the per-location index agrees with the entry
// map. Tests and the runtime's debug mode call this; it is O(n²) in the
// number of tracked pointstamps.
func (t *Tracker) CheckInvariants() {
	for p, e := range t.entries {
		if e.occ <= 0 {
			continue
		}
		var want int64
		for q, qe := range t.entries {
			if qe.occ > 0 && q != p && t.couldResultIn(q, p) {
				want++
			}
		}
		if e.prec != want {
			panic(fmt.Sprintf("progress: %v precursor count %d, recomputed %d", p, e.prec, want))
		}
	}
	indexed := 0
	for li, b := range t.locTimes {
		loc := t.g.LocOfIndex(li)
		for i, le := range b {
			if i > 0 && b[i-1].tm.Compare(le.tm) >= 0 {
				panic(fmt.Sprintf("progress: location %v bucket out of order at %v", loc, le.tm))
			}
			p := Pointstamp{Time: le.tm, Loc: loc}
			if e := t.entries[p]; e == nil || e.occ <= 0 || e != le.e {
				panic(fmt.Sprintf("progress: stale index entry for %v", p))
			}
			indexed++
		}
	}
	if indexed != t.active {
		panic(fmt.Sprintf("progress: location index holds %d active pointstamps, tracker %d", indexed, t.active))
	}
}
