// Package progress implements Naiad's progress tracking (§2.3, §3.3): the
// could-result-in order over pointstamps, occurrence and precursor counts,
// frontier maintenance, and the building blocks of the distributed protocol
// (combining buffers, accumulators, and traffic statistics).
//
// The Tracker here is the "local view" each worker maintains: occurrence
// counts are updated only by applying broadcast (pointstamp, δ) updates, so
// counts can be transiently negative when a retirement from one worker
// overtakes the corresponding creation from another. A pointstamp is active
// while its net count is positive; the FIFO-per-link, positives-first
// discipline of the protocol guarantees that treating non-positive counts
// as inactive never lets a local frontier advance past the global frontier.
package progress

import (
	"fmt"
	"sort"

	"naiad/internal/graph"
	ts "naiad/internal/timestamp"
)

// Pointstamp pairs a timestamp with a location (stage or connector) in the
// logical graph, as §2.3 defines. Naiad projects physical pointstamps onto
// the logical graph (§3.1); all tracking here is in logical terms.
type Pointstamp struct {
	Time ts.Timestamp
	Loc  graph.Location
}

// String renders the pointstamp.
func (p Pointstamp) String() string {
	return fmt.Sprintf("%v@loc%d", p.Time, p.Loc)
}

// Less orders pointstamps deterministically (time-major), for stable
// iteration and for the positives-first flush ordering.
func (p Pointstamp) Less(q Pointstamp) bool {
	if c := p.Time.Compare(q.Time); c != 0 {
		return c < 0
	}
	return p.Loc < q.Loc
}

// Update is one entry of the progress protocol: add D to the occurrence
// count of P.
type Update struct {
	P Pointstamp
	D int64
}

// EncodedSize returns the number of bytes the update occupies on the wire:
// 4 (location) + 8 (epoch) + 1 (depth) + 8·depth (counters) + 8 (delta).
// This mirrors the codec used by the transport layer and feeds the traffic
// accounting of Figure 6c.
func (u Update) EncodedSize() int {
	return 4 + 8 + 1 + 8*int(u.P.Time.Depth) + 8
}

// SortUpdates orders a batch positives-first (the safety requirement of
// §3.3: "positive values must be sent before negative values"), with a
// deterministic pointstamp order within each sign class.
func SortUpdates(us []Update) {
	sort.Slice(us, func(i, j int) bool {
		pi, pj := us[i].D > 0, us[j].D > 0
		if pi != pj {
			return pi
		}
		return us[i].P.Less(us[j].P)
	})
}

// Buffer accumulates progress updates, combining entries with the same
// pointstamp by summing their deltas (§3.3). Fully cancelled entries
// vanish. Buffers are the unit of accumulation at every protocol tier:
// worker-local, process-level, and cluster-level.
type Buffer struct {
	m map[Pointstamp]int64
}

// NewBuffer returns an empty buffer.
func NewBuffer() *Buffer {
	return &Buffer{m: make(map[Pointstamp]int64)}
}

// Add accumulates delta onto p's pending update.
func (b *Buffer) Add(p Pointstamp, delta int64) {
	if delta == 0 {
		return
	}
	next := b.m[p] + delta
	if next == 0 {
		delete(b.m, p)
	} else {
		b.m[p] = next
	}
}

// AddAll accumulates a batch of updates.
func (b *Buffer) AddAll(us []Update) {
	for _, u := range us {
		b.Add(u.P, u.D)
	}
}

// Empty reports whether nothing is pending.
func (b *Buffer) Empty() bool { return len(b.m) == 0 }

// Len returns the number of distinct pending pointstamps.
func (b *Buffer) Len() int { return len(b.m) }

// Drain removes and returns all pending updates, positives first.
func (b *Buffer) Drain() []Update {
	if len(b.m) == 0 {
		return nil
	}
	us := make([]Update, 0, len(b.m))
	for p, d := range b.m {
		us = append(us, Update{P: p, D: d})
	}
	clear(b.m)
	SortUpdates(us)
	return us
}
