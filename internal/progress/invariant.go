package progress

import (
	"fmt"
	"sync"

	"naiad/internal/graph"
)

// SafetyMonitor is the always-on invariant checker for the distributed
// progress protocol: it promotes the model-level safety property that
// safety_sim_test.go checks in simulation to an assertion on the real
// runtime.
//
// The monitor maintains the ground-truth multiset of outstanding events:
// every worker reports each occurrence-count update at the instant it is
// *posted* (creation or retirement time, before any batching, routing, or
// delivery delay), so the truth is exact chronology, unaffected by the
// transport. Against that truth it checks, from the paper's companion
// proof [Abadi et al.]:
//
//  1. No local frontier ever runs ahead of the global frontier: a
//     pointstamp a worker's view considers deliverable must have no
//     outstanding ground-truth precursor (CheckFrontier, CheckDeliverable).
//  2. A worker's view never drains before the cluster does: local
//     emptiness is the runtime's termination test, so it must imply
//     global emptiness (CheckDrained).
//  3. Ground-truth occurrence counts never go negative: an event cannot
//     be retired before it was created (Post). Local views may go
//     transiently negative (see docs/protocol.md); the truth may not.
//
// All three hold under arbitrary per-link delays as long as links are
// FIFO and positives precede negatives; a transport that breaks FIFO
// (transport.Chaos with ReorderProb) makes the monitor fail loudly, which
// is how the negative tests verify the checks have teeth.
//
// Check methods return a descriptive error on violation and record the
// first one; the runtime turns it into a computation failure.
type SafetyMonitor struct {
	g *graph.Graph

	mu    sync.Mutex
	truth map[Pointstamp]int64
	err   error
}

// NewSafetyMonitor returns a monitor over the frozen logical graph.
func NewSafetyMonitor(g *graph.Graph) *SafetyMonitor {
	if !g.Frozen() {
		panic("progress: safety monitor requires a frozen graph")
	}
	return &SafetyMonitor{g: g, truth: make(map[Pointstamp]int64)}
}

// Seed installs an initial ground-truth occurrence (the input pointstamps
// installed directly into every tracker before the protocol runs).
func (m *SafetyMonitor) Seed(p Pointstamp, n int64) {
	m.mu.Lock()
	m.truth[p] += n
	m.mu.Unlock()
}

// Post records one occurrence-count update at its chronological source.
// It must be called when the owning worker posts the update, before the
// update enters any buffer or link.
func (m *SafetyMonitor) Post(p Pointstamp, delta int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.truth[p] + delta
	if n == 0 {
		delete(m.truth, p)
	} else {
		m.truth[p] = n
	}
	if n < 0 {
		return m.fail(fmt.Errorf("progress: safety violation: ground-truth occurrence of %v went negative (%d): an event was retired before it was created", p, n))
	}
	return nil
}

// CheckFrontier verifies that no element of a worker's local frontier has
// an outstanding ground-truth precursor. Call it after the worker applies
// a progress batch.
func (m *SafetyMonitor) CheckFrontier(worker int, frontier []Pointstamp) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range frontier {
		if q, n, ok := m.precursorOf(p); ok {
			return m.fail(fmt.Errorf("progress: safety violation: worker %d's frontier contains %v while ground truth still holds %d event(s) at %v which could-result-in it: local view ran ahead of the global frontier", worker, p, n, q))
		}
	}
	return nil
}

// CheckDeliverable verifies that a notification the worker's local view
// considers deliverable at p really has no outstanding precursor. Unlike
// CheckFrontier it covers guarantee-only (purge) notifications, whose
// pointstamps hold no occurrence and so never appear in a frontier.
func (m *SafetyMonitor) CheckDeliverable(worker int, p Pointstamp) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if q, n, ok := m.precursorOf(p); ok {
		return m.fail(fmt.Errorf("progress: safety violation: worker %d would deliver a notification at %v while ground truth still holds %d event(s) at %v which could-result-in it", worker, p, n, q))
	}
	return nil
}

// CheckDrained verifies the termination test's soundness: a worker whose
// local view is empty may shut down only if the cluster really has
// drained. Call it when a worker decides to terminate.
func (m *SafetyMonitor) CheckDrained(worker int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for q, n := range m.truth {
		if n > 0 {
			return m.fail(fmt.Errorf("progress: safety violation: worker %d's view drained while ground truth still holds %d event(s) at %v: premature termination", worker, n, q))
		}
	}
	return nil
}

// Err returns the first recorded violation, if any.
func (m *SafetyMonitor) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// precursorOf scans the truth for an outstanding event that could-result-
// in p. Caller holds m.mu.
func (m *SafetyMonitor) precursorOf(p Pointstamp) (Pointstamp, int64, bool) {
	for q, n := range m.truth {
		if n > 0 && q != p && m.g.CouldResultIn(q.Time, q.Loc, p.Time, p.Loc) {
			return q, n, true
		}
	}
	return Pointstamp{}, 0, false
}

// fail records the first violation. Caller holds m.mu.
func (m *SafetyMonitor) fail(err error) error {
	if m.err == nil {
		m.err = err
	}
	return err
}
