package progress

import (
	"strings"
	"testing"

	"naiad/internal/graph"
	ts "naiad/internal/timestamp"
)

// TestMonitorCleanRun walks the monitor through a correct event history:
// create-before-retire, frontier checks against the truth — no violations.
func TestMonitorCleanRun(t *testing.T) {
	g, s := loopGraph(t)
	m := NewSafetyMonitor(g)
	in := Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(s["in"])}
	downstream := Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(s["out"])}
	m.Seed(in, 1)

	// While the input is outstanding, a frontier or notification at a
	// downstream stage would run ahead of the global frontier.
	if err := m.CheckFrontier(0, []Pointstamp{in}); err != nil {
		t.Fatalf("input in its own frontier flagged: %v", err)
	}
	if err := m.CheckDeliverable(0, in); err != nil {
		t.Fatalf("input notification flagged: %v", err)
	}

	// Retire the input after spawning a successor, then drain.
	if err := m.Post(downstream, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Post(in, -1); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckFrontier(1, []Pointstamp{downstream}); err != nil {
		t.Fatalf("sole outstanding event flagged: %v", err)
	}
	if err := m.Post(downstream, -1); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckDrained(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Err(); err != nil {
		t.Fatalf("clean run recorded a violation: %v", err)
	}
}

// TestMonitorCatchesFrontierAhead: a local frontier containing a
// pointstamp with an outstanding ground-truth precursor is the safety
// violation FIFO-breaking transports cause.
func TestMonitorCatchesFrontierAhead(t *testing.T) {
	g, s := loopGraph(t)
	m := NewSafetyMonitor(g)
	m.Seed(Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(s["in"])}, 1)
	ahead := Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(s["out"])}
	err := m.CheckFrontier(2, []Pointstamp{ahead})
	if err == nil || !strings.Contains(err.Error(), "ran ahead") {
		t.Fatalf("violation not caught: %v", err)
	}
	if m.Err() == nil {
		t.Fatal("violation not recorded")
	}
}

func TestMonitorCatchesEarlyNotification(t *testing.T) {
	g, s := loopGraph(t)
	m := NewSafetyMonitor(g)
	m.Seed(Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(s["in"])}, 1)
	err := m.CheckDeliverable(1, Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(s["out"])})
	if err == nil || !strings.Contains(err.Error(), "would deliver") {
		t.Fatalf("early notification not caught: %v", err)
	}
}

func TestMonitorCatchesNegativeTruth(t *testing.T) {
	g, s := loopGraph(t)
	m := NewSafetyMonitor(g)
	err := m.Post(Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(s["out"])}, -1)
	if err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("retire-before-create not caught: %v", err)
	}
}

func TestMonitorCatchesPrematureDrain(t *testing.T) {
	g, s := loopGraph(t)
	m := NewSafetyMonitor(g)
	m.Seed(Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(s["in"])}, 1)
	err := m.CheckDrained(0)
	if err == nil || !strings.Contains(err.Error(), "premature termination") {
		t.Fatalf("premature drain not caught: %v", err)
	}
}

// TestMonitorRecordsFirstViolation: Err is sticky on the first failure.
func TestMonitorRecordsFirstViolation(t *testing.T) {
	g, s := loopGraph(t)
	m := NewSafetyMonitor(g)
	m.Seed(Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(s["in"])}, 1)
	first := m.CheckDrained(0)
	second := m.CheckDrained(1)
	if first == nil || second == nil {
		t.Fatal("violations not reported")
	}
	if m.Err() != first {
		t.Fatalf("Err() = %v, want the first violation %v", m.Err(), first)
	}
}

func TestMonitorRequiresFrozenGraph(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unfrozen graph")
		}
	}()
	NewSafetyMonitor(graph.New())
}

// TestMonitorLoopTimes: within a loop, an earlier iteration's event is a
// precursor of a later iteration at the same location.
func TestMonitorLoopTimes(t *testing.T) {
	g, s := loopGraph(t)
	m := NewSafetyMonitor(g)
	bodyLoc := graph.StageLoc(s["B"])
	iter0 := Pointstamp{Time: ts.Root(0).PushLoop(), Loc: bodyLoc}
	iter2 := Pointstamp{Time: ts.Root(0).PushLoop().Tick().Tick(), Loc: bodyLoc}
	m.Seed(iter0, 1)
	if err := m.CheckFrontier(0, []Pointstamp{iter2}); err == nil {
		t.Fatal("later iteration in frontier despite outstanding earlier iteration")
	}
	if err := m.Post(iter0, -1); err != nil {
		t.Fatal(err)
	}
	m.Seed(iter2, 1)
	if err := m.CheckFrontier(0, []Pointstamp{iter2}); err != nil {
		t.Fatalf("frontier at the only outstanding event flagged: %v", err)
	}
}
