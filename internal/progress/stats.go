package progress

import (
	"sync"
	"sync/atomic"
)

// Stats counts progress-protocol traffic for the Figure 6c experiment.
// Only traffic that crosses a process boundary is counted: intra-process
// delivery is shared memory in Naiad and free here too. All counters are
// safe for concurrent use.
//
// Counting paths take the read lock, so concurrent counters never block
// each other; Reset and Snapshot take the write lock, which keeps them
// atomic with respect to every multi-counter count — a Reset can neither
// land between one CountRemote's message and byte increments (tearing the
// ratio between counters) nor be observed half-applied by a Snapshot.
type Stats struct {
	mu             sync.RWMutex
	remoteMessages atomic.Int64
	remoteBytes    atomic.Int64
	updatesSent    atomic.Int64
	flushes        atomic.Int64
}

// StatsSnapshot is a mutually consistent reading of all counters.
type StatsSnapshot struct {
	RemoteMessages int64
	RemoteBytes    int64
	UpdatesSent    int64
	Flushes        int64
}

// CountRemote records the delivery of a batch across a process boundary.
func (s *Stats) CountRemote(batch []Update) {
	if s == nil || len(batch) == 0 {
		return
	}
	var bytes int64
	for _, u := range batch {
		bytes += int64(u.EncodedSize())
	}
	s.mu.RLock()
	s.remoteMessages.Add(1)
	s.remoteBytes.Add(bytes)
	s.updatesSent.Add(int64(len(batch)))
	s.mu.RUnlock()
}

// CountFlush records one worker flush (for diagnostics).
func (s *Stats) CountFlush() {
	if s == nil {
		return
	}
	s.mu.RLock()
	s.flushes.Add(1)
	s.mu.RUnlock()
}

// RemoteMessages returns the number of remote protocol messages sent.
func (s *Stats) RemoteMessages() int64 { return s.remoteMessages.Load() }

// RemoteBytes returns the number of remote protocol bytes sent.
func (s *Stats) RemoteBytes() int64 { return s.remoteBytes.Load() }

// UpdatesSent returns the total update entries crossing process boundaries.
func (s *Stats) UpdatesSent() int64 { return s.updatesSent.Load() }

// Flushes returns the number of worker flushes.
func (s *Stats) Flushes() int64 { return s.flushes.Load() }

// Snapshot returns a consistent view of all counters: no count is ever
// split across the snapshot boundary.
func (s *Stats) Snapshot() StatsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StatsSnapshot{
		RemoteMessages: s.remoteMessages.Load(),
		RemoteBytes:    s.remoteBytes.Load(),
		UpdatesSent:    s.updatesSent.Load(),
		Flushes:        s.flushes.Load(),
	}
}

// Reset zeroes all counters atomically with respect to concurrent counts.
func (s *Stats) Reset() {
	s.mu.Lock()
	s.remoteMessages.Store(0)
	s.remoteBytes.Store(0)
	s.updatesSent.Store(0)
	s.flushes.Store(0)
	s.mu.Unlock()
}
