package progress

import "sync/atomic"

// Stats counts progress-protocol traffic for the Figure 6c experiment.
// Only traffic that crosses a process boundary is counted: intra-process
// delivery is shared memory in Naiad and free here too. All counters are
// safe for concurrent use.
type Stats struct {
	remoteMessages atomic.Int64
	remoteBytes    atomic.Int64
	updatesSent    atomic.Int64
	flushes        atomic.Int64
}

// CountRemote records the delivery of a batch across a process boundary.
func (s *Stats) CountRemote(batch []Update) {
	if s == nil || len(batch) == 0 {
		return
	}
	var bytes int64
	for _, u := range batch {
		bytes += int64(u.EncodedSize())
	}
	s.remoteMessages.Add(1)
	s.remoteBytes.Add(bytes)
	s.updatesSent.Add(int64(len(batch)))
}

// CountFlush records one worker flush (for diagnostics).
func (s *Stats) CountFlush() {
	if s == nil {
		return
	}
	s.flushes.Add(1)
}

// RemoteMessages returns the number of remote protocol messages sent.
func (s *Stats) RemoteMessages() int64 { return s.remoteMessages.Load() }

// RemoteBytes returns the number of remote protocol bytes sent.
func (s *Stats) RemoteBytes() int64 { return s.remoteBytes.Load() }

// UpdatesSent returns the total update entries crossing process boundaries.
func (s *Stats) UpdatesSent() int64 { return s.updatesSent.Load() }

// Flushes returns the number of worker flushes.
func (s *Stats) Flushes() int64 { return s.flushes.Load() }

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.remoteMessages.Store(0)
	s.remoteBytes.Store(0)
	s.updatesSent.Store(0)
	s.flushes.Store(0)
}
