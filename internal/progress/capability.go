package progress

import (
	"fmt"
	"sort"
	"sync"

	"naiad/internal/graph"
	ts "naiad/internal/timestamp"
)

// This file implements the capability layer of the progress protocol: the
// explicit timestamp tokens that PAPERS.md's "Timestamp tokens" design
// (Lattuada & McSherry) converged on, layered over the occurrence-count
// protocol of §3.3. A Capability is the right to produce events — messages
// or notifications — at or after a pointstamp. Holding one keeps the
// pointstamp occupied in every tracker; the frontier falls out of token
// accounting:
//
//	Mint      +1 at p          (a new token comes into existence)
//	Clone     +1 at p          (two holders, two tokens)
//	Downgrade +1 at t, -1 at p (the token moves forward in time)
//	Drop      -1 at p          (the token is retired)
//
// Every mint is eventually matched by exactly one drop (possibly after any
// number of downgrades), so the net occurrence contribution of a token's
// lifetime is zero. A token that is neither dropped nor downgraded away is
// a permanent frontier stall — the leak AuditCaps exists to catch.
//
// A CapSet is one holder's book of live tokens. It posts its occurrence
// deltas through a sink callback (the runtime wires this to the worker's
// progress-broadcast path), and it can independently compute the frontier
// implied by its live tokens, which the differential battery compares
// against the indexed Tracker and the ReferenceTracker.

// Capability is one live timestamp token. Capabilities are created through
// a CapSet and are not safe for concurrent use; the runtime confines each
// to its owning worker's loop.
type Capability struct {
	set     *CapSet
	p       Pointstamp
	seq     uint64
	dropped bool
}

// Pointstamp returns the token's current pointstamp.
func (c *Capability) Pointstamp() Pointstamp { return c.p }

// Time returns the token's current timestamp.
func (c *Capability) Time() ts.Timestamp { return c.p.Time }

// Seq returns the owner-assigned sequence number, used by the runtime to
// identify the token across checkpoint and replay.
func (c *Capability) Seq() uint64 { return c.seq }

// SetSeq assigns the owner's sequence number.
func (c *Capability) SetSeq(n uint64) { c.seq = n }

// Dropped reports whether the token has been retired.
func (c *Capability) Dropped() bool { return c.dropped }

// Clone mints a second token at the same pointstamp (+1).
func (c *Capability) Clone() *Capability {
	if c.dropped {
		panic(fmt.Sprintf("progress: Clone of dropped capability %v", c.p))
	}
	return c.set.Mint(c.p)
}

// Downgrade moves the token forward to time t at the same location,
// posting +1 at the new pointstamp before -1 at the old one so no tracker
// ever observes a transient frontier advance. t must be at or after the
// current time (and at the same loop depth); downgrading a token is how a
// holder relinquishes the right to act at earlier times without giving up
// the later ones.
func (c *Capability) Downgrade(t ts.Timestamp) {
	if c.dropped {
		panic(fmt.Sprintf("progress: Downgrade of dropped capability %v", c.p))
	}
	if t == c.p.Time {
		return
	}
	if t.Depth != c.p.Time.Depth || !c.p.Time.LessEq(t) {
		panic(fmt.Sprintf("progress: cannot downgrade capability at %v to %v (not at-or-after)", c.p.Time, t))
	}
	old := c.p
	c.p.Time = t
	c.set.post(c.p, 1)
	c.set.post(old, -1)
}

// Drop retires the token (-1). Dropping twice is a bookkeeping bug and
// panics; asynchronous paths that may race a replayed drop use TryDrop.
func (c *Capability) Drop() {
	if !c.TryDrop() {
		panic(fmt.Sprintf("progress: double Drop of capability %v", c.p))
	}
}

// TryDrop retires the token if it is still live, reporting whether this
// call retired it. Idempotent: the runtime's replayed and asynchronous
// drop paths both funnel here, and exactly one of them wins.
func (c *Capability) TryDrop() bool {
	if c.dropped {
		return false
	}
	c.dropped = true
	delete(c.set.live, c)
	c.set.post(c.p, -1)
	return true
}

// CapSet is one holder's set of live capabilities. Occurrence deltas are
// posted through the sink; the graph (optional) enables Frontier. A CapSet
// is not safe for concurrent use.
type CapSet struct {
	label string
	g     *graph.Graph
	sink  func(Pointstamp, int64)
	live  map[*Capability]struct{}
	audit *auditState
}

// NewCapSet returns an empty capability set. label names the holder in
// leak reports; g may be nil when Frontier is not needed; sink receives
// every occurrence delta the set's tokens generate (it must not be nil).
// If a leak audit is installed (AuditCaps), the set binds to it now.
func NewCapSet(label string, g *graph.Graph, sink func(Pointstamp, int64)) *CapSet {
	if sink == nil {
		panic("progress: NewCapSet requires a sink")
	}
	cs := &CapSet{label: label, g: g, sink: sink, live: make(map[*Capability]struct{})}
	auditMu.Lock()
	cs.audit = auditCur
	auditMu.Unlock()
	return cs
}

func (cs *CapSet) post(p Pointstamp, d int64) { cs.sink(p, d) }

// Mint creates a live token at p and posts its +1.
func (cs *CapSet) Mint(p Pointstamp) *Capability {
	c := &Capability{set: cs, p: p}
	cs.live[c] = struct{}{}
	cs.post(p, 1)
	return c
}

// MintSeeded creates a live token at p without posting: the occurrence it
// stands for was already established out of band (input seeding at
// construction, re-minting held tokens during replay, where the pre-crash
// +1 already reached every tracker). The token's eventual Drop or
// Downgrade posts normally.
func (cs *CapSet) MintSeeded(p Pointstamp) *Capability {
	c := &Capability{set: cs, p: p}
	cs.live[c] = struct{}{}
	return c
}

// Reset discards every live token without posting. The runtime uses it
// when rebuilding a crashed worker's state: the replacement trackers are
// rebuilt from a snapshot, so the dead incarnation's book is void.
func (cs *CapSet) Reset() {
	clear(cs.live)
}

// LiveCount returns the number of live tokens.
func (cs *CapSet) LiveCount() int { return len(cs.live) }

// Live returns the live tokens' pointstamps in deterministic order
// (duplicates preserved).
func (cs *CapSet) Live() []Pointstamp {
	out := make([]Pointstamp, 0, len(cs.live))
	for c := range cs.live {
		out = append(out, c.p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Frontier returns the minimal antichain of the live tokens' pointstamps
// under could-result-in: the frontier this set alone implies. When every
// tracker update in a computation is token-derived, this agrees with
// Tracker.Frontier and ReferenceTracker.Frontier — the third view the
// differential battery compares. Requires a graph; O(n²) in live tokens,
// intended for tests and audits, not hot paths.
func (cs *CapSet) Frontier() []Pointstamp {
	if cs.g == nil {
		panic("progress: CapSet.Frontier requires a graph")
	}
	distinct := make(map[Pointstamp]struct{}, len(cs.live))
	for c := range cs.live {
		distinct[c.p] = struct{}{}
	}
	var out []Pointstamp
	for p := range distinct {
		minimal := true
		for q := range distinct {
			if q != p && cs.g.CouldResultIn(q.Time, q.Loc, p.Time, p.Loc) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// ReportLeaks records any still-live tokens with the installed leak audit.
// The runtime calls it at *clean* shutdown only — a computation torn down
// mid-flight (crash injection, abandoned test) legitimately holds tokens,
// so aborted runs never produce false positives. Without an installed
// audit this is a no-op.
func (cs *CapSet) ReportLeaks() {
	if cs.audit == nil || len(cs.live) == 0 {
		return
	}
	cs.audit.record(cs.label, cs.Live())
}

// --- leak audit -----------------------------------------------------------

// TB is the subset of testing.TB the audit hook needs, declared locally so
// the package does not import testing.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

type auditState struct {
	mu    sync.Mutex
	leaks []string
}

func (a *auditState) record(label string, ps []Pointstamp) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.leaks = append(a.leaks, fmt.Sprintf("%s: %d live capability(ies) at clean shutdown: %v", label, len(ps), ps))
}

var (
	auditMu  sync.Mutex
	auditCur *auditState
)

// AuditCaps installs the capability-leak audit for the duration of a test:
// every CapSet created while it is installed binds to it, and any such set
// that still holds live tokens when its owner shuts down cleanly fails the
// test. A leaked capability is a permanent frontier stall — the class of
// bug that otherwise only shows up as a hung probe. Audited tests must not
// run in parallel with each other (the hook is installed globally).
func AuditCaps(tb TB) {
	tb.Helper()
	st := &auditState{}
	auditMu.Lock()
	prev := auditCur
	auditCur = st
	auditMu.Unlock()
	tb.Cleanup(func() {
		auditMu.Lock()
		auditCur = prev
		auditMu.Unlock()
		st.mu.Lock()
		defer st.mu.Unlock()
		for _, l := range st.leaks {
			tb.Errorf("capability leak: %s", l)
		}
	})
}
