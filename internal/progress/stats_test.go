package progress

import (
	"sync"
	"testing"

	"naiad/internal/graph"
	ts "naiad/internal/timestamp"
)

// TestStatsSnapshotConsistentUnderReset hammers CountRemote from several
// goroutines while another resets and a third snapshots. Every batch adds
// one message, two updates, and a fixed byte count in one locked section,
// so every snapshot — no matter how it interleaves with counting and
// resetting — must observe the exact per-batch ratios. The pre-fix Reset
// zeroed the counters one at a time, which let a snapshot see, e.g., the
// message count from after a reset paired with the byte count from before
// it. Run under -race this also proves the locking discipline.
func TestStatsSnapshotConsistentUnderReset(t *testing.T) {
	p := Pointstamp{Time: ts.Root(3), Loc: graph.StageLoc(1)}
	batch := []Update{{P: p, D: 1}, {P: p, D: -1}}
	perBatchBytes := int64(batch[0].EncodedSize() + batch[1].EncodedSize())

	var s Stats
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s.CountRemote(batch)
					s.CountFlush()
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s.Reset()
		}
	}()
	for i := 0; i < 2000; i++ {
		snap := s.Snapshot()
		if snap.UpdatesSent != 2*snap.RemoteMessages {
			t.Errorf("torn snapshot: %d updates for %d messages", snap.UpdatesSent, snap.RemoteMessages)
			break
		}
		if snap.RemoteBytes != perBatchBytes*snap.RemoteMessages {
			t.Errorf("torn snapshot: %d bytes for %d messages (want %d per batch)",
				snap.RemoteBytes, snap.RemoteMessages, perBatchBytes)
			break
		}
	}
	close(stop)
	wg.Wait()

	// Quiesced: a final reset leaves everything zero.
	s.Reset()
	if snap := s.Snapshot(); snap != (StatsSnapshot{}) {
		t.Fatalf("after final Reset: %+v", snap)
	}
}
