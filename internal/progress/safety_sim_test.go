package progress

import (
	"math/rand"
	"testing"

	"naiad/internal/graph"
	"naiad/internal/testutil"
	ts "naiad/internal/timestamp"
)

// TestDistributedSafetyProperty is a randomized simulation of the
// distributed protocol checking the safety property the paper's companion
// proof establishes [4]: *no local frontier ever moves ahead of the global
// frontier*. Concretely: whenever a worker's local view says pointstamp p
// has no active precursor, the ground-truth set of outstanding events must
// contain no event that could-result-in p.
//
// The simulation models N workers processing events (retiring a pointstamp
// may spawn successor events along graph edges), broadcasting update
// batches over per-link FIFO channels with arbitrary delivery delays, with
// positives sorted before negatives within each batch — exactly the
// runtime's discipline. The adversary (seeded rand) chooses interleavings.
func TestDistributedSafetyProperty(t *testing.T) {
	g, stages := loopGraph(t)
	// Successor moves: from a stage location, events can spawn events on
	// outgoing connectors (with the stage's timestamp action); from a
	// connector, at its destination stage (same time or later).
	type link struct {
		from, to graph.Location
	}
	var succs []link
	for i := 0; i < g.NumStages(); i++ {
		for _, cid := range g.Outputs(graph.StageID(i)) {
			succs = append(succs, link{graph.StageLoc(graph.StageID(i)), graph.ConnLoc(cid)})
		}
	}
	for i := 0; i < g.NumConnectors(); i++ {
		c := g.Connector(graph.ConnectorID(i))
		succs = append(succs, link{graph.ConnLoc(c.ID), graph.StageLoc(c.Dst)})
	}
	succsFrom := map[graph.Location][]graph.Location{}
	for _, l := range succs {
		succsFrom[l.from] = append(succsFrom[l.from], l.to)
	}
	// Timestamp adjustment for a stage→connector hop.
	adjust := func(from graph.Location, tm ts.Timestamp) ts.Timestamp {
		if !from.IsStage() {
			return tm
		}
		switch g.Stage(from.Stage()).Role {
		case graph.RoleIngress:
			return tm.PushLoop()
		case graph.RoleEgress:
			return tm.PopLoop()
		case graph.RoleFeedback:
			return tm.Tick()
		}
		return tm
	}

	const workers = 3
	base := testutil.Seed(t)
	for trial := 0; trial < 40; trial++ {
		r := rand.New(rand.NewSource(base + int64(trial)))

		// Ground truth: outstanding events with owners.
		type event struct {
			p     Pointstamp
			owner int
		}
		var outstanding []event
		truth := map[Pointstamp]int64{}

		// Per-worker local views, seeded identically with the input
		// pointstamp — as the runtime seeds them.
		inLoc := graph.StageLoc(stages["in"])
		seed := Pointstamp{Time: ts.Root(0), Loc: inLoc}
		views := make([]*Tracker, workers)
		for w := range views {
			views[w] = NewTracker(g)
			views[w].Update(seed, 1)
		}
		outstanding = append(outstanding, event{p: seed, owner: 0})
		truth[seed]++

		// FIFO links: channel[from][to] carries update batches.
		channels := make([][][][]Update, workers)
		for i := range channels {
			channels[i] = make([][][]Update, workers)
		}

		checkSafety := func() {
			for w := 0; w < workers; w++ {
				for _, p := range views[w].Frontier() {
					for q, n := range truth {
						if n > 0 && q != p && g.CouldResultIn(q.Time, q.Loc, p.Time, p.Loc) {
							t.Fatalf("trial %d: worker %d frontier has %v but outstanding %v precedes it",
								trial, w, p, q)
						}
					}
				}
			}
		}

		for step := 0; step < 400; step++ {
			switch r.Intn(3) {
			case 0: // a worker processes one of its events
				who := r.Intn(workers)
				var mine []int
				for i, ev := range outstanding {
					if ev.owner == who {
						mine = append(mine, i)
					}
				}
				if len(mine) == 0 {
					continue
				}
				idx := mine[r.Intn(len(mine))]
				ev := outstanding[idx]
				outstanding = append(outstanding[:idx], outstanding[idx+1:]...)
				var batch []Update
				// Spawn 0..2 successors before retiring (SendBy precedes
				// completion, so positives are chronologically first).
				for k := 0; k < r.Intn(3); k++ {
					nexts := succsFrom[ev.p.Loc]
					if len(nexts) == 0 {
						continue
					}
					to := nexts[r.Intn(len(nexts))]
					np := Pointstamp{Time: adjust(ev.p.Loc, ev.p.Time), Loc: to}
					owner := r.Intn(workers)
					outstanding = append(outstanding, event{p: np, owner: owner})
					truth[np]++
					batch = append(batch, Update{P: np, D: 1})
				}
				truth[ev.p]--
				if truth[ev.p] == 0 {
					delete(truth, ev.p)
				}
				batch = append(batch, Update{P: ev.p, D: -1})
				SortUpdates(batch) // positives first
				from := ev.owner
				for to := 0; to < workers; to++ {
					cp := append([]Update(nil), batch...)
					channels[from][to] = append(channels[from][to], cp)
				}
			case 1: // deliver the oldest batch on a random non-empty link
				from, to := r.Intn(workers), r.Intn(workers)
				if len(channels[from][to]) == 0 {
					continue
				}
				batch := channels[from][to][0]
				channels[from][to] = channels[from][to][1:]
				views[to].Apply(batch)
				views[to].CheckInvariants()
			case 2:
				checkSafety()
			}
		}
		// Drain all channels and verify every view converges to truth.
		for from := 0; from < workers; from++ {
			for to := 0; to < workers; to++ {
				for _, batch := range channels[from][to] {
					views[to].Apply(batch)
				}
				channels[from][to] = nil
			}
		}
		checkSafety()
		for w := 0; w < workers; w++ {
			for q, n := range truth {
				if views[w].Occurrence(q) != n {
					t.Fatalf("trial %d: worker %d sees occ(%v)=%d, truth %d",
						trial, w, q, views[w].Occurrence(q), n)
				}
			}
			if len(truth) == 0 && !views[w].Empty() {
				t.Fatalf("trial %d: worker %d not drained", trial, w)
			}
		}
	}
}
