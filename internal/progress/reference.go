package progress

import (
	"fmt"
	"sort"

	"naiad/internal/graph"
)

// ReferenceTracker is the original scan-based progress tracker, kept as
// the correctness oracle for the indexed Tracker: activation, deactivation,
// and SomePrecursorOf do full passes over every tracked pointstamp, which
// makes the implementation small enough to audit by eye. The differential
// property and fuzz tests drive it in lockstep with Tracker and assert
// identical frontiers; it is not used on any runtime path.
type ReferenceTracker struct {
	g       *graph.Graph
	entries map[Pointstamp]*entry
	active  int
}

// NewReferenceTracker returns a reference tracker over the frozen graph.
func NewReferenceTracker(g *graph.Graph) *ReferenceTracker {
	if !g.Frozen() {
		panic("progress: tracker requires a frozen graph")
	}
	return &ReferenceTracker{g: g, entries: make(map[Pointstamp]*entry)}
}

// couldResultIn reports the strict precedence used for precursor counts.
func (t *ReferenceTracker) couldResultIn(p, q Pointstamp) bool {
	if p == q {
		return false
	}
	return t.g.CouldResultIn(p.Time, p.Loc, q.Time, q.Loc)
}

// Update adds delta to the occurrence count of p.
func (t *ReferenceTracker) Update(p Pointstamp, delta int64) {
	if delta == 0 {
		return
	}
	e := t.entries[p]
	if e == nil {
		e = &entry{}
		t.entries[p] = e
	}
	wasActive := e.occ > 0
	e.occ += delta
	isActive := e.occ > 0
	switch {
	case !wasActive && isActive:
		t.activate(p, e)
	case wasActive && !isActive:
		t.deactivate(p, e)
	}
	if e.occ == 0 && e.prec == 0 {
		delete(t.entries, p)
	}
}

// Apply applies a batch positives-first.
func (t *ReferenceTracker) Apply(us []Update) {
	for _, u := range us {
		if u.D > 0 {
			t.Update(u.P, u.D)
		}
	}
	for _, u := range us {
		if u.D < 0 {
			t.Update(u.P, u.D)
		}
	}
}

func (t *ReferenceTracker) activate(p Pointstamp, e *entry) {
	t.active++
	e.prec = 0
	for q, qe := range t.entries {
		if qe.occ <= 0 || q == p {
			continue
		}
		if t.couldResultIn(q, p) {
			e.prec++
		}
		if t.couldResultIn(p, q) {
			qe.prec++
		}
	}
}

func (t *ReferenceTracker) deactivate(p Pointstamp, e *entry) {
	t.active--
	for q, qe := range t.entries {
		if qe.occ <= 0 || q == p {
			continue
		}
		if t.couldResultIn(p, q) {
			qe.prec--
			if qe.prec < 0 {
				panic(fmt.Sprintf("progress: precursor count of %v went negative", q))
			}
		}
	}
	e.prec = 0
}

// InFrontier reports whether p is active with no active precursors.
func (t *ReferenceTracker) InFrontier(p Pointstamp) bool {
	e := t.entries[p]
	return e != nil && e.occ > 0 && e.prec == 0
}

// Frontier returns the active pointstamps with zero precursor count, in
// deterministic order.
func (t *ReferenceTracker) Frontier() []Pointstamp {
	var out []Pointstamp
	for p, e := range t.entries {
		if e.occ > 0 && e.prec == 0 {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Active returns the number of active pointstamps.
func (t *ReferenceTracker) Active() int { return t.active }

// Empty reports whether no pointstamp is active.
func (t *ReferenceTracker) Empty() bool { return t.active == 0 }

// Occurrence returns the net occurrence count of p.
func (t *ReferenceTracker) Occurrence(p Pointstamp) int64 {
	if e := t.entries[p]; e != nil {
		return e.occ
	}
	return 0
}

// SomePrecursorOf reports whether any active pointstamp other than p
// could-result-in p.
func (t *ReferenceTracker) SomePrecursorOf(p Pointstamp) bool {
	for q, qe := range t.entries {
		if qe.occ > 0 && q != p && t.couldResultIn(q, p) {
			return true
		}
	}
	return false
}

// CheckInvariants recomputes every precursor count from scratch and panics
// on divergence.
func (t *ReferenceTracker) CheckInvariants() {
	for p, e := range t.entries {
		if e.occ <= 0 {
			continue
		}
		var want int64
		for q, qe := range t.entries {
			if qe.occ > 0 && q != p && t.couldResultIn(q, p) {
				want++
			}
		}
		if e.prec != want {
			panic(fmt.Sprintf("progress: %v precursor count %d, recomputed %d", p, e.prec, want))
		}
	}
}
