package progress

import (
	"testing"

	"naiad/internal/graph"
	ts "naiad/internal/timestamp"
)

func TestPointstampLessDeterministic(t *testing.T) {
	a := Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(1)}
	b := Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(2)}
	c := Pointstamp{Time: ts.Root(1), Loc: graph.StageLoc(0)}
	if !a.Less(b) || b.Less(a) {
		t.Error("location tiebreak")
	}
	if !a.Less(c) || c.Less(a) {
		t.Error("time major")
	}
	if a.Less(a) {
		t.Error("irreflexive")
	}
}

func TestEncodedSize(t *testing.T) {
	u := Update{P: Pointstamp{Time: ts.Root(0)}, D: 1}
	if got := u.EncodedSize(); got != 4+8+1+8 {
		t.Fatalf("depth-0 size = %d", got)
	}
	u2 := Update{P: Pointstamp{Time: ts.Make(0, 1, 2)}, D: 1}
	if got := u2.EncodedSize(); got != 4+8+1+16+8 {
		t.Fatalf("depth-2 size = %d", got)
	}
}

func TestBufferCombinesAndCancels(t *testing.T) {
	b := NewBuffer()
	p := Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(0)}
	q := Pointstamp{Time: ts.Root(1), Loc: graph.StageLoc(0)}
	b.Add(p, 1)
	b.Add(p, 2)
	b.Add(q, -1)
	if b.Len() != 2 {
		t.Fatalf("len = %d", b.Len())
	}
	b.Add(p, -3) // cancels entirely
	if b.Len() != 1 || b.Empty() {
		t.Fatalf("len = %d", b.Len())
	}
	b.Add(p, 0) // no-op
	us := b.Drain()
	if len(us) != 1 || us[0] != (Update{P: q, D: -1}) {
		t.Fatalf("drain = %v", us)
	}
	if !b.Empty() || b.Drain() != nil {
		t.Fatal("drain should empty the buffer")
	}
}

func TestDrainPositivesFirst(t *testing.T) {
	b := NewBuffer()
	p := Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(0)}
	q := Pointstamp{Time: ts.Root(1), Loc: graph.StageLoc(0)}
	r := Pointstamp{Time: ts.Root(2), Loc: graph.StageLoc(0)}
	b.Add(p, -1)
	b.Add(q, 1)
	b.Add(r, -2)
	us := b.Drain()
	if len(us) != 3 || us[0].D <= 0 {
		t.Fatalf("positives must come first: %v", us)
	}
	if us[1].D > 0 || us[2].D > 0 {
		t.Fatalf("negatives after positives: %v", us)
	}
	if !us[1].P.Less(us[2].P) {
		t.Fatalf("deterministic order within sign class: %v", us)
	}
}

func TestAddAll(t *testing.T) {
	b := NewBuffer()
	p := Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(0)}
	b.AddAll([]Update{{P: p, D: 1}, {P: p, D: 1}})
	if got := b.Drain(); len(got) != 1 || got[0].D != 2 {
		t.Fatalf("AddAll combined = %v", got)
	}
}

func TestStats(t *testing.T) {
	var s Stats
	p := Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(0)}
	s.CountRemote([]Update{{P: p, D: 1}, {P: p, D: -1}})
	s.CountRemote(nil) // no-op
	s.CountFlush()
	if s.RemoteMessages() != 1 || s.UpdatesSent() != 2 {
		t.Fatalf("messages=%d updates=%d", s.RemoteMessages(), s.UpdatesSent())
	}
	if s.RemoteBytes() != 2*21 {
		t.Fatalf("bytes = %d", s.RemoteBytes())
	}
	if s.Flushes() != 1 {
		t.Fatalf("flushes = %d", s.Flushes())
	}
	s.Reset()
	if s.RemoteBytes() != 0 || s.RemoteMessages() != 0 || s.Flushes() != 0 || s.UpdatesSent() != 0 {
		t.Fatal("reset")
	}
	// nil receiver is a no-op for convenience in unwired paths.
	var nilStats *Stats
	nilStats.CountRemote([]Update{{P: p, D: 1}})
	nilStats.CountFlush()
}
