package progress

import (
	"math/rand"
	"testing"

	"naiad/internal/graph"
	"naiad/internal/testutil"
	ts "naiad/internal/timestamp"
)

// capHarness drives a CapSet whose deltas feed both the indexed tracker
// and the reference oracle, giving three independent frontier views: the
// token book's own antichain, the indexed tracker, and the scan oracle.
type capHarness struct {
	t    testing.TB
	g    *graph.Graph
	cs   *CapSet
	idx  *Tracker
	ref  *ReferenceTracker
	live []*Capability
}

func newCapHarness(t testing.TB, g *graph.Graph) *capHarness {
	h := &capHarness{t: t, g: g, idx: NewTracker(g), ref: NewReferenceTracker(g)}
	h.cs = NewCapSet("test", g, func(p Pointstamp, d int64) {
		h.idx.Update(p, d)
		h.ref.Update(p, d)
	})
	return h
}

// check asserts the three frontier views agree.
func (h *capHarness) check(ctx string) {
	h.t.Helper()
	cap_, idx, ref := h.cs.Frontier(), h.idx.Frontier(), h.ref.Frontier()
	equal := func(a, b []Pointstamp) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if !equal(cap_, idx) || !equal(idx, ref) {
		h.t.Fatalf("%s: frontier divergence\ncapability: %v\nindexed:    %v\nreference:  %v",
			ctx, cap_, idx, ref)
	}
	if h.cs.LiveCount() != h.idx.Active() || h.idx.Active() != h.ref.Active() {
		// Live tokens at the same pointstamp merge into one tracker entry,
		// so compare distinct pointstamps, not raw token counts.
		distinct := map[Pointstamp]bool{}
		for _, p := range h.cs.Live() {
			distinct[p] = true
		}
		if len(distinct) != h.idx.Active() || h.idx.Active() != h.ref.Active() {
			h.t.Fatalf("%s: %d distinct live pointstamps, indexed active %d, reference active %d",
				ctx, len(distinct), h.idx.Active(), h.ref.Active())
		}
	}
}

// step applies one schedule operation drawn from (opByte, pickByte):
// mint, clone, downgrade, or drop. universe supplies mint pointstamps and
// downgrade targets.
func (h *capHarness) step(opByte, pickByte byte, universe []Pointstamp) {
	switch {
	case len(h.live) == 0 || opByte%4 == 0:
		p := universe[int(pickByte)%len(universe)]
		h.live = append(h.live, h.cs.Mint(p))
	case opByte%4 == 1:
		c := h.live[int(pickByte)%len(h.live)]
		h.live = append(h.live, c.Clone())
	case opByte%4 == 2:
		c := h.live[int(pickByte)%len(h.live)]
		// Downgrade to a random at-or-after time at the token's location.
		var targets []ts.Timestamp
		for _, q := range universe {
			if q.Loc == c.Pointstamp().Loc && c.Time().LessEq(q.Time) {
				targets = append(targets, q.Time)
			}
		}
		if len(targets) > 0 {
			c.Downgrade(targets[int(opByte/4)%len(targets)])
		}
	default:
		i := int(pickByte) % len(h.live)
		h.live[i].Drop()
		h.live = append(h.live[:i], h.live[i+1:]...)
	}
}

func (h *capHarness) drain() {
	h.t.Helper()
	for _, c := range h.live {
		c.Drop()
	}
	h.live = nil
	if h.cs.LiveCount() != 0 || !h.idx.Empty() || !h.ref.Empty() {
		h.t.Fatalf("after dropping every capability: %d live, indexed active %d, reference active %d",
			h.cs.LiveCount(), h.idx.Active(), h.ref.Active())
	}
}

// TestCapabilityAccounting pins the delta semantics of each token
// operation against a recording sink.
func TestCapabilityAccounting(t *testing.T) {
	g := shapeGraph(t, "linear")
	var got []Update
	cs := NewCapSet("acct", g, func(p Pointstamp, d int64) {
		got = append(got, Update{P: p, D: d})
	})
	loc := graph.StageLoc(1)
	p0 := Pointstamp{Time: ts.Root(0), Loc: loc}
	p1 := Pointstamp{Time: ts.Root(1), Loc: loc}

	c := cs.Mint(p0)
	c2 := c.Clone()
	c.Downgrade(ts.Root(1))
	c.Downgrade(ts.Root(1)) // no-op: same time posts nothing
	c2.Drop()
	c.Drop()

	want := []Update{
		{P: p0, D: 1},  // mint
		{P: p0, D: 1},  // clone
		{P: p1, D: 1},  // downgrade: +new first...
		{P: p0, D: -1}, // ...then -old
		{P: p0, D: -1}, // drop clone
		{P: p1, D: -1}, // drop original
	}
	if len(got) != len(want) {
		t.Fatalf("posted %d updates, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("update[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if cs.LiveCount() != 0 {
		t.Fatalf("LiveCount = %d after dropping everything", cs.LiveCount())
	}
	if !c.Dropped() || c.TryDrop() {
		t.Fatal("TryDrop after Drop must report false")
	}
}

// TestCapabilityMisuse pins the panics: double drop, use after drop, and
// downgrading backwards in time.
func TestCapabilityMisuse(t *testing.T) {
	g := shapeGraph(t, "linear")
	sink := func(Pointstamp, int64) {}
	loc := graph.StageLoc(1)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	cs := NewCapSet("misuse", g, sink)
	c := cs.Mint(Pointstamp{Time: ts.Root(1), Loc: loc})
	mustPanic("downgrade backwards", func() { c.Downgrade(ts.Root(0)) })
	mustPanic("downgrade depth mismatch", func() { c.Downgrade(ts.Make(1, 0)) })
	c.Drop()
	mustPanic("double drop", func() { c.Drop() })
	mustPanic("clone after drop", func() { c.Clone() })
	mustPanic("downgrade after drop", func() { c.Downgrade(ts.Root(2)) })
	mustPanic("nil sink", func() { NewCapSet("nil", g, nil) })
}

// TestCapabilitySeededMint pins MintSeeded: no +1 is posted (the
// occurrence exists out of band), but the drop posts its -1 normally.
func TestCapabilitySeededMint(t *testing.T) {
	g := shapeGraph(t, "linear")
	var got []Update
	cs := NewCapSet("seeded", g, func(p Pointstamp, d int64) {
		got = append(got, Update{P: p, D: d})
	})
	p := Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(0)}
	c := cs.MintSeeded(p)
	if len(got) != 0 {
		t.Fatalf("MintSeeded posted %v", got)
	}
	if cs.LiveCount() != 1 {
		t.Fatalf("LiveCount = %d", cs.LiveCount())
	}
	c.Drop()
	if len(got) != 1 || got[0] != (Update{P: p, D: -1}) {
		t.Fatalf("drop of seeded capability posted %v", got)
	}
}

// TestCapSetReset pins Reset: live tokens vanish without posting.
func TestCapSetReset(t *testing.T) {
	g := shapeGraph(t, "linear")
	posts := 0
	cs := NewCapSet("reset", g, func(Pointstamp, int64) { posts++ })
	cs.Mint(Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(0)})
	cs.Mint(Pointstamp{Time: ts.Root(1), Loc: graph.StageLoc(1)})
	posts = 0
	cs.Reset()
	if cs.LiveCount() != 0 || posts != 0 {
		t.Fatalf("Reset left %d live tokens, posted %d updates", cs.LiveCount(), posts)
	}
}

// TestCapabilityDifferential drives randomized capability schedules —
// mint, clone, downgrade, drop — over the three graph shapes and asserts
// the capability set's own frontier, the indexed tracker, and the
// reference oracle stay in lockstep throughout.
func TestCapabilityDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(testutil.Seed(t)))
	for _, shape := range []string{"linear", "loop", "nested"} {
		t.Run(shape, func(t *testing.T) {
			g := shapeGraph(t, shape)
			universe := pointstampUniverse(g)
			for trial := 0; trial < 4; trial++ {
				h := newCapHarness(t, g)
				for step := 0; step < 600; step++ {
					h.step(byte(r.Intn(256)), byte(r.Intn(256)), universe)
					if step%25 == 0 {
						h.check(shape)
					}
				}
				h.check(shape + "-final")
				h.idx.CheckInvariants()
				h.ref.CheckInvariants()
				h.drain()
			}
		})
	}
}

// TestAuditCapsReportsLeaks exercises the leak-audit hook through a fake
// TB: a CapSet created under the audit that shuts down with live tokens
// must fail the test; one that drops everything must not.
func TestAuditCapsReportsLeaks(t *testing.T) {
	g := shapeGraph(t, "linear")
	sink := func(Pointstamp, int64) {}

	run := func(leak bool) *fakeTB {
		ftb := &fakeTB{}
		AuditCaps(ftb)
		cs := NewCapSet("worker-0", g, sink)
		c := cs.Mint(Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(0)})
		if !leak {
			c.Drop()
		}
		cs.ReportLeaks()
		ftb.runCleanups()
		return ftb
	}

	if ftb := run(true); len(ftb.errors) != 1 {
		t.Fatalf("leaked capability produced %d audit errors, want 1: %v", len(ftb.errors), ftb.errors)
	}
	if ftb := run(false); len(ftb.errors) != 0 {
		t.Fatalf("clean shutdown produced audit errors: %v", ftb.errors)
	}

	// Without an installed audit, ReportLeaks is a no-op even with leaks.
	cs := NewCapSet("unaudited", g, sink)
	cs.Mint(Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(0)})
	cs.ReportLeaks()
}

type fakeTB struct {
	errors   []string
	cleanups []func()
}

func (f *fakeTB) Helper() {}
func (f *fakeTB) Errorf(format string, args ...any) {
	f.errors = append(f.errors, format)
}
func (f *fakeTB) Cleanup(fn func()) { f.cleanups = append(f.cleanups, fn) }
func (f *fakeTB) runCleanups() {
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

// FuzzCapabilityDifferential feeds byte-derived capability schedules to
// the three frontier views over the nested-loop graph and asserts they
// never diverge. Each byte pair is one (op, pick) schedule step.
func FuzzCapabilityDifferential(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{0, 10, 1, 10, 2, 40, 3, 0})
	f.Add([]byte{255, 254, 0, 252, 1, 1, 2, 1, 128, 64, 3, 3})
	g := shapeGraph(f, "nested")
	universe := pointstampUniverse(g)
	f.Fuzz(func(t *testing.T, data []byte) {
		h := newCapHarness(t, g)
		for i := 0; i+1 < len(data); i += 2 {
			h.step(data[i], data[i+1], universe)
			if i%16 == 0 {
				h.check("fuzz")
			}
		}
		h.check("fuzz-final")
		h.idx.CheckInvariants()
		h.drain()
	})
}
