package progress

import (
	"fmt"
	"testing"

	"naiad/internal/graph"
	ts "naiad/internal/timestamp"
)

func benchGraph(b testing.TB) (*graph.Graph, []graph.Location) {
	b.Helper()
	g := graph.New()
	in := g.AddStage("in", graph.RoleInput, 0)
	ing := g.AddStage("I", graph.RoleIngress, 0)
	s1 := g.AddStage("A", graph.RoleNormal, 1)
	s2 := g.AddStage("B", graph.RoleNormal, 1)
	fb := g.AddStage("F", graph.RoleFeedback, 1)
	eg := g.AddStage("E", graph.RoleEgress, 1)
	out := g.AddStage("out", graph.RoleNormal, 0)
	g.AddConnector(in, ing)
	g.AddConnector(ing, s1)
	g.AddConnector(s1, s2)
	g.AddConnector(s2, fb)
	g.AddConnector(fb, s1)
	g.AddConnector(s2, eg)
	g.AddConnector(eg, out)
	if err := g.Freeze(); err != nil {
		b.Fatal(err)
	}
	return g, []graph.Location{
		graph.StageLoc(s1), graph.StageLoc(s2), graph.ConnLoc(2), graph.ConnLoc(3),
	}
}

// progressTracker is the common surface of the indexed tracker and the
// scan-based reference oracle, so each benchmark can run against both.
type progressTracker interface {
	Update(Pointstamp, int64)
	Apply([]Update)
	InFrontier(Pointstamp) bool
	Frontier() []Pointstamp
	SomePrecursorOf(Pointstamp) bool
	Occurrence(Pointstamp) int64
	Active() int
	Empty() bool
}

// mkTrackers returns constructors for both implementations, keyed for
// sub-benchmark names: "indexed" is the production tracker, "reference"
// the pre-optimization full-scan implementation kept as the oracle.
func mkTrackers() map[string]func(*graph.Graph) progressTracker {
	return map[string]func(*graph.Graph) progressTracker{
		"indexed":   func(g *graph.Graph) progressTracker { return NewTracker(g) },
		"reference": func(g *graph.Graph) progressTracker { return NewReferenceTracker(g) },
	}
}

// fillActive installs n active pointstamps spread over the given locations,
// epochs, and loop iterations — the ≥100-active working set of the
// acceptance criteria.
func fillActive(tr progressTracker, locs []graph.Location, n int) {
	for i := 0; i < n; i++ {
		tm := ts.Make(int64(i/32), int64(i%32))
		tr.Update(Pointstamp{Time: tm, Loc: locs[i%len(locs)]}, 1)
	}
}

// BenchmarkTrackerUpdate measures the steady-state cost of one
// occurrence-count update against a small working set of active
// pointstamps (the original microbenchmark shape).
func BenchmarkTrackerUpdate(b *testing.B) {
	g, locs := benchGraph(b)
	tr := NewTracker(g)
	// A realistic active set: a few iterations in flight.
	for i := int64(0); i < 8; i++ {
		tr.Update(Pointstamp{Time: ts.Make(0, i), Loc: locs[i%2]}, 1)
	}
	p := Pointstamp{Time: ts.Make(0, 4), Loc: locs[2]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Update(p, 1)
		tr.Update(p, -1)
	}
}

// BenchmarkTrackerUpdateActive measures one activate/deactivate cycle
// against working sets of 128 and 512 active pointstamps, for both the
// indexed tracker and the reference oracle.
func BenchmarkTrackerUpdateActive(b *testing.B) {
	for _, n := range []int{128, 512} {
		for name, mk := range mkTrackers() {
			b.Run(fmt.Sprintf("%s-%d", name, n), func(b *testing.B) {
				g, locs := benchGraph(b)
				tr := mk(g)
				fillActive(tr, locs, n)
				p := Pointstamp{Time: ts.Make(int64(n/64), 7), Loc: locs[2]}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tr.Update(p, 1)
					tr.Update(p, -1)
				}
			})
		}
	}
}

// BenchmarkFrontierQuery measures the notification-deliverability test.
func BenchmarkFrontierQuery(b *testing.B) {
	g, locs := benchGraph(b)
	tr := NewTracker(g)
	for i := int64(0); i < 16; i++ {
		tr.Update(Pointstamp{Time: ts.Make(0, i), Loc: locs[int(i)%len(locs)]}, 1)
	}
	p := Pointstamp{Time: ts.Make(0, 0), Loc: locs[0]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.SomePrecursorOf(p)
	}
}

// BenchmarkSomePrecursorOfActive measures the deliverability/probe test
// against large active sets. The probed time sits below most of the
// working set, the common case for probes trailing the computation.
func BenchmarkSomePrecursorOfActive(b *testing.B) {
	for _, n := range []int{128, 512} {
		for name, mk := range mkTrackers() {
			b.Run(fmt.Sprintf("%s-%d", name, n), func(b *testing.B) {
				g, locs := benchGraph(b)
				tr := mk(g)
				fillActive(tr, locs, n)
				p := Pointstamp{Time: ts.Make(0, 0), Loc: locs[0]}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_ = tr.SomePrecursorOf(p)
				}
			})
		}
	}
}

// BenchmarkFrontierActive measures a frontier read after each update — the
// safety-monitor pattern (CheckFrontier after every applied batch).
func BenchmarkFrontierActive(b *testing.B) {
	for _, n := range []int{128} {
		for name, mk := range mkTrackers() {
			b.Run(fmt.Sprintf("%s-%d", name, n), func(b *testing.B) {
				g, locs := benchGraph(b)
				tr := mk(g)
				fillActive(tr, locs, n)
				p := Pointstamp{Time: ts.Make(int64(n/64), 9), Loc: locs[3]}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tr.Update(p, 1)
					if len(tr.Frontier()) == 0 {
						b.Fatal("frontier empty")
					}
					tr.Update(p, -1)
				}
			})
		}
	}
}

// BenchmarkFrontierCached measures repeated frontier reads with no
// intervening updates — served from the indexed tracker's cache.
func BenchmarkFrontierCached(b *testing.B) {
	for name, mk := range mkTrackers() {
		b.Run(name, func(b *testing.B) {
			g, locs := benchGraph(b)
			tr := mk(g)
			fillActive(tr, locs, 128)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(tr.Frontier()) == 0 {
					b.Fatal("frontier empty")
				}
			}
		})
	}
}

// BenchmarkBufferDrain measures the combine-and-sort path of the protocol.
func BenchmarkBufferDrain(b *testing.B) {
	_, locs := benchGraph(b)
	buf := NewBuffer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := int64(0); j < 64; j++ {
			buf.Add(Pointstamp{Time: ts.Make(0, j%8), Loc: locs[int(j)%len(locs)]}, 1)
			buf.Add(Pointstamp{Time: ts.Make(0, j%8), Loc: locs[int(j)%len(locs)]}, -1)
		}
		if us := buf.Drain(); len(us) != 0 {
			b.Fatal("cancelling updates should drain empty")
		}
	}
}
