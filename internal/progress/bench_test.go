package progress

import (
	"testing"

	"naiad/internal/graph"
	ts "naiad/internal/timestamp"
)

func benchGraph(b *testing.B) (*graph.Graph, []graph.Location) {
	b.Helper()
	g := graph.New()
	in := g.AddStage("in", graph.RoleInput, 0)
	ing := g.AddStage("I", graph.RoleIngress, 0)
	s1 := g.AddStage("A", graph.RoleNormal, 1)
	s2 := g.AddStage("B", graph.RoleNormal, 1)
	fb := g.AddStage("F", graph.RoleFeedback, 1)
	eg := g.AddStage("E", graph.RoleEgress, 1)
	out := g.AddStage("out", graph.RoleNormal, 0)
	g.AddConnector(in, ing)
	g.AddConnector(ing, s1)
	g.AddConnector(s1, s2)
	g.AddConnector(s2, fb)
	g.AddConnector(fb, s1)
	g.AddConnector(s2, eg)
	g.AddConnector(eg, out)
	if err := g.Freeze(); err != nil {
		b.Fatal(err)
	}
	return g, []graph.Location{
		graph.StageLoc(s1), graph.StageLoc(s2), graph.ConnLoc(2), graph.ConnLoc(3),
	}
}

// BenchmarkTrackerUpdate measures the steady-state cost of one
// occurrence-count update against a working set of active pointstamps.
func BenchmarkTrackerUpdate(b *testing.B) {
	g, locs := benchGraph(b)
	tr := NewTracker(g)
	// A realistic active set: a few iterations in flight.
	for i := int64(0); i < 8; i++ {
		tr.Update(Pointstamp{Time: ts.Make(0, i), Loc: locs[i%2]}, 1)
	}
	p := Pointstamp{Time: ts.Make(0, 4), Loc: locs[2]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Update(p, 1)
		tr.Update(p, -1)
	}
}

// BenchmarkFrontierQuery measures the notification-deliverability test.
func BenchmarkFrontierQuery(b *testing.B) {
	g, locs := benchGraph(b)
	tr := NewTracker(g)
	for i := int64(0); i < 16; i++ {
		tr.Update(Pointstamp{Time: ts.Make(0, i), Loc: locs[int(i)%len(locs)]}, 1)
	}
	p := Pointstamp{Time: ts.Make(0, 0), Loc: locs[0]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.SomePrecursorOf(p)
	}
}

// BenchmarkBufferDrain measures the combine-and-sort path of the protocol.
func BenchmarkBufferDrain(b *testing.B) {
	_, locs := benchGraph(b)
	buf := NewBuffer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := int64(0); j < 64; j++ {
			buf.Add(Pointstamp{Time: ts.Make(0, j%8), Loc: locs[int(j)%len(locs)]}, 1)
			buf.Add(Pointstamp{Time: ts.Make(0, j%8), Loc: locs[int(j)%len(locs)]}, -1)
		}
		if us := buf.Drain(); len(us) != 0 {
			b.Fatal("cancelling updates should drain empty")
		}
	}
}
