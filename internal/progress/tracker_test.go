package progress

import (
	"math/rand"
	"testing"

	"naiad/internal/graph"
	"naiad/internal/testutil"
	ts "naiad/internal/timestamp"
)

// loopGraph builds in → I → B → C → E → out with feedback F: C → B, and
// returns it with the named stage ids.
func loopGraph(t testing.TB) (*graph.Graph, map[string]graph.StageID) {
	t.Helper()
	g := graph.New()
	s := map[string]graph.StageID{}
	s["in"] = g.AddStage("in", graph.RoleInput, 0)
	s["I"] = g.AddStage("I", graph.RoleIngress, 0)
	s["B"] = g.AddStage("B", graph.RoleNormal, 1)
	s["C"] = g.AddStage("C", graph.RoleNormal, 1)
	s["F"] = g.AddStage("F", graph.RoleFeedback, 1)
	s["E"] = g.AddStage("E", graph.RoleEgress, 1)
	s["out"] = g.AddStage("out", graph.RoleNormal, 0)
	g.AddConnector(s["in"], s["I"])
	g.AddConnector(s["I"], s["B"])
	g.AddConnector(s["B"], s["C"])
	g.AddConnector(s["C"], s["F"])
	g.AddConnector(s["F"], s["B"])
	g.AddConnector(s["C"], s["E"])
	g.AddConnector(s["E"], s["out"])
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	return g, s
}

func TestTrackerRequiresFrozenGraph(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTracker(graph.New())
}

func TestFrontierBasics(t *testing.T) {
	g, s := loopGraph(t)
	tr := NewTracker(g)
	if !tr.Empty() {
		t.Fatal("new tracker should be empty")
	}
	inP := Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(s["in"])}
	tr.Update(inP, 1)
	if tr.Empty() || tr.Active() != 1 {
		t.Fatal("input pointstamp should be active")
	}
	if !tr.InFrontier(inP) {
		t.Fatal("sole pointstamp must be in frontier")
	}
	// A notification downstream at B is blocked by the input pointstamp.
	bN := Pointstamp{Time: ts.Make(0, 0), Loc: graph.StageLoc(s["B"])}
	tr.Update(bN, 1)
	if tr.InFrontier(bN) {
		t.Fatal("B's notification must wait for the input to close")
	}
	if !tr.InFrontier(inP) {
		t.Fatal("input stays in frontier")
	}
	// Closing the input epoch unblocks B.
	tr.Update(inP, -1)
	if !tr.InFrontier(bN) {
		t.Fatal("B should be deliverable once input retires")
	}
	fr := tr.Frontier()
	if len(fr) != 1 || fr[0] != bN {
		t.Fatalf("frontier = %v", fr)
	}
	tr.CheckInvariants()
}

func TestIterationOrdering(t *testing.T) {
	g, s := loopGraph(t)
	tr := NewTracker(g)
	b := graph.StageLoc(s["B"])
	n1 := Pointstamp{Time: ts.Make(0, 1), Loc: b}
	n2 := Pointstamp{Time: ts.Make(0, 2), Loc: b}
	tr.Update(n2, 1)
	tr.Update(n1, 1)
	if !tr.InFrontier(n1) {
		t.Fatal("iteration 1 deliverable")
	}
	if tr.InFrontier(n2) {
		t.Fatal("iteration 2 blocked by iteration 1 (feedback path)")
	}
	tr.Update(n1, -1)
	if !tr.InFrontier(n2) {
		t.Fatal("iteration 2 deliverable after 1 retires")
	}
	tr.CheckInvariants()
}

func TestEpochsAreConcurrent(t *testing.T) {
	// Pointstamps in different epochs at the same location do block
	// later epochs (identity path), but an earlier epoch at a *later*
	// location does not block an earlier location's later epoch.
	g, s := loopGraph(t)
	tr := NewTracker(g)
	outP := Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(s["out"])}
	inP := Pointstamp{Time: ts.Root(1), Loc: graph.StageLoc(s["in"])}
	tr.Update(outP, 1)
	tr.Update(inP, 1)
	if !tr.InFrontier(outP) || !tr.InFrontier(inP) {
		t.Fatal("no path out→in: both are frontier elements")
	}
	tr.CheckInvariants()
}

func TestNegativeOvertaking(t *testing.T) {
	// A retirement (-1) arriving before its creation (+1) leaves the net
	// count negative; the pointstamp must not be considered active, and a
	// subsequent +1 must restore balance without disturbing others.
	g, s := loopGraph(t)
	tr := NewTracker(g)
	p := Pointstamp{Time: ts.Make(0, 0), Loc: graph.StageLoc(s["B"])}
	q := Pointstamp{Time: ts.Make(0, 1), Loc: graph.StageLoc(s["B"])}
	tr.Update(q, 1)
	tr.Update(p, -1)
	if tr.Occurrence(p) != -1 {
		t.Fatalf("occ = %d", tr.Occurrence(p))
	}
	if !tr.InFrontier(q) {
		t.Fatal("negative pointstamp must not block the frontier")
	}
	tr.Update(p, 1) // the overtaken creation arrives
	if tr.Occurrence(p) != 0 || tr.Active() != 1 {
		t.Fatal("creation should cancel the early retirement")
	}
	if !tr.InFrontier(q) {
		t.Fatal("q remains deliverable")
	}
	tr.CheckInvariants()
}

func TestApplyOrdersPositivesFirst(t *testing.T) {
	g, s := loopGraph(t)
	tr := NewTracker(g)
	p := Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(s["in"])}
	q := Pointstamp{Time: ts.Root(1), Loc: graph.StageLoc(s["in"])}
	// Batch carries the epoch handoff: open 1, close 0.
	tr.Update(p, 1)
	tr.Apply([]Update{{P: p, D: -1}, {P: q, D: 1}})
	if tr.Occurrence(p) != 0 || tr.Occurrence(q) != 1 {
		t.Fatal("apply did not settle")
	}
	tr.CheckInvariants()
}

// Property: the incremental tracker agrees with brute-force recomputation
// of the frontier from occurrence counts under random update sequences.
func TestTrackerMatchesBruteForce(t *testing.T) {
	g, s := loopGraph(t)
	locs := []graph.Location{
		graph.StageLoc(s["in"]), graph.StageLoc(s["I"]), graph.StageLoc(s["B"]),
		graph.StageLoc(s["C"]), graph.StageLoc(s["E"]), graph.StageLoc(s["out"]),
		graph.ConnLoc(1), graph.ConnLoc(2), graph.ConnLoc(4),
	}
	times := []ts.Timestamp{}
	for e := int64(0); e < 2; e++ {
		times = append(times, ts.Root(e))
		for c := int64(0); c < 3; c++ {
			times = append(times, ts.Make(e, c))
		}
	}
	r := rand.New(rand.NewSource(testutil.Seed(t)))
	for trial := 0; trial < 50; trial++ {
		tr := NewTracker(g)
		counts := map[Pointstamp]int64{}
		for step := 0; step < 120; step++ {
			loc := locs[r.Intn(len(locs))]
			depth := g.LocationDepth(loc)
			var tm ts.Timestamp
			for {
				tm = times[r.Intn(len(times))]
				if tm.Depth == depth {
					break
				}
			}
			p := Pointstamp{Time: tm, Loc: loc}
			var d int64 = 1
			if counts[p] > 0 && r.Intn(2) == 0 {
				d = -1
			}
			tr.Update(p, d)
			counts[p] += d
			tr.CheckInvariants()

			// Brute force: p in frontier iff counts[p] > 0 and no other
			// positive q could-result-in p.
			for _, q := range append([]graph.Location(nil), locs...) {
				_ = q
			}
			for pp, c := range counts {
				want := c > 0
				if want {
					for qq, qc := range counts {
						if qc > 0 && qq != pp && g.CouldResultIn(qq.Time, qq.Loc, pp.Time, pp.Loc) {
							want = false
							break
						}
					}
				}
				if got := tr.InFrontier(pp); got != want {
					t.Fatalf("trial %d step %d: InFrontier(%v) = %v, want %v", trial, step, pp, got, want)
				}
				if want != false && tr.SomePrecursorOf(pp) {
					t.Fatalf("SomePrecursorOf inconsistent with frontier for %v", pp)
				}
			}
		}
	}
}

func TestSomePrecursorOf(t *testing.T) {
	g, s := loopGraph(t)
	tr := NewTracker(g)
	inP := Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(s["in"])}
	tr.Update(inP, 1)
	// No notification requested at out, but out@(0) is still preceded.
	outP := Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(s["out"])}
	if !tr.SomePrecursorOf(outP) {
		t.Fatal("input precedes out@(0)")
	}
	earlier := Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(s["in"])}
	if tr.SomePrecursorOf(earlier) {
		t.Fatal("a pointstamp does not precede itself")
	}
	tr.Update(inP, -1)
	if tr.SomePrecursorOf(outP) {
		t.Fatal("drained tracker has no precursors")
	}
}
