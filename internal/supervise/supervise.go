// Package supervise makes a timely dataflow computation self-healing: a
// Supervisor owns the computation's lifecycle, takes periodic consistent
// snapshots, detects failures through the runtime's heartbeat detector and
// watchdog, and on failure rebuilds the graph, restores the latest
// decodable snapshot, and replays the logged inputs — rollback recovery
// over logical time, in the spirit of the Falkirk Wheel (Isard & Abadi):
// the epoch structure tells recovery exactly which inputs to replay and
// which results are already durable.
//
// Snapshots are asynchronous barrier cuts by default: the supervisor
// injects barrier markers at the input stages and the cut assembles while
// traffic keeps flowing — no quiesce, no pause (see runtime/barrier.go).
// The legacy stop-the-world checkpoint path (quiesce on the probe, pause
// every worker, serialize) is retained behind Config.Quiesce as a test
// oracle: both paths must restore to identical state at the same epoch.
// With Config.Selective, a single-worker failure is repaired by selective
// rollback — only the crashed worker is restored from the latest cut and
// replayed from its delivery log; healthy workers never stop.
//
// The contract with the application is the paper's: checkpointed vertex
// state plus replayed input epochs reproduce the lost portion of the
// computation. Outputs for epochs between the restored snapshot and the
// failure point are produced again — exactly-once delivery to the outside
// world is the output consumer's job (keyed by epoch, replays are
// idempotent).
package supervise

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"naiad/internal/runtime"
	"naiad/internal/trace"
)

// Build is one incarnation of the supervised dataflow, produced by the
// Factory: a constructed-but-not-Started computation, its inputs by name,
// and a probe on the output stage (the supervisor quiesces on it before
// checkpoints and uses it to confirm recovery caught up).
type Build struct {
	Comp   *runtime.Computation
	Inputs map[string]*runtime.Input
	Probe  *runtime.Probe
}

// Factory constructs a fresh incarnation of the dataflow. It runs once at
// New and once per restart; it must return an unstarted computation (the
// supervisor calls Start) and must build the same graph every time —
// recovery restores snapshots taken from a previous incarnation into the
// graph this returns. Each incarnation needs its own transport: the old
// one is closed when its computation is torn down.
type Factory func() (*Build, error)

// Config parameterizes a Supervisor.
type Config struct {
	// Factory rebuilds the dataflow; required.
	Factory Factory
	// Store persists snapshots; defaults to NewMemStore(3).
	Store SnapshotStore
	// CheckpointEvery is the epoch interval between checkpoints (default
	// 1: every completed epoch boundary). Larger intervals trade
	// checkpoint overhead for longer replay after a failure.
	CheckpointEvery int64
	// MaxRestarts bounds the restart attempts within one recovery episode
	// (default 3); when they are exhausted the supervisor enters the
	// terminal gave-up state and Wait returns ErrGaveUp.
	MaxRestarts int
	// Backoff is the delay before the second restart attempt (default
	// 50ms), doubling per attempt up to MaxBackoff (default 2s), with
	// ±50% jitter. The first attempt is immediate.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Seed drives the backoff jitter PRNG (default 1).
	Seed int64
	// CutSettleTimeout bounds every barrier cut's lifetime (default 1s).
	// A cut normally settles in microseconds; one that outlives the
	// timeout has lost a marker (a lossy network), and leaving it pending
	// would block all future checkpoints — and any deferred CloseInput —
	// forever. The stale cut is aborted: a lost snapshot, never lost data.
	CutSettleTimeout time.Duration
	// Quiesce selects the legacy stop-the-world checkpoint path instead of
	// asynchronous barrier cuts: quiesce on the probe at an epoch boundary,
	// pause every worker, serialize. Kept as the differential-test oracle
	// for the barrier path.
	Quiesce bool
	// Selective enables single-worker rollback: the runtime keeps per-worker
	// delivery logs, and a simulated single-worker crash
	// (runtime.Computation.CrashWorker) is repaired by restoring only that
	// worker from the latest complete cut and replaying its log — healthy
	// workers keep running. Requires the barrier path (ignored with
	// Quiesce).
	Selective bool
	// Tracer, when non-nil, receives supervisor-level recovery events:
	// EvCheckpoint/EvRestore with Aux=1 (snapshot persisted / restored) and
	// EvRestart when a recovery episode completes. Pass the same Tracer to
	// the runtime.Config the Factory builds to interleave these with the
	// runtime's own events on one clock.
	Tracer *trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.Store == nil {
		c.Store = NewMemStore(3)
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CutSettleTimeout <= 0 {
		c.CutSettleTimeout = time.Second
	}
	return c
}

// ErrGaveUp is wrapped into Wait's error when recovery exhausted its
// restart budget.
var ErrGaveUp = errors.New("supervise: gave up")

// ErrDone is returned by OnNext and CloseInput after the supervised
// computation has already completed cleanly.
var ErrDone = errors.New("supervise: computation complete")

type cmdKind uint8

const (
	cmdFeed cmdKind = iota
	cmdClose
)

type command struct {
	kind    cmdKind
	input   string
	records []runtime.Message
}

type supEventKind uint8

const (
	evCutDone  supEventKind = iota // a barrier cut assembled completely
	evCutFail                      // a barrier cut was poisoned or aborted
	evCutStale                     // the settle timer expired on a pending cut
	evCrash                        // a single worker parked (Selective mode)
)

// supEvent carries a runtime callback onto the supervisor's run loop. gen
// tags the incarnation that produced it: callbacks from a torn-down
// computation race with recovery, and a stale generation must be ignored.
type supEvent struct {
	gen    int
	kind   supEventKind
	cut    int64
	snap   *runtime.CutSnapshot
	err    error
	worker int
}

// Supervisor owns a computation's lifecycle: feed it through OnNext /
// CloseInput, wait for the terminal state with Wait. All state transitions
// happen on a single internal goroutine, so the public methods are safe
// for concurrent use.
type Supervisor struct {
	cfg Config
	rm  *runtime.RecoveryMetrics

	cmdCh  chan command
	joinCh chan error
	evCh   chan supEvent
	doneCh chan struct{}

	inputs map[string]bool // the graph's input names, fixed at New

	// Run-loop-owned state; never touched from public methods.
	build    *Build
	log      map[string]map[int64][]runtime.Message // input → epoch → batch
	fed      map[string]int64                       // epochs fed per input
	closedIn map[string]bool
	// closeDeferred holds inputs the application has closed while a barrier
	// cut covering their final epochs was still possible or in flight; the
	// actual Close is applied once the cut settles (unused with Quiesce —
	// the quiesce path checkpoints synchronously, so closes never race a
	// snapshot).
	closeDeferred map[string]bool
	lastCP        int64
	rng           *rand.Rand

	// Barrier-cut state (unused with Quiesce). gen counts incarnations;
	// cutSeq issues monotone cut ids across them. pendingCut is the one cut
	// in flight (0 = none) and pendingCutEpoch the input epoch it was
	// injected at. lastCut is the newest complete cut, kept in memory so a
	// selective revival can hand it to the parked worker.
	gen             int
	cutSeq          int64
	pendingCut      int64
	pendingCutEpoch int64
	settleArmed     int64 // cut id with a settle timer running, 0 = none
	lastCut         *runtime.CutSnapshot
	lastCutID       int64

	errMu    sync.Mutex
	finalErr error
}

// New builds and starts the first incarnation and begins supervising it.
func New(cfg Config) (*Supervisor, error) {
	if cfg.Factory == nil {
		return nil, fmt.Errorf("supervise: Config.Factory is required")
	}
	cfg = cfg.withDefaults()
	s := &Supervisor{
		cfg:      cfg,
		rm:       &runtime.RecoveryMetrics{},
		cmdCh:    make(chan command, 64),
		joinCh:   make(chan error, 1),
		evCh:     make(chan supEvent, 16),
		doneCh:   make(chan struct{}),
		inputs:        make(map[string]bool),
		log:           make(map[string]map[int64][]runtime.Message),
		fed:           make(map[string]int64),
		closedIn:      make(map[string]bool),
		closeDeferred: make(map[string]bool),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	build, err := s.spawn()
	if err != nil {
		return nil, err
	}
	s.build = build
	for name := range build.Inputs {
		s.inputs[name] = true
		s.log[name] = make(map[int64][]runtime.Message)
		// Every input participates in the alignment guard from epoch 0: an
		// input that has never been fed must hold minFed at 0, or
		// maybeCheckpoint would quiesce on a frontier the unfed input's
		// seeded pointstamp can never release.
		s.fed[name] = 0
	}
	go s.monitor(build.Comp)
	go s.run()
	return s, nil
}

// spawn runs the factory, validates the build, and starts the computation.
func (s *Supervisor) spawn() (*Build, error) {
	build, err := s.cfg.Factory()
	if err != nil {
		return nil, fmt.Errorf("supervise: factory: %w", err)
	}
	if build == nil || build.Comp == nil || build.Probe == nil || len(build.Inputs) == 0 {
		return nil, fmt.Errorf("supervise: factory must return a computation, at least one input, and a probe")
	}
	build.Comp.SetRecoveryMetrics(s.rm)
	// Handlers must be installed before Start. They run on runtime
	// goroutines; forwarding through evCh serializes them onto the run loop,
	// and the gen tag lets the loop drop callbacks from a torn-down
	// incarnation. The doneCh case keeps a late callback from blocking
	// forever after the supervisor has finished.
	s.gen++
	gen := s.gen
	if !s.cfg.Quiesce {
		build.Comp.SetCutHandler(func(cut int64, snap *runtime.CutSnapshot, err error) {
			ev := supEvent{gen: gen, kind: evCutDone, cut: cut, snap: snap}
			if err != nil {
				ev.kind, ev.err = evCutFail, err
			}
			select {
			case s.evCh <- ev:
			case <-s.doneCh:
			}
		})
		if s.cfg.Selective {
			build.Comp.SetWorkerCrashHandler(func(worker int) {
				select {
				case s.evCh <- supEvent{gen: gen, kind: evCrash, worker: worker}:
				case <-s.doneCh:
				}
			})
		}
	}
	if err := build.Comp.Start(); err != nil {
		return nil, fmt.Errorf("supervise: start: %w", err)
	}
	return build, nil
}

// OnNext feeds one epoch of records to the named input, mirroring
// runtime.Input.OnNext. The batch is logged for replay before it reaches
// the computation; feeding is asynchronous — delivery failures surface
// through recovery, not through this call. The batch is copied before this
// returns, so the caller may reuse its buffer: a mutated buffer must not
// rewrite what a later replay feeds.
func (s *Supervisor) OnNext(input string, records ...runtime.Message) error {
	if !s.inputs[input] {
		return fmt.Errorf("supervise: unknown input %q", input)
	}
	batch := append([]runtime.Message(nil), records...)
	return s.send(command{kind: cmdFeed, input: input, records: batch})
}

// CloseInput marks the named input complete. Once every input is closed
// and the computation drains, Wait returns.
func (s *Supervisor) CloseInput(input string) error {
	if !s.inputs[input] {
		return fmt.Errorf("supervise: unknown input %q", input)
	}
	return s.send(command{kind: cmdClose, input: input})
}

// send enqueues a command unless the supervisor is already terminal. The
// doneCh check comes first: cmdCh is buffered, so a bare select could keep
// accepting commands into the void after the run loop has exited.
func (s *Supervisor) send(cmd command) error {
	select {
	case <-s.doneCh:
		return s.terminalErr()
	default:
	}
	select {
	case s.cmdCh <- cmd:
		return nil
	case <-s.doneCh:
		return s.terminalErr()
	}
}

// terminalErr is what commands get after the supervisor has stopped: the
// fatal error if recovery gave up, ErrDone after a clean completion.
func (s *Supervisor) terminalErr() error {
	if err := s.err(); err != nil {
		return err
	}
	return ErrDone
}

// Wait blocks until the computation completes (nil), or recovery gives up
// (ErrGaveUp, wrapped with the last failure).
func (s *Supervisor) Wait() error {
	<-s.doneCh
	return s.err()
}

// Recovery returns a snapshot of the fault-tolerance counters, shared
// across every incarnation.
func (s *Supervisor) Recovery() runtime.RecoverySnapshot { return s.rm.Snapshot() }

func (s *Supervisor) err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.finalErr
}

// monitor watches one incarnation: Join blocks until the computation
// drains or aborts, and its result is the supervisor's failure signal.
func (s *Supervisor) monitor(comp *runtime.Computation) {
	s.joinCh <- comp.Join()
}

// run is the supervisor's single-threaded state machine: it applies feed
// and close commands, takes checkpoints at epoch boundaries, and reacts to
// the monitored computation's exit.
func (s *Supervisor) run() {
	for {
		select {
		case cmd := <-s.cmdCh:
			s.handle(cmd)
		case ev := <-s.evCh:
			s.handleEvent(ev)
		case err := <-s.joinCh:
			if err == nil {
				s.finish(nil)
				return
			}
			if !s.recover(err) {
				return // finish() already called by recover
			}
			if !s.cfg.Quiesce {
				// The failed incarnation's in-flight cut died with it. Give
				// the healthy rebuild a snapshot at the current boundary,
				// then apply closes the failure interrupted.
				s.maybeCheckpoint()
				s.applyDeferredCloses()
			}
		}
	}
}

func (s *Supervisor) finish(err error) {
	s.errMu.Lock()
	s.finalErr = err
	s.errMu.Unlock()
	close(s.doneCh)
}

func (s *Supervisor) handle(cmd command) {
	if s.closedIn[cmd.input] || s.closeDeferred[cmd.input] {
		return // feeding or re-closing a closed input is a no-op
	}
	in := s.build.Inputs[cmd.input]
	switch cmd.kind {
	case cmdFeed:
		// Log first: if the computation dies mid-feed, replay still has
		// the batch. cmd.records is the supervisor's own copy (made in
		// OnNext), so the log entry cannot alias a caller buffer.
		s.log[cmd.input][s.fed[cmd.input]] = cmd.records
		s.fed[cmd.input]++
		in.OnNext(cmd.records...)
		s.maybeCheckpoint()
	case cmdClose:
		// On the barrier path, hold the close while a cut covering the
		// input's final epochs is in flight or still possible: closing
		// drains the computation, and workers that exit mid-alignment would
		// strand the cut. If the final cut has not been injected yet (e.g.
		// the previous one was aborted and no feed followed), inject it now
		// — no later feed will. The close is applied when the cut settles;
		// the settle timer bounds the wait on a lossy network.
		if !s.cfg.Quiesce && (s.pendingCut != 0 || s.cutReady()) {
			s.closeDeferred[cmd.input] = true
			if s.pendingCut == 0 {
				s.maybeCheckpoint()
			}
			s.applyDeferredCloses()
			return
		}
		s.closedIn[cmd.input] = true
		in.Close()
	}
}

// maybeCheckpoint decides, after each feed, whether to take a snapshot.
// Both paths share the same guards: skipped once any input has closed (the
// computation is draining toward completion), and only at an epoch where
// every input sits at the same fed count — a snapshot taken while one
// input is fed ahead of another would capture the leading input's epochs
// half-processed, and the restore/replay protocol is keyed by a single
// epoch. s.fed covers every input from New (never-fed inputs pin minFed at
// 0), so the guard also blocks acting on a frontier a still-seeded input
// could never release. Single-input graphs are always aligned.
func (s *Supervisor) maybeCheckpoint() {
	for _, closed := range s.closedIn {
		if closed {
			return
		}
	}
	minFed, maxFed := int64(-1), int64(-1)
	for _, f := range s.fed {
		if minFed < 0 || f < minFed {
			minFed = f
		}
		if f > maxFed {
			maxFed = f
		}
	}
	if minFed != maxFed {
		return
	}
	if !s.cfg.Quiesce {
		s.maybeCut(minFed)
		return
	}
	if minFed <= 0 || minFed-s.lastCP < s.cfg.CheckpointEvery {
		return
	}
	s.build.Probe.WaitFor(minFed - 1)
	if s.build.Comp.Failed() {
		return // the join monitor will deliver the failure
	}
	var t0 int64
	if tr := s.cfg.Tracer; tr != nil {
		t0 = tr.Now()
	}
	snap, err := s.build.Comp.Checkpoint()
	if err != nil {
		return // abort in progress; same path as above
	}
	data := runtime.EncodeSnapshot(snap)
	if err := s.cfg.Store.Save(minFed, data); err != nil {
		return // a failed save keeps the previous snapshot + longer log
	}
	s.lastCP = minFed
	s.rm.Checkpoints.Add(1)
	s.rm.CheckpointBytes.Add(int64(len(data)))
	if tr := s.cfg.Tracer; tr != nil {
		tr.Emit(trace.Event{
			Kind: trace.EvCheckpoint, Aux: 1, Worker: -1, Stage: -1, Loc: -1,
			Epoch: minFed, Dur: tr.Now() - t0, N: int64(len(data)),
		})
	}
	s.pruneLog()
}

// maybeCut injects an asynchronous barrier at the input stages. Unlike the
// quiesce path there is no Probe.WaitFor: the cut assembles downstream
// while the supervisor keeps feeding — the whole point of the barrier
// design. At most one cut is in flight, and every cut's lifetime is
// bounded by the settle timer: a healthy cut assembles in microseconds,
// so one that outlives CutSettleTimeout has lost a marker and is aborted
// to unblock the next boundary. The feed rate deliberately plays no part —
// a feeder that outruns cut assembly must not get its healthy cuts
// aborted.
func (s *Supervisor) maybeCut(minFed int64) {
	if s.pendingCut != 0 {
		return
	}
	if minFed <= 0 || minFed-s.lastCP < s.cfg.CheckpointEvery {
		return
	}
	s.cutSeq++
	s.pendingCut = s.cutSeq
	s.pendingCutEpoch = minFed
	if err := s.build.Comp.InjectBarrier(s.cutSeq, minFed); err != nil {
		s.pendingCut = 0 // e.g. the computation is already failed
		return
	}
	s.armSettleTimer()
}

// cutReady reports whether maybeCut would inject a cut right now: no cut
// pending, every input at the same fed epoch, and the boundary at least
// CheckpointEvery past the last persisted snapshot.
func (s *Supervisor) cutReady() bool {
	if s.pendingCut != 0 {
		return false
	}
	minFed, maxFed := int64(-1), int64(-1)
	for _, f := range s.fed {
		if minFed < 0 || f < minFed {
			minFed = f
		}
		if f > maxFed {
			maxFed = f
		}
	}
	return minFed == maxFed && minFed > 0 && minFed-s.lastCP >= s.cfg.CheckpointEvery
}

// applyDeferredCloses closes inputs whose Close was held back for an
// in-flight cut, once no cut is pending anymore. While one still is, the
// settle timer armed at its injection bounds the wait: a cut that never
// settles — markers eaten by the network — cannot block the closes
// forever.
func (s *Supervisor) applyDeferredCloses() {
	if len(s.closeDeferred) == 0 || s.pendingCut != 0 {
		return
	}
	for name := range s.closeDeferred {
		delete(s.closeDeferred, name)
		s.closedIn[name] = true
		s.build.Inputs[name].Close()
	}
}

// armSettleTimer starts (at most once per cut) a timer that aborts the
// pending cut if it has not settled within CutSettleTimeout. The timer
// fires through evCh with the incarnation and cut id pinned, so a cut that
// settled — or a later incarnation — ignores it; aborting a genuinely
// stalled cut costs the snapshot, never data.
func (s *Supervisor) armSettleTimer() {
	if s.pendingCut == 0 || s.settleArmed == s.pendingCut {
		return
	}
	s.settleArmed = s.pendingCut
	gen, cut := s.gen, s.pendingCut
	time.AfterFunc(s.cfg.CutSettleTimeout, func() {
		select {
		case s.evCh <- supEvent{gen: gen, kind: evCutStale, cut: cut}:
		case <-s.doneCh:
		}
	})
}

// handleEvent applies one runtime callback on the run loop. Events from a
// previous incarnation are dropped: the computation that produced them is
// gone and their cut ids or worker states mean nothing to the current one.
func (s *Supervisor) handleEvent(ev supEvent) {
	if ev.gen != s.gen {
		return
	}
	switch ev.kind {
	case evCutDone:
		if ev.cut != s.pendingCut {
			return // a cut we already gave up on
		}
		epoch := s.pendingCutEpoch
		s.pendingCut = 0
		data := runtime.EncodeCut(ev.snap)
		if err := s.cfg.Store.Save(epoch, data); err != nil {
			// Keep the previous baseline: AbortCut merges the cut's delivery-
			// log segments back so selective revival from the older cut still
			// has a contiguous log.
			s.build.Comp.AbortCut(ev.cut)
			s.rm.CutAborts.Add(1)
			return
		}
		s.lastCP = epoch
		s.lastCut = ev.snap
		s.lastCutID = ev.cut
		// Retiring prunes delivery-log segments below this cut and makes the
		// workers drop any late duplicate markers for it.
		s.build.Comp.RetireCut(ev.cut)
		s.rm.Checkpoints.Add(1)
		s.rm.CheckpointBytes.Add(int64(len(data)))
		s.rm.Cuts.Add(1)
		s.rm.CutBytes.Add(int64(len(data)))
		if tr := s.cfg.Tracer; tr != nil {
			tr.Emit(trace.Event{
				Kind: trace.EvCheckpoint, Aux: 1, Worker: -1, Stage: -1, Loc: -1,
				Epoch: epoch, N: int64(len(data)),
			})
		}
		s.pruneLog()
		// Pipeline: feeds kept flowing while this cut assembled, so the
		// inputs may already sit CheckpointEvery past it — start the next
		// cut immediately instead of waiting for the next feed. Then apply
		// any Close held back for the settled cut (a no-op if a new cut
		// just started; the next settle re-checks).
		s.maybeCheckpoint()
		s.applyDeferredCloses()
	case evCutFail:
		if ev.cut != s.pendingCut {
			return
		}
		s.pendingCut = 0
		s.rm.CutAborts.Add(1)
		// The poisoning worker settled the cut, but other workers may still
		// be aligning on it and holding delivery-log segments open. AbortCut
		// broadcasts the cleanup; it is idempotent on the already-settled
		// cut state.
		s.build.Comp.AbortCut(ev.cut)
		// Deferred closes are applied without retrying the cut: under a
		// network that keeps eating markers, retry-on-fail would spin
		// forever while the application waits on Wait. The next feed (if
		// any) retries naturally.
		s.applyDeferredCloses()
	case evCutStale:
		// The settle timer expired. AbortCut is idempotent: if the cut
		// settled in the meantime this is a no-op; otherwise the poison
		// comes back as evCutFail, which releases the deferred closes.
		if ev.cut == s.pendingCut {
			s.build.Comp.AbortCut(ev.cut)
		}
	case evCrash:
		s.reviveWorker(ev.worker)
	}
}

// reviveWorker repairs a single parked worker by selective rollback:
// restore only that worker from the newest complete cut (nil means segment
// zero of its delivery log — replay from birth) and replay its logged
// deliveries. Healthy workers never stop. If revival fails, fall back to
// the full teardown/rebuild path by aborting the computation.
func (s *Supervisor) reviveWorker(worker int) {
	t0 := time.Now()
	if s.pendingCut != 0 {
		// The crash tore any in-flight alignment; abandon the cut before
		// reviving so the worker's merged log segments stay contiguous.
		s.build.Comp.AbortCut(s.pendingCut)
		s.pendingCut = 0
		s.rm.CutAborts.Add(1)
	}
	if err := s.build.Comp.ReviveWorker(worker, s.lastCut); err != nil {
		s.build.Comp.Abort(fmt.Errorf("supervise: selective revival of worker %d: %w", worker, err))
		return // the join monitor delivers the failure; recover() takes over
	}
	s.rm.SelectiveRevivals.Add(1)
	s.rm.LastRecoveryNanos.Store(time.Since(t0).Nanoseconds())
	if tr := s.cfg.Tracer; tr != nil {
		tr.Emit(trace.Event{
			Kind: trace.EvRestart, Aux: -1, Worker: int32(worker), Stage: -1, Loc: -1,
			Epoch: s.lastCutID, Dur: time.Since(t0).Nanoseconds(),
		})
	}
}

// pruneLog drops replay batches below the oldest retained snapshot: no
// recovery can start earlier than that, so they can never be replayed.
func (s *Supervisor) pruneLog() {
	eps, err := s.cfg.Store.Epochs()
	if err != nil || len(eps) == 0 {
		return
	}
	oldest := eps[0]
	for _, byEpoch := range s.log {
		for e := range byEpoch {
			if e < oldest {
				delete(byEpoch, e)
			}
		}
	}
}

// recover is the rollback-recovery loop: tear down is already done (Join
// returned), so each attempt rebuilds the graph, restores the newest
// snapshot that decodes cleanly, replays the logged epochs past it, and
// waits for the computation to catch up to the pre-failure frontier.
// Returns false after exhausting the restart budget (terminal gave-up).
func (s *Supervisor) recover(cause error) bool {
	t0 := time.Now()
	// Barrier state died with the incarnation: any in-flight cut is gone,
	// and the in-memory lastCut belongs to worker delivery logs that no
	// longer exist. The next incarnation rebuilds its baseline from the
	// store (restoreInto) and from fresh cuts; a selective revival before
	// the first new cut falls back to the worker's restored segment zero.
	s.pendingCut = 0
	s.lastCut = nil
	s.lastCutID = 0
	for attempt := 1; attempt <= s.cfg.MaxRestarts; attempt++ {
		if attempt > 1 {
			s.backoff(attempt)
		}
		build, err := s.spawn()
		if err != nil {
			cause = err
			continue
		}
		if err := s.restoreInto(build); err != nil {
			cause = err
			build.Comp.Abort(err)
			build.Comp.Join()
			continue
		}
		// Replay the logged epochs past each input's restored position,
		// then re-close inputs the application had closed. A missing log
		// entry means the restore point fell below the pruned prefix (every
		// newer snapshot was unreadable): fail the attempt loudly rather
		// than silently feeding empty epochs in place of lost batches.
		if err := s.replayInto(build); err != nil {
			cause = err
			build.Comp.Abort(err)
			build.Comp.Join()
			continue
		}
		// Catch up to the pre-failure frontier before declaring recovery
		// done. WaitFor also unblocks if this incarnation aborts; Failed
		// disambiguates.
		minFed := int64(-1)
		for _, f := range s.fed {
			if minFed < 0 || f < minFed {
				minFed = f
			}
		}
		if minFed > 0 {
			build.Probe.WaitFor(minFed - 1)
		}
		if build.Comp.Failed() {
			cause = build.Comp.Err()
			build.Comp.Join()
			continue
		}
		s.build = build
		s.rm.Restarts.Add(1)
		s.rm.LastRecoveryNanos.Store(time.Since(t0).Nanoseconds())
		if tr := s.cfg.Tracer; tr != nil {
			tr.Emit(trace.Event{
				Kind: trace.EvRestart, Aux: int32(attempt), Worker: -1,
				Stage: -1, Loc: -1, Epoch: minFed,
				Dur: time.Since(t0).Nanoseconds(),
			})
		}
		go s.monitor(build.Comp)
		return true
	}
	s.finish(fmt.Errorf("%w after %d restart attempts: last failure: %v",
		ErrGaveUp, s.cfg.MaxRestarts, cause))
	return false
}

// restoreInto loads the newest snapshot that decodes and validates
// cleanly into the freshly started build. Corrupt snapshots fall back to
// older retained ones; no snapshot at all means recovery restarts from
// epoch 0 with a full replay.
func (s *Supervisor) restoreInto(build *Build) error {
	eps, err := s.cfg.Store.Epochs()
	if err != nil {
		return fmt.Errorf("supervise: snapshot store: %w", err)
	}
	var lastErr error
	for i := len(eps) - 1; i >= 0; i-- {
		data, err := s.cfg.Store.Load(eps[i])
		if err != nil {
			lastErr = err
			continue
		}
		ver, err := runtime.SnapshotFormatVersion(data)
		if err != nil {
			lastErr = err
			continue
		}
		// The store may hold a mix of quiesce snapshots (v1) and barrier
		// cuts (v2) — e.g. after toggling Quiesce, or in the differential
		// tests. Either restores into a fresh build; a restore the graph
		// rejects (UnknownStageError) is as unusable as a corrupt snapshot,
		// but the rendezvous may have touched vertex state — don't risk a
		// half-restored build, fail the attempt.
		if ver >= 2 {
			cut, err := runtime.UnmarshalCut(data)
			if err != nil {
				lastErr = err
				continue
			}
			if err := build.Comp.RestoreCut(cut); err != nil {
				return err
			}
		} else {
			snap, err := runtime.UnmarshalSnapshot(data)
			if err != nil {
				lastErr = err
				continue
			}
			if err := build.Comp.Restore(snap); err != nil {
				return err
			}
		}
		if tr := s.cfg.Tracer; tr != nil {
			tr.Emit(trace.Event{
				Kind: trace.EvRestore, Aux: 1, Worker: -1, Stage: -1, Loc: -1,
				Epoch: eps[i], N: int64(len(data)),
			})
		}
		return nil
	}
	if lastErr != nil {
		// Every retained snapshot was unreadable: recover from scratch,
		// the log still covers the full history iff nothing was pruned.
		// Pruning follows successful saves only, so a store whose every
		// snapshot is corrupt implies an external fault; replaying from
		// epoch 0 is the best remaining option.
		return nil
	}
	return nil // no snapshots yet: fresh start with full replay
}

// replayInto feeds each input the logged epochs past its restored
// position and re-closes inputs the application had closed. Every epoch in
// [restored, fed) must still be in the replay log — pruning only discards
// epochs below the oldest retained snapshot, so a gap can only mean the
// restore point fell below the pruned prefix (e.g. every newer snapshot
// was unreadable and restoreInto fell back further than the log covers).
func (s *Supervisor) replayInto(build *Build) error {
	for name, in := range build.Inputs {
		for e := in.Epoch(); e < s.fed[name]; e++ {
			batch, ok := s.log[name][e]
			if !ok {
				return fmt.Errorf(
					"supervise: replay log pruned below restore point (epoch %d of input %q)",
					e, name)
			}
			in.OnNext(batch...)
		}
		if s.closedIn[name] {
			in.Close()
		}
	}
	return nil
}

// backoff sleeps the jittered exponential delay before a restart attempt
// (attempt ≥ 2).
func (s *Supervisor) backoff(attempt int) {
	d := s.cfg.Backoff << (attempt - 2)
	if d <= 0 || d > s.cfg.MaxBackoff {
		d = s.cfg.MaxBackoff
	}
	time.Sleep(d/2 + time.Duration(s.rng.Int63n(int64(d))))
}
