// Package supervise makes a timely dataflow computation self-healing: a
// Supervisor owns the computation's lifecycle, takes periodic consistent
// checkpoints at epoch boundaries (§3.4), detects failures through the
// runtime's heartbeat detector and watchdog, and on failure rebuilds the
// graph, restores the latest decodable snapshot, and replays the logged
// inputs — rollback recovery over logical time, in the spirit of the
// Falkirk Wheel (Isard & Abadi): the epoch structure tells recovery
// exactly which inputs to replay and which results are already durable.
//
// The contract with the application is the paper's: checkpointed vertex
// state plus replayed input epochs reproduce the lost portion of the
// computation. Outputs for epochs between the restored snapshot and the
// failure point are produced again — exactly-once delivery to the outside
// world is the output consumer's job (keyed by epoch, replays are
// idempotent).
package supervise

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"naiad/internal/runtime"
	"naiad/internal/trace"
)

// Build is one incarnation of the supervised dataflow, produced by the
// Factory: a constructed-but-not-Started computation, its inputs by name,
// and a probe on the output stage (the supervisor quiesces on it before
// checkpoints and uses it to confirm recovery caught up).
type Build struct {
	Comp   *runtime.Computation
	Inputs map[string]*runtime.Input
	Probe  *runtime.Probe
}

// Factory constructs a fresh incarnation of the dataflow. It runs once at
// New and once per restart; it must return an unstarted computation (the
// supervisor calls Start) and must build the same graph every time —
// recovery restores snapshots taken from a previous incarnation into the
// graph this returns. Each incarnation needs its own transport: the old
// one is closed when its computation is torn down.
type Factory func() (*Build, error)

// Config parameterizes a Supervisor.
type Config struct {
	// Factory rebuilds the dataflow; required.
	Factory Factory
	// Store persists snapshots; defaults to NewMemStore(3).
	Store SnapshotStore
	// CheckpointEvery is the epoch interval between checkpoints (default
	// 1: every completed epoch boundary). Larger intervals trade
	// checkpoint overhead for longer replay after a failure.
	CheckpointEvery int64
	// MaxRestarts bounds the restart attempts within one recovery episode
	// (default 3); when they are exhausted the supervisor enters the
	// terminal gave-up state and Wait returns ErrGaveUp.
	MaxRestarts int
	// Backoff is the delay before the second restart attempt (default
	// 50ms), doubling per attempt up to MaxBackoff (default 2s), with
	// ±50% jitter. The first attempt is immediate.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Seed drives the backoff jitter PRNG (default 1).
	Seed int64
	// Tracer, when non-nil, receives supervisor-level recovery events:
	// EvCheckpoint/EvRestore with Aux=1 (snapshot persisted / restored) and
	// EvRestart when a recovery episode completes. Pass the same Tracer to
	// the runtime.Config the Factory builds to interleave these with the
	// runtime's own events on one clock.
	Tracer *trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.Store == nil {
		c.Store = NewMemStore(3)
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ErrGaveUp is wrapped into Wait's error when recovery exhausted its
// restart budget.
var ErrGaveUp = errors.New("supervise: gave up")

// ErrDone is returned by OnNext and CloseInput after the supervised
// computation has already completed cleanly.
var ErrDone = errors.New("supervise: computation complete")

type cmdKind uint8

const (
	cmdFeed cmdKind = iota
	cmdClose
)

type command struct {
	kind    cmdKind
	input   string
	records []runtime.Message
}

// Supervisor owns a computation's lifecycle: feed it through OnNext /
// CloseInput, wait for the terminal state with Wait. All state transitions
// happen on a single internal goroutine, so the public methods are safe
// for concurrent use.
type Supervisor struct {
	cfg Config
	rm  *runtime.RecoveryMetrics

	cmdCh  chan command
	joinCh chan error
	doneCh chan struct{}

	inputs map[string]bool // the graph's input names, fixed at New

	// Run-loop-owned state; never touched from public methods.
	build    *Build
	log      map[string]map[int64][]runtime.Message // input → epoch → batch
	fed      map[string]int64                       // epochs fed per input
	closedIn map[string]bool
	lastCP   int64
	rng      *rand.Rand

	errMu    sync.Mutex
	finalErr error
}

// New builds and starts the first incarnation and begins supervising it.
func New(cfg Config) (*Supervisor, error) {
	if cfg.Factory == nil {
		return nil, fmt.Errorf("supervise: Config.Factory is required")
	}
	cfg = cfg.withDefaults()
	s := &Supervisor{
		cfg:      cfg,
		rm:       &runtime.RecoveryMetrics{},
		cmdCh:    make(chan command, 64),
		joinCh:   make(chan error, 1),
		doneCh:   make(chan struct{}),
		inputs:   make(map[string]bool),
		log:      make(map[string]map[int64][]runtime.Message),
		fed:      make(map[string]int64),
		closedIn: make(map[string]bool),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	build, err := s.spawn()
	if err != nil {
		return nil, err
	}
	s.build = build
	for name := range build.Inputs {
		s.inputs[name] = true
		s.log[name] = make(map[int64][]runtime.Message)
		// Every input participates in the alignment guard from epoch 0: an
		// input that has never been fed must hold minFed at 0, or
		// maybeCheckpoint would quiesce on a frontier the unfed input's
		// seeded pointstamp can never release.
		s.fed[name] = 0
	}
	go s.monitor(build.Comp)
	go s.run()
	return s, nil
}

// spawn runs the factory, validates the build, and starts the computation.
func (s *Supervisor) spawn() (*Build, error) {
	build, err := s.cfg.Factory()
	if err != nil {
		return nil, fmt.Errorf("supervise: factory: %w", err)
	}
	if build == nil || build.Comp == nil || build.Probe == nil || len(build.Inputs) == 0 {
		return nil, fmt.Errorf("supervise: factory must return a computation, at least one input, and a probe")
	}
	build.Comp.SetRecoveryMetrics(s.rm)
	if err := build.Comp.Start(); err != nil {
		return nil, fmt.Errorf("supervise: start: %w", err)
	}
	return build, nil
}

// OnNext feeds one epoch of records to the named input, mirroring
// runtime.Input.OnNext. The batch is logged for replay before it reaches
// the computation; feeding is asynchronous — delivery failures surface
// through recovery, not through this call. The batch is copied before this
// returns, so the caller may reuse its buffer: a mutated buffer must not
// rewrite what a later replay feeds.
func (s *Supervisor) OnNext(input string, records ...runtime.Message) error {
	if !s.inputs[input] {
		return fmt.Errorf("supervise: unknown input %q", input)
	}
	batch := append([]runtime.Message(nil), records...)
	return s.send(command{kind: cmdFeed, input: input, records: batch})
}

// CloseInput marks the named input complete. Once every input is closed
// and the computation drains, Wait returns.
func (s *Supervisor) CloseInput(input string) error {
	if !s.inputs[input] {
		return fmt.Errorf("supervise: unknown input %q", input)
	}
	return s.send(command{kind: cmdClose, input: input})
}

// send enqueues a command unless the supervisor is already terminal. The
// doneCh check comes first: cmdCh is buffered, so a bare select could keep
// accepting commands into the void after the run loop has exited.
func (s *Supervisor) send(cmd command) error {
	select {
	case <-s.doneCh:
		return s.terminalErr()
	default:
	}
	select {
	case s.cmdCh <- cmd:
		return nil
	case <-s.doneCh:
		return s.terminalErr()
	}
}

// terminalErr is what commands get after the supervisor has stopped: the
// fatal error if recovery gave up, ErrDone after a clean completion.
func (s *Supervisor) terminalErr() error {
	if err := s.err(); err != nil {
		return err
	}
	return ErrDone
}

// Wait blocks until the computation completes (nil), or recovery gives up
// (ErrGaveUp, wrapped with the last failure).
func (s *Supervisor) Wait() error {
	<-s.doneCh
	return s.err()
}

// Recovery returns a snapshot of the fault-tolerance counters, shared
// across every incarnation.
func (s *Supervisor) Recovery() runtime.RecoverySnapshot { return s.rm.Snapshot() }

func (s *Supervisor) err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.finalErr
}

// monitor watches one incarnation: Join blocks until the computation
// drains or aborts, and its result is the supervisor's failure signal.
func (s *Supervisor) monitor(comp *runtime.Computation) {
	s.joinCh <- comp.Join()
}

// run is the supervisor's single-threaded state machine: it applies feed
// and close commands, takes checkpoints at epoch boundaries, and reacts to
// the monitored computation's exit.
func (s *Supervisor) run() {
	for {
		select {
		case cmd := <-s.cmdCh:
			s.handle(cmd)
		case err := <-s.joinCh:
			if err == nil {
				s.finish(nil)
				return
			}
			if !s.recover(err) {
				return // finish() already called by recover
			}
		}
	}
}

func (s *Supervisor) finish(err error) {
	s.errMu.Lock()
	s.finalErr = err
	s.errMu.Unlock()
	close(s.doneCh)
}

func (s *Supervisor) handle(cmd command) {
	if s.closedIn[cmd.input] {
		return // feeding or re-closing a closed input is a no-op
	}
	in := s.build.Inputs[cmd.input]
	switch cmd.kind {
	case cmdFeed:
		// Log first: if the computation dies mid-feed, replay still has
		// the batch. cmd.records is the supervisor's own copy (made in
		// OnNext), so the log entry cannot alias a caller buffer.
		s.log[cmd.input][s.fed[cmd.input]] = cmd.records
		s.fed[cmd.input]++
		in.OnNext(cmd.records...)
		s.maybeCheckpoint()
	case cmdClose:
		s.closedIn[cmd.input] = true
		in.Close()
	}
}

// maybeCheckpoint takes a snapshot when every open input has moved
// CheckpointEvery epochs past the last one: quiesce on the probe, pause
// the workers, serialize, persist, prune the replay log below the oldest
// retained snapshot. Skipped once any input has closed — the computation
// is draining toward completion and its workers may exit before a
// checkpoint rendezvous could finish.
func (s *Supervisor) maybeCheckpoint() {
	for _, closed := range s.closedIn {
		if closed {
			return
		}
	}
	minFed, maxFed := int64(-1), int64(-1)
	for _, f := range s.fed {
		if minFed < 0 || f < minFed {
			minFed = f
		}
		if f > maxFed {
			maxFed = f
		}
	}
	// Only checkpoint when every input sits at the same epoch: a snapshot
	// taken while one input is fed ahead of another would capture the
	// leading input's epochs half-processed (they cannot complete until the
	// lagging input catches up), and Checkpoint's contract requires no
	// in-flight work. s.fed covers every input from New (never-fed inputs
	// pin minFed at 0), so the guard also blocks quiescing on a frontier a
	// still-seeded input could never release. Single-input graphs are
	// always aligned.
	if minFed != maxFed {
		return
	}
	if minFed <= 0 || minFed-s.lastCP < s.cfg.CheckpointEvery {
		return
	}
	s.build.Probe.WaitFor(minFed - 1)
	if s.build.Comp.Failed() {
		return // the join monitor will deliver the failure
	}
	var t0 int64
	if tr := s.cfg.Tracer; tr != nil {
		t0 = tr.Now()
	}
	snap, err := s.build.Comp.Checkpoint()
	if err != nil {
		return // abort in progress; same path as above
	}
	data := runtime.EncodeSnapshot(snap)
	if err := s.cfg.Store.Save(minFed, data); err != nil {
		return // a failed save keeps the previous snapshot + longer log
	}
	s.lastCP = minFed
	s.rm.Checkpoints.Add(1)
	s.rm.CheckpointBytes.Add(int64(len(data)))
	if tr := s.cfg.Tracer; tr != nil {
		tr.Emit(trace.Event{
			Kind: trace.EvCheckpoint, Aux: 1, Worker: -1, Stage: -1, Loc: -1,
			Epoch: minFed, Dur: tr.Now() - t0, N: int64(len(data)),
		})
	}
	s.pruneLog()
}

// pruneLog drops replay batches below the oldest retained snapshot: no
// recovery can start earlier than that, so they can never be replayed.
func (s *Supervisor) pruneLog() {
	eps, err := s.cfg.Store.Epochs()
	if err != nil || len(eps) == 0 {
		return
	}
	oldest := eps[0]
	for _, byEpoch := range s.log {
		for e := range byEpoch {
			if e < oldest {
				delete(byEpoch, e)
			}
		}
	}
}

// recover is the rollback-recovery loop: tear down is already done (Join
// returned), so each attempt rebuilds the graph, restores the newest
// snapshot that decodes cleanly, replays the logged epochs past it, and
// waits for the computation to catch up to the pre-failure frontier.
// Returns false after exhausting the restart budget (terminal gave-up).
func (s *Supervisor) recover(cause error) bool {
	t0 := time.Now()
	for attempt := 1; attempt <= s.cfg.MaxRestarts; attempt++ {
		if attempt > 1 {
			s.backoff(attempt)
		}
		build, err := s.spawn()
		if err != nil {
			cause = err
			continue
		}
		if err := s.restoreInto(build); err != nil {
			cause = err
			build.Comp.Abort(err)
			build.Comp.Join()
			continue
		}
		// Replay the logged epochs past each input's restored position,
		// then re-close inputs the application had closed. A missing log
		// entry means the restore point fell below the pruned prefix (every
		// newer snapshot was unreadable): fail the attempt loudly rather
		// than silently feeding empty epochs in place of lost batches.
		if err := s.replayInto(build); err != nil {
			cause = err
			build.Comp.Abort(err)
			build.Comp.Join()
			continue
		}
		// Catch up to the pre-failure frontier before declaring recovery
		// done. WaitFor also unblocks if this incarnation aborts; Failed
		// disambiguates.
		minFed := int64(-1)
		for _, f := range s.fed {
			if minFed < 0 || f < minFed {
				minFed = f
			}
		}
		if minFed > 0 {
			build.Probe.WaitFor(minFed - 1)
		}
		if build.Comp.Failed() {
			cause = build.Comp.Err()
			build.Comp.Join()
			continue
		}
		s.build = build
		s.rm.Restarts.Add(1)
		s.rm.LastRecoveryNanos.Store(time.Since(t0).Nanoseconds())
		if tr := s.cfg.Tracer; tr != nil {
			tr.Emit(trace.Event{
				Kind: trace.EvRestart, Aux: int32(attempt), Worker: -1,
				Stage: -1, Loc: -1, Epoch: minFed,
				Dur: time.Since(t0).Nanoseconds(),
			})
		}
		go s.monitor(build.Comp)
		return true
	}
	s.finish(fmt.Errorf("%w after %d restart attempts: last failure: %v",
		ErrGaveUp, s.cfg.MaxRestarts, cause))
	return false
}

// restoreInto loads the newest snapshot that decodes and validates
// cleanly into the freshly started build. Corrupt snapshots fall back to
// older retained ones; no snapshot at all means recovery restarts from
// epoch 0 with a full replay.
func (s *Supervisor) restoreInto(build *Build) error {
	eps, err := s.cfg.Store.Epochs()
	if err != nil {
		return fmt.Errorf("supervise: snapshot store: %w", err)
	}
	var lastErr error
	for i := len(eps) - 1; i >= 0; i-- {
		data, err := s.cfg.Store.Load(eps[i])
		if err != nil {
			lastErr = err
			continue
		}
		snap, err := runtime.UnmarshalSnapshot(data)
		if err != nil {
			lastErr = err
			continue
		}
		if err := build.Comp.Restore(snap); err != nil {
			// A snapshot the graph rejects (UnknownStageError) is as
			// unusable as a corrupt one, but the rendezvous may have
			// touched vertex state — don't risk a half-restored build.
			return err
		}
		if tr := s.cfg.Tracer; tr != nil {
			tr.Emit(trace.Event{
				Kind: trace.EvRestore, Aux: 1, Worker: -1, Stage: -1, Loc: -1,
				Epoch: eps[i], N: int64(len(data)),
			})
		}
		return nil
	}
	if lastErr != nil {
		// Every retained snapshot was unreadable: recover from scratch,
		// the log still covers the full history iff nothing was pruned.
		// Pruning follows successful saves only, so a store whose every
		// snapshot is corrupt implies an external fault; replaying from
		// epoch 0 is the best remaining option.
		return nil
	}
	return nil // no snapshots yet: fresh start with full replay
}

// replayInto feeds each input the logged epochs past its restored
// position and re-closes inputs the application had closed. Every epoch in
// [restored, fed) must still be in the replay log — pruning only discards
// epochs below the oldest retained snapshot, so a gap can only mean the
// restore point fell below the pruned prefix (e.g. every newer snapshot
// was unreadable and restoreInto fell back further than the log covers).
func (s *Supervisor) replayInto(build *Build) error {
	for name, in := range build.Inputs {
		for e := in.Epoch(); e < s.fed[name]; e++ {
			batch, ok := s.log[name][e]
			if !ok {
				return fmt.Errorf(
					"supervise: replay log pruned below restore point (epoch %d of input %q)",
					e, name)
			}
			in.OnNext(batch...)
		}
		if s.closedIn[name] {
			in.Close()
		}
	}
	return nil
}

// backoff sleeps the jittered exponential delay before a restart attempt
// (attempt ≥ 2).
func (s *Supervisor) backoff(attempt int) {
	d := s.cfg.Backoff << (attempt - 2)
	if d <= 0 || d > s.cfg.MaxBackoff {
		d = s.cfg.MaxBackoff
	}
	time.Sleep(d/2 + time.Duration(s.rng.Int63n(int64(d))))
}
