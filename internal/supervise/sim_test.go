package supervise_test

// The deterministic recovery simulation harness: a seeded PRNG draws an
// entire failure schedule up front — marker-level chaos probabilities,
// link latencies, a process crash, single-worker crashes, pauses — and the
// run must end with exactly the fault-free output no matter how the
// schedule interleaves with barrier alignment. Crashes land at arbitrary
// points of cut assembly, so mid-barrier failure is exercised across
// seeds; the invariant checked at the end is the strongest one available:
// output equality, zero lost or duplicated records, and only untorn cuts
// in the store. Reproduce any failure by re-running with NAIAD_TEST_SEED.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"naiad/internal/progress"
	"naiad/internal/runtime"
	"naiad/internal/supervise"
	"naiad/internal/testutil"
	"naiad/internal/transport"
)

// simTarget hands the latest incarnation's computation and chaos
// transport to the schedule driver. The factory writes it from supervisor
// goroutines while the driver reads it from the test goroutine.
type simTarget struct {
	mu    sync.Mutex
	comp  *runtime.Computation
	chaos *transport.Chaos
}

func (st *simTarget) setComp(c *runtime.Computation) {
	st.mu.Lock()
	st.comp = c
	st.mu.Unlock()
}

func (st *simTarget) setChaos(ch *transport.Chaos) {
	st.mu.Lock()
	st.chaos = ch
	st.mu.Unlock()
}

func (st *simTarget) get() (*runtime.Computation, *transport.Chaos) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.comp, st.chaos
}

// simSchedule is one fully drawn failure plan.
type simSchedule struct {
	epochs         int
	fault          transport.Fault
	procCrashAt    int         // epoch after which process 1 crashes, -1 = never
	workerCrashAt  map[int]int // epoch → worker to crash after feeding it
	pauseProb      float64
	selective      bool
	settleTimeout  time.Duration
	checkpointEach int64
}

func drawSchedule(rng *rand.Rand) simSchedule {
	sch := simSchedule{
		epochs: 10 + rng.Intn(6),
		fault: transport.Fault{
			Latency:            time.Duration(rng.Intn(200)) * time.Microsecond,
			Jitter:             time.Duration(1+rng.Intn(300)) * time.Microsecond,
			DropControlProb:    0.3 * rng.Float64(),
			DupControlProb:     0.3 * rng.Float64(),
			ReorderControlProb: 0.3 * rng.Float64(),
		},
		procCrashAt:    -1,
		workerCrashAt:  make(map[int]int),
		pauseProb:      0.3,
		selective:      rng.Float64() < 0.75,
		settleTimeout:  time.Duration(100+rng.Intn(150)) * time.Millisecond,
		checkpointEach: 1 + rng.Int63n(2),
	}
	if rng.Float64() < 0.5 {
		sch.procCrashAt = rng.Intn(sch.epochs)
	}
	if sch.selective {
		for k := 1 + rng.Intn(3); k > 0; k-- {
			sch.workerCrashAt[rng.Intn(sch.epochs)] = rng.Intn(4)
		}
	}
	return sch
}

// runSimulation executes one drawn schedule and checks the end-to-end
// invariants. It returns the recovery counters for the caller's logging.
func runSimulation(t *testing.T, seed int64) runtime.RecoverySnapshot {
	t.Helper()
	progress.AuditCaps(t)
	rng := rand.New(rand.NewSource(seed))
	sch := drawSchedule(rng)
	t.Logf("schedule: %d epochs, fault %+v, procCrashAt %d, workerCrashAt %v, selective %v, settle %v, every %d",
		sch.epochs, sch.fault, sch.procCrashAt, sch.workerCrashAt, sch.selective,
		sch.settleTimeout, sch.checkpointEach)

	store := supervise.NewMemStore(4)
	s := newEpochSink()
	target := &simTarget{}
	fact, incarnations := counterFactory(s, func(ctx *runtime.Context) runtime.Vertex {
		return &counter{ctx: ctx}
	}, func(inc int64, cfg *runtime.Config) {
		ct := transport.NewChaos(transport.NewMem(2), transport.ChaosConfig{
			Seed: seed + inc, Default: sch.fault,
		})
		cfg.Transport = ct
		cfg.SafetyChecks = true
		cfg.Heartbeat = 2 * time.Millisecond
		cfg.HeartbeatTimeout = 250 * time.Millisecond
		target.setChaos(ct)
	})
	wrapped := supervise.Factory(func() (*supervise.Build, error) {
		b, err := fact()
		if err == nil {
			target.setComp(b.Comp)
		}
		return b, err
	})
	sup, err := supervise.New(supervise.Config{
		Factory: wrapped, Store: store, Seed: seed,
		Selective:        sch.selective,
		CheckpointEvery:  sch.checkpointEach,
		CutSettleTimeout: sch.settleTimeout,
		MaxRestarts:      6,
		Backoff:          time.Millisecond,
		MaxBackoff:       8 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < sch.epochs; e++ {
		if err := sup.OnNext("in", int64(1)<<e); err != nil {
			t.Fatal(err)
		}
		if e == sch.procCrashAt {
			if _, chaos := target.get(); chaos != nil {
				chaos.Crash(1)
			}
		}
		if w, ok := sch.workerCrashAt[e]; ok {
			if comp, _ := target.get(); comp != nil {
				comp.CrashWorker(w) // best effort: a torn-down incarnation drops it
			}
		}
		if rng.Float64() < sch.pauseProb {
			time.Sleep(time.Duration(rng.Intn(500)) * time.Microsecond)
		}
	}
	if err := sup.CloseInput("in"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- sup.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("simulated run failed terminally: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("simulated run hung")
	}
	want := int64(1)<<sch.epochs - 1
	if got := s.values(int64(sch.epochs) - 1); len(got) != 1 || got[0] != want {
		t.Fatalf("final epoch = %v, want [%d]: the failure schedule corrupted the dataflow", got, want)
	}
	auditCutStore(t, store)
	rec := sup.Recovery()
	if sch.procCrashAt >= 0 && rec.Restarts == 0 {
		t.Fatalf("process crash scheduled but no restart recorded: %+v", rec)
	}
	t.Logf("recovery: %+v, incarnations %d", rec, incarnations.Load())
	return rec
}

// TestSeededRecoverySimulation runs the harness across a spread of seeds
// derived from the session seed. Every schedule must converge to the
// reference output.
func TestSeededRecoverySimulation(t *testing.T) {
	base := testutil.Seed(t)
	for i := int64(0); i < 4; i++ {
		seed := base + i*7919
		t.Run(fmt.Sprintf("seed_%d", seed), func(t *testing.T) {
			runSimulation(t, seed)
		})
	}
}

// TestSimulationMidBarrierWorkerCrash pins the mid-barrier case the
// randomized harness only hits probabilistically: markers are delayed so
// cut assembly takes visible time, and the checkpointed worker is crashed
// immediately after the feed that triggers injection — alignment is torn
// mid-flight, the supervisor must abort the cut, revive the worker from
// the previous complete cut (or its birth log), and the output must come
// out exact.
func TestSimulationMidBarrierWorkerCrash(t *testing.T) {
	progress.AuditCaps(t)
	seed := testutil.Seed(t)
	s := newEpochSink()
	target := &simTarget{}
	fact, incarnations := counterFactory(s, func(ctx *runtime.Context) runtime.Vertex {
		return &counter{ctx: ctx}
	}, func(inc int64, cfg *runtime.Config) {
		cfg.Transport = transport.NewChaos(transport.NewMem(2), transport.ChaosConfig{
			Seed:    seed + inc,
			Default: transport.Fault{Latency: 2 * time.Millisecond, Jitter: time.Millisecond},
		})
	})
	wrapped := supervise.Factory(func() (*supervise.Build, error) {
		b, err := fact()
		if err == nil {
			target.setComp(b.Comp)
		}
		return b, err
	})
	sup, err := supervise.New(supervise.Config{
		Factory: wrapped, Selective: true, Seed: seed,
		CutSettleTimeout: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitCp := func(n int64) {
		deadline := time.Now().Add(10 * time.Second)
		for sup.Recovery().Checkpoints < n {
			if time.Now().After(deadline) {
				t.Fatalf("never reached %d checkpoints: %+v", n, sup.Recovery())
			}
			time.Sleep(time.Millisecond)
		}
	}
	if err := sup.OnNext("in", int64(1)); err != nil { // epoch 0
		t.Fatal(err)
	}
	waitCp(1)                                          // cut at boundary 1 complete: the revival baseline exists
	if err := sup.OnNext("in", int64(2)); err != nil { // epoch 1: injects the next cut
		t.Fatal(err)
	}
	comp, _ := target.get()
	if err := comp.CrashWorker(0); err != nil { // mid-alignment: markers are still in flight
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for sup.Recovery().SelectiveRevivals == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no selective revival after mid-barrier crash: %+v", sup.Recovery())
		}
		time.Sleep(time.Millisecond)
	}
	if err := sup.OnNext("in", int64(4)); err != nil { // epoch 2
		t.Fatal(err)
	}
	if err := sup.CloseInput("in"); err != nil {
		t.Fatal(err)
	}
	if err := sup.Wait(); err != nil {
		t.Fatalf("mid-barrier crash did not recover: %v", err)
	}
	if got := s.values(2); len(got) != 1 || got[0] != 7 {
		t.Fatalf("epoch 2 = %v, want [7]", got)
	}
	rec := sup.Recovery()
	if rec.SelectiveRevivals != 1 || rec.Restarts != 0 || incarnations.Load() != 1 {
		t.Fatalf("want exactly one selective revival and no restart, got %+v, %d incarnations",
			rec, incarnations.Load())
	}
}
