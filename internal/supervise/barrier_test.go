package supervise_test

// Tests for the asynchronous-barrier snapshot path: the quiesce
// differential oracle, marker-level chaos (drop / duplicate / reorder must
// stall or abort a cut, never tear it), crash-during-alignment fallback,
// selective single-worker rollback, and the settle-timer liveness bound.

import (
	"testing"
	"time"

	"naiad/internal/codec"
	"naiad/internal/runtime"
	"naiad/internal/supervise"
	"naiad/internal/testutil"
	"naiad/internal/transport"
)

// feedPow2 feeds epochs 0..n-1 with the single value 1<<e, so the counter
// total at any epoch boundary E is the recognizable prefix sum (1<<E)-1.
func feedPow2(t *testing.T, sup *supervise.Supervisor, n int) {
	t.Helper()
	for e := 0; e < n; e++ {
		if err := sup.OnNext("in", int64(1)<<e); err != nil {
			t.Fatal(err)
		}
	}
}

// decodeCounterTotal digs the counter stage's single int64 out of a
// snapshot's vertex fragments. Exactly one stage checkpoints in the
// counter pipeline, so the fragment map must hold exactly one entry.
func decodeCounterTotal(t *testing.T, vertices map[runtime.StageID]map[int][]byte) int64 {
	t.Helper()
	if len(vertices) != 1 {
		t.Fatalf("snapshot has fragments for %d stages, want 1 (the counter)", len(vertices))
	}
	for _, m := range vertices {
		if len(m) != 1 {
			t.Fatalf("counter stage has %d fragments, want 1", len(m))
		}
		for _, frag := range m {
			return codec.NewDecoder(frag).Int64()
		}
	}
	panic("unreachable")
}

// auditCutStore decodes every retained cut and checks the semantic
// torn-cut invariant: a cut persisted under epoch E must carry exactly the
// counter state of a stop-the-world checkpoint at boundary E — the prefix
// sum (1<<E)-1 under the feedPow2 schedule — and must say so in its own
// Epoch field. CRC and framing are validated by UnmarshalCut itself.
func auditCutStore(t *testing.T, store supervise.SnapshotStore) int {
	t.Helper()
	eps, err := store.Epochs()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range eps {
		data, err := store.Load(e)
		if err != nil {
			t.Fatalf("loading cut at epoch %d: %v", e, err)
		}
		ver, err := runtime.SnapshotFormatVersion(data)
		if err != nil || ver < 2 {
			t.Fatalf("epoch %d: version %d, %v — barrier path persisted a non-cut", e, ver, err)
		}
		cut, err := runtime.UnmarshalCut(data)
		if err != nil {
			t.Fatalf("epoch %d: persisted cut does not decode: %v", e, err)
		}
		if cut.Epoch != e {
			t.Fatalf("cut %d persisted under epoch %d but records boundary %d", cut.Cut, e, cut.Epoch)
		}
		want := int64(1)<<e - 1
		if got := decodeCounterTotal(t, cut.Vertices); got != want {
			t.Fatalf("torn cut: epoch-%d snapshot has counter total %d, want %d", e, got, want)
		}
	}
	return len(eps)
}

// TestDifferentialQuiesceVsBarrierCut is the oracle test: the same
// workload checkpointed by the legacy stop-the-world quiesce path and by
// asynchronous barrier cuts must persist identical vertex state and input
// positions at every epoch boundary both paths snapshotted.
func TestDifferentialQuiesceVsBarrierCut(t *testing.T) {
	const epochs = 6
	run := func(quiesce bool) supervise.SnapshotStore {
		store := supervise.NewMemStore(epochs)
		s := newEpochSink()
		fact, _ := counterFactory(s, func(ctx *runtime.Context) runtime.Vertex {
			return &counter{ctx: ctx}
		}, nil)
		sup, err := supervise.New(supervise.Config{
			Factory: fact, Store: store, Quiesce: quiesce, Seed: testutil.Seed(t),
		})
		if err != nil {
			t.Fatal(err)
		}
		feedPow2(t, sup, epochs)
		if err := sup.CloseInput("in"); err != nil {
			t.Fatal(err)
		}
		if err := sup.Wait(); err != nil {
			t.Fatal(err)
		}
		if got := s.values(epochs - 1); len(got) != 1 || got[0] != int64(1)<<epochs-1 {
			t.Fatalf("quiesce=%v: final epoch = %v, want [%d]", quiesce, got, int64(1)<<epochs-1)
		}
		return store
	}
	oracle := run(true)
	barrier := run(false)

	oracleEps, err := oracle.Epochs()
	if err != nil {
		t.Fatal(err)
	}
	barrierSet := make(map[int64]bool)
	if eps, err := barrier.Epochs(); err != nil {
		t.Fatal(err)
	} else {
		for _, e := range eps {
			barrierSet[e] = true
		}
	}
	compared := 0
	for _, e := range oracleEps {
		if !barrierSet[e] {
			continue // the pipelined barrier path may legally skip boundaries
		}
		odata, err := oracle.Load(e)
		if err != nil {
			t.Fatal(err)
		}
		if ver, _ := runtime.SnapshotFormatVersion(odata); ver != 1 {
			t.Fatalf("quiesce path wrote format version %d, want 1", ver)
		}
		snap, err := runtime.UnmarshalSnapshot(odata)
		if err != nil {
			t.Fatal(err)
		}
		bdata, err := barrier.Load(e)
		if err != nil {
			t.Fatal(err)
		}
		cut, err := runtime.UnmarshalCut(bdata)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := decodeCounterTotal(t, cut.Vertices), decodeCounterTotal(t, snap.Vertices); got != want {
			t.Fatalf("epoch %d: barrier cut holds counter total %d, quiesce oracle %d", e, got, want)
		}
		if len(cut.InputEpochs) != len(snap.InputEpochs) {
			t.Fatalf("epoch %d: input-epoch maps differ: %v vs %v", e, cut.InputEpochs, snap.InputEpochs)
		}
		for sid, oe := range snap.InputEpochs {
			if be, ok := cut.InputEpochs[sid]; !ok || be != oe {
				t.Fatalf("epoch %d: input stage %d at %d in the cut, %d in the oracle", e, sid, be, oe)
			}
		}
		compared++
	}
	if compared == 0 {
		t.Fatal("no common snapshot boundary between the two paths — differential test compared nothing")
	}
	// The final boundary must exist on both sides: the deferred close
	// forces the barrier path to take its last cut there.
	if !barrierSet[epochs] {
		t.Fatalf("barrier path never snapshotted the final boundary %d", epochs)
	}
}

// barrierChaosRun drives the pow-2 workload through a chaos transport with
// the given control-frame faults on every link and incarnation, then
// audits every persisted cut for tearing. Marker loss stalls cuts (the
// settle timer aborts them), duplicates and reorders poison them — none
// of it may corrupt a snapshot or kill the run.
func barrierChaosRun(t *testing.T, fault transport.Fault, epochs int) runtime.RecoverySnapshot {
	t.Helper()
	seed := testutil.Seed(t)
	store := supervise.NewMemStore(4)
	s := newEpochSink()
	fact, incarnations := counterFactory(s, func(ctx *runtime.Context) runtime.Vertex {
		return &counter{ctx: ctx}
	}, func(inc int64, cfg *runtime.Config) {
		cfg.Transport = transport.NewChaos(transport.NewMem(2), transport.ChaosConfig{
			Seed: seed + inc, Default: fault,
		})
		cfg.SafetyChecks = true
	})
	sup, err := supervise.New(supervise.Config{
		Factory: fact, Store: store, Seed: seed,
		CutSettleTimeout: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	feedPow2(t, sup, epochs)
	if err := sup.CloseInput("in"); err != nil {
		t.Fatal(err)
	}
	if err := sup.Wait(); err != nil {
		t.Fatalf("run under marker chaos failed: %v", err)
	}
	want := int64(1)<<epochs - 1
	if got := s.values(int64(epochs) - 1); len(got) != 1 || got[0] != want {
		t.Fatalf("final epoch = %v, want [%d]: marker chaos corrupted the dataflow", got, want)
	}
	rec := sup.Recovery()
	if rec.Restarts != 0 {
		t.Fatalf("marker chaos restarted the computation %d times; it may only cost snapshots (%+v)", rec.Restarts, rec)
	}
	if incarnations.Load() != 1 {
		t.Fatalf("built %d incarnations, want 1", incarnations.Load())
	}
	auditCutStore(t, store)
	return rec
}

// TestBarrierChaosMarkerFaultsNeverTearCuts: each marker-level fault mode,
// and all of them combined, at probabilities high enough that many cuts
// are hit. The runs must complete with exact output, zero restarts, and
// only untorn cuts in the store.
func TestBarrierChaosMarkerFaultsNeverTearCuts(t *testing.T) {
	const epochs = 12
	t.Run("drop", func(t *testing.T) {
		barrierChaosRun(t, transport.Fault{DropControlProb: 0.25}, epochs)
	})
	t.Run("dup", func(t *testing.T) {
		barrierChaosRun(t, transport.Fault{DupControlProb: 0.25}, epochs)
	})
	t.Run("reorder", func(t *testing.T) {
		barrierChaosRun(t, transport.Fault{ReorderControlProb: 0.3}, epochs)
	})
	t.Run("all", func(t *testing.T) {
		rec := barrierChaosRun(t, transport.Fault{
			DropControlProb: 0.15, DupControlProb: 0.15, ReorderControlProb: 0.15,
		}, epochs)
		if rec.Cuts == 0 && rec.CutAborts == 0 {
			t.Fatalf("combined chaos run neither completed nor aborted any cut: %+v", rec)
		}
	})
}

// TestBarrierCrashMidAlignmentFallsBack: with every cross-process marker
// eaten, no cut can ever complete — cut 1 is permanently mid-alignment
// when the process crashes. Recovery must fall back to the last complete
// snapshot (here: none — a full epoch-0 replay) and still produce the
// reference output; the second, healthy incarnation then checkpoints
// normally.
func TestBarrierCrashMidAlignmentFallsBack(t *testing.T) {
	seed := testutil.Seed(t)
	store := supervise.NewMemStore(4)
	s := newEpochSink()
	var chaos0 *transport.Chaos
	fact, incarnations := counterFactory(s, func(ctx *runtime.Context) runtime.Vertex {
		return &counter{ctx: ctx}
	}, func(inc int64, cfg *runtime.Config) {
		ccfg := transport.ChaosConfig{Seed: seed + inc}
		if inc == 0 {
			ccfg.Default = transport.Fault{DropControlProb: 1.0}
		}
		ct := transport.NewChaos(transport.NewMem(2), ccfg)
		if inc == 0 {
			chaos0 = ct
		}
		cfg.Transport = ct
	})
	sup, err := supervise.New(supervise.Config{
		Factory: fact, Store: store, Seed: seed,
		CutSettleTimeout: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	feedPow2(t, sup, 3) // cut 1 injected at epoch 1 and stuck aligning forever
	chaos0.Crash(1)
	if err := sup.OnNext("in", int64(1)<<3); err != nil {
		t.Fatal(err)
	}
	if err := sup.CloseInput("in"); err != nil {
		t.Fatal(err)
	}
	if err := sup.Wait(); err != nil {
		t.Fatalf("crash during alignment did not recover: %v", err)
	}
	if got := s.values(3); len(got) != 1 || got[0] != 15 {
		t.Fatalf("epoch 3 = %v, want [15]", got)
	}
	rec := sup.Recovery()
	if rec.Restarts != 1 || incarnations.Load() != 2 {
		t.Fatalf("restarts = %d, incarnations = %d; want 1 and 2 (%+v)", rec.Restarts, incarnations.Load(), rec)
	}
	if rec.Checkpoints == 0 {
		t.Fatalf("healthy incarnation never completed a cut: %+v", rec)
	}
	auditCutStore(t, store)
}

// TestSelectiveRollbackKeepsHealthyWorkersRunning: with Selective enabled,
// a single-worker crash is repaired by restoring only that worker from the
// latest complete cut and replaying its delivery log — no teardown, no new
// incarnation, healthy workers never stop.
func TestSelectiveRollbackKeepsHealthyWorkersRunning(t *testing.T) {
	seed := testutil.Seed(t)
	s := newEpochSink()
	var comp *runtime.Computation
	fact, incarnations := counterFactory(s, func(ctx *runtime.Context) runtime.Vertex {
		return &counter{ctx: ctx}
	}, func(inc int64, cfg *runtime.Config) {
		cfg.Transport = transport.NewMem(2)
	})
	wrapped := supervise.Factory(func() (*supervise.Build, error) {
		b, err := fact()
		if err == nil {
			comp = b.Comp
		}
		return b, err
	})
	sup, err := supervise.New(supervise.Config{
		Factory: wrapped, Selective: true, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	feedPow2(t, sup, 2)
	waitForCheckpoints(t, sup, 1)
	// Crash worker 0 — it hosts the pinned counter, so its lost state can
	// only come back from the cut fragment plus the delivery-log replay.
	if err := comp.CrashWorker(0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for sup.Recovery().SelectiveRevivals == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("selective revival never happened: %+v", sup.Recovery())
		}
		time.Sleep(time.Millisecond)
	}
	feedPow2All := []int64{1 << 2, 1 << 3}
	for _, v := range feedPow2All {
		if err := sup.OnNext("in", v); err != nil {
			t.Fatal(err)
		}
	}
	if err := sup.CloseInput("in"); err != nil {
		t.Fatal(err)
	}
	if err := sup.Wait(); err != nil {
		t.Fatalf("run after selective revival failed: %v", err)
	}
	if got := s.values(3); len(got) != 1 || got[0] != 15 {
		t.Fatalf("epoch 3 = %v, want [15]: revival lost or duplicated state", got)
	}
	rec := sup.Recovery()
	if rec.SelectiveRevivals != 1 {
		t.Fatalf("selective revivals = %d, want 1 (%+v)", rec.SelectiveRevivals, rec)
	}
	if rec.Restarts != 0 {
		t.Fatalf("selective rollback restarted the whole computation: %+v", rec)
	}
	if incarnations.Load() != 1 {
		t.Fatalf("built %d incarnations, want 1: healthy workers were not left running", incarnations.Load())
	}
	if rec.LastRecovery <= 0 {
		t.Fatalf("revival duration not recorded: %+v", rec)
	}
}

// TestCutSettleTimeoutReleasesDeferredClose: when the network eats every
// marker, the final cut never settles; the settle timer must abort it so
// the deferred CloseInput → Wait completes instead of hanging forever.
func TestCutSettleTimeoutReleasesDeferredClose(t *testing.T) {
	seed := testutil.Seed(t)
	s := newEpochSink()
	fact, _ := counterFactory(s, func(ctx *runtime.Context) runtime.Vertex {
		return &counter{ctx: ctx}
	}, func(inc int64, cfg *runtime.Config) {
		cfg.Transport = transport.NewChaos(transport.NewMem(2), transport.ChaosConfig{
			Seed: seed + inc, Default: transport.Fault{DropControlProb: 1.0},
		})
	})
	sup, err := supervise.New(supervise.Config{
		Factory: fact, Seed: seed, CutSettleTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	feedPow2(t, sup, 3)
	if err := sup.CloseInput("in"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- sup.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Wait hung: the stalled cut blocked the deferred close forever")
	}
	if got := s.values(2); len(got) != 1 || got[0] != 7 {
		t.Fatalf("epoch 2 = %v, want [7]", got)
	}
	rec := sup.Recovery()
	if rec.CutAborts == 0 {
		t.Fatalf("stalled cut was never aborted: %+v", rec)
	}
	if rec.Checkpoints != 0 {
		t.Fatalf("a cut completed with every marker dropped: %+v", rec)
	}
}
