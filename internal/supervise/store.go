package supervise

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// SnapshotStore persists encoded snapshots keyed by the epoch boundary
// they were taken at. Implementations retain a bounded number of recent
// snapshots: recovery walks Epochs() from newest to oldest until it finds
// one that decodes cleanly, so keeping K > 1 turns a corrupt latest
// snapshot into a longer replay instead of a lost computation.
type SnapshotStore interface {
	// Save persists data under epoch, evicting the oldest snapshots beyond
	// the store's retention limit.
	Save(epoch int64, data []byte) error
	// Epochs returns the retained snapshot epochs in ascending order.
	Epochs() ([]int64, error)
	// Load returns the snapshot saved under epoch.
	Load(epoch int64) ([]byte, error)
}

// MemStore is the in-memory SnapshotStore: snapshots survive computation
// restarts but not process death. The zero value is unusable; use
// NewMemStore.
type MemStore struct {
	mu   sync.Mutex
	k    int
	snap map[int64][]byte
}

// NewMemStore returns a MemStore retaining the last k snapshots (k ≥ 1).
func NewMemStore(k int) *MemStore {
	if k < 1 {
		k = 1
	}
	return &MemStore{k: k, snap: make(map[int64][]byte)}
}

// Save stores a copy of data under epoch.
func (m *MemStore) Save(epoch int64, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snap[epoch] = append([]byte(nil), data...)
	for len(m.snap) > m.k {
		oldest := int64(0)
		first := true
		for e := range m.snap {
			if first || e < oldest {
				oldest, first = e, false
			}
		}
		delete(m.snap, oldest)
	}
	return nil
}

// Epochs returns the retained epochs, ascending.
func (m *MemStore) Epochs() ([]int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	eps := make([]int64, 0, len(m.snap))
	for e := range m.snap {
		eps = append(eps, e)
	}
	sort.Slice(eps, func(i, j int) bool { return eps[i] < eps[j] })
	return eps, nil
}

// Load returns the snapshot stored under epoch.
func (m *MemStore) Load(epoch int64) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.snap[epoch]
	if !ok {
		return nil, fmt.Errorf("supervise: no snapshot for epoch %d", epoch)
	}
	return append([]byte(nil), data...), nil
}

// DiskStore is the on-disk SnapshotStore: one file per snapshot under a
// directory, written atomically (temp file + rename) so a crash mid-write
// never leaves a half-snapshot under a valid name. File damage after the
// fact is caught by the snapshot checksum at load time.
type DiskStore struct {
	mu  sync.Mutex
	dir string
	k   int
}

const snapExt = ".snap"

// NewDiskStore returns a DiskStore rooted at dir (created if missing)
// retaining the last k snapshots (k ≥ 1).
func NewDiskStore(dir string, k int) (*DiskStore, error) {
	if k < 1 {
		k = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("supervise: snapshot dir: %w", err)
	}
	return &DiskStore{dir: dir, k: k}, nil
}

func (d *DiskStore) path(epoch int64) string {
	// Zero-padded decimal keeps lexicographic and numeric order aligned.
	return filepath.Join(d.dir, fmt.Sprintf("%020d%s", epoch, snapExt))
}

// Save atomically writes data under epoch and evicts beyond retention.
func (d *DiskStore) Save(epoch int64, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	tmp, err := os.CreateTemp(d.dir, "tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), d.path(epoch)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	eps, err := d.epochsLocked()
	if err != nil {
		return err
	}
	for i := 0; i < len(eps)-d.k; i++ {
		os.Remove(d.path(eps[i]))
	}
	return nil
}

// Epochs returns the retained epochs, ascending.
func (d *DiskStore) Epochs() ([]int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.epochsLocked()
}

func (d *DiskStore) epochsLocked() ([]int64, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	var eps []int64
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasSuffix(name, snapExt) {
			continue
		}
		e, err := strconv.ParseInt(strings.TrimSuffix(name, snapExt), 10, 64)
		if err != nil {
			continue // foreign file; not ours to interpret
		}
		eps = append(eps, e)
	}
	sort.Slice(eps, func(i, j int) bool { return eps[i] < eps[j] })
	return eps, nil
}

// Load returns the snapshot stored under epoch.
func (d *DiskStore) Load(epoch int64) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return os.ReadFile(d.path(epoch))
}
