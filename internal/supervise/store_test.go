package supervise_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"naiad/internal/supervise"
)

func testStoreRetention(t *testing.T, st supervise.SnapshotStore) {
	t.Helper()
	for e := int64(1); e <= 5; e++ {
		if err := st.Save(e, []byte{byte(e)}); err != nil {
			t.Fatalf("Save(%d): %v", e, err)
		}
	}
	eps, err := st.Epochs()
	if err != nil {
		t.Fatal(err)
	}
	if want := []int64{3, 4, 5}; !reflect.DeepEqual(eps, want) {
		t.Fatalf("Epochs = %v, want %v (oldest evicted, ascending)", eps, want)
	}
	for _, e := range eps {
		data, err := st.Load(e)
		if err != nil {
			t.Fatalf("Load(%d): %v", e, err)
		}
		if !bytes.Equal(data, []byte{byte(e)}) {
			t.Fatalf("Load(%d) = %v", e, data)
		}
	}
	if _, err := st.Load(1); err == nil {
		t.Fatal("Load of an evicted epoch succeeded")
	}
}

func TestMemStoreRetention(t *testing.T) {
	testStoreRetention(t, supervise.NewMemStore(3))
}

func TestDiskStoreRetention(t *testing.T) {
	st, err := supervise.NewDiskStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	testStoreRetention(t, st)
}

// TestMemStoreCopies: Save and Load must copy, so callers mutating their
// buffers cannot corrupt the retained snapshot.
func TestMemStoreCopies(t *testing.T) {
	st := supervise.NewMemStore(2)
	buf := []byte{1, 2, 3}
	if err := st.Save(7, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99
	got, err := st.Load(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("caller mutation leaked into the store: %v", got)
	}
	got[1] = 99
	again, _ := st.Load(7)
	if !bytes.Equal(again, []byte{1, 2, 3}) {
		t.Fatalf("load-side mutation leaked into the store: %v", again)
	}
}

// TestDiskStoreSurvivesReopen: snapshots written by one DiskStore are
// visible to a fresh one over the same directory — the property that makes
// recovery after process death possible.
func TestDiskStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := supervise.NewDiskStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(42, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	st2, err := supervise.NewDiskStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := st2.Epochs()
	if err != nil || len(eps) != 1 || eps[0] != 42 {
		t.Fatalf("Epochs = %v, %v", eps, err)
	}
	data, err := st2.Load(42)
	if err != nil || string(data) != "hello" {
		t.Fatalf("Load = %q, %v", data, err)
	}
}

// TestDiskStoreIgnoresForeignFiles: stray files in the snapshot directory
// must not be interpreted as epochs or deleted by eviction.
func TestDiskStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	foreign := filepath.Join(dir, "README.txt")
	if err := os.WriteFile(foreign, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := supervise.NewDiskStore(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(2, []byte{2}); err != nil {
		t.Fatal(err)
	}
	eps, err := st.Epochs()
	if err != nil || len(eps) != 1 || eps[0] != 2 {
		t.Fatalf("Epochs = %v, %v", eps, err)
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatalf("eviction removed a foreign file: %v", err)
	}
}
