package supervise_test

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"naiad/internal/codec"
	"naiad/internal/graph"
	"naiad/internal/runtime"
	"naiad/internal/supervise"
	"naiad/internal/testutil"
	ts "naiad/internal/timestamp"
	"naiad/internal/transport"
)

// counter sums every value it has ever seen and emits the running total at
// each epoch's notification; the total is its checkpointed state. The
// standard feed (1,2), (10), (100) makes the epoch-2 output 113 — the
// delay- and replay-invariant reference for recovery runs.
type counter struct {
	ctx   *runtime.Context
	total int64
	dirty map[int64]bool
}

func (v *counter) OnRecv(_ int, msg runtime.Message, t ts.Timestamp) {
	if v.dirty == nil {
		v.dirty = make(map[int64]bool)
	}
	if !v.dirty[t.Epoch] {
		v.dirty[t.Epoch] = true
		v.ctx.NotifyAt(t)
	}
	v.total += msg.(int64)
}

func (v *counter) OnNotify(t ts.Timestamp) {
	delete(v.dirty, t.Epoch)
	v.ctx.SendBy(0, v.total, t)
}

func (v *counter) Checkpoint(enc *codec.Encoder) { enc.PutInt64(v.total) }
func (v *counter) Restore(dec *codec.Decoder)    { v.total = dec.Int64() }

// bomb is a counter that panics on a poison value, killing every
// incarnation that replays it.
type bomb struct{ counter }

func (v *bomb) OnRecv(port int, msg runtime.Message, t ts.Timestamp) {
	if msg.(int64) == 13 {
		panic("poison record")
	}
	v.counter.OnRecv(port, msg, t)
}

// epochSink records the distinct values seen per epoch. One instance is
// shared across incarnations: replays may re-emit an epoch's output, and
// the invariant under recovery is set equality with the fault-free run —
// exactly-once delivery to the outside world is the consumer's job, keyed
// by epoch (see the package comment).
type epochSink struct {
	mu      sync.Mutex
	byEpoch map[int64]map[int64]bool
}

func newEpochSink() *epochSink { return &epochSink{byEpoch: make(map[int64]map[int64]bool)} }

func (s *epochSink) add(e, v int64) {
	s.mu.Lock()
	if s.byEpoch[e] == nil {
		s.byEpoch[e] = make(map[int64]bool)
	}
	s.byEpoch[e][v] = true
	s.mu.Unlock()
}

func (s *epochSink) values(e int64) []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []int64
	for v := range s.byEpoch[e] {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

type sinkVertex struct {
	ctx  *runtime.Context
	s    *epochSink
	seen map[int64]bool
}

func (v *sinkVertex) OnRecv(_ int, msg runtime.Message, t ts.Timestamp) {
	if v.seen == nil {
		v.seen = make(map[int64]bool)
	}
	if !v.seen[t.Epoch] {
		v.seen[t.Epoch] = true
		v.ctx.NotifyAt(t)
	}
	v.s.add(t.Epoch, msg.(int64))
}

func (v *sinkVertex) OnNotify(ts.Timestamp) {}

// counterFactory builds the two-process counter pipeline. mkVertex picks
// the middle vertex; tune (optional) adjusts the config per incarnation —
// typically installing a fresh fault-injecting transport.
func counterFactory(s *epochSink, mkVertex func(*runtime.Context) runtime.Vertex,
	tune func(incarnation int64, cfg *runtime.Config)) (supervise.Factory, *atomic.Int64) {
	var incarnations atomic.Int64
	return func() (*supervise.Build, error) {
		inc := incarnations.Add(1) - 1
		cfg := runtime.Config{Processes: 2, WorkersPerProcess: 2,
			Accumulation: runtime.AccLocalGlobal, Watchdog: 5 * time.Second}
		if tune != nil {
			tune(inc, &cfg)
		}
		c, err := runtime.NewComputation(cfg)
		if err != nil {
			return nil, err
		}
		in := c.NewInput("in")
		ctr := c.AddStage("counter", graph.RoleNormal, 0, mkVertex, runtime.Pinned(0))
		c.Connect(in.Stage(), 0, ctr, func(runtime.Message) uint64 { return 0 }, codec.Int64())
		snk := c.AddStage("sink", graph.RoleNormal, 0, func(ctx *runtime.Context) runtime.Vertex {
			return &sinkVertex{ctx: ctx, s: s}
		}, runtime.Pinned(0))
		c.Connect(ctr, 0, snk, func(runtime.Message) uint64 { return 0 }, codec.Int64())
		return &supervise.Build{
			Comp:   c,
			Inputs: map[string]*runtime.Input{"in": in},
			Probe:  c.NewProbe(snk),
		}, nil
	}, &incarnations
}

func feedStandard(t *testing.T, sup *supervise.Supervisor) {
	t.Helper()
	for _, batch := range [][]runtime.Message{{int64(1), int64(2)}, {int64(10)}, {int64(100)}} {
		if err := sup.OnNext("in", batch...); err != nil {
			t.Fatal(err)
		}
	}
	if err := sup.CloseInput("in"); err != nil {
		t.Fatal(err)
	}
}

func waitForCheckpoints(t *testing.T, sup *supervise.Supervisor, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for sup.Recovery().Checkpoints < n {
		if time.Now().After(deadline) {
			t.Fatalf("never reached %d checkpoints: %+v", n, sup.Recovery())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSupervisorCleanRun: a fault-free supervised run completes, produces
// the reference output, and takes checkpoints at every epoch boundary.
func TestSupervisorCleanRun(t *testing.T) {
	s := newEpochSink()
	fact, incarnations := counterFactory(s, func(ctx *runtime.Context) runtime.Vertex {
		return &counter{ctx: ctx}
	}, nil)
	sup, err := supervise.New(supervise.Config{Factory: fact, Seed: testutil.Seed(t)})
	if err != nil {
		t.Fatal(err)
	}
	feedStandard(t, sup)
	if err := sup.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := s.values(2); len(got) != 1 || got[0] != 113 {
		t.Fatalf("epoch 2 = %v, want [113]", got)
	}
	rec := sup.Recovery()
	if rec.Checkpoints < 2 || rec.CheckpointBytes == 0 {
		t.Fatalf("expected periodic checkpoints, got %+v", rec)
	}
	if rec.Restarts != 0 {
		t.Fatalf("fault-free run restarted: %+v", rec)
	}
	if incarnations.Load() != 1 {
		t.Fatalf("fault-free run built %d incarnations", incarnations.Load())
	}
	// The supervisor is terminal: further commands fail fast.
	if err := sup.OnNext("in", int64(5)); err == nil {
		t.Fatal("OnNext after completion succeeded")
	}
	if err := sup.OnNext("nope"); err == nil || !strings.Contains(err.Error(), "unknown input") {
		t.Fatalf("unknown input error = %v", err)
	}
}

// TestSupervisorRecoversFromCrash is the tentpole acceptance test: crash a
// process mid-computation and the supervisor must rebuild, restore the
// latest snapshot, replay the logged epochs, and finish with output equal
// to the fault-free run.
func TestSupervisorRecoversFromCrash(t *testing.T) {
	seed := testutil.Seed(t)
	s := newEpochSink()
	var chaos0 *transport.Chaos
	fact, incarnations := counterFactory(s, func(ctx *runtime.Context) runtime.Vertex {
		return &counter{ctx: ctx}
	}, func(inc int64, cfg *runtime.Config) {
		ct := transport.NewChaos(transport.NewMem(2), transport.ChaosConfig{Seed: seed + inc})
		if inc == 0 {
			chaos0 = ct
		}
		cfg.Transport = ct
	})
	sup, err := supervise.New(supervise.Config{Factory: fact, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.OnNext("in", int64(1), int64(2)); err != nil {
		t.Fatal(err)
	}
	if err := sup.OnNext("in", int64(10)); err != nil {
		t.Fatal(err)
	}
	waitForCheckpoints(t, sup, 2)
	chaos0.Crash(1) // kill a process with epochs 0–1 checkpointed
	if err := sup.OnNext("in", int64(100)); err != nil {
		t.Fatal(err)
	}
	if err := sup.CloseInput("in"); err != nil {
		t.Fatal(err)
	}
	if err := sup.Wait(); err != nil {
		t.Fatalf("supervised run did not recover: %v", err)
	}
	if got := s.values(2); len(got) != 1 || got[0] != 113 {
		t.Fatalf("epoch 2 = %v, want [113]: recovery lost or corrupted state", got)
	}
	rec := sup.Recovery()
	if rec.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1 (%+v)", rec.Restarts, rec)
	}
	if rec.LastRecovery <= 0 {
		t.Fatalf("last recovery duration not recorded: %+v", rec)
	}
	if incarnations.Load() != 2 {
		t.Fatalf("built %d incarnations, want 2", incarnations.Load())
	}
}

// twoInputFactory builds a two-input counter pipeline: inputs "a" and "b"
// both feed the counter, whose epoch-e notification emits the running total
// of everything received so far (delay-invariant only at the final epoch).
func twoInputFactory(s *epochSink, tune func(incarnation int64, cfg *runtime.Config)) (supervise.Factory, *atomic.Int64) {
	var incarnations atomic.Int64
	return func() (*supervise.Build, error) {
		inc := incarnations.Add(1) - 1
		cfg := runtime.Config{Processes: 2, WorkersPerProcess: 2,
			Accumulation: runtime.AccLocalGlobal, Watchdog: 5 * time.Second}
		if tune != nil {
			tune(inc, &cfg)
		}
		c, err := runtime.NewComputation(cfg)
		if err != nil {
			return nil, err
		}
		a, b := c.NewInput("a"), c.NewInput("b")
		ctr := c.AddStage("counter", graph.RoleNormal, 0, func(ctx *runtime.Context) runtime.Vertex {
			return &counter{ctx: ctx}
		}, runtime.Pinned(0))
		c.Connect(a.Stage(), 0, ctr, func(runtime.Message) uint64 { return 0 }, codec.Int64())
		c.Connect(b.Stage(), 0, ctr, func(runtime.Message) uint64 { return 0 }, codec.Int64())
		snk := c.AddStage("sink", graph.RoleNormal, 0, func(ctx *runtime.Context) runtime.Vertex {
			return &sinkVertex{ctx: ctx, s: s}
		}, runtime.Pinned(0))
		c.Connect(ctr, 0, snk, func(runtime.Message) uint64 { return 0 }, codec.Int64())
		return &supervise.Build{
			Comp:   c,
			Inputs: map[string]*runtime.Input{"a": a, "b": b},
			Probe:  c.NewProbe(snk),
		}, nil
	}, &incarnations
}

// TestSupervisorMultiInputAlignment regression-tests the alignment guard's
// treatment of never-fed inputs: the very first feed to one input of a
// two-input graph must not trigger a checkpoint quiesce — the other input's
// seeded epoch-0 pointstamp holds the frontier, so a probe wait there would
// deadlock the run loop forever (and no queued command could ever unblock
// it). Inputs are fed strictly one at a time; checkpoints may only happen
// at aligned epoch boundaries.
func TestSupervisorMultiInputAlignment(t *testing.T) {
	s := newEpochSink()
	fact, incarnations := twoInputFactory(s, nil)
	sup, err := supervise.New(supervise.Config{Factory: fact, Seed: testutil.Seed(t)})
	if err != nil {
		t.Fatal(err)
	}
	feeds := []struct {
		in string
		v  int64
	}{{"a", 1}, {"b", 10}, {"a", 100}, {"b", 1000}}
	for _, f := range feeds {
		if err := sup.OnNext(f.in, f.v); err != nil {
			t.Fatal(err)
		}
	}
	for _, in := range []string{"a", "b"} {
		if err := sup.CloseInput(in); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- sup.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("supervisor deadlocked: checkpoint quiesce fired while an input was never fed")
	}
	if got := s.values(1); len(got) != 1 || got[0] != 1111 {
		t.Fatalf("epoch 1 = %v, want [1111]", got)
	}
	rec := sup.Recovery()
	if rec.Checkpoints != 2 {
		t.Fatalf("checkpoints = %d, want 2 (aligned boundaries only): %+v", rec.Checkpoints, rec)
	}
	if rec.Restarts != 0 || incarnations.Load() != 1 {
		t.Fatalf("fault-free multi-input run restarted: %+v, %d incarnations", rec, incarnations.Load())
	}
}

// TestSupervisorReplayUnaffectedByCallerBufferReuse: the replay log must
// own its batches. A caller that recycles its batch buffer after OnNext
// returns must not rewrite history — the replayed run's output must equal
// the fault-free run's. Checkpointing is effectively disabled so recovery
// replays every logged epoch, including the ones fed from the recycled
// buffer.
func TestSupervisorReplayUnaffectedByCallerBufferReuse(t *testing.T) {
	seed := testutil.Seed(t)
	s := newEpochSink()
	var chaos0 *transport.Chaos
	fact, _ := counterFactory(s, func(ctx *runtime.Context) runtime.Vertex {
		return &counter{ctx: ctx}
	}, func(inc int64, cfg *runtime.Config) {
		ct := transport.NewChaos(transport.NewMem(2), transport.ChaosConfig{Seed: seed + inc})
		if inc == 0 {
			chaos0 = ct
		}
		cfg.Transport = ct
	})
	sup, err := supervise.New(supervise.Config{Factory: fact, CheckpointEvery: 100, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]runtime.Message, 2)
	buf[0], buf[1] = int64(1), int64(2)
	if err := sup.OnNext("in", buf...); err != nil { // epoch 0: {1,2}
		t.Fatal(err)
	}
	buf[0] = int64(10)
	if err := sup.OnNext("in", buf[:1]...); err != nil { // epoch 1: {10}
		t.Fatal(err)
	}
	// Poison the recycled buffer: if the log aliased it, replay would feed
	// {4242,4242} and {4242} instead of {1,2} and {10}.
	buf[0], buf[1] = int64(4242), int64(4242)
	chaos0.Crash(1)
	if err := sup.OnNext("in", int64(100)); err != nil { // epoch 2: {100}
		t.Fatal(err)
	}
	if err := sup.CloseInput("in"); err != nil {
		t.Fatal(err)
	}
	if err := sup.Wait(); err != nil {
		t.Fatalf("supervised run did not recover: %v", err)
	}
	if got := s.values(2); len(got) != 1 || got[0] != 113 {
		t.Fatalf("epoch 2 = %v, want [113]: replay fed a batch the caller had overwritten", got)
	}
	if rec := sup.Recovery(); rec.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1 (%+v)", rec.Restarts, rec)
	}
}

// TestSupervisorRecoversFromPartition: an unhealed network partition stalls
// the computation silently — no crash callback fires. The heartbeat
// detector must raise the suspicion that aborts the incarnation, and the
// supervisor must then rebuild on a healthy network and finish correctly.
func TestSupervisorRecoversFromPartition(t *testing.T) {
	seed := testutil.Seed(t)
	s := newEpochSink()
	fact, incarnations := counterFactory(s, func(ctx *runtime.Context) runtime.Vertex {
		return &counter{ctx: ctx}
	}, func(inc int64, cfg *runtime.Config) {
		ccfg := transport.ChaosConfig{Seed: seed + inc}
		if inc == 0 {
			// Minority {1} cut off from the start, never healing.
			ccfg.Partition = &transport.Partition{Groups: [][]int{{0}, {1}}, Duration: time.Hour}
		}
		cfg.Transport = transport.NewChaos(transport.NewMem(2), ccfg)
		cfg.Heartbeat = 2 * time.Millisecond
		cfg.HeartbeatTimeout = 40 * time.Millisecond
	})
	sup, err := supervise.New(supervise.Config{Factory: fact, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	feedStandard(t, sup)
	if err := sup.Wait(); err != nil {
		t.Fatalf("supervised run did not recover from the partition: %v", err)
	}
	if got := s.values(2); len(got) != 1 || got[0] != 113 {
		t.Fatalf("epoch 2 = %v, want [113]", got)
	}
	rec := sup.Recovery()
	if rec.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1 (%+v)", rec.Restarts, rec)
	}
	if rec.HeartbeatMisses == 0 {
		t.Fatal("partition recovery without recorded heartbeat misses: the wrong detector fired")
	}
	if incarnations.Load() != 2 {
		t.Fatalf("built %d incarnations, want 2", incarnations.Load())
	}
}

// TestSupervisorGivesUp: a computation that dies deterministically on
// every replay must exhaust the restart budget and land in the terminal
// gave-up state, not loop forever.
func TestSupervisorGivesUp(t *testing.T) {
	s := newEpochSink()
	fact, incarnations := counterFactory(s, func(ctx *runtime.Context) runtime.Vertex {
		return &bomb{counter{ctx: ctx}}
	}, nil)
	sup, err := supervise.New(supervise.Config{
		Factory:     fact,
		MaxRestarts: 2,
		Backoff:     time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		Seed:        testutil.Seed(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.OnNext("in", int64(13)); err != nil { // poison: every incarnation dies
		t.Fatal(err)
	}
	err = sup.Wait()
	if !errors.Is(err, supervise.ErrGaveUp) {
		t.Fatalf("Wait = %v, want ErrGaveUp", err)
	}
	if !strings.Contains(err.Error(), "poison record") {
		t.Fatalf("gave-up error does not carry the cause: %v", err)
	}
	if got := incarnations.Load(); got != 3 { // initial + MaxRestarts
		t.Fatalf("built %d incarnations, want 3", got)
	}
	if err := sup.OnNext("in", int64(1)); !errors.Is(err, supervise.ErrGaveUp) {
		t.Fatalf("OnNext after gave-up = %v, want ErrGaveUp", err)
	}
}

// TestSupervisorFallsBackPastCorruptSnapshot: recovery must skip a
// snapshot that fails its checksum and restore the older retained one —
// "latest consistent", not "latest written".
func TestSupervisorFallsBackPastCorruptSnapshot(t *testing.T) {
	seed := testutil.Seed(t)
	dir := t.TempDir()
	store, err := supervise.NewDiskStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := newEpochSink()
	var chaos0 *transport.Chaos
	fact, _ := counterFactory(s, func(ctx *runtime.Context) runtime.Vertex {
		return &counter{ctx: ctx}
	}, func(inc int64, cfg *runtime.Config) {
		ct := transport.NewChaos(transport.NewMem(2), transport.ChaosConfig{Seed: seed + inc})
		if inc == 0 {
			chaos0 = ct
		}
		cfg.Transport = ct
	})
	sup, err := supervise.New(supervise.Config{Factory: fact, Store: store, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.OnNext("in", int64(1), int64(2)); err != nil {
		t.Fatal(err)
	}
	if err := sup.OnNext("in", int64(10)); err != nil {
		t.Fatal(err)
	}
	waitForCheckpoints(t, sup, 2)
	// Bit-rot the newest snapshot on disk; its checksum must disqualify it.
	eps, err := store.Epochs()
	if err != nil || len(eps) < 2 {
		t.Fatalf("epochs = %v, %v", eps, err)
	}
	newest := filepath.Join(dir, filesByMtime(t, dir)[0])
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	chaos0.Crash(1)
	if err := sup.OnNext("in", int64(100)); err != nil {
		t.Fatal(err)
	}
	if err := sup.CloseInput("in"); err != nil {
		t.Fatal(err)
	}
	if err := sup.Wait(); err != nil {
		t.Fatalf("recovery with a corrupt latest snapshot failed: %v", err)
	}
	if got := s.values(2); len(got) != 1 || got[0] != 113 {
		t.Fatalf("epoch 2 = %v, want [113]", got)
	}
	if rec := sup.Recovery(); rec.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", rec.Restarts)
	}
}

// filesByMtime lists dir's snapshot files, newest first by name (the
// zero-padded epoch filename makes lexicographic order epoch order).
func filesByMtime(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".snap") {
			names = append(names, e.Name())
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	return names
}
