package supervise_test

// The exactly-once sink battery: the same epoch schedule is driven through
// a fault-free run (the oracle) and through chaos schedules — selective
// single-worker rollback, full process-crash restart, and marker-level
// control-frame faults — and the committed sink output must come out
// byte-identical in every case. The MemSink store itself is a differential
// detector: any replay that re-seals an epoch with different bytes is
// recorded as a conflict, so nondeterminism in the seal path cannot hide
// behind deduplication.

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"naiad/internal/codec"
	"naiad/internal/lib"
	"naiad/internal/progress"
	"naiad/internal/runtime"
	"naiad/internal/supervise"
	"naiad/internal/testutil"
	"naiad/internal/transport"
)

// sinkChaosEpochs is the shared schedule: epoch e carries three distinct
// records, so every epoch's canonical batch is non-trivial and unique.
const sinkChaosEpochs = 8

func sinkEpochRecords(e int) []runtime.Message {
	return []runtime.Message{int64(e*10 + 1), int64(e*10 + 2), int64(e*10 + 3)}
}

// sinkFactory builds input → Exchange → exactly-once Sink through the
// typed operator library. The MemSink store outlives incarnations, exactly
// like a real external system.
func sinkFactory(store *lib.MemSink, tune func(inc int64, cfg *runtime.Config)) (supervise.Factory, *atomic.Int64) {
	var incarnations atomic.Int64
	return func() (*supervise.Build, error) {
		inc := incarnations.Add(1) - 1
		cfg := runtime.Config{Processes: 2, WorkersPerProcess: 2,
			Accumulation: runtime.AccLocalGlobal, Watchdog: 5 * time.Second}
		if tune != nil {
			tune(inc, &cfg)
		}
		s, err := lib.NewScope(cfg)
		if err != nil {
			return nil, err
		}
		in, src := lib.NewInput[int64](s, "in", codec.Int64())
		shuffled := lib.Exchange(src, func(v int64) uint64 { return uint64(v) })
		st := lib.Sink(shuffled, store)
		return &supervise.Build{
			Comp:   s.C,
			Inputs: map[string]*runtime.Input{"in": in.Raw()},
			Probe:  s.C.NewProbe(st),
		}, nil
	}, &incarnations
}

// sinkSchedule is one chaos plan for the shared epoch schedule.
type sinkSchedule struct {
	selective     bool
	workerCrashAt map[int]int // epoch → worker to crash after feeding it
	procCrashAt   int         // epoch after which process 1 crashes; -1 = never
	fault         transport.Fault
	waitCpBefore  int // crash only after this many checkpoints exist
}

// runSinkSchedule drives the shared schedule under one chaos plan and
// returns the store the sink committed into.
func runSinkSchedule(t *testing.T, seed int64, sch sinkSchedule) (*lib.MemSink, *supervise.Supervisor) {
	t.Helper()
	store := lib.NewMemSink(0)
	cuts := supervise.NewMemStore(4)
	target := &simTarget{}
	fact, _ := sinkFactory(store, func(inc int64, cfg *runtime.Config) {
		ct := transport.NewChaos(transport.NewMem(2), transport.ChaosConfig{
			Seed: seed + inc, Default: sch.fault,
		})
		cfg.Transport = ct
		cfg.SafetyChecks = true
		target.setChaos(ct)
	})
	wrapped := supervise.Factory(func() (*supervise.Build, error) {
		b, err := fact()
		if err == nil {
			target.setComp(b.Comp)
		}
		return b, err
	})
	sup, err := supervise.New(supervise.Config{
		Factory: wrapped, Store: cuts, Seed: seed,
		Selective:        sch.selective,
		CheckpointEvery:  1,
		CutSettleTimeout: 250 * time.Millisecond,
		MaxRestarts:      6,
		Backoff:          time.Millisecond,
		MaxBackoff:       8 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < sinkChaosEpochs; e++ {
		if err := sup.OnNext("in", sinkEpochRecords(e)...); err != nil {
			t.Fatal(err)
		}
		if sch.waitCpBefore > 0 && (sch.procCrashAt == e || hasCrash(sch, e)) {
			waitForCheckpoints(t, sup, int64(sch.waitCpBefore))
		}
		if e == sch.procCrashAt {
			if _, chaos := target.get(); chaos != nil {
				chaos.Crash(1)
			}
		}
		if w, ok := sch.workerCrashAt[e]; ok {
			if comp, _ := target.get(); comp != nil {
				before := sup.Recovery().SelectiveRevivals
				comp.CrashWorker(w) // best effort across incarnations
				if sch.selective {
					deadline := time.Now().Add(10 * time.Second)
					for sup.Recovery().SelectiveRevivals == before {
						if time.Now().After(deadline) {
							t.Fatalf("selective revival never happened: %+v", sup.Recovery())
						}
						time.Sleep(time.Millisecond)
					}
				}
			}
		}
	}
	if err := sup.CloseInput("in"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- sup.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("sink chaos run failed terminally: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("sink chaos run hung")
	}
	return store, sup
}

func hasCrash(sch sinkSchedule, e int) bool {
	_, ok := sch.workerCrashAt[e]
	return ok
}

// auditSinkStore checks the invariants every schedule must satisfy against
// the fault-free oracle: identical epochs, byte-identical batches, correct
// frontier stamps, and zero conflicting recommits.
func auditSinkStore(t *testing.T, got, oracle *lib.MemSink) {
	t.Helper()
	if c := got.Conflicts(); len(c) != 0 {
		t.Fatalf("sink replays disagreed on bytes for epochs %v — exactly-once violated", c)
	}
	ge, oe := got.Epochs(), oracle.Epochs()
	if fmt.Sprint(ge) != fmt.Sprint(oe) {
		t.Fatalf("committed epochs %v, oracle has %v", ge, oe)
	}
	for _, e := range oe {
		gb, _ := got.Batch(e)
		ob, _ := oracle.Batch(e)
		if !bytes.Equal(gb.Data, ob.Data) {
			t.Fatalf("epoch %d bytes differ from the fault-free oracle:\n got %x\nwant %x", e, gb.Data, ob.Data)
		}
		if gb.Frontier != ob.Frontier || gb.Frontier.Epoch != e+1 {
			t.Fatalf("epoch %d frontier = %v, oracle %v", e, gb.Frontier, ob.Frontier)
		}
		if got.Commits(e) < 1 {
			t.Fatalf("epoch %d has no acknowledged commit", e)
		}
	}
}

// sinkOracle runs the schedule fault-free. Exactly one commit per epoch:
// with no failures there is nothing to replay.
func sinkOracle(t *testing.T, seed int64) *lib.MemSink {
	t.Helper()
	store, _ := runSinkSchedule(t, seed, sinkSchedule{procCrashAt: -1})
	for _, e := range store.Epochs() {
		if n := store.Commits(e); n != 1 {
			t.Fatalf("fault-free run committed epoch %d %d times", e, n)
		}
	}
	if len(store.Epochs()) != sinkChaosEpochs {
		t.Fatalf("oracle committed epochs %v, want %d of them", store.Epochs(), sinkChaosEpochs)
	}
	// The records decode back to exactly the fed multiset.
	for e := 0; e < sinkChaosEpochs; e++ {
		b, _ := store.Batch(int64(e))
		recs := lib.DecodeSinkBatch[int64](codec.Int64(), b)
		want := sinkEpochRecords(e)
		if len(recs) != len(want) {
			t.Fatalf("epoch %d decoded %v, want %v", e, recs, want)
		}
	}
	return store
}

// TestSinkExactlyOnceAcrossSelectiveRollback crashes the worker hosting the
// pinned sink vertex mid-run. Selective revival re-mints the held
// capabilities from the cut fragment, replays the delivery log (re-sealing
// epochs byte-identically), and re-drives unacknowledged commits — the
// store must end byte-identical to the fault-free run with no conflicts.
func TestSinkExactlyOnceAcrossSelectiveRollback(t *testing.T) {
	progress.AuditCaps(t)
	seed := testutil.Seed(t)
	oracle := sinkOracle(t, seed)
	store, sup := runSinkSchedule(t, seed+1, sinkSchedule{
		selective:     true,
		procCrashAt:   -1,
		workerCrashAt: map[int]int{2: 0},
		waitCpBefore:  1,
	})
	auditSinkStore(t, store, oracle)
	rec := sup.Recovery()
	if rec.SelectiveRevivals == 0 {
		t.Fatalf("no selective revival happened — the schedule did not exercise rollback: %+v", rec)
	}
	if rec.Restarts != 0 {
		t.Fatalf("selective schedule fell back to a full restart: %+v", rec)
	}
}

// TestSinkExactlyOnceAcrossRestart crashes process 1, forcing a full
// restart from the latest complete cut: sealed-but-unacknowledged batches
// re-commit from the snapshot, replayed epochs re-seal, and the store
// deduplicates — output must still be byte-identical with zero conflicts.
func TestSinkExactlyOnceAcrossRestart(t *testing.T) {
	progress.AuditCaps(t)
	seed := testutil.Seed(t)
	oracle := sinkOracle(t, seed)
	store, sup := runSinkSchedule(t, seed+2, sinkSchedule{
		procCrashAt:  4,
		waitCpBefore: 1,
	})
	auditSinkStore(t, store, oracle)
	if rec := sup.Recovery(); rec.Restarts == 0 {
		t.Fatalf("process crash scheduled but no restart recorded: %+v", rec)
	}
}

// TestSinkExactlyOnceUnderMarkerChaos runs the schedule with control-frame
// drop, duplication, and reordering on every link: cuts stall and abort,
// but the committed output must stay exact.
func TestSinkExactlyOnceUnderMarkerChaos(t *testing.T) {
	progress.AuditCaps(t)
	seed := testutil.Seed(t)
	oracle := sinkOracle(t, seed)
	store, _ := runSinkSchedule(t, seed+3, sinkSchedule{
		procCrashAt: -1,
		fault: transport.Fault{
			DropControlProb: 0.15, DupControlProb: 0.15, ReorderControlProb: 0.15,
		},
	})
	auditSinkStore(t, store, oracle)
}
