package lib

import (
	"fmt"
	"testing"

	"naiad/internal/codec"
)

// TestBoundedStalenessPreservesResults runs an iterative computation with
// the staleness stage in the loop and checks the fixed point is unchanged:
// the bound constrains scheduling, never values.
func TestBoundedStalenessPreservesResults(t *testing.T) {
	for _, k := range []int64{1, 2, 8} {
		s := newTestScope(t, testCfg())
		in, src := NewInput[int64](s, "in", codec.Int64())
		out := Iterate(src, 20, func(inner *Stream[int64]) *Stream[int64] {
			bounded := BoundedStaleness(inner, k)
			return Where(
				Select(bounded, func(v int64) int64 { return v + 1 }, codec.Int64()),
				func(v int64) bool { return v < 7 },
			)
		})
		col := Collect(out)
		if err := s.C.Start(); err != nil {
			t.Fatal(err)
		}
		in.OnNext(0)
		in.Close()
		join(t, s)
		if got := sortedInts(col.Epoch(0)); fmt.Sprint(got) != "[1 2 3 4 5 6]" {
			t.Fatalf("k=%d: got %v", k, got)
		}
	}
}

func TestBoundedStalenessPanics(t *testing.T) {
	s := newTestScope(t, testCfg())
	_, src := NewInput[int64](s, "in", codec.Int64())
	t.Run("outside loop", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		BoundedStaleness(src, 2)
	})
	t.Run("k too small", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		inner := EnterLoop(src, 1)
		BoundedStaleness(inner, 0)
	})
}
