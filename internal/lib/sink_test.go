package lib

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"naiad/internal/codec"
)

func TestSinkCommitsCanonicalBatches(t *testing.T) {
	s := newTestScope(t, testCfg())
	in, src := NewInput[int64](s, "in", codec.Int64())
	store := NewMemSink(0)
	Sink(Exchange(src, func(v int64) uint64 { return uint64(v) }), store)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(3, 1, 4, 1, 5)
	in.OnNext(9, 2, 6)
	in.OnNext() // empty epoch: no batch
	in.OnNext(8)
	in.Close()
	join(t, s)

	if got := store.Epochs(); fmt.Sprint(got) != "[0 1 3]" {
		t.Fatalf("committed epochs = %v", got)
	}
	if c := store.Conflicts(); len(c) != 0 {
		t.Fatalf("byte conflicts on epochs %v", c)
	}
	for e, want := range map[int64][]int64{0: {1, 1, 3, 4, 5}, 1: {2, 6, 9}, 3: {8}} {
		b, ok := store.Batch(e)
		if !ok {
			t.Fatalf("epoch %d missing", e)
		}
		if b.Frontier.Epoch != e+1 || b.Frontier.Depth != 0 {
			t.Fatalf("epoch %d frontier = %v", e, b.Frontier)
		}
		if got := sortedInts(DecodeSinkBatch[int64](codec.Int64(), b)); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("epoch %d records = %v, want %v", e, got, want)
		}
		if n := store.Commits(e); n != 1 {
			t.Fatalf("epoch %d committed %d times", e, n)
		}
	}
}

// gatedStore blocks every Commit until released, signalling the first
// attempt — it lets a test observe the window where an epoch is sealed but
// not yet durable.
type gatedStore struct {
	inner   *MemSink
	once    sync.Once
	arrived chan struct{}
	release chan struct{}
}

func (g *gatedStore) Commit(b SinkBatch) error {
	g.once.Do(func() { close(g.arrived) })
	<-g.release
	return g.inner.Commit(b)
}

// TestSinkProbeWaitsForCommit pins the sink's durability semantics: a probe
// on the sink stage must not report an epoch complete while its batch's
// commit is still in flight — the held capability keeps the pointstamp
// occupied until the store acknowledges.
func TestSinkProbeWaitsForCommit(t *testing.T) {
	s := newTestScope(t, testCfg())
	in, src := NewInput[int64](s, "in", codec.Int64())
	store := &gatedStore{inner: NewMemSink(0), arrived: make(chan struct{}), release: make(chan struct{})}
	st := Sink(src, store)
	probe := s.C.NewProbe(st)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(7, 8)
	in.Close()
	<-store.arrived // epoch 0 sealed, commit in flight
	if probe.Done(0) {
		t.Fatal("probe reported epoch 0 done before the commit was acknowledged")
	}
	close(store.release)
	probe.WaitFor(0)
	if _, ok := store.inner.Batch(0); !ok {
		t.Fatal("probe done but batch not committed")
	}
	join(t, s)
}

func TestCanonicalBytesOrderIndependent(t *testing.T) {
	cod := codec.Int64()
	a := canonicalBytes(cod, []int64{5, 3, 9, 3, 1})
	b := canonicalBytes(cod, []int64{3, 1, 3, 9, 5})
	if !bytes.Equal(a, b) {
		t.Fatal("canonical bytes depend on arrival order")
	}
	c := canonicalBytes(cod, []int64{5, 3, 9, 1})
	if bytes.Equal(a, c) {
		t.Fatal("different multisets collide")
	}
	got := sortedInts(DecodeSinkBatch[int64](cod, SinkBatch{Data: a}))
	if fmt.Sprint(got) != "[1 3 3 5 9]" {
		t.Fatalf("round trip = %v", got)
	}
}

func TestMemSinkDetectsConflicts(t *testing.T) {
	m := NewMemSink(1)
	b := SinkBatch{Epoch: 0, Data: []byte{1}}
	if err := m.Commit(b); err == nil {
		t.Fatal("failFirst commit should error")
	}
	if err := m.Commit(b); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(b); err != nil {
		t.Fatal(err)
	}
	if m.Commits(0) != 2 {
		t.Fatalf("commits = %d", m.Commits(0))
	}
	if len(m.Conflicts()) != 0 {
		t.Fatal("identical recommit flagged as conflict")
	}
	if err := m.Commit(SinkBatch{Epoch: 0, Data: []byte{2}}); err != nil {
		t.Fatal(err)
	}
	if got := m.Conflicts(); fmt.Sprint(got) != "[0]" {
		t.Fatalf("conflicts = %v", got)
	}
	if got, _ := m.Batch(0); !bytes.Equal(got.Data, []byte{1}) {
		t.Fatal("conflicting commit overwrote first bytes")
	}
}
