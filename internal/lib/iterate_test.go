package lib

import (
	"fmt"
	"testing"

	"naiad/internal/codec"
)

// TestIterateBatchedCollatz runs bulk-synchronous iteration: each round,
// every circulating value takes one Collatz step; values reaching 1 leave
// the loop tagged with nothing but themselves. All seeds must terminate.
func TestIterateBatchedCollatz(t *testing.T) {
	s := newTestScope(t, testCfg())
	in, src := NewInput[int64](s, "in", codec.Int64())
	done := IterateBatched(src, 1000, func(v int64) uint64 { return Hash(v) },
		func(_ int64, recs []int64) (cont, out []int64) {
			for _, v := range recs {
				switch {
				case v == 1:
					out = append(out, v)
				case v%2 == 0:
					cont = append(cont, v/2)
				default:
					cont = append(cont, 3*v+1)
				}
			}
			return cont, out
		})
	col := Collect(done)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(7, 27, 97)
	in.Close()
	join(t, s)
	if got := col.Epoch(0); fmt.Sprint(got) != "[1 1 1]" {
		t.Fatalf("got %v", got)
	}
}

// TestIterateBatchedSeesWholeIteration verifies the barrier: per
// iteration, a partition sees all of its records at once (we use one
// worker so the partition is global) and iteration numbers advance one at
// a time.
func TestIterateBatchedSeesWholeIteration(t *testing.T) {
	cfg := testCfg()
	cfg.Processes = 1
	cfg.WorkersPerProcess = 1
	s := newTestScope(t, cfg)
	in, src := NewInput[int64](s, "in", codec.Int64())
	var batches []string
	done := IterateBatched(src, 10, nil,
		func(iter int64, recs []int64) (cont, out []int64) {
			batches = append(batches, fmt.Sprintf("%d:%d", iter, len(recs)))
			if iter >= 2 {
				return nil, recs
			}
			return recs, nil
		})
	col := Collect(done)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(10, 20, 30)
	in.Close()
	join(t, s)
	if fmt.Sprint(batches) != "[0:3 1:3 2:3]" {
		t.Fatalf("batches = %v", batches)
	}
	if got := sortedInts(col.Epoch(0)); fmt.Sprint(got) != "[10 20 30]" {
		t.Fatalf("out = %v", got)
	}
}
