package lib

import (
	"sort"

	"naiad/internal/codec"
	"naiad/internal/graph"
	"naiad/internal/runtime"
	ts "naiad/internal/timestamp"
)

// TopK emits, once each time completes, the k records greatest under
// `less` — the "most popular hashtag" shape of §6.4. The reduction runs in
// two levels: each worker selects its local top k, then one vertex merges
// the candidates, so the exchange carries k·workers records instead of
// everything.
func TopK[A any](s *Stream[A], k int, less func(a, b A) bool, cod codec.Codec) *Stream[A] {
	if k <= 0 {
		panic("lib: TopK requires k ≥ 1")
	}
	if cod == nil {
		cod = s.cod
	}
	local := UnaryBuffer[A, A](s, "TopK-local", nil,
		func(_ ts.Timestamp, recs []A, emit func(A)) {
			for _, r := range selectTop(recs, k, less) {
				emit(r)
			}
		}, cod)
	c := s.scope.C
	st := c.AddStage("TopK-merge", graph.RoleNormal, s.depth, func(ctx *runtime.Context) runtime.Vertex {
		buf := make(map[ts.Timestamp][]A)
		return &vertexOf[A]{
			recv: func(_ int, rec A, t ts.Timestamp) {
				if _, ok := buf[t]; !ok {
					ctx.NotifyAt(t)
				}
				buf[t] = append(buf[t], rec)
			},
			notify: func(t ts.Timestamp) {
				recs := buf[t]
				delete(buf, t)
				for _, r := range selectTop(recs, k, less) {
					ctx.SendBy(0, r, t)
				}
			},
		}
	}, runtime.Pinned(0))
	c.Connect(local.stage, local.port, st, func(runtime.Message) uint64 { return 0 }, cod)
	return &Stream[A]{scope: s.scope, stage: st, port: 0, cod: cod, depth: s.depth}
}

// selectTop returns the k greatest records under less, in descending
// order.
func selectTop[A any](recs []A, k int, less func(a, b A) bool) []A {
	out := append([]A(nil), recs...)
	sort.Slice(out, func(i, j int) bool { return less(out[j], out[i]) })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// SumByKey folds int64 values per key per time.
func SumByKey[K comparable](s *Stream[Pair[K, int64]], cod codec.Codec) *Stream[Pair[K, int64]] {
	return FoldByKey(s, func(K) int64 { return 0 },
		func(acc, v int64) int64 { return acc + v }, cod)
}

// Broadcast delivers a copy of every record to one vertex on every worker
// — the pattern behind AllReduce's distribution step and Pregel
// aggregators. The output stage's vertices each see the full stream.
func Broadcast[A any](s *Stream[A], cod codec.Codec) *Stream[A] {
	if cod == nil {
		cod = s.cod
	}
	c := s.scope.C
	workers := c.Config().Workers()
	// Stage 1: replicate each record once per worker, tagged.
	type tagged struct {
		Worker int64
		Rec    A
	}
	rep := c.AddStage("Broadcast-rep", graph.RoleNormal, s.depth, func(ctx *runtime.Context) runtime.Vertex {
		return &vertexOf[A]{recv: func(_ int, rec A, t ts.Timestamp) {
			for w := 0; w < workers; w++ {
				ctx.SendBy(0, tagged{Worker: int64(w), Rec: rec}, t)
			}
		}}
	})
	c.Connect(s.stage, s.port, rep, nil, s.cod)
	// Stage 2: exchange by the tag and strip it.
	strip := c.AddStage("Broadcast", graph.RoleNormal, s.depth, func(ctx *runtime.Context) runtime.Vertex {
		return &vertexOf[tagged]{recv: func(_ int, rec tagged, t ts.Timestamp) {
			ctx.SendBy(0, rec.Rec, t)
		}}
	})
	connect(c, rep, 0, strip, func(m tagged) uint64 {
		return uint64(m.Worker)
	}, codec.Gob[tagged]())
	return &Stream[A]{scope: s.scope, stage: strip, port: 0, cod: cod, depth: s.depth}
}
