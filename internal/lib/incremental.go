package lib

import (
	"naiad/internal/codec"
	"naiad/internal/graph"
	"naiad/internal/runtime"
	ts "naiad/internal/timestamp"
)

// Diff is a weighted record: the unit of incremental collections, after
// the paper's "library for incremental computation" (§4.1, McSherry et
// al.'s differential dataflow). A collection at epoch e is the
// accumulation of all diffs at epochs ≤ e: Delta +1 inserts a record,
// -1 deletes one, and operators emit only *changes* to their outputs.
//
// The Diff operators here are the epoch-incremental core of that library:
// deterministic, synchronized per epoch via notifications, and composable
// with every other operator in the package. (Full differential dataflow
// also indexes changes by loop counter; these operators incrementalize
// across epochs only.)
type Diff[T any] struct {
	Rec   T
	Delta int64
}

// Add is shorthand for an insertion diff.
func Add[T any](rec T) Diff[T] { return Diff[T]{Rec: rec, Delta: 1} }

// Del is shorthand for a deletion diff.
func Del[T any](rec T) Diff[T] { return Diff[T]{Rec: rec, Delta: -1} }

// DiffSelect transforms the records of an incremental collection,
// preserving weights. f must be a function (equal inputs give equal
// outputs) or deletions will not line up with their insertions. cod, when
// non-nil, must encode Diff[B] records (not bare B); nil uses gob.
func DiffSelect[A, B any](s *Stream[Diff[A]], f func(A) B, cod codec.Codec) *Stream[Diff[B]] {
	return Select(s, func(d Diff[A]) Diff[B] {
		return Diff[B]{Rec: f(d.Rec), Delta: d.Delta}
	}, cod)
}

// DiffWhere filters an incremental collection.
func DiffWhere[A any](s *Stream[Diff[A]], pred func(A) bool) *Stream[Diff[A]] {
	return Where(s, func(d Diff[A]) bool { return pred(d.Rec) })
}

// DiffSelectMany expands each record, preserving weights.
func DiffSelectMany[A, B any](s *Stream[Diff[A]], f func(A) []B, cod codec.Codec) *Stream[Diff[B]] {
	return SelectMany(s, func(d Diff[A]) []Diff[B] {
		outs := f(d.Rec)
		res := make([]Diff[B], len(outs))
		for i, o := range outs {
			res[i] = Diff[B]{Rec: o, Delta: d.Delta}
		}
		return res
	}, cod)
}

// Consolidate combines same-record diffs within each epoch and drops
// cancelled ones, reducing downstream work.
func Consolidate[A comparable](s *Stream[Diff[A]]) *Stream[Diff[A]] {
	part := func(d Diff[A]) uint64 { return Hash(d.Rec) }
	return UnaryBuffer[Diff[A], Diff[A]](s, "Consolidate", part,
		func(_ ts.Timestamp, recs []Diff[A], emit func(Diff[A])) {
			sums := make(map[A]int64, len(recs))
			var order []A
			for _, d := range recs {
				if _, ok := sums[d.Rec]; !ok {
					order = append(order, d.Rec)
				}
				sums[d.Rec] += d.Delta
			}
			for _, r := range order {
				if sums[r] != 0 {
					emit(Diff[A]{Rec: r, Delta: sums[r]})
				}
			}
		}, s.cod)
}

// DiffDistinct maintains the set of records with positive multiplicity:
// it emits +1 when a record's accumulated multiplicity becomes positive
// and -1 when it returns to zero — the incremental Distinct. State
// persists across epochs; epochs are processed in order.
func DiffDistinct[A comparable](s *Stream[Diff[A]]) *Stream[Diff[A]] {
	part := func(d Diff[A]) uint64 { return Hash(d.Rec) }
	return UnaryBufferStateful[Diff[A], Diff[A]](s, "DiffDistinct", part, func() func(ts.Timestamp, []Diff[A], func(Diff[A])) {
		mult := make(map[A]int64)
		return func(_ ts.Timestamp, recs []Diff[A], emit func(Diff[A])) {
			// Net the epoch's changes per record first, then compare the
			// set membership before and after.
			changed := make(map[A]int64, len(recs))
			var order []A
			for _, d := range recs {
				if _, ok := changed[d.Rec]; !ok {
					order = append(order, d.Rec)
				}
				changed[d.Rec] += d.Delta
			}
			for _, r := range order {
				before := mult[r] > 0
				mult[r] += changed[r]
				if mult[r] < 0 {
					panic("lib: DiffDistinct multiplicity went negative (deletion of absent record)")
				}
				after := mult[r] > 0
				switch {
				case !before && after:
					emit(Diff[A]{Rec: r, Delta: 1})
				case before && !after:
					emit(Diff[A]{Rec: r, Delta: -1})
				}
				if mult[r] == 0 {
					delete(mult, r)
				}
			}
		}
	}, s.cod)
}

// DiffCount maintains a count per key and emits count *corrections* per
// epoch: a deletion of the old (key, count) pair and an insertion of the
// new one — §4.1's incrementally updatable reduction.
func DiffCount[K comparable](s *Stream[Diff[K]], cod codec.Codec) *Stream[Diff[Pair[K, int64]]] {
	part := func(d Diff[K]) uint64 { return Hash(d.Rec) }
	return UnaryBufferStateful[Diff[K], Diff[Pair[K, int64]]](s, "DiffCount", part, func() func(ts.Timestamp, []Diff[K], func(Diff[Pair[K, int64]])) {
		counts := make(map[K]int64)
		return func(_ ts.Timestamp, recs []Diff[K], emit func(Diff[Pair[K, int64]])) {
			changed := make(map[K]int64, len(recs))
			var order []K
			for _, d := range recs {
				if _, ok := changed[d.Rec]; !ok {
					order = append(order, d.Rec)
				}
				changed[d.Rec] += d.Delta
			}
			for _, k := range order {
				if changed[k] == 0 {
					continue
				}
				old := counts[k]
				next := old + changed[k]
				if next < 0 {
					panic("lib: DiffCount went negative (deletion of absent record)")
				}
				if old > 0 {
					emit(Diff[Pair[K, int64]]{Rec: KV(k, old), Delta: -1})
				}
				if next > 0 {
					emit(Diff[Pair[K, int64]]{Rec: KV(k, next), Delta: 1})
				}
				if next == 0 {
					delete(counts, k)
				} else {
					counts[k] = next
				}
			}
		}
	}, cod)
}

// DiffJoin incrementally joins two keyed collections: per epoch it emits
// the bilinear update dA⋈B + (A+dA)⋈dB with multiplied weights, so the
// accumulated output always equals the join of the accumulated inputs.
// Indexes of both sides persist across epochs; values need not be
// comparable, so per-value weight consolidation is left to a downstream
// Consolidate when R is comparable.
func DiffJoin[K comparable, A, B, R any](a *Stream[Diff[Pair[K, A]]], b *Stream[Diff[Pair[K, B]]],
	f func(K, A, B) R, cod codec.Codec) *Stream[Diff[R]] {
	if a.depth != b.depth {
		panic("lib: DiffJoin requires streams at the same loop depth")
	}
	c := a.scope.C
	st := c.AddStage("DiffJoin", graph.RoleNormal, a.depth, func(ctx *runtime.Context) runtime.Vertex {
		return &diffJoinVertex[K, A, B, R]{
			ctx: ctx, f: f,
			left:  make(map[K][]weighted[A]),
			right: make(map[K][]weighted[B]),
			buf:   make(map[ts.Timestamp]*diffJoinPending[K, A, B]),
		}
	})
	connect(c, a.stage, a.port, st, func(m Diff[Pair[K, A]]) uint64 {
		return Hash(m.Rec.Key)
	}, a.cod)
	connect(c, b.stage, b.port, st, func(m Diff[Pair[K, B]]) uint64 {
		return Hash(m.Rec.Key)
	}, b.cod)
	return &Stream[Diff[R]]{scope: a.scope, stage: st, port: 0, cod: orGob[Diff[R]](cod), depth: a.depth}
}

// weighted is one indexed value with its accumulated multiplicity.
type weighted[V any] struct {
	val V
	w   int64
}

type diffJoinPending[K comparable, A, B any] struct {
	dl []Diff[Pair[K, A]]
	dr []Diff[Pair[K, B]]
}

// diffJoinVertex buffers each epoch's input diffs, then applies the
// bilinear update rule on notification.
type diffJoinVertex[K comparable, A, B, R any] struct {
	ctx   *runtime.Context
	f     func(K, A, B) R
	left  map[K][]weighted[A]
	right map[K][]weighted[B]
	buf   map[ts.Timestamp]*diffJoinPending[K, A, B]
}

func (v *diffJoinVertex[K, A, B, R]) pending(t ts.Timestamp) *diffJoinPending[K, A, B] {
	p := v.buf[t]
	if p == nil {
		p = &diffJoinPending[K, A, B]{}
		v.buf[t] = p
		v.ctx.NotifyAt(t)
	}
	return p
}

func (v *diffJoinVertex[K, A, B, R]) OnRecv(input int, msg runtime.Message, t ts.Timestamp) {
	p := v.pending(t)
	if input == 0 {
		p.dl = append(p.dl, msg.(Diff[Pair[K, A]]))
	} else {
		p.dr = append(p.dr, msg.(Diff[Pair[K, B]]))
	}
}

func (v *diffJoinVertex[K, A, B, R]) OnNotify(t ts.Timestamp) {
	p := v.buf[t]
	delete(v.buf, t)
	// dA ⋈ B (the right index before this epoch's changes).
	for _, d := range p.dl {
		k := d.Rec.Key
		for _, e := range v.right[k] {
			if w := d.Delta * e.w; w != 0 {
				v.ctx.SendBy(0, Diff[R]{Rec: v.f(k, d.Rec.Val, e.val), Delta: w}, t)
			}
		}
	}
	// Apply dA to the left index.
	for _, d := range p.dl {
		k := d.Rec.Key
		v.left[k] = append(v.left[k], weighted[A]{val: d.Rec.Val, w: d.Delta})
	}
	// (A + dA) ⋈ dB.
	for _, d := range p.dr {
		k := d.Rec.Key
		for _, e := range v.left[k] {
			if w := e.w * d.Delta; w != 0 {
				v.ctx.SendBy(0, Diff[R]{Rec: v.f(k, e.val, d.Rec.Val), Delta: w}, t)
			}
		}
	}
	// Apply dB to the right index.
	for _, d := range p.dr {
		k := d.Rec.Key
		v.right[k] = append(v.right[k], weighted[B]{val: d.Rec.Val, w: d.Delta})
	}
}
