package lib

import (
	"naiad/internal/codec"
	"naiad/internal/graph"
	"naiad/internal/runtime"
	ts "naiad/internal/timestamp"
)

// Join is the asynchronous, cumulative hash join of the Bloom subset
// (§4.2): it emits a match the moment both sides of a key have been seen,
// never calling NotifyAt, so Datalog-style loops built from it run without
// coordination. State accumulates for the lifetime of the operator, which
// is the monotone-set semantics those loops assume.
func Join[K comparable, A, B, R any](a *Stream[Pair[K, A]], b *Stream[Pair[K, B]],
	f func(K, A, B) R, cod codec.Codec) *Stream[R] {
	if a.depth != b.depth {
		panic("lib: Join requires streams at the same loop depth")
	}
	c := a.scope.C
	st := c.AddStage("Join", graph.RoleNormal, a.depth, func(ctx *runtime.Context) runtime.Vertex {
		left := make(map[K][]A)
		right := make(map[K][]B)
		return &joinVertex[K, A, B]{
			onLeft: func(rec Pair[K, A], t ts.Timestamp) {
				left[rec.Key] = append(left[rec.Key], rec.Val)
				for _, bv := range right[rec.Key] {
					ctx.SendBy(0, f(rec.Key, rec.Val, bv), t)
				}
			},
			onRight: func(rec Pair[K, B], t ts.Timestamp) {
				right[rec.Key] = append(right[rec.Key], rec.Val)
				for _, av := range left[rec.Key] {
					ctx.SendBy(0, f(rec.Key, av, rec.Val), t)
				}
			},
		}
	})
	connect(c, a.stage, a.port, st, HashPair[K, A], a.cod) // input 0
	connect(c, b.stage, b.port, st, HashPair[K, B], b.cod) // input 1
	return &Stream[R]{scope: a.scope, stage: st, port: 0, cod: orGob[R](cod), depth: a.depth}
}

// JoinByTime is the synchronous relational join: both inputs are buffered
// per timestamp and matches are emitted once the time completes, so each
// epoch joins exactly with its own epoch's records.
func JoinByTime[K comparable, A, B, R any](a *Stream[Pair[K, A]], b *Stream[Pair[K, B]],
	f func(K, A, B) R, cod codec.Codec) *Stream[R] {
	if a.depth != b.depth {
		panic("lib: JoinByTime requires streams at the same loop depth")
	}
	c := a.scope.C
	st := c.AddStage("JoinByTime", graph.RoleNormal, a.depth, func(ctx *runtime.Context) runtime.Vertex {
		type buffered struct {
			left  []Pair[K, A]
			right []Pair[K, B]
		}
		buf := make(map[ts.Timestamp]*buffered)
		get := func(t ts.Timestamp) *buffered {
			bb := buf[t]
			if bb == nil {
				bb = &buffered{}
				buf[t] = bb
				ctx.NotifyAt(t)
			}
			return bb
		}
		return &joinVertex[K, A, B]{
			onLeft:  func(rec Pair[K, A], t ts.Timestamp) { bb := get(t); bb.left = append(bb.left, rec) },
			onRight: func(rec Pair[K, B], t ts.Timestamp) { bb := get(t); bb.right = append(bb.right, rec) },
			onNotify: func(t ts.Timestamp, send func(any, ts.Timestamp)) {
				bb := buf[t]
				delete(buf, t)
				left := make(map[K][]A)
				for _, p := range bb.left {
					left[p.Key] = append(left[p.Key], p.Val)
				}
				for _, p := range bb.right {
					for _, av := range left[p.Key] {
						send(f(p.Key, av, p.Val), t)
					}
				}
			},
			send: func(m any, t ts.Timestamp) { ctx.SendBy(0, m, t) },
		}
	})
	connect(c, a.stage, a.port, st, HashPair[K, A], a.cod)
	connect(c, b.stage, b.port, st, HashPair[K, B], b.cod)
	return &Stream[R]{scope: a.scope, stage: st, port: 0, cod: orGob[R](cod), depth: a.depth}
}

// joinVertex dispatches a binary operator's two typed inputs.
type joinVertex[K comparable, A, B any] struct {
	onLeft   func(Pair[K, A], ts.Timestamp)
	onRight  func(Pair[K, B], ts.Timestamp)
	onNotify func(ts.Timestamp, func(any, ts.Timestamp))
	send     func(any, ts.Timestamp)
}

func (v *joinVertex[K, A, B]) OnRecv(input int, msg runtime.Message, t ts.Timestamp) {
	if input == 0 {
		v.onLeft(msg.(Pair[K, A]), t)
	} else {
		v.onRight(msg.(Pair[K, B]), t)
	}
}

// OnRecvBatch unpacks a typed batch with one slice assertion per side;
// boxed or foreign columns fall back to per-record dispatch.
func (v *joinVertex[K, A, B]) OnRecvBatch(input int, b *runtime.Batch, t ts.Timestamp) {
	if input == 0 {
		if data, ok := b.Col().Slice().([]Pair[K, A]); ok {
			for _, rec := range data {
				v.onLeft(rec, t)
			}
			return
		}
	} else {
		if data, ok := b.Col().Slice().([]Pair[K, B]); ok {
			for _, rec := range data {
				v.onRight(rec, t)
			}
			return
		}
	}
	for i, n := 0, b.Len(); i < n; i++ {
		v.OnRecv(input, b.Record(i), t)
	}
}

func (v *joinVertex[K, A, B]) OnNotify(t ts.Timestamp) {
	if v.onNotify != nil {
		v.onNotify(t, v.send)
	}
}

// AggregateMonotonic keeps the best value per key under `better`, emitting
// whenever a key's value improves — the BloomL-style monotonic aggregation
// of §4.2. It never coordinates: inside a loop it may emit several times
// before settling, in exchange for fast uncoordinated iteration (§2.4).
func AggregateMonotonic[K comparable, V any](s *Stream[Pair[K, V]],
	better func(candidate, incumbent V) bool) *Stream[Pair[K, V]] {
	c := s.scope.C
	st := c.AddStage("AggMonotonic", graph.RoleNormal, s.depth, func(ctx *runtime.Context) runtime.Vertex {
		best := make(map[K]V)
		return &vertexOf[Pair[K, V]]{
			recv: func(_ int, rec Pair[K, V], t ts.Timestamp) {
				if cur, ok := best[rec.Key]; !ok || better(rec.Val, cur) {
					best[rec.Key] = rec.Val
					ctx.SendBy(0, rec, t)
				}
			},
		}
	})
	connect(c, s.stage, s.port, st, HashPair[K, V], s.cod)
	return &Stream[Pair[K, V]]{scope: s.scope, stage: st, port: 0, cod: s.cod, depth: s.depth}
}
