package lib

import (
	"fmt"
	"testing"

	"naiad/internal/codec"
)

// TestNestedLoops runs an Iterate inside an Iterate: the inner loop
// multiplies a value until it reaches an inner bound, the outer loop
// repeats with a decreasing budget — exercising depth-2 timestamps,
// nested ingress/egress, and progress tracking across both loops.
func TestNestedLoops(t *testing.T) {
	s := newTestScope(t, testCfg())
	in, src := NewInput[int64](s, "in", codec.Int64())
	out := Iterate(src, 5, func(outer *Stream[int64]) *Stream[int64] {
		if outer.Depth() != 1 {
			t.Fatalf("outer depth = %d", outer.Depth())
		}
		grown := Iterate(outer, 10, func(inner *Stream[int64]) *Stream[int64] {
			if inner.Depth() != 2 {
				t.Fatalf("inner depth = %d", inner.Depth())
			}
			// Double while below 100; exiting values stop circulating.
			return Where(
				Select(inner, func(v int64) int64 { return v * 2 }, codec.Int64()),
				func(v int64) bool { return v < 100 },
			)
		})
		// The inner loop's every emission leaves through its egress; keep
		// only the final doubling per outer round and add 1, while below
		// an outer bound.
		bumped := Select(grown, func(v int64) int64 { return v + 1 }, codec.Int64())
		return Where(bumped, func(v int64) bool { return v < 500 })
	})
	col := Collect(Distinct(out))
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(3)
	in.Close()
	join(t, s)
	got := sortedInts(col.Epoch(0))
	if len(got) == 0 {
		t.Fatal("nested loops produced nothing")
	}
	// Deterministic check of the full fixed point by simulation.
	want := map[int64]bool{}
	frontier := []int64{3}
	for round := 0; round < 5 && len(frontier) > 0; round++ {
		var next []int64
		for _, v := range frontier {
			// Inner loop: double up to 10 times while < 100, every
			// intermediate emission leaves the loop.
			x := v
			for i := 0; i < 10; i++ {
				x *= 2
				if x >= 100 {
					break
				}
				if y := x + 1; y < 500 {
					want[y] = true
					next = append(next, y)
				}
			}
		}
		frontier = next
	}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("unexpected value %d in %v", v, got)
		}
		delete(want, v)
	}
	if len(want) != 0 {
		missing := make([]int64, 0, len(want))
		for v := range want {
			missing = append(missing, v)
		}
		t.Fatalf("missing values %v (got %v)", missing, got)
	}
	_ = fmt.Sprint
}
