package lib

import (
	"naiad/internal/codec"
	"naiad/internal/graph"
	"naiad/internal/runtime"
	ts "naiad/internal/timestamp"
)

// TumblingWindow groups records from `size` consecutive epochs and applies
// f once per window, when the window's last epoch completes. The outputs
// carry the window's final epoch as their timestamp. Windows cut short by
// input closure still flush (the pending notification becomes deliverable
// once the frontier drains).
func TumblingWindow[A, B any](s *Stream[A], size int64,
	f func(window int64, recs []A, emit func(B)), cod codec.Codec) *Stream[B] {
	if s.depth != 0 {
		panic("lib: TumblingWindow requires a stream outside any loop context")
	}
	if size < 1 {
		panic("lib: TumblingWindow requires size ≥ 1")
	}
	c := s.scope.C
	st := c.AddStage("TumblingWindow", graph.RoleNormal, 0, func(ctx *runtime.Context) runtime.Vertex {
		buf := make(map[int64][]A)
		return &vertexOf[A]{
			recv: func(_ int, rec A, t ts.Timestamp) {
				w := t.Epoch / size
				if _, ok := buf[w]; !ok {
					// Wake at the window's closing epoch; the capability
					// there also lets the flush emit at that time.
					ctx.NotifyAt(ts.Root((w+1)*size - 1))
				}
				buf[w] = append(buf[w], rec)
			},
			notify: func(t ts.Timestamp) {
				w := t.Epoch / size
				recs := buf[w]
				delete(buf, w)
				f(w, recs, func(out B) { ctx.SendBy(0, out, t) })
			},
		}
	})
	c.Connect(s.stage, s.port, st, nil, s.cod)
	return &Stream[B]{scope: s.scope, stage: st, port: 0, cod: orGob[B](cod), depth: 0}
}

// SlidingWindowDiffs converts a stream into an incremental collection over
// a sliding window of the last `size` epochs: each record is inserted at
// its own epoch and retracted `size` epochs later. Composing this with
// the Diff operators yields sliding-window analyses — the pattern §7
// cites (sliding-window connected components) as requiring retractions.
func SlidingWindowDiffs[A any](s *Stream[A], size int64) *Stream[Diff[A]] {
	if s.depth != 0 {
		panic("lib: SlidingWindowDiffs requires a stream outside any loop context")
	}
	if size < 1 {
		panic("lib: SlidingWindowDiffs requires size ≥ 1")
	}
	c := s.scope.C
	st := c.AddStage("SlidingWindow", graph.RoleNormal, 0, func(ctx *runtime.Context) runtime.Vertex {
		return &vertexOf[A]{
			recv: func(_ int, rec A, t ts.Timestamp) {
				// Insert now; schedule the retraction at the future epoch
				// when the record leaves the window (always ≥ the current
				// callback time, so the capability rule permits it).
				ctx.SendBy(0, Diff[A]{Rec: rec, Delta: 1}, t)
				ctx.SendBy(0, Diff[A]{Rec: rec, Delta: -1}, ts.Root(t.Epoch+size))
			},
		}
	})
	c.Connect(s.stage, s.port, st, nil, s.cod)
	return &Stream[Diff[A]]{scope: s.scope, stage: st, port: 0, cod: orGob[Diff[A]](nil), depth: 0}
}
