package lib

import (
	"sort"
	"sync"

	"naiad/internal/graph"
	"naiad/internal/runtime"
	ts "naiad/internal/timestamp"
)

// Subscribe gathers each epoch's records at one vertex and invokes the
// callback once per completed epoch, in epoch order at that vertex — the
// output stage of §4.1 ("result.Subscribe(result => …)"). The callback
// runs on a worker thread. The stream must be outside any loop.
// It returns the subscribe stage's id so callers can attach probes: epoch
// completion at that stage implies the callback for the epoch has returned.
func Subscribe[T any](s *Stream[T], f func(epoch int64, records []T)) runtime.StageID {
	if s.depth != 0 {
		panic("lib: Subscribe requires a stream outside any loop context")
	}
	c := s.scope.C
	st := c.AddStage("Subscribe", graph.RoleNormal, 0, func(ctx *runtime.Context) runtime.Vertex {
		buf := make(map[int64][]T)
		started := make(map[int64]bool)
		return &vertexOf[T]{
			recv: func(_ int, rec T, t ts.Timestamp) {
				if !started[t.Epoch] {
					started[t.Epoch] = true
					ctx.NotifyAt(t)
				}
				buf[t.Epoch] = append(buf[t.Epoch], rec)
			},
			notify: func(t ts.Timestamp) {
				recs := buf[t.Epoch]
				delete(buf, t.Epoch)
				delete(started, t.Epoch)
				f(t.Epoch, recs)
			},
		}
	}, runtime.Pinned(0))
	connect(c, s.stage, s.port, st, func(T) uint64 { return 0 }, s.cod)
	return st
}

// SubscribeParallel invokes the callback once per completed epoch at every
// worker, with that worker's share of the records. Callbacks on different
// workers run concurrently.
func SubscribeParallel[T any](s *Stream[T], f func(worker int, epoch int64, records []T)) {
	if s.depth != 0 {
		panic("lib: SubscribeParallel requires a stream outside any loop context")
	}
	c := s.scope.C
	st := c.AddStage("SubscribeN", graph.RoleNormal, 0, func(ctx *runtime.Context) runtime.Vertex {
		buf := make(map[int64][]T)
		started := make(map[int64]bool)
		return &vertexOf[T]{
			recv: func(_ int, rec T, t ts.Timestamp) {
				if !started[t.Epoch] {
					started[t.Epoch] = true
					ctx.NotifyAt(t)
				}
				buf[t.Epoch] = append(buf[t.Epoch], rec)
			},
			notify: func(t ts.Timestamp) {
				recs := buf[t.Epoch]
				delete(buf, t.Epoch)
				delete(started, t.Epoch)
				f(ctx.Worker(), t.Epoch, recs)
			},
		}
	})
	c.Connect(s.stage, s.port, st, nil, s.cod)
}

// Collector subscribes to a stream and accumulates per-epoch results for
// inspection from other goroutines — the pattern tests and examples use to
// read a computation's output.
type Collector[T any] struct {
	mu     sync.Mutex
	epochs map[int64][]T
	probe  *runtime.Probe
}

// Collect attaches a Collector to a stream.
func Collect[T any](s *Stream[T]) *Collector[T] {
	col := &Collector[T]{epochs: make(map[int64][]T)}
	stage := Subscribe(s, func(epoch int64, records []T) {
		col.mu.Lock()
		col.epochs[epoch] = append(col.epochs[epoch], records...)
		col.mu.Unlock()
	})
	col.probe = s.scope.C.NewProbe(stage)
	return col
}

// WaitFor blocks until the given epoch has fully drained into the
// collector: the per-epoch callback has returned and its records are
// readable.
func (c *Collector[T]) WaitFor(epoch int64) { c.probe.WaitFor(epoch) }

// Done reports whether the epoch has drained into the collector.
func (c *Collector[T]) Done(epoch int64) bool { return c.probe.Done(epoch) }

// Probe exposes the collector's runtime probe — the completion signal a
// supervisor quiesces on before checkpointing (internal/supervise).
func (c *Collector[T]) Probe() *runtime.Probe { return c.probe }

// Epoch returns a copy of the records collected for an epoch.
func (c *Collector[T]) Epoch(e int64) []T {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]T(nil), c.epochs[e]...)
}

// Epochs returns the epochs with any records, sorted.
func (c *Collector[T]) Epochs() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int64, 0, len(c.epochs))
	for e := range c.epochs {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// All returns every collected record across epochs.
func (c *Collector[T]) All() []T {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []T
	for _, recs := range c.epochs {
		out = append(out, recs...)
	}
	return out
}
