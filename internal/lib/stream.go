// Package lib is Naiad's operator library (§4): typed dataflow streams and
// the LINQ-style, Bloom-style, and iterative patterns the paper builds over
// the low-level vertex API — Select, Where, SelectMany, GroupBy, Concat,
// Distinct, Join, Count, monotonic Aggregate, and structured Iterate loops.
//
// Everything here is library code over the public runtime surface, exactly
// as the paper advocates: no private hooks into the system.
package lib

import (
	"naiad/internal/batchbuf"
	"naiad/internal/codec"
	"naiad/internal/graph"
	"naiad/internal/runtime"
	ts "naiad/internal/timestamp"
)

// Scope wraps a Computation for typed graph construction.
type Scope struct {
	C *runtime.Computation
}

// NewScope creates a computation with the given config and wraps it.
func NewScope(cfg runtime.Config) (*Scope, error) {
	c, err := runtime.NewComputation(cfg)
	if err != nil {
		return nil, err
	}
	return &Scope{C: c}, nil
}

// Stream is a typed handle to one output port of a stage: the unit all
// operators consume and produce.
type Stream[T any] struct {
	scope *Scope
	stage runtime.StageID
	port  int
	cod   codec.Codec
	depth uint8
}

// Scope returns the stream's scope.
func (s *Stream[T]) Scope() *Scope { return s.scope }

// Stage returns the producing stage (for probes and ad hoc wiring).
func (s *Stream[T]) Stage() runtime.StageID { return s.stage }

// Codec returns the stream's record codec.
func (s *Stream[T]) Codec() codec.Codec { return s.cod }

// Depth returns the loop depth of the stream's timestamps.
func (s *Stream[T]) Depth() uint8 { return s.depth }

// orGob fills in the default codec for a record type.
func orGob[T any](c codec.Codec) codec.Codec {
	if c != nil {
		return c
	}
	return codec.Gob[T]()
}

// Input is a typed input handle paired with its stream.
type Input[T any] struct {
	raw *runtime.Input
}

// NewInput creates a typed input stage. cod may be nil to use gob.
func NewInput[T any](s *Scope, name string, cod codec.Codec) (*Input[T], *Stream[T]) {
	raw := s.C.NewInput(name)
	st := &Stream[T]{scope: s, stage: raw.Stage(), port: 0, cod: orGob[T](cod), depth: 0}
	return &Input[T]{raw: raw}, st
}

// Send introduces records into the current epoch. The records travel as one
// pooled typed batch — no per-record boxing.
func (in *Input[T]) Send(records ...T) {
	if len(records) == 0 {
		return
	}
	b, col := batchbuf.PoolFor[T]().Get(len(records))
	col.Data = append(col.Data, records...)
	in.raw.SendBatch(b)
}

// SendToWorker introduces records at a specific worker (per-computer
// ingestion, §5.4) as one pooled typed batch.
func (in *Input[T]) SendToWorker(worker int, records []T) {
	if len(records) == 0 {
		return
	}
	b, col := batchbuf.PoolFor[T]().Get(len(records))
	col.Data = append(col.Data, records...)
	in.raw.SendBatchToWorker(worker, b)
}

// OnNext supplies one epoch of records and advances (§4.1).
func (in *Input[T]) OnNext(records ...T) {
	in.Send(records...)
	in.raw.Advance()
}

// Advance completes the current epoch.
func (in *Input[T]) Advance() { in.raw.Advance() }

// AdvanceTo completes all epochs below e.
func (in *Input[T]) AdvanceTo(e int64) { in.raw.AdvanceTo(e) }

// Epoch returns the current epoch.
func (in *Input[T]) Epoch() int64 { return in.raw.Epoch() }

// Close marks the input complete (§2.1's OnCompleted).
func (in *Input[T]) Close() { in.raw.Close() }

// Raw exposes the untyped runtime handle.
func (in *Input[T]) Raw() *runtime.Input { return in.raw }

// partitionBy adapts a typed hash to a runtime partitioner.
func partitionBy[T any](h func(T) uint64) runtime.Partitioner {
	if h == nil {
		return nil
	}
	return func(m runtime.Message) uint64 { return h(m.(T)) }
}

// connect wires src→dst with both the scalar and the vectorized form of a
// typed partitioner, so exchanged batches are hashed column-at-a-time
// without boxing. h may be nil for unpartitioned edges.
func connect[T any](c *runtime.Computation, src runtime.StageID, srcPort int,
	dst runtime.StageID, h func(T) uint64, cod codec.Codec) {
	if h == nil {
		c.Connect(src, srcPort, dst, nil, cod)
		return
	}
	part, bpart := runtime.TypedPartitioner(h)
	c.ConnectBatch(src, srcPort, dst, part, bpart, cod)
}

// vertexOf adapts typed callbacks to the runtime Vertex interface. It also
// implements BatchVertex: a typed batch is unpacked with a single slice
// type-assertion, so per-record delivery inside the library never boxes.
type vertexOf[T any] struct {
	recv     func(input int, rec T, t ts.Timestamp)
	notify   func(t ts.Timestamp)
	shutdown func()
}

func (v *vertexOf[T]) OnRecv(input int, msg runtime.Message, t ts.Timestamp) {
	v.recv(input, msg.(T), t)
}

// OnRecvBatch delivers a borrowed batch: the typed fast path iterates the
// []T column directly; boxed or foreign columns fall back to per-record
// assertion.
func (v *vertexOf[T]) OnRecvBatch(input int, b *runtime.Batch, t ts.Timestamp) {
	if data, ok := b.Col().Slice().([]T); ok {
		for _, rec := range data {
			v.recv(input, rec, t)
		}
		return
	}
	for i, n := 0, b.Len(); i < n; i++ {
		v.recv(input, b.Record(i).(T), t)
	}
}

// batchVertexOf extends vertexOf with a whole-batch handler: when the
// incoming column is a []T, recvBatch sees the slice (and the borrowed
// batch, for Retain-and-forward operators) in one call. Other column shapes
// take vertexOf's per-record path.
type batchVertexOf[T any] struct {
	vertexOf[T]
	recvBatch func(input int, data []T, b *runtime.Batch, t ts.Timestamp)
}

func (v *batchVertexOf[T]) OnRecvBatch(input int, b *runtime.Batch, t ts.Timestamp) {
	if v.recvBatch != nil {
		if data, ok := b.Col().Slice().([]T); ok {
			v.recvBatch(input, data, b, t)
			return
		}
	}
	v.vertexOf.OnRecvBatch(input, b, t)
}

func (v *vertexOf[T]) OnNotify(t ts.Timestamp) {
	if v.notify != nil {
		v.notify(t)
	}
}

func (v *vertexOf[T]) OnShutdown() {
	if v.shutdown != nil {
		v.shutdown()
	}
}

// Probe attaches a frontier probe downstream of a stream: WaitFor(e)
// returns once epoch e has fully drained through the stream.
func Probe[T any](s *Stream[T]) *runtime.Probe {
	if s.depth != 0 {
		panic("lib: Probe requires a stream outside any loop context")
	}
	sink := s.scope.C.AddStage("probe", graph.RoleNormal, s.depth,
		func(ctx *runtime.Context) runtime.Vertex {
			return &vertexOf[T]{recv: func(int, T, ts.Timestamp) {}}
		})
	s.scope.C.Connect(s.stage, s.port, sink, nil, s.cod)
	return s.scope.C.NewProbe(sink)
}

// StreamOf wraps a raw stage output as a typed stream, for dataflows that
// mix library operators with custom low-level vertices (§4.3). The caller
// asserts that the stage emits T on the given port at the given loop depth.
func StreamOf[T any](s *Scope, stage runtime.StageID, port int, cod codec.Codec, depth uint8) *Stream[T] {
	return &Stream[T]{scope: s, stage: stage, port: port, cod: orGob[T](cod), depth: depth}
}

// Pair is a key-value record.
type Pair[K comparable, V any] struct {
	Key K
	Val V
}

// KV constructs a Pair.
func KV[K comparable, V any](k K, v V) Pair[K, V] { return Pair[K, V]{Key: k, Val: v} }
