package lib

import (
	"naiad/internal/batchbuf"
	"naiad/internal/codec"
	"naiad/internal/graph"
	"naiad/internal/runtime"
	ts "naiad/internal/timestamp"
)

// Select transforms each record with f, without buffering or coordination
// (the specialized no-coordination implementation of §4.2). cod may be nil
// to use gob for the output type. A typed input batch is mapped column-at-
// a-time into a pooled output batch — no per-record boxing.
func Select[A, B any](s *Stream[A], f func(A) B, cod codec.Codec) *Stream[B] {
	return unary[A, B](s, "Select", cod, nil,
		func(ctx *runtime.Context) func(A, ts.Timestamp) {
			return func(rec A, t ts.Timestamp) { ctx.SendBy(0, f(rec), t) }
		},
		func(ctx *runtime.Context) func([]A, *runtime.Batch, ts.Timestamp) {
			pool := batchbuf.PoolFor[B]()
			return func(data []A, _ *runtime.Batch, t ts.Timestamp) {
				out, col := pool.Get(len(data))
				for _, rec := range data {
					col.Data = append(col.Data, f(rec))
				}
				ctx.SendBatchBy(0, out, t)
			}
		})
}

// Where passes through records satisfying pred, asynchronously.
func Where[A any](s *Stream[A], pred func(A) bool) *Stream[A] {
	return unary[A, A](s, "Where", s.cod, nil,
		func(ctx *runtime.Context) func(A, ts.Timestamp) {
			return func(rec A, t ts.Timestamp) {
				if pred(rec) {
					ctx.SendBy(0, rec, t)
				}
			}
		},
		func(ctx *runtime.Context) func([]A, *runtime.Batch, ts.Timestamp) {
			pool := batchbuf.PoolFor[A]()
			return func(data []A, _ *runtime.Batch, t ts.Timestamp) {
				out, col := pool.Get(len(data))
				for _, rec := range data {
					if pred(rec) {
						col.Data = append(col.Data, rec)
					}
				}
				ctx.SendBatchBy(0, out, t)
			}
		})
}

// SelectMany expands each record into zero or more outputs, asynchronously
// (§4.1's map step).
func SelectMany[A, B any](s *Stream[A], f func(A) []B, cod codec.Codec) *Stream[B] {
	return unary[A, B](s, "SelectMany", cod, nil,
		func(ctx *runtime.Context) func(A, ts.Timestamp) {
			return func(rec A, t ts.Timestamp) {
				for _, out := range f(rec) {
					ctx.SendBy(0, out, t)
				}
			}
		},
		func(ctx *runtime.Context) func([]A, *runtime.Batch, ts.Timestamp) {
			pool := batchbuf.PoolFor[B]()
			return func(data []A, _ *runtime.Batch, t ts.Timestamp) {
				out, col := pool.Get(len(data))
				for _, rec := range data {
					col.Data = append(col.Data, f(rec)...)
				}
				ctx.SendBatchBy(0, out, t)
			}
		})
}

// Exchange repartitions a stream by the given hash without transforming
// records. Downstream local-delivery operators then observe the chosen
// placement. Whole batches are forwarded by reference and hashed
// column-at-a-time by the connector's vectorized partitioner.
func Exchange[A any](s *Stream[A], h func(A) uint64) *Stream[A] {
	return unary[A, A](s, "Exchange", s.cod, h,
		func(ctx *runtime.Context) func(A, ts.Timestamp) {
			return func(rec A, t ts.Timestamp) { ctx.SendBy(0, rec, t) }
		},
		func(ctx *runtime.Context) func([]A, *runtime.Batch, ts.Timestamp) {
			return func(_ []A, b *runtime.Batch, t ts.Timestamp) {
				ctx.SendBatchBy(0, b.Retain(), t)
			}
		})
}

// InspectParallel invokes f for every record at whichever worker holds it.
// f runs on worker threads and must be safe for concurrent invocation.
func InspectParallel[A any](s *Stream[A], f func(epoch ts.Timestamp, rec A)) *Stream[A] {
	return unary[A, A](s, "Inspect", s.cod, nil,
		func(ctx *runtime.Context) func(A, ts.Timestamp) {
			return func(rec A, t ts.Timestamp) {
				f(t, rec)
				ctx.SendBy(0, rec, t)
			}
		},
		func(ctx *runtime.Context) func([]A, *runtime.Batch, ts.Timestamp) {
			return func(data []A, b *runtime.Batch, t ts.Timestamp) {
				for _, rec := range data {
					f(t, rec)
				}
				ctx.SendBatchBy(0, b.Retain(), t)
			}
		})
}

// unary builds a one-input one-output stage whose vertex forwards through
// the closure returned by mk. part, when non-nil, exchanges the input.
// mkBatch, when non-nil, supplies the typed whole-batch fast path; other
// column shapes fall back to the per-record closure.
func unary[A, B any](s *Stream[A], name string, cod codec.Codec, part func(A) uint64,
	mk func(ctx *runtime.Context) func(A, ts.Timestamp),
	mkBatch func(ctx *runtime.Context) func([]A, *runtime.Batch, ts.Timestamp)) *Stream[B] {
	c := s.scope.C
	st := c.AddStage(name, graph.RoleNormal, s.depth, func(ctx *runtime.Context) runtime.Vertex {
		f := mk(ctx)
		v := &batchVertexOf[A]{vertexOf: vertexOf[A]{
			recv: func(_ int, rec A, t ts.Timestamp) { f(rec, t) },
		}}
		if mkBatch != nil {
			fb := mkBatch(ctx)
			v.recvBatch = func(_ int, data []A, b *runtime.Batch, t ts.Timestamp) { fb(data, b, t) }
		}
		return v
	})
	connect(c, s.stage, s.port, st, part, s.cod)
	return &Stream[B]{scope: s.scope, stage: st, port: 0, cod: orGob[B](cod), depth: s.depth}
}

// Concat merges two streams of the same type without coordination (§4.2).
// Batches pass through by reference.
func Concat[A any](a, b *Stream[A]) *Stream[A] {
	if a.depth != b.depth {
		panic("lib: Concat requires streams at the same loop depth")
	}
	c := a.scope.C
	st := c.AddStage("Concat", graph.RoleNormal, a.depth, func(ctx *runtime.Context) runtime.Vertex {
		return &batchVertexOf[A]{
			vertexOf: vertexOf[A]{recv: func(_ int, rec A, t ts.Timestamp) { ctx.SendBy(0, rec, t) }},
			recvBatch: func(_ int, _ []A, b *runtime.Batch, t ts.Timestamp) {
				ctx.SendBatchBy(0, b.Retain(), t)
			},
		}
	})
	c.Connect(a.stage, a.port, st, nil, a.cod)
	c.Connect(b.stage, b.port, st, nil, b.cod)
	return &Stream[A]{scope: a.scope, stage: st, port: 0, cod: a.cod, depth: a.depth}
}

// Distinct emits each record the first time it is observed at each
// timestamp, as soon as it is seen (§4.2's no-coordination specialization;
// compare Figure 4's output1). State for a time is purged once the time
// completes.
func Distinct[A comparable](s *Stream[A]) *Stream[A] {
	c := s.scope.C
	st := c.AddStage("Distinct", graph.RoleNormal, s.depth, func(ctx *runtime.Context) runtime.Vertex {
		seen := make(map[ts.Timestamp]map[A]struct{})
		pool := batchbuf.PoolFor[A]()
		get := func(t ts.Timestamp) map[A]struct{} {
			m := seen[t]
			if m == nil {
				m = make(map[A]struct{})
				seen[t] = m
				ctx.NotifyAtPurge(t)
			}
			return m
		}
		return &batchVertexOf[A]{
			vertexOf: vertexOf[A]{
				recv: func(_ int, rec A, t ts.Timestamp) {
					m := get(t)
					if _, dup := m[rec]; !dup {
						m[rec] = struct{}{}
						ctx.SendBy(0, rec, t)
					}
				},
				notify: func(t ts.Timestamp) { delete(seen, t) },
			},
			recvBatch: func(_ int, data []A, _ *runtime.Batch, t ts.Timestamp) {
				m := get(t)
				out, col := pool.Get(len(data))
				for _, rec := range data {
					if _, dup := m[rec]; !dup {
						m[rec] = struct{}{}
						col.Data = append(col.Data, rec)
					}
				}
				ctx.SendBatchBy(0, out, t)
			},
		}
	})
	connect(c, s.stage, s.port, st, Hash[A], s.cod)
	return &Stream[A]{scope: s.scope, stage: st, port: 0, cod: s.cod, depth: s.depth}
}

// DistinctCumulative emits each record the first time it is ever observed,
// across all timestamps — the asynchronous set-semantics Distinct used
// inside Bloom-style loops (§4.2), where iterations refine one monotone
// set. Its seen-set participates in checkpoints (§3.4), serialized with
// the stream's record codec.
func DistinctCumulative[A comparable](s *Stream[A]) *Stream[A] {
	c := s.scope.C
	cod := s.cod
	st := c.AddStage("DistinctCum", graph.RoleNormal, s.depth, func(ctx *runtime.Context) runtime.Vertex {
		seen := make(map[A]struct{})
		return &checkpointableVertex[A]{
			vertexOf: vertexOf[A]{
				recv: func(_ int, rec A, t ts.Timestamp) {
					if _, dup := seen[rec]; !dup {
						seen[rec] = struct{}{}
						ctx.SendBy(0, rec, t)
					}
				},
			},
			checkpoint: func(enc *codec.Encoder) {
				recs := make([]any, 0, len(seen))
				for rec := range seen {
					recs = append(recs, rec)
				}
				enc.PutUint32(uint32(len(recs)))
				cod.EncodeBatch(enc, recs)
			},
			restore: func(dec *codec.Decoder) {
				seen = make(map[A]struct{})
				n := int(dec.Uint32())
				for _, rec := range cod.DecodeBatch(dec, n) {
					seen[rec.(A)] = struct{}{}
				}
			},
		}
	})
	connect(c, s.stage, s.port, st, Hash[A], s.cod)
	return &Stream[A]{scope: s.scope, stage: st, port: 0, cod: s.cod, depth: s.depth}
}

// checkpointableVertex extends vertexOf with the §3.4 Checkpointer
// interface via closures over the vertex's state.
type checkpointableVertex[T any] struct {
	vertexOf[T]
	checkpoint func(*codec.Encoder)
	restore    func(*codec.Decoder)
}

// Checkpoint serializes the vertex state.
func (v *checkpointableVertex[T]) Checkpoint(enc *codec.Encoder) { v.checkpoint(enc) }

// Restore reconstructs the vertex state.
func (v *checkpointableVertex[T]) Restore(dec *codec.Decoder) { v.restore(dec) }
