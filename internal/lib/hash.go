package lib

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"
)

// Hash maps a comparable key to a well-mixed 64-bit value for data
// exchange. Fast paths cover the key types the workloads use; anything
// else falls back to a gob+FNV encoding (correct, slower).
func Hash[K comparable](k K) uint64 {
	switch v := any(k).(type) {
	case int:
		return mix64(uint64(v))
	case int32:
		return mix64(uint64(v))
	case int64:
		return mix64(uint64(v))
	case uint32:
		return mix64(uint64(v))
	case uint64:
		return mix64(v)
	case string:
		h := fnv.New64a()
		h.Write([]byte(v))
		return mix64(h.Sum64())
	default:
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(v); err != nil {
			panic(fmt.Sprintf("lib: unhashable key %T: %v", v, err))
		}
		h := fnv.New64a()
		h.Write(buf.Bytes())
		return mix64(h.Sum64())
	}
}

// mix64 is the splitmix64 finalizer: full-avalanche mixing so that modular
// reduction over worker counts spreads sequential keys evenly.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashPair hashes a Pair by its key, the exchange function for keyed
// operators.
func HashPair[K comparable, V any](p Pair[K, V]) uint64 { return Hash(p.Key) }
