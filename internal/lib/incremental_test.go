package lib

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"naiad/internal/codec"
	"naiad/internal/testutil"
)

// accumulate folds a collector of diffs into final multiplicities per
// record, across all epochs up to and including `upTo`.
func accumulate[T comparable](col *Collector[Diff[T]], upTo int64) map[T]int64 {
	out := map[T]int64{}
	for _, e := range col.Epochs() {
		if e > upTo {
			continue
		}
		for _, d := range col.Epoch(e) {
			out[d.Rec] += d.Delta
			if out[d.Rec] == 0 {
				delete(out, d.Rec)
			}
		}
	}
	return out
}

func TestDiffDistinctInsertDelete(t *testing.T) {
	s := newTestScope(t, testCfg())
	in, src := NewInput[Diff[int64]](s, "in", nil)
	out := DiffDistinct(src)
	col := Collect(out)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	// Epoch 0: insert 1 twice and 2 once → set {1, 2}.
	in.OnNext(Add(int64(1)), Add(int64(1)), Add(int64(2)))
	// Epoch 1: delete one copy of 1 → still {1, 2}: no output.
	in.OnNext(Del(int64(1)))
	// Epoch 2: delete the last copy of 1 → {2}: emit -1.
	in.OnNext(Del(int64(1)))
	in.Close()
	join(t, s)
	if set := accumulate(col, 0); len(set) != 2 || set[1] != 1 || set[2] != 1 {
		t.Fatalf("epoch 0 set = %v", set)
	}
	if diffs := col.Epoch(1); len(diffs) != 0 {
		t.Fatalf("epoch 1 emitted %v for a multiplicity-only change", diffs)
	}
	if set := accumulate(col, 2); len(set) != 1 || set[2] != 1 {
		t.Fatalf("final set = %v", set)
	}
}

func TestDiffCountCorrections(t *testing.T) {
	s := newTestScope(t, testCfg())
	in, src := NewInput[Diff[string]](s, "in", nil)
	counts := DiffCount(src, nil)
	col := Collect(counts)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(Add("a"), Add("a"), Add("b"))
	in.OnNext(Del("a"), Add("b"))
	in.Close()
	join(t, s)
	// Epoch 0 output: +{a,2} +{b,1}.
	got0 := accumulate(col, 0)
	if got0[KV("a", int64(2))] != 1 || got0[KV("b", int64(1))] != 1 || len(got0) != 2 {
		t.Fatalf("epoch 0 = %v", got0)
	}
	// Epoch 1: a drops to 1, b rises to 2 — accumulated table reflects it.
	got1 := accumulate(col, 1)
	if got1[KV("a", int64(1))] != 1 || got1[KV("b", int64(2))] != 1 || len(got1) != 2 {
		t.Fatalf("epoch 1 accumulated = %v", got1)
	}
	// And the epoch-1 emissions are exactly the corrections.
	raw := col.Epoch(1)
	if len(raw) != 4 {
		t.Fatalf("epoch 1 corrections = %v", raw)
	}
}

func TestDiffJoinBilinear(t *testing.T) {
	s := newTestScope(t, testCfg())
	inA, a := NewInput[Diff[Pair[int64, string]]](s, "a", nil)
	inB, b := NewInput[Diff[Pair[int64, int64]]](s, "b", nil)
	joined := DiffJoin(a, b, func(k int64, av string, bv int64) string {
		return fmt.Sprintf("%d:%s:%d", k, av, bv)
	}, nil)
	col := Collect(joined)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	// Epoch 0: both sides get key 1.
	inA.OnNext(Add(KV(int64(1), "x")))
	inB.OnNext(Add(KV(int64(1), int64(10))))
	// Epoch 1: a second right value arrives → one new match.
	inA.OnNext()
	inB.OnNext(Add(KV(int64(1), int64(11))))
	// Epoch 2: the left record is deleted → both matches retract.
	inA.OnNext(Del(KV(int64(1), "x")))
	inB.OnNext()
	inA.Close()
	inB.Close()
	join(t, s)
	if got := accumulate(col, 0); len(got) != 1 || got["1:x:10"] != 1 {
		t.Fatalf("epoch 0 = %v", got)
	}
	if got := accumulate(col, 1); len(got) != 2 || got["1:x:11"] != 1 {
		t.Fatalf("epoch 1 = %v", got)
	}
	if got := accumulate(col, 2); len(got) != 0 {
		t.Fatalf("epoch 2: join did not fully retract: %v", got)
	}
}

func TestConsolidateCancels(t *testing.T) {
	s := newTestScope(t, testCfg())
	in, src := NewInput[Diff[int64]](s, "in", nil)
	out := Consolidate(src)
	col := Collect(out)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(Add(int64(1)), Del(int64(1)), Add(int64(2)), Add(int64(2)))
	in.Close()
	join(t, s)
	diffs := col.Epoch(0)
	if len(diffs) != 1 || diffs[0].Rec != 2 || diffs[0].Delta != 2 {
		t.Fatalf("consolidated = %v", diffs)
	}
}

func TestDiffSelectManyWhere(t *testing.T) {
	s := newTestScope(t, testCfg())
	in, src := NewInput[Diff[string]](s, "docs", nil)
	words := DiffSelectMany(src, strings.Fields, nil)
	kept := DiffWhere(words, func(w string) bool { return w != "the" })
	upper := DiffSelect(kept, strings.ToUpper, nil)
	col := Collect(upper)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(Add("the quick fox"))
	in.OnNext(Del("the quick fox"))
	in.Close()
	join(t, s)
	if got := accumulate(col, 1); len(got) != 0 {
		t.Fatalf("after deletion, accumulation = %v", got)
	}
	if got := accumulate(col, 0); got["QUICK"] != 1 || got["FOX"] != 1 {
		t.Fatalf("epoch 0 = %v", got)
	}
}

// TestIncrementalWordCountMatchesBatch is the end-to-end property: the
// accumulated output of the incremental pipeline equals a from-scratch
// batch recomputation after every epoch, across random insertions and
// deletions.
func TestIncrementalWordCountMatchesBatch(t *testing.T) {
	const epochs = 8
	r := rand.New(rand.NewSource(testutil.Seed(t)))
	vocab := []string{"a", "b", "c", "d", "e"}

	s := newTestScope(t, testCfg())
	in, src := NewInput[Diff[string]](s, "words", codec.Gob[Diff[string]]())
	counts := DiffCount(src, nil)
	col := Collect(counts)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	live := map[string]int64{}
	type epochLog map[string]int64
	var logs []epochLog
	for e := 0; e < epochs; e++ {
		var batch []Diff[string]
		for i := 0; i < 10; i++ {
			w := vocab[r.Intn(len(vocab))]
			if live[w] > 0 && r.Intn(3) == 0 {
				batch = append(batch, Del(w))
				live[w]--
			} else {
				batch = append(batch, Add(w))
				live[w]++
			}
		}
		in.OnNext(batch...)
		snap := epochLog{}
		for w, n := range live {
			if n > 0 {
				snap[w] = n
			}
		}
		logs = append(logs, snap)
	}
	in.Close()
	join(t, s)
	for e, want := range logs {
		got := accumulate(col, int64(e))
		table := map[string]int64{}
		for rec, mult := range got {
			if mult != 1 {
				t.Fatalf("epoch %d: count record %v has multiplicity %d", e, rec, mult)
			}
			table[rec.Key] = rec.Val
		}
		if len(table) != len(want) {
			t.Fatalf("epoch %d: table %v, want %v", e, table, want)
		}
		for w, n := range want {
			if table[w] != n {
				t.Fatalf("epoch %d: %q = %d, want %d", e, w, table[w], n)
			}
		}
	}
}

func TestDiffMisusePanics(t *testing.T) {
	s := newTestScope(t, testCfg())
	in, src := NewInput[Diff[int64]](s, "in", nil)
	out := DiffDistinct(src)
	Collect(out)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(Del(int64(9))) // deletion of an absent record
	in.Close()
	err := s.C.Join()
	if err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("Join error = %v", err)
	}
}
