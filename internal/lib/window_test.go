package lib

import (
	"fmt"
	"testing"

	"naiad/internal/codec"
)

func TestTumblingWindowSums(t *testing.T) {
	s := newTestScope(t, testCfg())
	in, src := NewInput[int64](s, "in", codec.Int64())
	sums := TumblingWindow(src, 2, func(w int64, recs []int64, emit func(int64)) {
		var sum int64
		for _, v := range recs {
			sum += v
		}
		emit(sum)
	}, codec.Int64())
	col := Collect(sums)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(1, 2) // epoch 0 } window 0
	in.OnNext(3)    // epoch 1 }
	in.OnNext(10)   // epoch 2 } window 1 (cut short by close)
	in.Close()
	join(t, s)
	// Window 0 flushes at epoch 1; per-worker vertices each emit their
	// local sum, so total across emissions is what we check.
	total := func(e int64) int64 {
		var sum int64
		for _, v := range col.Epoch(e) {
			sum += v
		}
		return sum
	}
	if got := total(1); got != 6 {
		t.Fatalf("window 0 sum = %d", got)
	}
	if got := total(3); got != 10 {
		t.Fatalf("window 1 sum = %d", got)
	}
}

func TestTumblingWindowPanics(t *testing.T) {
	s := newTestScope(t, testCfg())
	_, src := NewInput[int64](s, "in", codec.Int64())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TumblingWindow(src, 0, func(int64, []int64, func(int64)) {}, nil)
}

// TestSlidingWindowCount composes SlidingWindowDiffs with DiffCount: the
// accumulated count table at each epoch must equal the count over the
// last `size` epochs only.
func TestSlidingWindowCount(t *testing.T) {
	s := newTestScope(t, testCfg())
	in, src := NewInput[string](s, "in", codec.String())
	windowed := SlidingWindowDiffs(src, 2)
	counts := DiffCount(windowed, nil)
	col := Collect(counts)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext("a", "a", "b") // epoch 0
	in.OnNext("a")           // epoch 1: window = {a×3, b}
	in.OnNext()              // epoch 2: window = {a×1} (epoch 0 expired)
	in.OnNext()              // epoch 3: window = {}
	in.Close()
	join(t, s)
	table := func(upTo int64) map[string]int64 {
		acc := map[string]int64{}
		for _, e := range col.Epochs() {
			if e > upTo {
				continue
			}
			for _, d := range col.Epoch(e) {
				if d.Delta > 0 {
					acc[d.Rec.Key] = d.Rec.Val
				} else if acc[d.Rec.Key] == d.Rec.Val {
					delete(acc, d.Rec.Key)
				}
			}
		}
		return acc
	}
	if got := table(0); got["a"] != 2 || got["b"] != 1 {
		t.Fatalf("epoch 0 window = %v", got)
	}
	if got := table(1); got["a"] != 3 || got["b"] != 1 {
		t.Fatalf("epoch 1 window = %v", got)
	}
	if got := table(2); got["a"] != 1 || got["b"] != 0 {
		t.Fatalf("epoch 2 window = %v", got)
	}
	if got := table(3); len(got) != 0 {
		t.Fatalf("epoch 3 window = %v", got)
	}
}

func TestSlidingWindowDiffsPanicInLoop(t *testing.T) {
	s := newTestScope(t, testCfg())
	_, src := NewInput[int64](s, "in", codec.Int64())
	inner := EnterLoop(src, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SlidingWindowDiffs(inner, 2)
}

func TestWindowRender(t *testing.T) {
	// Exercise fmt paths on Diff for documentation examples.
	d := Add("x")
	if fmt.Sprint(d) != "{x 1}" {
		t.Fatalf("diff rendering = %v", d)
	}
}
