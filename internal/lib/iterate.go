package lib

import (
	"naiad/internal/graph"
	"naiad/internal/runtime"
	ts "naiad/internal/timestamp"
)

// Loop is a loop context under construction (§4.3): streams enter through
// ingress stages, circulate through a feedback stage, and leave through
// egress stages. Only the feedback stage's output may be used before its
// input is connected, which is what lets cycles be built at all.
type Loop[T any] struct {
	scope    *Scope
	depth    uint8 // depth inside the loop
	feedback runtime.StageID
	fbOut    *Stream[T]
	closed   bool
}

// NewLoop opens a loop context at the depth below s, returning the loop
// and the feedback stage's output stream (timestamps already advanced by
// one iteration). maxIters bounds the loop; records reaching that
// iteration count are dropped by the feedback stage.
func NewLoop[T any](scope *Scope, depth uint8, exampleCodec *Stream[T], maxIters int64) *Loop[T] {
	c := scope.C
	fb := c.AddStage("Feedback", graph.RoleFeedback, depth+1, nil, runtime.MaxIterations(maxIters))
	l := &Loop[T]{scope: scope, depth: depth + 1, feedback: fb}
	l.fbOut = &Stream[T]{scope: scope, stage: fb, port: 0, cod: exampleCodec.cod, depth: depth + 1}
	return l
}

// Enter brings a stream into the loop through an ingress stage: its
// records appear inside at iteration 0 of their outer time.
func (l *Loop[T]) Enter(s *Stream[T]) *Stream[T] {
	return EnterLoop(s, l.depth)
}

// Feedback returns the feedback stage's output: the values sent to Return,
// one iteration later.
func (l *Loop[T]) Feedback() *Stream[T] { return l.fbOut }

// Return connects a stream inside the loop to the feedback stage,
// closing the cycle. It must be called exactly once.
func (l *Loop[T]) Return(s *Stream[T]) {
	if l.closed {
		panic("lib: loop Return called twice")
	}
	if s.depth != l.depth {
		panic("lib: Return stream is at the wrong loop depth")
	}
	l.closed = true
	l.scope.C.Connect(s.stage, s.port, l.feedback, nil, s.cod)
}

// EnterLoop passes one stream through an ingress stage into a loop at the
// given inner depth.
func EnterLoop[T any](s *Stream[T], innerDepth uint8) *Stream[T] {
	if s.depth+1 != innerDepth {
		panic("lib: EnterLoop depth mismatch")
	}
	c := s.scope.C
	ing := c.AddStage("Ingress", graph.RoleIngress, s.depth, nil)
	c.Connect(s.stage, s.port, ing, nil, s.cod)
	return &Stream[T]{scope: s.scope, stage: ing, port: 0, cod: s.cod, depth: innerDepth}
}

// LeaveLoop passes a stream through an egress stage out of its loop,
// erasing the innermost loop counter.
func LeaveLoop[T any](s *Stream[T]) *Stream[T] {
	if s.depth == 0 {
		panic("lib: LeaveLoop outside any loop")
	}
	c := s.scope.C
	eg := c.AddStage("Egress", graph.RoleEgress, s.depth, nil)
	c.Connect(s.stage, s.port, eg, nil, s.cod)
	return &Stream[T]{scope: s.scope, stage: eg, port: 0, cod: s.cod, depth: s.depth - 1}
}

// IterateBatched builds a bulk-synchronous fixed-point loop: per
// iteration, f receives everything circulating at that iteration (batched
// by a notification barrier, per worker partition) and returns the records
// to continue circulating plus the records that are done and should leave
// the loop. The loop ends when nothing continues, or at maxIters.
//
// Compare Iterate, whose body runs record-at-a-time without coordination:
// IterateBatched trades per-iteration barriers for the ability to see each
// iteration's complete (per-partition) state — the synchronous end of the
// §2.4 spectrum.
func IterateBatched[T any](s *Stream[T], maxIters int64, part func(T) uint64,
	f func(iter int64, recs []T) (continue_, done []T)) *Stream[T] {
	loop := NewLoop(s.scope, s.depth, s, maxIters)
	inner := Concat(loop.Enter(s), loop.Feedback())
	c := s.scope.C
	st := c.AddStage("IterateBatched", graph.RoleNormal, inner.depth, func(ctx *runtime.Context) runtime.Vertex {
		buf := make(map[ts.Timestamp][]T)
		return &vertexOf[T]{
			recv: func(_ int, rec T, t ts.Timestamp) {
				if _, ok := buf[t]; !ok {
					ctx.NotifyAt(t)
				}
				buf[t] = append(buf[t], rec)
			},
			notify: func(t ts.Timestamp) {
				recs := buf[t]
				delete(buf, t)
				cont, done := f(t.Inner(), recs)
				for _, rec := range cont {
					ctx.SendBy(0, rec, t)
				}
				for _, rec := range done {
					ctx.SendBy(1, rec, t)
				}
			},
		}
	}, runtime.Ports(2))
	connect(c, inner.stage, inner.port, st, part, inner.cod)
	body := &Stream[T]{scope: s.scope, stage: st, port: 0, cod: s.cod, depth: inner.depth}
	loop.Return(body)
	out := &Stream[T]{scope: s.scope, stage: st, port: 1, cod: s.cod, depth: inner.depth}
	return LeaveLoop(out)
}

// Iterate builds the standard fixed-point loop: body transforms the
// circulating stream; its output feeds back (bounded by maxIters) and also
// leaves the loop. The loop runs until the body stops producing records —
// dataflow quiescence is the fixed-point test — or the bound is hit, so
// bodies should emit only changed values. The returned stream carries every
// record the body emitted, at the loop's outer time.
func Iterate[T any](s *Stream[T], maxIters int64,
	body func(inner *Stream[T]) *Stream[T]) *Stream[T] {
	loop := NewLoop(s.scope, s.depth, s, maxIters)
	inner := Concat(loop.Enter(s), loop.Feedback())
	result := body(inner)
	loop.Return(result)
	return LeaveLoop(result)
}
