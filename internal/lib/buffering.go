package lib

import (
	"naiad/internal/batchbuf"
	"naiad/internal/codec"
	"naiad/internal/graph"
	"naiad/internal/runtime"
	ts "naiad/internal/timestamp"
)

// UnaryBuffer is the generic buffering operator most synchronous library
// operators build on (§4.2): OnRecv appends records to a list indexed by
// timestamp; once the time completes, f transforms the list and emits.
// part, when non-nil, exchanges the input first. Typed input batches are
// bulk-appended; the notify-time emission leaves as one pooled batch.
func UnaryBuffer[A, B any](s *Stream[A], name string, part func(A) uint64,
	f func(t ts.Timestamp, recs []A, emit func(B)), cod codec.Codec) *Stream[B] {
	return UnaryBufferStateful[A, B](s, name, part,
		func() func(ts.Timestamp, []A, func(B)) { return f }, cod)
}

// UnaryBufferStateful is UnaryBuffer for operators with cross-epoch
// per-vertex state: mk runs once per vertex (on its owning worker) and
// returns that vertex's transformation, so captured state is never shared
// between workers.
func UnaryBufferStateful[A, B any](s *Stream[A], name string, part func(A) uint64,
	mk func() func(t ts.Timestamp, recs []A, emit func(B)), cod codec.Codec) *Stream[B] {
	c := s.scope.C
	st := c.AddStage(name, graph.RoleNormal, s.depth, func(ctx *runtime.Context) runtime.Vertex {
		f := mk()
		buf := make(map[ts.Timestamp][]A)
		pool := batchbuf.PoolFor[B]()
		note := func(t ts.Timestamp) {
			if _, ok := buf[t]; !ok {
				ctx.NotifyAt(t)
				buf[t] = []A{}
			}
		}
		return &batchVertexOf[A]{
			vertexOf: vertexOf[A]{
				recv: func(_ int, rec A, t ts.Timestamp) {
					note(t)
					buf[t] = append(buf[t], rec)
				},
				notify: func(t ts.Timestamp) {
					recs := buf[t]
					delete(buf, t)
					out, col := pool.Get(len(recs))
					f(t, recs, func(b B) { col.Data = append(col.Data, b) })
					ctx.SendBatchBy(0, out, t)
				},
			},
			recvBatch: func(_ int, data []A, _ *runtime.Batch, t ts.Timestamp) {
				note(t)
				buf[t] = append(buf[t], data...)
			},
		}
	})
	connect(c, s.stage, s.port, st, part, s.cod)
	return &Stream[B]{scope: s.scope, stage: st, port: 0, cod: orGob[B](cod), depth: s.depth}
}

// GroupBy collates records by key and applies the reduction once all
// records for a time have arrived — the paper's GroupBy (§4.1). cod may be
// nil to use gob for R.
func GroupBy[A any, K comparable, R any](s *Stream[A], key func(A) K,
	reduce func(K, []A) []R, cod codec.Codec) *Stream[R] {
	part := func(a A) uint64 { return Hash(key(a)) }
	return UnaryBuffer[A, R](s, "GroupBy", part, func(_ ts.Timestamp, recs []A, emit func(R)) {
		groups := make(map[K][]A)
		var order []K
		for _, r := range recs {
			k := key(r)
			if _, ok := groups[k]; !ok {
				order = append(order, k)
			}
			groups[k] = append(groups[k], r)
		}
		for _, k := range order {
			for _, out := range reduce(k, groups[k]) {
				emit(out)
			}
		}
	}, cod)
}

// FoldByKey folds each key's values at each time into a single state,
// emitting one (key, state) pair when the time completes.
func FoldByKey[K comparable, V any, S any](s *Stream[Pair[K, V]],
	init func(K) S, fold func(S, V) S, cod codec.Codec) *Stream[Pair[K, S]] {
	c := s.scope.C
	st := c.AddStage("FoldByKey", graph.RoleNormal, s.depth, func(ctx *runtime.Context) runtime.Vertex {
		type epochState struct {
			m     map[K]S
			order []K
		}
		states := make(map[ts.Timestamp]*epochState)
		pool := batchbuf.PoolFor[Pair[K, S]]()
		get := func(t ts.Timestamp) *epochState {
			es := states[t]
			if es == nil {
				es = &epochState{m: make(map[K]S)}
				states[t] = es
				ctx.NotifyAt(t)
			}
			return es
		}
		one := func(es *epochState, rec Pair[K, V]) {
			st, ok := es.m[rec.Key]
			if !ok {
				st = init(rec.Key)
				es.order = append(es.order, rec.Key)
			}
			es.m[rec.Key] = fold(st, rec.Val)
		}
		return &batchVertexOf[Pair[K, V]]{
			vertexOf: vertexOf[Pair[K, V]]{
				recv: func(_ int, rec Pair[K, V], t ts.Timestamp) { one(get(t), rec) },
				notify: func(t ts.Timestamp) {
					es := states[t]
					delete(states, t)
					out, col := pool.Get(len(es.order))
					for _, k := range es.order {
						col.Data = append(col.Data, Pair[K, S]{Key: k, Val: es.m[k]})
					}
					ctx.SendBatchBy(0, out, t)
				},
			},
			recvBatch: func(_ int, data []Pair[K, V], _ *runtime.Batch, t ts.Timestamp) {
				es := get(t)
				for _, rec := range data {
					one(es, rec)
				}
			},
		}
	})
	connect(c, s.stage, s.port, st, HashPair[K, V], s.cod)
	return &Stream[Pair[K, S]]{scope: s.scope, stage: st, port: 0, cod: orGob[Pair[K, S]](cod), depth: s.depth}
}

// Count counts occurrences of each record at each time (Figure 4's
// output2).
func Count[A comparable](s *Stream[A], cod codec.Codec) *Stream[Pair[A, int64]] {
	keyed := Select(s, func(a A) Pair[A, int64] { return Pair[A, int64]{Key: a, Val: 1} }, nil)
	return FoldByKey(keyed, func(A) int64 { return 0 },
		func(acc, v int64) int64 { return acc + v }, cod)
}

// minState tracks a running extremum; OK distinguishes "no value yet" from
// a genuine zero value.
type minState[V any] struct {
	V  V
	OK bool
}

// MinByKey keeps each key's minimum value per time, by the given less.
func MinByKey[K comparable, V any](s *Stream[Pair[K, V]], less func(a, b V) bool,
	cod codec.Codec) *Stream[Pair[K, V]] {
	folded := FoldByKey(s,
		func(K) minState[V] { return minState[V]{} },
		func(acc minState[V], v V) minState[V] {
			if !acc.OK || less(v, acc.V) {
				return minState[V]{V: v, OK: true}
			}
			return acc
		}, nil)
	return Select(folded, func(p Pair[K, minState[V]]) Pair[K, V] {
		return KV(p.Key, p.Val.V)
	}, cod)
}

// MaxByKey keeps each key's maximum value per time, by the given less.
func MaxByKey[K comparable, V any](s *Stream[Pair[K, V]], less func(a, b V) bool,
	cod codec.Codec) *Stream[Pair[K, V]] {
	return MinByKey(s, func(a, b V) bool { return less(b, a) }, cod)
}

// Barrier forwards nothing and notifies per time; it exists to create pure
// synchronization points (the Figure 6b microbenchmark). Records are
// consumed and dropped; one zero-valued record is emitted per completed
// time so downstream stages can observe the barrier.
func Barrier[A any](s *Stream[A]) *Stream[A] {
	return UnaryBuffer[A, A](s, "Barrier", nil, func(_ ts.Timestamp, _ []A, emit func(A)) {
		var zero A
		emit(zero)
	}, s.cod)
}
