package lib

import (
	"bytes"
	"sort"
	"sync"

	"naiad/internal/codec"
	"naiad/internal/graph"
	"naiad/internal/runtime"
	ts "naiad/internal/timestamp"
)

// Sink is the exactly-once egress operator: each completed epoch's records
// are sealed into one frontier-stamped batch and committed to an external
// store through asynchronous I/O, with a held capability (§2.3 timestamp
// token) standing in for the in-flight commit. The capability keeps the
// epoch's pointstamp occupied at the sink stage, so probes on the sink do
// not report the epoch complete — and downstream frontiers do not advance
// past it — until the store has acknowledged the batch. Epoch completion at
// the sink therefore means *committed*, not merely delivered.
//
// Exactly-once across failure: the batch bytes are canonical (per-record
// encodings sorted, so worker interleaving cannot perturb them), the store
// deduplicates by epoch, and the capability's (stage, seq) identity survives
// crash/revive — a commit acknowledged before a crash retires the re-minted
// token after replay, while an unacknowledged one is re-driven from the
// snapshot. Every schedule yields byte-identical, duplicate-free output.

// SinkBatch is one sealed epoch of sink output. Frontier is the stamp the
// rest of the system is guaranteed to have passed once the batch is visible:
// no record with timestamp < Frontier will ever be appended to this or any
// later batch. It is derived from the epoch's guarantee (ts.Root(epoch+1))
// rather than read from the live frontier, so the stamp — like Data — is
// a pure function of the epoch and identical across replays.
type SinkBatch struct {
	Epoch    int64
	Frontier ts.Timestamp
	// Data is the canonical encoding of the epoch's records: each record's
	// codec encoding, sorted lexicographically, concatenated with uint32
	// length prefixes.
	Data []byte
}

// SinkStore is the external system a Sink commits to. Commit must be
// idempotent per epoch — replay and restart may re-drive a batch — and safe
// for concurrent use: within one sink incarnation commits are chained in
// epoch order with at most one in flight, but a goroutine stranded by a
// crash may race the re-driven commit of the same (byte-identical) batch.
// A nil return acknowledges durability and releases the epoch's capability;
// an error leaves the capability held and stalls the chain, visibly pinning
// the sink's frontier until a restore re-drives the sealed batches.
type SinkStore interface {
	Commit(b SinkBatch) error
}

// Sink attaches an exactly-once frontier-stamped sink to a stream. All
// records converge on one vertex (worker 0), epochs seal in notification
// order, and each sealed batch is committed to store off-thread under a held
// capability. It returns the sink stage's id; a probe on it reports an epoch
// done only once its batch is durably committed. The stream must be outside
// any loop.
func Sink[T any](s *Stream[T], store SinkStore) runtime.StageID {
	if s.depth != 0 {
		panic("lib: Sink requires a stream outside any loop context")
	}
	c := s.scope.C
	cod := s.cod
	st := c.AddStage("Sink", graph.RoleNormal, 0, func(ctx *runtime.Context) runtime.Vertex {
		buf := make(map[int64][]T)       // open epochs: records so far
		capSeq := make(map[int64]uint64) // open epochs: held-capability seq
		sealed := make(map[int64]sealedBatch)
		// Commits are chained: each goroutine waits for its predecessor's
		// *successful* commit before calling the store, so the store observes
		// batches in seal (epoch) order with at most one Commit in flight per
		// sink incarnation. A consumer that sees epoch e committed can
		// therefore trust every earlier non-empty epoch is already durable —
		// the invariant the serve layer's frontier-stamped reads ride. On
		// error the chain deliberately stalls: the held capabilities pin the
		// frontier until a restore re-drives the sealed batches in order.
		var prevOK chan struct{}
		commit := func(b SinkBatch, hc *runtime.Capability) {
			wait := prevOK
			done := make(chan struct{})
			prevOK = done
			go func() {
				if wait != nil {
					<-wait
				}
				if store.Commit(b) != nil {
					return
				}
				close(done)
				if hc != nil {
					hc.DropAsync()
				}
			}()
		}
		return &checkpointableVertex[T]{
			vertexOf: vertexOf[T]{
				recv: func(_ int, rec T, t ts.Timestamp) {
					e := t.Epoch
					if _, open := capSeq[e]; !open {
						// First record of the epoch: hold a capability at
						// its pointstamp for the eventual commit, and ask
						// for a bare (purge) notification at seal time —
						// the capability carries the token, so a second
						// token from NotifyAt would be redundant.
						capSeq[e] = ctx.HoldCapability(t).Seq()
						ctx.NotifyAtPurge(t)
					}
					buf[e] = append(buf[e], rec)
				},
				notify: func(t ts.Timestamp) {
					e := t.Epoch
					// Retire sealed entries whose commit has been
					// acknowledged (their capability is gone).
					for se, sb := range sealed {
						if ctx.HeldCap(sb.seq) == nil {
							delete(sealed, se)
						}
					}
					b := SinkBatch{
						Epoch:    e,
						Frontier: ts.Root(e + 1),
						Data:     canonicalBytes(cod, buf[e]),
					}
					seq := capSeq[e]
					delete(buf, e)
					delete(capSeq, e)
					sealed[e] = sealedBatch{seq: seq, batch: b}
					commit(b, ctx.HeldCap(seq))
				},
			},
			checkpoint: func(enc *codec.Encoder) {
				opens := make([]int64, 0, len(buf))
				for e := range buf {
					opens = append(opens, e)
				}
				sort.Slice(opens, func(i, j int) bool { return opens[i] < opens[j] })
				enc.PutUint32(uint32(len(opens)))
				for _, e := range opens {
					enc.PutInt64(e)
					enc.PutUint64(capSeq[e])
					recs := buf[e]
					enc.PutUint32(uint32(len(recs)))
					boxed := make([]any, len(recs))
					for i, r := range recs {
						boxed[i] = r
					}
					cod.EncodeBatch(enc, boxed)
				}
				seals := make([]int64, 0, len(sealed))
				for e := range sealed {
					seals = append(seals, e)
				}
				sort.Slice(seals, func(i, j int) bool { return seals[i] < seals[j] })
				enc.PutUint32(uint32(len(seals)))
				for _, e := range seals {
					enc.PutInt64(e)
					enc.PutUint64(sealed[e].seq)
					enc.PutBytes(sealed[e].batch.Data)
				}
			},
			restore: func(dec *codec.Decoder) {
				buf = make(map[int64][]T)
				capSeq = make(map[int64]uint64)
				sealed = make(map[int64]sealedBatch)
				for n := int(dec.Uint32()); n > 0; n-- {
					e := dec.Int64()
					seq := dec.Uint64()
					cnt := int(dec.Uint32())
					recs := make([]T, 0, cnt)
					for _, r := range cod.DecodeBatch(dec, cnt) {
						recs = append(recs, r.(T))
					}
					// A selective rollback re-mints the capability before
					// this restore runs, so the token is found by seq and
					// the open epoch resumes where it was. A full restart
					// holds no tokens: the epoch will be re-fed from the
					// input replay, so the stale buffer is discarded and
					// the fresh first record re-holds.
					if ctx.HeldCap(seq) != nil {
						buf[e] = recs
						capSeq[e] = seq
					}
				}
				for n := int(dec.Uint32()); n > 0; n-- {
					e := dec.Int64()
					seq := dec.Uint64()
					data := dec.Bytes()
					b := SinkBatch{Epoch: e, Frontier: ts.Root(e + 1), Data: data}
					sealed[e] = sealedBatch{seq: seq, batch: b}
					// Re-drive the unacknowledged commit. The store's
					// per-epoch idempotence absorbs the case where the
					// pre-crash goroutine's commit did land.
					commit(b, ctx.HeldCap(seq))
				}
			},
		}
	}, runtime.Pinned(0))
	connect(c, s.stage, s.port, st, func(T) uint64 { return 0 }, s.cod)
	return st
}

// sealedBatch is a sealed epoch whose commit has not yet been acknowledged.
type sealedBatch struct {
	seq   uint64
	batch SinkBatch
}

// canonicalBytes builds the canonical byte form of an epoch's records:
// records arrive at the pinned vertex in a nondeterministic interleaving
// across workers, so each record is encoded alone and the encodings are
// sorted before concatenation. Two runs that deliver the same multiset of
// records produce identical bytes.
func canonicalBytes[T any](cod codec.Codec, recs []T) []byte {
	encs := make([][]byte, len(recs))
	var enc codec.Encoder
	for i, r := range recs {
		enc.Reset()
		cod.EncodeBatch(&enc, []any{r})
		encs[i] = append([]byte(nil), enc.Bytes()...)
	}
	sort.Slice(encs, func(i, j int) bool { return bytes.Compare(encs[i], encs[j]) < 0 })
	var out codec.Encoder
	for _, e := range encs {
		out.PutBytes(e)
	}
	return append([]byte(nil), out.Bytes()...)
}

// DecodeSinkBatch decodes a canonical sink batch back into records — the
// read side of the sink's byte format, used by consumers of a SinkStore
// (and the serve layer's frontier-stamped reads).
func DecodeSinkBatch[T any](cod codec.Codec, b SinkBatch) []T {
	var out []T
	dec := codec.NewDecoder(b.Data)
	for dec.Remaining() > 0 {
		rec := dec.Bytes()
		rdec := codec.NewDecoder(rec)
		for _, r := range cod.DecodeBatch(rdec, 1) {
			out = append(out, r.(T))
		}
	}
	return out
}

// MemSink is an in-memory SinkStore for tests and examples. It deduplicates
// commits by epoch and records a conflict if two commits for the same epoch
// disagree on bytes or frontier — the differential signal the exactly-once
// battery uses to catch nondeterministic replay. FailFirst, when positive,
// makes that many leading Commit calls fail, exercising the stalled-frontier
// path.
type MemSink struct {
	mu        sync.Mutex
	batches   map[int64]SinkBatch
	commits   map[int64]int
	conflicts []int64
	failLeft  int
}

// NewMemSink returns an empty MemSink whose first failFirst commits fail.
func NewMemSink(failFirst int) *MemSink {
	return &MemSink{
		batches:  make(map[int64]SinkBatch),
		commits:  make(map[int64]int),
		failLeft: failFirst,
	}
}

// errCommitFail is the injected failure for MemSink's failFirst commits.
type errCommitFail struct{}

func (errCommitFail) Error() string { return "memsink: injected commit failure" }

// Commit implements SinkStore.
func (m *MemSink) Commit(b SinkBatch) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failLeft > 0 {
		m.failLeft--
		return errCommitFail{}
	}
	m.commits[b.Epoch]++
	if old, ok := m.batches[b.Epoch]; ok {
		if !bytes.Equal(old.Data, b.Data) || old.Frontier != b.Frontier {
			m.conflicts = append(m.conflicts, b.Epoch)
		}
		return nil
	}
	m.batches[b.Epoch] = SinkBatch{Epoch: b.Epoch, Frontier: b.Frontier, Data: append([]byte(nil), b.Data...)}
	return nil
}

// Batch returns the committed batch for an epoch.
func (m *MemSink) Batch(e int64) (SinkBatch, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.batches[e]
	return b, ok
}

// Epochs returns the committed epochs, sorted.
func (m *MemSink) Epochs() []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int64, 0, len(m.batches))
	for e := range m.batches {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Commits returns how many acknowledged Commit calls the epoch received —
// ≥ 1 once committed; values > 1 are deduplicated replays.
func (m *MemSink) Commits(e int64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.commits[e]
}

// Conflicts returns the epochs whose recommits disagreed with the first
// committed bytes. Any entry is an exactly-once violation.
func (m *MemSink) Conflicts() []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]int64(nil), m.conflicts...)
}
