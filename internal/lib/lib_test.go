package lib

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"naiad/internal/codec"
	"naiad/internal/runtime"
	ts "naiad/internal/timestamp"
)

func testCfg() runtime.Config {
	return runtime.Config{Processes: 2, WorkersPerProcess: 2, Accumulation: runtime.AccLocalGlobal}
}

func newTestScope(t *testing.T, cfg runtime.Config) *Scope {
	t.Helper()
	s, err := NewScope(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func join(t *testing.T, s *Scope) {
	t.Helper()
	if err := s.C.Join(); err != nil {
		t.Fatal(err)
	}
}

func sortedInts(xs []int64) []int64 {
	out := append([]int64(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestSelectWhereSelectMany(t *testing.T) {
	s := newTestScope(t, testCfg())
	in, src := NewInput[int64](s, "in", codec.Int64())
	doubled := Select(src, func(v int64) int64 { return v * 2 }, codec.Int64())
	evens := Where(doubled, func(v int64) bool { return v%4 == 0 })
	expanded := SelectMany(evens, func(v int64) []int64 { return []int64{v, v + 1} }, codec.Int64())
	col := Collect(expanded)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(1, 2, 3, 4)
	in.Close()
	join(t, s)
	// 1,2,3,4 → 2,4,6,8 → keep 4,8 → expand 4,5,8,9
	if got := sortedInts(col.Epoch(0)); fmt.Sprint(got) != "[4 5 8 9]" {
		t.Fatalf("got %v", got)
	}
}

func TestConcatAndDistinct(t *testing.T) {
	s := newTestScope(t, testCfg())
	inA, a := NewInput[int64](s, "a", codec.Int64())
	inB, b := NewInput[int64](s, "b", codec.Int64())
	both := Concat(a, b)
	uniq := Distinct(both)
	col := Collect(uniq)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	inA.OnNext(1, 2, 2, 3)
	inB.OnNext(2, 3, 4)
	inA.OnNext(1)
	inB.OnNext(1)
	inA.Close()
	inB.Close()
	join(t, s)
	if got := sortedInts(col.Epoch(0)); fmt.Sprint(got) != "[1 2 3 4]" {
		t.Fatalf("epoch 0 = %v", got)
	}
	// Distinct is per-time: epoch 1 re-emits 1.
	if got := sortedInts(col.Epoch(1)); fmt.Sprint(got) != "[1]" {
		t.Fatalf("epoch 1 = %v", got)
	}
}

func TestDistinctCumulative(t *testing.T) {
	s := newTestScope(t, testCfg())
	in, src := NewInput[int64](s, "in", codec.Int64())
	uniq := DistinctCumulative(src)
	col := Collect(uniq)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(1, 2)
	in.OnNext(2, 3, 1)
	in.Close()
	join(t, s)
	// DistinctCumulative is asynchronous (§2.4): which epoch a first
	// occurrence lands in depends on arrival order, but each value is
	// emitted exactly once across the whole stream.
	var all []int64
	for _, e := range col.Epochs() {
		all = append(all, col.Epoch(e)...)
	}
	if got := sortedInts(all); fmt.Sprint(got) != "[1 2 3]" {
		t.Fatalf("all emissions = %v", got)
	}
}

// TestWordCount is the prototypical Naiad program of §4.1: SelectMany then
// GroupBy, fed epoch by epoch.
func TestWordCount(t *testing.T) {
	s := newTestScope(t, testCfg())
	in, src := NewInput[string](s, "docs", codec.String())
	words := SelectMany(src, func(doc string) []string {
		return strings.Fields(doc)
	}, codec.String())
	counts := GroupBy(words, func(w string) string { return w },
		func(w string, ws []string) []Pair[string, int64] {
			return []Pair[string, int64]{KV(w, int64(len(ws)))}
		}, nil)
	col := Collect(counts)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext("the quick fox", "the lazy dog")
	in.OnNext("the end")
	in.Close()
	join(t, s)
	got := map[string]int64{}
	for _, p := range col.Epoch(0) {
		got[p.Key] = p.Val
	}
	if got["the"] != 2 || got["quick"] != 1 || got["dog"] != 1 {
		t.Fatalf("epoch 0 counts = %v", got)
	}
	got1 := map[string]int64{}
	for _, p := range col.Epoch(1) {
		got1[p.Key] = p.Val
	}
	if got1["the"] != 1 || got1["end"] != 1 || len(got1) != 2 {
		t.Fatalf("epoch 1 counts = %v", got1)
	}
}

func TestCountAndFold(t *testing.T) {
	s := newTestScope(t, testCfg())
	in, src := NewInput[int64](s, "in", codec.Int64())
	counts := Count(src, nil)
	col := Collect(counts)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(5, 5, 5, 9)
	in.Close()
	join(t, s)
	got := map[int64]int64{}
	for _, p := range col.Epoch(0) {
		got[p.Key] = p.Val
	}
	if got[5] != 3 || got[9] != 1 {
		t.Fatalf("counts = %v", got)
	}
}

func TestMinMaxByKey(t *testing.T) {
	s := newTestScope(t, testCfg())
	in, src := NewInput[Pair[string, int64]](s, "in", nil)
	mins := MinByKey(src, func(a, b int64) bool { return a < b }, nil)
	maxs := MaxByKey(src, func(a, b int64) bool { return a < b }, nil)
	minCol := Collect(mins)
	maxCol := Collect(maxs)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(KV("x", int64(3)), KV("x", int64(1)), KV("y", int64(7)), KV("x", int64(2)))
	in.Close()
	join(t, s)
	gotMin := map[string]int64{}
	for _, p := range minCol.Epoch(0) {
		gotMin[p.Key] = p.Val
	}
	if gotMin["x"] != 1 || gotMin["y"] != 7 {
		t.Fatalf("min = %v", gotMin)
	}
	gotMax := map[string]int64{}
	for _, p := range maxCol.Epoch(0) {
		gotMax[p.Key] = p.Val
	}
	if gotMax["x"] != 3 || gotMax["y"] != 7 {
		t.Fatalf("max = %v", gotMax)
	}
}

func TestJoinAsync(t *testing.T) {
	s := newTestScope(t, testCfg())
	inA, a := NewInput[Pair[int64, string]](s, "a", nil)
	inB, b := NewInput[Pair[int64, int64]](s, "b", nil)
	joined := Join(a, b, func(k int64, av string, bv int64) string {
		return fmt.Sprintf("%d:%s:%d", k, av, bv)
	}, codec.String())
	col := Collect(joined)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	inA.OnNext(KV(int64(1), "one"), KV(int64(2), "two"))
	inB.OnNext(KV(int64(1), int64(100)), KV(int64(1), int64(101)), KV(int64(3), int64(300)))
	inA.Close()
	inB.Close()
	join(t, s)
	var all []string
	for _, e := range col.Epochs() {
		all = append(all, col.Epoch(e)...)
	}
	sort.Strings(all)
	if fmt.Sprint(all) != "[1:one:100 1:one:101]" {
		t.Fatalf("join = %v", all)
	}
}

func TestJoinByTime(t *testing.T) {
	s := newTestScope(t, testCfg())
	inA, a := NewInput[Pair[int64, string]](s, "a", nil)
	inB, b := NewInput[Pair[int64, int64]](s, "b", nil)
	joined := JoinByTime(a, b, func(k int64, av string, bv int64) string {
		return fmt.Sprintf("%d:%s:%d", k, av, bv)
	}, codec.String())
	col := Collect(joined)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	// Epoch 0: key 1 on both sides. Epoch 1: key 1 only on the right —
	// per-time semantics must NOT join across epochs.
	inA.OnNext(KV(int64(1), "one"))
	inB.OnNext(KV(int64(1), int64(100)))
	inA.OnNext()
	inB.OnNext(KV(int64(1), int64(999)))
	inA.Close()
	inB.Close()
	join(t, s)
	if got := col.Epoch(0); len(got) != 1 || got[0] != "1:one:100" {
		t.Fatalf("epoch 0 = %v", got)
	}
	if got := col.Epoch(1); len(got) != 0 {
		t.Fatalf("epoch 1 = %v (joined across epochs)", got)
	}
}

func TestAggregateMonotonic(t *testing.T) {
	s := newTestScope(t, testCfg())
	in, src := NewInput[Pair[int64, int64]](s, "in", nil)
	best := AggregateMonotonic(src, func(cand, inc int64) bool { return cand < inc })
	col := Collect(best)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(KV(int64(1), int64(5)), KV(int64(1), int64(3)), KV(int64(1), int64(9)))
	in.Close()
	join(t, s)
	// The aggregate is uncoordinated (§2.4): it may emit several interim
	// values depending on arrival order, but the emissions are strictly
	// improving and the last one is the true minimum.
	recs := col.Epoch(0)
	if len(recs) == 0 {
		t.Fatal("no emissions")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Val >= recs[i-1].Val {
			t.Fatalf("emissions not strictly improving: %v", recs)
		}
	}
	if recs[len(recs)-1].Val != 3 {
		t.Fatalf("final value = %v, want 3", recs[len(recs)-1])
	}
}

// TestIterateReachability computes graph reachability with a Datalog-style
// asynchronous loop: Join + DistinctCumulative + feedback, terminating by
// quiescence.
func TestIterateReachability(t *testing.T) {
	s := newTestScope(t, testCfg())
	// Edges of a small DAG: 1→2→3→4, 2→4.
	inEdges, edges := NewInput[Pair[int64, int64]](s, "edges", nil)
	inSeeds, seeds := NewInput[int64](s, "seeds", codec.Int64())

	edgesIn := EnterLoop(edges, 1)
	reached := Iterate(seeds, 100, func(inner *Stream[int64]) *Stream[int64] {
		keyed := Select(inner, func(n int64) Pair[int64, int64] { return KV(n, n) }, nil)
		stepped := Join(keyed, edgesIn, func(_ int64, _ int64, dst int64) int64 { return dst }, codec.Int64())
		return DistinctCumulative(stepped)
	})
	col := Collect(Distinct(reached))
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	inEdges.Send(KV(int64(1), int64(2)), KV(int64(2), int64(3)), KV(int64(3), int64(4)), KV(int64(2), int64(4)))
	inSeeds.Send(1)
	inEdges.Close()
	inSeeds.Close()
	join(t, s)
	if got := sortedInts(col.Epoch(0)); fmt.Sprint(got) != "[2 3 4]" {
		t.Fatalf("reachable = %v", got)
	}
}

func TestIterateRespectsMaxIters(t *testing.T) {
	s := newTestScope(t, testCfg())
	in, src := NewInput[int64](s, "in", codec.Int64())
	// The body always re-emits, so only MaxIterations stops the loop.
	out := Iterate(src, 5, func(inner *Stream[int64]) *Stream[int64] {
		return Select(inner, func(v int64) int64 { return v + 1 }, codec.Int64())
	})
	col := Collect(out)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(0)
	in.Close()
	join(t, s)
	// Iterations 0..4 emit 1..5; the feedback drops the 5th circulation.
	if got := sortedInts(col.Epoch(0)); fmt.Sprint(got) != "[1 2 3 4 5]" {
		t.Fatalf("got %v", got)
	}
}

func TestProbeOnStream(t *testing.T) {
	s := newTestScope(t, testCfg())
	in, src := NewInput[int64](s, "in", codec.Int64())
	sq := Select(src, func(v int64) int64 { return v * v }, codec.Int64())
	col := Collect(sq)
	probe := Probe(sq)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(3)
	probe.WaitFor(0)
	if got := col.Epoch(0); fmt.Sprint(got) != "[9]" {
		t.Fatalf("after WaitFor: %v", got)
	}
	in.Close()
	join(t, s)
}

func TestSubscribeParallel(t *testing.T) {
	s := newTestScope(t, testCfg())
	in, src := NewInput[int64](s, "in", codec.Int64())
	shuffled := Exchange(src, func(v int64) uint64 { return uint64(v) })
	var colMu sortableInts
	SubscribeParallel(shuffled, func(worker int, epoch int64, records []int64) {
		colMu.add(records)
	})
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(1, 2, 3, 4, 5, 6, 7, 8)
	in.Close()
	join(t, s)
	if got := colMu.sorted(); fmt.Sprint(got) != "[1 2 3 4 5 6 7 8]" {
		t.Fatalf("got %v", got)
	}
}

type sortableInts struct {
	mu   sync.Mutex
	vals []int64
}

func (s *sortableInts) add(vs []int64) {
	s.mu.Lock()
	s.vals = append(s.vals, vs...)
	s.mu.Unlock()
}

func (s *sortableInts) sorted() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sortedInts(s.vals)
}

func TestHashFastPathsDiffer(t *testing.T) {
	if Hash(int64(1)) == Hash(int64(2)) {
		t.Fatal("int64 collision")
	}
	if Hash("a") == Hash("b") {
		t.Fatal("string collision")
	}
	if Hash(int32(5)) != Hash(int64(5)) {
		// Not required to be equal, but both must be deterministic.
		_ = 0
	}
	type custom struct{ A, B int64 }
	if Hash(custom{1, 2}) == Hash(custom{2, 1}) {
		t.Fatal("struct fallback collision")
	}
	if Hash(custom{1, 2}) != Hash(custom{1, 2}) {
		t.Fatal("struct fallback nondeterministic")
	}
}

func TestHashPairUsesKeyOnly(t *testing.T) {
	if HashPair(KV(int64(1), "x")) != HashPair(KV(int64(1), "y")) {
		t.Fatal("HashPair must ignore the value")
	}
}

func TestBarrierEmitsOncePerEpoch(t *testing.T) {
	s := newTestScope(t, testCfg())
	in, src := NewInput[int64](s, "in", codec.Int64())
	bar := Barrier(src)
	col := Collect(bar)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(1, 2, 3)
	in.OnNext(4)
	in.Close()
	join(t, s)
	// One zero record per worker-vertex that saw data, per epoch; at least
	// one and at most workers.
	n0 := len(col.Epoch(0))
	if n0 < 1 || n0 > 4 {
		t.Fatalf("epoch 0 barrier count = %d", n0)
	}
}

func TestLoopMisusePanics(t *testing.T) {
	s := newTestScope(t, testCfg())
	_, src := NewInput[int64](s, "in", codec.Int64())
	loop := NewLoop(s, 0, src, 10)
	inner := loop.Enter(src)
	loop.Return(inner)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double Return")
		}
	}()
	loop.Return(inner)
}

func TestTimestampDepthsThroughLoop(t *testing.T) {
	s := newTestScope(t, testCfg())
	in, src := NewInput[int64](s, "in", codec.Int64())
	var depths []uint8
	out := Iterate(src, 3, func(inner *Stream[int64]) *Stream[int64] {
		depths = append(depths, inner.Depth())
		seen := InspectParallel(inner, func(t ts.Timestamp, _ int64) {
			if t.Depth != 1 {
				panic(fmt.Sprintf("inner time %v has depth %d", t, t.Depth))
			}
		})
		return Select(seen, func(v int64) int64 { return v }, codec.Int64())
	})
	if out.Depth() != 0 {
		t.Fatalf("egressed depth = %d", out.Depth())
	}
	if len(depths) != 1 || depths[0] != 1 {
		t.Fatalf("inner depth = %v", depths)
	}
	col := Collect(out)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(7)
	in.Close()
	join(t, s)
	if n := len(col.Epoch(0)); n != 3 {
		t.Fatalf("expected 3 circulations, got %d", n)
	}
}

func TestProbeInsideLoopPanics(t *testing.T) {
	s := newTestScope(t, testCfg())
	_, src := NewInput[int64](s, "in", codec.Int64())
	inner := EnterLoop(src, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Probe(inner)
}

func TestSubscribeInsideLoopPanics(t *testing.T) {
	s := newTestScope(t, testCfg())
	_, src := NewInput[int64](s, "in", codec.Int64())
	inner := EnterLoop(src, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Subscribe(inner, func(int64, []int64) {})
}

func TestConcatDepthMismatchPanics(t *testing.T) {
	s := newTestScope(t, testCfg())
	_, a := NewInput[int64](s, "a", codec.Int64())
	_, b := NewInput[int64](s, "b", codec.Int64())
	inner := EnterLoop(b, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Concat(a, inner)
}

func TestLeaveLoopAtTopPanics(t *testing.T) {
	s := newTestScope(t, testCfg())
	_, src := NewInput[int64](s, "in", codec.Int64())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LeaveLoop(src)
}
