package lib

import (
	"fmt"
	"sync"
	"testing"

	"naiad/internal/codec"
)

func TestTopK(t *testing.T) {
	s := newTestScope(t, testCfg())
	in, src := NewInput[int64](s, "in", codec.Int64())
	spread := Exchange(src, func(v int64) uint64 { return uint64(v) })
	top := TopK(spread, 3, func(a, b int64) bool { return a < b }, codec.Int64())
	col := Collect(top)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(5, 1, 9, 3, 7, 2, 8)
	in.OnNext(4)
	in.Close()
	join(t, s)
	if got := col.Epoch(0); fmt.Sprint(got) != "[9 8 7]" {
		t.Fatalf("epoch 0 top3 = %v", got)
	}
	if got := col.Epoch(1); fmt.Sprint(got) != "[4]" {
		t.Fatalf("epoch 1 top3 = %v", got)
	}
}

func TestTopKFewerThanK(t *testing.T) {
	s := newTestScope(t, testCfg())
	in, src := NewInput[int64](s, "in", codec.Int64())
	top := TopK(src, 10, func(a, b int64) bool { return a < b }, codec.Int64())
	col := Collect(top)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(2, 1)
	in.Close()
	join(t, s)
	if got := col.Epoch(0); fmt.Sprint(got) != "[2 1]" {
		t.Fatalf("got %v", got)
	}
}

func TestTopKPanicsOnBadK(t *testing.T) {
	s := newTestScope(t, testCfg())
	_, src := NewInput[int64](s, "in", codec.Int64())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TopK(src, 0, func(a, b int64) bool { return a < b }, nil)
}

func TestSumByKey(t *testing.T) {
	s := newTestScope(t, testCfg())
	in, src := NewInput[Pair[string, int64]](s, "in", nil)
	sums := SumByKey(src, nil)
	col := Collect(sums)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(KV("a", int64(1)), KV("a", int64(2)), KV("b", int64(5)))
	in.Close()
	join(t, s)
	got := map[string]int64{}
	for _, p := range col.Epoch(0) {
		got[p.Key] = p.Val
	}
	if got["a"] != 3 || got["b"] != 5 {
		t.Fatalf("sums = %v", got)
	}
}

func TestBroadcastReachesAllWorkers(t *testing.T) {
	cfg := testCfg() // 2 procs × 2 workers
	s := newTestScope(t, cfg)
	in, src := NewInput[int64](s, "in", codec.Int64())
	everywhere := Broadcast(src, codec.Int64())
	var mu sync.Mutex
	perWorker := map[int][]int64{}
	SubscribeParallel(everywhere, func(worker int, _ int64, recs []int64) {
		mu.Lock()
		perWorker[worker] = append(perWorker[worker], recs...)
		mu.Unlock()
	})
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(7, 8)
	in.Close()
	join(t, s)
	if len(perWorker) != 4 {
		t.Fatalf("workers reached = %d: %v", len(perWorker), perWorker)
	}
	for w, recs := range perWorker {
		if got := sortedInts(recs); fmt.Sprint(got) != "[7 8]" {
			t.Fatalf("worker %d got %v", w, got)
		}
	}
}
