package lib

import (
	"naiad/internal/graph"
	"naiad/internal/runtime"
	ts "naiad/internal/timestamp"
)

// BoundedStaleness forwards records unchanged while constraining how far
// asynchronous iteration may run ahead (§2.4): when iteration i is first
// observed, the stage requests a notification guaranteed at iteration i
// but holding a capability at iteration i+k. Until iteration i completes,
// that capability blocks every notification at iterations ≥ i+k anywhere
// in the loop, so no coordinated work proceeds more than k iterations
// beyond an incomplete one.
//
// The stream must be inside a loop context. Purely asynchronous vertices
// (which never request notifications) are unaffected — the bound
// constrains exactly the coordinated parts of the computation, which is
// the §2.4 semantics.
func BoundedStaleness[T any](s *Stream[T], k int64) *Stream[T] {
	if s.depth == 0 {
		panic("lib: BoundedStaleness requires a stream inside a loop context")
	}
	if k < 1 {
		panic("lib: BoundedStaleness requires k ≥ 1")
	}
	c := s.scope.C
	st := c.AddStage("BoundedStaleness", graph.RoleNormal, s.depth, func(ctx *runtime.Context) runtime.Vertex {
		seen := make(map[ts.Timestamp]bool)
		return &vertexOf[T]{
			recv: func(_ int, rec T, t ts.Timestamp) {
				if !seen[t] {
					seen[t] = true
					ctx.NotifyAtCap(t, t.WithInner(t.Inner()+k))
				}
				ctx.SendBy(0, rec, t)
			},
			notify: func(t ts.Timestamp) {
				delete(seen, t)
			},
		}
	})
	c.Connect(s.stage, s.port, st, nil, s.cod)
	return &Stream[T]{scope: s.scope, stage: st, port: 0, cod: s.cod, depth: s.depth}
}
