package pregel

import (
	"naiad/internal/lib"
	"naiad/internal/workload"
)

// Small aliases keeping aggregator_test readable.

func lib2NewInput(s *lib.Scope) (*lib.Input[workload.Edge], *lib.Stream[workload.Edge]) {
	return lib.NewInput[workload.Edge](s, "edges", nil)
}

func lib2Drain[T any](s *lib.Stream[lib.Pair[int64, T]]) {
	lib.SubscribeParallel(s, func(int, int64, []lib.Pair[int64, T]) {})
}
