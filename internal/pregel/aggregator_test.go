package pregel

import (
	"math"
	"testing"

	"naiad/internal/workload"
)

// TestAggregatorGlobalMax has every vertex contribute its id at superstep
// 0; at superstep 1 each reads the global maximum from the aggregator and
// adopts it, then halts. All states must equal the maximum id.
func TestAggregatorGlobalMax(t *testing.T) {
	edges := workload.ChainGraph(3, 4) // nodes 0..11, max src id 10, dst 11
	cfg := Config[float64, int64]{
		Init: func(n int64) float64 { return float64(n) },
		Compute: func(ctx *Context[int64], state *float64, _ []int64) {
			switch ctx.Superstep() {
			case 0:
				ctx.Aggregate(float64(ctx.Node()))
				// Mail keeps every vertex active into superstep 1.
				ctx.SendToAll(0)
			case 1:
				*state = ctx.AggValue()
				ctx.VoteToHalt()
			default:
				ctx.VoteToHalt()
			}
		},
		MaxSupersteps: 4,
		Aggregator: &Aggregator{
			Zero:    math.Inf(-1),
			Combine: math.Max,
		},
	}
	got := runPregel(t, edges, cfg)
	// Only source nodes exist at superstep 0 (destinations are created by
	// their first message, a superstep later), so the contributed maximum
	// is the largest src id.
	var wantMax float64 = -1
	for _, e := range edges {
		if float64(e.Src) > wantMax {
			wantMax = float64(e.Src)
		}
	}
	for n, s := range got {
		if s != wantMax {
			t.Fatalf("node %d adopted %v, want global max %v (all: %v)", n, s, wantMax, got)
		}
	}
}

// TestAggregatorSumConvergence uses the aggregator the classic way: the
// global sum of per-vertex deltas decides when to halt.
func TestAggregatorSumConvergence(t *testing.T) {
	// Star graph: node 0 points at 1..5. Each vertex's value moves toward
	// 100 by halving the gap; all halt when the global gap sum < 1.
	var edges []workload.Edge
	for i := int64(1); i <= 5; i++ {
		edges = append(edges, workload.Edge{Src: 0, Dst: i})
		edges = append(edges, workload.Edge{Src: i, Dst: 0})
	}
	type state struct {
		Val  float64
		Done bool
	}
	cfg := Config[state, int64]{
		Init: func(int64) state { return state{} },
		Compute: func(ctx *Context[int64], s *state, _ []int64) {
			if ctx.Superstep() > 0 && ctx.AggValue() < 1 {
				s.Done = true
				ctx.VoteToHalt()
				return
			}
			gap := 100 - s.Val
			s.Val += gap / 2
			ctx.Aggregate(math.Abs(100 - s.Val))
			ctx.SendToAll(0) // stay active
		},
		MaxSupersteps: 64,
		Aggregator:    &Aggregator{Zero: 0, Combine: func(a, b float64) float64 { return a + b }},
	}
	got := runPregel(t, edges, cfg)
	if len(got) != 6 {
		t.Fatalf("nodes = %d", len(got))
	}
	for n, s := range got {
		if !s.Done {
			t.Fatalf("node %d never converged: %+v", n, s)
		}
		if math.Abs(100-s.Val) > 1 {
			t.Fatalf("node %d value %v too far from 100", n, s.Val)
		}
	}
}

func TestAggregateWithoutAggregatorPanics(t *testing.T) {
	edges := []workload.Edge{{Src: 0, Dst: 1}}
	cfg := Config[int64, int64]{
		Init: func(int64) int64 { return 0 },
		Compute: func(ctx *Context[int64], _ *int64, _ []int64) {
			ctx.Aggregate(1)
		},
		MaxSupersteps: 2,
	}
	s := scope(t)
	in, stream := lib2NewInput(s)
	finals := Run(s, stream, cfg)
	lib2Drain(finals)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.Send(edges...)
	in.Close()
	if err := s.C.Join(); err == nil {
		t.Fatal("expected the vertex panic to surface from Join")
	}
}
