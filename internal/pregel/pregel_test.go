package pregel

import (
	"math"
	"testing"

	"naiad/internal/lib"
	"naiad/internal/runtime"
	"naiad/internal/workload"
)

func scope(t *testing.T) *lib.Scope {
	t.Helper()
	s, err := lib.NewScope(runtime.Config{Processes: 2, WorkersPerProcess: 2, Accumulation: runtime.AccLocalGlobal})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func runPregel[S, M any](t *testing.T, edges []workload.Edge, cfg Config[S, M]) map[int64]S {
	t.Helper()
	s := scope(t)
	in, stream := lib.NewInput[workload.Edge](s, "edges", nil)
	finals := Run(s, stream, cfg)
	col := lib.Collect(finals)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	in.Send(edges...)
	in.Close()
	if err := s.C.Join(); err != nil {
		t.Fatal(err)
	}
	out := make(map[int64]S)
	for _, p := range col.All() {
		out[p.Key] = p.Val
	}
	return out
}

// TestPregelPageRank runs the classic Pregel PageRank vertex program and
// compares against the sequential reference.
func TestPregelPageRank(t *testing.T) {
	const nodes = 30
	const iters = 8
	const d = 0.85
	edges := workload.PowerLawGraph(13, nodes, 150, 1.4)
	// Ensure every node has an out-edge home vertex by construction of the
	// program below (nodes appearing only as destinations are created by
	// their incoming messages and hold rank but send nothing).
	cfg := Config[float64, float64]{
		Init: func(int64) float64 { return 1.0 / nodes },
		Compute: func(ctx *Context[float64], rank *float64, msgs []float64) {
			if ctx.Superstep() > 0 {
				sum := 0.0
				for _, m := range msgs {
					sum += m
				}
				*rank = (1-d)/nodes + d*sum
			}
			if deg := len(ctx.OutEdges()); deg > 0 {
				ctx.SendToAll(*rank / float64(deg))
			}
		},
		MaxSupersteps: iters + 1,
	}
	got := runPregel(t, edges, cfg)
	want := workload.ExpectedPageRank(edges, nodes, iters, d)
	for n, r := range got {
		if math.Abs(r-want[n]) > 1e-9 {
			t.Fatalf("node %d: got %.12f want %.12f", n, r, want[n])
		}
	}
}

// TestPregelMinPropagation uses VoteToHalt: vertices propagate the minimum
// id they have seen and halt until new mail arrives — the Pregel WCC.
func TestPregelMinPropagation(t *testing.T) {
	edges := workload.ChainGraph(2, 10) // components {0..9}, {10..19}
	// Undirect the chain so the minimum can propagate both ways.
	var und []workload.Edge
	for _, e := range edges {
		und = append(und, e, workload.Edge{Src: e.Dst, Dst: e.Src})
	}
	cfg := Config[int64, int64]{
		Init: func(n int64) int64 { return n },
		Compute: func(ctx *Context[int64], best *int64, msgs []int64) {
			improved := ctx.Superstep() == 0
			for _, m := range msgs {
				if m < *best {
					*best = m
					improved = true
				}
			}
			if improved {
				ctx.SendToAll(*best)
			}
			ctx.VoteToHalt()
		},
		MaxSupersteps: 100,
	}
	got := runPregel(t, und, cfg)
	for n, c := range got {
		want := (n / 10) * 10
		if c != want {
			t.Fatalf("node %d: component %d, want %d", n, c, want)
		}
	}
}

// TestPregelGraphMutation removes edges during the computation and checks
// the mutation affects message routing in later supersteps.
func TestPregelGraphMutation(t *testing.T) {
	// 0→1, 0→2: at superstep 1, node 0 removes the edge to 2, then sends.
	edges := []workload.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}}
	type state struct{ Got int64 }
	cfg := Config[state, int64]{
		Init: func(int64) state { return state{Got: -1} },
		Compute: func(ctx *Context[int64], s *state, msgs []int64) {
			for _, m := range msgs {
				s.Got = m
			}
			if ctx.Node() == 0 {
				switch ctx.Superstep() {
				case 0:
					// no sends yet; just mutate
					ctx.RemoveEdge(2)
				case 1:
					ctx.SendToAll(7)
				}
			}
			if ctx.Superstep() >= 2 {
				ctx.VoteToHalt()
			}
		},
		MaxSupersteps: 5,
	}
	got := runPregel(t, edges, cfg)
	if got[1].Got != 7 {
		t.Fatalf("node 1 = %+v, want mail 7", got[1])
	}
	// Node 2 never receives mail once the edge is removed, so it is never
	// instantiated at all (Pregel creates vertices on first message).
	if st, ok := got[2]; ok && st.Got != -1 {
		t.Fatalf("node 2 = %+v, want no mail after edge removal", st)
	}
}

// TestPregelAddEdge grows the graph at runtime.
func TestPregelAddEdge(t *testing.T) {
	edges := []workload.Edge{{Src: 0, Dst: 1}}
	type state struct{ Got int64 }
	cfg := Config[state, int64]{
		Init: func(int64) state { return state{Got: -1} },
		Compute: func(ctx *Context[int64], s *state, msgs []int64) {
			for _, m := range msgs {
				s.Got = m
			}
			if ctx.Node() == 0 && ctx.Superstep() == 0 {
				ctx.AddEdge(5) // node 5 does not exist yet
				ctx.SendToAll(9)
			}
			if ctx.Superstep() >= 1 {
				ctx.VoteToHalt()
			}
		},
		MaxSupersteps: 5,
	}
	got := runPregel(t, edges, cfg)
	if got[5].Got != 9 {
		t.Fatalf("node 5 = %+v, want mail 9 (created by message)", got[5])
	}
	if got[1].Got != 9 {
		t.Fatalf("node 1 = %+v", got[1])
	}
}
