// Package pregel ports the Pregel bulk-synchronous vertex-program model
// onto timely dataflow as a library (§4.2): supersteps are loop iterations,
// message exchange rides the feedback edge, barriers come from
// notifications, and graph mutation is supported by mutating the adjacency
// held in vertex state. Halting follows Pregel: a graph vertex is active
// in a superstep only if it received messages (after superstep 0), and the
// computation ends when no messages circulate — which is exactly dataflow
// quiescence.
package pregel

import (
	"sort"

	"naiad/internal/codec"
	"naiad/internal/graph"
	"naiad/internal/lib"
	"naiad/internal/runtime"
	ts "naiad/internal/timestamp"
	"naiad/internal/workload"
)

// Context is handed to a vertex program each superstep.
type Context[M any] struct {
	node      int64
	superstep int64
	adj       *[]int64
	send      func(dst int64, m M)
	emit      func()
	halted    *bool
	aggIn     float64
	aggOut    func(float64)
}

// Node returns the graph vertex id.
func (c *Context[M]) Node() int64 { return c.node }

// Superstep returns the current superstep number, starting at 0.
func (c *Context[M]) Superstep() int64 { return c.superstep }

// OutEdges returns the node's current out-neighbors.
func (c *Context[M]) OutEdges() []int64 { return *c.adj }

// Send delivers m to dst at the next superstep.
func (c *Context[M]) Send(dst int64, m M) { c.send(dst, m) }

// SendToAll sends m along every out-edge.
func (c *Context[M]) SendToAll(m M) {
	for _, dst := range *c.adj {
		c.send(dst, m)
	}
}

// AddEdge adds an out-edge (graph mutation).
func (c *Context[M]) AddEdge(dst int64) { *c.adj = append(*c.adj, dst) }

// RemoveEdge removes all out-edges to dst (graph mutation).
func (c *Context[M]) RemoveEdge(dst int64) {
	kept := (*c.adj)[:0]
	for _, d := range *c.adj {
		if d != dst {
			kept = append(kept, d)
		}
	}
	*c.adj = kept
}

// VoteToHalt marks the vertex inactive; incoming messages reactivate it.
func (c *Context[M]) VoteToHalt() { *c.halted = true }

// AggValue returns the global aggregate computed in the previous superstep
// (the configured Aggregator's Zero before any contribution arrives).
func (c *Context[M]) AggValue() float64 { return c.aggIn }

// Aggregate contributes a value to this superstep's global aggregate,
// visible to every vertex at the next superstep.
func (c *Context[M]) Aggregate(v float64) {
	if c.aggOut == nil {
		panic("pregel: Aggregate called without an Aggregator configured")
	}
	c.aggOut(v)
}

// Aggregator folds per-superstep contributions into one global value
// (Pregel's aggregators): Combine must be commutative and associative,
// Zero its identity.
type Aggregator struct {
	Zero    float64
	Combine func(a, b float64) float64
}

// Program computes one vertex for one superstep: state may be mutated,
// messages from the previous superstep are provided, and messages for the
// next are sent through ctx.
type Program[S, M any] func(ctx *Context[M], state *S, msgs []M)

// Config parameterizes a Pregel run.
type Config[S, M any] struct {
	// Init builds a node's initial state.
	Init func(node int64) S
	// Compute is the vertex program.
	Compute Program[S, M]
	// MaxSupersteps bounds the computation.
	MaxSupersteps int64
	// Aggregator, when non-nil, enables the global aggregate channel: a
	// second feedback loop carrying each superstep's combined value back
	// to every partition (the "aggregated values" input of §4.2's port).
	Aggregator *Aggregator
	// MsgCodec serializes messages crossing processes (nil: gob).
	MsgCodec codec.Codec
	// StateCodec serializes emitted final states (nil: gob).
	StateCodec codec.Codec
}

// pregelVertex is the custom timely vertex hosting a partition of the
// Pregel graph. Input 0: adjacency edges (superstep 0). Input 1: messages
// (Pair[node, M]) from the previous superstep via feedback. Port 0 feeds
// messages back; port 1 emits (node, state, superstep) snapshots.
type pregelVertex[S, M any] struct {
	ctx *runtime.Context
	cfg *Config[S, M]

	adj    map[int64][]int64
	state  map[int64]*S
	halted map[int64]bool
	inbox  map[ts.Timestamp]map[int64][]M
	seen   map[ts.Timestamp]bool
	aggIn  map[ts.Timestamp]float64
}

// snapshot carries a node's state out of the loop, tagged with its
// superstep so the latest wins.
type snapshot[S any] struct {
	Node      int64
	Superstep int64
	State     S
}

func (v *pregelVertex[S, M]) OnRecv(input int, msg runtime.Message, t ts.Timestamp) {
	if !v.seen[t] {
		v.seen[t] = true
		v.ctx.NotifyAt(t)
	}
	switch input {
	case 0:
		e := msg.(workload.Edge)
		v.adj[e.Src] = append(v.adj[e.Src], e.Dst)
		if _, ok := v.state[e.Src]; !ok {
			s := v.cfg.Init(e.Src)
			v.state[e.Src] = &s
		}
	case 1:
		p := msg.(lib.Pair[int64, M])
		if v.inbox[t] == nil {
			v.inbox[t] = make(map[int64][]M)
		}
		v.inbox[t][p.Key] = append(v.inbox[t][p.Key], p.Val)
	case 2:
		// The previous superstep's global aggregate for this partition.
		v.aggIn[t] = msg.(lib.Pair[int64, float64]).Val
	}
}

func (v *pregelVertex[S, M]) OnNotify(t ts.Timestamp) {
	delete(v.seen, t)
	inbox := v.inbox[t]
	delete(v.inbox, t)
	super := t.Inner()

	// Nodes created by messages to previously unknown ids.
	for node := range inbox {
		if _, ok := v.state[node]; !ok {
			s := v.cfg.Init(node)
			v.state[node] = &s
		}
	}
	// Active set: every node at superstep 0; afterwards, nodes with mail
	// or not halted.
	var active []int64
	for node := range v.state {
		if super == 0 || len(inbox[node]) > 0 || !v.halted[node] {
			active = append(active, node)
		}
	}
	sort.Slice(active, func(i, j int) bool { return active[i] < active[j] })

	aggInVal := 0.0
	if v.cfg.Aggregator != nil {
		aggInVal = v.cfg.Aggregator.Zero
		if got, ok := v.aggIn[t]; ok {
			aggInVal = got
		}
		delete(v.aggIn, t)
	}
	localAgg := 0.0
	hasLocalAgg := false
	aggOut := func(x float64) {
		if !hasLocalAgg {
			localAgg = x
			hasLocalAgg = true
			return
		}
		localAgg = v.cfg.Aggregator.Combine(localAgg, x)
	}

	for _, node := range active {
		halted := false
		adj := v.adj[node]
		c := &Context[M]{
			node: node, superstep: super, adj: &adj, halted: &halted,
			aggIn: aggInVal,
			send: func(dst int64, m M) {
				v.ctx.SendBy(0, lib.KV(dst, m), t)
			},
		}
		if v.cfg.Aggregator != nil {
			c.aggOut = aggOut
		}
		v.cfg.Compute(c, v.state[node], inbox[node])
		v.adj[node] = adj
		v.halted[node] = halted
		v.ctx.SendBy(1, snapshot[S]{Node: node, Superstep: super, State: *v.state[node]}, t)
	}

	// Ship this partition's combined aggregate contribution (port 2).
	if hasLocalAgg {
		v.ctx.SendBy(2, localAgg, t)
	}

	// Pregel runs non-halted vertices every superstep even without mail,
	// so the partition self-schedules the next superstep while any of its
	// nodes remains active (bounded by MaxSupersteps).
	if super+1 < v.cfg.MaxSupersteps {
		for node := range v.state {
			if !v.halted[node] {
				next := t.Tick()
				if !v.seen[next] {
					v.seen[next] = true
					v.ctx.NotifyAt(next)
				}
				break
			}
		}
	}
}

// Run wires a Pregel computation over an edge stream and returns the
// stream of per-superstep state snapshots leaving the loop. Latest(r) of
// the snapshots gives each node's final state.
func Run[S, M any](s *lib.Scope, edges *lib.Stream[workload.Edge], cfg Config[S, M]) *lib.Stream[lib.Pair[int64, S]] {
	c := s.C
	edgesIn := lib.EnterLoop(edges, 1)
	st := c.AddStage("pregel", graph.RoleNormal, 1, func(ctx *runtime.Context) runtime.Vertex {
		return &pregelVertex[S, M]{
			ctx: ctx, cfg: &cfg,
			adj:    make(map[int64][]int64),
			state:  make(map[int64]*S),
			halted: make(map[int64]bool),
			inbox:  make(map[ts.Timestamp]map[int64][]M),
			seen:   make(map[ts.Timestamp]bool),
			aggIn:  make(map[ts.Timestamp]float64),
		}
	}, runtime.Ports(3))
	fb := c.AddStage("pregel-feedback", graph.RoleFeedback, 1, nil, runtime.MaxIterations(cfg.MaxSupersteps))
	c.Connect(edgesIn.Stage(), 0, st, func(m runtime.Message) uint64 {
		return lib.Hash(m.(workload.Edge).Src)
	}, codec.Gob[workload.Edge]())
	// Messages loop: stage port 0 → feedback → exchanged by destination.
	c.Connect(st, 0, fb, nil, orGobMsg[M](cfg.MsgCodec))
	c.Connect(fb, 0, st, func(m runtime.Message) uint64 {
		return lib.Hash(m.(lib.Pair[int64, M]).Key)
	}, orGobMsg[M](cfg.MsgCodec))
	if cfg.Aggregator != nil {
		wireAggregator(s, st, cfg.Aggregator, cfg.MaxSupersteps)
	}

	snaps := lib.StreamOf[snapshot[S]](s, st, 1, codec.Gob[snapshot[S]](), 1)
	out := lib.LeaveLoop(snaps)
	// Keep each node's latest snapshot per epoch.
	latest := lib.FoldByKey(
		lib.Select(out, func(sn snapshot[S]) lib.Pair[int64, snapshot[S]] {
			return lib.KV(sn.Node, sn)
		}, nil),
		func(int64) snapshot[S] { return snapshot[S]{Superstep: -1} },
		func(acc snapshot[S], sn snapshot[S]) snapshot[S] {
			if sn.Superstep >= acc.Superstep {
				return sn
			}
			return acc
		}, nil)
	return lib.Select(latest, func(p lib.Pair[int64, snapshot[S]]) lib.Pair[int64, S] {
		return lib.KV(p.Key, p.Val.State)
	}, cfg.StateCodec)
}

func orGobMsg[M any](c codec.Codec) codec.Codec {
	if c != nil {
		return c
	}
	return codec.Gob[lib.Pair[int64, M]]()
}

// wireAggregator builds the second feedback loop of §4.2's Pregel port:
// per-partition contributions (pregel port 2) flow to one combining
// vertex, whose global value is fed back and exchanged to every partition
// for the next superstep.
func wireAggregator(s *lib.Scope, pregelStage runtime.StageID, agg *Aggregator, maxSupersteps int64) {
	c := s.C
	workers := c.Config().Workers()
	floatCodec := codec.New(
		func(e *codec.Encoder, v float64) { e.PutFloat64(v) },
		func(d *codec.Decoder) float64 { return d.Float64() },
	)
	pairCodec := codec.New(
		func(e *codec.Encoder, v lib.Pair[int64, float64]) { e.PutInt64(v.Key); e.PutFloat64(v.Val) },
		func(d *codec.Decoder) lib.Pair[int64, float64] {
			return lib.Pair[int64, float64]{Key: d.Int64(), Val: d.Float64()}
		},
	)
	combiner := c.AddStage("pregel-agg", graph.RoleNormal, 1, func(ctx *runtime.Context) runtime.Vertex {
		buf := make(map[ts.Timestamp][]float64)
		return &aggVertex{
			recv: func(val float64, t ts.Timestamp) {
				if _, ok := buf[t]; !ok {
					ctx.NotifyAt(t)
				}
				buf[t] = append(buf[t], val)
			},
			notify: func(t ts.Timestamp) {
				vals := buf[t]
				delete(buf, t)
				combined := agg.Zero
				for _, v := range vals {
					combined = agg.Combine(combined, v)
				}
				for w := 0; w < workers; w++ {
					ctx.SendBy(0, lib.Pair[int64, float64]{Key: int64(w), Val: combined}, t)
				}
			},
		}
	}, runtime.Pinned(0))
	fb2 := c.AddStage("pregel-agg-feedback", graph.RoleFeedback, 1, nil, runtime.MaxIterations(maxSupersteps))
	c.Connect(pregelStage, 2, combiner, func(runtime.Message) uint64 { return 0 }, floatCodec)
	c.Connect(combiner, 0, fb2, nil, pairCodec)
	c.Connect(fb2, 0, pregelStage, func(m runtime.Message) uint64 {
		return uint64(m.(lib.Pair[int64, float64]).Key)
	}, pairCodec)
}

// aggVertex adapts the combiner closures to the Vertex interface.
type aggVertex struct {
	recv   func(float64, ts.Timestamp)
	notify func(ts.Timestamp)
}

func (v *aggVertex) OnRecv(_ int, msg runtime.Message, t ts.Timestamp) {
	v.recv(msg.(float64), t)
}

func (v *aggVertex) OnNotify(t ts.Timestamp) { v.notify(t) }
