package timestamp

import (
	"fmt"
	"strings"
)

// Summary is the canonical form of a path summary (§2.3): the effect on a
// timestamp of traversing some path through ingress, egress, and feedback
// vertices. Every such composite reduces to
//
//	keep the first Truncate loop counters of the input,
//	add Delta to the surviving innermost counter (counter Truncate-1),
//	append ConstLen constant counters Consts[0..ConstLen).
//
// Egress pops discard any increments accumulated on the popped counter,
// which is why a single Delta on the surviving boundary suffices.
type Summary struct {
	Truncate uint8
	Delta    int64
	ConstLen uint8
	Consts   [MaxLoopDepth]int64
}

// Identity returns the summary of the empty path at a location with the
// given loop depth.
func Identity(depth uint8) Summary {
	return Summary{Truncate: depth}
}

// InputDepth reports the loop depth of timestamps the summary applies to.
// The canonical form does not retain it beyond Truncate, so summaries built
// by composition track it implicitly; structural constructors know it.
func (s Summary) OutputDepth() uint8 { return s.Truncate + s.ConstLen }

// ThenIngress extends the path with an ingress vertex (push a 0 counter).
func (s Summary) ThenIngress() Summary {
	if s.OutputDepth() >= MaxLoopDepth {
		panic("timestamp: summary nesting exceeds MaxLoopDepth")
	}
	s.Consts[s.ConstLen] = 0
	s.ConstLen++
	return s
}

// ThenEgress extends the path with an egress vertex (pop a counter).
// Popping the boundary counter discards its accumulated Delta.
func (s Summary) ThenEgress() Summary {
	if s.ConstLen > 0 {
		s.ConstLen--
		s.Consts[s.ConstLen] = 0
		return s
	}
	if s.Truncate == 0 {
		panic("timestamp: summary egress below depth 0")
	}
	s.Truncate--
	s.Delta = 0
	return s
}

// ThenFeedback extends the path with a feedback vertex (increment the
// innermost counter).
func (s Summary) ThenFeedback() Summary {
	if s.ConstLen > 0 {
		s.Consts[s.ConstLen-1]++
		return s
	}
	if s.Truncate == 0 {
		panic("timestamp: summary feedback at depth 0")
	}
	s.Delta++
	return s
}

// Then composes path summaries: (s.Then(u))(t) == u(s(t)). u's input depth
// must equal s's output depth.
func (s Summary) Then(u Summary) Summary {
	if u.Truncate <= s.Truncate {
		out := Summary{Truncate: u.Truncate, Delta: u.Delta, ConstLen: u.ConstLen, Consts: u.Consts}
		if u.Truncate == s.Truncate {
			out.Delta += s.Delta
		}
		return out
	}
	// u keeps all of s's surviving counters plus some of s's constants.
	keep := u.Truncate - s.Truncate // constants of s that survive
	if keep > s.ConstLen {
		panic(fmt.Sprintf("timestamp: composing summaries with mismatched depths (%d > %d)", u.Truncate, s.OutputDepth()))
	}
	out := Summary{Truncate: s.Truncate, Delta: s.Delta}
	for i := uint8(0); i < keep; i++ {
		out.Consts[i] = s.Consts[i]
	}
	out.Consts[keep-1] += u.Delta
	for i := uint8(0); i < u.ConstLen; i++ {
		out.Consts[keep+i] = u.Consts[i]
	}
	out.ConstLen = keep + u.ConstLen
	return out
}

// Apply transforms a timestamp along the summarized path. The timestamp's
// depth must be at least Truncate; the result has depth OutputDepth().
func (s Summary) Apply(t Timestamp) Timestamp {
	if t.Depth < s.Truncate {
		panic(fmt.Sprintf("timestamp: applying summary (truncate %d) to %v", s.Truncate, t))
	}
	out := Timestamp{Epoch: t.Epoch, Depth: s.Truncate}
	copy(out.Counters[:s.Truncate], t.Counters[:s.Truncate])
	if s.Truncate > 0 {
		out.Counters[s.Truncate-1] += s.Delta
	}
	for i := uint8(0); i < s.ConstLen; i++ {
		out.Counters[out.Depth] = s.Consts[i]
		out.Depth++
	}
	return out
}

// AppliedLessEq reports s.Apply(t) ≤ u without materializing the applied
// timestamp, returning false (instead of panicking) when the summary does
// not apply to t's depth — the exact skip rule SummarySet.CouldResultIn
// uses. This is the progress tracker's innermost comparison; for
// timestamps of one depth and one epoch it is monotone in the
// lexicographic counter order, which the tracker's indexed buckets rely on
// to binary-search precursor cuts.
func (s Summary) AppliedLessEq(t, u Timestamp) bool {
	if s.Truncate > t.Depth || s.OutputDepth() != u.Depth || t.Epoch > u.Epoch {
		return false
	}
	k := s.Truncate
	for i := uint8(0); i < k; i++ {
		c := t.Counters[i]
		if i == k-1 {
			c += s.Delta
		}
		switch {
		case c < u.Counters[i]:
			return true
		case c > u.Counters[i]:
			return false
		}
	}
	for i := uint8(0); i < s.ConstLen; i++ {
		switch {
		case s.Consts[i] < u.Counters[k+i]:
			return true
		case s.Consts[i] > u.Counters[k+i]:
			return false
		}
	}
	return true
}

// LessEq reports whether s(t) ≤ u(t) for every timestamp t, for summaries
// with equal Truncate (summaries between the same pair of locations that
// truncate to different depths are treated as incomparable, a conservative
// choice that only affects antichain compactness, never correctness).
func (s Summary) LessEq(u Summary) bool {
	if s.Truncate != u.Truncate || s.ConstLen != u.ConstLen {
		return false
	}
	if s.Delta != u.Delta {
		return s.Delta < u.Delta
	}
	return lexLessEq(s.Consts[:s.ConstLen], u.Consts[:u.ConstLen])
}

// String renders the summary, e.g. "keep 2 +1 ++<0>".
func (s Summary) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "keep %d", s.Truncate)
	if s.Delta != 0 {
		fmt.Fprintf(&sb, " +%d", s.Delta)
	}
	if s.ConstLen > 0 {
		sb.WriteString(" ++<")
		for i := uint8(0); i < s.ConstLen; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", s.Consts[i])
		}
		sb.WriteString(">")
	}
	return sb.String()
}

// SummarySet is an antichain of path summaries: the minimal summaries over
// all paths between a pair of locations. could-result-in holds if any
// member maps the source time at or below the target time.
type SummarySet struct {
	mins []Summary
}

// Insert adds s, dropping it if dominated and evicting members it
// dominates. It reports whether the set changed.
func (ss *SummarySet) Insert(s Summary) bool {
	for _, m := range ss.mins {
		if m.LessEq(s) {
			return false
		}
	}
	kept := ss.mins[:0]
	for _, m := range ss.mins {
		if !s.LessEq(m) {
			kept = append(kept, m)
		}
	}
	ss.mins = append(kept, s)
	return true
}

// Elements returns the minimal summaries. The slice is owned by the set.
func (ss *SummarySet) Elements() []Summary { return ss.mins }

// Empty reports whether no path exists (the set has no summaries).
func (ss *SummarySet) Empty() bool { return len(ss.mins) == 0 }

// CouldResultIn reports whether a pointstamp at time t at the set's source
// location could lead to one at or before time u at its target location:
// ∃ s ∈ set, s(t) ≤ u.
func (ss *SummarySet) CouldResultIn(t, u Timestamp) bool {
	for _, s := range ss.mins {
		if s.Truncate > t.Depth {
			continue
		}
		if s.Apply(t).LessEq(u) {
			return true
		}
	}
	return false
}
