package timestamp

import "sort"

// Antichain is a set of mutually incomparable timestamps, maintained as the
// minimal elements of everything inserted. It represents a frontier: times
// at or beyond which messages may still appear.
type Antichain struct {
	mins []Timestamp
}

// NewAntichain returns an antichain holding the minimal elements of ts.
func NewAntichain(ts ...Timestamp) *Antichain {
	a := &Antichain{}
	for _, t := range ts {
		a.Insert(t)
	}
	return a
}

// Insert adds t unless it is dominated; it evicts elements t dominates.
// It reports whether the antichain changed.
func (a *Antichain) Insert(t Timestamp) bool {
	for _, m := range a.mins {
		if m.LessEq(t) {
			return false
		}
	}
	kept := a.mins[:0]
	for _, m := range a.mins {
		if !t.LessEq(m) {
			kept = append(kept, m)
		}
	}
	a.mins = append(kept, t)
	return true
}

// LessEqAny reports whether some element of the antichain is ≤ t, i.e.
// whether t is at or beyond the frontier.
func (a *Antichain) LessEqAny(t Timestamp) bool {
	for _, m := range a.mins {
		if m.LessEq(t) {
			return true
		}
	}
	return false
}

// LessAny reports whether some element of the antichain is strictly < t.
func (a *Antichain) LessAny(t Timestamp) bool {
	for _, m := range a.mins {
		if m.Less(t) {
			return true
		}
	}
	return false
}

// Contains reports whether t is an element of the antichain.
func (a *Antichain) Contains(t Timestamp) bool {
	for _, m := range a.mins {
		if m == t {
			return true
		}
	}
	return false
}

// Elements returns the antichain's elements sorted by Compare. The returned
// slice is freshly allocated.
func (a *Antichain) Elements() []Timestamp {
	out := append([]Timestamp(nil), a.mins...)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Len returns the number of elements.
func (a *Antichain) Len() int { return len(a.mins) }

// Empty reports whether the antichain has no elements (a closed frontier:
// no further times can appear).
func (a *Antichain) Empty() bool { return len(a.mins) == 0 }

// Clear removes all elements.
func (a *Antichain) Clear() { a.mins = a.mins[:0] }

// Equal reports whether two antichains hold the same elements.
func (a *Antichain) Equal(b *Antichain) bool {
	if len(a.mins) != len(b.mins) {
		return false
	}
	for _, m := range a.mins {
		if !b.Contains(m) {
			return false
		}
	}
	return true
}

// MutableAntichain tracks a multiset of timestamps under ±count updates and
// maintains the antichain of minimal elements with non-zero net count. This
// is the bookkeeping a vertex needs to observe an input frontier that the
// progress tracker reports incrementally.
type MutableAntichain struct {
	counts   map[Timestamp]int64
	frontier Antichain
	dirty    bool
}

// NewMutableAntichain returns an empty multiset with an empty frontier.
func NewMutableAntichain() *MutableAntichain {
	return &MutableAntichain{counts: make(map[Timestamp]int64)}
}

// Update adjusts the multiplicity of t by delta and reports whether the
// frontier may have changed (precisely: whether it changed).
func (m *MutableAntichain) Update(t Timestamp, delta int64) bool {
	if delta == 0 {
		return false
	}
	prev := m.counts[t]
	next := prev + delta
	if next < 0 {
		panic("timestamp: MutableAntichain count went negative")
	}
	if next == 0 {
		delete(m.counts, t)
	} else {
		m.counts[t] = next
	}
	appeared := prev == 0 && next > 0
	vanished := prev > 0 && next == 0
	if !appeared && !vanished {
		return false
	}
	if appeared && !vanished {
		// A new time can only change the frontier if not already covered.
		if m.frontier.LessEqAny(t) && !m.frontier.Contains(t) {
			return false
		}
	}
	old := append([]Timestamp(nil), m.frontier.mins...)
	m.rebuild()
	if len(old) != len(m.frontier.mins) {
		return true
	}
	for _, t := range old {
		if !m.frontier.Contains(t) {
			return true
		}
	}
	return false
}

func (m *MutableAntichain) rebuild() {
	m.frontier.Clear()
	for t := range m.counts {
		m.frontier.Insert(t)
	}
}

// Frontier returns the current antichain of minimal live timestamps. The
// returned value is owned by the MutableAntichain and must not be retained
// across updates.
func (m *MutableAntichain) Frontier() *Antichain { return &m.frontier }

// LessEqAny reports whether some live timestamp is ≤ t, i.e. whether work
// at time t must still be expected.
func (m *MutableAntichain) LessEqAny(t Timestamp) bool { return m.frontier.LessEqAny(t) }

// Empty reports whether no timestamps are live.
func (m *MutableAntichain) Empty() bool { return m.frontier.Empty() }

// Count returns the net multiplicity of t.
func (m *MutableAntichain) Count(t Timestamp) int64 { return m.counts[t] }
