package timestamp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"naiad/internal/testutil"
)

func TestRootAndMake(t *testing.T) {
	r := Root(7)
	if r.Epoch != 7 || r.Depth != 0 {
		t.Fatalf("Root(7) = %v", r)
	}
	m := Make(3, 1, 2)
	if m.Epoch != 3 || m.Depth != 2 || m.Counters[0] != 1 || m.Counters[1] != 2 {
		t.Fatalf("Make(3,1,2) = %v", m)
	}
	if got := m.String(); got != "(3, <1,2>)" {
		t.Fatalf("String = %q", got)
	}
	if got := r.String(); got != "(7)" {
		t.Fatalf("String = %q", got)
	}
}

func TestMakePanicsBeyondMaxDepth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Make(0, 1, 2, 3, 4, 5)
}

func TestPushPopTick(t *testing.T) {
	t0 := Root(1)
	t1 := t0.PushLoop()
	if t1 != Make(1, 0) {
		t.Fatalf("PushLoop = %v", t1)
	}
	t2 := t1.Tick().Tick()
	if t2 != Make(1, 2) {
		t.Fatalf("Tick^2 = %v", t2)
	}
	if t2.Inner() != 2 {
		t.Fatalf("Inner = %d", t2.Inner())
	}
	if got := t2.WithInner(9); got != Make(1, 9) {
		t.Fatalf("WithInner = %v", got)
	}
	t3 := t2.PopLoop()
	if t3 != t0 {
		t.Fatalf("PopLoop = %v, want %v", t3, t0)
	}
	// Popped counters must be zeroed so == equality holds.
	if t3 != Root(1) {
		t.Fatalf("PopLoop left residue: %v", t3)
	}
}

func TestStructuralPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"pop at 0":       func() { Root(0).PopLoop() },
		"tick at 0":      func() { Root(0).Tick() },
		"inner at 0":     func() { _ = Root(0).Inner() },
		"withinner at 0": func() { _ = Root(0).WithInner(1) },
		"push beyond":    func() { Make(0, 1, 1, 1, 1).PushLoop() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestLessEqPartialOrder(t *testing.T) {
	cases := []struct {
		a, b Timestamp
		le   bool
	}{
		{Root(0), Root(0), true},
		{Root(0), Root(1), true},
		{Root(1), Root(0), false},
		{Make(0, 1), Make(0, 2), true},
		{Make(0, 2), Make(0, 1), false},
		{Make(0, 1, 5), Make(0, 2, 0), true}, // lexicographic
		{Make(1, 0), Make(0, 5), false},      // epoch dominates: incomparable
		{Make(0, 5), Make(1, 0), false},      // counters dominate: incomparable
		{Make(0, 1), Make(0, 1, 0), false},   // different depth: unordered
		{Make(2, 3, 4), Make(2, 3, 4), true}, // reflexive
		{Make(1, 1, 1), Make(2, 1, 2), true}, // both components ≤
	}
	for _, c := range cases {
		if got := c.a.LessEq(c.b); got != c.le {
			t.Errorf("%v ≤ %v = %v, want %v", c.a, c.b, got, c.le)
		}
	}
	if !Make(0, 1).Less(Make(0, 2)) || Make(0, 1).Less(Make(0, 1)) {
		t.Error("Less is not strict")
	}
}

func randTimestamp(r *rand.Rand, depth uint8) Timestamp {
	t := Timestamp{Epoch: int64(r.Intn(4)), Depth: depth}
	for i := uint8(0); i < depth; i++ {
		t.Counters[i] = int64(r.Intn(4))
	}
	return t
}

// Property: LessEq is a partial order (reflexive, antisymmetric,
// transitive) on same-depth timestamps.
func TestLessEqIsPartialOrder(t *testing.T) {
	r := rand.New(rand.NewSource(testutil.Seed(t)))
	for i := 0; i < 5000; i++ {
		d := uint8(r.Intn(MaxLoopDepth + 1))
		a, b, c := randTimestamp(r, d), randTimestamp(r, d), randTimestamp(r, d)
		if !a.LessEq(a) {
			t.Fatalf("not reflexive: %v", a)
		}
		if a.LessEq(b) && b.LessEq(a) && a != b {
			t.Fatalf("not antisymmetric: %v %v", a, b)
		}
		if a.LessEq(b) && b.LessEq(c) && !a.LessEq(c) {
			t.Fatalf("not transitive: %v %v %v", a, b, c)
		}
	}
}

// Property: Compare is a total order consistent with LessEq.
func TestCompareConsistentWithLessEq(t *testing.T) {
	r := rand.New(rand.NewSource(testutil.Seed(t)))
	for i := 0; i < 5000; i++ {
		d := uint8(r.Intn(MaxLoopDepth + 1))
		a, b := randTimestamp(r, d), randTimestamp(r, d)
		ca, cb := a.Compare(b), b.Compare(a)
		if ca != -cb {
			t.Fatalf("Compare not antisymmetric: %v %v -> %d %d", a, b, ca, cb)
		}
		if (ca == 0) != (a == b) {
			t.Fatalf("Compare zero iff equal failed: %v %v", a, b)
		}
		if a.LessEq(b) && ca > 0 {
			t.Fatalf("Compare contradicts LessEq: %v %v", a, b)
		}
	}
}

func TestCompareAcrossDepths(t *testing.T) {
	if Make(0, 1).Compare(Make(0, 1, 0)) >= 0 {
		t.Error("shallower should compare first on shared prefix ties")
	}
	if Root(1).Compare(Root(0)) <= 0 {
		t.Error("epoch should dominate Compare")
	}
}

func TestQuickTickMonotone(t *testing.T) {
	f := func(epoch int64, c0, c1 int64) bool {
		if c0 < 0 {
			c0 = -c0
		}
		if c1 < 0 {
			c1 = -c1
		}
		ts := Make(epoch, c0, c1)
		return ts.Less(ts.Tick()) && ts.Tick().Inner() == c1+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
