// Package timestamp implements the logical timestamps of timely dataflow
// (Naiad, SOSP 2013, §2.1): an input epoch paired with one loop counter per
// enclosing loop context, together with the partial order the paper defines
// over them, canonical path summaries (§2.3), and antichains of both.
//
// Timestamps are fixed-capacity value types so they are comparable with ==
// and can key Go maps without allocation.
package timestamp

import (
	"fmt"
	"strings"
)

// MaxLoopDepth is the maximum loop-context nesting the runtime supports.
// Four levels is far deeper than any workload in the paper requires (the
// deepest published example nests two loops).
const MaxLoopDepth = 4

// Timestamp is a logical time (e, ⟨c1, …, ck⟩): the input epoch e plus one
// counter per loop context enclosing the location the time is observed at.
// Depth records k. Counters beyond Depth must be zero, which == equality
// relies on.
type Timestamp struct {
	Epoch    int64
	Depth    uint8
	Counters [MaxLoopDepth]int64
}

// Root returns the timestamp (epoch, ⟨⟩) at the outermost streaming context.
func Root(epoch int64) Timestamp {
	return Timestamp{Epoch: epoch}
}

// Make builds a timestamp from an epoch and explicit loop counters.
// It panics if more than MaxLoopDepth counters are supplied.
func Make(epoch int64, counters ...int64) Timestamp {
	if len(counters) > MaxLoopDepth {
		panic(fmt.Sprintf("timestamp: %d loop counters exceeds MaxLoopDepth %d", len(counters), MaxLoopDepth))
	}
	t := Timestamp{Epoch: epoch, Depth: uint8(len(counters))}
	copy(t.Counters[:], counters)
	return t
}

// PushLoop enters a loop context: (e, ⟨c1..ck⟩) → (e, ⟨c1..ck, 0⟩).
// This is the timestamp action of an ingress vertex.
func (t Timestamp) PushLoop() Timestamp {
	if t.Depth >= MaxLoopDepth {
		panic("timestamp: loop nesting exceeds MaxLoopDepth")
	}
	t.Counters[t.Depth] = 0
	t.Depth++
	return t
}

// PopLoop leaves a loop context: (e, ⟨c1..ck+1⟩) → (e, ⟨c1..ck⟩).
// This is the timestamp action of an egress vertex.
func (t Timestamp) PopLoop() Timestamp {
	if t.Depth == 0 {
		panic("timestamp: PopLoop at depth 0")
	}
	t.Depth--
	t.Counters[t.Depth] = 0
	return t
}

// Tick increments the innermost loop counter:
// (e, ⟨c1..ck⟩) → (e, ⟨c1..ck+1⟩). This is the action of a feedback vertex.
func (t Timestamp) Tick() Timestamp {
	if t.Depth == 0 {
		panic("timestamp: Tick at depth 0")
	}
	t.Counters[t.Depth-1]++
	return t
}

// Inner returns the innermost loop counter. It panics at depth 0.
func (t Timestamp) Inner() int64 {
	if t.Depth == 0 {
		panic("timestamp: Inner at depth 0")
	}
	return t.Counters[t.Depth-1]
}

// WithInner returns t with the innermost loop counter set to c.
func (t Timestamp) WithInner(c int64) Timestamp {
	if t.Depth == 0 {
		panic("timestamp: WithInner at depth 0")
	}
	t.Counters[t.Depth-1] = c
	return t
}

// LessEq reports whether t ≤ u in the timely dataflow partial order for two
// timestamps in the same context: epochs ordered by ≤ and loop counters by
// the lexicographic order on integer sequences (§2.1). Timestamps of
// different depth are never ordered; callers compare times at a common
// graph location, where depth always agrees.
func (t Timestamp) LessEq(u Timestamp) bool {
	if t.Depth != u.Depth {
		return false
	}
	if t.Epoch > u.Epoch {
		return false
	}
	return lexLessEq(t.Counters[:t.Depth], u.Counters[:u.Depth])
}

// Less reports t ≤ u and t ≠ u.
func (t Timestamp) Less(u Timestamp) bool {
	return t != u && t.LessEq(u)
}

// lexLessEq reports a ≤ b in the lexicographic order on equal-length
// integer sequences.
func lexLessEq(a, b []int64) bool {
	for i := range a {
		if a[i] < b[i] {
			return true
		}
		if a[i] > b[i] {
			return false
		}
	}
	return true
}

// Compare totally orders timestamps for scheduling and deterministic
// iteration: epoch first, then counters lexicographically, then depth.
// This total order extends the partial order: t.LessEq(u) implies
// Compare(t, u) <= 0 for equal depths.
func (t Timestamp) Compare(u Timestamp) int {
	switch {
	case t.Epoch < u.Epoch:
		return -1
	case t.Epoch > u.Epoch:
		return 1
	}
	d := min(t.Depth, u.Depth)
	for i := uint8(0); i < d; i++ {
		switch {
		case t.Counters[i] < u.Counters[i]:
			return -1
		case t.Counters[i] > u.Counters[i]:
			return 1
		}
	}
	switch {
	case t.Depth < u.Depth:
		return -1
	case t.Depth > u.Depth:
		return 1
	}
	return 0
}

// String renders the timestamp as (e, ⟨c1,…,ck⟩).
func (t Timestamp) String() string {
	if t.Depth == 0 {
		return fmt.Sprintf("(%d)", t.Epoch)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "(%d, <", t.Epoch)
	for i := uint8(0); i < t.Depth; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", t.Counters[i])
	}
	sb.WriteString(">)")
	return sb.String()
}
