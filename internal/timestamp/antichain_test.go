package timestamp

import (
	"math/rand"
	"testing"

	"naiad/internal/testutil"
)

func TestAntichainInsert(t *testing.T) {
	a := NewAntichain()
	if !a.Insert(Make(0, 2)) {
		t.Fatal("insert into empty should change")
	}
	if a.Insert(Make(0, 3)) {
		t.Fatal("dominated insert should not change")
	}
	if !a.Insert(Make(0, 1)) {
		t.Fatal("dominating insert should change")
	}
	if a.Len() != 1 || !a.Contains(Make(0, 1)) {
		t.Fatalf("antichain = %v", a.Elements())
	}
	// Incomparable element (later epoch, smaller counter).
	if !a.Insert(Make(1, 0)) {
		t.Fatal("incomparable insert should change")
	}
	if a.Len() != 2 {
		t.Fatalf("len = %d", a.Len())
	}
}

func TestAntichainQueries(t *testing.T) {
	a := NewAntichain(Make(0, 2), Make(1, 0))
	if !a.LessEqAny(Make(0, 2)) || !a.LessEqAny(Make(1, 7)) {
		t.Error("LessEqAny false negatives")
	}
	if a.LessEqAny(Make(0, 1)) {
		t.Error("LessEqAny false positive")
	}
	if a.LessAny(Make(0, 2)) {
		t.Error("LessAny should be strict")
	}
	if !a.LessAny(Make(0, 3)) {
		t.Error("LessAny false negative")
	}
	b := NewAntichain(Make(1, 0), Make(0, 2))
	if !a.Equal(b) {
		t.Error("Equal should ignore order")
	}
	b.Insert(Make(0, 0))
	if a.Equal(b) {
		t.Error("Equal false positive")
	}
}

func TestAntichainElementsSorted(t *testing.T) {
	a := NewAntichain(Make(1, 0), Make(0, 2))
	el := a.Elements()
	if len(el) != 2 || el[0] != Make(0, 2) || el[1] != Make(1, 0) {
		t.Fatalf("Elements = %v", el)
	}
}

// Property: every inserted element is either in the antichain or dominated
// by a member; members are mutually incomparable.
func TestAntichainInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(testutil.Seed(t)))
	for trial := 0; trial < 300; trial++ {
		a := NewAntichain()
		var inserted []Timestamp
		for i := 0; i < 20; i++ {
			ts := randTimestamp(r, 2)
			a.Insert(ts)
			inserted = append(inserted, ts)
		}
		for _, ts := range inserted {
			if !a.LessEqAny(ts) {
				t.Fatalf("inserted %v not covered by %v", ts, a.Elements())
			}
		}
		el := a.Elements()
		for i := range el {
			for j := range el {
				if i != j && el[i].LessEq(el[j]) {
					t.Fatalf("members comparable: %v ≤ %v", el[i], el[j])
				}
			}
		}
	}
}

func TestMutableAntichainFrontierMoves(t *testing.T) {
	m := NewMutableAntichain()
	if !m.Empty() {
		t.Fatal("new multiset should be empty")
	}
	if !m.Update(Make(0, 0), 1) {
		t.Fatal("first insert changes frontier")
	}
	if m.Update(Make(0, 1), 1) {
		t.Fatal("dominated time should not change frontier")
	}
	if m.Count(Make(0, 1)) != 1 {
		t.Fatal("count should still be tracked")
	}
	// Removing the minimal element exposes the dominated one.
	if !m.Update(Make(0, 0), -1) {
		t.Fatal("removing minimum changes frontier")
	}
	if !m.Frontier().Contains(Make(0, 1)) {
		t.Fatalf("frontier = %v", m.Frontier().Elements())
	}
	if !m.Update(Make(0, 1), -1) {
		t.Fatal("draining changes frontier")
	}
	if !m.Empty() {
		t.Fatal("drained multiset should be empty")
	}
}

func TestMutableAntichainNegativePanics(t *testing.T) {
	m := NewMutableAntichain()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative count")
		}
	}()
	m.Update(Root(0), -1)
}

// Property: the frontier of a MutableAntichain equals the antichain of
// times with positive count, under arbitrary interleaved updates.
func TestMutableAntichainMatchesRecomputation(t *testing.T) {
	r := rand.New(rand.NewSource(testutil.Seed(t)))
	for trial := 0; trial < 200; trial++ {
		m := NewMutableAntichain()
		ref := map[Timestamp]int64{}
		for i := 0; i < 50; i++ {
			ts := randTimestamp(r, 1)
			var delta int64 = 1
			if ref[ts] > 0 && r.Intn(2) == 0 {
				delta = -1
			}
			m.Update(ts, delta)
			ref[ts] += delta
			if ref[ts] == 0 {
				delete(ref, ts)
			}
		}
		want := NewAntichain()
		for ts := range ref {
			want.Insert(ts)
		}
		if !m.Frontier().Equal(want) {
			t.Fatalf("frontier %v, want %v", m.Frontier().Elements(), want.Elements())
		}
	}
}
