package timestamp

import (
	"math/rand"
	"testing"

	"naiad/internal/testutil"
)

func TestIdentitySummary(t *testing.T) {
	id := Identity(2)
	ts := Make(5, 3, 4)
	if got := id.Apply(ts); got != ts {
		t.Fatalf("identity.Apply(%v) = %v", ts, got)
	}
	if id.OutputDepth() != 2 {
		t.Fatalf("OutputDepth = %d", id.OutputDepth())
	}
}

func TestStructuralActions(t *testing.T) {
	ts := Make(1, 2)
	in := Identity(1).ThenIngress()
	if got := in.Apply(ts); got != Make(1, 2, 0) {
		t.Fatalf("ingress: %v", got)
	}
	eg := Identity(1).ThenEgress()
	if got := eg.Apply(ts); got != Root(1) {
		t.Fatalf("egress: %v", got)
	}
	fb := Identity(1).ThenFeedback()
	if got := fb.Apply(ts); got != Make(1, 3) {
		t.Fatalf("feedback: %v", got)
	}
}

// A loop body path ingress→feedback→feedback→egress collapses to identity
// with the inner activity erased: the pops discard inner increments.
func TestEgressDiscardsInnerIncrements(t *testing.T) {
	s := Identity(1).ThenIngress().ThenFeedback().ThenFeedback().ThenEgress()
	if s != Identity(1) {
		t.Fatalf("got %v, want identity", s)
	}
}

// feedback then egress ≠ egress then feedback: order matters and the
// canonical form captures it.
func TestCanonicalFormOrderSensitivity(t *testing.T) {
	fbEg := Identity(2).ThenFeedback().ThenEgress()
	egFb := Identity(2).ThenEgress().ThenFeedback()
	ts := Make(0, 1, 1)
	if got := fbEg.Apply(ts); got != Make(0, 1) {
		t.Fatalf("fb;eg: %v", got)
	}
	if got := egFb.Apply(ts); got != Make(0, 2) {
		t.Fatalf("eg;fb: %v", got)
	}
}

// randSummary builds a summary by composing random structural actions,
// returning it along with the input depth it expects.
func randSummary(r *rand.Rand, inDepth uint8) Summary {
	s := Identity(inDepth)
	for i := 0; i < r.Intn(8); i++ {
		switch r.Intn(3) {
		case 0:
			if s.OutputDepth() < MaxLoopDepth {
				s = s.ThenIngress()
			}
		case 1:
			if s.OutputDepth() > 0 {
				s = s.ThenEgress()
			}
		case 2:
			if s.OutputDepth() > 0 {
				s = s.ThenFeedback()
			}
		}
	}
	return s
}

// Property: composition via Then agrees with sequential Apply.
func TestThenAgreesWithSequentialApply(t *testing.T) {
	r := rand.New(rand.NewSource(testutil.Seed(t)))
	for i := 0; i < 10000; i++ {
		d := uint8(r.Intn(3))
		s1 := randSummary(r, d)
		s2 := randSummary(r, s1.OutputDepth())
		ts := randTimestamp(r, d)
		want := s2.Apply(s1.Apply(ts))
		got := s1.Then(s2).Apply(ts)
		if got != want {
			t.Fatalf("(%v).Then(%v).Apply(%v) = %v, want %v", s1, s2, ts, got, want)
		}
	}
}

// Property: canonical composition of structural steps equals step-by-step
// application for explicitly enumerated op sequences.
func TestCanonicalFormMatchesOpSequence(t *testing.T) {
	r := rand.New(rand.NewSource(testutil.Seed(t)))
	for i := 0; i < 10000; i++ {
		d := uint8(r.Intn(3))
		ts := randTimestamp(r, d)
		s := Identity(d)
		want := ts
		for j := 0; j < r.Intn(10); j++ {
			switch r.Intn(3) {
			case 0:
				if want.Depth < MaxLoopDepth {
					s = s.ThenIngress()
					want = want.PushLoop()
				}
			case 1:
				if want.Depth > 0 {
					s = s.ThenEgress()
					want = want.PopLoop()
				}
			case 2:
				if want.Depth > 0 {
					s = s.ThenFeedback()
					want = want.Tick()
				}
			}
		}
		if got := s.Apply(ts); got != want {
			t.Fatalf("summary %v applied to %v = %v, want %v", s, ts, got, want)
		}
	}
}

// Property: if s1.LessEq(s2) then s1(t) ≤ t2(t) for all t (soundness of the
// summary order).
func TestSummaryLessEqSound(t *testing.T) {
	r := rand.New(rand.NewSource(testutil.Seed(t)))
	for i := 0; i < 10000; i++ {
		d := uint8(1 + r.Intn(2))
		s1, s2 := randSummary(r, d), randSummary(r, d)
		if !s1.LessEq(s2) {
			continue
		}
		ts := randTimestamp(r, d)
		if !s1.Apply(ts).LessEq(s2.Apply(ts)) {
			t.Fatalf("s1=%v ≤ s2=%v but s1(%v)=%v > s2(%v)=%v",
				s1, s2, ts, s1.Apply(ts), ts, s2.Apply(ts))
		}
	}
}

func TestSummarySetKeepsMinimal(t *testing.T) {
	var ss SummarySet
	big := Identity(1).ThenFeedback().ThenFeedback() // +2
	small := Identity(1).ThenFeedback()              // +1
	if !ss.Insert(big) {
		t.Fatal("first insert should change the set")
	}
	if !ss.Insert(small) {
		t.Fatal("dominating insert should change the set")
	}
	if ss.Insert(big) {
		t.Fatal("dominated insert should be dropped")
	}
	if len(ss.Elements()) != 1 || ss.Elements()[0] != small {
		t.Fatalf("elements = %v", ss.Elements())
	}
}

func TestSummarySetCouldResultIn(t *testing.T) {
	var ss SummarySet
	ss.Insert(Identity(1).ThenFeedback()) // +1 on the loop counter
	if !ss.CouldResultIn(Make(0, 1), Make(0, 2)) {
		t.Error("(0,1)+1 should reach (0,2)")
	}
	if ss.CouldResultIn(Make(0, 1), Make(0, 1)) {
		t.Error("(0,1)+1 must not reach (0,1)")
	}
	if ss.CouldResultIn(Make(1, 1), Make(0, 5)) {
		t.Error("later epoch must not reach earlier epoch")
	}
	var empty SummarySet
	if empty.CouldResultIn(Root(0), Root(9)) {
		t.Error("empty set: no path, no could-result-in")
	}
	if !empty.Empty() || ss.Empty() {
		t.Error("Empty() mismatch")
	}
}

func TestSummaryString(t *testing.T) {
	s := Identity(1).ThenFeedback().ThenIngress()
	if got := s.String(); got != "keep 1 +1 ++<0>" {
		t.Fatalf("String = %q", got)
	}
}

func TestThenPanicsOnDepthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	// s outputs depth 1; u wants to keep 3 original counters.
	s := Identity(1)
	u := Identity(3)
	_ = s.Then(u)
}

// Property: AppliedLessEq agrees with materializing Apply then LessEq,
// including the does-not-apply case (Truncate beyond the input depth),
// which CouldResultIn treats as false rather than a panic.
func TestAppliedLessEqMatchesApply(t *testing.T) {
	r := rand.New(rand.NewSource(testutil.Seed(t)))
	for i := 0; i < 20000; i++ {
		d := uint8(r.Intn(int(MaxLoopDepth) + 1))
		s := randSummary(r, d)
		in := randTimestamp(r, uint8(r.Intn(int(MaxLoopDepth)+1)))
		u := randTimestamp(r, uint8(r.Intn(int(MaxLoopDepth)+1)))
		want := s.Truncate <= in.Depth && s.Apply(in).LessEq(u)
		if got := s.AppliedLessEq(in, u); got != want {
			t.Fatalf("(%v).AppliedLessEq(%v, %v) = %v, want %v", s, in, u, got, want)
		}
	}
}

// Property: within one epoch and one depth, AppliedLessEq is monotone in
// the lexicographic counter order — the invariant the progress tracker's
// bucket index relies on to binary-search precursor prefixes.
func TestAppliedLessEqMonotoneWithinEpoch(t *testing.T) {
	r := rand.New(rand.NewSource(testutil.Seed(t)))
	for i := 0; i < 20000; i++ {
		d := uint8(1 + r.Intn(int(MaxLoopDepth)))
		s := randSummary(r, d)
		u := randTimestamp(r, uint8(r.Intn(int(MaxLoopDepth)+1)))
		a := randTimestamp(r, d)
		b := a
		// Perturb b upward in the counter-lex order, same epoch.
		j := r.Intn(int(d))
		b.Counters[j] += int64(1 + r.Intn(3))
		if s.AppliedLessEq(b, u) && !s.AppliedLessEq(a, u) {
			t.Fatalf("monotonicity violated: s=%v u=%v holds at %v but not %v", s, u, b, a)
		}
	}
}
