package kexposure

import (
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"naiad/internal/lib"
	"naiad/internal/runtime"
	"naiad/internal/supervise"
	"naiad/internal/testutil"
	"naiad/internal/transport"
	"naiad/internal/workload"
)

// TestChaosCrashRecovery replays the §3.4 failure story with a real fault
// injection instead of a graceful shutdown: the primary run executes on a
// chaos transport that delays every frame, a process is killed mid-epoch,
// and the surviving cluster must abort loudly. Recovery then restores the
// last checkpoint on a fresh cluster and replays the post-checkpoint
// epochs. Output emitted by the doomed epoch after the checkpoint is
// discarded — the paper's recovery contract — so the invariant is:
// (crossings observed up to the checkpoint) ∪ (recovered run's crossings)
// equals an uninterrupted reference run, with no tag lost or duplicated.
func TestChaosCrashRecovery(t *testing.T) {
	cfg := runtime.Config{Processes: 2, WorkersPerProcess: 2, Accumulation: runtime.AccLocalGlobal}
	const k = 20
	seed := testutil.Seed(t)
	gen := workload.NewTweetGen(seed, 2000, 400)
	epochs := make([][]workload.Tweet, 6)
	for e := range epochs {
		epochs[e] = gen.Batch(800)
	}

	type run struct {
		col  *lib.Collector[lib.Pair[string, int64]]
		comp *runtime.Computation
		in   *lib.Input[workload.Tweet]
	}
	build := func(c runtime.Config) run {
		s, err := lib.NewScope(c)
		if err != nil {
			t.Fatal(err)
		}
		in, tweets := lib.NewInput[workload.Tweet](s, "tweets", nil)
		topics := Build(s, tweets, k, false)
		col := lib.Collect(topics)
		if err := s.C.Start(); err != nil {
			t.Fatal(err)
		}
		return run{col: col, comp: s.C, in: in}
	}
	tagsOf := func(col *lib.Collector[lib.Pair[string, int64]]) map[string]int {
		out := map[string]int{}
		for _, p := range col.All() {
			out[p.Key]++
		}
		return out
	}

	// Reference run, fault-free.
	ref := build(cfg)
	for _, batch := range epochs {
		ref.in.OnNext(batch...)
	}
	ref.in.Close()
	if err := ref.comp.Join(); err != nil {
		t.Fatal(err)
	}
	want := tagsOf(ref.col)

	// Primary run on a hostile network: three epochs, checkpoint, then a
	// process crash while epoch 3 is in flight.
	ct := transport.NewChaos(transport.NewMem(cfg.Processes), transport.ChaosConfig{
		Seed:    seed,
		Default: transport.Fault{Latency: time.Millisecond, Jitter: 2 * time.Millisecond},
	})
	pcfg := cfg
	pcfg.Transport = ct
	pcfg.SafetyChecks = true
	pcfg.Watchdog = 30 * time.Second
	primary := build(pcfg)
	for e := 0; e < 3; e++ {
		primary.in.OnNext(epochs[e]...)
	}
	primary.col.WaitFor(2)
	snap, err := primary.comp.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	snap = runtime.DecodeSnapshot(runtime.EncodeSnapshot(snap))
	before := tagsOf(primary.col) // checkpoint-covered output only
	primary.in.OnNext(epochs[3]...)
	ct.Crash(1)
	if err := primary.comp.Join(); err == nil || !strings.Contains(err.Error(), "crashed") {
		t.Fatalf("Join = %v, want a crash error", err)
	}

	// Recovery on a fresh fault-free cluster: replay epochs 3..5.
	rec := build(cfg)
	if err := rec.comp.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if rec.in.Epoch() != 3 {
		t.Fatalf("restored input epoch = %d, want 3", rec.in.Epoch())
	}
	for e := 3; e < 6; e++ {
		rec.in.OnNext(epochs[e]...)
	}
	rec.in.Close()
	if err := rec.comp.Join(); err != nil {
		t.Fatal(err)
	}
	after := tagsOf(rec.col)
	if len(before) == 0 || len(after) == 0 {
		t.Fatalf("degenerate split: %d pre-checkpoint, %d recovered crossings", len(before), len(after))
	}

	union := map[string]int{}
	for tag := range before {
		union[tag]++
	}
	for tag := range after {
		union[tag]++
	}
	var dup, missing, extra []string
	for tag, n := range union {
		if n > 1 {
			dup = append(dup, tag)
		}
		if _, ok := want[tag]; !ok {
			extra = append(extra, tag)
		}
	}
	for tag := range want {
		if union[tag] == 0 {
			missing = append(missing, tag)
		}
	}
	sort.Strings(dup)
	sort.Strings(missing)
	sort.Strings(extra)
	if len(dup) > 0 {
		t.Fatalf("tags crossed twice across the crash: %v", dup)
	}
	if len(missing) > 0 {
		t.Fatalf("tags lost across the crash: %v", missing)
	}
	if len(extra) > 0 {
		t.Fatalf("tags crossed that never cross in the reference: %v", extra)
	}
}

// TestSupervisedChaosCrashRecovery is the automatic version of the story
// above: instead of hand-rolling checkpoint/restore, the computation runs
// under internal/supervise with periodic checkpoints, a process is killed
// mid-stream, and the supervisor alone must detect, restore, and replay.
// The invariant mirrors the manual test: the union of crossings across
// incarnations equals the fault-free reference tag set, with no tag lost,
// invented, or crossed twice. (Which epoch a crossing lands in is
// arrival-order dependent — DistinctCumulative is asynchronous, §2.4 — so
// the comparison is by tag, not by epoch.)
func TestSupervisedChaosCrashRecovery(t *testing.T) {
	const k = 20
	seed := testutil.Seed(t)
	gen := workload.NewTweetGen(seed, 2000, 400)
	epochs := make([][]workload.Tweet, 6)
	for e := range epochs {
		epochs[e] = gen.Batch(400)
	}
	cfg := runtime.Config{Processes: 2, WorkersPerProcess: 2, Accumulation: runtime.AccLocalGlobal}

	// tagsAcross counts, per tag, how many crossings the collectors saw in
	// total — across incarnations and epochs.
	tagsAcross := func(cols []*lib.Collector[lib.Pair[string, int64]]) map[string]int {
		out := map[string]int{}
		for _, col := range cols {
			for _, p := range col.All() {
				out[p.Key]++
			}
		}
		return out
	}

	// Reference run, fault-free.
	refScope, err := lib.NewScope(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refIn, refTweets := lib.NewInput[workload.Tweet](refScope, "tweets", nil)
	refCol := lib.Collect(Build(refScope, refTweets, k, false))
	if err := refScope.C.Start(); err != nil {
		t.Fatal(err)
	}
	for _, batch := range epochs {
		refIn.OnNext(batch...)
	}
	refIn.Close()
	if err := refScope.C.Join(); err != nil {
		t.Fatal(err)
	}
	want := tagsAcross([]*lib.Collector[lib.Pair[string, int64]]{refCol})

	// Supervised run on a hostile network; each incarnation gets a fresh
	// chaos transport and its own collector.
	var mu sync.Mutex
	var cols []*lib.Collector[lib.Pair[string, int64]]
	var chaos0 *transport.Chaos
	incarnation := 0
	factory := func() (*supervise.Build, error) {
		scfg := cfg
		scfg.SafetyChecks = true
		scfg.Watchdog = 30 * time.Second
		ct := transport.NewChaos(transport.NewMem(cfg.Processes), transport.ChaosConfig{
			Seed:    seed + int64(incarnation),
			Default: transport.Fault{Latency: time.Millisecond, Jitter: 2 * time.Millisecond},
		})
		if incarnation == 0 {
			chaos0 = ct
		}
		incarnation++
		scfg.Transport = ct
		s, err := lib.NewScope(scfg)
		if err != nil {
			return nil, err
		}
		in, tweets := lib.NewInput[workload.Tweet](s, "tweets", nil)
		col := lib.Collect(Build(s, tweets, k, false))
		mu.Lock()
		cols = append(cols, col)
		mu.Unlock()
		return &supervise.Build{
			Comp:   s.C,
			Inputs: map[string]*runtime.Input{"tweets": in.Raw()},
			Probe:  col.Probe(),
		}, nil
	}
	sup, err := supervise.New(supervise.Config{Factory: factory, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	feed := func(e int) {
		t.Helper()
		msgs := make([]runtime.Message, len(epochs[e]))
		for i, tw := range epochs[e] {
			msgs[i] = tw
		}
		if err := sup.OnNext("tweets", msgs...); err != nil {
			t.Fatal(err)
		}
	}
	for e := 0; e < 3; e++ {
		feed(e)
	}
	deadline := time.Now().Add(30 * time.Second)
	for sup.Recovery().Checkpoints < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoints taken: %+v", sup.Recovery())
		}
		time.Sleep(time.Millisecond)
	}
	chaos0.Crash(1)
	for e := 3; e < len(epochs); e++ {
		feed(e)
	}
	if err := sup.CloseInput("tweets"); err != nil {
		t.Fatal(err)
	}
	if err := sup.Wait(); err != nil {
		t.Fatalf("supervised run did not recover: %v", err)
	}
	rec := sup.Recovery()
	if rec.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1 (%+v)", rec.Restarts, rec)
	}

	mu.Lock()
	got := tagsAcross(cols)
	mu.Unlock()
	var missing, extra, dup []string
	for tag := range want {
		if got[tag] == 0 {
			missing = append(missing, tag)
		}
	}
	for tag, n := range got {
		if want[tag] == 0 {
			extra = append(extra, tag)
		}
		if n > 1 {
			dup = append(dup, tag)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	sort.Strings(dup)
	if len(missing) > 0 {
		t.Fatalf("crossings lost across supervised recovery: %v", missing)
	}
	if len(extra) > 0 {
		t.Fatalf("crossings invented across supervised recovery: %v", extra)
	}
	if len(dup) > 0 {
		t.Fatalf("tags crossed twice across supervised recovery: %v", dup)
	}
}
