// Package kexposure implements the Kineograph comparison workload of
// §6.3: ingesting a tweet stream and maintaining, per hashtag, the number
// of distinct users exposed to it, reporting topics whose exposure crosses
// a threshold k ("controversial topics"). The dataflow is the paper's 26-
// line pipeline of SelectMany, Distinct, and a cumulative Count, and it
// runs under three fault-tolerance modes: none, periodic checkpoints, and
// continual logging.
package kexposure

import (
	"fmt"
	"os"
	"time"

	"naiad/internal/codec"
	"naiad/internal/graph"
	"naiad/internal/lib"
	"naiad/internal/runtime"
	ts "naiad/internal/timestamp"
	"naiad/internal/workload"
)

// FTMode selects the fault-tolerance configuration of Figure 7c.
type FTMode uint8

const (
	// FTNone runs without fault tolerance.
	FTNone FTMode = iota
	// FTCheckpoint snapshots all stateful vertices periodically.
	FTCheckpoint
	// FTLogging logs every delivered batch at the counting stage.
	FTLogging
)

// String names the mode as the figure labels it.
func (m FTMode) String() string {
	switch m {
	case FTNone:
		return "None"
	case FTCheckpoint:
		return "Checkpoint"
	case FTLogging:
		return "Logging"
	}
	return fmt.Sprintf("ft(%d)", uint8(m))
}

// tagUser is a (hashtag, user) exposure event.
type tagUser struct {
	Tag  string
	User int64
}

func tagUserCodec() codec.Codec {
	return codec.New(
		func(e *codec.Encoder, v tagUser) { e.PutString(v.Tag); e.PutInt64(v.User) },
		func(d *codec.Decoder) tagUser { return tagUser{Tag: d.String(), User: d.Int64()} },
	)
}

// exposureCounter counts distinct users per hashtag cumulatively and emits
// (tag, count) when a tag's exposure crosses k. It checkpoints its counts.
type exposureCounter struct {
	ctx    *runtime.Context
	k      int64
	counts map[string]int64
}

func (v *exposureCounter) OnRecv(_ int, msg runtime.Message, t ts.Timestamp) {
	tu := msg.(tagUser)
	v.counts[tu.Tag]++
	if v.counts[tu.Tag] == v.k {
		v.ctx.SendBy(0, lib.Pair[string, int64]{Key: tu.Tag, Val: v.counts[tu.Tag]}, t)
	}
}

func (v *exposureCounter) OnNotify(ts.Timestamp) {}

// Checkpoint serializes the per-tag counts (§3.4).
func (v *exposureCounter) Checkpoint(enc *codec.Encoder) {
	enc.PutUint32(uint32(len(v.counts)))
	for tag, n := range v.counts {
		enc.PutString(tag)
		enc.PutInt64(n)
	}
}

// Restore rebuilds the counts from a checkpoint.
func (v *exposureCounter) Restore(dec *codec.Decoder) {
	v.counts = make(map[string]int64)
	for n := int(dec.Uint32()); n > 0; n-- {
		tag := dec.String()
		v.counts[tag] = dec.Int64()
	}
}

// Build wires the k-exposure dataflow over a tweet stream, returning the
// stream of topics that crossed the exposure threshold. logged controls
// Figure 7c's continual-logging mode.
func Build(s *lib.Scope, tweets *lib.Stream[workload.Tweet], k int64, logged bool) *lib.Stream[lib.Pair[string, int64]] {
	pairs := lib.SelectMany(tweets, func(tw workload.Tweet) []tagUser {
		out := make([]tagUser, 0, len(tw.Hashtags)*(1+len(tw.Mentions)))
		for _, tag := range tw.Hashtags {
			// The author and every mentioned user are exposed to the tag.
			out = append(out, tagUser{Tag: tag, User: tw.User})
			for _, m := range tw.Mentions {
				out = append(out, tagUser{Tag: tag, User: m})
			}
		}
		return out
	}, tagUserCodec())
	// First exposure of each (tag, user), as soon as it is seen.
	first := lib.DistinctCumulative(pairs)

	var opts []runtime.StageOption
	if logged {
		opts = append(opts, runtime.Logged())
	}
	c := s.C
	st := c.AddStage("exposure", graph.RoleNormal, 0, func(ctx *runtime.Context) runtime.Vertex {
		return &exposureCounter{ctx: ctx, k: k, counts: make(map[string]int64)}
	}, opts...)
	c.Connect(first.Stage(), 0, st, func(m runtime.Message) uint64 {
		return lib.Hash(m.(tagUser).Tag)
	}, tagUserCodec())
	return lib.StreamOf[lib.Pair[string, int64]](s, st, 0, nil, 0)
}

// Result reports one run of the k-exposure workload.
type Result struct {
	Mode            FTMode
	Tweets          int64
	Elapsed         time.Duration
	TweetsPerSecond float64
	// EpochLatencies[i] is the time from completing epoch i's input to the
	// epoch's results being fully reflected in the output.
	EpochLatencies []time.Duration
	// Controversial counts topics that crossed the threshold.
	Controversial int
	LoggedBatches int64
}

// fileSink appends logged batches to a real file — the append-only log
// device continual logging pays for (§3.4).
type fileSink struct {
	f     *os.File
	bytes int64
}

func newFileSink() (*fileSink, error) {
	f, err := os.CreateTemp("", "naiad-kexposure-log-*")
	if err != nil {
		return nil, err
	}
	os.Remove(f.Name()) // anonymous; space reclaimed on close
	return &fileSink{f: f}, nil
}

func (fs *fileSink) LogBatch(_ runtime.StageID, payload []byte) error {
	var hdr [4]byte
	hdr[0] = byte(len(payload))
	hdr[1] = byte(len(payload) >> 8)
	hdr[2] = byte(len(payload) >> 16)
	hdr[3] = byte(len(payload) >> 24)
	if _, err := fs.f.Write(hdr[:]); err != nil {
		return err
	}
	n, err := fs.f.Write(payload)
	fs.bytes += int64(n)
	return err
}

func (fs *fileSink) Close() { fs.f.Close() }

// Run executes the k-exposure workload: epochs of synthetic tweets pushed
// through the pipeline under the given fault-tolerance mode, measuring
// per-epoch response latency and overall throughput.
func Run(cfg runtime.Config, epochs, tweetsPerEpoch int, k int64, mode FTMode, checkpointEvery int) (*Result, error) {
	s, err := lib.NewScope(cfg)
	if err != nil {
		return nil, err
	}
	var sink *fileSink
	if mode == FTLogging {
		sink, err = newFileSink()
		if err != nil {
			return nil, err
		}
		defer sink.Close()
		s.C.SetLogSink(sink)
	}
	var snapFile *os.File
	if mode == FTCheckpoint {
		snapFile, err = os.CreateTemp("", "naiad-kexposure-snap-*")
		if err != nil {
			return nil, err
		}
		os.Remove(snapFile.Name())
		defer snapFile.Close()
	}
	in, tweets := lib.NewInput[workload.Tweet](s, "tweets", nil)
	topics := Build(s, tweets, k, mode == FTLogging)
	col := lib.Collect(topics)
	if err := s.C.Start(); err != nil {
		return nil, err
	}

	gen := workload.NewTweetGen(1, 100_000, 20_000)
	res := &Result{Mode: mode}
	start := time.Now()
	for e := 0; e < epochs; e++ {
		batch := gen.Batch(tweetsPerEpoch)
		per := make([][]workload.Tweet, cfg.Workers())
		for i, tw := range batch {
			w := i % cfg.Workers()
			per[w] = append(per[w], tw)
		}
		for w, b := range per {
			in.SendToWorker(w, b)
		}
		epochStart := time.Now()
		in.Advance()
		col.WaitFor(int64(e))
		res.EpochLatencies = append(res.EpochLatencies, time.Since(epochStart))
		res.Tweets += int64(tweetsPerEpoch)
		if mode == FTCheckpoint && checkpointEvery > 0 && (e+1)%checkpointEvery == 0 {
			snap, err := s.C.Checkpoint()
			if err != nil {
				return nil, err
			}
			// Durability: the checkpoint is complete once it is written
			// out (§3.4).
			if _, err := snapFile.WriteAt(runtime.EncodeSnapshot(snap), 0); err != nil {
				return nil, err
			}
		}
	}
	in.Close()
	if err := s.C.Join(); err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	res.TweetsPerSecond = float64(res.Tweets) / res.Elapsed.Seconds()
	res.Controversial = len(col.All())
	res.LoggedBatches = s.C.LoggedBatches()
	return res, nil
}
