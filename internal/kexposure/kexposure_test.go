package kexposure

import (
	"testing"

	"naiad/internal/lib"
	"naiad/internal/runtime"
	"naiad/internal/workload"
)

func cfg() runtime.Config {
	return runtime.Config{Processes: 2, WorkersPerProcess: 2, Accumulation: runtime.AccLocalGlobal}
}

func TestExposureCrossesThresholdOnce(t *testing.T) {
	s, err := lib.NewScope(cfg())
	if err != nil {
		t.Fatal(err)
	}
	in, tweets := lib.NewInput[workload.Tweet](s, "tweets", nil)
	topics := Build(s, tweets, 3, false)
	col := lib.Collect(topics)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	// Users 1..4 use #x; only 2 users use #y. Duplicate uses don't count.
	mk := func(user int64, tag string) workload.Tweet {
		return workload.Tweet{User: user, Hashtags: []string{tag}}
	}
	in.OnNext(mk(1, "#x"), mk(1, "#x"), mk(2, "#x"), mk(1, "#y"))
	in.OnNext(mk(3, "#x"), mk(4, "#x"), mk(2, "#y"))
	in.Close()
	if err := s.C.Join(); err != nil {
		t.Fatal(err)
	}
	all := col.All()
	if len(all) != 1 || all[0].Key != "#x" || all[0].Val != 3 {
		t.Fatalf("crossings = %v (want #x at 3, exactly once)", all)
	}
}

func TestMentionsCountAsExposure(t *testing.T) {
	s, err := lib.NewScope(cfg())
	if err != nil {
		t.Fatal(err)
	}
	in, tweets := lib.NewInput[workload.Tweet](s, "tweets", nil)
	topics := Build(s, tweets, 3, false)
	col := lib.Collect(topics)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	// One tweet exposing author + two mentioned users = 3 distinct users.
	in.OnNext(workload.Tweet{User: 1, Mentions: []int64{2, 3}, Hashtags: []string{"#z"}})
	in.Close()
	if err := s.C.Join(); err != nil {
		t.Fatal(err)
	}
	all := col.All()
	if len(all) != 1 || all[0].Key != "#z" {
		t.Fatalf("crossings = %v", all)
	}
}

func TestRunModes(t *testing.T) {
	for _, mode := range []FTMode{FTNone, FTCheckpoint, FTLogging} {
		res, err := Run(cfg(), 5, 200, 5, mode, 2)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Tweets != 1000 || len(res.EpochLatencies) != 5 {
			t.Fatalf("%v: %+v", mode, res)
		}
		if res.TweetsPerSecond <= 0 {
			t.Fatalf("%v: throughput %v", mode, res.TweetsPerSecond)
		}
		if mode == FTLogging && res.LoggedBatches == 0 {
			t.Fatal("logging mode logged nothing")
		}
		if mode != FTLogging && res.LoggedBatches != 0 {
			t.Fatalf("%v: unexpected logging", mode)
		}
	}
}

func TestFTModeString(t *testing.T) {
	if FTNone.String() != "None" || FTCheckpoint.String() != "Checkpoint" ||
		FTLogging.String() != "Logging" || FTMode(9).String() != "ft(9)" {
		t.Fatal("FTMode.String")
	}
}
