package kexposure

import (
	"sort"
	"testing"

	"naiad/internal/lib"
	"naiad/internal/runtime"
	"naiad/internal/workload"
)

// TestRecoveryFromCheckpoint simulates the §3.4 failure story end to end:
// run the pipeline, checkpoint, "lose the cluster", build a fresh
// computation, restore the snapshot, and replay only the post-checkpoint
// epochs.
//
// Because the pipeline is asynchronous, the epoch a crossing is attributed
// to is not deterministic — but each hashtag crosses the threshold exactly
// once over the whole stream. The recovery invariant is therefore: the
// crossings of (primary run before the checkpoint) ∪ (recovered run) must
// equal the crossings of an uninterrupted reference run, with no tag lost
// and none duplicated.
func TestRecoveryFromCheckpoint(t *testing.T) {
	cfg := runtime.Config{Processes: 2, WorkersPerProcess: 2, Accumulation: runtime.AccLocalGlobal}
	const k = 20
	// Deterministic tweet batches shared by all runs, over a vocabulary
	// large enough that crossings spread across all six epochs.
	gen := workload.NewTweetGen(9, 2000, 400)
	epochs := make([][]workload.Tweet, 6)
	for e := range epochs {
		epochs[e] = gen.Batch(800)
	}

	type run struct {
		col  *lib.Collector[lib.Pair[string, int64]]
		comp *runtime.Computation
		in   *lib.Input[workload.Tweet]
	}
	build := func() run {
		s, err := lib.NewScope(cfg)
		if err != nil {
			t.Fatal(err)
		}
		in, tweets := lib.NewInput[workload.Tweet](s, "tweets", nil)
		topics := Build(s, tweets, k, false)
		col := lib.Collect(topics)
		if err := s.C.Start(); err != nil {
			t.Fatal(err)
		}
		return run{col: col, comp: s.C, in: in}
	}
	tagsOf := func(col *lib.Collector[lib.Pair[string, int64]]) map[string]int {
		out := map[string]int{}
		for _, p := range col.All() {
			out[p.Key]++
		}
		return out
	}

	// Reference run: all six epochs straight through.
	ref := build()
	for _, batch := range epochs {
		ref.in.OnNext(batch...)
	}
	ref.in.Close()
	if err := ref.comp.Join(); err != nil {
		t.Fatal(err)
	}
	want := tagsOf(ref.col)
	for tag, n := range want {
		if n != 1 {
			t.Fatalf("reference emitted %q %d times", tag, n)
		}
	}

	// Primary run: three epochs, checkpoint, then "fail".
	primary := build()
	for e := 0; e < 3; e++ {
		primary.in.OnNext(epochs[e]...)
	}
	primary.col.WaitFor(2)
	snap, err := primary.comp.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	snap = runtime.DecodeSnapshot(runtime.EncodeSnapshot(snap)) // durability roundtrip
	primary.in.Close()
	if err := primary.comp.Join(); err != nil {
		t.Fatal(err)
	}
	before := tagsOf(primary.col)

	// Recovery run: restore and replay epochs 3..5 only.
	rec := build()
	if err := rec.comp.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if rec.in.Epoch() != 3 {
		t.Fatalf("restored input epoch = %d", rec.in.Epoch())
	}
	for e := 3; e < 6; e++ {
		rec.in.OnNext(epochs[e]...)
	}
	rec.in.Close()
	if err := rec.comp.Join(); err != nil {
		t.Fatal(err)
	}
	after := tagsOf(rec.col)

	// The recovered run must contribute something (otherwise the test is
	// vacuous) and the union must equal the reference with no duplicates.
	if len(after) == 0 {
		t.Fatal("no post-recovery crossings; grow the workload")
	}
	if len(before) == 0 {
		t.Fatal("no pre-checkpoint crossings; shrink k")
	}
	union := map[string]int{}
	for tag := range before {
		union[tag]++
	}
	for tag := range after {
		union[tag]++
	}
	var dup, missing, extra []string
	for tag, n := range union {
		if n > 1 {
			dup = append(dup, tag)
		}
		if _, ok := want[tag]; !ok {
			extra = append(extra, tag)
		}
	}
	for tag := range want {
		if union[tag] == 0 {
			missing = append(missing, tag)
		}
	}
	sort.Strings(dup)
	sort.Strings(missing)
	sort.Strings(extra)
	if len(dup) > 0 {
		t.Fatalf("tags crossed twice across the failure: %v", dup)
	}
	if len(missing) > 0 {
		t.Fatalf("tags lost across the failure: %v", missing)
	}
	if len(extra) > 0 {
		t.Fatalf("tags crossed that never cross in the reference: %v", extra)
	}
}
