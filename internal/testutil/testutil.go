// Package testutil holds shared helpers for the repository's tests:
// deterministic seeding of randomized tests and a goroutine leak check.
package testutil

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// DefaultSeed is the seed every randomized test uses unless overridden.
// Keeping it fixed makes test failures reproducible by default; set
// NAIAD_TEST_SEED to explore other schedules (e.g. in a soak loop).
const DefaultSeed int64 = 20130101 // SOSP'13

// SeedEnv is the environment variable that overrides DefaultSeed.
const SeedEnv = "NAIAD_TEST_SEED"

// Seed returns the seed for a randomized test and logs it, so any failure
// report carries the value needed to reproduce the run. The order of
// precedence is NAIAD_TEST_SEED, then DefaultSeed.
func Seed(t testing.TB) int64 {
	seed := DefaultSeed
	if s := os.Getenv(SeedEnv); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("testutil: %s=%q is not an int64: %v", SeedEnv, s, err)
		}
		seed = v
	}
	t.Logf("testutil: seed %d (override with %s)", seed, SeedEnv)
	return seed
}

// CheckNoLeaks fails the test if goroutines started during it are still
// alive shortly after it finishes. Call it at the top of a test:
//
//	defer testutil.CheckNoLeaks(t)()
//
// The returned func compares goroutine stacks against the snapshot taken
// at the call, retrying for up to a second to let legitimate shutdown
// (connection teardown, timer drains) finish first. Stacks from the Go
// runtime and the testing framework are ignored.
func CheckNoLeaks(t testing.TB) func() {
	before := grCount()
	return func() {
		deadline := time.Now().Add(1 * time.Second)
		var after int
		for {
			after = grCount()
			if after <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if after > before {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Errorf("testutil: goroutine leak: %d before, %d after\n%s", before, after, buf[:n])
		}
	}
}

// grCount counts live goroutines with a frame inside this module — the
// only ones a leak in the code under test can produce — so runtime and
// testing-framework internals never trip the check.
func grCount() int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	count := 0
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(g, "naiad/internal/") && !strings.Contains(g, "testutil.grCount") {
			count++
		}
	}
	return count
}
