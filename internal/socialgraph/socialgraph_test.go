package socialgraph

import (
	"sync"
	"testing"

	"naiad/internal/runtime"
	"naiad/internal/workload"
)

func cfg() runtime.Config {
	return runtime.Config{Processes: 2, WorkersPerProcess: 2, Accumulation: runtime.AccLocalGlobal}
}

type answers struct {
	mu   sync.Mutex
	byID map[int64]Answer
}

func (a *answers) record(ans Answer) {
	a.mu.Lock()
	a.byID[ans.ID] = ans
	a.mu.Unlock()
}

func (a *answers) get(id int64) (Answer, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ans, ok := a.byID[id]
	return ans, ok
}

func tweet(user int64, mentions []int64, tags ...string) workload.Tweet {
	return workload.Tweet{User: user, Mentions: mentions, Hashtags: tags}
}

func TestFreshQueriesSeeOwnEpoch(t *testing.T) {
	got := &answers{byID: make(map[int64]Answer)}
	app, err := Build(cfg(), Fresh, got.record)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Scope.C.Start(); err != nil {
		t.Fatal(err)
	}
	// Epoch 0: users 1,2,3 form one component via mentions; #go dominates.
	app.Tweets.Send(
		tweet(1, []int64{2}, "#go", "#go"),
		tweet(2, []int64{3}, "#go"),
		tweet(3, nil, "#rust"),
	)
	// A fresh query in the same epoch must see the full epoch's state.
	app.Queries.Send(Query{ID: 100, User: 3})
	app.Advance()

	// Epoch 1: user 9's separate world.
	app.Tweets.Send(tweet(9, []int64{8}, "#zig"))
	app.Queries.Send(Query{ID: 101, User: 8}, Query{ID: 102, User: 1})
	app.Advance()
	app.Close()
	if err := app.Scope.C.Join(); err != nil {
		t.Fatal(err)
	}

	ans, ok := got.get(100)
	if !ok || ans.CID != 1 || ans.TopTag != "#go" || ans.Epoch != 0 {
		t.Fatalf("query 100 = %+v", ans)
	}
	ans, ok = got.get(101)
	if !ok || ans.CID != 8 || ans.TopTag != "#zig" || ans.Epoch != 1 {
		t.Fatalf("query 101 = %+v", ans)
	}
	ans, ok = got.get(102)
	if !ok || ans.TopTag != "#go" {
		t.Fatalf("query 102 = %+v", ans)
	}
}

func TestStaleQueriesSeePreviousEpoch(t *testing.T) {
	got := &answers{byID: make(map[int64]Answer)}
	app, err := Build(cfg(), Stale, got.record)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Scope.C.Start(); err != nil {
		t.Fatal(err)
	}
	app.Tweets.Send(tweet(1, []int64{2}, "#old"))
	app.Advance()

	// Wait until epoch 0 is complete so the stale table is epoch 0's.
	app.Done.WaitFor(0)
	// Epoch 1 changes the top tag, and asks a stale query in the same
	// epoch: it must see epoch 0's table.
	app.Tweets.Send(tweet(1, []int64{2}, "#new"), tweet(1, nil, "#new"))
	app.Queries.Send(Query{ID: 7, User: 2})
	app.Advance()
	app.Close()
	if err := app.Scope.C.Join(); err != nil {
		t.Fatal(err)
	}
	ans, ok := got.get(7)
	if !ok {
		t.Fatal("no answer")
	}
	if ans.Epoch != 0 || ans.TopTag != "#old" {
		t.Fatalf("stale answer = %+v, want epoch 0's #old", ans)
	}
}

func TestPolicyString(t *testing.T) {
	if Fresh.String() != "Fresh" || Stale.String() != "1s delay" {
		t.Fatal("Policy.String")
	}
}
