// Package socialgraph is the paper's flagship application (Figure 1,
// §6.4): it ingests a stream of tweets, maintains an incremental
// connected-components analysis of the mention graph, computes the most
// popular hashtag in each component, and serves interactive queries for
// the top hashtag in a user's component.
//
// Two serving policies reproduce Figure 8: Fresh answers a query only once
// the epoch it arrived in has fully updated the component structure
// (consistent and fresh, but queued behind the update work); Stale answers
// immediately from the last completed epoch's tables (consistent but about
// one epoch stale), which is the "1 s delay" line of the figure.
package socialgraph

import (
	"sort"

	"naiad/internal/codec"
	"naiad/internal/graph"
	"naiad/internal/graphalgo"
	"naiad/internal/lib"
	"naiad/internal/runtime"
	ts "naiad/internal/timestamp"
	"naiad/internal/workload"
)

// Query asks for the top hashtag in a user's connected component.
type Query struct {
	ID   int64
	User int64
}

// Answer is the response to a Query.
type Answer struct {
	ID     int64
	User   int64
	CID    int64
	TopTag string
	Epoch  int64
}

// Policy selects the Figure 8 serving mode.
type Policy uint8

const (
	// Fresh waits for the query's own epoch to complete.
	Fresh Policy = iota
	// Stale serves from the previous completed epoch on arrival.
	Stale
)

// String names the policy as Figure 8 labels it.
func (p Policy) String() string {
	if p == Fresh {
		return "Fresh"
	}
	return "1s delay"
}

// userTag is a (user, hashtag) use event.
type userTag struct {
	User int64
	Tag  string
}

// analytics maintains the joined view: user → component (from the
// incremental WCC), hashtag counts per user, and a per-epoch table of each
// component's top hashtag. It is pinned to one worker, mirroring the
// query-serving frontend of the Figure 1 dataflow.
type analytics struct {
	ctx      *runtime.Context
	policy   Policy
	onAnswer func(Answer)

	cid      map[int64]int64  // user → component id (min label seen)
	tagUses  []userTag        // all (user, tag) events
	top      map[int64]string // component → top hashtag, last completed epoch
	topEpoch int64
	pending  map[int64][]Query // epoch → queries awaiting freshness
	seen     map[int64]bool
}

func (a *analytics) OnRecv(input int, msg runtime.Message, t ts.Timestamp) {
	if !a.seen[t.Epoch] {
		a.seen[t.Epoch] = true
		a.ctx.NotifyAt(t)
	}
	switch input {
	case 0: // component label improvements
		p := msg.(lib.Pair[int64, int64])
		if cur, ok := a.cid[p.Key]; !ok || p.Val < cur {
			a.cid[p.Key] = p.Val
		}
	case 1: // hashtag uses
		a.tagUses = append(a.tagUses, msg.(userTag))
	case 2: // queries
		q := msg.(Query)
		if a.policy == Stale {
			a.answer(q, a.topEpoch)
			return
		}
		a.pending[t.Epoch] = append(a.pending[t.Epoch], q)
	}
}

func (a *analytics) OnNotify(t ts.Timestamp) {
	delete(a.seen, t.Epoch)
	// Rebuild the component → top-hashtag table from the consistent
	// snapshot at the end of this epoch.
	counts := make(map[int64]map[string]int64)
	for _, ut := range a.tagUses {
		comp := a.component(ut.User)
		m := counts[comp]
		if m == nil {
			m = make(map[string]int64)
			counts[comp] = m
		}
		m[ut.Tag]++
	}
	a.top = make(map[int64]string, len(counts))
	for comp, m := range counts {
		tags := make([]string, 0, len(m))
		for tag := range m {
			tags = append(tags, tag)
		}
		sort.Slice(tags, func(i, j int) bool {
			if m[tags[i]] != m[tags[j]] {
				return m[tags[i]] > m[tags[j]]
			}
			return tags[i] < tags[j]
		})
		a.top[comp] = tags[0]
	}
	a.topEpoch = t.Epoch
	for _, q := range a.pending[t.Epoch] {
		a.answer(q, t.Epoch)
	}
	delete(a.pending, t.Epoch)
}

// component resolves a user's component id, defaulting to the user itself
// when it has never appeared in a mention edge.
func (a *analytics) component(user int64) int64 {
	if c, ok := a.cid[user]; ok {
		return c
	}
	return user
}

func (a *analytics) answer(q Query, epoch int64) {
	comp := a.component(q.User)
	a.onAnswer(Answer{ID: q.ID, User: q.User, CID: comp, TopTag: a.top[comp], Epoch: epoch})
}

// App is a running social-graph analytics pipeline.
type App struct {
	Scope   *lib.Scope
	Tweets  *lib.Input[workload.Tweet]
	Queries *lib.Input[Query]
	// Done tracks epoch completion at the analytics stage: Done.WaitFor(e)
	// returns once epoch e's updates and fresh answers have been produced.
	Done *runtime.Probe
}

// Build wires the Figure 1 dataflow: tweets feed both the incremental
// connected-components computation (over mention edges) and the hashtag
// extraction; queries join against the maintained results. onAnswer runs
// on a worker thread.
func Build(cfg runtime.Config, policy Policy, onAnswer func(Answer)) (*App, error) {
	s, err := lib.NewScope(cfg)
	if err != nil {
		return nil, err
	}
	tweetsIn, tweets := lib.NewInput[workload.Tweet](s, "tweets", nil)
	queriesIn, queries := lib.NewInput[Query](s, "queries", nil)

	// Mention edges drive the incremental connected components (§6.4).
	mentions := lib.SelectMany(tweets, func(tw workload.Tweet) []workload.Edge {
		out := make([]workload.Edge, 0, len(tw.Mentions))
		for _, m := range tw.Mentions {
			if m != tw.User {
				out = append(out, workload.Edge{Src: tw.User, Dst: m})
			}
		}
		return out
	}, graphalgo.EdgeCodec())
	labels := graphalgo.BuildWCC(s, mentions, 1_000_000)

	// Hashtag use events.
	uses := lib.SelectMany(tweets, func(tw workload.Tweet) []userTag {
		out := make([]userTag, 0, len(tw.Hashtags))
		for _, tag := range tw.Hashtags {
			out = append(out, userTag{User: tw.User, Tag: tag})
		}
		return out
	}, nil)

	st := s.C.AddStage("analytics", graph.RoleNormal, 0, func(ctx *runtime.Context) runtime.Vertex {
		return &analytics{
			ctx: ctx, policy: policy, onAnswer: onAnswer,
			cid:      make(map[int64]int64),
			top:      make(map[int64]string),
			topEpoch: -1,
			pending:  make(map[int64][]Query),
			seen:     make(map[int64]bool),
		}
	}, runtime.Pinned(0))
	s.C.Connect(labels.Stage(), 0, st, func(runtime.Message) uint64 { return 0 }, labels.Codec())
	s.C.Connect(uses.Stage(), 0, st, func(runtime.Message) uint64 { return 0 }, uses.Codec())
	s.C.Connect(queries.Stage(), 0, st, func(runtime.Message) uint64 { return 0 }, codec.Gob[Query]())

	return &App{Scope: s, Tweets: tweetsIn, Queries: queriesIn, Done: s.C.NewProbe(st)}, nil
}

// Advance completes the current epoch on both inputs.
func (a *App) Advance() {
	a.Tweets.Advance()
	a.Queries.Advance()
}

// Close closes both inputs.
func (a *App) Close() {
	a.Tweets.Close()
	a.Queries.Close()
}
