package socialgraph

import (
	"math/rand"
	"sync"
	"testing"

	"naiad/internal/runtime"
	"naiad/internal/testutil"
	"naiad/internal/workload"
)

// TestComponentsMatchUnionFindAcrossEpochs streams random mention edges
// over many epochs with a fresh query per user at the end, and checks the
// application's component answers against a union-find over everything
// ingested — the incremental dataflow must agree with the batch oracle.
func TestComponentsMatchUnionFindAcrossEpochs(t *testing.T) {
	const users = 120
	const epochs = 6
	r := rand.New(rand.NewSource(testutil.Seed(t)))

	var mu sync.Mutex
	answers := map[int64]Answer{}
	cfg := runtime.Config{Processes: 2, WorkersPerProcess: 2, Accumulation: runtime.AccLocalGlobal}
	app, err := Build(cfg, Fresh, func(a Answer) {
		mu.Lock()
		answers[a.ID] = a
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Scope.C.Start(); err != nil {
		t.Fatal(err)
	}

	var allEdges []workload.Edge
	for e := 0; e < epochs; e++ {
		var tweets []workload.Tweet
		for i := 0; i < 25; i++ {
			u := int64(r.Intn(users))
			m := int64(r.Intn(users))
			if u == m {
				continue
			}
			tweets = append(tweets, workload.Tweet{User: u, Mentions: []int64{m}, Hashtags: []string{"#t"}})
			allEdges = append(allEdges, workload.Edge{Src: u, Dst: m})
		}
		app.Tweets.Send(tweets...)
		app.Advance()
	}
	// Final epoch: one query per user.
	for u := int64(0); u < users; u++ {
		app.Queries.Send(Query{ID: u, User: u})
	}
	app.Advance()
	app.Close()
	if err := app.Scope.C.Join(); err != nil {
		t.Fatal(err)
	}

	want := workload.ExpectedWCC(allEdges)
	mu.Lock()
	defer mu.Unlock()
	if len(answers) != users {
		t.Fatalf("answered %d of %d queries", len(answers), users)
	}
	for u := int64(0); u < users; u++ {
		a := answers[u]
		wc, touched := want[u]
		if !touched {
			wc = u // isolated users are their own component
		}
		if a.CID != wc {
			t.Fatalf("user %d: app component %d, union-find %d", u, a.CID, wc)
		}
	}
}
