// Package graph models the logical structure of a timely dataflow graph
// (Naiad §2.1, §4.3): stages connected by connectors, organized into nested
// loop contexts with system-provided ingress, egress, and feedback stages.
//
// The package validates the structural constraints the paper imposes (edges
// enter a loop only through ingress, leave only through egress, and every
// cycle passes through a feedback stage), and computes the minimal path
// summaries Ψ[l1,l2] between all pairs of locations that the progress
// tracker uses to evaluate the could-result-in relation (§2.3).
package graph

import (
	"fmt"

	ts "naiad/internal/timestamp"
)

// StageID identifies a logical stage.
type StageID int32

// ConnectorID identifies a logical connector (a stage-to-stage edge).
type ConnectorID int32

// Role classifies a stage by its timestamp action.
type Role uint8

const (
	// RoleNormal stages pass timestamps through unchanged.
	RoleNormal Role = iota
	// RoleInput stages introduce external epochs into the graph.
	RoleInput
	// RoleIngress stages push a new loop counter (entering a loop).
	RoleIngress
	// RoleEgress stages pop the innermost loop counter (leaving a loop).
	RoleEgress
	// RoleFeedback stages increment the innermost loop counter.
	RoleFeedback
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleNormal:
		return "normal"
	case RoleInput:
		return "input"
	case RoleIngress:
		return "ingress"
	case RoleEgress:
		return "egress"
	case RoleFeedback:
		return "feedback"
	}
	return fmt.Sprintf("role(%d)", uint8(r))
}

// Stage is a logical dataflow stage. InDepth is the loop depth of
// timestamps arriving on its inputs; OutDepth of timestamps it emits.
// They differ only for ingress (+1) and egress (-1) stages.
type Stage struct {
	ID      StageID
	Name    string
	Role    Role
	InDepth uint8
}

// OutDepth returns the loop depth of timestamps the stage emits.
func (s *Stage) OutDepth() uint8 {
	switch s.Role {
	case RoleIngress:
		return s.InDepth + 1
	case RoleEgress:
		return s.InDepth - 1
	default:
		return s.InDepth
	}
}

// summary returns the timestamp action applied between the stage's inputs
// and outputs.
func (s *Stage) summary() ts.Summary {
	id := ts.Identity(s.InDepth)
	switch s.Role {
	case RoleIngress:
		return id.ThenIngress()
	case RoleEgress:
		return id.ThenEgress()
	case RoleFeedback:
		return id.ThenFeedback()
	default:
		return id
	}
}

// Connector is a logical edge from the output of Src to the input of Dst.
// Messages on a connector carry timestamps at Src's output depth.
type Connector struct {
	ID       ConnectorID
	Src, Dst StageID
}

// Location identifies a stage or connector for pointstamp purposes.
// Stages map to even values, connectors to odd, so Locations are compact
// map keys and can index dense slices via Index.
type Location int32

// StageLoc returns the location of a stage.
func StageLoc(s StageID) Location { return Location(s) << 1 }

// ConnLoc returns the location of a connector.
func ConnLoc(c ConnectorID) Location { return Location(c)<<1 | 1 }

// IsStage reports whether the location is a stage.
func (l Location) IsStage() bool { return l&1 == 0 }

// Stage returns the StageID; valid only when IsStage.
func (l Location) Stage() StageID { return StageID(l >> 1) }

// Conn returns the ConnectorID; valid only when !IsStage.
func (l Location) Conn() ConnectorID { return ConnectorID(l >> 1) }

// Graph is a logical timely dataflow graph under construction or frozen for
// execution. Construct with New, add stages and connectors, then call
// Validate (or Summaries, which validates) before execution.
type Graph struct {
	stages     []Stage
	connectors []Connector
	outConns   [][]ConnectorID // per stage
	inConns    [][]ConnectorID // per stage
	frozen     bool
	summaries  [][]ts.SummarySet // [src location][dst location], built on freeze
	reachFrom  [][]Location      // per location index: locations it can reach (non-empty Ψ)
	reachTo    [][]Location      // per location index: locations that can reach it
}

// New returns an empty logical graph.
func New() *Graph {
	return &Graph{}
}

// AddStage adds a stage with the given name, role, and input loop depth,
// returning its id. Input stages must be at depth 0.
func (g *Graph) AddStage(name string, role Role, inDepth uint8) StageID {
	if g.frozen {
		panic("graph: AddStage after freeze")
	}
	if role == RoleInput && inDepth != 0 {
		panic("graph: input stages live at loop depth 0")
	}
	if role == RoleEgress && inDepth == 0 {
		panic("graph: egress stage at depth 0 has nothing to pop")
	}
	if role == RoleFeedback && inDepth == 0 {
		panic("graph: feedback stage must be inside a loop")
	}
	id := StageID(len(g.stages))
	g.stages = append(g.stages, Stage{ID: id, Name: name, Role: role, InDepth: inDepth})
	g.outConns = append(g.outConns, nil)
	g.inConns = append(g.inConns, nil)
	return id
}

// AddConnector links src's output to dst's input and returns the connector
// id. The loop depths must agree: src.OutDepth() == dst.InDepth.
func (g *Graph) AddConnector(src, dst StageID) ConnectorID {
	if g.frozen {
		panic("graph: AddConnector after freeze")
	}
	s, d := g.stage(src), g.stage(dst)
	if s.OutDepth() != d.InDepth {
		panic(fmt.Sprintf("graph: connector %s→%s crosses loop depths %d→%d without ingress/egress",
			s.Name, d.Name, s.OutDepth(), d.InDepth))
	}
	if d.Role == RoleInput {
		panic("graph: input stages accept no connectors")
	}
	id := ConnectorID(len(g.connectors))
	g.connectors = append(g.connectors, Connector{ID: id, Src: src, Dst: dst})
	g.outConns[src] = append(g.outConns[src], id)
	g.inConns[dst] = append(g.inConns[dst], id)
	return id
}

func (g *Graph) stage(id StageID) *Stage {
	if int(id) >= len(g.stages) || id < 0 {
		panic(fmt.Sprintf("graph: unknown stage %d", id))
	}
	return &g.stages[id]
}

// Stage returns the stage with the given id.
func (g *Graph) Stage(id StageID) *Stage { return g.stage(id) }

// Connector returns the connector with the given id.
func (g *Graph) Connector(id ConnectorID) *Connector {
	if int(id) >= len(g.connectors) || id < 0 {
		panic(fmt.Sprintf("graph: unknown connector %d", id))
	}
	return &g.connectors[id]
}

// NumStages returns the number of stages.
func (g *Graph) NumStages() int { return len(g.stages) }

// NumConnectors returns the number of connectors.
func (g *Graph) NumConnectors() int { return len(g.connectors) }

// Inputs returns the connectors arriving at a stage, in creation order.
func (g *Graph) Inputs(s StageID) []ConnectorID { return g.inConns[s] }

// Outputs returns the connectors leaving a stage, in creation order.
func (g *Graph) Outputs(s StageID) []ConnectorID { return g.outConns[s] }

// NumLocations returns the number of distinct pointstamp locations.
func (g *Graph) NumLocations() int { return 2 * max(len(g.stages), len(g.connectors)) }

// LocationDepth returns the loop depth of timestamps observed at l:
// a stage location carries its input depth, a connector its source's
// output depth.
func (g *Graph) LocationDepth(l Location) uint8 {
	if l.IsStage() {
		return g.stage(l.Stage()).InDepth
	}
	c := g.Connector(l.Conn())
	return g.stage(c.Src).OutDepth()
}

// LocationName renders a location for diagnostics.
func (g *Graph) LocationName(l Location) string {
	if l.IsStage() {
		return g.stage(l.Stage()).Name
	}
	c := g.Connector(l.Conn())
	return fmt.Sprintf("%s→%s", g.stage(c.Src).Name, g.stage(c.Dst).Name)
}

// Validate checks the structural constraints of timely dataflow graphs:
// depth consistency (enforced during construction), and that every cycle
// passes through a feedback stage — equivalently, that the graph with
// feedback stages' output edges removed is acyclic (§2.1).
func (g *Graph) Validate() error {
	// Kahn's algorithm on the graph minus feedback outputs.
	indeg := make([]int, len(g.stages))
	for _, c := range g.connectors {
		if g.stage(c.Src).Role == RoleFeedback {
			continue
		}
		indeg[c.Dst]++
	}
	queue := make([]StageID, 0, len(g.stages))
	for i := range g.stages {
		if indeg[i] == 0 {
			queue = append(queue, StageID(i))
		}
	}
	seen := 0
	for len(queue) > 0 {
		s := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, cid := range g.outConns[s] {
			if g.stage(s).Role == RoleFeedback {
				continue
			}
			c := g.Connector(cid)
			indeg[c.Dst]--
			if indeg[c.Dst] == 0 {
				queue = append(queue, c.Dst)
			}
		}
	}
	if seen != len(g.stages) {
		return fmt.Errorf("graph: cycle without a feedback stage (only %d of %d stages orderable)", seen, len(g.stages))
	}
	return nil
}

// Freeze validates the graph and computes all-pairs minimal path summaries.
// After Freeze the graph is immutable.
func (g *Graph) Freeze() error {
	if g.frozen {
		return nil
	}
	if err := g.Validate(); err != nil {
		return err
	}
	g.computeSummaries()
	g.computeReachability()
	g.frozen = true
	return nil
}

// Frozen reports whether Freeze has completed.
func (g *Graph) Frozen() bool { return g.frozen }

// locIndex densely indexes locations: stages first, then connectors.
func (g *Graph) locIndex(l Location) int {
	if l.IsStage() {
		return int(l.Stage())
	}
	return len(g.stages) + int(l.Conn())
}

// indexLoc is the inverse of locIndex.
func (g *Graph) indexLoc(i int) Location {
	if i < len(g.stages) {
		return StageLoc(StageID(i))
	}
	return ConnLoc(ConnectorID(i - len(g.stages)))
}

// computeSummaries runs the worklist relaxation of §2.3: starting from the
// identity summary at every location, it extends summaries across hops
// (connector→stage with identity, stage→outgoing connector with the
// stage's timestamp action), keeping per-pair antichains of minimal
// summaries. Feedback increments guarantee the fixpoint terminates: going
// around a loop again always yields a dominated summary.
func (g *Graph) computeSummaries() {
	n := len(g.stages) + len(g.connectors)
	g.summaries = make([][]ts.SummarySet, n)
	for i := range g.summaries {
		g.summaries[i] = make([]ts.SummarySet, n)
	}

	type hop struct {
		from, to int
		s        ts.Summary
	}
	var hops []hop
	hopsFrom := make([][]hop, n)
	for ci := range g.connectors {
		c := &g.connectors[ci]
		from := len(g.stages) + ci
		to := int(c.Dst)
		h := hop{from: from, to: to, s: ts.Identity(g.LocationDepth(ConnLoc(c.ID)))}
		hops = append(hops, h)
		hopsFrom[from] = append(hopsFrom[from], h)
	}
	for si := range g.stages {
		st := &g.stages[si]
		act := st.summary()
		for _, cid := range g.outConns[si] {
			h := hop{from: si, to: len(g.stages) + int(cid), s: act}
			hops = append(hops, h)
			hopsFrom[si] = append(hopsFrom[si], h)
		}
	}

	// Seed with identities and relax.
	type item struct{ src, at int }
	var work []item
	for i := 0; i < n; i++ {
		g.summaries[i][i].Insert(ts.Identity(g.LocationDepth(g.indexLoc(i))))
		work = append(work, item{i, i})
	}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		for _, h := range hopsFrom[it.at] {
			for _, s := range g.summaries[it.src][it.at].Elements() {
				if g.summaries[it.src][h.to].Insert(s.Then(h.s)) {
					work = append(work, item{it.src, h.to})
				}
			}
		}
	}
}

// computeReachability projects the summary table onto a boolean relation:
// for every location, the lists of locations it can reach and be reached
// from (non-empty Ψ). The progress tracker iterates these lists instead of
// scanning all active pointstamps, so precursor maintenance only visits
// locations that can actually affect each other (§3.3).
func (g *Graph) computeReachability() {
	n := len(g.stages) + len(g.connectors)
	g.reachFrom = make([][]Location, n)
	g.reachTo = make([][]Location, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if g.summaries[i][j].Empty() {
				continue
			}
			g.reachFrom[i] = append(g.reachFrom[i], g.indexLoc(j))
			g.reachTo[j] = append(g.reachTo[j], g.indexLoc(i))
		}
	}
}

// LocIndex densely indexes locations (stages first, then connectors) for
// slice-backed per-location state; inverse of LocOfIndex.
func (g *Graph) LocIndex(l Location) int { return g.locIndex(l) }

// LocOfIndex returns the location with the given dense index.
func (g *Graph) LocOfIndex(i int) Location { return g.indexLoc(i) }

// LocCount returns the number of dense location indexes (stages plus
// connectors; NumLocations bounds the sparse Location value space instead).
func (g *Graph) LocCount() int { return len(g.stages) + len(g.connectors) }

// ReachFrom returns the locations reachable from l — those with a
// non-empty path-summary antichain Ψ[l,·], including l itself (identity
// path). The graph must be frozen; the slice is shared, do not modify.
func (g *Graph) ReachFrom(l Location) []Location {
	if !g.frozen {
		panic("graph: ReachFrom before Freeze")
	}
	return g.reachFrom[g.locIndex(l)]
}

// ReachTo returns the locations that can reach l — those with a non-empty
// Ψ[·,l], including l itself. The graph must be frozen; the slice is
// shared, do not modify.
func (g *Graph) ReachTo(l Location) []Location {
	if !g.frozen {
		panic("graph: ReachTo before Freeze")
	}
	return g.reachTo[g.locIndex(l)]
}

// Reaches reports whether any path leads from l1 to l2 (Ψ[l1,l2] is
// non-empty). The graph must be frozen.
func (g *Graph) Reaches(l1, l2 Location) bool {
	if !g.frozen {
		panic("graph: Reaches before Freeze")
	}
	return !g.summaries[g.locIndex(l1)][g.locIndex(l2)].Empty()
}

// PathSummary returns the antichain of minimal path summaries from l1 to
// l2. The graph must be frozen. The returned set is shared; do not modify.
func (g *Graph) PathSummary(l1, l2 Location) *ts.SummarySet {
	if !g.frozen {
		panic("graph: PathSummary before Freeze")
	}
	return &g.summaries[g.locIndex(l1)][g.locIndex(l2)]
}

// CouldResultIn reports whether a pointstamp (t1 at l1) could result in a
// pointstamp (t2 at l2): whether some path summary maps t1 at or below t2.
func (g *Graph) CouldResultIn(t1 ts.Timestamp, l1 Location, t2 ts.Timestamp, l2 Location) bool {
	return g.PathSummary(l1, l2).CouldResultIn(t1, t2)
}
