package graph

import (
	"math/rand"
	"testing"

	"naiad/internal/testutil"
	ts "naiad/internal/timestamp"
)

// randomTimelyGraph builds a random structurally-valid timely graph: a
// pipeline of stages with optional single-level loops attached.
func randomTimelyGraph(r *rand.Rand) (*Graph, []StageID) {
	g := New()
	var stages []StageID
	in := g.AddStage("in", RoleInput, 0)
	stages = append(stages, in)
	prev := in
	n := 2 + r.Intn(4)
	for i := 0; i < n; i++ {
		s := g.AddStage("s", RoleNormal, 0)
		g.AddConnector(prev, s)
		stages = append(stages, s)
		if r.Intn(2) == 0 {
			// Attach a loop: s → I → body → {F → body, E → next}.
			ing := g.AddStage("I", RoleIngress, 0)
			body := g.AddStage("body", RoleNormal, 1)
			fb := g.AddStage("F", RoleFeedback, 1)
			eg := g.AddStage("E", RoleEgress, 1)
			g.AddConnector(s, ing)
			g.AddConnector(ing, body)
			g.AddConnector(body, fb)
			g.AddConnector(fb, body)
			g.AddConnector(body, eg)
			stages = append(stages, ing, body, fb, eg)
			s = eg
		}
		prev = s
	}
	if err := g.Freeze(); err != nil {
		panic(err)
	}
	return g, stages
}

func randomTimeAt(r *rand.Rand, g *Graph, l Location) ts.Timestamp {
	epoch := int64(r.Intn(3))
	counters := make([]int64, g.LocationDepth(l))
	for i := range counters {
		counters[i] = int64(r.Intn(3))
	}
	return ts.Make(epoch, counters...)
}

// TestCouldResultInDownwardClosed: if (t1,l1) could-result-in (t2,l2),
// then any earlier t1' ≤ t1 also could-result-in (t2,l2), and any later
// t2' ≥ t2 is also reachable. This is the monotonicity the progress
// tracker's frontier reasoning depends on.
func TestCouldResultInDownwardClosed(t *testing.T) {
	r := rand.New(rand.NewSource(testutil.Seed(t)))
	for trial := 0; trial < 60; trial++ {
		g, stages := randomTimelyGraph(r)
		for probe := 0; probe < 200; probe++ {
			l1 := StageLoc(stages[r.Intn(len(stages))])
			l2 := StageLoc(stages[r.Intn(len(stages))])
			t1 := randomTimeAt(r, g, l1)
			t2 := randomTimeAt(r, g, l2)
			if !g.CouldResultIn(t1, l1, t2, l2) {
				continue
			}
			// Earlier source time.
			if t1.Epoch > 0 {
				t1e := ts.Make(t1.Epoch-1, t1.Counters[:t1.Depth]...)
				if !g.CouldResultIn(t1e, l1, t2, l2) {
					t.Fatalf("not downward closed in source: %v→%v ok but %v→%v not",
						t1, t2, t1e, t2)
				}
			}
			// Later target time.
			t2l := ts.Make(t2.Epoch+1, t2.Counters[:t2.Depth]...)
			if !g.CouldResultIn(t1, l1, t2l, l2) {
				t.Fatalf("not upward closed in target: %v→%v ok but %v→%v not",
					t1, t2, t1, t2l)
			}
		}
	}
}

// TestCouldResultInTransitive: reachability composes — if a→b and b→c
// then a→c (over stage locations).
func TestCouldResultInTransitive(t *testing.T) {
	r := rand.New(rand.NewSource(testutil.Seed(t)))
	for trial := 0; trial < 40; trial++ {
		g, stages := randomTimelyGraph(r)
		for probe := 0; probe < 200; probe++ {
			la := StageLoc(stages[r.Intn(len(stages))])
			lb := StageLoc(stages[r.Intn(len(stages))])
			lc := StageLoc(stages[r.Intn(len(stages))])
			ta := randomTimeAt(r, g, la)
			tb := randomTimeAt(r, g, lb)
			tc := randomTimeAt(r, g, lc)
			if g.CouldResultIn(ta, la, tb, lb) && g.CouldResultIn(tb, lb, tc, lc) {
				if !g.CouldResultIn(ta, la, tc, lc) {
					t.Fatalf("not transitive: %v@%d→%v@%d→%v@%d", ta, la, tb, lb, tc, lc)
				}
			}
		}
	}
}

// TestCouldResultInReflexive: every pointstamp reaches itself via the
// empty path.
func TestCouldResultInReflexive(t *testing.T) {
	r := rand.New(rand.NewSource(testutil.Seed(t)))
	g, stages := randomTimelyGraph(r)
	for _, s := range stages {
		l := StageLoc(s)
		tm := randomTimeAt(r, g, l)
		if !g.CouldResultIn(tm, l, tm, l) {
			t.Fatalf("not reflexive at %v@%v", tm, g.LocationName(l))
		}
	}
}

// TestSummariesAgreeWithSimulation: for every pair of adjacent locations,
// the computed path summary applied to a time matches stepping the
// timestamp through the structural action by hand.
func TestSummariesAgreeWithSimulation(t *testing.T) {
	r := rand.New(rand.NewSource(testutil.Seed(t)))
	for trial := 0; trial < 40; trial++ {
		g, _ := randomTimelyGraph(r)
		for ci := 0; ci < g.NumConnectors(); ci++ {
			conn := g.Connector(ConnectorID(ci))
			src := g.Stage(conn.Src)
			from := StageLoc(conn.Src)
			to := ConnLoc(conn.ID)
			tm := randomTimeAt(r, g, from)
			var want ts.Timestamp
			switch src.Role {
			case RoleIngress:
				want = tm.PushLoop()
			case RoleEgress:
				want = tm.PopLoop()
			case RoleFeedback:
				want = tm.Tick()
			default:
				want = tm
			}
			if !g.CouldResultIn(tm, from, want, to) {
				t.Fatalf("one-hop summary missing: %v from %s to %s",
					tm, g.LocationName(from), g.LocationName(to))
			}
		}
	}
}
