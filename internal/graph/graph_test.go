package graph

import (
	"testing"

	ts "naiad/internal/timestamp"
)

// buildLinear returns input → A → B with its connectors.
func buildLinear() (*Graph, StageID, StageID, StageID, ConnectorID, ConnectorID) {
	g := New()
	in := g.AddStage("in", RoleInput, 0)
	a := g.AddStage("A", RoleNormal, 0)
	b := g.AddStage("B", RoleNormal, 0)
	c1 := g.AddConnector(in, a)
	c2 := g.AddConnector(a, b)
	return g, in, a, b, c1, c2
}

// buildLoop returns the Figure 3 shape:
// in → A → I → B → C → E → out, with F: C → B feedback.
func buildLoop() (*Graph, map[string]StageID) {
	g := New()
	s := map[string]StageID{}
	s["in"] = g.AddStage("in", RoleInput, 0)
	s["A"] = g.AddStage("A", RoleNormal, 0)
	s["I"] = g.AddStage("I", RoleIngress, 0)
	s["B"] = g.AddStage("B", RoleNormal, 1)
	s["C"] = g.AddStage("C", RoleNormal, 1)
	s["F"] = g.AddStage("F", RoleFeedback, 1)
	s["E"] = g.AddStage("E", RoleEgress, 1)
	s["out"] = g.AddStage("out", RoleNormal, 0)
	g.AddConnector(s["in"], s["A"])
	g.AddConnector(s["A"], s["I"])
	g.AddConnector(s["I"], s["B"])
	g.AddConnector(s["B"], s["C"])
	g.AddConnector(s["C"], s["F"])
	g.AddConnector(s["F"], s["B"])
	g.AddConnector(s["C"], s["E"])
	g.AddConnector(s["E"], s["out"])
	return g, s
}

func TestLinearGraphConstruction(t *testing.T) {
	g, in, a, b, c1, c2 := buildLinear()
	if g.NumStages() != 3 || g.NumConnectors() != 2 {
		t.Fatalf("sizes: %d stages %d connectors", g.NumStages(), g.NumConnectors())
	}
	if g.Connector(c1).Src != in || g.Connector(c1).Dst != a {
		t.Fatal("connector 1 endpoints")
	}
	if got := g.Outputs(a); len(got) != 1 || got[0] != c2 {
		t.Fatalf("Outputs(A) = %v", got)
	}
	if got := g.Inputs(b); len(got) != 1 || got[0] != c2 {
		t.Fatalf("Inputs(B) = %v", got)
	}
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	if !g.Frozen() {
		t.Fatal("not frozen")
	}
}

func TestDepthMismatchPanics(t *testing.T) {
	g := New()
	a := g.AddStage("A", RoleNormal, 0)
	b := g.AddStage("B", RoleNormal, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for depth-crossing connector")
		}
	}()
	g.AddConnector(a, b)
}

func TestStageConstructionPanics(t *testing.T) {
	for name, f := range map[string]func(*Graph){
		"input at depth": func(g *Graph) { g.AddStage("x", RoleInput, 1) },
		"egress at 0":    func(g *Graph) { g.AddStage("x", RoleEgress, 0) },
		"feedback at 0":  func(g *Graph) { g.AddStage("x", RoleFeedback, 0) },
		"conn into input": func(g *Graph) {
			a := g.AddStage("a", RoleNormal, 0)
			i := g.AddStage("i", RoleInput, 0)
			g.AddConnector(a, i)
		},
		"unknown stage":    func(g *Graph) { g.Stage(42) },
		"unknown conn":     func(g *Graph) { g.Connector(42) },
		"add after freeze": func(g *Graph) { _ = g.Freeze(); g.AddStage("late", RoleNormal, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f(New())
		}()
	}
}

func TestValidateRejectsCycleWithoutFeedback(t *testing.T) {
	g := New()
	a := g.AddStage("A", RoleNormal, 0)
	b := g.AddStage("B", RoleNormal, 0)
	g.AddConnector(a, b)
	g.AddConnector(b, a)
	if err := g.Validate(); err == nil {
		t.Fatal("cycle without feedback must be rejected")
	}
}

func TestValidateAcceptsFeedbackCycle(t *testing.T) {
	g, _ := buildLoop()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLocationEncoding(t *testing.T) {
	sl := StageLoc(5)
	if !sl.IsStage() || sl.Stage() != 5 {
		t.Fatalf("stage loc roundtrip: %v", sl)
	}
	cl := ConnLoc(7)
	if cl.IsStage() || cl.Conn() != 7 {
		t.Fatalf("conn loc roundtrip: %v", cl)
	}
	if sl == Location(cl) {
		t.Fatal("stage and connector locations must not collide")
	}
}

func TestLocationDepthAndName(t *testing.T) {
	g, s := buildLoop()
	if g.LocationDepth(StageLoc(s["B"])) != 1 {
		t.Error("B is inside the loop")
	}
	if g.LocationDepth(StageLoc(s["I"])) != 0 {
		t.Error("ingress receives outer timestamps")
	}
	// Connector I→B carries inner timestamps (ingress output depth 1).
	var ib ConnectorID = -1
	for i := 0; i < g.NumConnectors(); i++ {
		c := g.Connector(ConnectorID(i))
		if c.Src == s["I"] && c.Dst == s["B"] {
			ib = ConnectorID(i)
		}
	}
	if g.LocationDepth(ConnLoc(ib)) != 1 {
		t.Error("I→B carries depth-1 timestamps")
	}
	if g.LocationName(ConnLoc(ib)) != "I→B" {
		t.Errorf("name = %q", g.LocationName(ConnLoc(ib)))
	}
	if g.LocationName(StageLoc(s["B"])) != "B" {
		t.Error("stage name")
	}
}

func TestOutDepths(t *testing.T) {
	g, s := buildLoop()
	if g.Stage(s["I"]).OutDepth() != 1 {
		t.Error("ingress raises depth")
	}
	if g.Stage(s["E"]).OutDepth() != 0 {
		t.Error("egress lowers depth")
	}
	if g.Stage(s["F"]).OutDepth() != 1 {
		t.Error("feedback preserves depth")
	}
}

func TestPathSummariesLinear(t *testing.T) {
	g, in, _, b, _, c2 := buildLinear()
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	// in → ... → B is the identity.
	ss := g.PathSummary(StageLoc(in), StageLoc(b))
	if ss.Empty() {
		t.Fatal("no path in→B")
	}
	if !g.CouldResultIn(ts.Root(0), StageLoc(in), ts.Root(0), StageLoc(b)) {
		t.Error("equal time along identity path")
	}
	if g.CouldResultIn(ts.Root(1), StageLoc(in), ts.Root(0), StageLoc(b)) {
		t.Error("later epoch cannot reach earlier")
	}
	// No path backwards.
	if !g.PathSummary(StageLoc(b), StageLoc(in)).Empty() {
		t.Error("B must not reach in")
	}
	if !g.PathSummary(ConnLoc(c2), StageLoc(in)).Empty() {
		t.Error("connector must not reach input")
	}
}

func TestPathSummariesLoop(t *testing.T) {
	g, s := buildLoop()
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	bLoc := StageLoc(s["B"])
	// B to itself around the loop: minimal non-identity summary is +1.
	ss := g.PathSummary(bLoc, bLoc)
	found := false
	for _, sum := range ss.Elements() {
		if sum == ts.Identity(1) {
			found = true
		}
	}
	if !found {
		t.Fatalf("B→B must include the identity, got %v", ss.Elements())
	}
	// Iteration i at B can reach iteration i+1 at B but not i.
	t1 := ts.Make(0, 1)
	if !g.CouldResultIn(t1, bLoc, ts.Make(0, 2), bLoc) {
		t.Error("B@(0,1) should reach B@(0,2) via feedback")
	}
	if !g.CouldResultIn(t1, bLoc, t1, bLoc) {
		t.Error("reflexive could-result-in via empty path")
	}
	// B inside the loop reaches the output at the outer time.
	outLoc := StageLoc(s["out"])
	if !g.CouldResultIn(ts.Make(3, 9), bLoc, ts.Root(3), outLoc) {
		t.Error("egress erases the loop counter")
	}
	if g.CouldResultIn(ts.Make(3, 9), bLoc, ts.Root(2), outLoc) {
		t.Error("cannot reach an earlier epoch")
	}
	// The input reaches B at iteration 0 of the same epoch.
	if !g.CouldResultIn(ts.Root(0), StageLoc(s["in"]), ts.Make(0, 0), bLoc) {
		t.Error("in should reach B at iteration 0")
	}
	if g.CouldResultIn(ts.Root(0), StageLoc(s["in"]), ts.Root(0), bLoc) {
		t.Error("depth mismatch times are unordered")
	}
}

func TestNestedLoopSummaries(t *testing.T) {
	// in → I1 → I2 → X → F2 → X (inner), X → E2 → F1 → I2 (outer back-edge),
	// E2 → E1 → out.
	g := New()
	in := g.AddStage("in", RoleInput, 0)
	i1 := g.AddStage("I1", RoleIngress, 0)
	i2 := g.AddStage("I2", RoleIngress, 1)
	x := g.AddStage("X", RoleNormal, 2)
	f2 := g.AddStage("F2", RoleFeedback, 2)
	e2 := g.AddStage("E2", RoleEgress, 2)
	f1 := g.AddStage("F1", RoleFeedback, 1)
	e1 := g.AddStage("E1", RoleEgress, 1)
	out := g.AddStage("out", RoleNormal, 0)
	g.AddConnector(in, i1)
	g.AddConnector(i1, i2)
	g.AddConnector(i2, x)
	g.AddConnector(x, f2)
	g.AddConnector(f2, x)
	g.AddConnector(x, e2)
	g.AddConnector(e2, f1)
	g.AddConnector(f1, i2)
	g.AddConnector(e2, e1)
	g.AddConnector(e1, out)
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	xLoc := StageLoc(x)
	// Inner iteration advances only the innermost counter.
	if !g.CouldResultIn(ts.Make(0, 1, 1), xLoc, ts.Make(0, 1, 2), xLoc) {
		t.Error("inner feedback: (0,<1,1>) → (0,<1,2>)")
	}
	// Outer iteration resets the inner counter.
	if !g.CouldResultIn(ts.Make(0, 1, 5), xLoc, ts.Make(0, 2, 0), xLoc) {
		t.Error("outer feedback: (0,<1,5>) → (0,<2,0>)")
	}
	if g.CouldResultIn(ts.Make(0, 1, 5), xLoc, ts.Make(0, 1, 4), xLoc) {
		t.Error("cannot go backwards in inner loop")
	}
	// X escapes both loops to out, erasing both counters.
	if !g.CouldResultIn(ts.Make(4, 7, 9), xLoc, ts.Root(4), StageLoc(out)) {
		t.Error("nested egress to outer context")
	}
}

func TestPathSummaryBeforeFreezePanics(t *testing.T) {
	g, in, a, _, _, _ := buildLinear()
	_ = a
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.PathSummary(StageLoc(in), StageLoc(a))
}

func TestFreezeIdempotent(t *testing.T) {
	g, _, _, _, _, _ := buildLinear()
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
}

func TestRoleString(t *testing.T) {
	for r, want := range map[Role]string{
		RoleNormal: "normal", RoleInput: "input", RoleIngress: "ingress",
		RoleEgress: "egress", RoleFeedback: "feedback", Role(9): "role(9)",
	} {
		if r.String() != want {
			t.Errorf("Role(%d).String() = %q, want %q", r, r.String(), want)
		}
	}
}

// TestReachabilityTable checks the frozen reachability exports against the
// path-summary table they are derived from: ReachFrom/ReachTo must list
// exactly the location pairs with a non-empty summary set, and the dense
// index round-trip must cover every location.
func TestReachabilityTable(t *testing.T) {
	g, s := buildLoop()
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	if n := g.LocCount(); n != 16 { // 8 stages + 8 connectors
		t.Fatalf("LocCount = %d, want 16", n)
	}
	for i := 0; i < g.LocCount(); i++ {
		if got := g.LocIndex(g.LocOfIndex(i)); got != i {
			t.Fatalf("dense index round-trip: %d -> %v -> %d", i, g.LocOfIndex(i), got)
		}
	}
	for i := 0; i < g.LocCount(); i++ {
		l := g.LocOfIndex(i)
		from := map[Location]bool{}
		for _, m := range g.ReachFrom(l) {
			from[m] = true
		}
		to := map[Location]bool{}
		for _, m := range g.ReachTo(l) {
			to[m] = true
		}
		for j := 0; j < g.LocCount(); j++ {
			m := g.LocOfIndex(j)
			if want := !g.PathSummary(l, m).Empty(); from[m] != want {
				t.Errorf("ReachFrom(%v) includes %v = %v, summary empty = %v", l, m, from[m], !want)
			}
			if want := !g.PathSummary(m, l).Empty(); to[m] != want {
				t.Errorf("ReachTo(%v) includes %v = %v, summary empty = %v", l, m, to[m], !want)
			}
			if got, want := g.Reaches(l, m), !g.PathSummary(l, m).Empty(); got != want {
				t.Errorf("Reaches(%v, %v) = %v, want %v", l, m, got, want)
			}
		}
	}
	// Spot checks: the loop body reaches itself via feedback; out reaches
	// nothing but itself; in reaches everything.
	b := StageLoc(s["B"])
	if !g.Reaches(b, b) {
		t.Error("loop body should reach itself")
	}
	out := StageLoc(s["out"])
	if len(g.ReachFrom(out)) != 1 || g.ReachFrom(out)[0] != out {
		t.Errorf("ReachFrom(out) = %v, want only itself", g.ReachFrom(out))
	}
	if got := len(g.ReachFrom(StageLoc(s["in"]))); got != g.LocCount() {
		t.Errorf("input reaches %d locations, want all %d", got, g.LocCount())
	}
}

// TestReachabilityBeforeFreezePanics ensures the table is only served on
// frozen graphs.
func TestReachabilityBeforeFreezePanics(t *testing.T) {
	g, _, a, _, _, _ := buildLinear()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.ReachFrom(StageLoc(a))
}
