// Package codec serializes record batches crossing process boundaries.
// Naiad serializes all inter-process data; this package provides a compact
// little-endian binary encoding with fast paths for the record types the
// workloads use, plus a gob-based fallback for arbitrary types.
package codec

import (
	"encoding/binary"
	"fmt"
	"math"

	"naiad/internal/batchbuf"
)

// Encoder appends primitive values to a growing byte buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with the given initial capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Reset clears the buffer for reuse.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// PutUint8 appends one byte.
func (e *Encoder) PutUint8(v uint8) { e.buf = append(e.buf, v) }

// PutUint32 appends a little-endian uint32.
func (e *Encoder) PutUint32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// PutUint64 appends a little-endian uint64.
func (e *Encoder) PutUint64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// PutInt64 appends a little-endian int64.
func (e *Encoder) PutInt64(v int64) { e.PutUint64(uint64(v)) }

// PutFloat64 appends a float64 bit pattern.
func (e *Encoder) PutFloat64(v float64) {
	e.PutUint64(math.Float64bits(v))
}

// PutString appends a length-prefixed string.
func (e *Encoder) PutString(s string) {
	e.PutUint32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// PutBytes appends a length-prefixed byte slice.
func (e *Encoder) PutBytes(b []byte) {
	e.PutUint32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Decoder reads primitive values from a byte slice.
type Decoder struct {
	data []byte
	off  int
}

// NewDecoder returns a decoder over data.
func NewDecoder(data []byte) *Decoder { return &Decoder{data: data} }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.data) - d.off }

func (d *Decoder) need(n int) {
	if d.off+n > len(d.data) {
		panic(fmt.Sprintf("codec: truncated input: need %d bytes at offset %d of %d", n, d.off, len(d.data)))
	}
}

// Uint8 reads one byte.
func (d *Decoder) Uint8() uint8 {
	d.need(1)
	v := d.data[d.off]
	d.off++
	return v
}

// Uint32 reads a little-endian uint32.
func (d *Decoder) Uint32() uint32 {
	d.need(4)
	v := binary.LittleEndian.Uint32(d.data[d.off:])
	d.off += 4
	return v
}

// Uint64 reads a little-endian uint64.
func (d *Decoder) Uint64() uint64 {
	d.need(8)
	v := binary.LittleEndian.Uint64(d.data[d.off:])
	d.off += 8
	return v
}

// Int64 reads a little-endian int64.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Float64 reads a float64.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := int(d.Uint32())
	d.need(n)
	s := string(d.data[d.off : d.off+n])
	d.off += n
	return s
}

// BytesView reads a length-prefixed byte slice, aliasing the input. The
// view is valid only while the decoder's underlying buffer is: transport
// receive buffers and pooled frame buffers are recycled once the frame is
// decoded, so anything that outlives the decode — decoded records, vertex
// state, snapshot fragments — must copy (use Bytes) instead of retaining
// the view. Record codecs in particular must never alias the input; see the
// Codec contract.
func (d *Decoder) BytesView() []byte {
	n := int(d.Uint32())
	d.need(n)
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

// Bytes reads a length-prefixed byte slice into a fresh copy the caller
// owns. Use this — not BytesView — whenever the result outlives the frame
// being decoded.
func (d *Decoder) Bytes() []byte {
	return append([]byte(nil), d.BytesView()...)
}

// Count reads a uint32 element count and validates it against the bytes
// remaining, given a lower bound on the encoded size of one element. A
// count that could not possibly fit panics like any other corruption, so
// callers never size an allocation from an unvalidated length field.
func (d *Decoder) Count(minPerItem int) int {
	n := int(d.Uint32())
	if minPerItem < 1 {
		minPerItem = 1
	}
	if n > d.Remaining()/minPerItem {
		panic(fmt.Sprintf("codec: corrupt count: %d items claimed with %d bytes remaining", n, d.Remaining()))
	}
	return n
}

// Catch runs fn and converts a decode panic (truncated input, corrupt
// count, bad gob stream) into an error. Decoders deliberately panic on
// malformed input — inside one process that is a programming error — but
// bytes that crossed a network or a disk are untrusted, and callers on
// those paths wrap the decode in Catch.
func Catch(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("codec: invalid input: %v", r)
		}
	}()
	fn()
	return nil
}

// Codec serializes batches of records (as []any holding a uniform concrete
// type) for transmission between processes.
//
// Ownership contract: decoded records must be self-contained. The frame a
// Decoder reads from is typically a pooled transport buffer that is
// recycled as soon as the batch is decoded, so a codec must never build
// records that alias the decoder's input (via BytesView or any other
// zero-copy view) — copy with Decoder.Bytes / Decoder.String instead.
// Aliasing the input turns buffer recycling into silent record corruption.
type Codec interface {
	// EncodeBatch appends the encoding of records to enc.
	EncodeBatch(enc *Encoder, records []any)
	// DecodeBatch reads n records from dec.
	DecodeBatch(dec *Decoder, n int) []any
}

// BatchCodec is the columnar fast path a codec may optionally implement:
// whole typed record slices ([]T) encode and decode without boxing each
// record through any. The runtime probes for it with a type assertion and
// falls back to the boxed Codec methods when either side declines. The
// byte format MUST be identical to the boxed methods' — a frame written by
// EncodeColumn is decoded by DecodeBatch on a receiver without the typed
// path, and vice versa.
type BatchCodec interface {
	// EncodeColumn appends the encoding of a typed record slice (a []T, as
	// returned by batchbuf.Column.Slice) to enc. It reports false — writing
	// nothing — when the slice's element type is foreign to the codec.
	EncodeColumn(enc *Encoder, col any) bool
	// DecodeBatchCol reads n records into a typed batch (one reference,
	// owned by the caller), or returns nil when the codec has no typed path
	// for the stream. The same self-containment contract as DecodeBatch
	// applies: the batch must not alias the decoder's input.
	DecodeBatchCol(dec *Decoder, n int) *batchbuf.Batch
}

// funcCodec adapts per-record encode/decode functions for a concrete type.
type funcCodec[T any] struct {
	enc  func(*Encoder, T)
	dec  func(*Decoder) T
	pool *batchbuf.Pool[T]
}

func (c funcCodec[T]) EncodeBatch(enc *Encoder, records []any) {
	for _, r := range records {
		c.enc(enc, r.(T))
	}
}

func (c funcCodec[T]) DecodeBatch(dec *Decoder, n int) []any {
	out := make([]any, n)
	for i := range out {
		out[i] = c.dec(dec)
	}
	return out
}

// EncodeColumn implements BatchCodec: same bytes as EncodeBatch, no boxing.
func (c funcCodec[T]) EncodeColumn(enc *Encoder, col any) bool {
	data, ok := col.([]T)
	if !ok {
		return false
	}
	for _, r := range data {
		c.enc(enc, r)
	}
	return true
}

// DecodeBatchCol implements BatchCodec: decode into a pooled typed batch.
func (c funcCodec[T]) DecodeBatchCol(dec *Decoder, n int) *batchbuf.Batch {
	b, cl := c.pool.Get(n)
	for i := 0; i < n; i++ {
		cl.Data = append(cl.Data, c.dec(dec))
	}
	return b
}

// New builds a codec for T from per-record encode/decode functions. The
// result implements BatchCodec, decoding into the process-wide pooled
// arena for T.
func New[T any](enc func(*Encoder, T), dec func(*Decoder) T) Codec {
	return funcCodec[T]{enc: enc, dec: dec, pool: batchbuf.PoolFor[T]()}
}

// Int64 returns a codec for int64 records.
func Int64() Codec {
	return New(
		func(e *Encoder, v int64) { e.PutInt64(v) },
		func(d *Decoder) int64 { return d.Int64() },
	)
}

// Float64 returns a codec for float64 records.
func Float64() Codec {
	return New(
		func(e *Encoder, v float64) { e.PutFloat64(v) },
		func(d *Decoder) float64 { return d.Float64() },
	)
}

// String returns a codec for string records.
func String() Codec {
	return New(
		func(e *Encoder, v string) { e.PutString(v) },
		func(d *Decoder) string { return d.String() },
	)
}

