package codec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"naiad/internal/testutil"
)

func TestEncoderDecoderPrimitives(t *testing.T) {
	e := NewEncoder(64)
	e.PutUint8(7)
	e.PutUint32(1 << 30)
	e.PutUint64(1 << 60)
	e.PutInt64(-42)
	e.PutFloat64(3.25)
	e.PutString("héllo")
	e.PutBytes([]byte{1, 2, 3})
	d := NewDecoder(e.Bytes())
	if d.Uint8() != 7 || d.Uint32() != 1<<30 || d.Uint64() != 1<<60 {
		t.Fatal("unsigned roundtrip")
	}
	if d.Int64() != -42 {
		t.Fatal("int64 roundtrip")
	}
	if d.Float64() != 3.25 {
		t.Fatal("float64 roundtrip")
	}
	if d.String() != "héllo" {
		t.Fatal("string roundtrip")
	}
	if got := d.BytesView(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatal("bytes roundtrip")
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining = %d", d.Remaining())
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(8)
	e.PutUint64(1)
	e.Reset()
	if len(e.Bytes()) != 0 {
		t.Fatal("reset should clear")
	}
}

func TestDecoderTruncationPanics(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Uint64()
}

func roundtrip(t *testing.T, c Codec, records []any) []any {
	t.Helper()
	e := NewEncoder(64)
	c.EncodeBatch(e, records)
	d := NewDecoder(e.Bytes())
	out := c.DecodeBatch(d, len(records))
	if d.Remaining() != 0 {
		t.Fatalf("decoder left %d bytes", d.Remaining())
	}
	return out
}

func TestInt64Codec(t *testing.T) {
	in := []any{int64(1), int64(-5), int64(1 << 40)}
	out := roundtrip(t, Int64(), in)
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("got %v", out)
	}
}

func TestFloat64Codec(t *testing.T) {
	in := []any{1.5, -2.25, 0.0}
	if out := roundtrip(t, Float64(), in); !reflect.DeepEqual(in, out) {
		t.Fatalf("got %v", out)
	}
}

func TestStringCodec(t *testing.T) {
	in := []any{"", "a", "longer string with spaces"}
	if out := roundtrip(t, String(), in); !reflect.DeepEqual(in, out) {
		t.Fatalf("got %v", out)
	}
}

type pair struct {
	K string
	V int64
}

func TestCustomCodec(t *testing.T) {
	c := New(
		func(e *Encoder, p pair) { e.PutString(p.K); e.PutInt64(p.V) },
		func(d *Decoder) pair { return pair{K: d.String(), V: d.Int64()} },
	)
	in := []any{pair{"x", 1}, pair{"y", -2}}
	if out := roundtrip(t, c, in); !reflect.DeepEqual(in, out) {
		t.Fatalf("got %v", out)
	}
}

func TestGobCodec(t *testing.T) {
	c := Gob[pair]()
	in := []any{pair{"x", 1}, pair{"y", -2}, pair{"", 0}}
	if out := roundtrip(t, c, in); !reflect.DeepEqual(in, out) {
		t.Fatalf("got %v", out)
	}
}

func TestGobCodecEmptyBatch(t *testing.T) {
	c := Gob[int]()
	if out := roundtrip(t, c, nil); len(out) != 0 {
		t.Fatalf("got %v", out)
	}
}

// Property: arbitrary int64 batches roundtrip through the fast codec.
func TestQuickInt64Roundtrip(t *testing.T) {
	f := func(vals []int64) bool {
		in := make([]any, len(vals))
		for i, v := range vals {
			in[i] = v
		}
		e := NewEncoder(8 * len(vals))
		c := Int64()
		c.EncodeBatch(e, in)
		out := c.DecodeBatch(NewDecoder(e.Bytes()), len(in))
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(testutil.Seed(t)))}); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary string batches roundtrip.
func TestQuickStringRoundtrip(t *testing.T) {
	f := func(vals []string) bool {
		in := make([]any, len(vals))
		for i, v := range vals {
			in[i] = v
		}
		e := NewEncoder(64)
		c := String()
		c.EncodeBatch(e, in)
		out := c.DecodeBatch(NewDecoder(e.Bytes()), len(in))
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(testutil.Seed(t)))}); err != nil {
		t.Fatal(err)
	}
}
