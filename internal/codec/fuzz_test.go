package codec

import (
	"testing"
)

// FuzzDecoder drives a Decoder with an op stream drawn from the input
// itself: whatever the bytes, a decode wrapped in Catch must either
// succeed or return an error — never panic through, never read past the
// end of the input, and never allocate from an unvalidated count.
func FuzzDecoder(f *testing.F) {
	valid := NewEncoder(64)
	valid.PutUint8(3)
	valid.PutUint32(40)
	valid.PutInt64(-1)
	valid.PutFloat64(3.14)
	valid.PutString("hello")
	valid.PutBytes([]byte{1, 2, 3})
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())-3]) // truncated tail
	f.Add([]byte{255, 255, 255, 255, 255})      // absurd length prefix
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		err := Catch(func() {
			for d.Remaining() > 0 {
				switch d.Uint8() % 8 {
				case 0:
					d.Uint8()
				case 1:
					d.Uint32()
				case 2:
					d.Uint64()
				case 3:
					d.Int64()
				case 4:
					d.Float64()
				case 5:
					_ = d.String()
				case 6:
					d.BytesView()
				case 7:
					n := d.Count(8)
					for i := 0; i < n; i++ {
						d.Int64()
					}
				}
			}
		})
		_ = err // error or not, the checks below must hold
		if d.off > len(d.data) {
			t.Fatalf("decoder over-read: offset %d of %d", d.off, len(d.data))
		}
	})
}

// FuzzGobDecodeBatch feeds corrupted gob streams to the fallback codec:
// decode must error through Catch, never panic uncaught or return a batch
// of the wrong length.
func FuzzGobDecodeBatch(f *testing.F) {
	enc := NewEncoder(64)
	Gob[int64]().EncodeBatch(enc, []any{int64(1), int64(2), int64(3)})
	f.Add(uint32(3), enc.Bytes())
	f.Add(uint32(3), enc.Bytes()[:len(enc.Bytes())/2])
	f.Add(uint32(1000), enc.Bytes())
	f.Add(uint32(0), []byte{})
	f.Fuzz(func(t *testing.T, n uint32, data []byte) {
		if n > 1<<16 {
			n %= 1 << 16 // bound the expected-count argument, not the input bytes
		}
		var out []any
		err := Catch(func() {
			out = Gob[int64]().DecodeBatch(NewDecoder(data), int(n))
		})
		if err == nil && len(out) != int(n) {
			t.Fatalf("decode returned %d records, want %d", len(out), n)
		}
	})
}

// FuzzStringCodecRoundTrip checks the fast-path codec against corruption
// (decode errors cleanly) and against itself (round-trip is identity).
func FuzzStringCodecRoundTrip(f *testing.F) {
	f.Add("hello", []byte{5, 0, 0, 0, 'h', 'e', 'l', 'l', 'o'})
	f.Add("", []byte{255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, s string, corrupt []byte) {
		enc := NewEncoder(16)
		String().EncodeBatch(enc, []any{s})
		var out []any
		if err := Catch(func() {
			out = String().DecodeBatch(NewDecoder(enc.Bytes()), 1)
		}); err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if out[0].(string) != s {
			t.Fatalf("round-trip mismatch: %q != %q", out[0], s)
		}
		_ = Catch(func() { // corrupt input: any outcome but a panic
			String().DecodeBatch(NewDecoder(corrupt), 1)
		})
	})
}
