package codec

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

type gobRec struct {
	Key   string
	Count int64
	Score float64
}

// naiveGobFrame is the pre-fix framing: a fresh gob.Encoder per batch, so
// every frame carries the full type descriptor set.
func naiveGobFrame(t *testing.T, batch []gobRec) int {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(batch); err != nil {
		t.Fatal(err)
	}
	return 4 + buf.Len() // PutBytes length prefix + payload
}

// Regression test for the per-frame descriptor re-send: a codec that truly
// amortizes type information must produce frames strictly smaller than a
// fresh gob.Encoder's output (which re-sends descriptors every time), and
// the frame size must not grow on repeat encodes. Fails on the pre-fix
// codec, whose every frame equals the naive size.
func TestGobSessionWireSize(t *testing.T) {
	c := Gob[gobRec]()
	batch := []any{
		gobRec{Key: "a", Count: 1, Score: 0.5},
		gobRec{Key: "b", Count: 2, Score: 1.5},
	}
	naive := naiveGobFrame(t, []gobRec{
		{Key: "a", Count: 1, Score: 0.5},
		{Key: "b", Count: 2, Score: 1.5},
	})
	var first int
	for i := 0; i < 4; i++ {
		e := NewEncoder(64)
		c.EncodeBatch(e, batch)
		size := len(e.Bytes())
		if size >= naive {
			t.Fatalf("frame %d is %d bytes, not smaller than the naive per-frame encoding (%d bytes): descriptors are being re-sent", i, size, naive)
		}
		if i == 0 {
			first = size
		} else if size != first {
			t.Fatalf("frame %d is %d bytes, frame 0 was %d: frames are stream-position dependent", i, size, first)
		}
	}
}

// Frames are value-only but must decode standalone, in any order, on any
// session — the replay log and barrier cut snapshots depend on it.
func TestGobSessionFramesDecodeOutOfOrder(t *testing.T) {
	enc := Gob[gobRec]()
	frame := func(recs ...any) []byte {
		e := NewEncoder(64)
		enc.EncodeBatch(e, recs)
		return append([]byte(nil), e.Bytes()...)
	}
	a := frame(gobRec{Key: "first", Count: 1})
	b := frame(gobRec{Key: "second", Count: 2}, gobRec{Key: "third", Count: 3})

	// A different codec instance (fresh sessions) decodes b before a.
	dec := Gob[gobRec]()
	outB := dec.DecodeBatch(NewDecoder(b), 2)
	outA := dec.DecodeBatch(NewDecoder(a), 1)
	if outB[0].(gobRec).Key != "second" || outB[1].(gobRec).Key != "third" {
		t.Fatalf("out-of-order decode b = %v", outB)
	}
	if outA[0].(gobRec).Key != "first" {
		t.Fatalf("out-of-order decode a = %v", outA)
	}
}

// A corrupt frame must not poison the cached session: the decode errors
// through Catch, and the next well-formed frame still decodes.
func TestGobSessionSurvivesCorruptFrame(t *testing.T) {
	c := Gob[gobRec]()
	e := NewEncoder(64)
	c.EncodeBatch(e, []any{gobRec{Key: "ok", Count: 7}})
	good := append([]byte(nil), e.Bytes()...)

	corrupt := append([]byte(nil), good...)
	corrupt[len(corrupt)-1] ^= 0xFF
	corrupt[5] ^= 0xFF
	_ = Catch(func() { c.DecodeBatch(NewDecoder(corrupt), 1) })

	var out []any
	if err := Catch(func() { out = c.DecodeBatch(NewDecoder(good), 1) }); err != nil {
		t.Fatalf("good frame failed after corrupt one: %v", err)
	}
	if out[0].(gobRec).Key != "ok" {
		t.Fatalf("decoded %v", out)
	}
}

// Interface-bearing types cannot use value-only framing (their descriptor
// set is open); they must fall back to self-contained frames and still
// round-trip.
func TestGobNonStreamableFallback(t *testing.T) {
	type openRec struct{ V any }
	gob.Register(int64(0))
	if descriptorClosed(reflect.TypeFor[openRec]()) {
		t.Fatalf("type with an interface field classified as descriptor-closed")
	}
	c := Gob[openRec]()
	in := []any{openRec{V: int64(9)}}
	e := NewEncoder(64)
	c.EncodeBatch(e, in)
	out := c.DecodeBatch(NewDecoder(e.Bytes()), 1)
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("fallback roundtrip: got %v", out)
	}
}

func TestDescriptorClosed(t *testing.T) {
	type node struct {
		Next *node
		Val  int
	}
	type withMap struct{ M map[string][]float64 }
	type hidden struct {
		Pub  int
		priv any //nolint:unused // unexported: gob skips it, so it must not block streaming
	}
	for _, tc := range []struct {
		name string
		typ  reflect.Type
		want bool
	}{
		{"int64", reflect.TypeFor[int64](), true},
		{"recursive struct", reflect.TypeFor[node](), true},
		{"map of slices", reflect.TypeFor[withMap](), true},
		{"any", reflect.TypeFor[any](), false},
		{"slice of any", reflect.TypeFor[[]any](), false},
		{"unexported interface field", reflect.TypeFor[hidden](), true},
	} {
		if got := descriptorClosed(tc.typ); got != tc.want {
			t.Errorf("descriptorClosed(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// The typed column path must produce bytes identical to the boxed path —
// a frame from EncodeColumn decodes via DecodeBatch and vice versa.
func TestGobColumnBoxedInterop(t *testing.T) {
	c := Gob[gobRec]().(BatchCodec)
	recs := []gobRec{{Key: "x", Count: 1}, {Key: "y", Count: 2}}
	boxed := []any{recs[0], recs[1]}

	eCol := NewEncoder(64)
	if !c.EncodeColumn(eCol, recs) {
		t.Fatal("EncodeColumn declined its own type")
	}
	eBox := NewEncoder(64)
	c.(Codec).EncodeBatch(eBox, boxed)
	if !bytes.Equal(eCol.Bytes(), eBox.Bytes()) {
		t.Fatalf("EncodeColumn and EncodeBatch bytes differ: %d vs %d", len(eCol.Bytes()), len(eBox.Bytes()))
	}

	b := c.DecodeBatchCol(NewDecoder(eBox.Bytes()), 2)
	if b == nil {
		t.Fatal("DecodeBatchCol returned nil for its own stream")
	}
	defer b.Release()
	got := b.Col().Slice().([]gobRec)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("DecodeBatchCol = %v", got)
	}
}
