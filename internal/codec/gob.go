package codec

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"sync"

	"naiad/internal/batchbuf"
)

// Gob-backed fallback codec with cached stream state.
//
// encoding/gob sends a type descriptor the first time a type crosses an
// encoder, then only values. A fresh gob.Encoder per frame therefore
// re-sends every descriptor on every frame — for a small struct batch the
// descriptors dwarf the payload. The sessions below keep primed
// encoder/decoder pairs cached per codec instance (one instance per
// connector), so descriptors are paid once per session, not per frame.
//
// Frames must still decode standalone and in any order: the replay log,
// barrier cut snapshots, and checkpoint fragments all store frames and
// decode them later, on other sessions. The trick is deterministic priming:
// a new encode session first encodes a zero []T and discards the bytes —
// that transfers every descriptor T needs — and a new decode session feeds
// itself the same primer bytes (locally generated; gob descriptors are
// deterministic for a fixed type and gob version). After priming, every
// frame is value-only and every primed decoder accepts any primed encoder's
// frame, in any order.
//
// Value-only framing is sound only when the descriptor set is closed at
// priming time: a type graph containing interfaces can introduce new
// descriptors mid-stream (gob transmits the dynamic type on first use),
// which would make frames order-dependent. Such types — and anything else
// whose descriptor closure the primer cannot reach — fall back to the old
// self-contained framing (fresh encoder/decoder per frame). The two modes
// produce different bytes, so both sides must agree; they do, because the
// mode is a pure function of T evaluated identically in every process
// running the same binary.

// gobCodec serializes []T batches with encoding/gob, amortizing type
// information across the connector's lifetime (see the package comment
// above). It is the fallback for record types without a hand-written codec.
type gobCodec[T any] struct {
	s *gobState[T]
}

type gobState[T any] struct {
	streamable bool   // descriptor set closed: value-only frames are safe
	primer     []byte // descriptor bytes a fresh session must consume first

	encs sync.Pool // *gobEncSession[T]
	decs sync.Pool // *gobDecSession[T]
}

// Gob returns a gob-backed codec for arbitrary record types. The returned
// codec carries cached encoder/decoder stream state; create one per
// connector (as lib does) and reuse it for the connector's lifetime.
func Gob[T any]() Codec {
	st := &gobState[T]{streamable: descriptorClosed(reflect.TypeFor[T]())}
	if st.streamable {
		s := newGobEncSession[T]()
		st.primer = append([]byte(nil), s.primerBytes...)
	}
	return gobCodec[T]{s: st}
}

type gobEncSession[T any] struct {
	buf         bytes.Buffer
	enc         *gob.Encoder
	primerBytes []byte
}

func newGobEncSession[T any]() *gobEncSession[T] {
	s := &gobEncSession[T]{}
	s.enc = gob.NewEncoder(&s.buf)
	if err := s.enc.Encode([]T{}); err != nil {
		panic(fmt.Sprintf("codec: gob primer encode: %v", err))
	}
	s.primerBytes = append([]byte(nil), s.buf.Bytes()...)
	s.buf.Reset()
	return s
}

// encode serializes one batch as a value-only frame. The returned bytes are
// valid until the session's next encode.
func (s *gobEncSession[T]) encode(v []T) []byte {
	s.buf.Reset()
	if err := s.enc.Encode(v); err != nil {
		panic(fmt.Sprintf("codec: gob encode: %v", err))
	}
	return s.buf.Bytes()
}

type gobDecSession[T any] struct {
	rd  bytes.Reader
	dec *gob.Decoder
}

func newGobDecSession[T any](primer []byte) *gobDecSession[T] {
	s := &gobDecSession[T]{}
	s.rd.Reset(primer)
	// bytes.Reader implements io.ByteReader, so gob adds no read-ahead
	// buffering of its own and the reader can be repointed between frames.
	s.dec = gob.NewDecoder(&s.rd)
	var dummy []T
	if err := s.dec.Decode(&dummy); err != nil {
		panic(fmt.Sprintf("codec: gob primer decode: %v", err))
	}
	return s
}

func (s *gobDecSession[T]) decode(frame []byte) []T {
	s.rd.Reset(frame)
	var v []T
	if err := s.dec.Decode(&v); err != nil {
		panic(fmt.Sprintf("codec: gob decode: %v", err))
	}
	return v
}

// encodeSlice frames one batch, through a cached session when the type is
// streamable.
func (c gobCodec[T]) encodeSlice(enc *Encoder, slice []T) {
	if !c.s.streamable {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(slice); err != nil {
			panic(fmt.Sprintf("codec: gob encode: %v", err))
		}
		enc.PutBytes(buf.Bytes())
		return
	}
	s, _ := c.s.encs.Get().(*gobEncSession[T])
	if s == nil {
		s = newGobEncSession[T]()
	}
	enc.PutBytes(s.encode(slice))
	c.s.encs.Put(s)
}

// decodeSlice parses one frame. The result owns its memory (gob always
// copies), honoring the Codec self-containment contract. A session is
// returned to the pool only after a clean decode: a corrupt frame may leave
// its internal state mid-message, so the session is discarded with the
// panic.
func (c gobCodec[T]) decodeSlice(dec *Decoder, n int) []T {
	raw := dec.BytesView()
	var slice []T
	if !c.s.streamable {
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&slice); err != nil {
			panic(fmt.Sprintf("codec: gob decode: %v", err))
		}
	} else {
		s, _ := c.s.decs.Get().(*gobDecSession[T])
		if s == nil {
			s = newGobDecSession[T](c.s.primer)
		}
		slice = s.decode(raw)
		c.s.decs.Put(s)
	}
	if len(slice) != n {
		panic(fmt.Sprintf("codec: gob batch length %d, want %d", len(slice), n))
	}
	return slice
}

func (c gobCodec[T]) EncodeBatch(enc *Encoder, records []any) {
	slice := make([]T, len(records))
	for i, r := range records {
		slice[i] = r.(T)
	}
	c.encodeSlice(enc, slice)
}

func (c gobCodec[T]) DecodeBatch(dec *Decoder, n int) []any {
	slice := c.decodeSlice(dec, n)
	out := make([]any, n)
	for i, v := range slice {
		out[i] = v
	}
	return out
}

// EncodeColumn implements BatchCodec: a typed slice encodes without the
// boxed copy, to the same bytes as EncodeBatch.
func (c gobCodec[T]) EncodeColumn(enc *Encoder, col any) bool {
	slice, ok := col.([]T)
	if !ok {
		return false
	}
	c.encodeSlice(enc, slice)
	return true
}

// DecodeBatchCol implements BatchCodec. Gob necessarily allocates the
// decoded slice, so the batch adopts it instead of copying into a pooled
// column.
func (c gobCodec[T]) DecodeBatchCol(dec *Decoder, n int) *batchbuf.Batch {
	return batchbuf.Of(c.decodeSlice(dec, n))
}

// descriptorClosed reports whether T's gob descriptor set is fully known
// from the static type: no interface anywhere in the type graph (an
// interface value transmits its dynamic type's descriptor on first use,
// reopening the stream's descriptor set mid-flight).
func descriptorClosed(t reflect.Type) bool {
	return closedWalk(t, map[reflect.Type]bool{})
}

func closedWalk(t reflect.Type, seen map[reflect.Type]bool) bool {
	if seen[t] {
		return true // recursive types are fine; gob descriptors handle cycles
	}
	seen[t] = true
	switch t.Kind() {
	case reflect.Interface:
		return false
	case reflect.Chan, reflect.Func, reflect.UnsafePointer:
		return false // gob cannot encode these at all; use legacy framing so the error surfaces the same way it always did
	case reflect.Pointer, reflect.Slice, reflect.Array:
		return closedWalk(t.Elem(), seen)
	case reflect.Map:
		return closedWalk(t.Key(), seen) && closedWalk(t.Elem(), seen)
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue // gob skips unexported fields
			}
			if !closedWalk(f.Type, seen) {
				return false
			}
		}
		return true
	default:
		return true
	}
}
