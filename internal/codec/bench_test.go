package codec

import "testing"

// BenchmarkInt64Batch measures the fast-path codec on the Fig 6a record
// shape (8-byte records).
func BenchmarkInt64Batch(b *testing.B) {
	const n = 1024
	records := make([]any, n)
	for i := range records {
		records[i] = int64(i * 31)
	}
	c := Int64()
	enc := NewEncoder(8 * n)
	b.ReportAllocs()
	b.SetBytes(8 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Reset()
		c.EncodeBatch(enc, records)
		out := c.DecodeBatch(NewDecoder(enc.Bytes()), n)
		if len(out) != n {
			b.Fatal("short decode")
		}
	}
}

// BenchmarkGobBatch measures the reflection fallback on the same shape,
// quantifying what a hand-written codec buys.
func BenchmarkGobBatch(b *testing.B) {
	const n = 1024
	records := make([]any, n)
	for i := range records {
		records[i] = int64(i * 31)
	}
	c := Gob[int64]()
	enc := NewEncoder(8 * n)
	b.ReportAllocs()
	b.SetBytes(8 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Reset()
		c.EncodeBatch(enc, records)
		out := c.DecodeBatch(NewDecoder(enc.Bytes()), n)
		if len(out) != n {
			b.Fatal("short decode")
		}
	}
}

// BenchmarkStringBatch measures the string codec on word-count-shaped
// records.
func BenchmarkStringBatch(b *testing.B) {
	const n = 1024
	records := make([]any, n)
	for i := range records {
		records[i] = "word-with-some-length"
	}
	c := String()
	enc := NewEncoder(32 * n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Reset()
		c.EncodeBatch(enc, records)
		if out := c.DecodeBatch(NewDecoder(enc.Bytes()), n); len(out) != n {
			b.Fatal("short decode")
		}
	}
}
