package codec

import (
	"bytes"
	"testing"
)

// Regression tests for the decode-aliasing bug class (the PR 3 replay-log
// aliasing bug, resurfacing with pooled frame buffers): once the runtime
// recycles a frame buffer after decoding it, any record that aliases the
// buffer is silently corrupted. The Codec contract therefore requires
// decoded records to be self-contained; these tests pin the contract for
// the shipped codecs and demonstrate the failure mode the contract blocks.

// clobber simulates buffer recycling: the arena hands the frame's backing
// array to an unrelated producer, which overwrites it.
func clobber(frame []byte) {
	for i := range frame {
		frame[i] = 0xEE
	}
}

func TestStringRecordsSurviveBufferRecycle(t *testing.T) {
	c := String()
	enc := NewEncoder(64)
	c.EncodeBatch(enc, []any{"keep-me", "and-me"})
	frame := append([]byte(nil), enc.Bytes()...)
	out := c.DecodeBatch(NewDecoder(frame), 2)
	clobber(frame)
	if out[0].(string) != "keep-me" || out[1].(string) != "and-me" {
		t.Fatalf("string records aliased the recycled frame: %q %q", out[0], out[1])
	}
}

func TestGobRecordsSurviveBufferRecycle(t *testing.T) {
	type rec struct {
		Name string
		Blob []byte
	}
	c := Gob[rec]()
	enc := NewEncoder(64)
	c.EncodeBatch(enc, []any{rec{Name: "n", Blob: []byte{1, 2, 3}}})
	frame := append([]byte(nil), enc.Bytes()...)
	out := c.DecodeBatch(NewDecoder(frame), 1)
	clobber(frame)
	got := out[0].(rec)
	if got.Name != "n" || !bytes.Equal(got.Blob, []byte{1, 2, 3}) {
		t.Fatalf("gob records aliased the recycled frame: %+v", got)
	}
}

func TestDecoderBytesCopiesBytesViewAliases(t *testing.T) {
	enc := NewEncoder(32)
	enc.PutBytes([]byte("payload"))
	enc.PutBytes([]byte("payload"))
	frame := append([]byte(nil), enc.Bytes()...)

	d := NewDecoder(frame)
	owned := d.Bytes()    // contract-compliant: copies
	view := d.BytesView() // zero-copy view: dies with the frame
	clobber(frame)

	if string(owned) != "payload" {
		t.Fatalf("Decoder.Bytes did not copy: %q", owned)
	}
	if string(view) == "payload" {
		t.Fatalf("BytesView unexpectedly copied; the zero-copy fast path is gone")
	}
}

// A codec that builds []byte records from BytesView violates the contract;
// this pins the failure mode so the contract's wording stays honest. If
// this test ever passes with the aliasing codec, BytesView started copying
// and the fast path should be re-examined.
func TestAliasingCodecCorruptsUnderRecycle(t *testing.T) {
	aliasing := New(
		func(e *Encoder, v []byte) { e.PutBytes(v) },
		func(d *Decoder) []byte { return d.BytesView() }, // WRONG: aliases input
	)
	fixed := New(
		func(e *Encoder, v []byte) { e.PutBytes(v) },
		func(d *Decoder) []byte { return d.Bytes() }, // correct: copies
	)
	in := []any{[]byte("abcdef")}

	encode := func(c Codec) []byte {
		e := NewEncoder(32)
		c.EncodeBatch(e, in)
		return append([]byte(nil), e.Bytes()...)
	}

	frame := encode(aliasing)
	bad := aliasing.DecodeBatch(NewDecoder(frame), 1)
	clobber(frame)
	if bytes.Equal(bad[0].([]byte), []byte("abcdef")) {
		t.Fatalf("aliasing codec survived recycle — BytesView no longer aliases?")
	}

	frame = encode(fixed)
	good := fixed.DecodeBatch(NewDecoder(frame), 1)
	clobber(frame)
	if !bytes.Equal(good[0].([]byte), []byte("abcdef")) {
		t.Fatalf("contract-compliant codec corrupted under recycle: %q", good[0])
	}
}
