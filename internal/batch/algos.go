package batch

import (
	"sync"

	"naiad/internal/workload"
)

// WCC computes weakly connected components with synchronous full-relabel
// iterations: every iteration recomputes every node's label from all of
// its neighbors (no sparse/delta optimization — batch systems recompute
// the full relation), then materializes the label table.
func (e *Engine) WCC(edges []workload.Edge) map[int64]int64 {
	adj := make(map[int64][]int64)
	for _, ed := range edges {
		if ed.Src == ed.Dst {
			continue
		}
		adj[ed.Src] = append(adj[ed.Src], ed.Dst)
		adj[ed.Dst] = append(adj[ed.Dst], ed.Src)
	}
	labels := make(map[int64]int64, len(adj))
	var nodes []int64
	for n := range adj {
		labels[n] = n
		nodes = append(nodes, n)
	}
	for {
		e.iterations.Add(1)
		next := make([]map[int64]int64, e.Workers)
		changedBy := make([]bool, e.Workers)
		e.parallel(func(p int) {
			mine := make(map[int64]int64)
			for i := p; i < len(nodes); i += e.Workers {
				n := nodes[i]
				best := labels[n]
				for _, m := range adj[n] {
					if l := labels[m]; l < best {
						best = l
					}
				}
				mine[n] = best
				if best != labels[n] {
					changedBy[p] = true
				}
			}
			next[p] = mine
		})
		merged := make(map[int64]int64, len(labels))
		changed := false
		for p := range next {
			for n, l := range next[p] {
				merged[n] = l
			}
			changed = changed || changedBy[p]
		}
		labels = roundTrip(e, merged)
		if !changed {
			return labels
		}
	}
}

// PageRank runs the given number of synchronous power iterations,
// materializing the rank vector between iterations.
func (e *Engine) PageRank(edges []workload.Edge, nodes int64, iters int, d float64) map[int64]float64 {
	outDeg := make(map[int64]int64)
	present := make(map[int64]struct{})
	for _, ed := range edges {
		outDeg[ed.Src]++
		present[ed.Src] = struct{}{}
		present[ed.Dst] = struct{}{}
	}
	ranks := make(map[int64]float64, len(present))
	for n := range present {
		ranks[n] = 1 / float64(nodes)
	}
	base := (1 - d) / float64(nodes)
	for it := 0; it < iters; it++ {
		e.iterations.Add(1)
		partial := make([]map[int64]float64, e.Workers)
		e.parallel(func(p int) {
			mine := make(map[int64]float64)
			for i := p; i < len(edges); i += e.Workers {
				ed := edges[i]
				mine[ed.Dst] += d * ranks[ed.Src] / float64(outDeg[ed.Src])
			}
			partial[p] = mine
		})
		next := make(map[int64]float64, len(present))
		for n := range present {
			next[n] = base
		}
		for _, mine := range partial {
			for n, c := range mine {
				next[n] += c
			}
		}
		ranks = roundTrip(e, next)
	}
	return ranks
}

// minLabels propagates minimum ids along edge direction synchronously.
func (e *Engine) minLabels(edges []workload.Edge) map[int64]int64 {
	labels := make(map[int64]int64)
	for _, ed := range edges {
		labels[ed.Src] = ed.Src
		labels[ed.Dst] = ed.Dst
	}
	for {
		e.iterations.Add(1)
		var mu sync.Mutex
		changed := false
		next := make(map[int64]int64, len(labels))
		for n, l := range labels {
			next[n] = l
		}
		e.parallel(func(p int) {
			local := make(map[int64]int64)
			for i := p; i < len(edges); i += e.Workers {
				ed := edges[i]
				if l := labels[ed.Src]; l < labels[ed.Dst] {
					if cur, ok := local[ed.Dst]; !ok || l < cur {
						local[ed.Dst] = l
					}
				}
			}
			mu.Lock()
			for n, l := range local {
				if l < next[n] {
					next[n] = l
					changed = true
				}
			}
			mu.Unlock()
		})
		labels = roundTrip(e, next)
		if !changed {
			return labels
		}
	}
}

// SCC runs the same forward/backward min-label trimming as the dataflow
// implementation, but with synchronous materialized iterations.
func (e *Engine) SCC(edges []workload.Edge) map[int64]int64 {
	assign := make(map[int64]int64)
	nodes := make(map[int64]struct{})
	for _, ed := range edges {
		nodes[ed.Src] = struct{}{}
		nodes[ed.Dst] = struct{}{}
	}
	remaining := append([]workload.Edge(nil), edges...)
	for len(remaining) > 0 {
		fwd := e.minLabels(remaining)
		rev := make([]workload.Edge, len(remaining))
		for i, ed := range remaining {
			rev[i] = workload.Edge{Src: ed.Dst, Dst: ed.Src}
		}
		bwd := e.minLabels(rev)
		for n, f := range fwd {
			if bwd[n] == f {
				assign[n] = f
			}
		}
		kept := remaining[:0]
		for _, ed := range remaining {
			if _, a := assign[ed.Src]; a {
				continue
			}
			if _, b := assign[ed.Dst]; b {
				continue
			}
			kept = append(kept, ed)
		}
		remaining = kept
	}
	for n := range nodes {
		if _, ok := assign[n]; !ok {
			assign[n] = n
		}
	}
	return assign
}

// ASP computes BFS distances from the given sources with synchronous
// frontier-free iterations: every iteration relaxes every edge for every
// source (the dense batch formulation), materializing the distance table.
func (e *Engine) ASP(edges []workload.Edge, sources []int64) map[SrcNode]int64 {
	type sn = SrcNode
	dist := make(map[sn]int64)
	for _, s := range sources {
		dist[sn{Src: s, Node: s}] = 0
	}
	undirected := make([]workload.Edge, 0, 2*len(edges))
	for _, ed := range edges {
		if ed.Src == ed.Dst {
			continue
		}
		undirected = append(undirected, ed, workload.Edge{Src: ed.Dst, Dst: ed.Src})
	}
	for {
		e.iterations.Add(1)
		var mu sync.Mutex
		changed := false
		next := make(map[sn]int64, len(dist))
		for k, v := range dist {
			next[k] = v
		}
		e.parallel(func(p int) {
			local := make(map[sn]int64)
			for i := p; i < len(undirected); i += e.Workers {
				ed := undirected[i]
				for _, s := range sources {
					if d, ok := dist[sn{Src: s, Node: ed.Src}]; ok {
						k := sn{Src: s, Node: ed.Dst}
						if cur, have := dist[k]; !have || d+1 < cur {
							if lcur, lhave := local[k]; !lhave || d+1 < lcur {
								local[k] = d + 1
							}
						}
					}
				}
			}
			mu.Lock()
			for k, v := range local {
				if cur, have := next[k]; !have || v < cur {
					next[k] = v
					changed = true
				}
			}
			mu.Unlock()
		})
		dist = roundTrip(e, next)
		if !changed {
			return dist
		}
	}
}

// SrcNode mirrors graphalgo.SrcNode without importing it (the batch engine
// is independent of the timely stack).
type SrcNode struct {
	Src, Node int64
}
