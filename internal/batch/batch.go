// Package batch is the comparator engine for Table 1: a deliberately
// DryadLINQ-shaped synchronous batch processor. Each iteration of an
// algorithm is a separate "job" whose entire intermediate state is
// serialized and deserialized between iterations — the per-iteration
// materialization cost that the paper identifies as the reason batch
// systems lose to Naiad by large factors on iterative graph work (§6.1).
// Within an iteration, work is data-parallel across partitions.
package batch

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Engine executes iterative jobs with partitioned parallelism and
// per-iteration state materialization.
//
// Two knobs model the costs that make batch systems slow on iterative
// graph work (§6.1, Table 1): Materialize serializes every iteration's
// state through a real temporary file (Dryad-style intermediate data on
// stable storage), and JobOverhead charges a fixed per-iteration job
// dispatch cost (DryadLINQ launches a cluster job per iteration; the
// paper's related work puts comparable systems at ~1 s per incremental
// step, so the default of 50 ms is conservative). Both can be zeroed to
// isolate the pure compute.
type Engine struct {
	// Workers is the partition count (and goroutine parallelism).
	Workers int
	// Materialize controls whether state is serialized to disk between
	// iterations (the batch-system behaviour).
	Materialize bool
	// JobOverhead is the fixed per-iteration job dispatch cost.
	JobOverhead time.Duration

	bytesMaterialized atomic.Int64
	iterations        atomic.Int64
	spill             *os.File
}

// NewEngine returns an engine with disk materialization on and the default
// per-iteration job overhead.
func NewEngine(workers int) *Engine {
	return &Engine{Workers: workers, Materialize: true, JobOverhead: 50 * time.Millisecond}
}

// BytesMaterialized reports the total state bytes written+read between
// iterations.
func (e *Engine) BytesMaterialized() int64 { return e.bytesMaterialized.Load() }

// Iterations reports the number of materialized iterations executed.
func (e *Engine) Iterations() int64 { return e.iterations.Load() }

// parallel runs f over partitions 0..Workers-1 concurrently.
func (e *Engine) parallel(f func(part int)) {
	var wg sync.WaitGroup
	for p := 0; p < e.Workers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			f(p)
		}(p)
	}
	wg.Wait()
}

// roundTrip serializes each iteration's state through a real temporary
// file and reads it back — the inter-iteration materialization of a batch
// system — then charges the per-iteration job overhead.
func roundTrip[K comparable, V any](e *Engine, state map[K]V) map[K]V {
	if e.JobOverhead > 0 {
		time.Sleep(e.JobOverhead)
	}
	if !e.Materialize {
		return state
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(state); err != nil {
		panic(fmt.Sprintf("batch: materialize: %v", err))
	}
	e.bytesMaterialized.Add(2 * int64(buf.Len())) // written then read back
	raw := e.spillRoundTrip(buf.Bytes())
	out := make(map[K]V, len(state))
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&out); err != nil {
		panic(fmt.Sprintf("batch: rehydrate: %v", err))
	}
	return out
}

// spillRoundTrip writes the payload to the engine's spill file and reads
// it back, going through the filesystem like Dryad's intermediate data.
func (e *Engine) spillRoundTrip(payload []byte) []byte {
	if e.spill == nil {
		f, err := os.CreateTemp("", "naiad-batch-spill-*")
		if err != nil {
			panic(fmt.Sprintf("batch: spill: %v", err))
		}
		os.Remove(f.Name()) // anonymous: reclaimed when the engine dies
		e.spill = f
	}
	if err := e.spill.Truncate(0); err != nil {
		panic(fmt.Sprintf("batch: spill truncate: %v", err))
	}
	if _, err := e.spill.WriteAt(payload, 0); err != nil {
		panic(fmt.Sprintf("batch: spill write: %v", err))
	}
	out := make([]byte, len(payload))
	if _, err := e.spill.ReadAt(out, 0); err != nil {
		panic(fmt.Sprintf("batch: spill read: %v", err))
	}
	return out
}

// Close releases the spill file.
func (e *Engine) Close() {
	if e.spill != nil {
		e.spill.Close()
		e.spill = nil
	}
}
