package batch

import (
	"math"
	"testing"

	"naiad/internal/graphalgo"
	"naiad/internal/workload"
)

func TestBatchWCCMatchesUnionFind(t *testing.T) {
	edges := workload.RandomGraph(4, 150, 300)
	e := &Engine{Workers: 4, Materialize: true}
	got := e.WCC(edges)
	want := workload.ExpectedWCC(edges)
	for n, wc := range want {
		if gc, ok := got[n]; ok && gc != wc {
			t.Fatalf("node %d: %d vs %d", n, gc, wc)
		}
	}
	if e.BytesMaterialized() == 0 || e.Iterations() == 0 {
		t.Fatal("materialization not exercised")
	}
}

func TestBatchWCCWithoutMaterialization(t *testing.T) {
	edges := workload.ChainGraph(2, 30)
	e := &Engine{Workers: 2}
	got := e.WCC(edges)
	if e.BytesMaterialized() != 0 {
		t.Fatal("bytes counted while disabled")
	}
	want := workload.ExpectedWCC(edges)
	for n, wc := range want {
		if got[n] != wc {
			t.Fatalf("node %d: %d vs %d", n, got[n], wc)
		}
	}
}

func TestBatchPageRankMatchesSequential(t *testing.T) {
	const nodes = 40
	edges := workload.PowerLawGraph(9, nodes, 200, 1.4)
	e := &Engine{Workers: 4, Materialize: true}
	got := e.PageRank(edges, nodes, 8, 0.85)
	want := workload.ExpectedPageRank(edges, nodes, 8, 0.85)
	for n, r := range got {
		if math.Abs(r-want[n]) > 1e-9 {
			t.Fatalf("node %d: %v vs %v", n, r, want[n])
		}
	}
}

func TestBatchSCCMatchesTarjan(t *testing.T) {
	edges := append(workload.CycleGraph(3, 5), workload.RandomGraph(5, 15, 20)...)
	e := &Engine{Workers: 4, Materialize: true}
	got := e.SCC(edges)
	want := graphalgo.TarjanSCC(edges)
	if len(got) != len(want) {
		t.Fatalf("size: %d vs %d", len(got), len(want))
	}
	for n, wc := range want {
		if got[n] != wc {
			t.Fatalf("node %d: %d vs %d", n, got[n], wc)
		}
	}
}

func TestBatchASPMatchesBFS(t *testing.T) {
	edges := workload.RandomGraph(6, 50, 120)
	sources := []int64{0, 1, 2}
	e := &Engine{Workers: 4, Materialize: true}
	got := e.ASP(edges, sources)
	want := graphalgo.BFSDistances(edges, sources)
	// The batch version only tracks reachable pairs, same as BFS.
	if len(got) != len(want) {
		t.Fatalf("pairs: %d vs %d", len(got), len(want))
	}
	for k, wd := range want {
		if got[SrcNode{Src: k.Src, Node: k.Node}] != wd {
			t.Fatalf("%v: %d vs %d", k, got[SrcNode{Src: k.Src, Node: k.Node}], wd)
		}
	}
}
