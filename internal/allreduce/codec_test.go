package allreduce

import "naiad/internal/codec"

// Tiny wrappers so the codec test reads cleanly.

func newEnc() *codec.Encoder { return codec.NewEncoder(64) }

func newDec(e *codec.Encoder) *codec.Decoder { return codec.NewDecoder(e.Bytes()) }
