package allreduce

import (
	"math"
	"testing"

	"naiad/internal/lib"
	"naiad/internal/runtime"
)

func runAllReduce(t *testing.T, workers int, dim int, epochs int,
	build func(*lib.Stream[Msg], int) *lib.Stream[Msg]) [][]Msg {
	t.Helper()
	cfg := runtime.Config{Processes: 2, WorkersPerProcess: workers / 2, Accumulation: runtime.AccLocalGlobal}
	if workers == 1 {
		cfg = runtime.Config{Processes: 1, WorkersPerProcess: 1, Accumulation: runtime.AccLocalGlobal}
	}
	s, err := lib.NewScope(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in, src := lib.NewInput[Msg](s, "grads", MsgCodec())
	out := build(src, workers)
	col := lib.Collect(out)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < epochs; e++ {
		for w := 0; w < workers; w++ {
			vec := make([]float64, dim)
			for i := range vec {
				vec[i] = float64(e+1) * float64(w+1) * float64(i+1)
			}
			in.SendToWorker(w, []Msg{{Target: int64(w), Vals: vec}})
		}
		in.Advance()
	}
	in.Close()
	if err := s.C.Join(); err != nil {
		t.Fatal(err)
	}
	results := make([][]Msg, epochs)
	for e := 0; e < epochs; e++ {
		results[e] = col.Epoch(int64(e))
	}
	return results
}

func checkEpoch(t *testing.T, msgs []Msg, workers, dim, epoch int) {
	t.Helper()
	if len(msgs) != workers {
		t.Fatalf("epoch %d: %d results, want %d", epoch, len(msgs), workers)
	}
	// Sum over workers of (e+1)(w+1)(i+1) = (e+1)(i+1)·Σ(w+1).
	wsum := float64(workers*(workers+1)) / 2
	seen := map[int64]bool{}
	for _, m := range msgs {
		if seen[m.Target] {
			t.Fatalf("duplicate result for worker %d", m.Target)
		}
		seen[m.Target] = true
		if len(m.Vals) != dim {
			t.Fatalf("dim = %d, want %d", len(m.Vals), dim)
		}
		for i, v := range m.Vals {
			want := float64(epoch+1) * float64(i+1) * wsum
			if math.Abs(v-want) > 1e-9 {
				t.Fatalf("epoch %d worker %d [%d] = %v, want %v", epoch, m.Target, i, v, want)
			}
		}
	}
}

func TestDataParallelAllReduce(t *testing.T) {
	const workers, dim, epochs = 4, 10, 3
	results := runAllReduce(t, workers, dim, epochs, func(in *lib.Stream[Msg], w int) *lib.Stream[Msg] {
		return BuildDataParallel(in, w, dim)
	})
	for e, msgs := range results {
		checkEpoch(t, msgs, workers, dim, e)
	}
}

func TestDataParallelDimNotDivisible(t *testing.T) {
	const workers, dim = 4, 7 // 7 not divisible by 4
	results := runAllReduce(t, workers, dim, 1, func(in *lib.Stream[Msg], w int) *lib.Stream[Msg] {
		return BuildDataParallel(in, w, dim)
	})
	checkEpoch(t, results[0], workers, dim, 0)
}

func TestTreeAllReduce(t *testing.T) {
	const workers, dim, epochs = 4, 10, 2
	results := runAllReduce(t, workers, dim, epochs, BuildTree)
	for e, msgs := range results {
		checkEpoch(t, msgs, workers, dim, e)
	}
}

func TestTreeSingleWorker(t *testing.T) {
	results := runAllReduce(t, 1, 4, 1, BuildTree)
	checkEpoch(t, results[0], 1, 4, 0)
}

func TestTreeRequiresPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s, err := lib.NewScope(runtime.Config{Processes: 1, WorkersPerProcess: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, src := lib.NewInput[Msg](s, "in", MsgCodec())
	BuildTree(src, 3)
}

func TestMsgCodecRoundtrip(t *testing.T) {
	c := MsgCodec()
	// Exercised end-to-end above; check empty vector explicitly.
	enc := newEnc()
	c.EncodeBatch(enc, []any{Msg{Target: 3, Seg: 1}})
	got := c.DecodeBatch(newDec(enc), 1)[0].(Msg)
	if got.Target != 3 || got.Seg != 1 || len(got.Vals) != 0 {
		t.Fatalf("got %+v", got)
	}
}
