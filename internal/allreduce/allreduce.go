// Package allreduce implements the AllReduce communication pattern of
// §6.2 as a Naiad library, in the two variants the paper compares: the
// data-parallel form where each of k workers reduces and broadcasts 1/k of
// the vector (Naiad's), and the binary-tree form Vowpal Wabbit uses, whose
// serial depth and root bottleneck make it slower on flat networks.
//
// Each input epoch performs one AllReduce: every worker contributes one
// vector, and every worker receives the element-wise sum.
package allreduce

import (
	"fmt"
	"math/bits"

	"naiad/internal/codec"
	"naiad/internal/lib"
	ts "naiad/internal/timestamp"
)

// Msg is the unit all AllReduce stages exchange: a (possibly partial)
// vector addressed to a worker, tagged with the segment it covers.
type Msg struct {
	Target int64 // destination worker
	Seg    int64 // segment index (data-parallel) or 0 (tree)
	Vals   []float64
}

// MsgCodec is the fast binary codec for Msg.
func MsgCodec() codec.Codec {
	return codec.New(
		func(e *codec.Encoder, m Msg) {
			e.PutInt64(m.Target)
			e.PutInt64(m.Seg)
			e.PutUint32(uint32(len(m.Vals)))
			for _, v := range m.Vals {
				e.PutFloat64(v)
			}
		},
		func(d *codec.Decoder) Msg {
			m := Msg{Target: d.Int64(), Seg: d.Int64()}
			m.Vals = make([]float64, d.Uint32())
			for i := range m.Vals {
				m.Vals[i] = d.Float64()
			}
			return m
		},
	)
}

func byTarget(m Msg) uint64 { return uint64(m.Target) }

// addInto accumulates src into dst, growing dst as needed.
func addInto(dst []float64, src []float64) []float64 {
	if len(src) > len(dst) {
		grown := make([]float64, len(src))
		copy(grown, dst)
		dst = grown
	}
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

// BuildDataParallel wires the data-parallel AllReduce: contributions are
// split into `workers` segments, segment i is summed at worker i, and the
// summed segments are rebroadcast and reassembled at every worker. The
// result stream carries one Msg per worker per epoch with the full sum
// (Seg = -1).
func BuildDataParallel(in *lib.Stream[Msg], workers int, dim int) *lib.Stream[Msg] {
	segSize := (dim + workers - 1) / workers
	// Split each contribution into per-segment chunks routed to their
	// owning worker.
	chunks := lib.SelectMany(in, func(m Msg) []Msg {
		out := make([]Msg, 0, workers)
		for seg := 0; seg < workers; seg++ {
			lo := seg * segSize
			if lo >= len(m.Vals) {
				break
			}
			hi := min(lo+segSize, len(m.Vals))
			out = append(out, Msg{Target: int64(seg), Seg: int64(seg), Vals: m.Vals[lo:hi]})
		}
		return out
	}, MsgCodec())
	shuffled := lib.Exchange(chunks, byTarget)
	// Sum each segment, then address a copy of the sum to every worker.
	summed := lib.UnaryBuffer[Msg, Msg](shuffled, "seg-reduce", nil,
		func(_ ts.Timestamp, recs []Msg, emit func(Msg)) {
			sums := make(map[int64][]float64)
			for _, m := range recs {
				sums[m.Seg] = addInto(sums[m.Seg], m.Vals)
			}
			for seg, vals := range sums {
				for w := 0; w < workers; w++ {
					emit(Msg{Target: int64(w), Seg: seg, Vals: vals})
				}
			}
		}, MsgCodec())
	spread := lib.Exchange(summed, byTarget)
	// Reassemble the full vector at each worker.
	return lib.UnaryBuffer[Msg, Msg](spread, "assemble", nil,
		func(_ ts.Timestamp, recs []Msg, emit func(Msg)) {
			if len(recs) == 0 {
				return
			}
			full := make([]float64, dim)
			for _, m := range recs {
				copy(full[int(m.Seg)*segSize:], m.Vals)
			}
			emit(Msg{Target: recs[0].Target, Seg: -1, Vals: full})
		}, MsgCodec())
}

// BuildTree wires the binary-tree AllReduce that Vowpal Wabbit uses:
// log₂(workers) reduce levels followed by log₂(workers) broadcast levels,
// each moving whole vectors. The serial depth and the root's fan-in are
// the structural costs §6.2 measures against.
func BuildTree(in *lib.Stream[Msg], workers int) *lib.Stream[Msg] {
	if workers&(workers-1) != 0 {
		panic(fmt.Sprintf("allreduce: tree variant requires power-of-two workers, got %d", workers))
	}
	levels := bits.Len(uint(workers)) - 1
	// Reduce up: address each contribution to its parent, then each level
	// pair-sums and re-addresses to the next parent, until worker 0 holds
	// the total after `levels` barriers.
	cur := lib.Select(in, func(m Msg) Msg {
		return Msg{Target: m.Target / 2, Vals: m.Vals}
	}, MsgCodec())
	for l := 0; l < levels; l++ {
		cur = lib.UnaryBuffer[Msg, Msg](lib.Exchange(cur, byTarget), fmt.Sprintf("tree-reduce-%d", l), nil,
			func(_ ts.Timestamp, recs []Msg, emit func(Msg)) {
				if len(recs) == 0 {
					return
				}
				var sum []float64
				for _, m := range recs {
					sum = addInto(sum, m.Vals)
				}
				emit(Msg{Target: recs[0].Target / 2, Vals: sum})
			}, MsgCodec())
	}
	// Broadcast down by doubling: after step k, workers 0..2^(k+1)-1 hold
	// the total.
	for k := 0; k < levels; k++ {
		span := int64(1) << k
		cur = lib.UnaryBuffer[Msg, Msg](lib.Exchange(cur, byTarget), fmt.Sprintf("tree-bcast-%d", k), nil,
			func(_ ts.Timestamp, recs []Msg, emit func(Msg)) {
				for _, m := range recs {
					emit(Msg{Target: m.Target, Vals: m.Vals})
					if m.Target+span < int64(workers) {
						emit(Msg{Target: m.Target + span, Vals: m.Vals})
					}
				}
			}, MsgCodec())
	}
	final := lib.Exchange(cur, byTarget)
	return lib.Select(final, func(m Msg) Msg {
		return Msg{Target: m.Target, Seg: -1, Vals: m.Vals}
	}, MsgCodec())
}
