package allreduce

import (
	"math"
	"testing"

	"naiad/internal/lib"
	"naiad/internal/runtime"
)

// TestPipelinedEpochs feeds many AllReduce rounds without waiting for any
// of them: timely dataflow keeps the epochs separate while they execute
// concurrently, and every round's result must still be exact. This is the
// epoch-overlap behaviour the paper's coordination model exists to make
// safe.
func TestPipelinedEpochs(t *testing.T) {
	const workers, dim, epochs = 4, 32, 25
	cfg := runtime.Config{Processes: 2, WorkersPerProcess: 2, Accumulation: runtime.AccLocalGlobal}
	for name, build := range map[string]func(*lib.Stream[Msg], int) *lib.Stream[Msg]{
		"data-parallel": func(in *lib.Stream[Msg], w int) *lib.Stream[Msg] {
			return BuildDataParallel(in, w, dim)
		},
		"tree": BuildTree,
	} {
		t.Run(name, func(t *testing.T) {
			s, err := lib.NewScope(cfg)
			if err != nil {
				t.Fatal(err)
			}
			in, src := lib.NewInput[Msg](s, "grads", MsgCodec())
			col := lib.Collect(build(src, workers))
			if err := s.C.Start(); err != nil {
				t.Fatal(err)
			}
			// Blast every epoch in without synchronizing.
			for e := 0; e < epochs; e++ {
				for w := 0; w < workers; w++ {
					vec := make([]float64, dim)
					for i := range vec {
						vec[i] = float64(e*31+w*7) + float64(i)
					}
					in.SendToWorker(w, []Msg{{Target: int64(w), Vals: vec}})
				}
				in.Advance()
			}
			in.Close()
			if err := s.C.Join(); err != nil {
				t.Fatal(err)
			}
			for e := 0; e < epochs; e++ {
				msgs := col.Epoch(int64(e))
				if len(msgs) != workers {
					t.Fatalf("epoch %d: %d results", e, len(msgs))
				}
				for _, m := range msgs {
					for i, v := range m.Vals {
						var want float64
						for w := 0; w < workers; w++ {
							want += float64(e*31+w*7) + float64(i)
						}
						if math.Abs(v-want) > 1e-9 {
							t.Fatalf("epoch %d worker %d [%d]: %v want %v", e, m.Target, i, v, want)
						}
					}
				}
			}
		})
	}
}
