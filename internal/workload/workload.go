// Package workload generates the synthetic datasets the experiments run
// on: random and power-law graphs (standing in for the ClueWeb and Twitter
// follower graphs), a tweet stream with hashtags and mentions (standing in
// for the Twitter firehose), and a word corpus (standing in for the
// WordCount input). All generators are deterministic given a seed, so
// experiments are reproducible.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Edge is a directed graph edge.
type Edge struct {
	Src, Dst int64
}

// RandomGraph generates a uniform random directed graph with the given
// node and edge counts — the WCC input of §5.3/§5.4.
func RandomGraph(seed int64, nodes, edges int) []Edge {
	r := rand.New(rand.NewSource(seed))
	out := make([]Edge, edges)
	for i := range out {
		out[i] = Edge{Src: int64(r.Intn(nodes)), Dst: int64(r.Intn(nodes))}
	}
	return out
}

// PowerLawGraph generates a graph whose in-degrees follow a Zipf
// distribution with the given exponent — the skew that makes the Twitter
// follower graph hard to partition (§6.1).
func PowerLawGraph(seed int64, nodes, edges int, exponent float64) []Edge {
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, exponent, 1, uint64(nodes-1))
	out := make([]Edge, edges)
	for i := range out {
		out[i] = Edge{Src: int64(r.Intn(nodes)), Dst: int64(z.Uint64())}
	}
	return out
}

// ChainGraph generates c chains of the given length, useful for stressing
// iteration counts: WCC on a chain needs ~length iterations to converge.
func ChainGraph(chains, length int) []Edge {
	var out []Edge
	for c := 0; c < chains; c++ {
		base := int64(c * length)
		for i := 0; i < length-1; i++ {
			out = append(out, Edge{Src: base + int64(i), Dst: base + int64(i) + 1})
		}
	}
	return out
}

// CycleGraph generates c disjoint directed cycles of the given length —
// the worst case for SCC trimming, and a multi-component WCC input.
func CycleGraph(cycles, length int) []Edge {
	var out []Edge
	for c := 0; c < cycles; c++ {
		base := int64(c * length)
		for i := 0; i < length; i++ {
			out = append(out, Edge{Src: base + int64(i), Dst: base + int64((i+1)%length)})
		}
	}
	return out
}

// Tweet is one synthetic social-stream record: a user posting text that
// mentions other users and uses hashtags (§6.3, §6.4).
type Tweet struct {
	User     int64
	Mentions []int64
	Hashtags []string
}

// TweetGen produces a deterministic stream of tweets over a fixed user
// population with Zipf-distributed popularity, mimicking the skew of a
// real social network.
type TweetGen struct {
	r        *rand.Rand
	users    *rand.Zipf
	hashtags *rand.Zipf
	numTags  int
}

// NewTweetGen builds a generator over the given user population and
// hashtag vocabulary size.
func NewTweetGen(seed int64, users, hashtags int) *TweetGen {
	r := rand.New(rand.NewSource(seed))
	return &TweetGen{
		r:        r,
		users:    rand.NewZipf(r, 1.2, 8, uint64(users-1)),
		hashtags: rand.NewZipf(r, 1.3, 4, uint64(hashtags-1)),
		numTags:  hashtags,
	}
}

// Next generates one tweet.
func (g *TweetGen) Next() Tweet {
	t := Tweet{User: int64(g.users.Uint64())}
	nm := g.r.Intn(3)
	for i := 0; i < nm; i++ {
		t.Mentions = append(t.Mentions, int64(g.users.Uint64()))
	}
	nh := 1 + g.r.Intn(2)
	for i := 0; i < nh; i++ {
		t.Hashtags = append(t.Hashtags, fmt.Sprintf("#tag%d", g.hashtags.Uint64()))
	}
	return t
}

// Batch generates n tweets.
func (g *TweetGen) Batch(n int) []Tweet {
	out := make([]Tweet, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Documents generates n synthetic documents of the given word count each,
// with Zipf-distributed word frequencies — the WordCount corpus (§5.4).
func Documents(seed int64, n, wordsPerDoc, vocabulary int) []string {
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, 1.1, 16, uint64(vocabulary-1))
	out := make([]string, n)
	var sb strings.Builder
	for i := range out {
		sb.Reset()
		for w := 0; w < wordsPerDoc; w++ {
			if w > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "w%d", z.Uint64())
		}
		out[i] = sb.String()
	}
	return out
}

// Vectors generates n dense float64 vectors of the given dimension with
// standard-normal entries — the logistic-regression update vectors of
// §6.2.
func Vectors(seed int64, n, dim int) [][]float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = r.NormFloat64()
		}
		out[i] = v
	}
	return out
}

// Records generates n distinct int64 records for the throughput experiment
// (§5.1's 8-byte records).
func Records(seed int64, n int) []int64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i := range out {
		out[i] = r.Int63()
	}
	return out
}

// ExpectedWCC computes connected components of an edge list sequentially
// with union-find, for validating the dataflow implementations. It returns
// the minimum reachable node id for every node that appears in any edge,
// treating edges as undirected (weak connectivity).
func ExpectedWCC(edges []Edge) map[int64]int64 {
	parent := make(map[int64]int64)
	var find func(int64) int64
	find = func(x int64) int64 {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b int64) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		// Point the larger id at the smaller so roots are minima.
		if ra < rb {
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	for _, e := range edges {
		union(e.Src, e.Dst)
	}
	out := make(map[int64]int64, len(parent))
	for n := range parent {
		out[n] = find(n)
	}
	return out
}

// ExpectedPageRank computes reference PageRank sequentially for the given
// number of iterations with damping d, uniform teleport, and dangling-mass
// redistribution matching the dataflow implementation (dangling nodes'
// rank is not redistributed; it simply leaks, as in the paper's sparse
// formulation).
func ExpectedPageRank(edges []Edge, nodes int64, iters int, d float64) []float64 {
	outDeg := make([]int64, nodes)
	for _, e := range edges {
		outDeg[e.Src]++
	}
	rank := make([]float64, nodes)
	for i := range rank {
		rank[i] = 1.0 / float64(nodes)
	}
	for it := 0; it < iters; it++ {
		next := make([]float64, nodes)
		base := (1 - d) / float64(nodes)
		for i := range next {
			next[i] = base
		}
		for _, e := range edges {
			next[e.Dst] += d * rank[e.Src] / float64(outDeg[e.Src])
		}
		rank = next
	}
	return rank
}

// L1Distance returns the L1 distance between two equal-length vectors.
func L1Distance(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}
