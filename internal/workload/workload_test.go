package workload

import (
	"math"
	"strings"
	"testing"

	"naiad/internal/testutil"
)

func TestRandomGraphDeterministic(t *testing.T) {
	seed := testutil.Seed(t)
	a := RandomGraph(seed, 100, 500)
	b := RandomGraph(seed, 100, 500)
	if len(a) != 500 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
		if a[i].Src < 0 || a[i].Src >= 100 || a[i].Dst < 0 || a[i].Dst >= 100 {
			t.Fatalf("edge out of range: %v", a[i])
		}
	}
	if c := RandomGraph(seed+1, 100, 500); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Fatal("different seeds should differ")
	}
}

func TestPowerLawGraphIsSkewed(t *testing.T) {
	edges := PowerLawGraph(testutil.Seed(t), 1000, 20000, 1.5)
	indeg := map[int64]int{}
	for _, e := range edges {
		indeg[e.Dst]++
	}
	var maxDeg int
	for _, d := range indeg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(len(edges)) / float64(len(indeg))
	if float64(maxDeg) < 10*mean {
		t.Fatalf("max degree %d not skewed vs mean %.1f", maxDeg, mean)
	}
}

func TestChainAndCycleGraphs(t *testing.T) {
	ch := ChainGraph(3, 5)
	if len(ch) != 3*4 {
		t.Fatalf("chain edges = %d", len(ch))
	}
	cy := CycleGraph(2, 4)
	if len(cy) != 8 {
		t.Fatalf("cycle edges = %d", len(cy))
	}
	// Each cycle node has out-degree 1 back into its own cycle.
	for _, e := range cy {
		if e.Src/4 != e.Dst/4 {
			t.Fatalf("cycle edge crosses cycles: %v", e)
		}
	}
}

func TestTweetGen(t *testing.T) {
	seed := testutil.Seed(t)
	g := NewTweetGen(seed, 1000, 50)
	batch := g.Batch(200)
	if len(batch) != 200 {
		t.Fatal("batch size")
	}
	for _, tw := range batch {
		if tw.User < 0 || tw.User >= 1000 {
			t.Fatalf("user out of range: %d", tw.User)
		}
		if len(tw.Hashtags) == 0 {
			t.Fatal("tweet without hashtags")
		}
		for _, h := range tw.Hashtags {
			if !strings.HasPrefix(h, "#tag") {
				t.Fatalf("hashtag %q", h)
			}
		}
	}
	// Determinism.
	g2 := NewTweetGen(seed, 1000, 50)
	tw1, tw2 := g2.Next(), NewTweetGen(seed, 1000, 50).Next()
	if tw1.User != tw2.User {
		t.Fatal("not deterministic")
	}
}

func TestDocuments(t *testing.T) {
	docs := Documents(testutil.Seed(t), 10, 20, 100)
	if len(docs) != 10 {
		t.Fatal("count")
	}
	for _, d := range docs {
		if got := len(strings.Fields(d)); got != 20 {
			t.Fatalf("words = %d", got)
		}
	}
}

func TestVectorsAndRecords(t *testing.T) {
	seed := testutil.Seed(t)
	vs := Vectors(seed, 4, 16)
	if len(vs) != 4 || len(vs[0]) != 16 {
		t.Fatal("shape")
	}
	rs := Records(seed, 100)
	if len(rs) != 100 {
		t.Fatal("count")
	}
	seen := map[int64]bool{}
	for _, r := range rs {
		if seen[r] {
			t.Fatal("duplicate record (vanishingly unlikely)")
		}
		seen[r] = true
	}
}

func TestExpectedWCC(t *testing.T) {
	// Two components: {1,2,3} and {10,11}.
	edges := []Edge{{1, 2}, {3, 2}, {10, 11}}
	got := ExpectedWCC(edges)
	if got[1] != 1 || got[2] != 1 || got[3] != 1 {
		t.Fatalf("component A: %v", got)
	}
	if got[10] != 10 || got[11] != 10 {
		t.Fatalf("component B: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("nodes = %d", len(got))
	}
}

func TestExpectedWCCChain(t *testing.T) {
	got := ExpectedWCC(ChainGraph(2, 100))
	for n, c := range got {
		want := (n / 100) * 100
		if c != want {
			t.Fatalf("node %d → %d, want %d", n, c, want)
		}
	}
}

func TestExpectedPageRankSums(t *testing.T) {
	edges := []Edge{{0, 1}, {1, 2}, {2, 0}}
	rank := ExpectedPageRank(edges, 3, 50, 0.85)
	var sum float64
	for _, r := range rank {
		sum += r
	}
	if math.Abs(sum-1.0) > 1e-9 {
		t.Fatalf("rank sum = %v", sum)
	}
	// On a symmetric cycle all ranks are equal.
	if math.Abs(rank[0]-rank[1]) > 1e-12 || math.Abs(rank[1]-rank[2]) > 1e-12 {
		t.Fatalf("ranks = %v", rank)
	}
}

func TestL1Distance(t *testing.T) {
	if d := L1Distance([]float64{1, 2}, []float64{2, 0}); d != 3 {
		t.Fatalf("d = %v", d)
	}
}
