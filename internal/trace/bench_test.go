package trace

import (
	"testing"
	"time"
)

// BenchmarkDisabledHook measures the nil-check fast path exactly as the
// runtime's hooks spell it: one predictable branch when no tracer is
// configured. This is the cost every OnRecv pays when tracing is off.
func BenchmarkDisabledHook(b *testing.B) {
	var tr *Tracer
	var n int64
	for i := 0; i < b.N; i++ {
		if tr != nil {
			tr.Callback(0, 0, 0, false, 0)
		}
		n++
	}
	_ = n
}

// BenchmarkEmit measures one enabled-path event emission (timestamp + ring
// push) from a single producer.
func BenchmarkEmit(b *testing.B) {
	tr := New(Config{RingBits: 16})
	if err := tr.Attach(1, []StageMeta{{ID: 0, Name: "bench"}}); err != nil {
		b.Fatal(err)
	}
	ev := Event{Kind: EvSchedule, Worker: 0, Stage: -1, Loc: -1, Epoch: -1, N: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(ev)
		if i&0xFFFF == 0xFFFF {
			// Keep the ring from saturating into the drop path, and drop the
			// consumed log so the measurement stays the steady state of a
			// harvest loop rather than an ever-growing re-sort.
			tr.Harvest()
			tr.Reset()
		}
	}
}

// BenchmarkCallback measures the full per-invocation cost when tracing is
// enabled: histogram record + event emission.
func BenchmarkCallback(b *testing.B) {
	tr := New(Config{RingBits: 16})
	if err := tr.Attach(1, []StageMeta{{ID: 0, Name: "bench"}}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Callback(0, 0, int64(i), false, 1500*time.Nanosecond)
		if i&0xFFFF == 0xFFFF {
			tr.Harvest()
			tr.Reset()
		}
	}
}

// BenchmarkRingPush isolates the lock-free push (no timestamping).
func BenchmarkRingPush(b *testing.B) {
	r := NewRing(16)
	ev := Event{Kind: EvSchedule}
	var buf []Event
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Push(ev)
		if i&0xFFFF == 0xFFFF {
			buf = r.Drain(buf[:0])
		}
	}
}

// BenchmarkHistogramRecord isolates one histogram sample.
func BenchmarkHistogramRecord(b *testing.B) {
	h := &Histogram{}
	for i := 0; i < b.N; i++ {
		h.Record(int64(i)&0xFFFFF + 100)
	}
}
