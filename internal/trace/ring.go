package trace

import "sync/atomic"

// Ring is a bounded lock-free multi-producer, single-consumer event queue
// (the Vyukov bounded-queue discipline): each slot carries a sequence
// number that gates visibility, so a consumer never observes a torn event
// and producers on different goroutines never overwrite each other. When
// the ring is full, Push drops the event and counts it — tracing sheds
// load instead of applying backpressure to the dataflow.
//
// Producers may be any goroutine; Drain must only be called from one
// goroutine at a time.
type Ring struct {
	mask    uint64
	slots   []slot
	_       [48]byte // keep the hot cursors off the slots' cache lines
	enq     atomic.Uint64
	_       [56]byte
	deq     uint64 // single consumer: no atomicity needed beyond slot seqs
	dropped atomic.Uint64
}

type slot struct {
	seq atomic.Uint64
	ev  Event
}

// NewRing returns a ring with capacity 2^bits events.
func NewRing(bits int) *Ring {
	if bits < 1 || bits > 30 {
		panic("trace: ring bits out of range [1,30]")
	}
	n := uint64(1) << bits
	r := &Ring{mask: n - 1, slots: make([]slot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring capacity in events.
func (r *Ring) Cap() int { return len(r.slots) }

// Push enqueues ev, returning false (and counting a drop) when the ring is
// full. Safe for concurrent use by any number of producers.
func (r *Ring) Push(ev Event) bool {
	pos := r.enq.Load()
	for {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch d := int64(seq) - int64(pos); {
		case d == 0:
			if r.enq.CompareAndSwap(pos, pos+1) {
				s.ev = ev
				s.seq.Store(pos + 1) // release: the event is visible
				return true
			}
			pos = r.enq.Load()
		case d < 0:
			// The slot still holds an unconsumed event a full lap behind:
			// the ring is full.
			r.dropped.Add(1)
			return false
		default:
			// Another producer claimed this slot; reload the cursor.
			pos = r.enq.Load()
		}
	}
}

// Drain appends every consumable event to buf and returns it. Only one
// goroutine may drain a ring at a time.
func (r *Ring) Drain(buf []Event) []Event {
	pos := r.deq
	for {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		if int64(seq)-int64(pos+1) < 0 {
			break // next slot not yet published
		}
		buf = append(buf, s.ev)
		s.seq.Store(pos + r.mask + 1) // free the slot for the next lap
		pos++
	}
	r.deq = pos
	return buf
}

// Dropped returns the number of events shed because the ring was full.
func (r *Ring) Dropped() uint64 { return r.dropped.Load() }
