package trace

import (
	"encoding/binary"
	"fmt"
)

// Binary trace-log framing: a 4-byte magic with embedded version, a uint32
// event count, then fixed-width little-endian events. The decoder is
// defensive — trace files cross process boundaries (dumps, offline
// analysis), so hostile or truncated bytes must produce an error, never a
// panic (FuzzTraceDecode enforces this).

// traceMagic identifies a version-1 trace log.
var traceMagic = [4]byte{'N', 'T', 'R', '1'}

// eventWire is the encoded size of one event in bytes:
// kind(1) aux(4) worker(4) stage(4) loc(4) epoch(8) t(8) dur(8) n(8).
const eventWire = 1 + 4*4 + 8*4

// headerWire is the encoded size of the log header.
const headerWire = 4 + 4

// EncodedSize returns the exact encoding size of a log of n events.
func EncodedSize(n int) int { return headerWire + n*eventWire }

// EncodeEvents serializes an event log.
func EncodeEvents(events []Event) []byte {
	buf := make([]byte, 0, EncodedSize(len(events)))
	buf = append(buf, traceMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(events)))
	for _, e := range events {
		buf = append(buf, byte(e.Kind))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Aux))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Worker))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Stage))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Loc))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Epoch))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.T))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Dur))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.N))
	}
	return buf
}

// DecodeEvents parses a serialized event log. It validates the magic, the
// declared count against the bytes present, and every event's kind, and
// returns a descriptive error on any mismatch.
func DecodeEvents(data []byte) ([]Event, error) {
	if len(data) < headerWire {
		return nil, fmt.Errorf("trace: log truncated: %d bytes, need at least %d", len(data), headerWire)
	}
	if [4]byte(data[:4]) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", data[:4])
	}
	n := int(binary.LittleEndian.Uint32(data[4:8]))
	if want := EncodedSize(n); len(data) != want {
		return nil, fmt.Errorf("trace: log declares %d events (%d bytes), has %d bytes", n, want, len(data))
	}
	events := make([]Event, n)
	off := headerWire
	for i := range events {
		e := &events[i]
		e.Kind = Kind(data[off])
		if e.Kind >= numKinds {
			return nil, fmt.Errorf("trace: event %d has unknown kind %d", i, data[off])
		}
		e.Aux = int32(binary.LittleEndian.Uint32(data[off+1:]))
		e.Worker = int32(binary.LittleEndian.Uint32(data[off+5:]))
		e.Stage = int32(binary.LittleEndian.Uint32(data[off+9:]))
		e.Loc = int32(binary.LittleEndian.Uint32(data[off+13:]))
		e.Epoch = int64(binary.LittleEndian.Uint64(data[off+17:]))
		e.T = int64(binary.LittleEndian.Uint64(data[off+25:]))
		e.Dur = int64(binary.LittleEndian.Uint64(data[off+33:]))
		e.N = int64(binary.LittleEndian.Uint64(data[off+41:]))
		off += eventWire
	}
	return events, nil
}
