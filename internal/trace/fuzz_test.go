package trace

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzTraceDecode fuzzes the trace-log decoder: for any input bytes the
// decoder must return cleanly (error or events) and never panic, and any
// successfully decoded log must re-encode to the identical bytes
// (round-trip). Seed corpus covers the empty log, a real log, and a few
// corruption shapes.
func FuzzTraceDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeEvents(nil))
	sample := []Event{
		{Kind: EvOnRecv, Worker: 0, Stage: 3, Loc: -1, Epoch: 7, T: 100, Dur: 2500, N: 1},
		{Kind: EvFrontier, Worker: -1, Stage: -1, Loc: 12, Epoch: 8, T: 200, Aux: 1},
		{Kind: EvFrameSend, Worker: 1, Stage: -1, Loc: 2, Epoch: -1, T: 300, Aux: 2, N: 4096},
	}
	good := EncodeEvents(sample)
	f.Add(good)
	f.Add(good[:len(good)-1])              // truncated tail
	f.Add(append([]byte("XXXX"), good...)) // bad magic
	bent := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(bent[4:], 1<<30) // absurd count
	f.Add(bent)
	kinded := append([]byte(nil), good...)
	kinded[headerWire] = byte(numKinds) + 5 // unknown kind
	f.Add(kinded)

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := DecodeEvents(data)
		if err != nil {
			return
		}
		re := EncodeEvents(events)
		if !bytes.Equal(re, data) {
			t.Fatalf("round-trip mismatch: decoded %d events, re-encoded %d bytes from %d input bytes",
				len(events), len(re), len(data))
		}
	})
}

// TestCodecRoundTrip pins the deterministic encode/decode contract outside
// the fuzzer: every kind, every field, negative sentinels included.
func TestCodecRoundTrip(t *testing.T) {
	var events []Event
	for k := Kind(0); k < numKinds; k++ {
		events = append(events, Event{
			Kind: k, Aux: int32(k) - 1, Worker: int32(k) % 4, Stage: -1,
			Loc: 100 + int32(k), Epoch: int64(k) * 1000, T: int64(k) * 17,
			Dur: -1, N: 1 << uint(k),
		})
	}
	data := EncodeEvents(events)
	if len(data) != EncodedSize(len(events)) {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(data), EncodedSize(len(events)))
	}
	got, err := DecodeEvents(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], events[i])
		}
	}
}

// TestDecodeRejects pins the decoder's error cases.
func TestDecodeRejects(t *testing.T) {
	cases := map[string][]byte{
		"empty":        {},
		"short-header": []byte("NTR"),
		"bad-magic":    []byte("XTR1\x00\x00\x00\x00"),
		"count-lies":   append(EncodeEvents(nil), 0xFF),
	}
	good := EncodeEvents([]Event{{Kind: EvOnRecv}})
	bad := append([]byte(nil), good...)
	bad[headerWire] = byte(numKinds)
	cases["unknown-kind"] = bad
	for name, data := range cases {
		if _, err := DecodeEvents(data); err == nil {
			t.Errorf("%s: decode accepted invalid input", name)
		}
	}
}
