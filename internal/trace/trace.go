// Package trace is the runtime's self-introspection subsystem: low-overhead
// event tracing, per-stage latency histograms, and frontier-lag
// observability (Naiad §5–§6 diagnoses micro-stragglers and slow frontier
// advancement from exactly this kind of internal instrumentation; see
// docs/observability.md).
//
// Design constraints, in order:
//
//  1. A disabled tracer costs one predictable nil-check branch per hook —
//     the runtime holds a *Tracer and skips everything when it is nil.
//  2. An enabled tracer never blocks the dataflow: events go into
//     fixed-size lock-free rings (one per worker, one shared for
//     non-worker sources) and are dropped — with accounting — when a ring
//     fills between harvests.
//  3. The raw event log is analyzable by the system itself: it can be
//     replayed as a naiad input stream (package introspect), following the
//     online-analysis approach of Sandstede's timely-dataflow diagnostics.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Config sizes a Tracer.
type Config struct {
	// RingBits is the log2 capacity of each event ring (one per worker
	// plus one shared); 0 means the default of 14 (16384 events).
	RingBits int
}

func (c Config) ringBits() int {
	if c.RingBits > 0 {
		return c.RingBits
	}
	return 14
}

// StageMeta names one stage for reports and dumps.
type StageMeta struct {
	ID   int32
	Name string
}

// LagSample is one location's frontier age: how long ago its frontier
// element last moved. A location whose frontier sits still while others
// advance is where the computation is stuck.
type LagSample struct {
	Loc   int32
	Epoch int64 // the location's current minimum frontier epoch
	Age   time.Duration
}

// lagState tracks one location's last observed frontier movement.
type lagState struct {
	epoch int64
	at    int64 // tracer-relative nanos of the movement
}

// Tracer collects events and per-stage latency histograms for one
// computation (or several incarnations of the same computation, under the
// supervisor). Create it with New, pass it in runtime.Config.Tracer, and
// read it after the computation quiesces (Harvest, StageLatency) or live
// for the gauges (FrontierLags, Dropped).
type Tracer struct {
	cfg    Config
	start  time.Time
	shared *Ring

	mu       sync.Mutex
	attached bool
	workers  int
	stages   []StageMeta
	names    map[int32]string
	rings    []*Ring
	recvH    [][]*Histogram // [worker][stage]: OnRecv callback latencies
	notifyH  [][]*Histogram // [worker][stage]: OnNotify callback latencies
	log      []Event
	lag      map[int32]lagState
}

// New returns an empty tracer. It becomes fully operational when a
// computation attaches at Start; events emitted before that go to the
// shared ring.
func New(cfg Config) *Tracer {
	return &Tracer{
		cfg:    cfg,
		start:  time.Now(),
		shared: NewRing(cfg.ringBits()),
		names:  make(map[int32]string),
		lag:    make(map[int32]lagState),
	}
}

// Attach binds the tracer to a computation shape: per-worker rings and
// per-worker, per-stage histogram rows. The runtime calls it during Start.
// Attaching again with the same shape is a no-op (the supervisor rebuilds
// the same graph across incarnations and histograms keep accumulating);
// a different shape is an error.
func (t *Tracer) Attach(workers int, stages []StageMeta) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.attached {
		if workers == t.workers && len(stages) == len(t.stages) {
			return nil
		}
		return fmt.Errorf("trace: tracer already attached to %d workers / %d stages, cannot re-attach to %d / %d",
			t.workers, len(t.stages), workers, len(stages))
	}
	t.attached = true
	t.workers = workers
	t.stages = append([]StageMeta(nil), stages...)
	maxID := int32(-1)
	for _, s := range stages {
		t.names[s.ID] = s.Name
		if s.ID > maxID {
			maxID = s.ID
		}
	}
	t.rings = make([]*Ring, workers)
	t.recvH = make([][]*Histogram, workers)
	t.notifyH = make([][]*Histogram, workers)
	for w := 0; w < workers; w++ {
		t.rings[w] = NewRing(t.cfg.ringBits())
		t.recvH[w] = make([]*Histogram, maxID+1)
		t.notifyH[w] = make([]*Histogram, maxID+1)
		for s := range t.recvH[w] {
			t.recvH[w][s] = &Histogram{}
			t.notifyH[w][s] = &Histogram{}
		}
	}
	return nil
}

// Now returns the tracer-relative timestamp in nanoseconds (what Event.T
// records).
func (t *Tracer) Now() int64 { return int64(time.Since(t.start)) }

// Emit stamps ev.T and enqueues the event on its worker's ring (ev.Worker
// < 0, or an unknown worker, routes to the shared ring). Safe for
// concurrent use; never blocks — a full ring drops and counts.
func (t *Tracer) Emit(ev Event) {
	ev.T = int64(time.Since(t.start))
	r := t.shared
	if w := ev.Worker; w >= 0 && int(w) < len(t.rings) {
		r = t.rings[w]
	}
	r.Push(ev)
	if ev.Kind == EvFrontier {
		t.noteFrontier(ev)
	}
}

// Callback records one OnRecv/OnNotify invocation: the duration goes into
// the worker's per-stage histogram (never dropped) and an event into the
// worker's ring. Only the owning worker may call this for its worker id —
// the histogram row is single-writer.
func (t *Tracer) Callback(worker int, stage int32, epoch int64, notify bool, dur time.Duration) {
	t.CallbackN(worker, stage, epoch, notify, dur, 1)
}

// CallbackN is Callback for a batch delivery: one invocation that consumed
// n records. The histogram still records one sample (it measures callback
// latency, not per-record cost); the event carries N = n so record-count
// consumers stay exact.
func (t *Tracer) CallbackN(worker int, stage int32, epoch int64, notify bool, dur time.Duration, n int64) {
	kind := EvOnRecv
	hs := t.recvH
	if notify {
		kind = EvOnNotify
		hs = t.notifyH
	}
	if worker >= 0 && worker < len(hs) && int(stage) < len(hs[worker]) {
		hs[worker][stage].Record(int64(dur))
	}
	t.Emit(Event{
		Kind: kind, Aux: 0, Worker: int32(worker), Stage: stage, Loc: -1,
		Epoch: epoch, Dur: int64(dur), N: n,
	})
}

// noteFrontier maintains the frontier-lag gauge from EvFrontier events.
func (t *Tracer) noteFrontier(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ev.Aux == 1 {
		delete(t.lag, ev.Loc)
		return
	}
	t.lag[ev.Loc] = lagState{epoch: ev.Epoch, at: ev.T}
}

// FrontierLags returns the current frontier age of every location that
// still has a frontier element, sorted oldest-first: the wall-clock time
// since that location's frontier last moved. Safe to call while the
// computation runs.
func (t *Tracer) FrontierLags() []LagSample {
	now := t.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]LagSample, 0, len(t.lag))
	for loc, st := range t.lag {
		out = append(out, LagSample{Loc: loc, Epoch: st.epoch, Age: time.Duration(now - st.at)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Age != out[j].Age {
			return out[i].Age > out[j].Age
		}
		return out[i].Loc < out[j].Loc
	})
	return out
}

// Harvest drains every ring into the tracer's accumulated log and returns
// a copy of the full log, time-ordered. Call after the computation
// quiesces (between epochs, or after Join); concurrent emitters only risk
// their newest events landing in the next harvest.
func (t *Tracer) Harvest() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.log = t.shared.Drain(t.log)
	for _, r := range t.rings {
		t.log = r.Drain(t.log)
	}
	sort.SliceStable(t.log, func(i, j int) bool { return t.log[i].T < t.log[j].T })
	return append([]Event(nil), t.log...)
}

// Reset discards the accumulated event log (the histograms, gauges, and
// drop counters are untouched). A long-running harvest loop calls it after
// consuming each Harvest so the log does not grow without bound.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.log = t.log[:0]
}

// Dropped returns the total number of events shed across all rings.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	rings := t.rings
	t.mu.Unlock()
	n := t.shared.Dropped()
	for _, r := range rings {
		n += r.Dropped()
	}
	return n
}

// StageName returns the attached name of a stage id ("stage<N>" when
// unknown).
func (t *Tracer) StageName(id int32) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n, ok := t.names[id]; ok {
		return n
	}
	return fmt.Sprintf("stage%d", id)
}

// Stages returns the attached stage metadata.
func (t *Tracer) Stages() []StageMeta {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]StageMeta(nil), t.stages...)
}

// Workers returns the attached worker count (0 before Attach).
func (t *Tracer) Workers() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.workers
}

// StageLatency merges the per-worker histograms of one stage into a single
// aggregate: OnRecv latencies, or OnNotify when notify is set. Call after
// the computation quiesces — worker histograms are written without locks
// on the hot path.
func (t *Tracer) StageLatency(stage int32, notify bool) *Histogram {
	t.mu.Lock()
	defer t.mu.Unlock()
	agg := &Histogram{}
	hs := t.recvH
	if notify {
		hs = t.notifyH
	}
	for w := range hs {
		if int(stage) < len(hs[w]) {
			agg.Merge(hs[w][stage])
		}
	}
	return agg
}
