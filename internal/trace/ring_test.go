package trace

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestRingHammer is the concurrency hammer (run under -race via make
// check): several writer goroutines push uniquely-tagged events while one
// reader drains continuously. Every pushed event must either arrive intact
// (no loss, no tearing, no duplication) or be counted as dropped, and at
// most capacity events may be in flight at any moment.
func TestRingHammer(t *testing.T) {
	const (
		bits    = 8 // small ring (256) so the hammer actually fills it
		writers = 8
		perW    = 20_000
	)
	r := NewRing(bits)

	var pushed atomic.Int64 // successfully pushed (not dropped)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				id := int64(w)*perW + int64(i)
				// Tear detector: every field derives from id; a torn event
				// (fields from two different writes) breaks the relations.
				ev := Event{
					Kind:   EvSchedule,
					Worker: int32(w),
					Stage:  int32(id % 1000),
					Loc:    int32(w),
					Epoch:  id,
					Dur:    id * 3,
					N:      id * 7,
				}
				if r.Push(ev) {
					pushed.Add(1)
				}
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	seen := make(map[int64]bool, writers*perW)
	var buf []Event
	check := func() {
		buf = r.Drain(buf[:0])
		for _, ev := range buf {
			id := ev.Epoch
			if id < 0 || id >= writers*perW {
				t.Errorf("impossible event id %d", id)
				return
			}
			if ev.Worker != int32(id/perW) || ev.Stage != int32(id%1000) ||
				ev.Dur != id*3 || ev.N != id*7 {
				t.Errorf("torn event: id=%d worker=%d stage=%d dur=%d n=%d",
					id, ev.Worker, ev.Stage, ev.Dur, ev.N)
				return
			}
			if seen[id] {
				t.Errorf("event %d delivered twice", id)
				return
			}
			seen[id] = true
		}
	}
	running := true
	for running {
		select {
		case <-done:
			running = false
		default:
		}
		check()
		if t.Failed() {
			return
		}
	}
	check() // final drain after all writers finished

	total := int64(writers * perW)
	dropped := int64(r.Dropped())
	if got := int64(len(seen)); got != pushed.Load() {
		t.Fatalf("delivered %d events, but %d pushes succeeded", got, pushed.Load())
	}
	if pushed.Load()+dropped != total {
		t.Fatalf("accounting broken: %d delivered + %d dropped != %d written",
			pushed.Load(), dropped, total)
	}
	if dropped == 0 {
		t.Fatalf("hammer never filled the %d-slot ring; not exercising the drop path", r.Cap())
	}
	t.Logf("delivered %d, dropped %d of %d (ring capacity %d)", len(seen), dropped, total, r.Cap())
}

// TestRingFIFOWithinCapacity: with a single producer staying within
// capacity between drains, nothing is lost or reordered.
func TestRingFIFOWithinCapacity(t *testing.T) {
	r := NewRing(6) // 64 slots
	next := int64(0)
	var buf []Event
	for round := 0; round < 100; round++ {
		for i := 0; i < r.Cap(); i++ {
			if !r.Push(Event{Epoch: next}) {
				t.Fatalf("push %d failed below capacity", next)
			}
			next++
		}
		buf = r.Drain(buf[:0])
		if len(buf) != r.Cap() {
			t.Fatalf("round %d: drained %d, want %d", round, len(buf), r.Cap())
		}
		for i := 1; i < len(buf); i++ {
			if buf[i].Epoch != buf[i-1].Epoch+1 {
				t.Fatalf("round %d: order broken at %d: %d after %d", round, i, buf[i].Epoch, buf[i-1].Epoch)
			}
		}
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped %d events without ever exceeding capacity", r.Dropped())
	}
}

// TestRingDropAccountingSingleProducer: past capacity, every rejected push
// is counted and the ring's contents survive untouched.
func TestRingDropAccountingSingleProducer(t *testing.T) {
	r := NewRing(4) // 16 slots
	for i := 0; i < r.Cap(); i++ {
		if !r.Push(Event{Epoch: int64(i)}) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	for i := 0; i < 10; i++ {
		if r.Push(Event{Epoch: 999}) {
			t.Fatal("push succeeded on a full ring")
		}
	}
	if r.Dropped() != 10 {
		t.Fatalf("dropped = %d, want 10", r.Dropped())
	}
	got := r.Drain(nil)
	if len(got) != r.Cap() {
		t.Fatalf("drained %d, want %d", len(got), r.Cap())
	}
	for i, ev := range got {
		if ev.Epoch != int64(i) {
			t.Fatalf("slot %d holds epoch %d after overflow pushes", i, ev.Epoch)
		}
	}
}
