package trace

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"naiad/internal/testutil"
)

// exactQuantile is the sorted-slice oracle, using the same rank definition
// as Histogram.Quantile: rank = ceil(q·n), clamped to [1, n].
func exactQuantile(sorted []int64, q float64) int64 {
	n := len(sorted)
	r := int(math.Ceil(q * float64(n)))
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	return sorted[r-1]
}

// checkQuantiles cross-checks a histogram against the oracle for a grid of
// quantiles plus randomized ones: the estimate must be at least the exact
// value and overshoot by at most the bucket's relative-error bound
// (exact/2^histSubBits; exact below 2^histSubBits).
func checkQuantiles(t *testing.T, h *Histogram, samples []int64, rng *rand.Rand) {
	t.Helper()
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	qs := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1}
	for i := 0; i < 50; i++ {
		qs = append(qs, rng.Float64())
	}
	for _, q := range qs {
		exact := exactQuantile(sorted, q)
		est := h.Quantile(q)
		if est < exact {
			t.Fatalf("q=%v: estimate %d below exact %d", q, est, exact)
		}
		if bound := exact / histSubCount; est-exact > bound {
			t.Fatalf("q=%v: estimate %d overshoots exact %d by %d (> bound %d)",
				q, est, exact, est-exact, bound)
		}
	}
}

// sampleSets generates the randomized distributions the property test runs
// over: uniform small (exact region), wide uniform, exponential-ish
// latencies, and a skewed mixture with outliers.
func sampleSets(rng *rand.Rand) map[string][]int64 {
	sets := make(map[string][]int64)
	small := make([]int64, 2000)
	for i := range small {
		small[i] = rng.Int63n(histSubCount)
	}
	sets["uniform-small"] = small

	wide := make([]int64, 5000)
	for i := range wide {
		wide[i] = rng.Int63n(1 << 40)
	}
	sets["uniform-wide"] = wide

	exp := make([]int64, 5000)
	for i := range exp {
		exp[i] = int64(rng.ExpFloat64() * 250_000) // ~latency ns
	}
	sets["exponential"] = exp

	mix := make([]int64, 3000)
	for i := range mix {
		switch rng.Intn(10) {
		case 0:
			mix[i] = rng.Int63n(1 << 50) // outliers
		case 1, 2:
			mix[i] = rng.Int63n(100)
		default:
			mix[i] = 50_000 + rng.Int63n(10_000)
		}
	}
	sets["skewed-mix"] = mix
	return sets
}

// TestHistogramQuantilesAgainstOracle is the property test of the
// histogram: randomized samples, every quantile cross-checked against the
// exact sorted-slice oracle within the bucket's relative-error bound.
func TestHistogramQuantilesAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(testutil.Seed(t)))
	for name, samples := range sampleSets(rng) {
		t.Run(name, func(t *testing.T) {
			h := &Histogram{}
			var sum int64
			for _, v := range samples {
				h.Record(v)
				sum += v
			}
			if got := h.Count(); got != uint64(len(samples)) {
				t.Fatalf("count %d, want %d", got, len(samples))
			}
			if h.Sum() != sum {
				t.Fatalf("sum %d, want %d", h.Sum(), sum)
			}
			checkQuantiles(t, h, samples, rng)
		})
	}
}

// TestHistogramMergeMatchesOracle exercises the merge path (worker
// histograms → stage aggregate): samples scattered across several
// histograms, merged, must satisfy the same oracle bound — and agree
// exactly with a single histogram fed everything.
func TestHistogramMergeMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(testutil.Seed(t)))
	for name, samples := range sampleSets(rng) {
		t.Run(name, func(t *testing.T) {
			const workers = 7
			parts := make([]*Histogram, workers)
			for i := range parts {
				parts[i] = &Histogram{}
			}
			single := &Histogram{}
			for i, v := range samples {
				parts[i%workers].Record(v)
				single.Record(v)
			}
			agg := &Histogram{}
			for _, p := range parts {
				agg.Merge(p)
			}
			if agg.Count() != single.Count() || agg.Sum() != single.Sum() ||
				agg.Min() != single.Min() || agg.Max() != single.Max() {
				t.Fatalf("merged summary diverges: merged (n=%d sum=%d min=%d max=%d), single (n=%d sum=%d min=%d max=%d)",
					agg.Count(), agg.Sum(), agg.Min(), agg.Max(),
					single.Count(), single.Sum(), single.Min(), single.Max())
			}
			for q := 0.0; q <= 1.0; q += 0.05 {
				if a, s := agg.Quantile(q), single.Quantile(q); a != s {
					t.Fatalf("q=%v: merged quantile %d != single-histogram quantile %d", q, a, s)
				}
			}
			checkQuantiles(t, agg, samples, rng)
		})
	}
}

// TestHistogramEdgeCases nails the deterministic corners.
func TestHistogramEdgeCases(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(-5) // clamps to 0
	if h.Min() != 0 || h.Max() != 0 || h.Quantile(1) != 0 {
		t.Fatalf("negative clamp broken: min=%d max=%d", h.Min(), h.Max())
	}
	h.Record(1)
	h.Record(histSubCount - 1) // exact region boundary
	if got := h.Quantile(1); got != histSubCount-1 {
		t.Fatalf("q=1 got %d, want %d", got, histSubCount-1)
	}
	// Bucket mapping must be monotone and continuous at power boundaries.
	prev := -1
	for v := int64(0); v < 4096; v++ {
		i := bucketIndex(v)
		if i != prev && i != prev+1 {
			t.Fatalf("bucketIndex not contiguous at %d: %d after %d", v, i, prev)
		}
		if up := bucketUpper(i); up < v {
			t.Fatalf("bucketUpper(%d)=%d below member %d", i, up, v)
		}
		prev = i
	}
}
