package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func attachTestTracer(t *testing.T) *Tracer {
	t.Helper()
	tr := New(Config{RingBits: 10})
	err := tr.Attach(2, []StageMeta{{ID: 0, Name: "input"}, {ID: 2, Name: "count"}})
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	return tr
}

func TestTracerEmitHarvest(t *testing.T) {
	tr := attachTestTracer(t)
	tr.Emit(Event{Kind: EvSchedule, Worker: 0, Stage: -1, Loc: -1, Epoch: -1, N: 3})
	tr.Emit(Event{Kind: EvProgressPost, Worker: 1, Stage: -1, Loc: -1, Epoch: -1, N: 5})
	tr.Emit(Event{Kind: EvFrameSend, Worker: -1, Stage: -1, Loc: 1, Epoch: -1, N: 128})
	log := tr.Harvest()
	if len(log) != 3 {
		t.Fatalf("harvested %d events, want 3", len(log))
	}
	for i := 1; i < len(log); i++ {
		if log[i].T < log[i-1].T {
			t.Fatalf("harvest not time-ordered: %d after %d", log[i].T, log[i-1].T)
		}
	}
	// Harvest accumulates: a second harvest returns the same log plus any
	// new events.
	tr.Emit(Event{Kind: EvSchedule, Worker: 0, N: 1})
	if got := tr.Harvest(); len(got) != 4 {
		t.Fatalf("second harvest returned %d events, want 4", len(got))
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped %d events on an empty-ish ring", tr.Dropped())
	}
}

func TestTracerAttachIdempotence(t *testing.T) {
	tr := attachTestTracer(t)
	// Same shape: no-op (supervisor incarnations re-attach).
	if err := tr.Attach(2, []StageMeta{{ID: 0, Name: "input"}, {ID: 2, Name: "count"}}); err != nil {
		t.Fatalf("same-shape re-attach: %v", err)
	}
	if err := tr.Attach(3, nil); err == nil {
		t.Fatal("different-shape re-attach must error")
	}
}

func TestTracerCallbackHistograms(t *testing.T) {
	tr := attachTestTracer(t)
	for i := 0; i < 10; i++ {
		tr.Callback(0, 2, int64(i), false, time.Duration(1000*(i+1)))
		tr.Callback(1, 2, int64(i), false, time.Duration(2000*(i+1)))
		tr.Callback(0, 2, int64(i), true, 500)
	}
	recv := tr.StageLatency(2, false)
	if recv.Count() != 20 {
		t.Fatalf("recv count %d, want 20 (merged across workers)", recv.Count())
	}
	if recv.Min() != 1000 || recv.Max() != 20000 {
		t.Fatalf("recv min/max = %d/%d, want 1000/20000", recv.Min(), recv.Max())
	}
	notify := tr.StageLatency(2, true)
	if notify.Count() != 10 || notify.Max() != 500 {
		t.Fatalf("notify count/max = %d/%d, want 10/500", notify.Count(), notify.Max())
	}
	if tr.StageLatency(0, false).Count() != 0 {
		t.Fatal("stage 0 histogram must be untouched")
	}
	log := tr.Harvest()
	var nRecv, nNotify int
	for _, ev := range log {
		switch ev.Kind {
		case EvOnRecv:
			nRecv++
		case EvOnNotify:
			nNotify++
		}
	}
	if nRecv != 20 || nNotify != 10 {
		t.Fatalf("event log has %d/%d recv/notify events, want 20/10", nRecv, nNotify)
	}
}

func TestTracerFrontierLags(t *testing.T) {
	tr := attachTestTracer(t)
	tr.Emit(Event{Kind: EvFrontier, Worker: 0, Stage: -1, Loc: 4, Epoch: 1})
	tr.Emit(Event{Kind: EvFrontier, Worker: 0, Stage: -1, Loc: 7, Epoch: 2})
	lags := tr.FrontierLags()
	if len(lags) != 2 {
		t.Fatalf("got %d lag samples, want 2", len(lags))
	}
	// Loc 4 moved first, so it has aged longer: oldest-first ordering.
	if lags[0].Loc != 4 || lags[1].Loc != 7 {
		t.Fatalf("lag order = %d,%d, want 4,7 (oldest first)", lags[0].Loc, lags[1].Loc)
	}
	if lags[0].Epoch != 1 || lags[0].Age < 0 {
		t.Fatalf("lag sample broken: %+v", lags[0])
	}
	// Aux=1 retires the location from the gauge.
	tr.Emit(Event{Kind: EvFrontier, Worker: 0, Stage: -1, Loc: 4, Epoch: 2, Aux: 1})
	if lags = tr.FrontierLags(); len(lags) != 1 || lags[0].Loc != 7 {
		t.Fatalf("after retirement got %+v, want only loc 7", lags)
	}
}

func TestTracerStageNames(t *testing.T) {
	tr := attachTestTracer(t)
	if got := tr.StageName(2); got != "count" {
		t.Fatalf("StageName(2) = %q", got)
	}
	if got := tr.StageName(99); got != "stage99" {
		t.Fatalf("StageName(99) = %q", got)
	}
	if tr.Workers() != 2 || len(tr.Stages()) != 2 {
		t.Fatalf("shape = %d workers / %d stages", tr.Workers(), len(tr.Stages()))
	}
}

func TestSinks(t *testing.T) {
	tr := attachTestTracer(t)
	tr.Callback(0, 2, 3, false, 1500)
	tr.Emit(Event{Kind: EvFrontier, Worker: 0, Stage: -1, Loc: 4, Epoch: 3})
	log := tr.Harvest()

	var jbuf bytes.Buffer
	if err := WriteJSON(&jbuf, log, tr.StageName); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(jbuf.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON dump is not valid JSON: %v", err)
	}
	if len(decoded) != 2 {
		t.Fatalf("JSON dump has %d events, want 2", len(decoded))
	}
	if decoded[0]["kind"] != "onrecv" || decoded[0]["name"] != "count" {
		t.Fatalf("first JSON event = %v", decoded[0])
	}

	var tbuf bytes.Buffer
	if err := WriteText(&tbuf, log); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(tbuf.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[1], "frontier") {
		t.Fatalf("text dump:\n%s", tbuf.String())
	}
}

// TestEmitBeforeAttach: events routed before Attach land in the shared ring
// and still harvest.
func TestEmitBeforeAttach(t *testing.T) {
	tr := New(Config{RingBits: 6})
	tr.Emit(Event{Kind: EvCheckpoint, Worker: -1, Aux: 1, N: 4096})
	if log := tr.Harvest(); len(log) != 1 || log[0].Kind != EvCheckpoint {
		t.Fatalf("pre-attach harvest = %+v", log)
	}
}
