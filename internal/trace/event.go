package trace

import "fmt"

// Kind enumerates the traced event types. Each kind documents which Event
// fields it populates; unused fields are -1 (ids) or 0 (quantities).
type Kind uint8

const (
	// EvOnRecv is one OnRecv/OnRecvBatch callback: Stage, Epoch, Dur
	// (callback wall time), N = records delivered in the invocation (1 for
	// a single-record OnRecv, the batch length for a batch delivery).
	EvOnRecv Kind = iota
	// EvOnNotify is one OnNotify callback: Stage, Epoch, Dur.
	EvOnNotify
	// EvSchedule is one worker scheduler quantum that processed mailbox
	// items: N = items drained, Dur = quantum wall time.
	EvSchedule
	// EvProgressPost is one worker progress flush: N = updates broadcast.
	EvProgressPost
	// EvProgressApply is one progress batch applied to a worker's local
	// tracker: N = updates in the batch.
	EvProgressApply
	// EvFrontier is a frontier movement observed at a location (worker 0's
	// local view): Loc = graph location, Epoch = the location's new minimum
	// frontier epoch. Aux = 1 means the location left the frontier (its last
	// pointstamp retired).
	EvFrontier
	// EvFrameSend is a transport frame sent: Aux = frame kind, Loc =
	// destination process, N = payload bytes.
	EvFrameSend
	// EvFrameDrop is a transport frame (or a burst of them) accepted by
	// Send but never delivered — dead link, reconnect-queue overflow, or
	// retry-budget exhaustion: Aux = frame kind, N = frames lost.
	EvFrameDrop
	// EvFrameRecv is a transport frame received: Aux = frame kind, Loc =
	// source process, N = payload bytes.
	EvFrameRecv
	// EvCheckpoint is a checkpoint: Dur = serialization wall time. Aux = 0
	// for a worker-local vertex sweep, 1 for a supervisor-level snapshot
	// (then N = encoded bytes and Epoch = the checkpointed epoch).
	EvCheckpoint
	// EvRestore is a snapshot restore: Dur; Aux/N/Epoch as for EvCheckpoint.
	EvRestore
	// EvRestart is a completed supervised recovery: Dur = failure detection
	// to the replayed computation catching up, Epoch = the epoch recovery
	// replayed to. Aux = the restart attempt for a full teardown/rebuild
	// recovery, or -1 for a selective single-worker revival (then Worker =
	// the revived worker).
	EvRestart
	// EvBarrierInject is a barrier injected at the input stages for an
	// asynchronous snapshot cut: Epoch = the cut id.
	EvBarrierInject
	// EvBarrierAlign is one vertex completing barrier alignment: Stage,
	// Worker, Epoch = cut id, Dur = first-marker to last-marker wall time,
	// N = in-flight channel batches logged into the cut.
	EvBarrierAlign
	// EvBarrierCut is a completed (all vertices aligned) asynchronous
	// snapshot cut: Epoch = cut id, N = encoded bytes, Dur = injection to
	// completion wall time. Aux = 1 when the cut was persisted by the
	// supervisor.
	EvBarrierCut

	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case EvOnRecv:
		return "onrecv"
	case EvOnNotify:
		return "onnotify"
	case EvSchedule:
		return "schedule"
	case EvProgressPost:
		return "progress-post"
	case EvProgressApply:
		return "progress-apply"
	case EvFrontier:
		return "frontier"
	case EvFrameSend:
		return "frame-send"
	case EvFrameDrop:
		return "frame-drop"
	case EvFrameRecv:
		return "frame-recv"
	case EvCheckpoint:
		return "checkpoint"
	case EvRestore:
		return "restore"
	case EvRestart:
		return "restart"
	case EvBarrierInject:
		return "barrier-inject"
	case EvBarrierAlign:
		return "barrier-align"
	case EvBarrierCut:
		return "barrier-cut"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one fixed-size trace record. Events are plain values: they are
// written into lock-free rings on the hot path and must not point into
// runtime state.
type Event struct {
	Kind   Kind  // what happened
	Aux    int32 // kind-specific discriminant (see the Kind constants)
	Worker int32 // emitting worker id, or -1 for non-worker sources
	Stage  int32 // stage id, or -1
	Loc    int32 // graph location / peer process, or -1
	Epoch  int64 // epoch of the associated timestamp, or -1
	T      int64 // nanoseconds since the tracer started (stamped by Emit)
	Dur    int64 // duration in nanoseconds, or 0
	N      int64 // count: records, updates, or bytes, or 0
}

// String renders the event compactly for text dumps.
func (e Event) String() string {
	return fmt.Sprintf("%-14s t=%-12d w=%-3d stage=%-3d loc=%-3d epoch=%-4d aux=%d dur=%d n=%d",
		e.Kind, e.T, e.Worker, e.Stage, e.Loc, e.Epoch, e.Aux, e.Dur, e.N)
}
