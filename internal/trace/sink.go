package trace

import (
	"bufio"
	"encoding/json"
	"io"
)

// jsonEvent is the dump schema: one object per event, kinds by name. The
// schema is documented in docs/observability.md.
type jsonEvent struct {
	Kind   string `json:"kind"`
	T      int64  `json:"t_ns"`
	Worker int32  `json:"worker"`
	Stage  int32  `json:"stage,omitempty"`
	Name   string `json:"name,omitempty"`
	Loc    int32  `json:"loc,omitempty"`
	Epoch  int64  `json:"epoch,omitempty"`
	Aux    int32  `json:"aux,omitempty"`
	Dur    int64  `json:"dur_ns,omitempty"`
	N      int64  `json:"n,omitempty"`
}

// WriteJSON dumps an event log as a JSON array, one object per event.
// names may be nil; otherwise it resolves stage ids (Tracer.StageName).
func WriteJSON(w io.Writer, events []Event, names func(int32) string) error {
	out := make([]jsonEvent, len(events))
	for i, e := range events {
		je := jsonEvent{
			Kind: e.Kind.String(), T: e.T, Worker: e.Worker,
			Stage: e.Stage, Loc: e.Loc, Epoch: e.Epoch,
			Aux: e.Aux, Dur: e.Dur, N: e.N,
		}
		if names != nil && e.Stage >= 0 {
			je.Name = names(e.Stage)
		}
		out[i] = je
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// WriteText dumps an event log as one fixed-width line per event.
func WriteText(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		if _, err := bw.WriteString(e.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
