package trace

import (
	"math"
	"math/bits"
)

// histSubBits sets the histogram resolution: each power-of-two range is
// split into 2^histSubBits linear sub-buckets, so any recorded value lands
// in a bucket whose width is at most value/2^histSubBits. Quantile queries
// return the bucket's upper bound, which bounds the relative error at
// 1/2^histSubBits (≈3.1%) — the HDR-histogram trade: fixed memory, bounded
// relative error, O(1) record.
const histSubBits = 5

// histSubCount is the number of linear sub-buckets per power of two.
// Values below histSubCount are recorded exactly.
const histSubCount = 1 << histSubBits

// Histogram is a log-bucketed (HDR-style) histogram of non-negative int64
// samples, typically latencies in nanoseconds. The zero value is ready to
// use. Histograms are not safe for concurrent use; the tracer keeps one
// per worker and merges them on query.
type Histogram struct {
	counts   []uint64
	total    uint64
	sum      int64
	min, max int64
}

// bucketIndex maps a value to its bucket: exact below histSubCount, then
// histSubCount linear sub-buckets per power of two.
func bucketIndex(v int64) int {
	if v < histSubCount {
		return int(v)
	}
	shift := bits.Len64(uint64(v)) - 1 - histSubBits
	sub := int(v>>uint(shift)) - histSubCount
	return histSubCount + shift*histSubCount + sub
}

// bucketUpper returns the largest value mapping to bucket i.
func bucketUpper(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	k := i - histSubCount
	shift := k / histSubCount
	sub := k % histSubCount
	lower := int64(histSubCount+sub) << uint(shift)
	return lower + (int64(1) << uint(shift)) - 1
}

// Record adds one sample. Negative samples clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	i := bucketIndex(v)
	if i >= len(h.counts) {
		grown := make([]uint64, i+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[i]++
	h.sum += v
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.total++
}

// Merge folds other's samples into h (the worker-histogram → stage-
// aggregate path).
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	if len(other.counts) > len(h.counts) {
		grown := make([]uint64, len(other.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.sum += other.sum
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.total += other.total
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the sum of recorded samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the exact sample mean (the sum is tracked exactly).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Min and Max return the exact extremes (0 when empty).
func (h *Histogram) Min() int64 { return h.min }
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns an upper bound for the q-th quantile (0 ≤ q ≤ 1) under
// the rank definition rank = ceil(q·count): the value returned is the
// upper bound of the bucket holding the exact quantile, so it is at most
// a factor 1/2^histSubBits above it (exact below 2^histSubBits).
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			u := bucketUpper(i)
			if u > h.max {
				u = h.max // never report beyond the observed maximum
			}
			return u
		}
	}
	return h.max
}

// Clone returns an independent copy.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{total: h.total, sum: h.sum, min: h.min, max: h.max}
	c.counts = append([]uint64(nil), h.counts...)
	return c
}
