package introspect

import (
	"testing"

	"naiad/internal/lib"
	"naiad/internal/runtime"
	"naiad/internal/trace"
)

// runTracedPipeline executes a small multi-stage computation under a
// tracer and returns the tracer plus the runtime's own metrics — the
// ground truth the introspection dataflow must reproduce.
func runTracedPipeline(t *testing.T, epochs int) (*trace.Tracer, *runtime.MetricsSnapshot) {
	t.Helper()
	tr := trace.New(trace.Config{RingBits: 18})
	cfg := runtime.DefaultConfig(2)
	cfg.Tracer = tr
	scope, err := lib.NewScope(cfg)
	if err != nil {
		t.Fatal(err)
	}
	input, nums := lib.NewInput[int64](scope, "nums", nil)
	evens := lib.Where(nums, func(v int64) bool { return v%2 == 0 })
	counted := lib.Count(evens, nil)
	col := lib.Collect(counted)
	if err := scope.C.Start(); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < epochs; e++ {
		batch := make([]int64, 20)
		for i := range batch {
			batch[i] = int64(e*len(batch) + i)
		}
		input.OnNext(batch...)
	}
	input.Close()
	if err := scope.C.Join(); err != nil {
		t.Fatal(err)
	}
	if len(col.Epochs()) != epochs {
		t.Fatalf("pipeline produced %d epochs, want %d", len(col.Epochs()), epochs)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("tracer dropped %d events; enlarge RingBits for this test", tr.Dropped())
	}
	return tr, scope.C.Metrics()
}

// TestAnalyzeMatchesMetrics is the tentpole's acceptance check: the
// self-introspection dataflow, fed the raw event log, must reproduce the
// per-stage invocation counts that MetricsSnapshot reports for the same
// run.
func TestAnalyzeMatchesMetrics(t *testing.T) {
	tr, metrics := runTracedPipeline(t, 6)
	rep, err := Analyze(tr.Harvest(), 2, tr.StageName)
	if err != nil {
		t.Fatal(err)
	}
	counts := rep.Counts()
	for _, sm := range metrics.Stages {
		got := counts[int32(sm.Stage)]
		if got.Records != sm.Records {
			t.Errorf("stage %s: introspection says %d records, metrics says %d",
				sm.Name, got.Records, sm.Records)
		}
		if got.Notifications != sm.Notifications {
			t.Errorf("stage %s: introspection says %d notifications, metrics says %d",
				sm.Name, got.Notifications, sm.Notifications)
		}
	}
	// And nothing invented: every counted stage exists in the metrics.
	byID := make(map[int32]bool)
	for _, sm := range metrics.Stages {
		byID[int32(sm.Stage)] = true
	}
	for _, c := range rep.StageCounts {
		if !byID[c.Stage] {
			t.Errorf("introspection reports unknown stage %d", c.Stage)
		}
	}
}

// TestAnalyzeEpochSummaries checks the per-epoch critical-path output: one
// summary per fed epoch, internally consistent.
func TestAnalyzeEpochSummaries(t *testing.T) {
	const epochs = 5
	tr, _ := runTracedPipeline(t, epochs)
	rep, err := Analyze(tr.Harvest(), 2, tr.StageName)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Epochs) != epochs {
		t.Fatalf("got %d epoch summaries, want %d: %+v", len(rep.Epochs), epochs, rep.Epochs)
	}
	for i, s := range rep.Epochs {
		if s.Epoch != int64(i) {
			t.Errorf("summary %d covers epoch %d", i, s.Epoch)
		}
		if s.Records == 0 {
			t.Errorf("epoch %d: no records", s.Epoch)
		}
		if s.CriticalPathNanos > s.BusyNanos {
			t.Errorf("epoch %d: critical path %d exceeds total busy %d", s.Epoch, s.CriticalPathNanos, s.BusyNanos)
		}
		if s.BusyNanos > 0 && (s.CriticalPathNanos == 0 || s.CriticalWorker < 0 || s.SlowestStage < 0) {
			t.Errorf("epoch %d: incomplete attribution: %+v", s.Epoch, s)
		}
	}
}

// TestAnalyzeEmptyLog: an empty log analyzes to an empty report, not an
// error or a hang.
func TestAnalyzeEmptyLog(t *testing.T) {
	rep, err := Analyze(nil, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.StageCounts) != 0 || len(rep.Epochs) != 0 || rep.Events != 0 {
		t.Fatalf("empty log produced %+v", rep)
	}
}
