// Package introspect is the self-introspection mode of the observability
// subsystem: it replays a trace event log as a regular naiad input stream
// and lets a library-level dataflow compute the analysis — per-stage
// invocation counts and per-epoch critical-path summaries — online, the way
// Sandstede's diagnostics analyze timely dataflow logs with timely dataflow
// itself. The system observing itself with its own machinery is both a
// useful analysis and a demanding end-to-end test: the analysis only comes
// out right if inputs, exchanges, GroupBy buffering, epoch completion, and
// Subscribe all work.
package introspect

import (
	"fmt"
	"sort"

	"naiad/internal/lib"
	"naiad/internal/runtime"
	"naiad/internal/trace"
)

// StageCount is one stage's invocation totals as computed by the
// introspection dataflow. Comparable against runtime.StageMetrics.
type StageCount struct {
	Stage         int32
	Name          string
	Records       int64 // records delivered via OnRecv (sum of EvOnRecv N)
	Notifications int64 // OnNotify invocations (EvOnNotify events)
	BusyNanos     int64 // total callback wall time
}

// EpochSummary is one subject epoch's execution profile.
type EpochSummary struct {
	Epoch         int64
	Records       int64
	Notifications int64
	BusyNanos     int64 // callback time summed over all workers
	// CriticalPathNanos is the busiest single worker's callback time in the
	// epoch: a lower bound on the epoch's makespan no amount of additional
	// parallelism could beat, and the straggler signal when it diverges
	// from BusyNanos / workers.
	CriticalPathNanos int64
	CriticalWorker    int32
	SlowestStage      int32 // stage with the most callback time in the epoch
}

// Report is the introspection dataflow's output.
type Report struct {
	StageCounts []StageCount   // per stage, stage-id order
	Epochs      []EpochSummary // per subject epoch, ascending
	Events      int            // events replayed
}

// stageEpochCount is the dataflow's intermediate record: one (epoch, stage)
// cell of the invocation-count matrix.
type stageEpochCount struct {
	Stage         int32
	Records       int64
	Notifications int64
	BusyNanos     int64
}

// Analyze replays the event log through a fresh dataflow and returns the
// computed report. Each subject epoch becomes one input epoch of the
// analysis computation, so the per-epoch reductions happen online as the
// replay advances — not as one terminal batch. workers sizes the analysis
// computation (≥1; the analysis itself is traced by nobody).
func Analyze(log []trace.Event, workers int, names func(int32) string) (*Report, error) {
	if workers < 1 {
		workers = 1
	}
	scope, err := lib.NewScope(runtime.DefaultConfig(workers))
	if err != nil {
		return nil, err
	}
	input, events := lib.NewInput[trace.Event](scope, "trace-log", nil)

	calls := lib.Where(events, func(e trace.Event) bool {
		return e.Kind == trace.EvOnRecv || e.Kind == trace.EvOnNotify
	})
	// Per-stage counts, reduced independently within each replayed epoch
	// (GroupBy completes per input epoch); totals are folded as replay
	// output drains.
	perStage := lib.GroupBy(calls,
		func(e trace.Event) int32 { return e.Stage },
		func(stage int32, es []trace.Event) []stageEpochCount {
			c := stageEpochCount{Stage: stage}
			for _, e := range es {
				if e.Kind == trace.EvOnRecv {
					c.Records += e.N // one event per invocation, N records each
				} else {
					c.Notifications++
				}
				c.BusyNanos += e.Dur
			}
			return []stageEpochCount{c}
		}, nil)
	stageCol := lib.Collect(perStage)

	// Per-epoch critical path: one group per replayed epoch (the feeder
	// aligns input epochs with subject epochs, so every callback in an
	// input epoch carries the same Epoch value).
	perEpoch := lib.GroupBy(calls,
		func(e trace.Event) int64 { return e.Epoch },
		func(epoch int64, es []trace.Event) []EpochSummary {
			s := EpochSummary{Epoch: epoch, SlowestStage: -1, CriticalWorker: -1}
			byWorker := make(map[int32]int64)
			byStage := make(map[int32]int64)
			for _, e := range es {
				if e.Kind == trace.EvOnRecv {
					s.Records += e.N
				} else {
					s.Notifications++
				}
				s.BusyNanos += e.Dur
				byWorker[e.Worker] += e.Dur
				byStage[e.Stage] += e.Dur
			}
			for w, d := range byWorker {
				if d > s.CriticalPathNanos || (d == s.CriticalPathNanos && w < s.CriticalWorker) {
					s.CriticalPathNanos, s.CriticalWorker = d, w
				}
			}
			var slowest int64 = -1
			for st, d := range byStage {
				if d > slowest || (d == slowest && st < s.SlowestStage) {
					slowest, s.SlowestStage = d, st
				}
			}
			return []EpochSummary{s}
		}, nil)
	epochCol := lib.Collect(perEpoch)

	if err := scope.C.Start(); err != nil {
		return nil, err
	}
	replay(input, log)
	input.Close()
	if err := scope.C.Join(); err != nil {
		return nil, fmt.Errorf("introspect: analysis dataflow failed: %w", err)
	}

	rep := &Report{Events: len(log)}
	totals := make(map[int32]*StageCount)
	for _, c := range stageCol.All() {
		t := totals[c.Stage]
		if t == nil {
			t = &StageCount{Stage: c.Stage}
			if names != nil {
				t.Name = names(c.Stage)
			}
			totals[c.Stage] = t
		}
		t.Records += c.Records
		t.Notifications += c.Notifications
		t.BusyNanos += c.BusyNanos
	}
	for _, t := range totals {
		rep.StageCounts = append(rep.StageCounts, *t)
	}
	sort.Slice(rep.StageCounts, func(i, j int) bool { return rep.StageCounts[i].Stage < rep.StageCounts[j].Stage })
	rep.Epochs = epochCol.All()
	sort.Slice(rep.Epochs, func(i, j int) bool { return rep.Epochs[i].Epoch < rep.Epochs[j].Epoch })
	return rep, nil
}

// replay feeds the log as input epochs aligned with the subject epochs:
// callback events go to the input epoch matching their own Epoch, and
// epochless system events (frontier, frames, scheduler quanta) ride along
// in whichever batch is open when they occur. The log is harvested
// time-ordered, but callback epochs can interleave near boundaries (epochs
// overlap in a streaming system), so the feeder buckets rather than splits.
func replay(input *lib.Input[trace.Event], log []trace.Event) {
	batches := make(map[int64][]trace.Event)
	var maxEpoch int64 = -1
	current := int64(0)
	for _, e := range log {
		switch e.Kind {
		case trace.EvOnRecv, trace.EvOnNotify:
			ep := e.Epoch
			if ep < 0 {
				ep = current
			} else if ep > current {
				current = ep
			}
			batches[ep] = append(batches[ep], e)
			if ep > maxEpoch {
				maxEpoch = ep
			}
		default:
			batches[current] = append(batches[current], e)
			if current > maxEpoch {
				maxEpoch = current
			}
		}
	}
	for ep := int64(0); ep <= maxEpoch; ep++ {
		input.OnNext(batches[ep]...)
	}
}

// Counts returns the report's stage counts as a map for comparison against
// runtime.MetricsSnapshot.
func (r *Report) Counts() map[int32]StageCount {
	m := make(map[int32]StageCount, len(r.StageCounts))
	for _, c := range r.StageCounts {
		m[c.Stage] = c
	}
	return m
}
