package runtime

import (
	"testing"

	"naiad/internal/codec"
	"naiad/internal/trace"
)

// countEvents tallies an event log by kind, with per-stage breakdowns for
// the callback kinds.
func countEvents(log []trace.Event) (byKind map[trace.Kind]int, recvByStage, notifyByStage map[int32]int64) {
	byKind = make(map[trace.Kind]int)
	recvByStage = make(map[int32]int64)
	notifyByStage = make(map[int32]int64)
	for _, ev := range log {
		byKind[ev.Kind]++
		switch ev.Kind {
		case trace.EvOnRecv:
			recvByStage[ev.Stage]++
		case trace.EvOnNotify:
			notifyByStage[ev.Stage]++
		}
	}
	return
}

// TestTracerRuntimeIntegration runs the metrics pipeline with a tracer and
// checks the event log against the runtime's own counters: the tracer hooks
// sit on exactly the code paths that increment MetricsSnapshot, so the two
// must agree event-for-event when no ring overflowed.
func TestTracerRuntimeIntegration(t *testing.T) {
	tr := trace.New(trace.Config{RingBits: 16})
	cfg := Config{Processes: 2, WorkersPerProcess: 2, Accumulation: AccLocalGlobal, Tracer: tr}
	c, err := NewComputation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInput("in")
	dbl := mapStage(c, "double", func(v int64) int64 { return 2 * v })
	c.Connect(in.Stage(), 0, dbl, hashPart, codec.Int64())
	s := newSink()
	snk := sinkStage(c, s, "sink")
	c.Connect(dbl, 0, snk, func(Message) uint64 { return 0 }, codec.Int64())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if tr.Workers() != 4 {
		t.Fatalf("tracer attached to %d workers, want 4", tr.Workers())
	}
	for e := 0; e < 5; e++ {
		in.OnNext(int64(3*e), int64(3*e+1), int64(3*e+2))
	}
	in.Close()
	if err := c.Join(); err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("tracer dropped %d events; ring sized too small for the run", tr.Dropped())
	}

	log := tr.Harvest()
	byKind, recvByStage, notifyByStage := countEvents(log)

	// Per-stage event counts must equal the runtime's own counters.
	for _, sm := range c.Metrics().Stages {
		if got := recvByStage[int32(sm.Stage)]; got != sm.Records {
			t.Errorf("stage %s: %d EvOnRecv events, metrics says %d records", sm.Name, got, sm.Records)
		}
		if got := notifyByStage[int32(sm.Stage)]; got != sm.Notifications {
			t.Errorf("stage %s: %d EvOnNotify events, metrics says %d notifications", sm.Name, got, sm.Notifications)
		}
		if h := tr.StageLatency(int32(sm.Stage), false); int64(h.Count()) != sm.Records {
			t.Errorf("stage %s: latency histogram has %d samples, metrics says %d records", sm.Name, h.Count(), sm.Records)
		}
	}

	// Every layer must have reported in: scheduler quanta, progress posts
	// and applies, frontier movements, and (2 processes) transport frames.
	for _, k := range []trace.Kind{
		trace.EvSchedule, trace.EvProgressPost, trace.EvProgressApply,
		trace.EvFrontier, trace.EvFrameSend, trace.EvFrameRecv,
	} {
		if byKind[k] == 0 {
			t.Errorf("no %v events in the log", k)
		}
	}

	// The computation drained, so every location must have retired from the
	// frontier-lag gauge.
	if lags := tr.FrontierLags(); len(lags) != 0 {
		t.Errorf("frontier-lag gauge still holds %d locations after drain: %+v", len(lags), lags)
	}

	// Progress-post batch sizes must sum to at least the applies seen (each
	// post fans out to every worker's tracker).
	var posted, applied int64
	for _, ev := range log {
		switch ev.Kind {
		case trace.EvProgressPost:
			posted += ev.N
		case trace.EvProgressApply:
			applied += ev.N
		}
	}
	if posted == 0 || applied == 0 {
		t.Fatalf("progress accounting empty: posted=%d applied=%d", posted, applied)
	}
}

// TestTracerCheckpointEvents checks that a checkpoint/restore rendezvous
// lands worker-level events in the log.
func TestTracerCheckpointEvents(t *testing.T) {
	tr := trace.New(trace.Config{RingBits: 12})
	cfg := Config{Processes: 1, WorkersPerProcess: 2, Accumulation: AccLocalGlobal, Tracer: tr}
	c, err := NewComputation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInput("in")
	dbl := mapStage(c, "double", func(v int64) int64 { return 2 * v })
	c.Connect(in.Stage(), 0, dbl, hashPart, nil)
	probe := c.NewProbe(dbl)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(int64(1), int64(2))
	probe.WaitFor(0)
	snap, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Restore(snap); err != nil {
		t.Fatal(err)
	}
	in.Close()
	if err := c.Join(); err != nil {
		t.Fatal(err)
	}
	byKind, _, _ := countEvents(tr.Harvest())
	if byKind[trace.EvCheckpoint] != 2 {
		t.Errorf("EvCheckpoint = %d, want one per worker (2)", byKind[trace.EvCheckpoint])
	}
	if byKind[trace.EvRestore] != 2 {
		t.Errorf("EvRestore = %d, want one per worker (2)", byKind[trace.EvRestore])
	}
}

// TestTracerDisabledIsInert pins the contract that a nil tracer changes
// nothing: the pipeline runs identically and no tracing state is allocated.
func TestTracerDisabledIsInert(t *testing.T) {
	cfg := Config{Processes: 1, WorkersPerProcess: 2, Accumulation: AccLocalGlobal}
	c, err := NewComputation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInput("in")
	s := newSink()
	snk := sinkStage(c, s, "sink")
	c.Connect(in.Stage(), 0, snk, func(Message) uint64 { return 0 }, nil)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(int64(7))
	in.Close()
	if err := c.Join(); err != nil {
		t.Fatal(err)
	}
	if got := s.byEpoch[0]; len(got) != 1 || got[0] != 7 {
		t.Fatalf("sink saw %v", s.byEpoch)
	}
	for _, w := range c.workers {
		if w.tracer != nil || w.traceFrontier != nil {
			t.Fatal("tracing state allocated without a tracer")
		}
	}
}
