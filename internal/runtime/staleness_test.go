package runtime

import (
	"fmt"
	"testing"

	"naiad/internal/codec"
	"naiad/internal/graph"
	ts "naiad/internal/timestamp"
)

// TestCapabilityGatesLaterNotifications proves the §2.4 mechanism behind
// bounded staleness: a notification whose capability sits at iteration c
// blocks delivery of notifications at iterations ≥ c elsewhere in the
// loop until its guarantee time completes.
func TestCapabilityGatesLaterNotifications(t *testing.T) {
	cfg := Config{Processes: 1, WorkersPerProcess: 1, Accumulation: AccLocalGlobal}
	c, err := NewComputation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	in := c.NewInput("in")
	ing := c.AddStage("I", graph.RoleIngress, 0, nil)
	// The stage lives in a loop (feedback present) so later iterations of
	// it are reachable from earlier ones.
	st := c.AddStage("S", graph.RoleNormal, 1, func(ctx *Context) Vertex {
		return &funcVertex{
			onRecv: func(_ int, _ Message, tm ts.Timestamp) {
				// A purge observer far ahead, and a capability holder
				// guaranteed now but holding iteration 3.
				ctx.NotifyAtPurge(tm.WithInner(5))
				ctx.NotifyAtCap(tm, tm.WithInner(3))
			},
			onNotify: func(tm ts.Timestamp) {
				order = append(order, fmt.Sprintf("notify@%d", tm.Inner()))
			},
		}
	})
	fb := c.AddStage("F", graph.RoleFeedback, 1, nil, MaxIterations(1))
	c.Connect(in.Stage(), 0, ing, nil, codec.Int64())
	c.Connect(ing, 0, st, nil, codec.Int64())
	c.Connect(st, 0, fb, nil, codec.Int64())
	c.Connect(fb, 0, st, nil, codec.Int64())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(int64(1))
	in.Close()
	if err := c.Join(); err != nil {
		t.Fatal(err)
	}
	// The capability at iteration 3 must hold back the iteration-5
	// observer until the iteration-0 guarantee delivers.
	if len(order) != 2 || order[0] != "notify@0" || order[1] != "notify@5" {
		t.Fatalf("order = %v, want [notify@0 notify@5]", order)
	}
}

// TestPurgeUnblockedWithoutCapability is the control: without the held
// capability, the far-ahead purge delivers as soon as its guarantee
// completes, in plain guarantee order.
func TestPurgeUnblockedWithoutCapability(t *testing.T) {
	cfg := Config{Processes: 1, WorkersPerProcess: 1, Accumulation: AccLocalGlobal}
	c, err := NewComputation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	in := c.NewInput("in")
	ing := c.AddStage("I", graph.RoleIngress, 0, nil)
	st := c.AddStage("S", graph.RoleNormal, 1, func(ctx *Context) Vertex {
		return &funcVertex{
			onRecv: func(_ int, _ Message, tm ts.Timestamp) {
				ctx.NotifyAtPurge(tm.WithInner(5))
				ctx.NotifyAtPurge(tm)
			},
			onNotify: func(tm ts.Timestamp) {
				order = append(order, fmt.Sprintf("notify@%d", tm.Inner()))
			},
		}
	})
	fb := c.AddStage("F", graph.RoleFeedback, 1, nil, MaxIterations(1))
	c.Connect(in.Stage(), 0, ing, nil, codec.Int64())
	c.Connect(ing, 0, st, nil, codec.Int64())
	c.Connect(st, 0, fb, nil, codec.Int64())
	c.Connect(fb, 0, st, nil, codec.Int64())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(int64(1))
	in.Close()
	if err := c.Join(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "notify@0" || order[1] != "notify@5" {
		t.Fatalf("order = %v", order)
	}
}

// TestAblationConfigs verifies the design-choice knobs preserve semantics:
// disabling the local fast path and inverting the delivery policy must not
// change results, only performance.
func TestAblationConfigs(t *testing.T) {
	for name, cfg := range map[string]Config{
		"no-fastpath": {Processes: 1, WorkersPerProcess: 2, Accumulation: AccLocalGlobal,
			DisableLocalFastPath: true},
		"notify-first": {Processes: 1, WorkersPerProcess: 2, Accumulation: AccLocalGlobal,
			NotificationsFirst: true},
		"both": {Processes: 2, WorkersPerProcess: 2, Accumulation: AccLocalGlobal,
			DisableLocalFastPath: true, NotificationsFirst: true},
	} {
		t.Run(name, func(t *testing.T) {
			c, in, s := buildLoopComputation(t, cfg, 10)
			if err := c.Start(); err != nil {
				t.Fatal(err)
			}
			in.OnNext(int64(0), int64(3))
			in.Close()
			if err := c.Join(); err != nil {
				t.Fatal(err)
			}
			if got := s.sorted(0); fmt.Sprint(got) != "[10 10]" {
				t.Fatalf("results changed under ablation: %v", got)
			}
		})
	}
}
