package runtime

import (
	"fmt"
	"sort"

	"naiad/internal/codec"
	"naiad/internal/graph"
	"naiad/internal/progress"
	ts "naiad/internal/timestamp"
	"naiad/internal/trace"
)

// Selective rollback: when SetWorkerCrashHandler is installed, every worker
// keeps an in-memory delivery log — the exact sequence of state-changing
// events its vertices observed — segmented by snapshot cut. A crashed
// worker loses its vertex state but not its mailbox or log; revival rebuilds
// the vertices, restores the latest complete cut's fragments, and replays
// the log from that cut's boundary with all side effects suppressed (the
// original execution already sent the messages and posted the occurrence
// counts). Healthy workers never stop. This is the Falkirk-Wheel style of
// replay-with-output-suppression, driven by the cut structure instead of
// epochs.

// vlogEntryKind tags delivery-log entries.
type vlogEntryKind uint8

const (
	// vlogRecv is one delivered data batch (encoded data frame).
	vlogRecv vlogEntryKind = iota
	// vlogNotify is one delivered notification (identified by guarantee).
	vlogNotify
	// vlogAdvance moved an input vertex to a new epoch.
	vlogAdvance
	// vlogClose closed an input vertex.
	vlogClose
	// vlogCapDrop retired a held capability through the asynchronous drop
	// path (identified by its per-vertex sequence number). Synchronous drops
	// are not logged: they happen inside callbacks, which replay re-executes.
	vlogCapDrop
)

type vlogEntry struct {
	kind      vlogEntryKind
	payload   []byte       // vlogRecv
	guarantee ts.Timestamp // vlogNotify (capability comes from the pending list)
	epoch     int64        // vlogAdvance
	seq       uint64       // vlogCapDrop
}

// vlogSeg is the run of entries a vertex observed after snapshotting for
// `cut` (the first segment, tagged 0, covers everything since start or
// since the last full restore).
type vlogSeg struct {
	cut     int64
	entries []vlogEntry
}

// vlog is one vertex's delivery log.
type vlog struct {
	segs []vlogSeg
}

func newVlog() *vlog {
	return &vlog{segs: []vlogSeg{{cut: 0}}}
}

func (l *vlog) add(e vlogEntry) {
	s := &l.segs[len(l.segs)-1]
	s.entries = append(s.entries, e)
}

// begin opens a new segment at a cut's snapshot boundary.
func (l *vlog) begin(cut int64) {
	l.segs = append(l.segs, vlogSeg{cut: cut})
}

// abortSeg merges an aborted cut's segment back into its predecessor: the
// snapshot boundary no longer exists, but the entries still happened.
func (l *vlog) abortSeg(cut int64) {
	for i := 1; i < len(l.segs); i++ {
		if l.segs[i].cut == cut {
			l.segs[i-1].entries = append(l.segs[i-1].entries, l.segs[i].entries...)
			l.segs = append(l.segs[:i], l.segs[i+1:]...)
			return
		}
	}
}

// retire prunes segments made obsolete by a completed, persisted cut:
// revival will never start before that cut's boundary again.
func (l *vlog) retire(cut int64) {
	for len(l.segs) >= 2 && l.segs[1].cut <= cut {
		l.segs = l.segs[1:]
	}
}

// from returns the segments at and after the one tagged `cut`, or an error
// when the boundary has been pruned (the caller's snapshot is too old).
func (l *vlog) from(cut int64) ([]vlogSeg, error) {
	if cut == 0 {
		return l.segs, nil
	}
	for i := range l.segs {
		if l.segs[i].cut == cut {
			return l.segs[i:], nil
		}
	}
	return nil, fmt.Errorf("runtime: delivery log has no segment for cut %d (pruned?)", cut)
}

// reviveReq is the supervisor→worker revival handshake.
type reviveReq struct {
	snap *CutSnapshot // nil: fall back to the full-restore baseline
	ack  chan error
}

// CrashWorker simulates the failure of a single worker: at its next quantum
// boundary the worker discards all vertex state and parks, firing the
// crash handler installed with SetWorkerCrashHandler. Its mailbox keeps
// accepting traffic — the rest of the cluster runs on. Only valid when a
// crash handler is installed. Safe to call concurrently with Start (a
// supervisor rebuilding the computation races external fault injection):
// until Start completes it errors without touching the worker table.
func (c *Computation) CrashWorker(worker int) error {
	if !c.running.Load() {
		return fmt.Errorf("runtime: CrashWorker before Start")
	}
	if c.onWorkerCrash == nil {
		return fmt.Errorf("runtime: CrashWorker without a worker-crash handler")
	}
	if worker < 0 || worker >= len(c.workers) {
		return fmt.Errorf("runtime: no worker %d", worker)
	}
	c.workers[worker].mailbox.push(mailItem{kind: mailControl, ctl: &controlMsg{op: ctlCrash}})
	return nil
}

// ReviveWorker restores a parked worker from a completed cut snapshot and
// replays its delivery log from that cut's boundary, then resumes it. Pass
// nil to revive from the computation's full-restore baseline (or from
// scratch when there is none) by replaying the whole log. Blocks until the
// worker acknowledges; an error leaves the computation aborted only if the
// worker's replay failed mid-way (state can no longer be trusted).
func (c *Computation) ReviveWorker(worker int, snap *CutSnapshot) error {
	if worker < 0 || worker >= len(c.workers) {
		return fmt.Errorf("runtime: no worker %d", worker)
	}
	w := c.workers[worker]
	req := reviveReq{snap: snap, ack: make(chan error, 1)}
	select {
	case w.reviveCh <- req:
	case <-c.abortCh:
		return fmt.Errorf("runtime: revive interrupted by abort: %w", c.Err())
	}
	select {
	case err := <-req.ack:
		return err
	case <-c.abortCh:
		return fmt.Errorf("runtime: revive interrupted by abort: %w", c.Err())
	}
}

// park holds a crashed worker until revival. The worker reaches here at a
// quantum boundary with its local queue drained and output flushed, so the
// delivery log is exactly the state the mailbox's remaining contents expect.
// Returns false when the worker should exit (abort, or failed revival).
func (w *worker) park() bool {
	c := w.comp
	if h := c.onWorkerCrash; h != nil {
		go h(w.id)
	}
	select {
	case req := <-w.reviveCh:
		err := w.revive(req.snap)
		req.ack <- err
		if err != nil {
			c.fail(fmt.Errorf("runtime: worker %d revival failed: %w", w.id, err))
			return false
		}
		w.crashed = false
		return true
	case <-c.abortCh:
		return false
	}
}

// revive rebuilds the worker's vertices and reconstructs their state:
// restore the cut's fragments (state bytes, pending notifications, input
// positions), then replay the delivery log from the cut boundary with side
// effects suppressed. The progress tracker, channel counters, and delivery
// log itself survive the crash — they describe the channels, which never
// stopped.
func (w *worker) revive(snap *CutSnapshot) error {
	var t0 int64
	if w.tracer != nil {
		t0 = w.tracer.Now()
	}
	base := snap
	segFrom := int64(0)
	if base != nil {
		segFrom = base.Cut
	} else {
		base = w.restoredCut
	}
	w.buildVertices()
	// The dead incarnation's token book is void: its tokens' occurrence
	// counts live on in every tracker (posts were broadcast and never
	// retracted), and the reconstruction below re-mints seeded stand-ins for
	// exactly the tokens that were live at the snapshot instant.
	w.caps.Reset()
	if base != nil {
		for _, vs := range w.vsList {
			// Re-mint capabilities held at the snapshot instant before the
			// fragment restores, so Restore can reattach to them by Seq.
			if frag, ok := base.Caps[vs.si.id][vs.vertexIdx]; ok {
				vs.nextCapSeq = frag.Next
				for _, h := range frag.Held {
					pc := w.caps.MintSeeded(progress.Pointstamp{Time: h.Time, Loc: graph.StageLoc(vs.si.id)})
					pc.SetSeq(h.Seq)
					if vs.heldCaps == nil {
						vs.heldCaps = make(map[uint64]*Capability)
					}
					vs.heldCaps[h.Seq] = &Capability{w: w, stage: vs.si.id, seq: h.Seq, pc: pc}
				}
			}
			if frag, ok := base.Vertices[vs.si.id][vs.vertexIdx]; ok {
				cpr, isCp := vs.vertex.(Checkpointer)
				if !isCp {
					return fmt.Errorf("runtime: cut %d has state for stage %s, which does not checkpoint", base.Cut, vs.si.name)
				}
				dec := codec.NewDecoder(frag)
				if err := codec.Catch(func() { cpr.Restore(dec) }); err != nil {
					return fmt.Errorf("runtime: restoring stage %s vertex %d: %w", vs.si.name, vs.vertexIdx, err)
				}
			}
			for _, pn := range base.Pending[vs.si.id][vs.vertexIdx] {
				nr := notifyReq{guarantee: pn.Guarantee, capability: pn.Capability, hasCap: pn.HasCap}
				if pn.HasCap {
					nr.cap = w.caps.MintSeeded(progress.Pointstamp{Time: pn.Capability, Loc: graph.StageLoc(vs.si.id)})
				}
				insertPending(vs, nr)
			}
			if e, ok := base.InputEpochs[vs.si.id]; ok && vs.si.role == graph.RoleInput {
				vs.inputEpoch = e
			}
		}
	}
	// Every input vertex gets its seed token back at its restored epoch;
	// replayed advances and closes move it (with posts suppressed) to exactly
	// where the pre-crash token stood.
	for _, vs := range w.vsList {
		if vs.si.role == graph.RoleInput {
			vs.inputCap = w.caps.MintSeeded(progress.Pointstamp{Time: ts.Root(vs.inputEpoch), Loc: graph.StageLoc(vs.si.id)})
		}
	}
	if err := w.replayLogs(segFrom); err != nil {
		return err
	}
	// Rebuild derived notification state from the reconstructed pending
	// lists; the next frontier movement re-surfaces deliverable candidates.
	w.notifyCount = 0
	for _, vs := range w.vsList {
		w.notifyCount += len(vs.pending)
	}
	w.notifyCands = w.notifyCands[:0]
	w.notifyDirty = true
	if tr := w.tracer; tr != nil {
		tr.Emit(trace.Event{
			Kind: trace.EvRestart, Aux: -1, Worker: int32(w.id), Stage: -1, Loc: -1,
			Epoch: segFrom, Dur: tr.Now() - t0,
		})
	}
	return nil
}

// insertPending inserts a notification request sorted by guarantee, without
// posting occurrence counts (revival paths only: the counts were posted by
// the original execution and never released).
func insertPending(vs *vertexState, nr notifyReq) {
	i := sort.Search(len(vs.pending), func(i int) bool {
		return nr.guarantee.Compare(vs.pending[i].guarantee) < 0
	})
	vs.pending = append(vs.pending, notifyReq{})
	copy(vs.pending[i+1:], vs.pending[i:])
	vs.pending[i] = nr
}

// replayLogs re-runs each hosted vertex's delivery log from the given cut
// boundary (0 = from the log's beginning). Vertex states are independent
// under suppression — sends were already delivered and logged at their
// receivers — so per-vertex sequential replay reproduces the pre-crash
// interleaving's effects exactly.
func (w *worker) replayLogs(cut int64) error {
	if w.dlogs == nil {
		if cut != 0 {
			return fmt.Errorf("runtime: no delivery logs to replay cut %d from", cut)
		}
		return nil
	}
	w.replaying = true
	defer func() { w.replaying = false }()
	for _, vs := range w.vsList {
		lg := w.dlogs[vs.si.id]
		if lg == nil {
			continue
		}
		segs, err := lg.from(cut)
		if err != nil {
			return fmt.Errorf("runtime: stage %s vertex %d: %w", vs.si.name, vs.vertexIdx, err)
		}
		for _, seg := range segs {
			for i := range seg.entries {
				if err := w.replayEntry(vs, &seg.entries[i]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (w *worker) replayEntry(vs *vertexState, e *vlogEntry) error {
	switch e.kind {
	case vlogRecv:
		ci, _, _, t, records := decodeData(w.comp, e.payload)
		input := ci.inputIdx
		for _, rec := range records {
			vs.timeStack = append(vs.timeStack, timeFrame{t: t, canSend: true})
			vs.ctx.executing++
			vs.vertex.OnRecv(input, rec, t)
			vs.ctx.executing--
			vs.timeStack = vs.timeStack[:len(vs.timeStack)-1]
		}
	case vlogNotify:
		i := sort.Search(len(vs.pending), func(i int) bool {
			return e.guarantee.Compare(vs.pending[i].guarantee) <= 0
		})
		if i >= len(vs.pending) || vs.pending[i].guarantee != e.guarantee {
			return fmt.Errorf("runtime: replay of stage %s vertex %d: logged notification at %v has no pending request",
				vs.si.name, vs.vertexIdx, e.guarantee)
		}
		nr := vs.pending[i]
		vs.pending = append(vs.pending[:i], vs.pending[i+1:]...)
		vs.timeStack = append(vs.timeStack, timeFrame{t: nr.capability, canSend: nr.hasCap})
		vs.ctx.executing++
		vs.vertex.OnNotify(nr.guarantee)
		vs.ctx.executing--
		vs.timeStack = vs.timeStack[:len(vs.timeStack)-1]
		if nr.cap != nil {
			nr.cap.Drop() // suppressed post; the original delivery posted the -1
		}
	case vlogAdvance:
		if vs.inputCap != nil && !vs.inputCap.Dropped() {
			vs.inputCap.Downgrade(ts.Root(e.epoch))
		}
		vs.inputEpoch = e.epoch
	case vlogClose:
		vs.inputClosed = true
		if vs.inputCap != nil {
			vs.inputCap.TryDrop()
		}
	case vlogCapDrop:
		// The asynchronous drop landed before the crash; retire the re-minted
		// token the same way. A missing seq means a replayed callback already
		// dropped it synchronously.
		if cur, ok := vs.heldCaps[e.seq]; ok {
			delete(vs.heldCaps, e.seq)
			cur.pc.TryDrop()
		}
	}
	return nil
}
