package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"naiad/internal/codec"
	"naiad/internal/graph"
	"naiad/internal/progress"
	ts "naiad/internal/timestamp"
	"naiad/internal/trace"
	"naiad/internal/transport"
)

// Partitioner maps a record to an integer; the system routes all records
// that map to the same integer (mod the destination parallelism) to the
// same downstream vertex (§3.1). A nil partitioner delivers each message to
// the destination vertex co-located with the sender.
type Partitioner func(Message) uint64

// BatchPartitioner is the vectorized form: it hashes a whole record column
// (a []T, as stored in a typed batch) into dst in one call, without boxing
// each record. It reports false when the column's element type is foreign —
// the router then falls back to the boxed Partitioner per record. dst has
// exactly the column's length. Both partitioners of a connector must agree
// on every record's hash.
type BatchPartitioner func(col any, dst []uint64) bool

// TypedPartitioner builds the boxed and vectorized partitioners of a
// connector from one typed hash function, guaranteeing they agree.
func TypedPartitioner[T any](h func(T) uint64) (Partitioner, BatchPartitioner) {
	part := func(m Message) uint64 { return h(m.(T)) }
	bpart := func(col any, dst []uint64) bool {
		data, ok := col.([]T)
		if !ok {
			return false
		}
		for i, v := range data {
			dst[i] = h(v)
		}
		return true
	}
	return part, bpart
}

// StageID identifies a stage of a Computation (aliasing the logical graph's
// id space).
type StageID = graph.StageID

// stageInfo is the runtime's view of a logical stage.
type stageInfo struct {
	id          graph.StageID
	name        string
	role        graph.Role
	factory     VertexFactory
	numPorts    int
	outPorts    [][]graph.ConnectorID
	pinned      int // worker id, or -1 for one vertex per worker
	reentrancy  int // max synchronous re-entrant deliveries; 0 = config default
	maxIter     int64
	hasMaxIter  bool
	logged      bool // deliveries are written to the computation's log sink
	checkpoints bool // set when any constructed vertex implements Checkpointer
}

func (s *stageInfo) parallelism(workers int) int {
	if s.pinned >= 0 {
		return 1
	}
	return workers
}

// vertexFor maps a destination vertex index to its hosting worker.
func (s *stageInfo) workerFor(vertexIdx int) int {
	if s.pinned >= 0 {
		return s.pinned
	}
	return vertexIdx
}

// connInfo is the runtime's view of a logical connector.
type connInfo struct {
	id       graph.ConnectorID
	src, dst graph.StageID
	srcPort  int
	inputIdx int // index among dst's inputs, in connection order
	part     Partitioner
	bpart    BatchPartitioner // optional vectorized form of part
	cod      codec.Codec
}

// StageOption customizes AddStage.
type StageOption func(*stageInfo)

// Pinned places the stage's single vertex on the given worker instead of
// one vertex per worker.
func Pinned(worker int) StageOption {
	return func(s *stageInfo) { s.pinned = worker }
}

// Ports declares the number of output ports (default 1). SendBy(i, …)
// emits on every connector attached to port i.
func Ports(n int) StageOption {
	return func(s *stageInfo) { s.numPorts = n }
}

// Reentrancy permits up to depth synchronous re-entrant deliveries into a
// vertex of this stage (§3.2); the default is 1 (not re-entrant).
func Reentrancy(depth int) StageOption {
	return func(s *stageInfo) { s.reentrancy = depth }
}

// MaxIterations makes a feedback stage drop messages whose loop counter has
// reached n, bounding the iterations of a loop.
func MaxIterations(n int64) StageOption {
	return func(s *stageInfo) { s.maxIter, s.hasMaxIter = n, true }
}

// Logged records every message delivered to this stage in the computation's
// log sink before the vertex sees it — the continual-logging fault
// tolerance mode of §3.4 / Figure 7c.
func Logged() StageOption {
	return func(s *stageInfo) { s.logged = true }
}

// Computation owns a timely dataflow graph and the cluster executing it.
// Build the dataflow single-threaded (AddStage/Connect/NewInput), then call
// Start, feed the inputs, and Join.
type Computation struct {
	cfg    Config
	lg     *graph.Graph
	stages []*stageInfo
	conns  []*connInfo
	inputs []*Input
	probes []*Probe

	trans    transport.Transport
	procs    []*process
	workers  []*worker
	globAcc  *accumulator
	accs     []*accumulator // per-process accumulators (AccLocal modes)
	workerWG sync.WaitGroup

	maxEpoch atomic.Int64 // highest epoch opened across inputs
	started  bool
	// running is set at the very end of a successful Start. CrashWorker
	// gates on it: the supervisor rebuilds computations on its own
	// goroutine, so a fault-injecting caller can race Start on the new
	// incarnation — the acquire/release pair orders Start's writes (the
	// worker table, the installed handlers) before any crash injection.
	running  atomic.Bool
	finished atomic.Bool
	aborted  atomic.Bool
	abortCh  chan struct{} // closed on the first fail/Abort
	failMu   sync.Mutex
	failErr  error

	monitor  *progress.SafetyMonitor
	activity atomic.Int64 // bumped on every mailbox push and worker quantum

	// Asynchronous barrier snapshots / selective rollback (see barrier.go).
	onCut         func(cut int64, snap *CutSnapshot, err error)
	onWorkerCrash func(worker int)
	cutMu         sync.Mutex
	curCut        *cutState
	lastCutID     int64

	logMu    sync.Mutex
	logSink  LogSink
	logCount atomic.Int64

	counters *stageCounters
	recovery *RecoveryMetrics
}

// LogSink receives continually-logged message batches (§3.4). Writes are
// serialized by the computation.
type LogSink interface {
	LogBatch(stage StageID, payload []byte) error
}

// NewComputation returns an empty computation with the given configuration.
func NewComputation(cfg Config) (*Computation, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Computation{cfg: cfg, lg: graph.New(), abortCh: make(chan struct{})}, nil
}

// Config returns the computation's configuration.
func (c *Computation) Config() Config { return c.cfg }

// AddStage adds a stage with the given timestamp role and loop depth. The
// factory runs once per vertex, on its owning worker, at Start.
func (c *Computation) AddStage(name string, role graph.Role, depth uint8, factory VertexFactory, opts ...StageOption) StageID {
	if c.started {
		panic("runtime: AddStage after Start")
	}
	id := c.lg.AddStage(name, role, depth)
	si := &stageInfo{id: id, name: name, role: role, factory: factory, numPorts: 1, pinned: -1}
	for _, o := range opts {
		o(si)
	}
	si.outPorts = make([][]graph.ConnectorID, si.numPorts)
	c.stages = append(c.stages, si)
	return id
}

// Connect attaches src's output port srcPort to a new input of dst. The
// partitioner routes records between parallel vertices (nil keeps them
// local); the codec serializes records that cross process boundaries and
// may be nil only in single-process configurations. It returns the input
// index dst will observe in OnRecv.
func (c *Computation) Connect(src StageID, srcPort int, dst StageID, part Partitioner, cod codec.Codec) int {
	return c.ConnectBatch(src, srcPort, dst, part, nil, cod)
}

// ConnectBatch is Connect with an optional vectorized partitioner: when a
// whole typed batch crosses the connector, bpart hashes the column in one
// call instead of boxing each record through part. bpart may be nil; when
// set, part must still be provided (it remains the fallback for boxed
// batches) and must agree with bpart on every record.
func (c *Computation) ConnectBatch(src StageID, srcPort int, dst StageID, part Partitioner, bpart BatchPartitioner, cod codec.Codec) int {
	if c.started {
		panic("runtime: Connect after Start")
	}
	if bpart != nil && part == nil {
		panic("runtime: ConnectBatch with a batch partitioner but no record partitioner")
	}
	if cod == nil && c.cfg.Processes > 1 {
		panic(fmt.Sprintf("runtime: connector %s→%s needs a codec in multi-process configurations",
			c.stages[src].name, c.stages[dst].name))
	}
	ss := c.stages[src]
	if srcPort < 0 || srcPort >= ss.numPorts {
		panic(fmt.Sprintf("runtime: stage %s has %d ports, not %d", ss.name, ss.numPorts, srcPort+1))
	}
	id := c.lg.AddConnector(src, dst)
	ci := &connInfo{id: id, src: src, dst: dst, srcPort: srcPort,
		inputIdx: len(c.lg.Inputs(dst)) - 1, part: part, bpart: bpart, cod: cod}
	c.conns = append(c.conns, ci)
	ss.outPorts[srcPort] = append(ss.outPorts[srcPort], id)
	return ci.inputIdx
}

// SetLogSink installs the sink for Logged stages. Must be set before Start
// when any stage uses Logged.
func (c *Computation) SetLogSink(s LogSink) { c.logSink = s }

// LoggedBatches returns the number of batches written to the log sink.
func (c *Computation) LoggedBatches() int64 { return c.logCount.Load() }

// Graph exposes the underlying logical graph (frozen after Start).
func (c *Computation) Graph() *graph.Graph { return c.lg }

// TransportStats returns the traffic counters (valid after Start).
func (c *Computation) TransportStats() *transport.Stats { return c.trans.Stats() }

// Start freezes the graph, builds the cluster, and launches the workers.
func (c *Computation) Start() error {
	if c.started {
		return fmt.Errorf("runtime: already started")
	}
	for _, si := range c.stages {
		if !si.logged {
			continue
		}
		if c.logSink == nil {
			return fmt.Errorf("runtime: stage %s is Logged but no log sink is set", si.name)
		}
		// Logging serializes every delivered batch, so each in-connector
		// needs a codec even in single-process configurations.
		for _, cid := range c.lg.Inputs(si.id) {
			if c.conns[cid].cod == nil {
				return fmt.Errorf("runtime: Logged stage %s needs a codec on connector from %s",
					si.name, c.stages[c.conns[cid].src].name)
			}
		}
	}
	if c.onCut != nil || c.onWorkerCrash != nil {
		// Barrier snapshots log in-flight channel batches serialized, and
		// delivery logs re-decode batches on replay: every connector needs a
		// codec even in single-process configurations.
		for _, ci := range c.conns {
			if ci.cod == nil {
				return fmt.Errorf("runtime: barrier snapshots need a codec on connector %s→%s",
					c.stages[ci.src].name, c.stages[ci.dst].name)
			}
		}
	}
	if err := c.lg.Freeze(); err != nil {
		return err
	}
	c.started = true
	c.counters = newStageCounters(len(c.stages))

	switch {
	case c.cfg.Transport != nil:
		c.trans = c.cfg.Transport
		// A fault-injecting transport reports peer deaths; surface them as
		// an abort (error from Join) instead of a silent hang on frames
		// that will never arrive.
		if ch, ok := c.trans.(*transport.Chaos); ok {
			ch.SetOnCrash(func(proc int) {
				c.fail(fmt.Errorf("runtime: process %d crashed (chaos fault injection): aborting surviving workers", proc))
			})
		}
	case c.cfg.UseTCP:
		var topts transport.TCPOptions
		if tr := c.cfg.Tracer; tr != nil {
			// Frame drops bypass the Observed wrapper (they never reach a
			// send callback), so the transport reports them directly.
			topts.OnDrop = func(kind transport.Kind, n int) {
				tr.Emit(trace.Event{
					Kind: trace.EvFrameDrop, Aux: int32(kind), Worker: -1,
					Stage: -1, Loc: -1, Epoch: -1, N: int64(n),
				})
			}
		}
		t, err := transport.NewTCPLoopbackOpts(c.cfg.Processes, topts)
		if err != nil {
			return err
		}
		c.trans = t
	default:
		c.trans = transport.NewMem(c.cfg.Processes)
	}
	if c.cfg.Heartbeat > 0 {
		hb := transport.NewHeartbeats(c.trans, transport.HeartbeatConfig{
			Interval: c.cfg.Heartbeat,
			Timeout:  c.cfg.HeartbeatTimeout,
		})
		hb.SetOnSuspect(func(suspect int, silence time.Duration) {
			c.fail(fmt.Errorf("runtime: heartbeat detector suspects process %d after %v of silence", suspect, silence))
		})
		if c.recovery != nil {
			rm := c.recovery
			hb.SetOnMiss(func() { rm.HeartbeatMisses.Add(1) })
		}
		c.trans = hb
	}
	if tr := c.cfg.Tracer; tr != nil {
		if err := c.attachTracer(tr); err != nil {
			return err
		}
		c.trans = observeTransport(c.trans, tr)
	}

	// Safety monitor (§3.3's invariants, checked for real): seed the
	// ground truth exactly as every worker seeds its tracker.
	if c.cfg.SafetyChecks {
		c.monitor = progress.NewSafetyMonitor(c.lg)
		for _, si := range c.stages {
			if si.role != graph.RoleInput {
				continue
			}
			c.monitor.Seed(progress.Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(si.id)},
				int64(si.parallelism(c.cfg.Workers())))
		}
	}

	// Accumulators (§3.3).
	switch c.cfg.Accumulation {
	case AccGlobal, AccLocalGlobal:
		c.globAcc = newAccumulator(func(us []update) { c.broadcastProgress(0, us) })
	}
	if c.cfg.Accumulation == AccLocal || c.cfg.Accumulation == AccLocalGlobal {
		c.accs = make([]*accumulator, c.cfg.Processes)
		for p := 0; p < c.cfg.Processes; p++ {
			p := p
			emit := func(us []update) { c.broadcastProgress(p, us) }
			if c.cfg.Accumulation == AccLocalGlobal {
				emit = func(us []update) { c.sendToGlobalAcc(p, us) }
			}
			c.accs[p] = newAccumulator(emit)
		}
	}

	// Processes and workers.
	c.procs = make([]*process, c.cfg.Processes)
	c.workers = make([]*worker, c.cfg.Workers())
	for p := 0; p < c.cfg.Processes; p++ {
		c.procs[p] = &process{comp: c, id: p}
	}
	for wid := 0; wid < c.cfg.Workers(); wid++ {
		proc := wid / c.cfg.WorkersPerProcess
		w := newWorker(c, wid, proc)
		c.workers[wid] = w
		c.procs[proc].workers = append(c.procs[proc].workers, w)
	}
	for p := 0; p < c.cfg.Processes; p++ {
		proc := c.procs[p]
		c.trans.SetHandler(p, proc.onFrame)
	}
	for _, w := range c.workers {
		c.workerWG.Add(1)
		go w.run()
	}
	if c.cfg.Watchdog > 0 {
		go c.watchdog()
	}
	c.running.Store(true)
	return nil
}

// watchdog aborts the computation when no activity is observed for the
// configured duration — the never-hang backstop for fault injection.
func (c *Computation) watchdog() {
	interval := c.cfg.Watchdog
	last := c.activity.Load()
	t := time.NewTimer(interval)
	defer t.Stop()
	for {
		select {
		case <-c.abortCh:
			return
		case <-t.C:
		}
		if c.finished.Load() {
			return
		}
		cur := c.activity.Load()
		if cur == last {
			c.fail(fmt.Errorf("runtime: watchdog: no worker activity for %v: computation stalled (lost frames or a dead peer?)", interval))
			return
		}
		last = cur
		t.Reset(interval)
	}
}

// Join waits for the computation to drain (all inputs closed and every
// event retired) and releases all resources. It returns the first vertex
// panic, if any.
func (c *Computation) Join() error {
	c.workerWG.Wait()
	c.finished.Store(true)
	if c.globAcc != nil {
		c.globAcc.close()
	}
	for _, a := range c.accs {
		a.close()
	}
	c.trans.Close()
	c.failMu.Lock()
	err := c.failErr
	c.failMu.Unlock()
	for _, p := range c.probes {
		p.finish(err)
	}
	return err
}

// Abort terminates the computation with the given error: workers stop,
// probes unblock, and Join returns err (the first error wins). External
// failure detectors — the chaos transport's crash callback, cluster
// management noticing a dead peer — use it to turn silent hangs into
// loud, attributable failures.
func (c *Computation) Abort(err error) {
	if err == nil {
		err = fmt.Errorf("runtime: aborted")
	}
	c.fail(err)
}

// fail records the first error and aborts all workers.
func (c *Computation) fail(err error) {
	c.failMu.Lock()
	if c.failErr == nil {
		c.failErr = err
	}
	c.failMu.Unlock()
	if !c.aborted.Swap(true) {
		close(c.abortCh)
		for _, w := range c.workers {
			w.mailbox.close()
		}
		c.failMu.Lock()
		first := c.failErr
		c.failMu.Unlock()
		for _, p := range c.probes {
			p.finish(first)
		}
	}
}

// Failed reports whether the computation has aborted.
func (c *Computation) Failed() bool { return c.aborted.Load() }

// Err returns the first failure recorded so far (nil while healthy). Join
// returns the same error after teardown; Err is for observers — the
// supervisor, tests — that need it while workers are still winding down.
func (c *Computation) Err() error {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	return c.failErr
}

// SetRecoveryMetrics attaches shared fault-tolerance counters. The
// supervisor passes the same instance to every incarnation of a
// computation, so restart and checkpoint counts survive teardown. Must be
// called before Start (the heartbeat detector binds to it there).
func (c *Computation) SetRecoveryMetrics(rm *RecoveryMetrics) {
	if c.started {
		panic("runtime: SetRecoveryMetrics after Start")
	}
	c.recovery = rm
}

// stage returns the stageInfo by id.
func (c *Computation) stage(id StageID) *stageInfo { return c.stages[id] }

// conn returns the connInfo by id.
func (c *Computation) conn(id graph.ConnectorID) *connInfo { return c.conns[id] }

// logBatch serializes a Logged stage's delivered batch to the sink.
func (c *Computation) logBatch(stage StageID, payload []byte) {
	c.logMu.Lock()
	err := c.logSink.LogBatch(stage, payload)
	c.logMu.Unlock()
	c.logCount.Add(1)
	if err != nil {
		c.fail(fmt.Errorf("runtime: log sink: %w", err))
	}
}
