package runtime

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"naiad/internal/codec"
	"naiad/internal/graph"
	ts "naiad/internal/timestamp"
)

// sink collects records per epoch, thread-safely (vertices of a parallel
// sink stage run on different workers).
type sink struct {
	mu       sync.Mutex
	byEpoch  map[int64][]int64
	notified []int64
}

func newSink() *sink { return &sink{byEpoch: make(map[int64][]int64)} }

func (s *sink) add(e int64, v int64) {
	s.mu.Lock()
	s.byEpoch[e] = append(s.byEpoch[e], v)
	s.mu.Unlock()
}

func (s *sink) sorted(e int64) []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]int64(nil), s.byEpoch[e]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sinkVertex feeds a sink and requests one notification per epoch.
type sinkVertex struct {
	ctx  *Context
	s    *sink
	seen map[int64]bool
}

func (v *sinkVertex) OnRecv(_ int, msg Message, t ts.Timestamp) {
	if v.seen == nil {
		v.seen = make(map[int64]bool)
	}
	if !v.seen[t.Epoch] {
		v.seen[t.Epoch] = true
		v.ctx.NotifyAt(t)
	}
	v.s.add(t.Epoch, msg.(int64))
}

func (v *sinkVertex) OnNotify(t ts.Timestamp) {
	v.s.mu.Lock()
	v.s.notified = append(v.s.notified, t.Epoch)
	v.s.mu.Unlock()
}

func sinkStage(c *Computation, s *sink, name string) StageID {
	return c.AddStage(name, graph.RoleNormal, 0, func(ctx *Context) Vertex {
		return &sinkVertex{ctx: ctx, s: s}
	}, Pinned(0))
}

// mapVertex applies f to every record.
type mapVertex struct {
	ctx *Context
	f   func(int64) int64
}

func (v *mapVertex) OnRecv(_ int, msg Message, t ts.Timestamp) {
	v.ctx.SendBy(0, v.f(msg.(int64)), t)
}

func (v *mapVertex) OnNotify(ts.Timestamp) {}

func mapStage(c *Computation, name string, f func(int64) int64) StageID {
	return c.AddStage(name, graph.RoleNormal, 0, func(ctx *Context) Vertex {
		return &mapVertex{ctx: ctx, f: f}
	})
}

func hashPart(m Message) uint64 { return uint64(m.(int64)) }

func configs() map[string]Config {
	return map[string]Config{
		"1p1w":          {Processes: 1, WorkersPerProcess: 1, Accumulation: AccLocalGlobal},
		"1p4w":          {Processes: 1, WorkersPerProcess: 4, Accumulation: AccLocalGlobal},
		"2p2w":          {Processes: 2, WorkersPerProcess: 2, Accumulation: AccLocalGlobal},
		"2p2w-none":     {Processes: 2, WorkersPerProcess: 2, Accumulation: AccNone},
		"2p2w-local":    {Processes: 2, WorkersPerProcess: 2, Accumulation: AccLocal},
		"2p2w-global":   {Processes: 2, WorkersPerProcess: 2, Accumulation: AccGlobal},
		"4p2w-checked":  {Processes: 4, WorkersPerProcess: 2, Accumulation: AccLocalGlobal, CheckInvariants: true},
		"2p2w-tcp":      {Processes: 2, WorkersPerProcess: 2, Accumulation: AccLocalGlobal, UseTCP: true},
		"2p2w-smallbat": {Processes: 2, WorkersPerProcess: 2, Accumulation: AccLocalGlobal, BatchSize: 2},
	}
}

func TestPipelineAllConfigs(t *testing.T) {
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			c, err := NewComputation(cfg)
			if err != nil {
				t.Fatal(err)
			}
			in := c.NewInput("in")
			dbl := mapStage(c, "double", func(v int64) int64 { return 2 * v })
			c.Connect(in.Stage(), 0, dbl, hashPart, codec.Int64())
			s := newSink()
			snk := sinkStage(c, s, "sink")
			c.Connect(dbl, 0, snk, func(Message) uint64 { return 0 }, codec.Int64())
			if err := c.Start(); err != nil {
				t.Fatal(err)
			}
			in.OnNext(int64(1), int64(2), int64(3))
			in.OnNext(int64(10))
			in.OnNext() // empty epoch
			in.Close()
			if err := c.Join(); err != nil {
				t.Fatal(err)
			}
			if got := s.sorted(0); fmt.Sprint(got) != "[2 4 6]" {
				t.Fatalf("epoch 0 = %v", got)
			}
			if got := s.sorted(1); fmt.Sprint(got) != "[20]" {
				t.Fatalf("epoch 1 = %v", got)
			}
			if got := s.sorted(2); len(got) != 0 {
				t.Fatalf("epoch 2 = %v", got)
			}
			// Notifications fired for the two non-empty epochs, in order.
			if fmt.Sprint(s.notified) != "[0 1]" {
				t.Fatalf("notified = %v", s.notified)
			}
		})
	}
}

// distinctCount is the Figure 4 vertex: distinct records stream out of
// port 0 immediately, per-time counts out of port 1 on notification.
type distinctCount struct {
	ctx    *Context
	counts map[ts.Timestamp]map[int64]int64
}

func (v *distinctCount) OnRecv(_ int, msg Message, t ts.Timestamp) {
	if v.counts == nil {
		v.counts = make(map[ts.Timestamp]map[int64]int64)
	}
	if v.counts[t] == nil {
		v.counts[t] = make(map[int64]int64)
		v.ctx.NotifyAt(t)
	}
	k := msg.(int64)
	if _, seen := v.counts[t][k]; !seen {
		v.ctx.SendBy(0, k, t)
	}
	v.counts[t][k]++
}

func (v *distinctCount) OnNotify(t ts.Timestamp) {
	for k, n := range v.counts[t] {
		v.ctx.SendBy(1, k*1000+n, t) // encode (key, count) compactly
	}
	delete(v.counts, t)
}

func TestFigure4DistinctCount(t *testing.T) {
	cfg := Config{Processes: 2, WorkersPerProcess: 2, Accumulation: AccLocalGlobal}
	c, err := NewComputation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInput("in")
	dc := c.AddStage("distinct", graph.RoleNormal, 0, func(ctx *Context) Vertex {
		return &distinctCount{ctx: ctx}
	}, Ports(2))
	c.Connect(in.Stage(), 0, dc, hashPart, codec.Int64())
	distinct, counts := newSink(), newSink()
	ds := sinkStage(c, distinct, "distinctSink")
	cs := sinkStage(c, counts, "countSink")
	c.Connect(dc, 0, ds, func(Message) uint64 { return 0 }, codec.Int64())
	c.Connect(dc, 1, cs, func(Message) uint64 { return 0 }, codec.Int64())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(int64(7), int64(7), int64(8), int64(7), int64(8))
	in.OnNext(int64(7))
	in.Close()
	if err := c.Join(); err != nil {
		t.Fatal(err)
	}
	if got := distinct.sorted(0); fmt.Sprint(got) != "[7 8]" {
		t.Fatalf("distinct epoch 0 = %v", got)
	}
	if got := counts.sorted(0); fmt.Sprint(got) != "[7003 8002]" {
		t.Fatalf("counts epoch 0 = %v", got)
	}
	if got := counts.sorted(1); fmt.Sprint(got) != "[7001]" {
		t.Fatalf("counts epoch 1 = %v", got)
	}
}

// loopBody increments values; values below the threshold circulate to the
// feedback port, values at it exit via the egress port.
type loopBody struct {
	ctx   *Context
	limit int64
}

func (v *loopBody) OnRecv(_ int, msg Message, t ts.Timestamp) {
	x := msg.(int64) + 1
	if x < v.limit {
		v.ctx.SendBy(0, x, t)
	} else {
		v.ctx.SendBy(1, x, t)
	}
}

func (v *loopBody) OnNotify(ts.Timestamp) {}

func buildLoopComputation(t *testing.T, cfg Config, limit int64) (*Computation, *Input, *sink) {
	t.Helper()
	c, err := NewComputation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInput("in")
	ing := c.AddStage("I", graph.RoleIngress, 0, nil)
	body := c.AddStage("body", graph.RoleNormal, 1, func(ctx *Context) Vertex {
		return &loopBody{ctx: ctx, limit: limit}
	}, Ports(2))
	fb := c.AddStage("F", graph.RoleFeedback, 1, nil)
	eg := c.AddStage("E", graph.RoleEgress, 1, nil)
	s := newSink()
	snk := sinkStage(c, s, "sink")
	c.Connect(in.Stage(), 0, ing, hashPart, codec.Int64())
	c.Connect(ing, 0, body, hashPart, codec.Int64())
	c.Connect(body, 0, fb, nil, codec.Int64())
	c.Connect(fb, 0, body, hashPart, codec.Int64())
	c.Connect(body, 1, eg, nil, codec.Int64())
	c.Connect(eg, 0, snk, func(Message) uint64 { return 0 }, codec.Int64())
	return c, in, s
}

func TestIterativeLoop(t *testing.T) {
	for _, name := range []string{"1p1w", "2p2w", "2p2w-none", "2p2w-tcp"} {
		cfg := configs()[name]
		t.Run(name, func(t *testing.T) {
			c, in, s := buildLoopComputation(t, cfg, 10)
			if err := c.Start(); err != nil {
				t.Fatal(err)
			}
			in.OnNext(int64(0), int64(3), int64(9))
			in.OnNext(int64(5))
			in.Close()
			if err := c.Join(); err != nil {
				t.Fatal(err)
			}
			// Every value iterates up to exactly 10.
			if got := s.sorted(0); fmt.Sprint(got) != "[10 10 10]" {
				t.Fatalf("epoch 0 = %v", got)
			}
			if got := s.sorted(1); fmt.Sprint(got) != "[10]" {
				t.Fatalf("epoch 1 = %v", got)
			}
		})
	}
}

// loopNotify requests a notification inside the loop each iteration and
// counts how many fire, testing notification delivery at loop depth.
type loopNotify struct {
	ctx     *Context
	s       *sink
	pending map[ts.Timestamp][]int64
}

func (v *loopNotify) OnRecv(_ int, msg Message, t ts.Timestamp) {
	if v.pending == nil {
		v.pending = make(map[ts.Timestamp][]int64)
	}
	if v.pending[t] == nil {
		v.ctx.NotifyAt(t)
	}
	v.pending[t] = append(v.pending[t], msg.(int64))
}

func (v *loopNotify) OnNotify(t ts.Timestamp) {
	// Batch-synchronous: forward the batch only when the iteration is done.
	for _, x := range v.pending[t] {
		if x++; x < 5 {
			v.ctx.SendBy(0, x, t)
		} else {
			v.ctx.SendBy(1, x, t)
		}
	}
	delete(v.pending, t)
	v.s.add(int64(t.Inner()), 1) // record one notification per iteration
}

func TestLoopWithNotifications(t *testing.T) {
	cfg := Config{Processes: 2, WorkersPerProcess: 2, Accumulation: AccLocalGlobal, CheckInvariants: true}
	c, err := NewComputation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	iterSink := newSink()
	in := c.NewInput("in")
	ing := c.AddStage("I", graph.RoleIngress, 0, nil)
	body := c.AddStage("body", graph.RoleNormal, 1, func(ctx *Context) Vertex {
		return &loopNotify{ctx: ctx, s: iterSink}
	}, Ports(2))
	fb := c.AddStage("F", graph.RoleFeedback, 1, nil)
	eg := c.AddStage("E", graph.RoleEgress, 1, nil)
	out := newSink()
	snk := sinkStage(c, out, "sink")
	c.Connect(in.Stage(), 0, ing, hashPart, codec.Int64())
	c.Connect(ing, 0, body, hashPart, codec.Int64())
	c.Connect(body, 0, fb, nil, codec.Int64())
	c.Connect(fb, 0, body, hashPart, codec.Int64())
	c.Connect(body, 1, eg, nil, codec.Int64())
	c.Connect(eg, 0, snk, func(Message) uint64 { return 0 }, codec.Int64())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(int64(0), int64(1))
	in.Close()
	if err := c.Join(); err != nil {
		t.Fatal(err)
	}
	if got := out.sorted(0); fmt.Sprint(got) != "[5 5]" {
		t.Fatalf("out = %v", got)
	}
}

func TestProbeWaitFor(t *testing.T) {
	cfg := Config{Processes: 2, WorkersPerProcess: 2, Accumulation: AccLocalGlobal}
	c, err := NewComputation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInput("in")
	s := newSink()
	snk := sinkStage(c, s, "sink")
	c.Connect(in.Stage(), 0, snk, func(Message) uint64 { return 0 }, codec.Int64())
	probe := c.NewProbe(snk)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(int64(1), int64(2))
	probe.WaitFor(0)
	if got := s.sorted(0); fmt.Sprint(got) != "[1 2]" {
		t.Fatalf("after WaitFor(0): %v", got)
	}
	if !probe.Done(0) || probe.Done(1) {
		t.Fatal("Done flags wrong")
	}
	in.OnNext(int64(3))
	probe.WaitFor(1)
	if got := s.sorted(1); fmt.Sprint(got) != "[3]" {
		t.Fatalf("after WaitFor(1): %v", got)
	}
	in.Close()
	if err := c.Join(); err != nil {
		t.Fatal(err)
	}
	if probe.Completed() < 1 {
		t.Fatalf("completed = %d", probe.Completed())
	}
}

func TestVertexPanicPropagates(t *testing.T) {
	cfg := Config{Processes: 1, WorkersPerProcess: 2, Accumulation: AccLocalGlobal}
	c, err := NewComputation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInput("in")
	bad := mapStage(c, "bad", func(v int64) int64 { panic("kaboom") })
	c.Connect(in.Stage(), 0, bad, hashPart, nil)
	s := newSink()
	snk := sinkStage(c, s, "sink")
	c.Connect(bad, 0, snk, nil, nil)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(int64(1))
	err = c.Join()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("Join error = %v", err)
	}
}

func TestSendBackwardsInTimePanics(t *testing.T) {
	cfg := Config{Processes: 1, WorkersPerProcess: 1, Accumulation: AccLocalGlobal}
	c, err := NewComputation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInput("in")
	bad := c.AddStage("bad", graph.RoleNormal, 0, func(ctx *Context) Vertex {
		return &funcVertex{onRecv: func(_ int, m Message, t ts.Timestamp) {
			//lint:naiad-vet:timemono deliberate violation: provokes the runtime's dynamic check
			ctx.SendBy(0, m, ts.Root(t.Epoch-1))
		}}
	})
	c.Connect(in.Stage(), 0, bad, nil, nil)
	s := newSink()
	snk := sinkStage(c, s, "sink")
	c.Connect(bad, 0, snk, nil, nil)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	in.AdvanceTo(5)
	in.Send(int64(1))
	err = c.Join()
	if err == nil || !strings.Contains(err.Error(), "backwards in time") {
		t.Fatalf("Join error = %v", err)
	}
}

// funcVertex adapts closures to the Vertex interface for tests.
type funcVertex struct {
	onRecv   func(int, Message, ts.Timestamp)
	onNotify func(ts.Timestamp)
}

func (v *funcVertex) OnRecv(i int, m Message, t ts.Timestamp) {
	if v.onRecv != nil {
		v.onRecv(i, m, t)
	}
}

func (v *funcVertex) OnNotify(t ts.Timestamp) {
	if v.onNotify != nil {
		v.onNotify(t)
	}
}

func TestPurgeNotification(t *testing.T) {
	cfg := Config{Processes: 1, WorkersPerProcess: 2, Accumulation: AccLocalGlobal}
	c, err := NewComputation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInput("in")
	s := newSink()
	purged := newSink()
	stage := c.AddStage("purger", graph.RoleNormal, 0, func(ctx *Context) Vertex {
		seen := map[int64]bool{}
		return &funcVertex{
			onRecv: func(_ int, m Message, t ts.Timestamp) {
				if !seen[t.Epoch] {
					seen[t.Epoch] = true
					ctx.NotifyAtPurge(t)
				}
				ctx.SendBy(0, m.(int64), t)
			},
			onNotify: func(t ts.Timestamp) { purged.add(t.Epoch, 1) },
		}
	})
	c.Connect(in.Stage(), 0, stage, hashPart, nil)
	snk := sinkStage(c, s, "sink")
	c.Connect(stage, 0, snk, nil, nil)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(int64(1), int64(2), int64(3))
	in.Close()
	if err := c.Join(); err != nil {
		t.Fatal(err)
	}
	purged.mu.Lock()
	n := len(purged.byEpoch[0])
	purged.mu.Unlock()
	if n == 0 {
		t.Fatal("purge notification never delivered")
	}
	if got := s.sorted(0); fmt.Sprint(got) != "[1 2 3]" {
		t.Fatalf("records = %v", got)
	}
}

func TestSendFromPurgeNotificationPanics(t *testing.T) {
	cfg := Config{Processes: 1, WorkersPerProcess: 1, Accumulation: AccLocalGlobal}
	c, err := NewComputation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInput("in")
	stage := c.AddStage("bad", graph.RoleNormal, 0, func(ctx *Context) Vertex {
		return &funcVertex{
			onRecv: func(_ int, m Message, t ts.Timestamp) { ctx.NotifyAtPurge(t) },
			onNotify: func(t ts.Timestamp) {
				ctx.SendBy(0, int64(1), t) // forbidden: no capability held
			},
		}
	})
	c.Connect(in.Stage(), 0, stage, nil, nil)
	s := newSink()
	snk := sinkStage(c, s, "sink")
	c.Connect(stage, 0, snk, nil, nil)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(int64(1))
	in.Close()
	err = c.Join()
	if err == nil || !strings.Contains(err.Error(), "purge notification") {
		t.Fatalf("Join error = %v", err)
	}
}

func TestReentrancyBoundsCycleInOneWorker(t *testing.T) {
	// A tight cycle within a single worker must queue rather than recurse
	// unboundedly; the computation still terminates correctly.
	cfg := Config{Processes: 1, WorkersPerProcess: 1, Accumulation: AccLocalGlobal, MaxReentrancy: 1}
	c, in, s := buildLoopComputation(t, cfg, 2000)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(int64(0))
	in.Close()
	if err := c.Join(); err != nil {
		t.Fatal(err)
	}
	if got := s.sorted(0); fmt.Sprint(got) != "[2000]" {
		t.Fatalf("out = %v", got)
	}
}

func TestMaxIterationsBoundsLoop(t *testing.T) {
	// A loop that never voluntarily exits is cut off by the feedback
	// stage's iteration bound; the computation drains.
	cfg := Config{Processes: 1, WorkersPerProcess: 2, Accumulation: AccLocalGlobal}
	c, err := NewComputation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInput("in")
	ing := c.AddStage("I", graph.RoleIngress, 0, nil)
	body := mapStageAt(c, "inc", 1, func(v int64) int64 { return v + 1 })
	fb := c.AddStage("F", graph.RoleFeedback, 1, nil, MaxIterations(7))
	c.Connect(in.Stage(), 0, ing, hashPart, nil)
	c.Connect(ing, 0, body, hashPart, nil)
	c.Connect(body, 0, fb, nil, nil)
	c.Connect(fb, 0, body, hashPart, nil)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(int64(0))
	in.Close()
	if err := c.Join(); err != nil {
		t.Fatal(err)
	}
}

func mapStageAt(c *Computation, name string, depth uint8, f func(int64) int64) StageID {
	return c.AddStage(name, graph.RoleNormal, depth, func(ctx *Context) Vertex {
		return &mapVertex{ctx: ctx, f: f}
	})
}

func TestBuilderMisusePanics(t *testing.T) {
	mk := func() *Computation {
		c, err := NewComputation(Config{Processes: 1, WorkersPerProcess: 1})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	for name, f := range map[string]func(){
		"bad config": func() {
			if _, err := NewComputation(Config{}); err == nil {
				panic("want error")
			}
			panic("ok")
		},
		"connect bad port": func() {
			c := mk()
			a := mapStage(c, "a", nil)
			b := mapStage(c, "b", nil)
			c.Connect(a, 1, b, nil, nil)
		},
		"codec required multiproc": func() {
			c, err := NewComputation(Config{Processes: 2, WorkersPerProcess: 1})
			if err != nil {
				t.Fatal(err)
			}
			a := mapStage(c, "a", nil)
			b := mapStage(c, "b", nil)
			c.Connect(a, 0, b, nil, nil)
		},
		"no factory": func() {
			c := mk()
			in := c.NewInput("in")
			st := c.AddStage("x", graph.RoleNormal, 0, nil)
			c.Connect(in.Stage(), 0, st, nil, nil)
			if err := c.Start(); err != nil {
				t.Fatal(err)
			}
			in.Close()
			if err := c.Join(); err != nil {
				panic(err.Error())
			}
		},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		})
	}
}

func TestLoggedStageWritesBatches(t *testing.T) {
	cfg := Config{Processes: 1, WorkersPerProcess: 2, Accumulation: AccLocalGlobal}
	c, err := NewComputation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var logged struct {
		mu sync.Mutex
		n  int
	}
	c.SetLogSink(logSinkFunc(func(stage StageID, payload []byte) error {
		logged.mu.Lock()
		logged.n++
		logged.mu.Unlock()
		return nil
	}))
	in := c.NewInput("in")
	s := newSink()
	snk := c.AddStage("sink", graph.RoleNormal, 0, func(ctx *Context) Vertex {
		return &sinkVertex{ctx: ctx, s: s}
	}, Pinned(0), Logged())
	c.Connect(in.Stage(), 0, snk, func(Message) uint64 { return 0 }, codec.Int64())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(int64(1), int64(2))
	in.Close()
	if err := c.Join(); err != nil {
		t.Fatal(err)
	}
	if c.LoggedBatches() == 0 {
		t.Fatal("no batches logged")
	}
	if got := s.sorted(0); fmt.Sprint(got) != "[1 2]" {
		t.Fatalf("records = %v", got)
	}
}

type logSinkFunc func(StageID, []byte) error

func (f logSinkFunc) LogBatch(s StageID, p []byte) error { return f(s, p) }

func TestLoggedWithoutSinkFailsStart(t *testing.T) {
	c, err := NewComputation(Config{Processes: 1, WorkersPerProcess: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInput("in")
	s := newSink()
	snk := c.AddStage("sink", graph.RoleNormal, 0, func(ctx *Context) Vertex {
		return &sinkVertex{ctx: ctx, s: s}
	}, Pinned(0), Logged())
	c.Connect(in.Stage(), 0, snk, nil, nil)
	if err := c.Start(); err == nil {
		t.Fatal("Start should fail without a log sink")
	}
}

func TestAccumulationModeString(t *testing.T) {
	for a, want := range map[Accumulation]string{
		AccNone: "None", AccLocal: "LocalAcc", AccGlobal: "GlobalAcc",
		AccLocalGlobal: "Local+GlobalAcc", Accumulation(9): "acc(9)",
	} {
		if a.String() != want {
			t.Errorf("%d → %q want %q", a, a.String(), want)
		}
	}
}
