package runtime

import (
	"fmt"
	"sync"

	"naiad/internal/batchbuf"
	"naiad/internal/graph"
)

// Input is the handle an external producer uses to supply epochs of data
// (§2.1, §4.1). Input stages have one vertex per worker; records are
// scattered round-robin unless directed with SendToWorker. An Input is safe
// for use by one producer goroutine.
type Input struct {
	comp  *Computation
	stage StageID

	mu     sync.Mutex
	epoch  int64
	closed bool
	rr     int // round-robin cursor for Send
}

// NewInput adds an input stage and returns its handle. Records introduced
// here are serialized by the consuming connectors' codecs when they cross
// process boundaries.
func (c *Computation) NewInput(name string) *Input {
	if c.started {
		panic("runtime: NewInput after Start")
	}
	id := c.AddStage(name, graph.RoleInput, 0, nil)
	in := &Input{comp: c, stage: id}
	c.inputs = append(c.inputs, in)
	return in
}

// Stage returns the input's stage id, for connecting consumers.
func (in *Input) Stage() StageID { return in.stage }

// Epoch returns the current (open) epoch.
func (in *Input) Epoch() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.epoch
}

// Send introduces records into the current epoch, scattering them
// round-robin across the workers.
func (in *Input) Send(records ...Message) {
	per, epoch := in.planSend(records)
	for w, batch := range per {
		if len(batch) > 0 {
			in.feed(w, epoch, batch)
		}
	}
}

// planSend partitions records round-robin under the lock and snapshots the
// epoch they belong to. The mailbox pushes happen after the lock is
// released: a mailbox handoff acquires the receiving worker's own mutex,
// and holding in.mu across it would couple the producer's and the worker's
// lock orders through the scheduler. The single-producer contract keeps
// the plan and the pushes consistent.
func (in *Input) planSend(records []Message) ([][]Message, int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.checkOpen()
	per := make([][]Message, in.comp.cfg.Workers())
	for _, r := range records {
		per[in.rr%len(per)] = append(per[in.rr%len(per)], r)
		in.rr++
	}
	return per, in.epoch
}

// SendBatch introduces a whole batch into the current epoch, consuming one
// reference to b. With one worker the batch is handed over intact; with
// several it is scattered record-by-record, continuing Send's round-robin
// cursor, into per-worker builder batches of the same column type.
func (in *Input) SendBatch(b *batchbuf.Batch) {
	per, epoch := in.planSendBatch(b)
	if per == nil {
		if b.Len() > 0 {
			in.feedBatch(0, epoch, b) // single worker: hand over intact
		} else {
			b.Release()
		}
		return
	}
	for w, sub := range per {
		if sub != nil {
			in.feedBatch(w, epoch, sub)
		}
	}
	b.Release()
}

// planSendBatch scatters under the lock (see planSend for the locking
// discipline). It returns a nil slice in the single-worker case, where no
// scatter is needed.
func (in *Input) planSendBatch(b *batchbuf.Batch) ([]*batchbuf.Batch, int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.checkOpen()
	workers := in.comp.cfg.Workers()
	if workers == 1 {
		return nil, in.epoch
	}
	n := b.Len()
	per := make([]*batchbuf.Batch, workers)
	for i := 0; i < n; i++ {
		w := in.rr % workers
		in.rr++
		if per[w] == nil {
			per[w] = b.NewLike((n + workers - 1) / workers)
		}
		per[w].AppendIndex(b, i)
	}
	return per, in.epoch
}

// SendBatchToWorker introduces a whole batch into the current epoch at a
// specific worker's input vertex, consuming one reference to b.
func (in *Input) SendBatchToWorker(worker int, b *batchbuf.Batch) {
	epoch := in.planSendToWorker(worker)
	if b.Len() > 0 {
		in.feedBatch(worker, epoch, b)
	} else {
		b.Release()
	}
}

func (in *Input) feedBatch(worker int, epoch int64, b *batchbuf.Batch) {
	in.comp.workers[worker].mailbox.push(mailItem{kind: mailControl, ctl: &controlMsg{
		op: ctlInputFeed, stage: in.stage, epoch: epoch, batch: b,
	}})
}

// SendToWorker introduces records into the current epoch at a specific
// worker's input vertex — the per-computer ingestion pattern of §5.4's
// scaling experiments. The records slice is owned by the runtime after the
// call.
func (in *Input) SendToWorker(worker int, records []Message) {
	epoch := in.planSendToWorker(worker)
	if len(records) > 0 {
		in.feed(worker, epoch, records)
	}
}

func (in *Input) planSendToWorker(worker int) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.checkOpen()
	if worker < 0 || worker >= in.comp.cfg.Workers() {
		panic(fmt.Sprintf("runtime: SendToWorker(%d) with %d workers", worker, in.comp.cfg.Workers()))
	}
	return in.epoch
}

func (in *Input) feed(worker int, epoch int64, records []Message) {
	in.comp.workers[worker].mailbox.push(mailItem{kind: mailControl, ctl: &controlMsg{
		op: ctlInputFeed, stage: in.stage, epoch: epoch, records: records,
	}})
}

// Advance completes the current epoch and opens the next: the external
// producer's statement that no more records with the current label will
// arrive (§2.1).
func (in *Input) Advance() { in.AdvanceTo(in.Epoch() + 1) }

// AdvanceTo completes every epoch below e and makes e current.
func (in *Input) AdvanceTo(e int64) {
	if !in.planAdvance(e) {
		return
	}
	for _, w := range in.comp.workers {
		w.mailbox.push(mailItem{kind: mailControl, ctl: &controlMsg{
			op: ctlInputAdvance, stage: in.stage, epoch: e,
		}})
	}
}

// planAdvance validates and records the epoch change under the lock,
// reporting whether notifications need to go out. See planSend for why the
// pushes happen unlocked.
func (in *Input) planAdvance(e int64) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.checkOpen()
	if e < in.epoch {
		panic(fmt.Sprintf("runtime: input %d cannot retreat from epoch %d to %d", in.stage, in.epoch, e))
	}
	if e == in.epoch {
		return false
	}
	in.epoch = e
	for cur := in.comp.maxEpoch.Load(); e > cur; cur = in.comp.maxEpoch.Load() {
		if in.comp.maxEpoch.CompareAndSwap(cur, e) {
			break
		}
	}
	return true
}

// OnNext supplies one epoch of records and advances, mirroring the paper's
// prototypical program (§4.1).
func (in *Input) OnNext(records ...Message) {
	in.Send(records...)
	in.Advance()
}

// Close marks the input complete; once every input closes and drains, the
// computation shuts down and Join returns (§2.1).
func (in *Input) Close() {
	if !in.planClose() {
		return
	}
	for _, w := range in.comp.workers {
		w.mailbox.push(mailItem{kind: mailControl, ctl: &controlMsg{
			op: ctlInputClose, stage: in.stage,
		}})
	}
}

// planClose flips the closed flag under the lock, reporting whether this
// call is the one that must notify the workers.
func (in *Input) planClose() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return false
	}
	in.closed = true
	return true
}

func (in *Input) checkOpen() {
	if in.closed {
		panic(fmt.Sprintf("runtime: input %d used after Close", in.stage))
	}
	if !in.comp.started {
		panic("runtime: input used before Start")
	}
}
