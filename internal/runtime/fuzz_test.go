package runtime

import (
	"testing"

	"naiad/internal/codec"
	"naiad/internal/graph"
	"naiad/internal/progress"
	ts "naiad/internal/timestamp"
)

// FuzzDecodeProgress corrupts progress frames: the decoder must reject
// them by panicking (the transport dispatcher recovers and aborts the
// computation) and must never turn a corrupt count into a huge allocation.
func FuzzDecodeProgress(f *testing.F) {
	valid := encodeProgress(progBroadcast, []update{
		{P: progress.Pointstamp{Time: ts.Root(3), Loc: graph.StageLoc(1)}, D: 1},
		{P: progress.Pointstamp{Time: ts.Root(2).PushLoop().Tick(), Loc: graph.ConnLoc(0)}, D: -1},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte{0, 255, 255, 255, 255})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var us []update
		err := codec.Catch(func() { _, us = decodeProgress(data) })
		if err != nil {
			return
		}
		// Accepted frames must have had every update actually present.
		if len(us) > len(data)/21+1 {
			t.Fatalf("decoded %d updates from %d bytes", len(us), len(data))
		}
	})
}

// FuzzDecodeData corrupts data-frame envelopes against a small real
// dataflow: decode must error (panic recovered by the worker loop in
// production, by Catch here), never over-allocate from the count field.
func FuzzDecodeData(f *testing.F) {
	c, err := NewComputation(DefaultConfig(1))
	if err != nil {
		f.Fatal(err)
	}
	src := c.AddStage("src", graph.RoleInput, 0, nil)
	dst := c.AddStage("dst", graph.RoleNormal, 0,
		func(ctx *Context) Vertex { return &forwardVertex{ctx: ctx} })
	c.Connect(src, 0, dst, nil, codec.Int64())
	ci := c.conns[0]

	valid := encodeData(ci, 0, ts.Root(1), []Message{int64(10), int64(20)})
	f.Add(valid)
	f.Add(valid[:len(valid)-7])
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var records []Message
		err := codec.Catch(func() { _, _, _, records = decodeData(c, data) })
		if err != nil {
			return
		}
		if len(records) > len(data) {
			t.Fatalf("decoded %d records from %d bytes", len(records), len(data))
		}
	})
}
